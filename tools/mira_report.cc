// mira_report: the bench regression gate.
//
//   mira_report [--threshold=0.10] <base> <cur> [<base2> <cur2> ...]
//
// Each pair is either two BENCH_*.json reports (bench/common.cc
// `--bench-out=`) or two metrics CSVs (`--metrics-out=*.csv`), matched by
// file extension. Prints a per-pair comparison table and exits:
//   0  no gating field regressed beyond the threshold
//   1  at least one regression
//   2  usage error or unreadable input
//
// CI runs this against the checked-in baselines in bench/reports/ (see
// .github/workflows/ci.yml, "observability" job).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/report.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool IsCsv(const std::string& path) {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mira_report [--threshold=0.10] <base> <cur> [<base2> <cur2> ...]\n"
               "  pairs of BENCH_*.json reports or metrics *.csv dumps\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold = std::strtod(argv[i] + 12, nullptr);
      if (threshold < 0) {
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      return Usage();
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty() || paths.size() % 2 != 0) {
    return Usage();
  }
  bool any_regression = false;
  for (size_t i = 0; i + 1 < paths.size(); i += 2) {
    const std::string& base_path = paths[i];
    const std::string& cur_path = paths[i + 1];
    std::string base_text;
    std::string cur_text;
    if (!ReadFile(base_path, &base_text)) {
      std::fprintf(stderr, "mira_report: cannot read %s\n", base_path.c_str());
      return 2;
    }
    if (!ReadFile(cur_path, &cur_text)) {
      std::fprintf(stderr, "mira_report: cannot read %s\n", cur_path.c_str());
      return 2;
    }
    const auto comps =
        IsCsv(cur_path) ? mira::tools::CompareMetricsCsv(base_text, cur_text, threshold)
                        : mira::tools::CompareBenchReports(base_text, cur_text, threshold);
    const std::string label = base_path + " -> " + cur_path;
    std::fputs(mira::tools::FormatReport(label, comps).c_str(), stdout);
    any_regression = any_regression || mira::tools::AnyRegression(comps);
  }
  if (any_regression) {
    std::fprintf(stderr, "mira_report: regression beyond %.0f%% threshold\n",
                 threshold * 100.0);
    return 1;
  }
  return 0;
}
