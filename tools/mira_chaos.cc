// mira_chaos: seeded fault-schedule search over real workloads.
//
// Sweep mode (default):
//   mira_chaos --seeds=1..200 [--workloads=graph,dataframe]
//              [--local-percent=25] [--max-events=6] [--out-dir=.]
//              [--fail-oracle=kind[,kind...]] [--verbose]
//
//   For each (workload, seed): generate a schedule, compose it into one
//   FaultPlan, execute it, and run the oracle suite against the clean
//   baseline. On a violation, delta-debug the schedule down to a locally
//   minimal event list (re-executing each candidate), write a JSON repro
//   artifact chaos_repro_<workload>_<seed>.json to --out-dir, and exit 1
//   after the sweep. --fail-oracle arms the deliberately-broken test_hook
//   oracle (fires when the schedule holds >= 1 event of EVERY named kind) —
//   the harness canary proving detection, minimization, and nonzero exit.
//
// Replay mode:
//   mira_chaos --replay=chaos_repro_graph_17.json
//
//   Rebuilds the runner from the artifact's own workload knobs, re-executes
//   the artifact's plan, and verifies the violations AND the execution
//   fingerprint (sim_ns, result) match the artifact bit-exactly. Exit 0 on
//   exact reproduction, 1 otherwise.
//
// Exit codes: 0 all oracles hold (or exact replay), 1 violations (or replay
// mismatch), 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/chaos/oracles.h"
#include "src/chaos/repro.h"
#include "src/chaos/runner.h"
#include "src/chaos/schedule.h"
#include "src/chaos/shrink.h"
#include "src/net/fault_injector.h"
#include "src/support/str.h"

namespace {

using mira::chaos::ChaosEvent;
using mira::chaos::ChaosRunner;
using mira::chaos::OracleOptions;
using mira::chaos::ReproArtifact;
using mira::chaos::RunnerOptions;
using mira::chaos::RunResult;
using mira::chaos::Violation;

struct Args {
  uint64_t seed_begin = 1;
  uint64_t seed_end = 50;  // inclusive
  std::vector<std::string> workloads = {"graph"};
  int local_percent = 25;
  int max_events = 6;
  std::string out_dir = ".";
  std::vector<std::string> fail_oracles;
  std::string replay_path;
  // Execution engine (tree | bytecode); kDefault = MIRA_INTERP / bytecode.
  // Engines are bit-identical, so an artifact found under one engine must
  // replay EXACT under the other — --interp makes that cross-check easy.
  mira::interp::EngineKind engine = mira::interp::EngineKind::kDefault;
  bool verbose = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: mira_chaos [--seeds=A..B] [--workloads=graph,dataframe]\n"
               "                  [--local-percent=N] [--max-events=N] [--out-dir=DIR]\n"
               "                  [--fail-oracle=kind[,kind...]] [--interp=tree|bytecode]\n"
               "                  [--verbose]\n"
               "       mira_chaos --replay=chaos_repro_*.json [--interp=tree|bytecode]\n");
  return 2;
}

std::vector<std::string> SplitCommas(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (; *s != '\0'; ++s) {
    if (*s == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
      }
      cur.clear();
    } else {
      cur += *s;
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--seeds=", 8) == 0) {
      char* end = nullptr;
      args->seed_begin = std::strtoull(a + 8, &end, 10);
      if (std::strncmp(end, "..", 2) != 0) {
        return false;
      }
      args->seed_end = std::strtoull(end + 2, &end, 10);
      if (*end != '\0' || args->seed_end < args->seed_begin) {
        return false;
      }
    } else if (std::strncmp(a, "--workloads=", 12) == 0) {
      args->workloads = SplitCommas(a + 12);
      if (args->workloads.empty()) {
        return false;
      }
    } else if (std::strncmp(a, "--local-percent=", 16) == 0) {
      args->local_percent = std::atoi(a + 16);
      if (args->local_percent < 1 || args->local_percent > 100) {
        return false;
      }
    } else if (std::strncmp(a, "--max-events=", 13) == 0) {
      args->max_events = std::atoi(a + 13);
      if (args->max_events < 1) {
        return false;
      }
    } else if (std::strncmp(a, "--out-dir=", 10) == 0) {
      args->out_dir = a + 10;
    } else if (std::strncmp(a, "--fail-oracle=", 14) == 0) {
      args->fail_oracles = SplitCommas(a + 14);
    } else if (std::strncmp(a, "--replay=", 9) == 0) {
      args->replay_path = a + 9;
    } else if (std::strncmp(a, "--interp=", 9) == 0) {
      args->engine = mira::interp::ParseEngineName(a + 9);
      if (args->engine == mira::interp::EngineKind::kDefault) {
        return false;
      }
    } else if (std::strcmp(a, "--verbose") == 0) {
      args->verbose = true;
    } else {
      return false;
    }
  }
  return true;
}

// One (workload, seed) case: execute, check, and on violation minimize +
// save a repro. Returns true when all oracles held.
bool RunCase(const ChaosRunner& runner, uint64_t seed, const Args& args) {
  const mira::chaos::GenOptions gen = runner.MakeGenOptions(args.max_events);
  const std::vector<ChaosEvent> events = mira::chaos::GenerateSchedule(seed, gen);
  OracleOptions oracle_opts;
  oracle_opts.fail_oracles = args.fail_oracles;

  auto check = [&](const std::vector<ChaosEvent>& evs) {
    const RunResult r = runner.Execute(mira::chaos::ComposePlan(seed, evs));
    return mira::chaos::CheckOracles(runner.clean(), r, evs, oracle_opts);
  };

  const std::vector<Violation> violations = check(events);
  if (args.verbose || !violations.empty()) {
    std::printf("[%s seed=%llu] %zu events, %zu violations\n", runner.options().workload.c_str(),
                static_cast<unsigned long long>(seed), events.size(), violations.size());
  }
  if (violations.empty()) {
    return true;
  }
  std::printf("%s", mira::chaos::FormatViolations(violations).c_str());

  // Shrink: a candidate "still fails" when it reproduces at least one
  // violation (any oracle — the minimal schedule for the triggering fault).
  int executions = 0;
  const std::vector<ChaosEvent> minimal = mira::chaos::Minimize(
      events, [&](const std::vector<ChaosEvent>& evs) { return !check(evs).empty(); },
      &executions);
  std::printf("minimized %zu -> %zu events in %d executions:\n", events.size(), minimal.size(),
              executions);
  for (const ChaosEvent& e : minimal) {
    std::printf("  %s\n", e.Describe().c_str());
  }

  ReproArtifact artifact;
  artifact.workload = runner.options().workload;
  artifact.local_percent = runner.options().local_percent;
  artifact.interp_seed = runner.options().interp_seed;
  artifact.schedule_seed = seed;
  artifact.fail_oracles = args.fail_oracles;
  artifact.events = minimal;
  artifact.plan = mira::chaos::ComposePlan(seed, minimal);
  const RunResult min_run = runner.Execute(artifact.plan);
  artifact.violations =
      mira::chaos::CheckOracles(runner.clean(), min_run, minimal, oracle_opts);
  artifact.sim_ns = min_run.sim_ns;
  artifact.result = min_run.result;
  const std::string path = mira::support::StrFormat(
      "%s/chaos_repro_%s_%llu.json", args.out_dir.c_str(), artifact.workload.c_str(),
      static_cast<unsigned long long>(seed));
  if (mira::chaos::SaveArtifact(artifact, path)) {
    std::printf("repro artifact: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "mira_chaos: cannot write %s\n", path.c_str());
  }
  return false;
}

int Replay(const std::string& path, mira::interp::EngineKind engine) {
  auto loaded = mira::chaos::LoadArtifact(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "mira_chaos: %s\n", loaded.status().ToString().c_str());
    return 2;
  }
  const ReproArtifact artifact = loaded.take();
  RunnerOptions ropts;
  ropts.workload = artifact.workload;
  ropts.local_percent = artifact.local_percent;
  ropts.interp_seed = artifact.interp_seed;
  ropts.engine = engine;
  const ChaosRunner runner(ropts);

  // Composition purity check first: the saved plan must equal recomposing
  // the saved events, or the artifact is stale/hand-edited.
  const mira::net::FaultPlan recomposed =
      mira::chaos::ComposePlan(artifact.schedule_seed, artifact.events);
  if (!(recomposed == artifact.plan)) {
    std::printf("REPLAY MISMATCH: recomposed plan differs from artifact plan\n");
    return 1;
  }

  OracleOptions oracle_opts;
  oracle_opts.fail_oracles = artifact.fail_oracles;
  const RunResult r = runner.Execute(artifact.plan);
  const std::vector<Violation> violations =
      mira::chaos::CheckOracles(runner.clean(), r, artifact.events, oracle_opts);

  const bool exact = violations == artifact.violations && r.sim_ns == artifact.sim_ns &&
                     r.result == artifact.result;
  std::printf("replay %s: %zu events, %zu violations, sim_ns=%llu result=%llu -> %s\n",
              path.c_str(), artifact.events.size(), violations.size(),
              static_cast<unsigned long long>(r.sim_ns),
              static_cast<unsigned long long>(r.result),
              exact ? "EXACT" : "MISMATCH");
  if (!exact) {
    std::printf("artifact: %zu violations, sim_ns=%llu result=%llu\n%s",
                artifact.violations.size(),
                static_cast<unsigned long long>(artifact.sim_ns),
                static_cast<unsigned long long>(artifact.result),
                mira::chaos::FormatViolations(violations).c_str());
  }
  return exact ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    return Usage();
  }
  if (!args.replay_path.empty()) {
    return Replay(args.replay_path, args.engine);
  }
  for (const std::string& w : args.workloads) {
    bool known = false;
    for (const std::string& k : ChaosRunner::KnownWorkloads()) {
      known = known || k == w;
    }
    if (!known) {
      std::fprintf(stderr, "mira_chaos: unknown workload '%s'\n", w.c_str());
      return 2;
    }
  }

  int failures = 0;
  int cases = 0;
  for (const std::string& w : args.workloads) {
    RunnerOptions ropts;
    ropts.workload = w;
    ropts.local_percent = args.local_percent;
    ropts.engine = args.engine;
    const ChaosRunner runner(ropts);
    for (uint64_t seed = args.seed_begin; seed <= args.seed_end; ++seed) {
      ++cases;
      if (!RunCase(runner, seed, args)) {
        ++failures;
      }
    }
  }
  std::printf("mira_chaos: %d/%d cases passed all oracles\n", cases - failures, cases);
  return failures == 0 ? 0 : 1;
}
