// Comparison engine behind the `mira_report` CLI: diffs two bench runs —
// either BENCH_*.json reports (bench/common.cc WriteBenchReport) or
// `--metrics-out=*.csv` dumps (telemetry::MetricsRegistry::ToCsv) — and
// flags regressions beyond a configurable threshold.
//
// Header-only pure functions over in-memory strings, so the regression gate
// is unit-testable without touching the filesystem. The JSON helpers are
// deliberately flat-object scanners: bench reports and metric dumps nest at
// most one level and never contain escaped quotes in keys we look up.
//
// Gating rules:
//  - bench reports: `wall_ns` is lower-better and gates; `sims_per_sec` is
//    reported for context but never gates (it is derived from wall_ns).
//  - metrics CSVs: only `*_ns` rows gate (lower-better — simulated stall
//    and runtime time); other rows (counts, rates) are informational, since
//    e.g. a higher hit count is not a regression.
//  - one-sided metrics rows are reported, not skipped: a row only in the
//    current run is "added" (informational — new instrumentation), a row
//    only in the baseline is "removed", and a removed *gating* `*_ns` row
//    is itself a regression — a silently vanished stall-time metric would
//    otherwise blind the gate exactly when the code path it measured
//    changed.

#ifndef MIRA_TOOLS_REPORT_H_
#define MIRA_TOOLS_REPORT_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/str.h"

namespace mira::tools {

// Scans a (flat) JSON object for `"key": <number>`. Returns false when the
// key is absent or not followed by a number.
inline bool FindJsonNumber(std::string_view text, std::string_view key, double* out) {
  const std::string needle = "\"" + std::string(key) + "\"";
  const size_t at = text.find(needle);
  if (at == std::string_view::npos) {
    return false;
  }
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string_view::npos) {
    return false;
  }
  const std::string num(text.substr(colon + 1, 64));
  char* end = nullptr;
  const double v = std::strtod(num.c_str(), &end);
  if (end == num.c_str()) {
    return false;
  }
  *out = v;
  return true;
}

// Scans a (flat) JSON object for `"key": "<string>"`.
inline bool FindJsonString(std::string_view text, std::string_view key, std::string* out) {
  const std::string needle = "\"" + std::string(key) + "\"";
  const size_t at = text.find(needle);
  if (at == std::string_view::npos) {
    return false;
  }
  const size_t open = text.find('"', text.find(':', at + needle.size()) + 1);
  if (open == std::string_view::npos) {
    return false;
  }
  const size_t close = text.find('"', open + 1);
  if (close == std::string_view::npos) {
    return false;
  }
  *out = std::string(text.substr(open + 1, close - open - 1));
  return true;
}

// Parses MetricsRegistry::ToCsv output ("metric,kind,value" rows) into
// metric → value. Malformed rows are skipped.
inline std::map<std::string, double> ParseMetricsCsv(std::string_view text) {
  std::map<std::string, double> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      eol = text.size();
    }
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const size_t c1 = line.find(',');
    const size_t c2 = c1 == std::string_view::npos ? std::string_view::npos
                                                   : line.find(',', c1 + 1);
    if (c2 == std::string_view::npos || line.substr(0, c1) == "metric") {
      continue;
    }
    const std::string value(line.substr(c2 + 1));
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) {
      continue;
    }
    out[std::string(line.substr(0, c1))] = v;
  }
  return out;
}

// Row presence across the two runs being diffed.
enum class Presence : uint8_t {
  kBoth = 0,   // present in baseline and current: a value comparison
  kAdded,      // only in current (new instrumentation; never gates)
  kRemoved,    // only in baseline (gating rows removed = regression)
};

struct Comparison {
  std::string name;        // metric or report field
  double base = 0;
  double cur = 0;
  double ratio = 1.0;      // cur / base (1.0 when base is 0)
  bool lower_better = true;
  bool gating = false;     // participates in the regression verdict
  bool regression = false; // gating and beyond threshold in the bad direction
  Presence presence = Presence::kBoth;
};

inline Comparison Compare(std::string name, double base, double cur, bool lower_better,
                          bool gating, double threshold) {
  Comparison c;
  c.name = std::move(name);
  c.base = base;
  c.cur = cur;
  c.ratio = base != 0 ? cur / base : 1.0;
  c.lower_better = lower_better;
  c.gating = gating;
  if (gating && base != 0) {
    c.regression = lower_better ? c.ratio > 1.0 + threshold : c.ratio < 1.0 - threshold;
  }
  return c;
}

// Diffs two bench-report JSONs. `threshold` is the tolerated fractional
// slowdown (0.10 = +10% wall time).
inline std::vector<Comparison> CompareBenchReports(std::string_view base_text,
                                                   std::string_view cur_text,
                                                   double threshold) {
  std::vector<Comparison> out;
  double base_v = 0;
  double cur_v = 0;
  if (FindJsonNumber(base_text, "wall_ns", &base_v) &&
      FindJsonNumber(cur_text, "wall_ns", &cur_v)) {
    out.push_back(Compare("wall_ns", base_v, cur_v, /*lower_better=*/true,
                          /*gating=*/true, threshold));
  }
  if (FindJsonNumber(base_text, "sims_per_sec", &base_v) &&
      FindJsonNumber(cur_text, "sims_per_sec", &cur_v)) {
    out.push_back(Compare("sims_per_sec", base_v, cur_v, /*lower_better=*/false,
                          /*gating=*/false, threshold));
  }
  return out;
}

inline bool IsNsMetric(const std::string& name) {
  return name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

// Diffs two metrics CSVs. Metrics present in both runs are value-compared;
// one-sided metrics are reported as added/removed, and a removed gating
// `*_ns` row counts as a regression (see the header comment).
inline std::vector<Comparison> CompareMetricsCsv(std::string_view base_text,
                                                 std::string_view cur_text,
                                                 double threshold) {
  const auto base = ParseMetricsCsv(base_text);
  const auto cur = ParseMetricsCsv(cur_text);
  std::vector<Comparison> out;
  for (const auto& [name, base_v] : base) {
    const bool is_ns = IsNsMetric(name);
    const auto it = cur.find(name);
    if (it == cur.end()) {
      Comparison c;
      c.name = name;
      c.base = base_v;
      c.presence = Presence::kRemoved;
      c.gating = is_ns;
      c.regression = is_ns;  // a vanished stall-time row blinds the gate
      out.push_back(std::move(c));
      continue;
    }
    out.push_back(Compare(name, base_v, it->second, /*lower_better=*/true,
                          /*gating=*/is_ns, threshold));
  }
  for (const auto& [name, cur_v] : cur) {
    if (base.count(name) != 0) {
      continue;
    }
    Comparison c;
    c.name = name;
    c.cur = cur_v;
    c.presence = Presence::kAdded;
    out.push_back(std::move(c));
  }
  return out;
}

inline bool AnyRegression(const std::vector<Comparison>& comps) {
  for (const auto& c : comps) {
    if (c.regression) {
      return true;
    }
  }
  return false;
}

// One line per comparison: verdict, name, base → cur, and the delta.
inline std::string FormatReport(const std::string& label,
                                const std::vector<Comparison>& comps) {
  std::string out = label + "\n";
  for (const auto& c : comps) {
    if (c.presence == Presence::kAdded) {
      out += support::StrFormat("  %-10s %-40s %14s -> %14.3g\n", "added", c.name.c_str(),
                                "-", c.cur);
      continue;
    }
    if (c.presence == Presence::kRemoved) {
      out += support::StrFormat("  %-10s %-40s %14.3g -> %14s\n",
                                c.regression ? "REGRESSION" : "removed", c.name.c_str(),
                                c.base, "-");
      continue;
    }
    const double delta_pct = (c.ratio - 1.0) * 100.0;
    const char* verdict = c.regression ? "REGRESSION" : (c.gating ? "ok" : "info");
    out += support::StrFormat("  %-10s %-40s %14.3g -> %14.3g  (%+.1f%%)\n", verdict,
                              c.name.c_str(), c.base, c.cur, delta_pct);
  }
  if (comps.empty()) {
    out += "  (no comparable fields)\n";
  }
  return out;
}

}  // namespace mira::tools

#endif  // MIRA_TOOLS_REPORT_H_
