// Figure 17: GPT-2-style inference — Mira vs FastSwap vs Leap (the paper
// excludes AIFM: no matrix-operation support). Paper shape: Mira's
// performance stays flat down to ~4.5% local memory because per-layer
// lifetimes let a small cache stream each layer's weights; the swap systems
// degrade steeply.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Gpt2() {
  static const workloads::Workload w = workloads::BuildGpt2();
  return w;
}

const std::vector<int>& Gpt2MemPercents() {
  static const std::vector<int> kPercents = {4, 10, 25, 50, 75, 100};
  return kPercents;
}

void BM_System(benchmark::State& state, pipeline::SystemKind kind) {
  const auto& w = Gpt2();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const RunOutput out = Run(*w.module, kind, local);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
  }
}

void BM_Mira(benchmark::State& state) {
  const auto& w = Gpt2();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto& compiled = CompileMira(w, local, CacheOnly(), /*max_iterations=*/3);
    const RunOutput out =
        Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
    state.counters["sections"] = static_cast<double>(compiled.plan.sections.size());
  }
}

void RegisterAll() {
  for (const int pct : Gpt2MemPercents()) {
    benchmark::RegisterBenchmark("fig17/fastswap", BM_System, pipeline::SystemKind::kFastSwap)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig17/leap", BM_System, pipeline::SystemKind::kLeap)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig17/mira", BM_Mira)->Arg(pct)->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
