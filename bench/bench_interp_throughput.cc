// Interpreter-throughput microbench: how many plan simulations per second
// one host thread sustains on the inner loops the optimizer actually
// replays (arraysum's streaming scan, graph's indirect updates, gpt2's
// layer loops). Every workload is deep-dive compiled once, then the same
// compiled module is executed repeatedly on fresh worlds — exactly the
// optimizer's evaluate-a-candidate shape, so sims/sec here is the quantity
// that bounds fig11 sweeps and chaos campaigns.
//
// Select the engine with --interp=tree|bytecode (or MIRA_INTERP) and record
// a report with --bench-out=; the checked-in baselines are
// bench/reports/BENCH_interp_{tree,bytecode}.json. Results are
// engine-invariant (asserted here against the first run), so the reports
// differ only in wall time.

#include "bench/common.h"

#include "src/support/check.h"

namespace mira::bench {
namespace {

struct Case {
  const char* name;
  const workloads::Workload& workload;
  int mem_percent;
  int iterations;
};

const workloads::Workload& ArraySum() {
  static const workloads::Workload w = workloads::BuildArraySum();
  return w;
}

const workloads::Workload& Graph() {
  static const workloads::Workload w = [] {
    workloads::GraphParams p;
    p.num_edges = 30'000;
    p.num_nodes = 7'500;
    p.epochs = 2;
    return workloads::BuildGraphTraversal(p);
  }();
  return w;
}

const workloads::Workload& Gpt2() {
  static const workloads::Workload w = workloads::BuildGpt2();
  return w;
}

void BM_Sim(benchmark::State& state, const Case& c) {
  const uint64_t local = LocalBytes(c.workload, c.mem_percent);
  // Compile outside the measured loop: the microbench isolates simulation
  // throughput, and the code cache makes recompilation a non-event anyway.
  const MiraCompiled compiled = FullPlanCompile(c.workload, local, CacheOnly());
  uint64_t first_sim_ns = 0;
  uint64_t first_result = 0;
  for (auto _ : state) {
    const RunOutput out = Run(compiled.module, pipeline::SystemKind::kMira, local,
                              compiled.plan, /*seed=*/42, /*profiling=*/false, "main",
                              nullptr, nullptr, nullptr, /*publish_metrics=*/false);
    MIRA_CHECK(!out.failed);
    if (first_sim_ns == 0) {
      first_sim_ns = out.sim_ns;
      first_result = out.result;
    }
    // Engine invariance: every repetition (whatever --interp= selected)
    // must reproduce the same simulation bit-for-bit.
    MIRA_CHECK(out.sim_ns == first_sim_ns);
    MIRA_CHECK(out.result == first_result);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
  }
  state.counters["sims_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void RegisterAll() {
  static const Case kCases[] = {
      {"arraysum", ArraySum(), 25, 8},
      {"graph", Graph(), 25, 6},
      {"gpt2", Gpt2(), 25, 4},
  };
  for (const Case& c : kCases) {
    benchmark::RegisterBenchmark((std::string("interp_throughput/") + c.name).c_str(),
                                 BM_Sim, c)
        ->Iterations(c.iterations)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --interp= / --bench-out= / ...
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
