// Figure 18: MCF — Mira vs AIFM vs FastSwap vs Leap. Paper shape: MCF is
// the least analysis-friendly app; Mira keeps the pointer-heavy structures
// on swap when memory is plentiful and switches them to a lookup-based
// section when memory is scarce; AIFM fails outright below (even well
// above) full memory because its per-element pointer metadata exceeds local
// DRAM for arrays of longs.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Mcf() {
  static const workloads::Workload w = workloads::BuildMcf();
  return w;
}

void BM_System(benchmark::State& state, pipeline::SystemKind kind) {
  const auto& w = Mcf();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const RunOutput out = Run(*w.module, kind, local);
    state.counters["sim_ms"] = out.failed ? 0 : static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = out.failed ? 0 : Norm(NativeNs(*w.module), out.sim_ns);
    state.counters["failed"] = out.failed ? 1 : 0;
  }
}

void BM_Mira(benchmark::State& state) {
  const auto& w = Mcf();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto& compiled = CompileMira(w, local, AllOn(), /*max_iterations=*/3);
    const RunOutput out =
        Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
    // Which configuration did the optimizer pick for the node array?
    // 0 = generic swap, 1 = direct, 2 = set-assoc, 3 = fully-assoc.
    double structure = 0;
    const auto it = compiled.plan.object_to_section.find("mcf_nodes");
    if (it != compiled.plan.object_to_section.end()) {
      switch (compiled.plan.sections[it->second].structure) {
        case cache::SectionStructure::kDirectMapped:
          structure = 1;
          break;
        case cache::SectionStructure::kSetAssociative:
          structure = 2;
          break;
        case cache::SectionStructure::kFullyAssociative:
          structure = 3;
          break;
        case cache::SectionStructure::kSwap:
          structure = 0;
          break;
      }
    }
    state.counters["nodes_structure"] = structure;
  }
}

void RegisterAll() {
  // AIFM needs ≥ ~300% of the footprint for its metadata on arrays of
  // longs; sweep past 100% to reproduce the paper's "80% larger than full
  // memory" point.
  for (const int pct : {13, 25, 50, 75, 100, 180, 320}) {
    benchmark::RegisterBenchmark("fig18/fastswap", BM_System, pipeline::SystemKind::kFastSwap)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig18/leap", BM_System, pipeline::SystemKind::kLeap)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig18/aifm", BM_System, pipeline::SystemKind::kAifm)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig18/mira", BM_Mira)->Arg(pct)->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
