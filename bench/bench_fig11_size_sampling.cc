// Figure 11: per-section cache performance overhead at sampled section
// sizes (the §4.3 sampling step), on the graph example extended with a
// third, uniformly-randomly accessed array. Paper shape: the sequential
// edge section is flat beyond a tiny size; the indirect node section and
// the random third section respond non-linearly.
//
// The (object × size) grid is exactly the optimizer's sampling workload,
// so it doubles as the harness's parallel-engine smoke: every point is an
// independent deterministic simulation, precomputed once through the
// shared pool (--jobs=N / --serial) into index-addressed slots and only
// read back inside the registered benchmarks.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Graph3() {
  static const workloads::Workload w = [] {
    workloads::GraphParams p;
    p.third_array = true;
    return workloads::BuildGraphTraversal(p);
  }();
  return w;
}

double SectionOverhead(const cache::SectionStats& stats, uint64_t total_ns) {
  const uint64_t oh = stats.overhead_ns();
  const uint64_t rest = total_ns > oh ? total_ns - oh : 1;
  return static_cast<double>(oh) / static_cast<double>(rest);
}

constexpr const char* kObjects[] = {"edges", "nodes", "third"};
constexpr int kPercents[] = {5, 10, 20, 40, 60, 80};

struct SamplePoint {
  double overhead = 0;
  double size_kb = 0;
  double miss_rate = 0;
};

// All grid points, keyed (object, pct_of_avail). Computed lazily on first
// benchmark run; one compile feeds every point, each point simulates in
// its own world.
const std::map<std::pair<std::string, int>, SamplePoint>& Samples() {
  static const std::map<std::pair<std::string, int>, SamplePoint> points = [] {
    const auto& w = Graph3();
    const uint64_t local = LocalBytes(w, 50);
    const MiraCompiled compiled = FullPlanCompile(w, local, CacheOnly());
    struct Task {
      const char* object;
      int pct;
    };
    std::vector<Task> tasks;
    for (const char* object : kObjects) {
      for (const int pct : kPercents) {
        tasks.push_back({object, pct});
      }
    }
    std::vector<SamplePoint> results(tasks.size());
    support::SharedPool().ParallelFor(tasks.size(), [&](size_t i) {
      const Task& t = tasks[i];
      runtime::CachePlan plan = compiled.plan;
      const uint32_t index = plan.object_to_section.at(t.object);
      auto& section = plan.sections[index];
      const uint64_t avail = local * 9 / 10;
      uint64_t size = avail * static_cast<uint64_t>(t.pct) / 100;
      size = std::max<uint64_t>(size - size % section.line_bytes,
                                static_cast<uint64_t>(section.line_bytes) * 4);
      section.size_bytes = size;
      pipeline::World world =
          pipeline::MakeWorld(pipeline::SystemKind::kMira, local, std::move(plan));
      interp::Interpreter interp(&compiled.module, world.backend.get());
      auto r = interp.Run("main");
      MIRA_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      auto* mira = static_cast<backends::MiraBackend*>(world.backend.get());
      results[i].overhead = SectionOverhead(mira->SectionStatsAt(index), interp.clock().now_ns());
      results[i].size_kb = static_cast<double>(size) / 1024.0;
      results[i].miss_rate = mira->SectionStatsAt(index).lines.miss_rate();
    });
    std::map<std::pair<std::string, int>, SamplePoint> out;
    for (size_t i = 0; i < tasks.size(); ++i) {
      out[{tasks[i].object, tasks[i].pct}] = results[i];
    }
    return out;
  }();
  return points;
}

void BM_SizeSample(benchmark::State& state, const char* object) {
  const int pct_of_avail = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const SamplePoint& p = Samples().at({object, pct_of_avail});
    state.counters["overhead"] = p.overhead;
    state.counters["size_kb"] = p.size_kb;
    state.counters["miss_rate"] = p.miss_rate;
  }
}

void RegisterAll() {
  for (const int pct : kPercents) {
    benchmark::RegisterBenchmark("fig11/edges", BM_SizeSample, "edges")
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig11/nodes", BM_SizeSample, "nodes")
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig11/third", BM_SizeSample, "third")
        ->Arg(pct)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out=/--jobs=/... flags
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
