// Figure 11: per-section cache performance overhead at sampled section
// sizes (the §4.3 sampling step), on the graph example extended with a
// third, uniformly-randomly accessed array. Paper shape: the sequential
// edge section is flat beyond a tiny size; the indirect node section and
// the random third section respond non-linearly.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Graph3() {
  static const workloads::Workload w = [] {
    workloads::GraphParams p;
    p.third_array = true;
    return workloads::BuildGraphTraversal(p);
  }();
  return w;
}

double SectionOverhead(const cache::SectionStats& stats, uint64_t total_ns) {
  const uint64_t oh = stats.overhead_ns();
  const uint64_t rest = total_ns > oh ? total_ns - oh : 1;
  return static_cast<double>(oh) / static_cast<double>(rest);
}

void BM_SizeSample(benchmark::State& state, const char* object) {
  const auto& w = Graph3();
  const uint64_t local = LocalBytes(w, 50);
  const int pct_of_avail = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MiraCompiled compiled = FullPlanCompile(w, local, CacheOnly());
    const uint32_t index = compiled.plan.object_to_section.at(object);
    auto& section = compiled.plan.sections[index];
    const uint64_t avail = local * 9 / 10;
    uint64_t size = avail * static_cast<uint64_t>(pct_of_avail) / 100;
    size = std::max<uint64_t>(size - size % section.line_bytes,
                              static_cast<uint64_t>(section.line_bytes) * 4);
    section.size_bytes = size;
    pipeline::World world =
        pipeline::MakeWorld(pipeline::SystemKind::kMira, local, compiled.plan);
    interp::Interpreter interp(&compiled.module, world.backend.get());
    auto r = interp.Run("main");
    MIRA_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    auto* mira = static_cast<backends::MiraBackend*>(world.backend.get());
    state.counters["overhead"] =
        SectionOverhead(mira->SectionStatsAt(index), interp.clock().now_ns());
    state.counters["size_kb"] = static_cast<double>(size) / 1024.0;
    state.counters["miss_rate"] = mira->SectionStatsAt(index).lines.miss_rate();
  }
}

void RegisterAll() {
  for (const int pct : {5, 10, 20, 40, 60, 80}) {
    benchmark::RegisterBenchmark("fig11/edges", BM_SizeSample, "edges")
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig11/nodes", BM_SizeSample, "nodes")
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig11/third", BM_SizeSample, "third")
        ->Arg(pct)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
