// Figure 25: multi-threaded DataFrame "filter" with a writable shared
// result vector. Mira uses a shared fully-associative section with
// dont-evict pinning during each dereference (§4.6); input columns stay in
// per-thread sections. Compared against FastSwap's shared swap cache and an
// AIFM-style shared object cache with per-dereference overhead.

#include "bench/common.h"

#include "src/sim/mt_scheduler.h"

namespace mira::bench {
namespace {

constexpr uint64_t kRows = 400'000;
constexpr uint64_t kComputePerRowNs = 6;

struct SharedWorld {
  farmem::FarMemoryNode node;
  net::Transport net{&node, sim::CostModel::Default()};
  farmem::RemoteAddr zone = 0;
  farmem::RemoteAddr flags = 0;

  SharedWorld() {
    zone = node.AllocRange(kRows * 8).take();
    flags = node.AllocRange(kRows * 8).take();
  }
};

// Thread t filters rows [t*rows/T, (t+1)*rows/T): read zone, write flag.
template <typename ReadFn, typename WriteFn>
std::function<bool(sim::SimClock&)> MakeThread(const SharedWorld& shared, int t, int threads,
                                               ReadFn read, WriteFn write) {
  const uint64_t lo = kRows * static_cast<uint64_t>(t) / static_cast<uint64_t>(threads);
  const uint64_t hi = kRows * static_cast<uint64_t>(t + 1) / static_cast<uint64_t>(threads);
  auto pos = std::make_shared<uint64_t>(lo);
  return [=, &shared](sim::SimClock& clk) {
    const uint64_t end = std::min(hi, *pos + 2048);
    for (uint64_t i = *pos; i < end; ++i) {
      read(clk, shared.zone + i * 8);
      clk.Advance(kComputePerRowNs);
      write(clk, shared.flags + i * 8);
    }
    *pos = end;
    return *pos < hi;
  };
}

void BM_Mira(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SharedWorld shared;
    // Shared writable section: fully associative, conservative line size
    // (§4.6), dont-evict pinning around each dereference.
    cache::SectionConfig shared_cfg;
    shared_cfg.name = "flags-shared";
    shared_cfg.structure = cache::SectionStructure::kFullyAssociative;
    shared_cfg.line_bytes = 4096;
    shared_cfg.size_bytes = kRows * 8 / 2;
    shared_cfg.shared = true;
    auto flags_section = cache::MakeSection(shared_cfg, &shared.net);
    // Per-thread private streaming sections for the input column.
    std::vector<std::unique_ptr<cache::Section>> zone_sections;
    for (int t = 0; t < threads; ++t) {
      cache::SectionConfig cfg;
      cfg.name = "zone-private";
      cfg.structure = cache::SectionStructure::kDirectMapped;
      cfg.line_bytes = 4096;
      cfg.size_bytes = 4096 * 12;
      zone_sections.push_back(cache::MakeSection(cfg, &shared.net));
    }
    sim::MtScheduler scheduler;
    for (int t = 0; t < threads; ++t) {
      cache::Section* zone = zone_sections[static_cast<size_t>(t)].get();
      cache::Section* flags = flags_section.get();
      scheduler.AddThread(MakeThread(
          shared, t, threads,
          [zone](sim::SimClock& clk, farmem::RemoteAddr addr) {
            constexpr uint64_t kElemsPerLine = 4096 / 8;
            if ((addr / 8) % kElemsPerLine == 0) {
              zone->Prefetch(clk, addr + 2 * 4096, 4096);
            }
            zone->Access(clk, addr, 8, /*write=*/false);
          },
          [flags](sim::SimClock& clk, farmem::RemoteAddr addr) {
            flags->Pin(addr, 8);
            // Whole-line writes: the filter writes every flag in the range.
            flags->Access(clk, addr, 8, /*write=*/true, /*full_line_write=*/true);
            flags->Unpin(addr, 8);
          }));
    }
    const uint64_t makespan = scheduler.RunToCompletion();
    state.counters["sim_ms"] = static_cast<double>(makespan) / 1e6;
    state.counters["threads"] = threads;
  }
}

void BM_FastSwap(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SharedWorld shared;
    cache::SwapSection swap(kRows * 8, &shared.net,
                            std::make_unique<cache::ReadaheadPrefetcher>());
    sim::SerialResource fault_lock;
    swap.SetFaultLock(&fault_lock);
    sim::MtScheduler scheduler;
    for (int t = 0; t < threads; ++t) {
      scheduler.AddThread(MakeThread(
          shared, t, threads,
          [&swap](sim::SimClock& clk, farmem::RemoteAddr addr) {
            swap.Access(clk, addr, 8, false);
          },
          [&swap](sim::SimClock& clk, farmem::RemoteAddr addr) {
            swap.Access(clk, addr, 8, true);
          }));
    }
    const uint64_t makespan = scheduler.RunToCompletion();
    state.counters["sim_ms"] = static_cast<double>(makespan) / 1e6;
    state.counters["threads"] = threads;
  }
}

void BM_Aifm(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto& cost = sim::CostModel::Default();
  for (auto _ : state) {
    SharedWorld shared;
    cache::SectionConfig cfg;
    cfg.name = "aifm-shared";
    cfg.structure = cache::SectionStructure::kFullyAssociative;
    cfg.line_bytes = 4096;
    cfg.size_bytes = kRows * 8;
    auto section = cache::MakeSection(cfg, &shared.net);
    sim::MtScheduler scheduler;
    for (int t = 0; t < threads; ++t) {
      scheduler.AddThread(MakeThread(
          shared, t, threads,
          [&](sim::SimClock& clk, farmem::RemoteAddr addr) {
            clk.Advance(cost.aifm_deref_ns);
            section->Access(clk, addr, 8, false);
          },
          [&](sim::SimClock& clk, farmem::RemoteAddr addr) {
            clk.Advance(cost.aifm_deref_ns);
            section->Access(clk, addr, 8, true);
          }));
    }
    const uint64_t makespan = scheduler.RunToCompletion();
    state.counters["sim_ms"] = static_cast<double>(makespan) / 1e6;
    state.counters["threads"] = threads;
  }
}

void RegisterAll() {
  for (const int threads : {1, 2, 4, 8, 16}) {
    benchmark::RegisterBenchmark("fig25/mira_shared_section", BM_Mira)
        ->Arg(threads)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig25/fastswap", BM_FastSwap)->Arg(threads)->Iterations(1);
    benchmark::RegisterBenchmark("fig25/aifm", BM_Aifm)->Arg(threads)->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
