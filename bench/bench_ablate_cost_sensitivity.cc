// Design-choice ablation (DESIGN.md §5): how sensitive are the headline
// results to the network cost model? Sweeps RTT × bandwidth around the
// default (3 µs, 50 Gbps) and re-runs the graph example. Mira's compiler
// re-derives line sizes and prefetch distances from each model ("we
// determine when to prefetch based on system environments", §4.5), so the
// Mira-beats-swap ordering should hold across regimes even as magnitudes
// shift.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Graph() {
  static const workloads::Workload w = workloads::BuildGraphTraversal();
  return w;
}

struct Net {
  const char* name;
  uint64_t rtt_ns;
  double bytes_per_ns;
};

const std::vector<Net>& Nets() {
  static const std::vector<Net> kNets = {
      {"cxl_like_1us_100g", 1000, 12.5},
      {"rdma_default_3us_50g", 3000, 6.25},
      {"slow_fabric_10us_10g", 10000, 1.25},
  };
  return kNets;
}

uint64_t RunWith(const ir::Module& module, pipeline::SystemKind kind, uint64_t local,
                 const sim::CostModel& cost, const runtime::CachePlan& plan = {}) {
  pipeline::World world = pipeline::MakeWorld(kind, local, plan, cost);
  interp::Interpreter interp(&module, world.backend.get());
  auto r = interp.Run("main");
  MIRA_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  world.backend->Drain(interp.clock());
  return interp.clock().now_ns();
}

void BM_Sensitivity(benchmark::State& state, const Net* net) {
  const auto& w = Graph();
  const uint64_t local = LocalBytes(w, 50);
  static sim::CostModel model;  // must outlive the worlds below
  model = sim::CostModel();
  model.rdma_rtt_ns = net->rtt_ns;
  model.network_bytes_per_ns = net->bytes_per_ns;
  for (auto _ : state) {
    // Compile against this network: profile → full-scope plan → passes.
    pipeline::World prof_world =
        pipeline::MakeWorld(pipeline::SystemKind::kMira, local, {}, model);
    interp::InterpOptions popts_i;
    popts_i.profiling = true;
    interp::Interpreter prof(w.module.get(), prof_world.backend.get(), popts_i);
    MIRA_CHECK(prof.Run("main").ok());
    analysis::AccessAnalysis access(w.module.get());
    access.Run();
    pipeline::PlannerOptions popts = CacheOnly();
    popts.local_bytes = local;
    popts.func_frac = 1.0;
    popts.obj_frac = 1.0;
    const auto draft =
        pipeline::DerivePlan(*w.module, access, prof.profile(), model, popts);
    const ir::Module compiled = pipeline::CompileWithPlan(*w.module, draft, popts, "main");

    const uint64_t native = RunWith(*w.module, pipeline::SystemKind::kNative, 0, model);
    const uint64_t fast = RunWith(*w.module, pipeline::SystemKind::kFastSwap, local, model);
    const uint64_t mira =
        RunWith(compiled, pipeline::SystemKind::kMira, local, model, draft.plan);
    state.counters["mira_norm"] = Norm(native, mira);
    state.counters["fastswap_norm"] = Norm(native, fast);
    state.counters["mira_speedup_vs_fastswap"] =
        static_cast<double>(fast) / static_cast<double>(mira);
    // The compiler's adapted choices, for the record.
    const auto it = draft.plan.object_to_section.find("edges");
    if (it != draft.plan.object_to_section.end()) {
      state.counters["edge_line_bytes"] =
          static_cast<double>(draft.plan.sections[it->second].line_bytes);
      state.counters["edge_prefetch_distance"] =
          static_cast<double>(draft.plan.sections[it->second].prefetch_distance);
    }
  }
}

void RegisterAll() {
  for (const auto& net : Nets()) {
    benchmark::RegisterBenchmark((std::string("sensitivity/") + net.name).c_str(),
                                 BM_Sensitivity, &net)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
