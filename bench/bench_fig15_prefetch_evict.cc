// Figure 15: benefit of compiler-inserted prefetching and eviction hints on
// the graph example, against Leap's history-based majority prefetching.
// Paper shape: prefetching contributes most (it hides the sequential edge
// latency and follows the indirect node accesses); eviction hints hide
// write-back off the critical path; Leap's single global pattern cannot
// serve the interleaved edge/node access mix.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Graph() {
  static const workloads::Workload w = workloads::BuildGraphTraversal();
  return w;
}

void BM_Mira(benchmark::State& state, bool prefetch, bool evict) {
  const auto& w = Graph();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto toggles = Toggles(true, prefetch, evict, true, true, true, false);
    const MiraCompiled compiled = FullPlanCompile(w, local, toggles);
    const RunOutput out =
        Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
  }
}

void BM_Swap(benchmark::State& state, pipeline::SystemKind kind) {
  const auto& w = Graph();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const RunOutput out = Run(*w.module, kind, local);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
  }
}

void RegisterAll() {
  for (const int pct : {25, 50, 75}) {
    benchmark::RegisterBenchmark("fig15/mira_no_pf_no_evict", BM_Mira, false, false)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig15/mira_prefetch", BM_Mira, true, false)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig15/mira_prefetch_evict", BM_Mira, true, true)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig15/leap", BM_Swap, pipeline::SystemKind::kLeap)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig15/fastswap", BM_Swap, pipeline::SystemKind::kFastSwap)
        ->Arg(pct)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
