// Figure 16: overall DataFrame performance — Mira vs AIFM vs FastSwap vs
// Leap across local memory sizes. Mira is "trained" on one synthetic
// taxi-year (seed 2014) and tested on unseen years (seeds 2015/2016), as in
// the paper. Paper shape: Mira on top; Leap below FastSwap (slower swap
// data path); AIFM pays constant dereference overhead even at 100% memory.

#include "bench/common.h"

namespace mira::bench {
namespace {

constexpr uint64_t kTrainSeed = 2014;
constexpr uint64_t kTestSeed = 2015;

const workloads::Workload& Df() {
  static const workloads::Workload w = workloads::BuildDataFrame();
  return w;
}

void BM_System(benchmark::State& state, pipeline::SystemKind kind) {
  const auto& w = Df();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const RunOutput out = Run(*w.module, kind, local, {}, kTestSeed);
    state.counters["sim_ms"] = out.failed ? 0 : static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] =
        out.failed ? 0 : Norm(NativeNs(*w.module, kTestSeed), out.sim_ns);
    state.counters["failed"] = out.failed ? 1 : 0;
  }
}

void BM_Mira(benchmark::State& state, uint64_t test_seed) {
  const auto& w = Df();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // Train (profile + compile) on the 2014 data, evaluate on test data.
    pipeline::OptimizeOptions opts;
    opts.local_bytes = local;
    opts.max_iterations = 3;
    opts.train_seed = kTrainSeed;
    pipeline::IterativeOptimizer optimizer(w.module.get(), opts);
    static std::map<uint64_t, pipeline::CompiledProgram> cache;
    auto it = cache.find(local);
    if (it == cache.end()) {
      it = cache.emplace(local, optimizer.Optimize()).first;
    }
    const auto& compiled = it->second;
    const RunOutput out = Run(compiled.module, pipeline::SystemKind::kMira, local,
                              compiled.plan, test_seed);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module, test_seed), out.sim_ns);
  }
}

void RegisterAll() {
  for (const int pct : MemoryPercents()) {
    benchmark::RegisterBenchmark("fig16/fastswap", BM_System, pipeline::SystemKind::kFastSwap)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig16/leap", BM_System, pipeline::SystemKind::kLeap)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig16/aifm", BM_System, pipeline::SystemKind::kAifm)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig16/mira_test2015", BM_Mira, kTestSeed)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig16/mira_test2016", BM_Mira, uint64_t{2016})
        ->Arg(pct)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
