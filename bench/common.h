// Shared helpers for the figure-reproduction benchmarks.
//
// Every benchmark reports *simulated* time (deterministic; see DESIGN.md §5)
// through google-benchmark counters:
//   sim_ms    — simulated milliseconds of the measured program
//   norm      — performance normalized to native full-local-memory execution
//               (the paper's y-axis on every overall-performance figure)
// plus figure-specific counters (miss rates, traffic, ...). Wall time in the
// "Time" column is just host execution of the simulator — ignore it.

#ifndef MIRA_BENCH_COMMON_H_
#define MIRA_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "src/backends/aifm_backend.h"
#include "src/backends/mira_backend.h"
#include "src/interp/interpreter.h"
#include "src/pipeline/optimizer.h"
#include "src/pipeline/world.h"
#include "src/support/thread_pool.h"
#include "src/telemetry/telemetry.h"
#include "src/workloads/workloads.h"

namespace mira::bench {

// Harness configuration parsed from the command line (see InitTelemetry):
//   --jobs=N           host threads for the parallel evaluation engine
//                      (0 = auto: hardware concurrency)
//   --serial           force single-threaded evaluation (same as --jobs=1)
//   --bench-out=FILE   write a BENCH_*.json report after the runs: wall ns,
//                      simulations executed, simulations/second, and — when
//                      --bench-baseline= names a prior serial report (or a
//                      raw ns value) — the speedup over that baseline
//   --bench-baseline=X a previous --bench-out file, or a wall-ns number
//   --interp=ENGINE    execution engine for every simulation: "tree" or
//                      "bytecode" (default: the MIRA_INTERP environment
//                      variable, else bytecode). Results are bit-identical
//                      across engines; only wall time changes. The resolved
//                      engine is recorded in the --bench-out report.
//
// Observability flags (also stripped; see src/telemetry/telemetry.h):
//   --chrome-trace-out=FILE  Chrome trace-event JSON (load in Perfetto /
//                            chrome://tracing); --trace-out= is an alias
//   --profile-out=FILE       folded stall-attribution profile (flamegraph
//                            input); also prints a top-10 table to stderr
//   --trace-ring=N           keep only the newest N trace events
//                            (drop-oldest ring; 0 = unbounded, the default)
//   --metrics-out=FILE       metrics registry snapshot as CSV
struct BenchConfig {
  int jobs = 0;  // 0 = auto
  bool serial = false;
  std::string bench_out;
  std::string bench_baseline;
  std::string bench_name;  // basename of argv[0]
};
const BenchConfig& Config();

// Telemetry wiring for bench mains: call InitTelemetry(&argc, argv) BEFORE
// benchmark::Initialize (it strips --trace-out=/--metrics-out= plus the
// BenchConfig flags above so google-benchmark never sees them, and applies
// --jobs/--serial via support::SetDefaultParallelism), and FlushTelemetry()
// after the runs to write the requested files — including the --bench-out=
// report, whose wall clock and simulation count cover everything between
// the two calls.
void InitTelemetry(int* argc, char** argv);
void FlushTelemetry();

struct RunOutput {
  pipeline::World world;
  uint64_t sim_ns = 0;
  uint64_t result = 0;
  interp::RunProfile profile;
  std::map<std::string, farmem::RemoteAddr> object_addrs;
  uint64_t offload_fallbacks = 0;  // offloads denied admission, run locally
  bool failed = false;             // e.g. AIFM metadata OOM
  std::string fail_reason;
};

// One full measured execution on a fresh world. When `faults` is non-null a
// fresh injector for that plan is attached, so identical (plan, seed) runs
// are bit-identical; the world's transport/backend expose the fault and
// degradation counters afterwards. When `integrity` is non-null an
// IntegrityManager with that config is attached (verified fetches, version
// vectors, recovery ladder; `out.world.integrity->stats()` afterwards).
// When `cluster` is non-null a replicated FarMemoryCluster is attached
// (node-crash schedules in the fault plan then crash real replicas;
// `out.world.cluster->stats()` afterwards, published as farmem.cluster.*).
// `publish_metrics=false` skips the end-of-run registry snapshot — pass it
// from ParallelFor tasks so "the last measured run wins" stays a
// deterministic, serially-published statement (see bench_fig05/fig11).
RunOutput Run(const ir::Module& module, pipeline::SystemKind kind, uint64_t local_bytes,
              runtime::CachePlan plan = {}, uint64_t seed = 42, bool profiling = false,
              const std::string& entry = "main", const net::FaultPlan* faults = nullptr,
              const integrity::IntegrityConfig* integrity = nullptr,
              const farmem::ClusterConfig* cluster = nullptr,
              bool publish_metrics = true);

// Snapshots a cluster's counters into `registry` as farmem.cluster.*.
void PublishClusterMetrics(telemetry::MetricsRegistry& registry,
                           const farmem::ClusterStats& stats);

// Native full-local-memory execution time for a module (memoized per module
// pointer + seed; thread-safe, callable from ParallelFor tasks).
uint64_t NativeNs(const ir::Module& module, uint64_t seed = 42,
                  const std::string& entry = "main");

struct MiraCompiled {
  ir::Module module;
  runtime::CachePlan plan;
  pipeline::PlanDraft draft;
  uint64_t baseline_swap_ns = 0;
  double optimize_wall_ms = 0;  // host-side "compile time"
  std::vector<pipeline::IterationLog> log;
};

// Runs the full iterative optimizer for `w` at `local_bytes` with the given
// ablation toggles; memoized on (module pointer, local_bytes, toggle mask).
// Thread-safe: concurrent callers serialize on the cache (the optimizer's
// own sampling grid still fans out internally via ParallelFor).
const MiraCompiled& CompileMira(const workloads::Workload& w, uint64_t local_bytes,
                                const pipeline::PlannerOptions& toggles, int max_iterations = 3);

// Deep-dive compilations: full analysis scope (100% of functions/objects),
// one profiling run, no iterative search — used by the figure benches that
// sweep a single knob (line size, structure, section size) around an
// otherwise fixed plan. `line_override` rewrites an object's cache-line
// size before code generation so prefetch guards match the line geometry.
MiraCompiled FullPlanCompile(const workloads::Workload& w, uint64_t local_bytes,
                             const pipeline::PlannerOptions& toggles,
                             const std::map<std::string, uint32_t>& line_override = {},
                             bool publish_metrics = true);

inline pipeline::PlannerOptions Toggles(bool sections, bool prefetch, bool evict, bool batch,
                                        bool promote, bool selective, bool offload) {
  pipeline::PlannerOptions t;
  t.enable_sections = sections;
  t.enable_prefetch = prefetch;
  t.enable_evict_hints = evict;
  t.enable_batching = batch;
  t.enable_promote = promote;
  t.enable_selective = selective;
  t.enable_offload = offload;
  return t;
}

inline pipeline::PlannerOptions AllOn() {
  return Toggles(true, true, true, true, true, true, true);
}
// Cache techniques only — used where the paper studies section behavior.
inline pipeline::PlannerOptions CacheOnly() {
  return Toggles(true, true, true, true, true, true, false);
}

// Normalized performance: native_time / system_time (1.0 = native speed).
inline double Norm(uint64_t native_ns, uint64_t sys_ns) {
  return sys_ns == 0 ? 0.0 : static_cast<double>(native_ns) / static_cast<double>(sys_ns);
}

// The standard local-memory sweep, as % of the workload footprint.
inline const std::vector<int>& MemoryPercents() {
  static const std::vector<int> kPercents = {13, 25, 50, 75, 100};
  return kPercents;
}

inline uint64_t LocalBytes(const workloads::Workload& w, int percent) {
  return w.footprint_bytes * static_cast<uint64_t>(percent) / 100;
}

}  // namespace mira::bench

#endif  // MIRA_BENCH_COMMON_H_
