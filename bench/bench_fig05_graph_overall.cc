// Figure 5: overall performance of the graph-traversal rundown example —
// Mira vs FastSwap vs Leap vs AIFM across local memory sizes, normalized to
// native execution on full local memory.
//
// Two Mira series are reported: full Mira (which may offload the traversal
// kernel to the far node, §4.8) and Mira restricted to its cache techniques
// (sections + prefetch + hints + batching), matching the paper's cache-
// focused discussion of this example.
//
// The (system × memory-size) sweep is a grid of independent deterministic
// simulations, so it is precomputed once through the shared pool
// (--jobs=N / --serial) into index-addressed cells; the registered
// benchmarks only read the cells back. One designated run (the final grid
// cell) is re-published serially so the registry snapshot stays
// deterministic regardless of task completion order.

#include "bench/common.h"

#include <cstring>

namespace mira::bench {
namespace {

const workloads::Workload& Graph() {
  static const workloads::Workload w = workloads::BuildGraphTraversal();
  return w;
}

struct Cell {
  double sim_ms = 0;
  double norm = 0;
  double failed = 0;
  double speedup_vs_fastswap = 0;  // Mira series only
};

struct Task {
  std::string series;
  pipeline::SystemKind kind = pipeline::SystemKind::kFastSwap;
  bool mira = false;
  bool offload = false;
  int pct = 0;
};

std::vector<Task> GridTasks() {
  std::vector<Task> tasks;
  for (const int pct : MemoryPercents()) {
    tasks.push_back({"fastswap", pipeline::SystemKind::kFastSwap, false, false, pct});
    tasks.push_back({"leap", pipeline::SystemKind::kLeap, false, false, pct});
    tasks.push_back({"aifm", pipeline::SystemKind::kAifm, false, false, pct});
    tasks.push_back({"mira", pipeline::SystemKind::kMira, true, true, pct});
    tasks.push_back({"mira_cache_only", pipeline::SystemKind::kMira, true, false, pct});
  }
  return tasks;
}

const std::map<std::pair<std::string, int>, Cell>& Cells() {
  static const std::map<std::pair<std::string, int>, Cell> cells = [] {
    const auto& w = Graph();
    const std::vector<Task> tasks = GridTasks();
    std::vector<Cell> results(tasks.size());
    // The final cell's world is kept alive and published after the join so
    // "the last measured run wins" names the same run on every schedule.
    RunOutput last;
    support::SharedPool().ParallelFor(tasks.size(), [&](size_t i) {
      const Task& t = tasks[i];
      const uint64_t local = LocalBytes(w, t.pct);
      Cell& cell = results[i];
      if (!t.mira) {
        RunOutput out = Run(*w.module, t.kind, local, {}, 42, false, "main", nullptr,
                            nullptr, nullptr, /*publish_metrics=*/false);
        cell.sim_ms = out.failed ? 0 : static_cast<double>(out.sim_ns) / 1e6;
        cell.norm = out.failed ? 0 : Norm(NativeNs(*w.module), out.sim_ns);
        cell.failed = out.failed ? 1 : 0;
        if (i + 1 == tasks.size()) {
          last = std::move(out);
        }
        return;
      }
      const auto& compiled = CompileMira(w, local, t.offload ? AllOn() : CacheOnly());
      RunOutput out = Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan,
                          42, false, "main", nullptr, nullptr, nullptr,
                          /*publish_metrics=*/false);
      cell.sim_ms = static_cast<double>(out.sim_ns) / 1e6;
      cell.norm = Norm(NativeNs(*w.module), out.sim_ns);
      const uint64_t fastswap_ns = Run(*w.module, pipeline::SystemKind::kFastSwap, local, {},
                                       42, false, "main", nullptr, nullptr, nullptr,
                                       /*publish_metrics=*/false)
                                       .sim_ns;
      cell.speedup_vs_fastswap =
          static_cast<double>(fastswap_ns) / static_cast<double>(out.sim_ns);
      if (i + 1 == tasks.size()) {
        last = std::move(out);
      }
    });
    if (!last.failed && last.world.backend != nullptr) {
      last.world.backend->PublishMetrics(telemetry::Metrics());
      interp::PublishRunProfile(telemetry::Metrics(), last.profile);
    }
    std::map<std::pair<std::string, int>, Cell> out;
    for (size_t i = 0; i < tasks.size(); ++i) {
      out[{tasks[i].series, tasks[i].pct}] = results[i];
    }
    return out;
  }();
  return cells;
}

void BM_Cell(benchmark::State& state, const char* series) {
  const int pct = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const Cell& cell = Cells().at({series, pct});
    state.counters["sim_ms"] = cell.sim_ms;
    state.counters["norm"] = cell.norm;
    if (std::strncmp(series, "mira", 4) == 0) {
      state.counters["speedup_vs_fastswap"] = cell.speedup_vs_fastswap;
    } else {
      state.counters["failed"] = cell.failed;
    }
  }
}

void RegisterAll() {
  for (const int pct : MemoryPercents()) {
    for (const char* series : {"fastswap", "leap", "aifm", "mira", "mira_cache_only"}) {
      benchmark::RegisterBenchmark((std::string("fig05/") + series).c_str(), BM_Cell, series)
          ->Arg(pct)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out=/--jobs=/... flags
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
