// Figure 5: overall performance of the graph-traversal rundown example —
// Mira vs FastSwap vs Leap vs AIFM across local memory sizes, normalized to
// native execution on full local memory.
//
// Two Mira series are reported: full Mira (which may offload the traversal
// kernel to the far node, §4.8) and Mira restricted to its cache techniques
// (sections + prefetch + hints + batching), matching the paper's cache-
// focused discussion of this example.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Graph() {
  static const workloads::Workload w = workloads::BuildGraphTraversal();
  return w;
}

void BM_System(benchmark::State& state, pipeline::SystemKind kind) {
  const auto& w = Graph();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const RunOutput out = Run(*w.module, kind, local);
    state.counters["sim_ms"] = out.failed ? 0 : static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = out.failed ? 0 : Norm(NativeNs(*w.module), out.sim_ns);
    state.counters["failed"] = out.failed ? 1 : 0;
  }
}

void BM_Mira(benchmark::State& state, bool offload) {
  const auto& w = Graph();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto& compiled = CompileMira(w, local, offload ? AllOn() : CacheOnly());
    const RunOutput out =
        Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
    const uint64_t fastswap_ns =
        Run(*w.module, pipeline::SystemKind::kFastSwap, local).sim_ns;
    state.counters["speedup_vs_fastswap"] =
        static_cast<double>(fastswap_ns) / static_cast<double>(out.sim_ns);
  }
}

void RegisterAll() {
  for (const int pct : MemoryPercents()) {
    benchmark::RegisterBenchmark("fig05/fastswap", BM_System, pipeline::SystemKind::kFastSwap)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig05/leap", BM_System, pipeline::SystemKind::kLeap)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig05/aifm", BM_System, pipeline::SystemKind::kAifm)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig05/mira", BM_Mira, true)->Arg(pct)->Iterations(1);
    benchmark::RegisterBenchmark("fig05/mira_cache_only", BM_Mira, false)
        ->Arg(pct)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
