// Figure 9: cache performance overhead vs cache-line size for the node and
// edge sections. Paper shape: the randomly-accessed node array is best at
// the smallest line that holds its 128 B element; the sequentially-accessed
// edge array improves with larger lines up to the network's efficient
// transfer size.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Graph() {
  static const workloads::Workload w = workloads::BuildGraphTraversal();
  return w;
}

// Cache performance overhead of one section: runtime+stall over the rest of
// execution (§4.1's definition, scoped to the section).
double SectionOverhead(const cache::SectionStats& stats, uint64_t total_ns) {
  const uint64_t oh = stats.overhead_ns();
  const uint64_t rest = total_ns > oh ? total_ns - oh : 1;
  return static_cast<double>(oh) / static_cast<double>(rest);
}

void BM_LineSize(benchmark::State& state, const char* object) {
  const auto& w = Graph();
  const uint64_t local = LocalBytes(w, 50);
  const uint32_t line = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    const MiraCompiled compiled =
        FullPlanCompile(w, local, CacheOnly(), {{object, line}});
    pipeline::World world =
        pipeline::MakeWorld(pipeline::SystemKind::kMira, local, compiled.plan);
    interp::Interpreter interp(&compiled.module, world.backend.get());
    auto r = interp.Run("main");
    MIRA_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    auto* mira = static_cast<backends::MiraBackend*>(world.backend.get());
    const uint32_t index = mira->plan().object_to_section.at(object);
    state.counters["overhead"] =
        SectionOverhead(mira->SectionStatsAt(index), interp.clock().now_ns());
    state.counters["sim_ms"] = static_cast<double>(interp.clock().now_ns()) / 1e6;
    state.counters["bytes_fetched_mb"] =
        static_cast<double>(mira->SectionStatsAt(index).bytes_fetched) / 1e6;
  }
}

void RegisterAll() {
  for (const int line : {128, 256, 512, 1024, 2048, 4096, 8192}) {
    benchmark::RegisterBenchmark("fig09/node_section", BM_LineSize, "nodes")
        ->Arg(line)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig09/edge_section", BM_LineSize, "edges")
        ->Arg(line)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
