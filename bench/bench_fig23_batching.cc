// Figure 23: data-access batching on a DataFrame job computing avg, min and
// max over the same vector (three consecutive loops in the source). Mira
// fuses the loops and batch-fetches the vector once; without program
// knowledge, AIFM executes each operator in isolation and FastSwap drags
// whole pages three times. Paper shape: batching helps Mira consistently at
// every local-memory size.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Job() {
  static const workloads::Workload w = [] {
    workloads::DataFrameParams p;
    p.rows = 200'000;
    p.filter_op = false;
    p.groupby_op = false;
    p.wide_row_scan = false;
    p.batch_job = true;
    return workloads::BuildDataFrame(p);
  }();
  return w;
}

void BM_Mira(benchmark::State& state, bool batching) {
  const auto& w = Job();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto toggles = Toggles(true, true, true, batching, true, true, false);
    const MiraCompiled compiled = FullPlanCompile(w, local, toggles);
    const RunOutput out =
        Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
    state.counters["net_msgs"] = static_cast<double>(out.world.net->stats().messages);
    state.counters["net_mb"] =
        static_cast<double>(out.world.net->stats().total_bytes()) / 1e6;
  }
}

void BM_System(benchmark::State& state, pipeline::SystemKind kind) {
  const auto& w = Job();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const RunOutput out = Run(*w.module, kind, local);
    state.counters["sim_ms"] = out.failed ? 0 : static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = out.failed ? 0 : Norm(NativeNs(*w.module), out.sim_ns);
    state.counters["failed"] = out.failed ? 1 : 0;
  }
}

void RegisterAll() {
  for (const int pct : MemoryPercents()) {
    benchmark::RegisterBenchmark("fig23/mira_batching", BM_Mira, true)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig23/mira_no_batching", BM_Mira, false)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig23/aifm", BM_System, pipeline::SystemKind::kAifm)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig23/fastswap", BM_System, pipeline::SystemKind::kFastSwap)
        ->Arg(pct)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
