// §6.1 table data: analysis-scope reduction and instrumentation overhead.
//   - Paper: profiling narrows MCF from 1.8 K LoC to 0.3 K (3 functions) and
//     GPT-2 from 1000+ allocation sites to 122; analysis+compile finish in
//     seconds; run-time profiling adds 0.4–0.7 %.
//   - Here: per app, total vs selected functions, total vs selected
//     allocation sites, total vs analyzed IR instructions, compile (host)
//     time, and the measured profiling-instrumentation overhead.

#include "bench/common.h"

namespace mira::bench {
namespace {

struct App {
  const char* name;
  const workloads::Workload& (*get)();
};

const workloads::Workload& Df() {
  static const workloads::Workload w = workloads::BuildDataFrame();
  return w;
}
const workloads::Workload& Gpt() {
  static const workloads::Workload w = workloads::BuildGpt2();
  return w;
}
const workloads::Workload& Mc() {
  static const workloads::Workload w = workloads::BuildMcf();
  return w;
}

const std::vector<App>& Apps() {
  static const std::vector<App> kApps = {{"dataframe", &Df}, {"gpt2", &Gpt}, {"mcf", &Mc}};
  return kApps;
}

void BM_Scope(benchmark::State& state, const App* app) {
  const auto& w = app->get();
  const uint64_t local = w.footprint_bytes / 2;
  for (auto _ : state) {
    const auto& compiled = CompileMira(w, local, AllOn(), /*max_iterations=*/2);
    uint64_t total_instrs = w.module->InstrCount();
    uint64_t selected_instrs = 0;
    for (const auto& fname : compiled.draft.selected_functions) {
      const ir::Function* f = w.module->FindFunction(fname);
      if (f != nullptr) {
        ir::WalkInstrs(f->body, [&](const ir::Instr&) { ++selected_instrs; });
      }
    }
    state.counters["funcs_total"] = static_cast<double>(w.module->functions.size());
    state.counters["funcs_selected"] =
        static_cast<double>(compiled.draft.selected_functions.size());
    state.counters["alloc_sites_total"] = static_cast<double>(compiled.draft.total_objects);
    state.counters["alloc_sites_selected"] =
        static_cast<double>(compiled.draft.selected_objects.size());
    state.counters["instrs_total"] = static_cast<double>(total_instrs);
    state.counters["instrs_analyzed"] = static_cast<double>(selected_instrs);
    state.counters["compile_host_ms"] = compiled.optimize_wall_ms;
  }
}

void BM_ProfilingOverhead(benchmark::State& state, const App* app) {
  const auto& w = app->get();
  const uint64_t local = w.footprint_bytes / 2;
  for (auto _ : state) {
    const auto& compiled = CompileMira(w, local, AllOn(), /*max_iterations=*/2);
    const RunOutput plain =
        Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan, 42, false);
    const RunOutput instrumented =
        Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan, 42, true);
    state.counters["profiling_overhead_pct"] =
        100.0 * (static_cast<double>(instrumented.sim_ns) /
                     static_cast<double>(plain.sim_ns) -
                 1.0);
  }
}

void RegisterAll() {
  for (const auto& app : Apps()) {
    benchmark::RegisterBenchmark((std::string("tbl_scope/") + app.name).c_str(), BM_Scope,
                                 &app)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        (std::string("tbl_profiling_overhead/") + app.name).c_str(), BM_ProfilingOverhead,
        &app)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
