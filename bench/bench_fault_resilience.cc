// Fault resilience: the deterministic fault-injection scenarios from
// DESIGN.md "Failure model", run end to end on the graph workload's full
// Mira compilation.
//
// Scenarios:
//   clean        — injector attached with an empty plan; must match the
//                  fault-free run bit for bit (pinned by fault_test.cc too)
//   lossy        — 2% drop/timeout per attempt + 5% tail events at 4x
//   bursty_outage— periodic far-node outages; sections ride them out in
//                  degraded mode (degraded_ms > 0), nothing aborts
//   degraded_bw  — link at 25% bandwidth for the whole run
//   silent_corruption — bit flips / stale reads / duplicated writebacks that
//                  no status code reports; runs with the integrity layer
//                  attached, which must detect AND heal every episode
//   torn_writeback — multi-line drains tear partway; the version vector
//                  detects the torn suffix and the drain re-publishes it
//   node_crash   — one far node of a 3-node/1-replica cluster crashes
//                  mid-run and never returns; the lease detector fires,
//                  surviving replicas are promoted, and the cluster
//                  re-replicates back to full redundancy
//   crash_during_drain — the writeback-hostile torn plan plus a node crash
//                  landing while sync drains are hot; the drain ladder's
//                  kNodeFailed rung recovers, integrity stays clean
//   rolling_crashes — crash+rejoin cycles roll over every node (the RPC
//                  home last); rejoined nodes come back empty and are
//                  refilled by background re-replication
//   chaos_random — seeded random fault schedules from the chaos harness
//                  (src/chaos, DESIGN.md §7.2): a small seed sweep of
//                  generated multi-fault schedules, each checked against
//                  the full oracle suite; any violation aborts the bench
//
// Every scenario asserts the program result equals the fault-free result:
// injected faults are either retried to success or absorbed by a documented
// degradation path — never silently wrong. The two integrity scenarios
// additionally assert integrity.detected > 0 and healed == detected
// (self-healing, DESIGN.md §8). `fault_adaptive` exercises the
// failure-aware adaptation trigger (sustained fault-inflated overhead →
// re-optimization under the same fault schedule).
//
// Per-scenario counters are also published into the metrics registry under
// "bench.fault.<scenario>.*" so `--metrics-out=<file>.{json,csv}` captures
// machine-readable fault/integrity evidence for every scenario.

#include <string>

#include "bench/common.h"
#include "src/chaos/oracles.h"
#include "src/chaos/runner.h"
#include "src/chaos/schedule.h"
#include "src/pipeline/adaptive.h"

namespace mira::bench {
namespace {

constexpr uint64_t kFaultSeed = 7;

const workloads::Workload& Graph() {
  static const workloads::Workload w = workloads::BuildGraphTraversal();
  return w;
}

net::FaultPlan PlanFor(const std::string& scenario) {
  if (scenario == "clean") {
    return net::FaultPlan::Clean();
  }
  if (scenario == "lossy") {
    return net::FaultPlan::Lossy(kFaultSeed);
  }
  if (scenario == "bursty_outage") {
    // Three 0.6 ms far-node outages across the network-active phase. With
    // offload on, all verbs issue in the first ~1.5 ms of simulated time
    // (the rest of the run executes remotely), so the bursts must land
    // there. Each window is several times the per-verb retry budget
    // (~0.135 ms), so some verbs exhaust with kUnavailable and the
    // sections wait the remainder out in degraded mode.
    return net::FaultPlan::BurstyOutage(kFaultSeed, 0, 600'000, 800'000, 3);
  }
  if (scenario == "silent_corruption") {
    return net::FaultPlan::SilentCorruption(kFaultSeed);
  }
  if (scenario == "torn_writeback") {
    return net::FaultPlan::TornWriteback(kFaultSeed);
  }
  if (scenario == "node_crash") {
    // Node 1 (primary for a third of the chunks) dies at 0.4 ms — inside
    // the network-active phase — and never returns.
    return net::FaultPlan::NodeCrash(kFaultSeed, /*node=*/1, /*crash_ns=*/400'000);
  }
  if (scenario == "crash_during_drain") {
    // Writeback-hostile plan with a crash landing while the forced sync
    // drains are in full swing: the drain ladder must take the kNodeFailed
    // rung, not the retry/backoff one.
    net::FaultPlan plan = net::FaultPlan::TornWriteback(kFaultSeed);
    plan.node_crashes.push_back({/*node=*/1, /*crash_ns=*/500'000, /*rejoin_ns=*/0});
    return plan;
  }
  if (scenario == "rolling_crashes") {
    // Three crash+rejoin cycles rolling over all three nodes within the
    // active window, node 0 (RPC home / allocator seed) last. Downtime
    // (0.25 ms) < period (0.5 ms), so one node is down at a time and the
    // re-replication pass between cycles keeps every chunk redundant.
    return net::FaultPlan::RollingCrashes(kFaultSeed, /*num_nodes=*/3, /*count=*/3,
                                          /*first_crash_ns=*/200'000, /*period_ns=*/500'000,
                                          /*downtime_ns=*/250'000);
  }
  MIRA_CHECK(scenario == "degraded_bw");
  return net::FaultPlan::DegradedBandwidth(kFaultSeed, 0.25);
}

// The integrity layer rides along only for the scenarios that need it, so
// the legacy scenarios' output stays bit-identical to the pre-integrity
// tree (same RNG stream, same verb sequence).
bool NeedsIntegrity(const std::string& scenario) {
  return scenario == "silent_corruption" || scenario == "torn_writeback" ||
         scenario == "crash_during_drain";
}

// The replicated cluster likewise rides along only for the crash scenarios;
// single-node scenarios keep the exact pre-cluster world shape.
bool NeedsCluster(const std::string& scenario) {
  return scenario == "node_crash" || scenario == "crash_during_drain" ||
         scenario == "rolling_crashes";
}

farmem::ClusterConfig CrashClusterConfig() {
  farmem::ClusterConfig config;
  config.num_nodes = 3;
  config.replicas = 1;  // every chunk on two nodes: one crash always survivable
  return config;
}

void BM_Scenario(benchmark::State& state, const std::string& scenario) {
  const auto& w = Graph();
  const uint64_t local = LocalBytes(w, 25);
  const MiraCompiled& compiled = CompileMira(w, local, AllOn());
  // Fault-free reference: the correctness oracle and the overhead baseline.
  const RunOutput clean =
      Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan);
  for (auto _ : state) {
    const net::FaultPlan plan = PlanFor(scenario);
    const integrity::IntegrityConfig iconfig = integrity::IntegrityConfig::FromEnv();
    const integrity::IntegrityConfig* iptr = NeedsIntegrity(scenario) ? &iconfig : nullptr;
    const farmem::ClusterConfig cconfig = CrashClusterConfig();
    const farmem::ClusterConfig* cptr = NeedsCluster(scenario) ? &cconfig : nullptr;
    const RunOutput out = Run(compiled.module, pipeline::SystemKind::kMira, local,
                              compiled.plan, 42, false, "main", &plan, iptr, cptr);
    MIRA_CHECK_MSG(!out.failed, "faulted run must not abort");
    MIRA_CHECK_MSG(out.result == clean.result,
                   "fault injection must not change program results");
    const net::FaultStats& fs = out.world.net->fault_stats();
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
    state.counters["overhead_vs_clean"] =
        clean.sim_ns > 0 ? static_cast<double>(out.sim_ns) / static_cast<double>(clean.sim_ns)
                         : 0.0;
    state.counters["faults"] = static_cast<double>(fs.faulted_attempts());
    state.counters["retries"] = static_cast<double>(fs.retries);
    state.counters["recovered"] = static_cast<double>(fs.recovered);
    state.counters["exhausted"] = static_cast<double>(fs.exhausted);
    state.counters["wasted_ms"] = static_cast<double>(fs.wasted_ns()) / 1e6;
    state.counters["degraded_ms"] =
        static_cast<double>(out.world.backend->DegradedNs()) / 1e6;
    state.counters["offload_fallbacks"] = static_cast<double>(out.offload_fallbacks);
    if (iptr != nullptr) {
      MIRA_CHECK_MSG(out.world.integrity != nullptr, "integrity must be attached");
      const integrity::IntegrityStats& is = out.world.integrity->stats();
      MIRA_CHECK_MSG(is.detected > 0, "scenario must actually inject corruption");
      MIRA_CHECK_MSG(is.healed == is.detected,
                     "every detected corruption episode must self-heal");
      MIRA_CHECK_MSG(is.quarantined == 0, "no line may reach quarantine");
      state.counters["integrity_detected"] = static_cast<double>(is.detected);
      state.counters["integrity_healed"] = static_cast<double>(is.healed);
      state.counters["integrity_refetch_rounds"] = static_cast<double>(is.refetch_rounds);
      state.counters["integrity_torn"] = static_cast<double>(is.torn_writebacks);
      state.counters["integrity_replays_suppressed"] =
          static_cast<double>(is.replays_suppressed);
    }
    if (cptr != nullptr) {
      MIRA_CHECK_MSG(out.world.cluster != nullptr, "cluster must be attached");
      const farmem::ClusterStats& cs = out.world.cluster->stats();
      MIRA_CHECK_MSG(cs.crashes > 0, "scenario must actually crash a node");
      MIRA_CHECK_MSG(cs.failovers > 0, "crashed primaries must be failed over");
      // With one replica and at most one node down at a time, every chunk
      // keeps a live copy: nothing may quarantine and no read or write may
      // land on a dead-only placement.
      MIRA_CHECK_MSG(cs.quarantined_chunks == 0, "a surviving replica must always exist");
      MIRA_CHECK_MSG(cs.lost_reads == 0 && cs.lost_writes == 0,
                     "no access may be served by a dead-only placement");
      MIRA_CHECK_MSG(fs.node_failures > 0, "dead-node verbs must surface kNodeFailed");
      state.counters["cluster_crashes"] = static_cast<double>(cs.crashes);
      state.counters["cluster_failovers"] = static_cast<double>(cs.failovers);
      state.counters["cluster_rereplicated"] = static_cast<double>(cs.rereplicated_chunks);
      state.counters["failover_wait_ms"] = static_cast<double>(fs.failover_wait_ns) / 1e6;
    }
    // Machine-readable evidence for --metrics-out (file output only; the
    // registry does not touch stdout, so legacy scenarios stay
    // bit-identical on the console).
    auto& metrics = telemetry::Metrics();
    const std::string prefix = "bench.fault." + scenario;
    metrics.SetCounter(prefix + ".sim_ns", out.sim_ns);
    metrics.SetCounter(prefix + ".faulted_attempts", fs.faulted_attempts());
    metrics.SetCounter(prefix + ".retries", fs.retries);
    metrics.SetCounter(prefix + ".recovered", fs.recovered);
    metrics.SetCounter(prefix + ".exhausted", fs.exhausted);
    metrics.SetCounter(prefix + ".wasted_ns", fs.wasted_ns());
    metrics.SetCounter(prefix + ".degraded_ns", out.world.backend->DegradedNs());
    metrics.SetCounter(prefix + ".corrupt_deliveries", fs.corrupt_deliveries);
    metrics.SetCounter(prefix + ".stale_deliveries", fs.stale_deliveries);
    metrics.SetCounter(prefix + ".duplicated_verbs", fs.duplicated_verbs);
    metrics.SetCounter(prefix + ".torn_writebacks", fs.torn_writebacks);
    if (out.world.integrity != nullptr) {
      const integrity::IntegrityStats& is = out.world.integrity->stats();
      metrics.SetCounter(prefix + ".integrity.detected", is.detected);
      metrics.SetCounter(prefix + ".integrity.healed", is.healed);
      metrics.SetCounter(prefix + ".integrity.refetch_rounds", is.refetch_rounds);
      metrics.SetCounter(prefix + ".integrity.escalated_heals", is.escalated_heals);
      metrics.SetCounter(prefix + ".integrity.replays_suppressed", is.replays_suppressed);
      metrics.SetCounter(prefix + ".integrity.torn_writebacks", is.torn_writebacks);
      metrics.SetCounter(prefix + ".integrity.quarantined", is.quarantined);
    }
    if (out.world.cluster != nullptr) {
      const farmem::ClusterStats& cs = out.world.cluster->stats();
      metrics.SetCounter(prefix + ".cluster.crashes", cs.crashes);
      metrics.SetCounter(prefix + ".cluster.rejoins", cs.rejoins);
      metrics.SetCounter(prefix + ".cluster.detections", cs.detections);
      metrics.SetCounter(prefix + ".cluster.failovers", cs.failovers);
      metrics.SetCounter(prefix + ".cluster.quarantined_chunks", cs.quarantined_chunks);
      metrics.SetCounter(prefix + ".cluster.rereplicated_chunks", cs.rereplicated_chunks);
      metrics.SetCounter(prefix + ".cluster.rereplicated_bytes", cs.rereplicated_bytes);
      metrics.SetCounter(prefix + ".cluster.lost_reads", cs.lost_reads);
      metrics.SetCounter(prefix + ".cluster.lost_writes", cs.lost_writes);
      metrics.SetCounter(prefix + ".cluster.node_failures", fs.node_failures);
      metrics.SetCounter(prefix + ".cluster.failover_wait_ns", fs.failover_wait_ns);
    }
  }
}

// Failure-aware adaptation: deploy under a lossy+outage environment and let
// sustained fault-inflated overhead trigger re-optimization.
void BM_Adaptive(benchmark::State& state) {
  const auto& w = Graph();
  for (auto _ : state) {
    pipeline::OptimizeOptions opts;
    opts.local_bytes = LocalBytes(w, 25);
    opts.max_iterations = 2;
    pipeline::AdaptiveRuntime runtime(w.module.get(), opts);
    const pipeline::AdaptiveRuntime::Invocation first = runtime.Invoke(42);
    net::FaultPlan plan = PlanFor("bursty_outage");
    runtime.SetFaultPlan(&plan);
    runtime.SetFaultDegradeTrigger(/*ratio=*/0.005, /*streak=*/2);
    pipeline::AdaptiveRuntime::Invocation last;
    for (uint64_t seed = 43; seed < 47; ++seed) {
      last = runtime.Invoke(seed);
      MIRA_CHECK_MSG(last.sim_ns > 0, "faulted invocation must complete");
    }
    state.counters["sim_ms"] = static_cast<double>(last.sim_ns) / 1e6;
    state.counters["clean_sim_ms"] = static_cast<double>(first.sim_ns) / 1e6;
    state.counters["fault_ratio"] = last.fault_ratio;
    state.counters["rounds"] = static_cast<double>(runtime.optimization_rounds());
    state.counters["fault_reopts"] = static_cast<double>(runtime.fault_reoptimizations());
  }
}

// Crash-aware adaptation: deploy a replicated cluster under rolling
// crashes and let the sustained-failover streak trigger re-optimization.
void BM_CrashAdaptive(benchmark::State& state) {
  const auto& w = Graph();
  for (auto _ : state) {
    pipeline::OptimizeOptions opts;
    opts.local_bytes = LocalBytes(w, 25);
    opts.max_iterations = 2;
    pipeline::AdaptiveRuntime runtime(w.module.get(), opts);
    const pipeline::AdaptiveRuntime::Invocation first = runtime.Invoke(42);
    net::FaultPlan plan = PlanFor("rolling_crashes");
    const farmem::ClusterConfig cconfig = CrashClusterConfig();
    runtime.SetFaultPlan(&plan);
    runtime.SetClusterConfig(&cconfig);
    runtime.SetCrashTrigger(/*min_failovers=*/1, /*streak=*/2);
    pipeline::AdaptiveRuntime::Invocation last;
    for (uint64_t seed = 43; seed < 47; ++seed) {
      last = runtime.Invoke(seed);
      MIRA_CHECK_MSG(last.sim_ns > 0, "crashed invocation must complete");
    }
    MIRA_CHECK_MSG(runtime.crash_reoptimizations() > 0,
                   "sustained failovers must trigger re-optimization");
    state.counters["sim_ms"] = static_cast<double>(last.sim_ns) / 1e6;
    state.counters["clean_sim_ms"] = static_cast<double>(first.sim_ns) / 1e6;
    state.counters["failovers"] = static_cast<double>(last.failovers);
    state.counters["rounds"] = static_cast<double>(runtime.optimization_rounds());
    state.counters["crash_reopts"] = static_cast<double>(runtime.crash_reoptimizations());
  }
}

// Randomized chaos sweep as a bench scenario: the same engine the
// mira_chaos CLI drives, bounded to a CI-sized seed range. Violations are
// fatal — this is the randomized counterpart of the hand-written scenarios'
// per-scenario MIRA_CHECKs.
void BM_ChaosRandom(benchmark::State& state) {
  constexpr uint64_t kFirstSeed = 1;
  constexpr uint64_t kLastSeed = 20;
  chaos::RunnerOptions ropts;
  ropts.workload = "graph";
  const chaos::ChaosRunner runner(ropts);
  for (auto _ : state) {
    const chaos::GenOptions gen = runner.MakeGenOptions(/*max_events=*/6);
    uint64_t events_total = 0;
    uint64_t faults_total = 0;
    uint64_t wasted_ns = 0;
    uint64_t worst_sim_ns = 0;
    for (uint64_t seed = kFirstSeed; seed <= kLastSeed; ++seed) {
      const std::vector<chaos::ChaosEvent> events = chaos::GenerateSchedule(seed, gen);
      const chaos::RunResult out = runner.Execute(chaos::ComposePlan(seed, events));
      const std::vector<chaos::Violation> violations =
          chaos::CheckOracles(runner.clean(), out, events, chaos::OracleOptions{});
      MIRA_CHECK_MSG(violations.empty(), chaos::FormatViolations(violations).c_str());
      events_total += events.size();
      faults_total += out.fault.faulted_attempts();
      wasted_ns += out.fault.wasted_ns();
      worst_sim_ns = std::max(worst_sim_ns, out.sim_ns);
    }
    const double seeds = static_cast<double>(kLastSeed - kFirstSeed + 1);
    state.counters["seeds"] = seeds;
    state.counters["events_per_seed"] = static_cast<double>(events_total) / seeds;
    state.counters["faults"] = static_cast<double>(faults_total);
    state.counters["wasted_ms"] = static_cast<double>(wasted_ns) / 1e6;
    state.counters["clean_sim_ms"] = static_cast<double>(runner.clean().sim_ns) / 1e6;
    state.counters["worst_sim_ms"] = static_cast<double>(worst_sim_ns) / 1e6;
    auto& metrics = telemetry::Metrics();
    metrics.SetCounter("bench.fault.chaos_random.seeds", kLastSeed - kFirstSeed + 1);
    metrics.SetCounter("bench.fault.chaos_random.events", events_total);
    metrics.SetCounter("bench.fault.chaos_random.faulted_attempts", faults_total);
    metrics.SetCounter("bench.fault.chaos_random.wasted_ns", wasted_ns);
    metrics.SetCounter("bench.fault.chaos_random.violations", 0);
  }
}

void RegisterAll() {
  for (const char* scenario : {"clean", "lossy", "bursty_outage", "degraded_bw",
                               "silent_corruption", "torn_writeback", "node_crash",
                               "crash_during_drain", "rolling_crashes"}) {
    benchmark::RegisterBenchmark(("fault/" + std::string(scenario)).c_str(), BM_Scenario,
                                 std::string(scenario))
        ->Iterations(1);
  }
  benchmark::RegisterBenchmark("fault/chaos_random", BM_ChaosRandom)->Iterations(1);
  benchmark::RegisterBenchmark("fault/adaptive", BM_Adaptive)->Iterations(1);
  benchmark::RegisterBenchmark("fault/crash_adaptive", BM_CrashAdaptive)->Iterations(1);
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
