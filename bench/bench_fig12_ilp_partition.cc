// Figure 12: application performance under different partitions of local
// memory between the node section and the random third section (edge
// section fixed at its small optimal size), plus the partition Mira's ILP
// selects from sampled per-section overheads. Paper shape: the optimum
// gives most memory to the non-sequential sections and the ILP choice
// matches it.

#include "bench/common.h"

#include "src/solver/ilp.h"

namespace mira::bench {
namespace {

const workloads::Workload& Graph3() {
  static const workloads::Workload w = [] {
    workloads::GraphParams p;
    p.third_array = true;
    return workloads::BuildGraphTraversal(p);
  }();
  return w;
}

struct Partitioned {
  runtime::CachePlan plan;
  uint32_t node_index = 0;
  uint32_t third_index = 0;
  uint64_t budget = 0;  // memory split between node and third
};

Partitioned MakePartition(const MiraCompiled& compiled, uint64_t local, int node_pct) {
  Partitioned out;
  out.plan = compiled.plan;
  out.node_index = out.plan.object_to_section.at("nodes");
  out.third_index = out.plan.object_to_section.at("third");
  const uint64_t edge_bytes =
      out.plan.sections[out.plan.object_to_section.at("edges")].size_bytes;
  const uint64_t avail = local * 9 / 10;
  out.budget = avail > edge_bytes ? avail - edge_bytes : avail / 2;
  auto& node = out.plan.sections[out.node_index];
  auto& third = out.plan.sections[out.third_index];
  uint64_t node_size = out.budget * static_cast<uint64_t>(node_pct) / 100;
  node_size = std::max<uint64_t>(node_size - node_size % node.line_bytes,
                                 static_cast<uint64_t>(node.line_bytes) * 4);
  uint64_t third_size = out.budget - node_size;
  third_size = std::max<uint64_t>(third_size - third_size % third.line_bytes,
                                  static_cast<uint64_t>(third.line_bytes) * 4);
  node.size_bytes = node_size;
  third.size_bytes = third_size;
  return out;
}

void BM_Partition(benchmark::State& state) {
  const auto& w = Graph3();
  const uint64_t local = LocalBytes(w, 50);
  const int node_pct = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const MiraCompiled compiled = FullPlanCompile(w, local, CacheOnly());
    const Partitioned part = MakePartition(compiled, local, node_pct);
    const RunOutput out =
        Run(compiled.module, pipeline::SystemKind::kMira, local, part.plan);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
  }
}

// The ILP step: sample both sections' overheads at candidate splits, solve,
// and report the chosen node share plus the performance at that choice.
void BM_IlpChoice(benchmark::State& state) {
  const auto& w = Graph3();
  const uint64_t local = LocalBytes(w, 50);
  for (auto _ : state) {
    const MiraCompiled compiled = FullPlanCompile(w, local, CacheOnly());
    const std::vector<int> shares = {20, 40, 50, 60, 80};
    std::vector<solver::SectionChoices> choices(2);
    uint64_t budget = 0;
    for (const int pct : shares) {
      const Partitioned part = MakePartition(compiled, local, pct);
      budget = part.budget;
      pipeline::World world =
          pipeline::MakeWorld(pipeline::SystemKind::kMira, local, part.plan);
      interp::Interpreter interp(&compiled.module, world.backend.get());
      auto r = interp.Run("main");
      MIRA_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      auto* mira = static_cast<backends::MiraBackend*>(world.backend.get());
      choices[0].sizes.push_back(part.plan.sections[part.node_index].size_bytes);
      choices[0].costs.push_back(
          static_cast<double>(mira->SectionStatsAt(part.node_index).overhead_ns()));
      choices[1].sizes.push_back(part.plan.sections[part.third_index].size_bytes);
      choices[1].costs.push_back(
          static_cast<double>(mira->SectionStatsAt(part.third_index).overhead_ns()));
    }
    solver::CapacityConstraint constraint;
    constraint.members = {0, 1};
    constraint.capacity = budget;
    const auto solution = solver::SolveSectionSizing(choices, {constraint});
    MIRA_CHECK(solution.feasible);
    const uint64_t node_size = choices[0].sizes[static_cast<size_t>(solution.choice[0])];
    state.counters["ilp_node_share_pct"] =
        100.0 * static_cast<double>(node_size) / static_cast<double>(budget);
    // Performance at the ILP-selected partition.
    Partitioned part = MakePartition(compiled, local, 50);
    part.plan.sections[part.node_index].size_bytes = node_size;
    part.plan.sections[part.third_index].size_bytes =
        choices[1].sizes[static_cast<size_t>(solution.choice[1])];
    const RunOutput out =
        Run(compiled.module, pipeline::SystemKind::kMira, local, part.plan);
    state.counters["norm_at_ilp_choice"] = Norm(NativeNs(*w.module), out.sim_ns);
  }
}

void RegisterAll() {
  for (const int pct : {20, 40, 50, 60, 80}) {
    benchmark::RegisterBenchmark("fig12/node_share", BM_Partition)->Arg(pct)->Iterations(1);
  }
  benchmark::RegisterBenchmark("fig12/ilp_choice", BM_IlpChoice)->Iterations(1);
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
