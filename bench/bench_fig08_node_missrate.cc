// Figure 8: miss rate of the node array in a joint cache vs after cache
// separation (paper: 44–78% drop after separation), plus the edge array's
// (unchanged) miss rate.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Graph() {
  static const workloads::Workload w = workloads::BuildGraphTraversal();
  return w;
}

struct ProbeResult {
  double node_miss_rate = 0;
  double edge_miss_rate = 0;
};

// Runs the compiled module with `plan`, probing node/edge address ranges
// inside their (possibly shared) sections. Object addresses are
// deterministic across worlds, so a native discovery run provides them.
ProbeResult RunProbed(const MiraCompiled& compiled, runtime::CachePlan plan,
                      uint64_t local_bytes) {
  const workloads::Workload& w = Graph();
  static std::map<std::string, farmem::RemoteAddr>* addrs = nullptr;
  if (addrs == nullptr) {
    static std::map<std::string, farmem::RemoteAddr> discovered =
        Run(*w.module, pipeline::SystemKind::kNative, 0).object_addrs;
    addrs = &discovered;
  }
  pipeline::World world =
      pipeline::MakeWorld(pipeline::SystemKind::kMira, local_bytes, std::move(plan));
  auto* mira = static_cast<backends::MiraBackend*>(world.backend.get());
  const auto& p = mira->plan();
  const uint64_t node_lo = addrs->at("nodes");
  const uint64_t node_hi = node_lo + 15'000 * 128;
  const uint64_t edge_lo = addrs->at("edges");
  const uint64_t edge_hi = edge_lo + 60'000 * 16;
  cache::Section* node_section = mira->SectionAt(p.object_to_section.at("nodes"));
  cache::Section* edge_section = mira->SectionAt(p.object_to_section.at("edges"));
  node_section->SetProbeRange(node_lo, node_hi);
  if (edge_section != node_section) {
    edge_section->SetProbeRange(edge_lo, edge_hi);
  }
  interp::Interpreter interp(&compiled.module, world.backend.get());
  auto r = interp.Run("main");
  MIRA_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  ProbeResult out;
  out.node_miss_rate = node_section->probe().miss_rate();
  out.edge_miss_rate = edge_section != node_section
                           ? edge_section->probe().miss_rate()
                           : edge_section->stats().lines.miss_rate();
  return out;
}

runtime::CachePlan JointPlan(const runtime::CachePlan& separated, uint64_t local_bytes) {
  runtime::CachePlan joint;
  cache::SectionConfig one;
  one.name = "joint";
  one.structure = cache::SectionStructure::kFullyAssociative;
  one.line_bytes = 4096;
  one.size_bytes = (local_bytes * 9 / 10) & ~4095ULL;
  joint.sections.push_back(one);
  for (const auto& [obj, idx] : separated.object_to_section) {
    joint.object_to_section[obj] = 0;
  }
  joint.discard_on_release = separated.discard_on_release;
  return joint;
}

void BM_MissRate(benchmark::State& state, bool separated) {
  const auto& w = Graph();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const MiraCompiled compiled = FullPlanCompile(w, local, CacheOnly());
    const ProbeResult probe = RunProbed(
        compiled, separated ? compiled.plan : JointPlan(compiled.plan, local), local);
    state.counters["node_miss_rate"] = probe.node_miss_rate;
    state.counters["edge_miss_rate"] = probe.edge_miss_rate;
  }
}

void RegisterAll() {
  for (const int pct : MemoryPercents()) {
    benchmark::RegisterBenchmark("fig08/separated", BM_MissRate, true)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig08/joint", BM_MissRate, false)->Arg(pct)->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
