// Figure 7: Mira with vs without cache-section separation on the graph
// example (AIFM as reference). "Joint" keeps the compiled remote code but
// serves every object from a single fully-associative 4 KiB-line cache;
// "separated" is the per-pattern plan.
//
// Figure 8 companion data (node-array miss rate in both configurations) is
// produced by bench_fig08_node_missrate.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Graph() {
  static const workloads::Workload w = workloads::BuildGraphTraversal();
  return w;
}

runtime::CachePlan JointPlan(const runtime::CachePlan& separated, uint64_t local_bytes) {
  runtime::CachePlan joint;
  cache::SectionConfig one;
  one.name = "joint";
  one.structure = cache::SectionStructure::kFullyAssociative;
  one.line_bytes = 4096;
  one.size_bytes = (local_bytes * 9 / 10) & ~4095ULL;
  joint.sections.push_back(one);
  for (const auto& [obj, idx] : separated.object_to_section) {
    joint.object_to_section[obj] = 0;
  }
  joint.discard_on_release = separated.discard_on_release;
  return joint;
}

void BM_Config(benchmark::State& state, bool separated) {
  const auto& w = Graph();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const MiraCompiled compiled = FullPlanCompile(w, local, CacheOnly());
    const runtime::CachePlan plan =
        separated ? compiled.plan : JointPlan(compiled.plan, local);
    const RunOutput out = Run(compiled.module, pipeline::SystemKind::kMira, local, plan);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
  }
}

void BM_Aifm(benchmark::State& state) {
  const auto& w = Graph();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const RunOutput out = Run(*w.module, pipeline::SystemKind::kAifm, local);
    state.counters["sim_ms"] = out.failed ? 0 : static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = out.failed ? 0 : Norm(NativeNs(*w.module), out.sim_ns);
    state.counters["failed"] = out.failed ? 1 : 0;
  }
}

void RegisterAll() {
  for (const int pct : MemoryPercents()) {
    benchmark::RegisterBenchmark("fig07/separated", BM_Config, true)->Arg(pct)->Iterations(1);
    benchmark::RegisterBenchmark("fig07/joint", BM_Config, false)->Arg(pct)->Iterations(1);
    benchmark::RegisterBenchmark("fig07/aifm_ref", BM_Aifm)->Arg(pct)->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
