#include "bench/common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

namespace mira::bench {

namespace {

telemetry::OutputOptions g_outputs;
BenchConfig g_config;
std::chrono::steady_clock::time_point g_wall_start;
uint64_t g_sims_start = 0;

std::string Basename(const char* path) {
  const std::string s = path == nullptr ? "bench" : path;
  const auto pos = s.find_last_of('/');
  return pos == std::string::npos ? s : s.substr(pos + 1);
}

// --bench-baseline= accepts either a raw wall-ns number or the path to a
// prior --bench-out report, from which "wall_ns" is extracted. Returns 0
// when no baseline is available.
double BaselineWallNs(const std::string& spec) {
  if (spec.empty()) {
    return 0;
  }
  char* end = nullptr;
  const double direct = std::strtod(spec.c_str(), &end);
  if (end != nullptr && *end == '\0' && direct > 0) {
    return direct;
  }
  std::ifstream in(spec);
  if (!in) {
    std::fprintf(stderr, "[bench] --bench-baseline: cannot read %s\n", spec.c_str());
    return 0;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const auto key = text.find("\"wall_ns\"");
  if (key == std::string::npos) {
    std::fprintf(stderr, "[bench] --bench-baseline: no \"wall_ns\" in %s\n", spec.c_str());
    return 0;
  }
  const auto colon = text.find(':', key);
  return colon == std::string::npos ? 0 : std::strtod(text.c_str() + colon + 1, nullptr);
}

void WriteBenchReport() {
  const auto wall =
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           g_wall_start)
          .count();
  const uint64_t sims = interp::SimulationsRun() - g_sims_start;
  const double wall_ns = static_cast<double>(wall);
  const double sims_per_sec = wall_ns > 0 ? static_cast<double>(sims) / (wall_ns / 1e9) : 0;
  const double baseline_ns = BaselineWallNs(g_config.bench_baseline);
  std::ostringstream json;
  json.precision(15);
  json << "{\n";
  json << "  \"bench\": \"" << g_config.bench_name << "\",\n";
  json << "  \"engine\": \"" << interp::EngineName(interp::DefaultEngine()) << "\",\n";
  json << "  \"jobs\": " << (g_config.serial ? 1 : support::DefaultParallelism()) << ",\n";
  json << "  \"serial\": " << (g_config.serial ? "true" : "false") << ",\n";
  json << "  \"wall_ns\": " << wall << ",\n";
  json << "  \"sims_run\": " << sims << ",\n";
  json << "  \"sims_per_sec\": " << sims_per_sec;
  if (baseline_ns > 0 && wall_ns > 0) {
    json << ",\n  \"baseline_wall_ns\": " << baseline_ns;
    json << ",\n  \"speedup_vs_serial\": " << baseline_ns / wall_ns;
  }
  json << "\n}\n";
  const auto status = telemetry::WriteStringToFile(g_config.bench_out, json.str());
  if (status.ok()) {
    std::fprintf(stderr, "[bench] report: %s (%llu sims, %.1f sims/sec)\n",
                 g_config.bench_out.c_str(), static_cast<unsigned long long>(sims),
                 sims_per_sec);
  } else {
    std::fprintf(stderr, "[bench] report write failed: %s\n", status.ToString().c_str());
  }
}

}  // namespace

const BenchConfig& Config() { return g_config; }

void InitTelemetry(int* argc, char** argv) {
  g_config = BenchConfig{};
  g_config.bench_name = Basename(*argc > 0 ? argv[0] : nullptr);
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      g_config.jobs = std::atoi(arg + 7);
    } else if (std::strcmp(arg, "--serial") == 0) {
      g_config.serial = true;
    } else if (std::strncmp(arg, "--bench-out=", 12) == 0) {
      g_config.bench_out = arg + 12;
    } else if (std::strncmp(arg, "--bench-baseline=", 17) == 0) {
      g_config.bench_baseline = arg + 17;
    } else if (std::strncmp(arg, "--interp=", 9) == 0) {
      const interp::EngineKind kind = interp::ParseEngineName(arg + 9);
      if (kind == interp::EngineKind::kDefault) {
        std::fprintf(stderr, "[bench] --interp=%s: unknown engine (tree|bytecode)\n",
                     arg + 9);
        std::exit(2);
      }
      interp::SetDefaultEngine(kind);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  support::SetDefaultParallelism(g_config.serial ? 1 : g_config.jobs);
  g_outputs = telemetry::ParseOutputFlags(argc, argv);
  g_sims_start = interp::SimulationsRun();
  g_wall_start = std::chrono::steady_clock::now();
}

void FlushTelemetry() {
  if (!g_config.bench_out.empty()) {
    WriteBenchReport();
  }
  telemetry::FlushOutputs(g_outputs);
}

void PublishClusterMetrics(telemetry::MetricsRegistry& registry,
                           const farmem::ClusterStats& stats) {
  registry.SetCounter("farmem.cluster.crashes", stats.crashes);
  registry.SetCounter("farmem.cluster.rejoins", stats.rejoins);
  registry.SetCounter("farmem.cluster.detections", stats.detections);
  registry.SetCounter("farmem.cluster.failovers", stats.failovers);
  registry.SetCounter("farmem.cluster.rejoin_promotions", stats.rejoin_promotions);
  registry.SetCounter("farmem.cluster.quarantined_chunks", stats.quarantined_chunks);
  registry.SetCounter("farmem.cluster.rereplicated_chunks", stats.rereplicated_chunks);
  registry.SetCounter("farmem.cluster.rereplicated_bytes", stats.rereplicated_bytes);
  registry.SetCounter("farmem.cluster.replicated_write_bytes", stats.replicated_write_bytes);
  registry.SetCounter("farmem.cluster.lost_reads", stats.lost_reads);
  registry.SetCounter("farmem.cluster.lost_writes", stats.lost_writes);
  registry.SetCounter("farmem.cluster.placed_chunks", stats.placed_chunks);
}

RunOutput Run(const ir::Module& module, pipeline::SystemKind kind, uint64_t local_bytes,
              runtime::CachePlan plan, uint64_t seed, bool profiling,
              const std::string& entry, const net::FaultPlan* faults,
              const integrity::IntegrityConfig* integrity,
              const farmem::ClusterConfig* cluster, bool publish_metrics) {
  RunOutput out;
  out.world = pipeline::MakeWorld(kind, local_bytes, std::move(plan));
  if (faults != nullptr) {
    pipeline::AttachFaults(out.world, *faults);
  }
  if (cluster != nullptr) {
    pipeline::AttachCluster(out.world, *cluster);
  }
  if (integrity != nullptr) {
    pipeline::AttachIntegrity(out.world, *integrity);
  }
  interp::InterpOptions opts;
  opts.seed = seed;
  opts.profiling = profiling;
  interp::Interpreter interp(&module, out.world.backend.get(), opts);
  auto result = interp.Run(entry);
  if (!result.ok()) {
    out.failed = true;
    out.fail_reason = result.status().ToString();
    return out;
  }
  out.world.backend->Drain(interp.clock());
  out.sim_ns = interp.clock().now_ns();
  out.result = result.value();
  out.offload_fallbacks = interp.offload_fallbacks();
  out.profile = interp.profile();
  out.object_addrs = interp.object_addrs();
  // Snapshot this run's cache-section stats and function ledger into the
  // registry; the last measured run before FlushTelemetry() wins. Parallel
  // sweeps pass publish_metrics=false and publish one run serially instead.
  if (publish_metrics) {
    out.world.backend->PublishMetrics(telemetry::Metrics());
    interp::PublishRunProfile(telemetry::Metrics(), out.profile);
    if (out.world.cluster != nullptr) {
      PublishClusterMetrics(telemetry::Metrics(), out.world.cluster->stats());
    }
  }
  return out;
}

uint64_t NativeNs(const ir::Module& module, uint64_t seed, const std::string& entry) {
  // The mutex spans the native run so concurrent first callers don't
  // duplicate it; the run is deterministic, so serializing costs nothing
  // but wall time on a cold cache.
  static std::mutex mu;
  static std::map<std::pair<const ir::Module*, uint64_t>, uint64_t> cache;
  std::lock_guard<std::mutex> lock(mu);
  const auto key = std::make_pair(&module, seed);
  const auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  const RunOutput out = Run(module, pipeline::SystemKind::kNative, 0, {}, seed, false, entry,
                            nullptr, nullptr, nullptr, /*publish_metrics=*/false);
  MIRA_CHECK_MSG(!out.failed, out.fail_reason.c_str());
  cache[key] = out.sim_ns;
  return out.sim_ns;
}

MiraCompiled FullPlanCompile(const workloads::Workload& w, uint64_t local_bytes,
                             const pipeline::PlannerOptions& toggles,
                             const std::map<std::string, uint32_t>& line_override,
                             bool publish_metrics) {
  // One profiling run on the generic swap configuration.
  const RunOutput prof = Run(*w.module, pipeline::SystemKind::kMira, local_bytes, {}, 42,
                             /*profiling=*/true, w.entry, nullptr, nullptr, nullptr,
                             publish_metrics);
  MIRA_CHECK_MSG(!prof.failed, prof.fail_reason.c_str());
  analysis::AccessAnalysis access(w.module.get());
  access.Run();
  pipeline::PlannerOptions popts = toggles;
  popts.local_bytes = local_bytes;
  popts.func_frac = 1.0;
  popts.obj_frac = 1.0;
  pipeline::PlanDraft draft =
      pipeline::DerivePlan(*w.module, access, prof.profile, sim::CostModel::Default(), popts);
  for (const auto& [obj, line] : line_override) {
    const auto it = draft.plan.object_to_section.find(obj);
    if (it == draft.plan.object_to_section.end()) {
      continue;
    }
    auto& section = draft.plan.sections[it->second];
    const uint64_t lines = std::max<uint64_t>(8, section.size_bytes / section.line_bytes);
    section.line_bytes = line;
    section.size_bytes = lines * line;
    auto info_it = draft.compile_info.find(obj);
    if (info_it != draft.compile_info.end()) {
      info_it->second.line_bytes = line;
    }
  }
  MiraCompiled out;
  out.module = pipeline::CompileWithPlan(*w.module, draft, popts, w.entry);
  out.plan = draft.plan;
  out.draft = std::move(draft);
  out.baseline_swap_ns = prof.sim_ns;
  return out;
}

const MiraCompiled& CompileMira(const workloads::Workload& w, uint64_t local_bytes,
                                const pipeline::PlannerOptions& toggles, int max_iterations) {
  const uint64_t mask = (toggles.enable_sections ? 1u : 0u) |
                        (toggles.enable_prefetch ? 2u : 0u) |
                        (toggles.enable_evict_hints ? 4u : 0u) |
                        (toggles.enable_batching ? 8u : 0u) |
                        (toggles.enable_promote ? 16u : 0u) |
                        (toggles.enable_selective ? 32u : 0u) |
                        (toggles.enable_offload ? 64u : 0u) |
                        (static_cast<uint64_t>(max_iterations) << 8);
  // Serialize on the cache: concurrent compiles of the same key must not
  // race, and the optimizer inside still fans its sampling grid out through
  // ParallelFor (whose caller participates, so holding the lock here cannot
  // deadlock the shared pool).
  static std::mutex mu;
  static std::map<std::tuple<const ir::Module*, uint64_t, uint64_t>,
                  std::unique_ptr<MiraCompiled>>
      cache;
  std::lock_guard<std::mutex> lock(mu);
  const auto key = std::make_tuple(w.module.get(), local_bytes, mask);
  const auto it = cache.find(key);
  if (it != cache.end()) {
    return *it->second;
  }
  pipeline::OptimizeOptions opts;
  opts.entry = w.entry;
  opts.local_bytes = local_bytes;
  opts.max_iterations = max_iterations;
  opts.planner = toggles;
  pipeline::IterativeOptimizer optimizer(w.module.get(), opts);
  const auto t0 = std::chrono::steady_clock::now();
  auto compiled = optimizer.Optimize();
  const auto t1 = std::chrono::steady_clock::now();
  auto entry = std::make_unique<MiraCompiled>();
  entry->module = std::move(compiled.module);
  entry->plan = std::move(compiled.plan);
  entry->draft = std::move(compiled.draft);
  entry->baseline_swap_ns = optimizer.baseline_swap_ns();
  entry->optimize_wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
  entry->log = optimizer.log();
  auto& slot = cache[key];
  slot = std::move(entry);
  return *slot;
}

}  // namespace mira::bench
