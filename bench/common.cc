#include "bench/common.h"

#include <chrono>

namespace mira::bench {

namespace {
telemetry::OutputOptions g_outputs;
}  // namespace

void InitTelemetry(int* argc, char** argv) {
  g_outputs = telemetry::ParseOutputFlags(argc, argv);
}

void FlushTelemetry() { telemetry::FlushOutputs(g_outputs); }

RunOutput Run(const ir::Module& module, pipeline::SystemKind kind, uint64_t local_bytes,
              runtime::CachePlan plan, uint64_t seed, bool profiling,
              const std::string& entry, const net::FaultPlan* faults,
              const integrity::IntegrityConfig* integrity) {
  RunOutput out;
  out.world = pipeline::MakeWorld(kind, local_bytes, std::move(plan));
  if (faults != nullptr) {
    pipeline::AttachFaults(out.world, *faults);
  }
  if (integrity != nullptr) {
    pipeline::AttachIntegrity(out.world, *integrity);
  }
  interp::InterpOptions opts;
  opts.seed = seed;
  opts.profiling = profiling;
  interp::Interpreter interp(&module, out.world.backend.get(), opts);
  auto result = interp.Run(entry);
  if (!result.ok()) {
    out.failed = true;
    out.fail_reason = result.status().ToString();
    return out;
  }
  out.world.backend->Drain(interp.clock());
  out.sim_ns = interp.clock().now_ns();
  out.result = result.value();
  out.offload_fallbacks = interp.offload_fallbacks();
  out.profile = interp.profile();
  out.object_addrs = interp.object_addrs();
  // Snapshot this run's cache-section stats and function ledger into the
  // registry; the last measured run before FlushTelemetry() wins.
  out.world.backend->PublishMetrics(telemetry::Metrics());
  interp::PublishRunProfile(telemetry::Metrics(), out.profile);
  return out;
}

uint64_t NativeNs(const ir::Module& module, uint64_t seed, const std::string& entry) {
  static std::map<std::pair<const ir::Module*, uint64_t>, uint64_t> cache;
  const auto key = std::make_pair(&module, seed);
  const auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  const RunOutput out = Run(module, pipeline::SystemKind::kNative, 0, {}, seed, false, entry);
  MIRA_CHECK_MSG(!out.failed, out.fail_reason.c_str());
  cache[key] = out.sim_ns;
  return out.sim_ns;
}

MiraCompiled FullPlanCompile(const workloads::Workload& w, uint64_t local_bytes,
                             const pipeline::PlannerOptions& toggles,
                             const std::map<std::string, uint32_t>& line_override) {
  // One profiling run on the generic swap configuration.
  const RunOutput prof = Run(*w.module, pipeline::SystemKind::kMira, local_bytes, {}, 42,
                             /*profiling=*/true, w.entry);
  MIRA_CHECK_MSG(!prof.failed, prof.fail_reason.c_str());
  analysis::AccessAnalysis access(w.module.get());
  access.Run();
  pipeline::PlannerOptions popts = toggles;
  popts.local_bytes = local_bytes;
  popts.func_frac = 1.0;
  popts.obj_frac = 1.0;
  pipeline::PlanDraft draft =
      pipeline::DerivePlan(*w.module, access, prof.profile, sim::CostModel::Default(), popts);
  for (const auto& [obj, line] : line_override) {
    const auto it = draft.plan.object_to_section.find(obj);
    if (it == draft.plan.object_to_section.end()) {
      continue;
    }
    auto& section = draft.plan.sections[it->second];
    const uint64_t lines = std::max<uint64_t>(8, section.size_bytes / section.line_bytes);
    section.line_bytes = line;
    section.size_bytes = lines * line;
    auto info_it = draft.compile_info.find(obj);
    if (info_it != draft.compile_info.end()) {
      info_it->second.line_bytes = line;
    }
  }
  MiraCompiled out;
  out.module = pipeline::CompileWithPlan(*w.module, draft, popts, w.entry);
  out.plan = draft.plan;
  out.draft = std::move(draft);
  out.baseline_swap_ns = prof.sim_ns;
  return out;
}

const MiraCompiled& CompileMira(const workloads::Workload& w, uint64_t local_bytes,
                                const pipeline::PlannerOptions& toggles, int max_iterations) {
  const uint64_t mask = (toggles.enable_sections ? 1u : 0u) |
                        (toggles.enable_prefetch ? 2u : 0u) |
                        (toggles.enable_evict_hints ? 4u : 0u) |
                        (toggles.enable_batching ? 8u : 0u) |
                        (toggles.enable_promote ? 16u : 0u) |
                        (toggles.enable_selective ? 32u : 0u) |
                        (toggles.enable_offload ? 64u : 0u) |
                        (static_cast<uint64_t>(max_iterations) << 8);
  static std::map<std::tuple<const ir::Module*, uint64_t, uint64_t>,
                  std::unique_ptr<MiraCompiled>>
      cache;
  const auto key = std::make_tuple(w.module.get(), local_bytes, mask);
  const auto it = cache.find(key);
  if (it != cache.end()) {
    return *it->second;
  }
  pipeline::OptimizeOptions opts;
  opts.entry = w.entry;
  opts.local_bytes = local_bytes;
  opts.max_iterations = max_iterations;
  opts.planner = toggles;
  pipeline::IterativeOptimizer optimizer(w.module.get(), opts);
  const auto t0 = std::chrono::steady_clock::now();
  auto compiled = optimizer.Optimize();
  const auto t1 = std::chrono::steady_clock::now();
  auto entry = std::make_unique<MiraCompiled>();
  entry->module = std::move(compiled.module);
  entry->plan = std::move(compiled.plan);
  entry->draft = std::move(compiled.draft);
  entry->baseline_swap_ns = optimizer.baseline_swap_ns();
  entry->optimize_wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
  entry->log = optimizer.log();
  auto& slot = cache[key];
  slot = std::move(entry);
  return *slot;
}

}  // namespace mira::bench
