// Figure 10: effect of the cache-section structure (direct-mapped /
// set-associative / fully-associative) on the node section across local
// memory sizes. Paper shape: full associativity pays a constant lookup
// overhead when memory is plentiful but wins when memory is scarce (no
// conflict misses); direct mapping is the opposite.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Graph() {
  static const workloads::Workload w = workloads::BuildGraphTraversal();
  return w;
}

void BM_Structure(benchmark::State& state, cache::SectionStructure structure, uint32_t ways) {
  const auto& w = Graph();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    MiraCompiled compiled = FullPlanCompile(w, local, CacheOnly());
    auto& node_section =
        compiled.plan.sections[compiled.plan.object_to_section.at("nodes")];
    node_section.structure = structure;
    node_section.ways = ways;
    const RunOutput out =
        Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
  }
}

void RegisterAll() {
  for (const int pct : MemoryPercents()) {
    benchmark::RegisterBenchmark("fig10/direct", BM_Structure,
                                 cache::SectionStructure::kDirectMapped, 1)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig10/setassoc8", BM_Structure,
                                 cache::SectionStructure::kSetAssociative, 8)
        ->Arg(pct)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig10/fullassoc", BM_Structure,
                                 cache::SectionStructure::kFullyAssociative, 0)
        ->Arg(pct)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
