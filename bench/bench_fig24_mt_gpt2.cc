// Figure 24: multi-threaded GPT-2 inference scaling — Mira with per-thread
// private cache sections (§4.6: shared-nothing / read-only threads) vs
// FastSwap's shared swap cache with its serialized kernel fault path.
// Threads run independent inferences over the same read-only weights.
//
// Threads are simulated on the deterministic MtScheduler (DESIGN.md §5);
// the kernel below performs the same access sequence the compiled per-layer
// streaming code produces: guarded prefetch one RTT ahead + promoted loads.

#include "bench/common.h"

#include "src/backends/fastswap_backend.h"
#include "src/sim/mt_scheduler.h"

namespace mira::bench {
namespace {

constexpr int64_t kLayers = 6;
constexpr int64_t kD = 128;
constexpr uint64_t kWeightsPerLayer = kD * kD * 8;  // bytes
constexpr uint64_t kComputePerElemNs = 12;
constexpr uint32_t kLine = 4096;
constexpr uint32_t kPrefetchDistance = 2;

struct SharedWorld {
  farmem::FarMemoryNode node;
  net::Transport net{&node, sim::CostModel::Default()};
  farmem::RemoteAddr weights = 0;

  SharedWorld() {
    auto r = node.AllocRange(kLayers * kWeightsPerLayer);
    MIRA_CHECK(r.ok());
    weights = r.value();
  }
};

// One thread's inference: streams each layer's weights, starting at a
// thread-specific layer (threads serve different requests, so they sit at
// different pipeline positions) and wrapping around. Returns a step
// function for the MtScheduler.
template <typename AccessFn>
std::function<bool(sim::SimClock&)> MakeThread(AccessFn access, farmem::RemoteAddr weights,
                                               int thread_index) {
  const uint64_t total = kLayers * kWeightsPerLayer / 8;
  const uint64_t elems_per_layer = kWeightsPerLayer / 8;
  const uint64_t start =
      (static_cast<uint64_t>(thread_index) % kLayers) * elems_per_layer;
  auto done = std::make_shared<uint64_t>(0);
  constexpr uint64_t kChunk = 2048;
  return [=](sim::SimClock& clk) {
    const uint64_t end = std::min(total, *done + kChunk);
    for (uint64_t i = *done; i < end; ++i) {
      const uint64_t elem = (start + i) % total;
      access(clk, weights + elem * 8, elem);
      clk.Advance(kComputePerElemNs);
    }
    *done = end;
    return *done < total;
  };
}

void BM_MiraPrivate(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SharedWorld shared;
    // Per-thread private direct-mapped streaming sections (§4.6).
    std::vector<std::unique_ptr<cache::Section>> sections;
    for (int t = 0; t < threads; ++t) {
      cache::SectionConfig config;
      config.name = "weights-private";
      config.structure = cache::SectionStructure::kDirectMapped;
      config.line_bytes = kLine;
      config.size_bytes = kLine * (2 * kPrefetchDistance + 8);
      sections.push_back(cache::MakeSection(config, &shared.net));
    }
    sim::MtScheduler scheduler;
    for (int t = 0; t < threads; ++t) {
      cache::Section* section = sections[static_cast<size_t>(t)].get();
      scheduler.AddThread(MakeThread(
          [section](sim::SimClock& clk, farmem::RemoteAddr addr, uint64_t i) {
            constexpr uint64_t kElemsPerLine = kLine / 8;
            if (i % kElemsPerLine == 0) {
              section->Prefetch(clk, addr + kPrefetchDistance * kLine, kLine);
            }
            section->AccessPromoted(clk, addr, 8, /*write=*/false);
          },
          shared.weights, t));
    }
    const uint64_t makespan = scheduler.RunToCompletion();
    state.counters["sim_ms"] = static_cast<double>(makespan) / 1e6;
    state.counters["threads"] = threads;
  }
}

void BM_FastSwapShared(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SharedWorld shared;
    // One shared swap cache (half the weight footprint) + serialized
    // kernel fault path.
    cache::SwapSection swap(kLayers * kWeightsPerLayer / 2, &shared.net,
                            std::make_unique<cache::ReadaheadPrefetcher>());
    sim::SerialResource fault_lock;
    swap.SetFaultLock(&fault_lock);
    sim::MtScheduler scheduler;
    for (int t = 0; t < threads; ++t) {
      scheduler.AddThread(MakeThread(
          [&swap](sim::SimClock& clk, farmem::RemoteAddr addr, uint64_t) {
            swap.Access(clk, addr, 8, /*write=*/false);
          },
          shared.weights, t));
    }
    const uint64_t makespan = scheduler.RunToCompletion();
    state.counters["sim_ms"] = static_cast<double>(makespan) / 1e6;
    state.counters["threads"] = threads;
  }
}

void RegisterAll() {
  for (const int threads : {1, 2, 4, 8, 16}) {
    benchmark::RegisterBenchmark("fig24/mira_private_sections", BM_MiraPrivate)
        ->Arg(threads)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig24/fastswap_shared", BM_FastSwapShared)
        ->Arg(threads)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
