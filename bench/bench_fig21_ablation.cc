// Figure 21: effect of Mira techniques added one or two at a time, per
// application (DataFrame, GPT-2, MCF), over the generic-swap baseline.
// Paper shape: section separation helps everything except MCF (analysis-
// hostile); prefetch/eviction hints dominate for the streaming apps;
// offload only pays off where computation is light relative to traffic.

#include "bench/common.h"

namespace mira::bench {
namespace {

struct App {
  const char* name;
  const workloads::Workload& (*get)();
};

const workloads::Workload& Df() {
  static const workloads::Workload w = workloads::BuildDataFrame();
  return w;
}
const workloads::Workload& Gpt() {
  static const workloads::Workload w = workloads::BuildGpt2();
  return w;
}
const workloads::Workload& Mc() {
  static const workloads::Workload w = workloads::BuildMcf();
  return w;
}

const std::vector<App>& Apps() {
  static const std::vector<App> kApps = {{"dataframe", &Df}, {"gpt2", &Gpt}, {"mcf", &Mc}};
  return kApps;
}

struct Step {
  const char* name;
  pipeline::PlannerOptions toggles;
};

const std::vector<Step>& Steps() {
  static const std::vector<Step> kSteps = {
      {"swap_baseline", Toggles(false, false, false, false, false, false, false)},
      {"plus_sections", Toggles(true, false, false, false, false, false, false)},
      {"plus_prefetch_evict", Toggles(true, true, true, false, false, false, false)},
      {"plus_batch_selective", Toggles(true, true, true, true, true, true, false)},
      {"plus_offload", Toggles(true, true, true, true, true, true, true)},
  };
  return kSteps;
}

void BM_Step(benchmark::State& state, const App* app, const Step* step) {
  const auto& w = app->get();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto& compiled = CompileMira(w, local, step->toggles, /*max_iterations=*/2);
    const RunOutput out =
        Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
  }
}

void RegisterAll() {
  for (const auto& app : Apps()) {
    for (const auto& step : Steps()) {
      benchmark::RegisterBenchmark(
          (std::string("fig21/") + app.name + "/" + step.name).c_str(), BM_Step, &app, &step)
          ->Arg(25)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
