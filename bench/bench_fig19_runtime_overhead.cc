// Figures 19/20 (§6.1 "Runtime overhead"): run-time performance overhead
// and metadata overhead at FULL local memory — Mira vs AIFM vs native —
// for the three applications, the graph example, and a simple array-sum
// loop. Paper shape: Mira's hit path is close to native (promotion removes
// most dereference cost and metadata), while AIFM pays a per-dereference
// cost and large per-pointer metadata even with all data local.

#include "bench/common.h"

namespace mira::bench {
namespace {

struct Program {
  const char* name;
  workloads::Workload (*build)();
};

workloads::Workload G() { return workloads::BuildGraphTraversal(); }
workloads::Workload A() { return workloads::BuildArraySum(); }
workloads::Workload D() { return workloads::BuildDataFrame(); }
workloads::Workload M() { return workloads::BuildMcf(); }
workloads::Workload T() { return workloads::BuildGpt2(); }

const std::vector<Program>& Programs() {
  static const std::vector<Program> kPrograms = {
      {"graph", &G}, {"arraysum", &A}, {"dataframe", &D}, {"mcf", &M}, {"gpt2", &T}};
  return kPrograms;
}

// Mira metadata: per-line bookkeeping across configured sections (tag,
// state, list links ≈ sizeof(LineMeta) per line) plus swap page table.
uint64_t MiraMetadataBytes(const runtime::CachePlan& plan, uint64_t local_bytes) {
  uint64_t lines = 0;
  uint64_t sectioned = 0;
  for (const auto& s : plan.sections) {
    lines += s.num_lines();
    sectioned += s.size_bytes;
  }
  const uint64_t swap_pages =
      (local_bytes > sectioned ? local_bytes - sectioned : 0) / 4096;
  return lines * sizeof(cache::LineMeta) + swap_pages * 16;
}

void BM_MiraOverhead(benchmark::State& state, const Program* program) {
  const workloads::Workload w = program->build();
  const uint64_t local = w.footprint_bytes;  // 100 % local memory
  for (auto _ : state) {
    const MiraCompiled compiled = FullPlanCompile(w, local, CacheOnly());
    const RunOutput out =
        Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan);
    const uint64_t native = NativeNs(*w.module);
    state.counters["overhead_pct"] =
        100.0 * (static_cast<double>(out.sim_ns) / static_cast<double>(native) - 1.0);
    state.counters["metadata_kb"] =
        static_cast<double>(MiraMetadataBytes(compiled.plan, local)) / 1024.0;
  }
}

void BM_AifmOverhead(benchmark::State& state, const Program* program) {
  const workloads::Workload w = program->build();
  // AIFM gets full memory PLUS its metadata so it can run everywhere here.
  for (auto _ : state) {
    RunOutput probe = Run(*w.module, pipeline::SystemKind::kAifm, w.footprint_bytes * 4);
    const auto* aifm = static_cast<const backends::AifmBackend*>(probe.world.backend.get());
    const uint64_t meta = aifm->metadata_bytes();
    const RunOutput out =
        Run(*w.module, pipeline::SystemKind::kAifm, w.footprint_bytes + meta + (64 << 10));
    const uint64_t native = NativeNs(*w.module);
    state.counters["overhead_pct"] =
        out.failed ? -1
                   : 100.0 * (static_cast<double>(out.sim_ns) / static_cast<double>(native) -
                              1.0);
    state.counters["metadata_kb"] = static_cast<double>(meta) / 1024.0;
  }
}

void RegisterAll() {
  for (const auto& program : Programs()) {
    benchmark::RegisterBenchmark((std::string("fig19/mira/") + program.name).c_str(),
                                 BM_MiraOverhead, &program)
        ->Iterations(1);
    benchmark::RegisterBenchmark((std::string("fig19/aifm/") + program.name).c_str(),
                                 BM_AifmOverhead, &program)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
