// Figure 6: effect of Mira techniques on the graph-traversal example at a
// fixed local-memory budget — techniques added cumulatively over the
// generic-swap baseline, normalized to native.

#include "bench/common.h"

namespace mira::bench {
namespace {

const workloads::Workload& Graph() {
  static const workloads::Workload w = workloads::BuildGraphTraversal();
  return w;
}

struct Step {
  const char* name;
  pipeline::PlannerOptions toggles;
};

const std::vector<Step>& Steps() {
  //                     sections prefetch evict  batch  promote selective offload
  static const std::vector<Step> kSteps = {
      {"swap_baseline", Toggles(false, false, false, false, false, false, false)},
      {"plus_sections", Toggles(true, false, false, false, false, false, false)},
      {"plus_prefetch", Toggles(true, true, false, false, false, false, false)},
      {"plus_evict_hints", Toggles(true, true, true, false, false, false, false)},
      {"plus_batch_promote", Toggles(true, true, true, true, true, false, false)},
      {"plus_selective", Toggles(true, true, true, true, true, true, false)},
      {"plus_offload", Toggles(true, true, true, true, true, true, true)},
  };
  return kSteps;
}

void BM_Step(benchmark::State& state, const Step* step) {
  const auto& w = Graph();
  const uint64_t local = LocalBytes(w, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto& compiled = CompileMira(w, local, step->toggles, /*max_iterations=*/2);
    const RunOutput out =
        Run(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan);
    state.counters["sim_ms"] = static_cast<double>(out.sim_ns) / 1e6;
    state.counters["norm"] = Norm(NativeNs(*w.module), out.sim_ns);
  }
}

void RegisterAll() {
  for (const int pct : {25, 50}) {
    for (const auto& step : Steps()) {
      benchmark::RegisterBenchmark((std::string("fig06/") + step.name).c_str(), BM_Step, &step)
          ->Arg(pct)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace mira::bench

int main(int argc, char** argv) {
  mira::bench::InitTelemetry(&argc, argv);  // strips --trace-out= / --metrics-out=
  benchmark::Initialize(&argc, argv);
  mira::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  mira::bench::FlushTelemetry();
  benchmark::Shutdown();
  return 0;
}
