// Transformation passes: conversion, prefetch/evict insertion, fusion +
// batching, promotion, offload extraction — including the key invariant
// that every transformed module still verifies and computes the same
// result as the original.

#include <gtest/gtest.h>

#include "src/analysis/access_analysis.h"
#include "src/interp/interpreter.h"
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/passes/convert.h"
#include "src/passes/fuse.h"
#include "src/passes/prefetch_evict.h"
#include "src/pipeline/optimizer.h"
#include "src/pipeline/world.h"
#include "src/workloads/workloads.h"

namespace mira::passes {
namespace {

using ir::FunctionBuilder;
using ir::Local;
using ir::Module;
using ir::OpKind;
using ir::Type;
using ir::Value;

int CountOps(const Module& m, OpKind kind) {
  int n = 0;
  for (const auto& f : m.functions) {
    ir::WalkInstrs(f->body, [&](const ir::Instr& i) { n += i.kind == kind; });
  }
  return n;
}

uint64_t Execute(const Module& m, uint64_t local_bytes = 1 << 20) {
  auto world = pipeline::MakeWorld(pipeline::SystemKind::kMira, local_bytes, {});
  interp::Interpreter interp(&m, world.backend.get());
  auto r = interp.Run("main");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value() : ~0ULL;
}

std::unique_ptr<Module> SumProgram() {
  auto m = std::make_unique<Module>();
  FunctionBuilder f(m.get(), "main", {}, Type::kI64);
  const Value a = f.Alloc(f.ConstI(4096), "a", 8);
  f.For(f.ConstI(0), f.ConstI(512), f.ConstI(1),
        [&](Value i) { f.Store(f.Index(a, i, 8, 0), f.Mul(i, f.ConstI(3)), 8); });
  const Local acc = f.DeclLocal(Type::kI64);
  f.StoreLocal(acc, f.ConstI(0));
  f.For(f.ConstI(0), f.ConstI(512), f.ConstI(1), [&](Value i) {
    f.StoreLocal(acc, f.Add(f.LoadLocal(acc), f.Load(f.Index(a, i, 8, 0), 8, Type::kI64)));
  });
  f.Return(f.LoadLocal(acc));
  return m;
}

TEST(RemotableConversion, ConvertsOnlySelectedObjects) {
  auto m = SumProgram();
  analysis::AccessAnalysis access(m.get());
  access.Run();
  const int converted = RemotableConversion(m.get(), access, {"a"});
  EXPECT_EQ(converted, 2);  // one store + one load
  EXPECT_EQ(CountOps(*m, OpKind::kRmemLoad), 1);
  EXPECT_EQ(CountOps(*m, OpKind::kRmemStore), 1);
  EXPECT_EQ(CountOps(*m, OpKind::kLoad), 0);
  EXPECT_TRUE(ir::VerifyModule(*m).ok());
}

TEST(RemotableConversion, NoSelectionNoChange) {
  auto m = SumProgram();
  analysis::AccessAnalysis access(m.get());
  access.Run();
  EXPECT_EQ(RemotableConversion(m.get(), access, {"other"}), 0);
  EXPECT_EQ(CountOps(*m, OpKind::kRmemLoad), 0);
}

TEST(PrefetchInsertion, SequentialLoopGetsGuardedPrefetchAndPrologue) {
  auto m = SumProgram();
  analysis::AccessAnalysis access(m.get());
  access.Run();
  RemotableConversion(m.get(), access, {"a"});
  analysis::AccessAnalysis access2(m.get());
  access2.Run();
  CompileInfoMap info;
  info["a"] = ObjectCompileInfo{analysis::AccessPattern::kSequential, 512, 8, 2, false, false};
  const int inserted = InsertPrefetches(m.get(), access2, info);
  EXPECT_GE(inserted, 1);
  EXPECT_GE(CountOps(*m, OpKind::kPrefetch), 2);  // prologue + in-loop
  EXPECT_TRUE(ir::VerifyModule(*m).ok()) << ir::VerifyModule(*m).ToString();
}

TEST(PrefetchInsertion, PreservesSemantics) {
  auto plain = SumProgram();
  const uint64_t expected = Execute(*plain);
  auto m = SumProgram();
  analysis::AccessAnalysis access(m.get());
  access.Run();
  RemotableConversion(m.get(), access, {"a"});
  analysis::AccessAnalysis access2(m.get());
  access2.Run();
  CompileInfoMap info;
  info["a"] = ObjectCompileInfo{analysis::AccessPattern::kSequential, 512, 8, 2, true, true};
  InsertPrefetches(m.get(), access2, info);
  analysis::AccessAnalysis access3(m.get());
  access3.Run();
  InsertEvictionHints(m.get(), access3, info);
  EXPECT_EQ(Execute(*m), expected);
}

TEST(EvictHints, InsertedAtLineBoundaries) {
  auto m = SumProgram();
  analysis::AccessAnalysis access(m.get());
  access.Run();
  RemotableConversion(m.get(), access, {"a"});
  analysis::AccessAnalysis access2(m.get());
  access2.Run();
  CompileInfoMap info;
  info["a"] = ObjectCompileInfo{analysis::AccessPattern::kSequential, 512, 8, 0, true, false};
  const int inserted = InsertEvictionHints(m.get(), access2, info);
  EXPECT_GE(inserted, 1);
  EXPECT_GE(CountOps(*m, OpKind::kEvictHint), 1);
  EXPECT_TRUE(ir::VerifyModule(*m).ok());
}

TEST(LifetimeEnds, InsertedAfterLastUse) {
  auto m = std::make_unique<Module>();
  {
    FunctionBuilder f(m.get(), "use", {Type::kPtr});
    f.Load(f.Index(f.Arg(0), f.ConstI(0), 8, 0), 8, Type::kI64);
    f.Return();
  }
  FunctionBuilder f(m.get(), "main", {}, Type::kVoid);
  const Value a = f.Alloc(f.ConstI(1024), "a", 8);
  const Value b = f.Alloc(f.ConstI(1024), "b", 8);
  f.Call("use", {a});
  f.Call("use", {b});
  f.Return();
  analysis::AccessAnalysis access(m.get());
  access.Run();
  analysis::LifetimeAnalysis lifetime(m.get(), &access);
  lifetime.Run("main");
  const int inserted = InsertLifetimeEnds(m.get(), "main", lifetime, {"a", "b"});
  EXPECT_EQ(inserted, 2);  // `a` after its call, `b` before the return
  EXPECT_EQ(CountOps(*m, OpKind::kLifetimeEnd), 2);
  EXPECT_TRUE(ir::VerifyModule(*m).ok());
}

std::unique_ptr<Module> ThreeLoopProgram() {
  // The Fig 23 shape: three loops over one vector.
  auto m = std::make_unique<Module>();
  FunctionBuilder f(m.get(), "main", {}, Type::kI64);
  const Value a = f.Alloc(f.ConstI(8192), "v", 8);
  const Value n = f.ConstI(1024);
  f.For(f.ConstI(0), n, f.ConstI(1),
        [&](Value i) { f.Store(f.Index(a, i, 8, 0), i, 8); });
  const Local s = f.DeclLocal(Type::kI64);
  const Local mn = f.DeclLocal(Type::kI64);
  const Local mx = f.DeclLocal(Type::kI64);
  f.StoreLocal(s, f.ConstI(0));
  f.StoreLocal(mn, f.ConstI(1 << 30));
  f.StoreLocal(mx, f.ConstI(-(1 << 30)));
  f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
    f.StoreLocal(s, f.Add(f.LoadLocal(s), f.Load(f.Index(a, i, 8, 0), 8, Type::kI64)));
  });
  f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
    f.StoreLocal(mn, f.Min(f.LoadLocal(mn), f.Load(f.Index(a, i, 8, 0), 8, Type::kI64)));
  });
  f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
    f.StoreLocal(mx, f.Max(f.LoadLocal(mx), f.Load(f.Index(a, i, 8, 0), 8, Type::kI64)));
  });
  f.Return(f.Add(f.LoadLocal(s), f.Add(f.LoadLocal(mn), f.LoadLocal(mx))));
  return m;
}

int CountForLoops(const Module& m) { return CountOps(m, OpKind::kFor); }

TEST(Fusion, AdjacentCompatibleLoopsFuse) {
  auto m = ThreeLoopProgram();
  analysis::AccessAnalysis access(m.get());
  access.Run();
  RemotableConversion(m.get(), access, {"v"});
  EXPECT_EQ(CountForLoops(*m), 4);
  const int fused = FuseAndBatchLoops(m.get());
  EXPECT_EQ(fused, 2);  // three read loops → one
  EXPECT_EQ(CountForLoops(*m), 2);  // init (stores, unfusable) + fused reads
  EXPECT_TRUE(ir::VerifyModule(*m).ok()) << ir::VerifyModule(*m).ToString();
}

TEST(Fusion, TagsBatchGroups) {
  auto m = ThreeLoopProgram();
  analysis::AccessAnalysis access(m.get());
  access.Run();
  RemotableConversion(m.get(), access, {"v"});
  FuseAndBatchLoops(m.get());
  int tagged = 0;
  for (const auto& f : m->functions) {
    ir::WalkInstrs(f->body, [&](const ir::Instr& i) {
      tagged += i.kind == OpKind::kRmemLoad && i.mem.batch_group >= 0;
    });
  }
  EXPECT_EQ(tagged, 3);
}

TEST(Fusion, PreservesSemantics) {
  auto plain = ThreeLoopProgram();
  const uint64_t expected = Execute(*plain);
  auto m = ThreeLoopProgram();
  analysis::AccessAnalysis access(m.get());
  access.Run();
  RemotableConversion(m.get(), access, {"v"});
  FuseAndBatchLoops(m.get());
  EXPECT_EQ(Execute(*m), expected);
}

TEST(Fusion, RefusesMismatchedBounds) {
  auto m = std::make_unique<Module>();
  FunctionBuilder f(m.get(), "main", {}, Type::kVoid);
  const Value a = f.Alloc(f.ConstI(8192), "v", 8);
  f.For(f.ConstI(0), f.ConstI(100), f.ConstI(1),
        [&](Value i) { f.Load(f.Index(a, i, 8, 0), 8, Type::kI64); });
  f.For(f.ConstI(0), f.ConstI(200), f.ConstI(1),
        [&](Value i) { f.Load(f.Index(a, i, 8, 0), 8, Type::kI64); });
  f.Return();
  EXPECT_EQ(FuseAndBatchLoops(m.get()), 0);
  EXPECT_EQ(CountForLoops(*m), 2);
}

TEST(Promotion, MarksSequentialRmemAccesses) {
  auto m = SumProgram();
  analysis::AccessAnalysis access(m.get());
  access.Run();
  RemotableConversion(m.get(), access, {"a"});
  analysis::AccessAnalysis access2(m.get());
  access2.Run();
  CompileInfoMap info;
  info["a"] = ObjectCompileInfo{analysis::AccessPattern::kSequential, 512, 8, 2, false, true};
  const int promoted = PromoteNativeLoads(m.get(), access2, info);
  EXPECT_GE(promoted, 2);
  // The init loop's sequential stores also become full-line writes.
  bool full_line = false;
  for (const auto& f : m->functions) {
    ir::WalkInstrs(f->body, [&](const ir::Instr& i) {
      full_line |= i.kind == OpKind::kRmemStore && i.mem.full_line_write;
    });
  }
  EXPECT_TRUE(full_line);
}

TEST(Promotion, SkipsWhenLoopAlsoReadsObject) {
  // read-modify-write loop: stores must NOT be full-line (fetch needed).
  auto m = std::make_unique<Module>();
  FunctionBuilder f(m.get(), "main", {}, Type::kVoid);
  const Value a = f.Alloc(f.ConstI(4096), "a", 8);
  f.For(f.ConstI(0), f.ConstI(512), f.ConstI(1), [&](Value i) {
    const Value p = f.Index(a, i, 8, 0);
    f.Store(p, f.Add(f.Load(p, 8, Type::kI64), f.ConstI(1)), 8);
  });
  f.Return();
  analysis::AccessAnalysis access(m.get());
  access.Run();
  RemotableConversion(m.get(), access, {"a"});
  analysis::AccessAnalysis access2(m.get());
  access2.Run();
  CompileInfoMap info;
  info["a"] = ObjectCompileInfo{analysis::AccessPattern::kSequential, 512, 8, 0, false, true};
  PromoteNativeLoads(m.get(), access2, info);
  for (const auto& fn : m->functions) {
    ir::WalkInstrs(fn->body, [&](const ir::Instr& i) {
      if (i.kind == OpKind::kRmemStore) {
        EXPECT_FALSE(i.mem.full_line_write);
      }
    });
  }
}

TEST(Offload, ExtractionRewritesCallsAndMarksRemotable) {
  auto m = std::make_unique<Module>();
  {
    FunctionBuilder f(m.get(), "kernel", {Type::kPtr}, Type::kI64);
    f.Return(f.Load(f.Index(f.Arg(0), f.ConstI(0), 8, 0), 8, Type::kI64));
  }
  FunctionBuilder f(m.get(), "main", {}, Type::kI64);
  const Value a = f.Alloc(f.ConstI(64), "a", 8);
  f.Store(f.Index(a, f.ConstI(0), 8, 0), f.ConstI(55), 8);
  f.Return(f.Call("kernel", {a}));
  const uint64_t expected = Execute(*m);
  const int count = OffloadExtraction(m.get(), {"kernel"});
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(m->FindFunction("kernel")->remotable);
  EXPECT_EQ(CountOps(*m, OpKind::kOffloadCall), 1);
  EXPECT_TRUE(ir::VerifyModule(*m).ok());
  EXPECT_EQ(Execute(*m), expected);
  EXPECT_EQ(expected, 55u);
}

TEST(EndToEnd, FullPassStackPreservesWorkloadResults) {
  // The strongest property: a fully optimized module computes exactly what
  // the unoptimized one computes, for a real workload.
  const auto w = workloads::BuildGraphTraversal(
      workloads::GraphParams{.num_edges = 5000, .num_nodes = 1200, .epochs = 2});
  const uint64_t expected = Execute(*w.module, w.footprint_bytes);
  pipeline::OptimizeOptions opts;
  opts.local_bytes = w.footprint_bytes / 2;
  opts.max_iterations = 2;
  pipeline::IterativeOptimizer optimizer(w.module.get(), opts);
  auto compiled = optimizer.Optimize();
  auto world = pipeline::MakeWorld(pipeline::SystemKind::kMira, opts.local_bytes,
                                   compiled.plan);
  interp::Interpreter interp(&compiled.module, world.backend.get());
  EXPECT_EQ(interp.Run("main").value(), expected);
}

}  // namespace
}  // namespace mira::passes
