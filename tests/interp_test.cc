// Interpreter correctness: arithmetic, control flow, memory, calls,
// batching, offload, and determinism.

#include <gtest/gtest.h>

#include "src/interp/interpreter.h"
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/pipeline/world.h"

namespace mira {
namespace {

using interp::Interpreter;
using interp::PackF64;
using interp::UnpackF64;
using ir::FunctionBuilder;
using ir::Local;
using ir::Type;
using ir::Value;
using pipeline::MakeWorld;
using pipeline::SystemKind;

struct Env {
  pipeline::World world = MakeWorld(SystemKind::kNative, 0);
};

TEST(Interp, ArithmeticAndLocals) {
  ir::Module m;
  FunctionBuilder f(&m, "main", {}, Type::kI64);
  const Local acc = f.DeclLocal(Type::kI64);
  f.StoreLocal(acc, f.ConstI(10));
  const Value a = f.Mul(f.ConstI(6), f.ConstI(7));          // 42
  const Value b = f.Sub(a, f.ConstI(2));                    // 40
  const Value c = f.Div(b, f.ConstI(5));                    // 8
  const Value d = f.Rem(c, f.ConstI(3));                    // 2
  f.StoreLocal(acc, f.Add(f.LoadLocal(acc), d));            // 12
  f.Return(f.LoadLocal(acc));
  ASSERT_TRUE(ir::VerifyModule(m).ok());
  Env env;
  Interpreter interp(&m, env.world.backend.get());
  auto r = interp.Run("main");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 12u);
}

TEST(Interp, FloatOps) {
  ir::Module m;
  FunctionBuilder f(&m, "main", {}, Type::kF64);
  const Value x = f.Add(f.ConstF(1.5), f.ConstF(2.5));  // 4.0
  const Value y = f.Unary(ir::OpKind::kSqrt, x);        // 2.0
  f.Return(f.Mul(y, f.ConstF(3.0)));                    // 6.0
  Env env;
  Interpreter interp(&m, env.world.backend.get());
  auto r = interp.Run("main");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(UnpackF64(r.value()), 6.0);
}

TEST(Interp, ForLoopSum) {
  ir::Module m;
  FunctionBuilder f(&m, "main", {}, Type::kI64);
  const Local acc = f.DeclLocal(Type::kI64);
  f.StoreLocal(acc, f.ConstI(0));
  f.For(f.ConstI(0), f.ConstI(100), f.ConstI(1), [&](Value i) {
    f.StoreLocal(acc, f.Add(f.LoadLocal(acc), i));
  });
  f.Return(f.LoadLocal(acc));
  Env env;
  Interpreter interp(&m, env.world.backend.get());
  EXPECT_EQ(interp.Run("main").value(), 4950u);
}

TEST(Interp, WhileLoop) {
  ir::Module m;
  FunctionBuilder f(&m, "main", {}, Type::kI64);
  const Local x = f.DeclLocal(Type::kI64);
  f.StoreLocal(x, f.ConstI(1));
  f.While([&] { return f.CmpLt(f.LoadLocal(x), f.ConstI(1000)); },
          [&] { f.StoreLocal(x, f.Mul(f.LoadLocal(x), f.ConstI(2))); });
  f.Return(f.LoadLocal(x));
  Env env;
  Interpreter interp(&m, env.world.backend.get());
  EXPECT_EQ(interp.Run("main").value(), 1024u);
}

TEST(Interp, IfElse) {
  ir::Module m;
  FunctionBuilder f(&m, "main", {}, Type::kI64);
  const Local out = f.DeclLocal(Type::kI64);
  f.If(f.CmpGt(f.ConstI(3), f.ConstI(5)), [&] { f.StoreLocal(out, f.ConstI(111)); },
       [&] { f.StoreLocal(out, f.ConstI(222)); });
  f.Return(f.LoadLocal(out));
  Env env;
  Interpreter interp(&m, env.world.backend.get());
  EXPECT_EQ(interp.Run("main").value(), 222u);
}

TEST(Interp, MemoryRoundTrip) {
  ir::Module m;
  FunctionBuilder f(&m, "main", {}, Type::kI64);
  const Value arr = f.Alloc(f.ConstI(1024), "a", 8);
  f.For(f.ConstI(0), f.ConstI(128), f.ConstI(1), [&](Value i) {
    f.Store(f.Index(arr, i, 8, 0), f.Mul(i, i), 8);
  });
  const Local acc = f.DeclLocal(Type::kI64);
  f.StoreLocal(acc, f.ConstI(0));
  f.For(f.ConstI(0), f.ConstI(128), f.ConstI(1), [&](Value i) {
    f.StoreLocal(acc, f.Add(f.LoadLocal(acc), f.Load(f.Index(arr, i, 8, 0), 8, Type::kI64)));
  });
  f.Return(f.LoadLocal(acc));
  Env env;
  Interpreter interp(&m, env.world.backend.get());
  // Σ i² for i<128 = 127*128*255/6
  EXPECT_EQ(interp.Run("main").value(), 690880u);
}

TEST(Interp, SubByteWidthAccess) {
  ir::Module m;
  FunctionBuilder f(&m, "main", {}, Type::kI64);
  const Value arr = f.Alloc(f.ConstI(64), "a", 1);
  f.Store(f.Index(arr, f.ConstI(3), 1, 0), f.ConstI(0xAB), 1);
  f.Return(f.Load(f.Index(arr, f.ConstI(3), 1, 0), 1, Type::kI64));
  Env env;
  Interpreter interp(&m, env.world.backend.get());
  EXPECT_EQ(interp.Run("main").value(), 0xABu);
}

TEST(Interp, FunctionCallWithArgs) {
  ir::Module m;
  {
    FunctionBuilder f(&m, "double_it", {Type::kI64}, Type::kI64);
    f.Return(f.Mul(f.Arg(0), f.ConstI(2)));
  }
  {
    FunctionBuilder f(&m, "main", {}, Type::kI64);
    const Value r = f.Call("double_it", {f.ConstI(21)});
    f.Return(r);
  }
  Env env;
  Interpreter interp(&m, env.world.backend.get());
  EXPECT_EQ(interp.Run("main").value(), 42u);
}

TEST(Interp, RandIsDeterministicPerSeed) {
  ir::Module m;
  FunctionBuilder f(&m, "main", {}, Type::kI64);
  const Local acc = f.DeclLocal(Type::kI64);
  f.StoreLocal(acc, f.ConstI(0));
  f.For(f.ConstI(0), f.ConstI(64), f.ConstI(1), [&](Value) {
    f.StoreLocal(acc, f.Add(f.LoadLocal(acc), f.Rand(f.ConstI(1000))));
  });
  f.Return(f.LoadLocal(acc));
  Env e1, e2, e3;
  interp::InterpOptions seeded;
  seeded.seed = 7;
  Interpreter i1(&m, e1.world.backend.get(), seeded);
  Interpreter i2(&m, e2.world.backend.get(), seeded);
  Interpreter i3(&m, e3.world.backend.get());  // default seed differs
  const uint64_t a = i1.Run("main").value();
  const uint64_t b = i2.Run("main").value();
  const uint64_t c = i3.Run("main").value();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Interp, OffloadCallMatchesLocalResult) {
  // The same function called plainly vs offloaded must compute the same
  // value; offload must also charge RPC time on a Mira backend.
  auto build = [](bool offload) {
    auto m = std::make_unique<ir::Module>();
    {
      FunctionBuilder f(m.get(), "kernel", {Type::kPtr, Type::kI64}, Type::kI64);
      const Value arr = f.Arg(0);
      const Value n = f.Arg(1);
      const Local acc = f.DeclLocal(Type::kI64);
      f.StoreLocal(acc, f.ConstI(0));
      f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
        f.StoreLocal(acc,
                     f.Add(f.LoadLocal(acc), f.Load(f.Index(arr, i, 8, 0), 8, Type::kI64)));
      });
      f.Return(f.LoadLocal(acc));
    }
    {
      FunctionBuilder f(m.get(), "main", {}, Type::kI64);
      const Value arr = f.Alloc(f.ConstI(256 * 8), "a", 8);
      f.For(f.ConstI(0), f.ConstI(256), f.ConstI(1), [&](Value i) {
        f.Store(f.Index(arr, i, 8, 0), i, 8);
      });
      f.Return(f.Call("kernel", {arr, f.ConstI(256)}));
    }
    if (offload) {
      // Rewrite the call by hand (the pass does the same thing).
      ir::WalkInstrs(m->FindFunction("main")->body, [&](ir::Instr& instr) {
        if (instr.kind == ir::OpKind::kCall && instr.callee == 0) {
          instr.kind = ir::OpKind::kOffloadCall;
        }
      });
    }
    return m;
  };
  auto plain = build(false);
  auto off = build(true);
  auto w1 = MakeWorld(SystemKind::kMira, 1 << 20, {});
  auto w2 = MakeWorld(SystemKind::kMira, 1 << 20, {});
  Interpreter i1(plain.get(), w1.backend.get());
  Interpreter i2(off.get(), w2.backend.get());
  EXPECT_EQ(i1.Run("main").value(), i2.Run("main").value());
  EXPECT_EQ(i1.Run("main").value(), 256u * 255 / 2);
  // Each world pays one allocator-refill RPC; only the offloaded variant
  // adds the function-call RPC on top.
  EXPECT_EQ(w2.net->stats().rpcs, w1.net->stats().rpcs + 1);
}

TEST(Interp, ProfilingLedgerTracksFunctions) {
  ir::Module m;
  {
    FunctionBuilder f(&m, "leaf", {}, Type::kI64);
    f.Return(f.ConstI(1));
  }
  {
    FunctionBuilder f(&m, "main", {}, Type::kI64);
    const Local acc = f.DeclLocal(Type::kI64);
    f.StoreLocal(acc, f.ConstI(0));
    f.For(f.ConstI(0), f.ConstI(10), f.ConstI(1), [&](Value) {
      f.StoreLocal(acc, f.Add(f.LoadLocal(acc), f.Call("leaf", {})));
    });
    f.Return(f.LoadLocal(acc));
  }
  Env env;
  Interpreter interp(&m, env.world.backend.get());
  EXPECT_EQ(interp.Run("main").value(), 10u);
  const auto& prof = interp.profile();
  ASSERT_TRUE(prof.funcs.count("leaf"));
  EXPECT_EQ(prof.funcs.at("leaf").calls, 10u);
  EXPECT_EQ(prof.funcs.at("main").calls, 1u);
  EXPECT_GT(prof.total_ns, 0u);
}

TEST(Interp, MaxInstrBudgetAborts) {
  ir::Module m;
  FunctionBuilder f(&m, "main", {}, Type::kI64);
  const Local x = f.DeclLocal(Type::kI64);
  f.StoreLocal(x, f.ConstI(0));
  f.While([&] { return f.ConstI(1); },
          [&] { f.StoreLocal(x, f.Add(f.LoadLocal(x), f.ConstI(1))); });
  f.Return(f.LoadLocal(x));
  Env env;
  interp::InterpOptions opts;
  opts.max_instrs = 10'000;
  Interpreter interp(&m, env.world.backend.get(), opts);
  EXPECT_FALSE(interp.Run("main").ok());
}

}  // namespace
}  // namespace mira
