// System backends: relative timing behavior that the figures depend on.

#include <gtest/gtest.h>

#include "src/backends/aifm_backend.h"
#include "src/backends/fastswap_backend.h"
#include "src/backends/leap_backend.h"
#include "src/backends/mira_backend.h"
#include "src/pipeline/world.h"

namespace mira::backends {
namespace {

using pipeline::MakeWorld;
using pipeline::SystemKind;

TEST(NativeBackend, ChargesNativeCostOnly) {
  auto w = MakeWorld(SystemKind::kNative, 0);
  sim::SimClock clk;
  const auto addr = w.backend->Alloc(clk, 4096, "x", 8).take();
  const uint64_t t0 = clk.now_ns();
  w.backend->Load(clk, addr, 8, {});
  EXPECT_EQ(clk.now_ns() - t0, sim::CostModel::Default().native_access_ns);
}

TEST(Backend, ObjectRegistryTracksAllocations) {
  auto w = MakeWorld(SystemKind::kNative, 0);
  sim::SimClock clk;
  const auto a = w.backend->Alloc(clk, 1000, "first", 16).take();
  const auto b = w.backend->Alloc(clk, 2000, "second", 8).take();
  EXPECT_EQ(w.backend->objects().size(), 2u);
  EXPECT_STREQ(w.backend->FindObject(a + 500)->label.c_str(), "first");
  EXPECT_STREQ(w.backend->FindObject(b)->label.c_str(), "second");
  EXPECT_EQ(w.backend->FindObject(b + 5000), nullptr);
  w.backend->Free(clk, a);
  EXPECT_EQ(w.backend->objects().size(), 1u);
}

TEST(FastSwap, SequentialScanBenefitsFromReadahead) {
  auto fast = MakeWorld(SystemKind::kFastSwap, 1 << 20);
  sim::SimClock clk;
  const auto addr = fast.backend->Alloc(clk, 512 << 10, "arr", 8).take();
  clk.Reset();
  for (uint64_t off = 0; off < (256 << 10); off += 64) {
    fast.backend->Load(clk, addr + off, 8, {});
  }
  const auto* backend = static_cast<FastSwapBackend*>(fast.backend.get());
  EXPECT_GT(backend->swap_stats().prefetched_hits, 0u);
}

TEST(Leap, SlowerDataPathThanFastSwap) {
  auto fast = MakeWorld(SystemKind::kFastSwap, 64 << 10);
  auto leap = MakeWorld(SystemKind::kLeap, 64 << 10);
  sim::SimClock cf, cl;
  const auto af = fast.backend->Alloc(cf, 4096, "x", 8).take();
  const auto al = leap.backend->Alloc(cl, 4096, "x", 8).take();
  cf.Reset();
  cl.Reset();
  fast.backend->Load(cf, af, 8, {});
  leap.backend->Load(cl, al, 8, {});
  EXPECT_GT(cl.now_ns(), cf.now_ns());
}

TEST(Aifm, DerefCostOnEveryAccessEvenWhenCached) {
  auto w = MakeWorld(SystemKind::kAifm, 1 << 20);
  sim::SimClock clk;
  const auto addr = w.backend->Alloc(clk, 4096, "x", 64).take();
  w.backend->Load(clk, addr, 8, {});  // miss
  const uint64_t t0 = clk.now_ns();
  w.backend->Load(clk, addr + 8, 8, {});  // cached chunk — still pays deref
  EXPECT_GE(clk.now_ns() - t0, sim::CostModel::Default().aifm_deref_ns);
}

TEST(Aifm, MetadataScalesInverselyWithElementSize) {
  auto w1 = MakeWorld(SystemKind::kAifm, 10 << 20);
  auto w2 = MakeWorld(SystemKind::kAifm, 10 << 20);
  sim::SimClock clk;
  w1.backend->Alloc(clk, 1 << 20, "longs", 8).take();
  w2.backend->Alloc(clk, 1 << 20, "structs", 128).take();
  const auto* a1 = static_cast<AifmBackend*>(w1.backend.get());
  const auto* a2 = static_cast<AifmBackend*>(w2.backend.get());
  EXPECT_EQ(a1->metadata_bytes(), (1u << 20) / 8 * 16);  // 2× the data!
  EXPECT_EQ(a2->metadata_bytes(), (1u << 20) / 128 * 16);
}

TEST(Aifm, FailsWhenMetadataExceedsLocalMemory) {
  auto w = MakeWorld(SystemKind::kAifm, 1 << 20);
  sim::SimClock clk;
  // 1 MiB of longs → 2 MiB of metadata > 1 MiB local.
  auto r = w.backend->Alloc(clk, 1 << 20, "longs", 8);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(static_cast<AifmBackend*>(w.backend.get())->failed());
}

runtime::CachePlan OneSectionPlan(const std::string& object) {
  runtime::CachePlan plan;
  cache::SectionConfig config;
  config.name = "s";
  config.structure = cache::SectionStructure::kDirectMapped;
  config.line_bytes = 1024;
  config.size_bytes = 16 << 10;
  plan.sections.push_back(config);
  plan.object_to_section[object] = 0;
  return plan;
}

TEST(Mira, PlanRoutesObjectToSectionOthersToSwap) {
  auto w = MakeWorld(SystemKind::kMira, 1 << 20, OneSectionPlan("hot"));
  auto* mira = static_cast<MiraBackend*>(w.backend.get());
  sim::SimClock clk;
  const auto hot = mira->Alloc(clk, 8192, "hot", 8).take();
  const auto cold = mira->Alloc(clk, 8192, "cold", 8).take();
  mira->Load(clk, hot, 8, {});
  mira->Load(clk, cold, 8, {});
  EXPECT_EQ(mira->SectionStatsAt(0).lines.total(), 1u);
  EXPECT_EQ(mira->swap_stats().lines.total(), 1u);
}

TEST(Mira, EncodePtrUsesSectionIdAndOffset) {
  auto w = MakeWorld(SystemKind::kMira, 1 << 20, OneSectionPlan("hot"));
  auto* mira = static_cast<MiraBackend*>(w.backend.get());
  sim::SimClock clk;
  const auto hot = mira->Alloc(clk, 8192, "hot", 8).take();
  const auto cold = mira->Alloc(clk, 8192, "cold", 8).take();
  const cache::RemotePtr hp = mira->EncodePtr(hot);
  const cache::RemotePtr cp = mira->EncodePtr(cold);
  EXPECT_FALSE(hp.is_local());
  EXPECT_EQ(hp.offset(), hot);
  EXPECT_TRUE(cp.is_local());  // swap-managed → section 0 (paper §5.2.1)
}

TEST(Mira, LifetimeEndReleasesSection) {
  auto w = MakeWorld(SystemKind::kMira, 1 << 20, OneSectionPlan("hot"));
  auto* mira = static_cast<MiraBackend*>(w.backend.get());
  sim::SimClock clk;
  const auto hot = mira->Alloc(clk, 8192, "hot", 8).take();
  mira->Load(clk, hot, 8, {});
  EXPECT_GT(mira->SectionAt(0)->resident_lines(), 0u);
  mira->LifetimeEnd(clk, hot);
  EXPECT_EQ(mira->SectionAt(0)->resident_lines(), 0u);
}

TEST(Mira, OffloadFlushesDirtySections) {
  auto w = MakeWorld(SystemKind::kMira, 1 << 20, OneSectionPlan("hot"));
  auto* mira = static_cast<MiraBackend*>(w.backend.get());
  sim::SimClock clk;
  const auto hot = mira->Alloc(clk, 8192, "hot", 8).take();
  mira->Store(clk, hot, 8, {});
  const uint64_t wb_before = mira->SectionStatsAt(0).writebacks;
  const uint64_t rpcs_before = w.net->stats().rpcs;  // alloc refill RPCs
  mira->OffloadCall(clk, 64, 16, 1000);
  EXPECT_GT(mira->SectionStatsAt(0).writebacks, wb_before);
  EXPECT_EQ(w.net->stats().rpcs, rpcs_before + 1);
}

TEST(Mira, BatchLoadGroupsBySection) {
  auto w = MakeWorld(SystemKind::kMira, 1 << 20, OneSectionPlan("hot"));
  auto* mira = static_cast<MiraBackend*>(w.backend.get());
  sim::SimClock clk;
  const auto hot = mira->Alloc(clk, 64 << 10, "hot", 8).take();
  std::vector<std::pair<farmem::RemoteAddr, uint32_t>> accesses;
  for (int i = 0; i < 4; ++i) {
    accesses.push_back({hot + static_cast<uint64_t>(i) * 4096, 8});
  }
  const uint64_t msgs_before = w.net->stats().messages;
  mira->LoadBatch(clk, accesses);
  EXPECT_EQ(w.net->stats().messages, msgs_before + 1);  // one gather
}

}  // namespace
}  // namespace mira::backends
