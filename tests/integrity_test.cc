// End-to-end data integrity (DESIGN.md "Integrity model"): the checksum
// primitives, the version-vector ledger, the recovery ladder (re-fetch →
// drain → escalate → quarantine), the shadow oracle, and the self-healing
// contract healed == detected under injector-only fault schedules.

#include <gtest/gtest.h>

#include "src/cache/section.h"
#include "src/farmem/far_memory_node.h"
#include "src/integrity/checksum.h"
#include "src/integrity/integrity.h"
#include "src/interp/interpreter.h"
#include "src/net/fault_injector.h"
#include "src/net/transport.h"
#include "src/pipeline/world.h"
#include "src/workloads/workloads.h"

namespace mira {
namespace {

using integrity::FetchVerdict;
using integrity::IntegrityConfig;
using integrity::IntegrityManager;
using pipeline::MakeWorld;
using pipeline::SystemKind;

// ---- Checksum primitives ----

TEST(Checksum, Fnv1aDistinguishesContentAndIsStable) {
  const char a[] = "far memory";
  const char b[] = "far memorz";
  EXPECT_EQ(integrity::Fnv1a64(a, sizeof(a)), integrity::Fnv1a64(a, sizeof(a)));
  EXPECT_NE(integrity::Fnv1a64(a, sizeof(a)), integrity::Fnv1a64(b, sizeof(b)));
  // Empty input hashes to the seed itself.
  EXPECT_EQ(integrity::Fnv1a64(a, 0), integrity::kFnv1aOffset);
}

TEST(Checksum, LineChecksumFoldsTheVersion) {
  uint8_t line[256] = {1, 2, 3};
  const uint64_t v1 = integrity::LineChecksum(line, sizeof(line), 1);
  const uint64_t v2 = integrity::LineChecksum(line, sizeof(line), 2);
  EXPECT_NE(v1, v2);  // same bytes, different version => different digest
  line[0] ^= 0x80;
  EXPECT_NE(v1, integrity::LineChecksum(line, sizeof(line), 1));
}

// ---- Ledger + version vector ----

struct Rig {
  farmem::FarMemoryNode node;
  sim::SimClock clk;
  IntegrityManager integ{&node};

  uint64_t Alloc(uint64_t bytes = 4096) { return node.AllocRange(bytes).take(); }
  void Write(uint64_t addr, uint64_t bits) { node.CopyIn(addr, &bits, sizeof(bits)); }
};

TEST(IntegrityLedger, CleanRoundTripVerifies) {
  Rig r;
  const uint64_t addr = r.Alloc();
  r.Write(addr, 0xDEADBEEF);
  r.integ.CommitStore(addr, 8, /*through_cache=*/false);
  EXPECT_EQ(r.integ.VerifyFetch(r.clk, addr, addr, 8, net::Delivery{}), FetchVerdict::kClean);
  EXPECT_EQ(r.integ.stats().detected, 0u);
  EXPECT_TRUE(r.integ.fatal().ok());
}

TEST(IntegrityLedger, PendingWritebackReadsAsVersionStaleUntilCommitted) {
  Rig r;
  const uint64_t addr = r.Alloc();
  r.Write(addr, 7);
  r.integ.CommitStore(addr, 8, /*through_cache=*/true);  // writeback still in flight
  EXPECT_EQ(r.integ.VerifyFetch(r.clk, addr, addr, 8, net::Delivery{}), FetchVerdict::kStale);
  EXPECT_EQ(r.integ.stats().version_stale_reads, 1u);
  EXPECT_EQ(r.integ.stats().detected, 1u);
  // The writeback lands: far_version catches up and the episode heals.
  EXPECT_TRUE(r.integ.CommitWriteback(r.clk, addr, 8, net::Delivery{}));
  EXPECT_EQ(r.integ.VerifyFetch(r.clk, addr, addr, 8, net::Delivery{}), FetchVerdict::kClean);
  EXPECT_EQ(r.integ.stats().healed, 1u);
  EXPECT_EQ(r.integ.stats().healed, r.integ.stats().detected);
}

TEST(IntegrityLedger, TaintedDeliveriesDemandRetryAndHealOnCleanFetch) {
  Rig r;
  const uint64_t addr = r.Alloc();
  r.integ.CommitStore(addr, 8, /*through_cache=*/false);
  net::Delivery corrupt;
  corrupt.corrupt = true;
  EXPECT_EQ(r.integ.VerifyFetch(r.clk, addr, addr, 8, corrupt), FetchVerdict::kRetry);
  EXPECT_TRUE(r.integ.EpisodeOpen(addr));
  // Repeated taint on the same fetch stays ONE episode (detected once).
  net::Delivery stale;
  stale.stale = true;
  EXPECT_EQ(r.integ.VerifyFetch(r.clk, addr, addr, 8, stale), FetchVerdict::kRetry);
  EXPECT_EQ(r.integ.stats().detected, 1u);
  EXPECT_EQ(r.integ.VerifyFetch(r.clk, addr, addr, 8, net::Delivery{}), FetchVerdict::kClean);
  EXPECT_FALSE(r.integ.EpisodeOpen(addr));
  EXPECT_EQ(r.integ.stats().healed, 1u);
  EXPECT_EQ(r.integ.stats().corrupt_deliveries, 1u);
  EXPECT_EQ(r.integ.stats().stale_reads, 1u);
}

TEST(IntegrityLedger, DuplicatedWritebackReplayIsANoOp) {
  Rig r;
  const uint64_t addr = r.Alloc();
  r.Write(addr, 1);
  r.integ.CommitStore(addr, 8);
  EXPECT_TRUE(r.integ.CommitWriteback(r.clk, addr, 8, net::Delivery{}));
  const uint64_t before = integrity::LineChecksum(r.node.Mem(addr, 256), 256, 1);
  // The replayed frame arrives after the original: accepted, suppressed,
  // and the arena + ledger are untouched.
  net::Delivery dup;
  dup.duplicate = true;
  EXPECT_TRUE(r.integ.CommitWriteback(r.clk, addr, 8, dup));
  EXPECT_EQ(r.integ.stats().replays_suppressed, 1u);
  EXPECT_EQ(integrity::LineChecksum(r.node.Mem(addr, 256), 256, 1), before);
  EXPECT_EQ(r.integ.VerifyFetch(r.clk, addr, addr, 8, net::Delivery{}), FetchVerdict::kClean);
  EXPECT_EQ(r.integ.stats().detected, 0u);
}

TEST(IntegrityLedger, CorruptWritebackFrameIsRejectedThenHealsOnRetransmit) {
  Rig r;
  const uint64_t addr = r.Alloc();
  r.integ.CommitStore(addr, 8);
  net::Delivery corrupt;
  corrupt.corrupt = true;
  EXPECT_FALSE(r.integ.CommitWriteback(r.clk, addr, 8, corrupt));
  EXPECT_EQ(r.integ.stats().corrupt_writebacks, 1u);
  EXPECT_TRUE(r.integ.EpisodeOpen(addr));
  EXPECT_TRUE(r.integ.CommitWriteback(r.clk, addr, 8, net::Delivery{}));
  EXPECT_EQ(r.integ.stats().healed, r.integ.stats().detected);
}

TEST(IntegrityLedger, VerificationTimeIsChargedToTheClock) {
  Rig r;
  const uint64_t addr = r.Alloc();
  r.integ.CommitStore(addr, 8, /*through_cache=*/false);
  const uint64_t t0 = r.clk.now_ns();
  r.integ.VerifyFetch(r.clk, addr, addr, 8, net::Delivery{});
  EXPECT_EQ(r.clk.now_ns() - t0, r.integ.config().verify_ns_per_granule);
}

// ---- Real arena damage: quarantine and the shadow oracle ----

TEST(IntegrityDamage, UnhealableDamageQuarantinesAndTurnsFatal) {
  Rig r;
  const uint64_t addr = r.Alloc();
  r.Write(addr, 42);
  r.integ.CommitStore(addr, 8, /*through_cache=*/false);
  r.integ.DamageArenaForTest(addr, 8);
  EXPECT_EQ(r.integ.VerifyFetch(r.clk, addr, addr, 8, net::Delivery{}), FetchVerdict::kFatal);
  EXPECT_EQ(r.integ.stats().quarantined, 1u);
  EXPECT_EQ(r.integ.fatal().code(), support::ErrorCode::kDataLoss);
  // Quarantine is sticky: the granule never reads clean again.
  EXPECT_EQ(r.integ.VerifyFetch(r.clk, addr, addr, 8, net::Delivery{}), FetchVerdict::kFatal);
}

TEST(IntegrityDamage, ParanoidOracleRestoresAndPinpointsFirstDivergence) {
  farmem::FarMemoryNode node;
  sim::SimClock clk;
  IntegrityConfig config;
  config.paranoid = true;
  IntegrityManager integ(&node, config);
  const uint64_t addr = node.AllocRange(4096).take();
  uint64_t bits = 0x1234;
  node.CopyIn(addr, &bits, sizeof(bits));
  integ.CommitStore(addr, 8, /*through_cache=*/false);
  const uint64_t damaged_at = addr + 512;  // second granule
  uint64_t other = 0x5678;
  node.CopyIn(damaged_at, &other, sizeof(other));
  integ.CommitStore(damaged_at, 8, /*through_cache=*/false);
  integ.DamageArenaForTest(damaged_at, 8);
  // The oracle heals in place: the fetch verdict stays clean.
  EXPECT_EQ(integ.VerifyFetch(clk, damaged_at, damaged_at, 8, net::Delivery{}),
            FetchVerdict::kClean);
  EXPECT_EQ(integ.stats().oracle_restores, 1u);
  EXPECT_EQ(integ.stats().quarantined, 0u);
  EXPECT_TRUE(integ.fatal().ok());
  EXPECT_EQ(integ.stats().first_divergent_addr, damaged_at & ~uint64_t{255});
  uint64_t back = 0;
  node.CopyOut(damaged_at, &back, sizeof(back));
  EXPECT_EQ(back, 0x5678u);  // bytes restored from the golden mirror
  EXPECT_EQ(integ.stats().healed, integ.stats().detected);
}

TEST(IntegrityDamage, FinalAuditCatchesDamageTheProgramNeverRefetched) {
  farmem::FarMemoryNode node;
  sim::SimClock clk;
  IntegrityConfig config;
  config.paranoid = true;
  IntegrityManager integ(&node, config);
  const uint64_t addr = node.AllocRange(4096).take();
  uint64_t bits = 9;
  node.CopyIn(addr, &bits, sizeof(bits));
  integ.CommitStore(addr, 8, /*through_cache=*/false);
  integ.DamageArenaForTest(addr, 4);
  integ.FinalAudit(clk);
  EXPECT_EQ(integ.stats().oracle_divergences, 1u);
  EXPECT_EQ(integ.stats().first_divergent_addr, addr & ~uint64_t{255});
  EXPECT_GT(integ.stats().audit_granules, 0u);
  EXPECT_EQ(integ.stats().healed, integ.stats().detected);
  uint64_t back = 0;
  node.CopyOut(addr, &back, sizeof(back));
  EXPECT_EQ(back, 9u);
}

TEST(IntegrityDamage, InterpreterSurfacesDataLossThroughTheRunStatus) {
  const auto w = workloads::BuildArraySum({.elems = 10'000, .epochs = 1});
  auto world = MakeWorld(SystemKind::kMira, 1 << 20, {});
  pipeline::AttachIntegrity(world);
  // Trip the quarantine before the run: commit a granule, damage it, fetch.
  sim::SimClock clk;
  const uint64_t addr = world.node->AllocRange(4096).take();
  world.integrity->CommitStore(addr, 8, /*through_cache=*/false);
  world.integrity->DamageArenaForTest(addr, 8);
  EXPECT_EQ(world.integrity->VerifyFetch(clk, addr, addr, 8, net::Delivery{}),
            FetchVerdict::kFatal);
  interp::Interpreter interp(w.module.get(), world.backend.get());
  const auto result = interp.Run("main");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), support::ErrorCode::kDataLoss);
}

// ---- End-to-end self-healing under injected silent faults ----

struct E2E {
  uint64_t result = 0;
  uint64_t sim_ns = 0;
  integrity::IntegrityStats integ;
  net::FaultStats faults;
};

E2E RunWorkload(const ir::Module& module, const net::FaultPlan* plan,
                const IntegrityConfig* config) {
  auto world = MakeWorld(SystemKind::kMira, 1 << 20, {});
  if (plan != nullptr) {
    pipeline::AttachFaults(world, *plan);
  }
  if (config != nullptr) {
    pipeline::AttachIntegrity(world, *config);
  }
  interp::Interpreter interp(&module, world.backend.get());
  E2E out;
  out.result = interp.Run("main").value();
  world.backend->Drain(interp.clock());  // chains into FinalAudit
  out.sim_ns = interp.clock().now_ns();
  if (world.integrity != nullptr) {
    out.integ = world.integrity->stats();
  }
  out.faults = world.net->fault_stats();
  return out;
}

TEST(IntegrityEndToEnd, SilentCorruptionIsDetectedHealedAndHarmless) {
  const auto w = workloads::BuildArraySum({.elems = 30'000, .epochs = 2});
  const E2E clean = RunWorkload(*w.module, nullptr, nullptr);
  const net::FaultPlan plan = net::FaultPlan::SilentCorruption(/*seed=*/7);
  const IntegrityConfig config;
  const E2E out = RunWorkload(*w.module, &plan, &config);
  EXPECT_EQ(out.result, clean.result);
  EXPECT_GT(out.integ.detected, 0u);
  EXPECT_EQ(out.integ.healed, out.integ.detected);
  EXPECT_EQ(out.integ.quarantined, 0u);
  EXPECT_GT(out.faults.corrupt_deliveries + out.faults.stale_deliveries +
                out.faults.duplicated_verbs,
            0u);
  // Healing costs time: tainted deliveries were re-fetched on the clock.
  EXPECT_GT(out.sim_ns, clean.sim_ns);
}

TEST(IntegrityEndToEnd, TornWritebacksAreRepublishedByTheDrainAudit) {
  const auto w = workloads::BuildArraySum({.elems = 30'000, .epochs = 2});
  const E2E clean = RunWorkload(*w.module, nullptr, nullptr);
  const net::FaultPlan plan = net::FaultPlan::TornWriteback(/*seed=*/7);
  const IntegrityConfig config;
  const E2E out = RunWorkload(*w.module, &plan, &config);
  EXPECT_EQ(out.result, clean.result);
  EXPECT_GT(out.integ.detected, 0u);
  EXPECT_EQ(out.integ.healed, out.integ.detected);
  EXPECT_EQ(out.integ.quarantined, 0u);
}

TEST(IntegrityEndToEnd, ParanoidOracleAgreesOnACleanRun) {
  const auto w = workloads::BuildArraySum({.elems = 20'000, .epochs = 1});
  IntegrityConfig config;
  config.paranoid = true;
  const E2E out = RunWorkload(*w.module, nullptr, &config);
  const E2E clean = RunWorkload(*w.module, nullptr, nullptr);
  EXPECT_EQ(out.result, clean.result);
  EXPECT_EQ(out.integ.oracle_divergences, 0u);
  EXPECT_EQ(out.integ.first_divergent_addr, 0u);
  EXPECT_EQ(out.integ.detected, 0u);
  EXPECT_GT(out.integ.audit_granules, 0u);
}

TEST(IntegrityEndToEnd, DisabledIntegrityIsBitIdenticalToNoIntegrity) {
  const auto w = workloads::BuildArraySum({.elems = 20'000, .epochs = 1});
  IntegrityConfig off;
  off.enabled = false;
  const E2E bare = RunWorkload(*w.module, nullptr, nullptr);
  const E2E disabled = RunWorkload(*w.module, nullptr, &off);
  EXPECT_EQ(bare.result, disabled.result);
  EXPECT_EQ(bare.sim_ns, disabled.sim_ns);
  EXPECT_EQ(disabled.integ.commits, 0u);
  EXPECT_EQ(disabled.integ.fetches_verified, 0u);
}

TEST(IntegrityEndToEnd, FaultedIntegrityRunsAreDeterministic) {
  const auto w = workloads::BuildArraySum({.elems = 20'000, .epochs = 1});
  const net::FaultPlan plan = net::FaultPlan::SilentCorruption(/*seed=*/11);
  const IntegrityConfig config;
  const E2E r1 = RunWorkload(*w.module, &plan, &config);
  const E2E r2 = RunWorkload(*w.module, &plan, &config);
  EXPECT_EQ(r1.result, r2.result);
  EXPECT_EQ(r1.sim_ns, r2.sim_ns);
  EXPECT_EQ(r1.integ.detected, r2.integ.detected);
  EXPECT_EQ(r1.integ.healed, r2.integ.healed);
  EXPECT_EQ(r1.integ.refetch_rounds, r2.integ.refetch_rounds);
}

// ---- Corruption striking mid-drain, interleaved with outages ----

TEST(IntegrityMidDrain, CorruptionDuringForcedSyncDrainStillHeals) {
  farmem::FarMemoryNode node;
  net::Transport net(&node, sim::CostModel::Default());
  sim::SimClock clk;
  IntegrityManager integ(&node);
  net.SetIntegrity(&integ);
  // Async writebacks always fail (forcing requeue until the forced sync
  // drain), the sync drain path sees wire corruption on some frames, and an
  // outage window lands mid-run so drains interleave with degraded waits.
  net::FaultPlan p;
  p.seed = 13;
  p.verb(net::Verb::kWriteAsync).drop_probability = 1.0;
  p.verb(net::Verb::kWriteSync).corrupt_probability = 0.3;
  p.outages.push_back(net::OutageWindow{300'000, 700'000});
  net::FaultInjector inj(p);
  net.SetFaultInjector(&inj);
  cache::SectionConfig config;
  config.name = "middrain";
  config.structure = cache::SectionStructure::kDirectMapped;
  config.line_bytes = 64;
  config.size_bytes = 64 * 4;
  auto section = cache::MakeSection(config, &net);
  // Conflict-miss 16 dirty lines through 4 frames: every eviction's async
  // writeback fails, the queue saturates, and the sync drain runs under
  // corruption + outage pressure. Timing first, then the data-plane commit
  // — the interpreter's store order.
  const uint64_t stride = 64 * 4;
  for (uint64_t i = 0; i < 16; ++i) {
    const uint64_t addr = farmem::FarMemoryNode::kBaseAddr + i * stride;
    section->Access(clk, addr, 8, /*write=*/true);
    uint64_t bits = i + 1;
    node.CopyIn(addr, &bits, sizeof(bits));
    integ.CommitStore(addr, 8);
  }
  section->FlushAll(clk);
  const auto& stats = section->stats();
  EXPECT_GE(stats.writebacks_requeued, cache::kPendingWritebackLimit);
  EXPECT_GE(stats.forced_sync_flushes, 1u);
  EXPECT_EQ(stats.writebacks, 16u);  // nothing dirty was lost
  integ.FinalAudit(clk);
  EXPECT_EQ(integ.stats().healed, integ.stats().detected);
  EXPECT_EQ(integ.stats().quarantined, 0u);
  EXPECT_TRUE(integ.fatal().ok());
}

TEST(IntegrityMidDrain, TornDrainInterleavedWithOutageRepublishesEveryLine) {
  farmem::FarMemoryNode node;
  net::Transport net(&node, sim::CostModel::Default());
  sim::SimClock clk;
  IntegrityManager integ(&node);
  net.SetIntegrity(&integ);
  net::FaultPlan p = net::FaultPlan::TornWriteback(/*seed=*/3, /*async_drop_p=*/1.0,
                                                  /*tear_p=*/1.0, /*sync_corrupt_p=*/0.0);
  p.outages.push_back(net::OutageWindow{200'000, 500'000});
  net::FaultInjector inj(p);
  net.SetFaultInjector(&inj);
  cache::SectionConfig config;
  config.name = "torn";
  config.structure = cache::SectionStructure::kDirectMapped;
  config.line_bytes = 64;
  config.size_bytes = 64 * 4;
  auto section = cache::MakeSection(config, &net);
  const uint64_t stride = 64 * 4;
  for (uint64_t i = 0; i < 12; ++i) {
    const uint64_t addr = farmem::FarMemoryNode::kBaseAddr + i * stride;
    section->Access(clk, addr, 8, /*write=*/true);
    integ.CommitStore(addr, 8);
  }
  section->FlushAll(clk);
  integ.FinalAudit(clk);
  // Every tear was observed by the version vector and re-published.
  EXPECT_GT(integ.stats().torn_writebacks, 0u);
  EXPECT_EQ(integ.stats().healed, integ.stats().detected);
  EXPECT_EQ(integ.stats().audit_lag_reconciled, 0u);  // drains republished all
  EXPECT_TRUE(integ.fatal().ok());
}

}  // namespace
}  // namespace mira
