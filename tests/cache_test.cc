// Cache sections: LRU, the three structures, hints, pinning, promotion,
// batching, selective transmission.

#include <gtest/gtest.h>

#include "src/cache/lru.h"
#include "src/cache/section.h"
#include "src/cache/section_manager.h"
#include "src/farmem/far_memory_node.h"

namespace mira::cache {
namespace {

struct Env {
  farmem::FarMemoryNode node;
  net::Transport net{&node, sim::CostModel::Default()};
  sim::SimClock clk;

  std::unique_ptr<Section> Make(SectionStructure structure, uint32_t line, uint64_t size,
                                uint32_t ways = 4) {
    SectionConfig config;
    config.name = "test";
    config.structure = structure;
    config.line_bytes = line;
    config.size_bytes = size;
    config.ways = ways;
    return MakeSection(config, &net);
  }
};

// ---------------- ActiveInactiveLru ----------------

TEST(Lru, InsertTouchVictim) {
  ActiveInactiveLru lru(4);
  std::vector<uint16_t> pins(4, 0);
  lru.OnInsert(0);
  lru.OnInsert(1);
  lru.OnInsert(2);
  // 0 is the inactive tail → first victim.
  EXPECT_EQ(lru.ChooseVictim(pins), 0u);
  // Touch twice to promote to active; then 1 becomes the victim.
  lru.OnTouch(0);
  lru.OnTouch(0);
  EXPECT_EQ(lru.ChooseVictim(pins), 1u);
}

TEST(Lru, SecondChanceViaReferenceBit) {
  ActiveInactiveLru lru(3);
  std::vector<uint16_t> pins(3, 0);
  lru.OnInsert(0);
  lru.OnInsert(1);
  lru.OnTouch(0);  // sets reference bit on inactive 0
  // Victim scan skips (promotes) 0, evicts 1.
  EXPECT_EQ(lru.ChooseVictim(pins), 1u);
  EXPECT_EQ(lru.active_size(), 1u);
}

TEST(Lru, PinnedSlotsSkipped) {
  ActiveInactiveLru lru(3);
  std::vector<uint16_t> pins(3, 0);
  lru.OnInsert(0);
  lru.OnInsert(1);
  pins[0] = 1;
  EXPECT_EQ(lru.ChooseVictim(pins), 1u);
}

TEST(Lru, AllPinnedReturnsNil) {
  ActiveInactiveLru lru(2);
  std::vector<uint16_t> pins(2, 1);
  lru.OnInsert(0);
  lru.OnInsert(1);
  EXPECT_EQ(lru.ChooseVictim(pins), ActiveInactiveLru::kNil);
}

TEST(Lru, RemoveMakesSlotUntracked) {
  ActiveInactiveLru lru(2);
  lru.OnInsert(0);
  EXPECT_TRUE(lru.Contains(0));
  lru.Remove(0);
  EXPECT_FALSE(lru.Contains(0));
  EXPECT_EQ(lru.resident(), 0u);
}

// ---------------- Section structures ----------------

struct StructureCase {
  std::string name;
  SectionStructure structure;
};

class SectionStructures : public ::testing::TestWithParam<StructureCase> {};

TEST_P(SectionStructures, MissThenHit) {
  Env env;
  auto s = env.Make(GetParam().structure, 256, 16 * 256);
  s->Access(env.clk, 1000, 8, false);
  EXPECT_EQ(s->stats().lines.misses, 1u);
  s->Access(env.clk, 1008, 8, false);  // same line
  EXPECT_EQ(s->stats().lines.hits, 1u);
  EXPECT_EQ(s->resident_lines(), 1u);
}

TEST_P(SectionStructures, MissCostsNetworkHitDoesNot) {
  Env env;
  auto s = env.Make(GetParam().structure, 256, 16 * 256);
  const uint64_t t0 = env.clk.now_ns();
  s->Access(env.clk, 0, 8, false);
  const uint64_t miss_cost = env.clk.now_ns() - t0;
  const uint64_t t1 = env.clk.now_ns();
  s->Access(env.clk, 8, 8, false);
  const uint64_t hit_cost = env.clk.now_ns() - t1;
  EXPECT_GT(miss_cost, sim::CostModel::Default().rdma_rtt_ns);
  EXPECT_LT(hit_cost, 100u);
}

TEST_P(SectionStructures, CapacityRespected) {
  Env env;
  auto s = env.Make(GetParam().structure, 256, 8 * 256);
  for (uint64_t i = 0; i < 64; ++i) {
    s->Access(env.clk, i * 256, 8, false);
  }
  EXPECT_LE(s->resident_lines(), 8u);
  EXPECT_GT(s->stats().evictions, 0u);
}

TEST_P(SectionStructures, DirtyEvictionWritesBack) {
  Env env;
  auto s = env.Make(GetParam().structure, 256, 4 * 256);
  for (uint64_t i = 0; i < 32; ++i) {
    s->Access(env.clk, i * 256, 8, /*write=*/true);
  }
  EXPECT_GT(s->stats().writebacks, 0u);
  EXPECT_GT(s->stats().bytes_written_back, 0u);
}

TEST_P(SectionStructures, ReleaseDropsResidencyAndFlushes) {
  Env env;
  auto s = env.Make(GetParam().structure, 256, 8 * 256);
  s->Access(env.clk, 0, 8, true);
  s->Access(env.clk, 256, 8, false);
  s->Release(env.clk);
  EXPECT_EQ(s->resident_lines(), 0u);
  EXPECT_EQ(s->stats().writebacks, 1u);  // only the dirty line
}

TEST_P(SectionStructures, ReleaseDiscardSkipsWriteback) {
  Env env;
  auto s = env.Make(GetParam().structure, 256, 8 * 256);
  s->Access(env.clk, 0, 8, true);
  s->Release(env.clk, /*discard=*/true);
  EXPECT_EQ(s->stats().writebacks, 0u);
}

TEST_P(SectionStructures, PrefetchHidesLatency) {
  Env env;
  auto s = env.Make(GetParam().structure, 256, 16 * 256);
  s->Prefetch(env.clk, 0, 256);
  EXPECT_EQ(s->stats().prefetches_issued, 1u);
  // Let the prefetch land.
  env.clk.Advance(sim::CostModel::Default().rdma_rtt_ns * 2);
  const uint64_t t0 = env.clk.now_ns();
  s->Access(env.clk, 0, 8, false);
  EXPECT_LT(env.clk.now_ns() - t0, 100u);
  EXPECT_EQ(s->stats().prefetched_hits, 1u);
}

TEST_P(SectionStructures, EarlyAccessToInflightPrefetchStalls) {
  Env env;
  auto s = env.Make(GetParam().structure, 256, 16 * 256);
  s->Prefetch(env.clk, 0, 256);
  const uint64_t t0 = env.clk.now_ns();
  s->Access(env.clk, 0, 8, false);  // prefetch not landed yet
  EXPECT_GT(env.clk.now_ns() - t0, 1000u);
  EXPECT_GT(s->stats().prefetch_late_ns, 0u);
}

TEST_P(SectionStructures, FullLineWriteSkipsFetch) {
  Env env;
  auto s = env.Make(GetParam().structure, 256, 16 * 256);
  const uint64_t bytes_before = env.net.stats().bytes_in;
  s->Access(env.clk, 0, 8, /*write=*/true, /*full_line_write=*/true);
  EXPECT_EQ(env.net.stats().bytes_in, bytes_before);  // no fetch
  EXPECT_EQ(s->stats().lines.misses, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, SectionStructures,
    ::testing::Values(StructureCase{"direct", SectionStructure::kDirectMapped},
                      StructureCase{"setassoc", SectionStructure::kSetAssociative},
                      StructureCase{"fullassoc", SectionStructure::kFullyAssociative}),
    [](const ::testing::TestParamInfo<StructureCase>& info) { return info.param.name; });

// ---------------- Structure-specific behavior ----------------

TEST(DirectMapped, ConflictingLinesEvictEachOther) {
  Env env;
  auto s = env.Make(SectionStructure::kDirectMapped, 256, 4 * 256);
  // Lines 0 and 4 map to the same slot (4 slots).
  s->Access(env.clk, 0, 8, false);
  s->Access(env.clk, 4 * 256, 8, false);
  s->Access(env.clk, 0, 8, false);
  EXPECT_EQ(s->stats().lines.misses, 3u);  // ping-pong
}

TEST(SetAssociative, WaysAbsorbConflicts) {
  Env env;
  auto s = env.Make(SectionStructure::kSetAssociative, 256, 8 * 256, /*ways=*/4);
  // 2 sets × 4 ways: lines 0,2,4,6 share set 0 and all fit.
  for (const uint64_t line : {0, 2, 4, 6}) {
    s->Access(env.clk, line * 256, 8, false);
  }
  for (const uint64_t line : {0, 2, 4, 6}) {
    s->Access(env.clk, line * 256, 8, false);
  }
  EXPECT_EQ(s->stats().lines.misses, 4u);
  EXPECT_EQ(s->stats().lines.hits, 4u);
}

TEST(FullyAssociative, NoConflictMissesUntilFull) {
  Env env;
  auto s = env.Make(SectionStructure::kFullyAssociative, 256, 8 * 256);
  for (uint64_t i = 0; i < 8; ++i) {
    s->Access(env.clk, i * 97 * 256, 8, false);  // scattered lines
  }
  for (uint64_t i = 0; i < 8; ++i) {
    s->Access(env.clk, i * 97 * 256, 8, false);
  }
  EXPECT_EQ(s->stats().lines.misses, 8u);
  EXPECT_EQ(s->stats().lines.hits, 8u);
}

TEST(LookupCosts, OrderedByStructure) {
  Env env;
  const auto& cost = sim::CostModel::Default();
  EXPECT_LT(cost.cache_lookup_direct_ns, cost.cache_lookup_setassoc_ns);
  EXPECT_LT(cost.cache_lookup_setassoc_ns, cost.cache_lookup_fullassoc_ns);
}

// ---------------- Hints, pins, promotion, batching ----------------

TEST(EvictHints, HintedLinesEvictedFirst) {
  Env env;
  auto s = env.Make(SectionStructure::kFullyAssociative, 256, 4 * 256);
  for (uint64_t i = 0; i < 4; ++i) {
    s->Access(env.clk, i * 256, 8, false);
  }
  s->EvictHint(env.clk, 2 * 256, 1);  // mark line 2 evictable
  s->Access(env.clk, 100 * 256, 8, false);  // needs a victim
  EXPECT_EQ(s->stats().hint_evictions, 1u);
  // Line 2 gone, others still resident.
  const uint64_t hits_before = s->stats().lines.hits;
  s->Access(env.clk, 0, 8, false);
  s->Access(env.clk, 256, 8, false);
  s->Access(env.clk, 3 * 256, 8, false);
  EXPECT_EQ(s->stats().lines.hits, hits_before + 3);
}

TEST(EvictHints, HintFlushesDirtyLineAsynchronously) {
  Env env;
  auto s = env.Make(SectionStructure::kFullyAssociative, 256, 4 * 256);
  s->Access(env.clk, 0, 8, /*write=*/true);
  const uint64_t t0 = env.clk.now_ns();
  s->EvictHint(env.clk, 0, 1);
  // Async: only issue + post CPU on the critical path, no RTT.
  EXPECT_LT(env.clk.now_ns() - t0, 1000u);
  EXPECT_EQ(s->stats().writebacks, 1u);
}

TEST(Pinning, PinnedLineNeverEvicted) {
  Env env;
  auto s = env.Make(SectionStructure::kFullyAssociative, 256, 4 * 256);
  s->Access(env.clk, 0, 8, false);
  s->Pin(0, 8);
  for (uint64_t i = 1; i < 40; ++i) {
    s->Access(env.clk, i * 256, 8, false);
  }
  const uint64_t hits_before = s->stats().lines.hits;
  s->Access(env.clk, 0, 8, false);
  EXPECT_EQ(s->stats().lines.hits, hits_before + 1);  // still resident
  s->Unpin(0, 8);
}

// ---------------- AccessLine accounting & memo regressions ----------------

TEST(Accounting, LineInsertChargedExactlyOncePerMiss) {
  Env env;
  auto s = env.Make(SectionStructure::kDirectMapped, 256, 4 * 256);
  const auto& cost = sim::CostModel::Default();
  // Full-line write: the miss path with no fetch. The runtime charge must
  // be exactly one lookup + one insert (regression: the insert cost was
  // suspected of being double-accounted between clock and stats).
  s->Access(env.clk, 0, 256, /*write=*/true, /*full_line_write=*/true);
  EXPECT_EQ(s->stats().runtime_ns, cost.cache_lookup_direct_ns + cost.line_insert_ns);
  EXPECT_EQ(s->stats().stall_ns, 0u);
  // Hit on the same line: one more lookup charge, no second insert.
  s->Access(env.clk, 8, 8, false);
  EXPECT_EQ(s->stats().runtime_ns, 2 * cost.cache_lookup_direct_ns + cost.line_insert_ns);
}

TEST(Accounting, RuntimeChargesMatchClockAdvance) {
  // Every runtime_ns charge comes with an equal simulated-clock advance: on
  // a stall-free path, elapsed time == runtime_ns plus the data accesses.
  Env env;
  auto s = env.Make(SectionStructure::kDirectMapped, 256, 4 * 256);
  const auto& cost = sim::CostModel::Default();
  const uint64_t t0 = env.clk.now_ns();
  s->Access(env.clk, 0, 256, /*write=*/true, /*full_line_write=*/true);
  s->Access(env.clk, 16, 8, false);  // hit
  EXPECT_EQ(env.clk.now_ns() - t0, s->stats().runtime_ns + 2 * cost.native_access_ns);
}

TEST(Memo, ConflictEvictionInvalidatesMemo) {
  Env env;
  auto s = env.Make(SectionStructure::kDirectMapped, 256, 4 * 256);
  s->Access(env.clk, 0, 8, false);        // miss; memoizes line 0 → slot 0
  s->Access(env.clk, 0, 8, false);        // memoized hit
  s->Access(env.clk, 4 * 256, 8, false);  // conflict: evicts line 0 from slot 0
  s->Access(env.clk, 0, 8, false);        // stale memo must not report a hit
  EXPECT_EQ(s->stats().lines.misses, 3u);
  EXPECT_EQ(s->stats().lines.hits, 1u);
}

TEST(Memo, ReleaseDropsResidencyDespiteMemo) {
  Env env;
  auto s = env.Make(SectionStructure::kFullyAssociative, 256, 4 * 256);
  s->Access(env.clk, 0, 8, false);
  s->Access(env.clk, 0, 8, false);  // memoized hit
  s->Release(env.clk);
  s->Access(env.clk, 0, 8, false);  // must miss: the slot was invalidated
  EXPECT_EQ(s->stats().lines.misses, 2u);
  EXPECT_EQ(s->stats().lines.hits, 1u);
}

TEST(Pinning, UnpinMakesLineEvictableAgain) {
  Env env;
  auto s = env.Make(SectionStructure::kFullyAssociative, 256, 4 * 256);
  s->Access(env.clk, 0, 8, false);
  s->Pin(0, 8);
  for (uint64_t i = 1; i < 20; ++i) {
    s->Access(env.clk, i * 256, 8, false);  // pressure: pinned line survives
  }
  s->Unpin(0, 8);
  for (uint64_t i = 20; i < 40; ++i) {
    s->Access(env.clk, i * 256, 8, false);  // pressure again: now evictable
  }
  const uint64_t misses_before = s->stats().lines.misses;
  s->Access(env.clk, 0, 8, false);
  EXPECT_EQ(s->stats().lines.misses, misses_before + 1);
}

TEST(Pinning, PinCountsNest) {
  Env env;
  auto s = env.Make(SectionStructure::kFullyAssociative, 256, 4 * 256);
  s->Access(env.clk, 0, 8, false);
  s->Pin(0, 8);
  s->Pin(0, 8);
  s->Unpin(0, 8);  // one pin still outstanding
  for (uint64_t i = 1; i < 20; ++i) {
    s->Access(env.clk, i * 256, 8, false);
  }
  const uint64_t hits_before = s->stats().lines.hits;
  s->Access(env.clk, 0, 8, false);  // still resident
  EXPECT_EQ(s->stats().lines.hits, hits_before + 1);
  s->Unpin(0, 8);
}

TEST(Promotion, PromotedHitIsNativeSpeed) {
  Env env;
  auto s = env.Make(SectionStructure::kDirectMapped, 256, 8 * 256);
  s->Access(env.clk, 0, 8, false);  // bring the line in
  const uint64_t t0 = env.clk.now_ns();
  s->AccessPromoted(env.clk, 8, 8, false);
  EXPECT_EQ(env.clk.now_ns() - t0, sim::CostModel::Default().native_access_ns);
}

TEST(Promotion, MisSpeculationDegradesToDemandMiss) {
  Env env;
  auto s = env.Make(SectionStructure::kDirectMapped, 256, 8 * 256);
  const uint64_t t0 = env.clk.now_ns();
  s->AccessPromoted(env.clk, 0, 8, false);  // line absent
  EXPECT_GT(env.clk.now_ns() - t0, sim::CostModel::Default().rdma_rtt_ns);
  EXPECT_EQ(s->stats().lines.misses, 1u);
}

TEST(Batching, OneGatherMessageForManyLines) {
  Env env;
  auto s = env.Make(SectionStructure::kFullyAssociative, 256, 32 * 256);
  std::vector<std::pair<uint64_t, uint32_t>> accesses;
  for (uint64_t i = 0; i < 8; ++i) {
    accesses.push_back({i * 1024, 8});
  }
  s->AccessBatch(env.clk, accesses, false);
  EXPECT_EQ(env.net.stats().messages, 1u);
  EXPECT_EQ(s->stats().lines.misses, 8u);
  // Repeat: all hits, no more traffic.
  s->AccessBatch(env.clk, accesses, false);
  EXPECT_EQ(env.net.stats().messages, 1u);
}

TEST(Batching, DuplicateAddressesDeduplicate) {
  Env env;
  auto s = env.Make(SectionStructure::kFullyAssociative, 256, 32 * 256);
  // Three reads of the same element (the fused avg/min/max case).
  std::vector<std::pair<uint64_t, uint32_t>> accesses = {{0, 8}, {0, 8}, {0, 8}};
  s->AccessBatch(env.clk, accesses, false);
  EXPECT_EQ(s->stats().lines.misses, 1u);
  EXPECT_EQ(s->stats().lines.hits, 2u);
  EXPECT_EQ(s->stats().bytes_fetched, 256u);
}

TEST(Selective, TwoSidedPartialFetchMovesFewerBytes) {
  Env env;
  SectionConfig config;
  config.name = "partial";
  config.structure = SectionStructure::kFullyAssociative;
  config.line_bytes = 1024;
  config.size_bytes = 16 * 1024;
  config.comm = CommMethod::kTwoSided;
  config.transfer_fraction = 0.125;
  config.gather_fields = 2;
  auto s = MakeSection(config, &env.net);
  s->Access(env.clk, 0, 8, false);
  EXPECT_EQ(env.net.stats().bytes_in, 128u);  // 1024 × 0.125
  EXPECT_EQ(env.net.stats().two_sided_msgs, 1u);
}

// Regression: eviction pushes the victim slot onto the free list, but the
// caller reuses that slot immediately — the stale entry must not be handed
// out again while the slot holds a valid line (it once ping-ponged a single
// slot while the other 4 K sat idle).
TEST(FullyAssociative, EvictReuseDoesNotRecycleOneSlot) {
  Env env;
  auto s = env.Make(SectionStructure::kFullyAssociative, 256, 8 * 256);
  for (uint64_t i = 0; i < 8; ++i) {
    s->Access(env.clk, i * 256, 8, false);  // fill
  }
  // Three more lines: each eviction's slot is reused; the next insert must
  // pick a *different* victim, not the stale free-list entry.
  for (uint64_t i = 100; i < 103; ++i) {
    s->Access(env.clk, i * 256, 8, false);
  }
  const uint64_t hits_before = s->stats().lines.hits;
  for (uint64_t i = 100; i < 103; ++i) {
    s->Access(env.clk, i * 256, 8, false);
  }
  EXPECT_EQ(s->stats().lines.hits, hits_before + 3);  // all three survived
}

// Regression: in-flight prefetched lines must not be chosen as victims
// while consumed lines are available (soft pinning) — the approximate LRU
// once starved the prefetch stream at full capacity.
TEST(FullyAssociative, PrefetchedLinesSurviveUntilUse) {
  Env env;
  auto s = env.Make(SectionStructure::kFullyAssociative, 256, 16 * 256);
  // Fill with demand lines and consume them.
  for (uint64_t i = 0; i < 16; ++i) {
    s->Access(env.clk, i * 256, 8, false);
  }
  // Prefetch 4 fresh lines into the full cache...
  for (uint64_t i = 100; i < 104; ++i) {
    s->Prefetch(env.clk, i * 256, 256);
  }
  // ...then cause more demand churn.
  for (uint64_t i = 200; i < 208; ++i) {
    s->Access(env.clk, i * 256, 8, false);
  }
  // The prefetched lines were never victims: all 4 hit.
  env.clk.Advance(1'000'000);
  const uint64_t pf_hits_before = s->stats().prefetched_hits;
  for (uint64_t i = 100; i < 104; ++i) {
    s->Access(env.clk, i * 256, 8, false);
  }
  EXPECT_EQ(s->stats().prefetched_hits, pf_hits_before + 4);
  EXPECT_EQ(s->stats().soft_evictions, 0u);
}

// When *everything* evictable is an unconsumed prefetched line, eviction
// must still make progress (soft pins are a preference, not a deadlock).
TEST(FullyAssociative, AllSoftPinnedStillEvicts) {
  Env env;
  auto s = env.Make(SectionStructure::kFullyAssociative, 256, 4 * 256);
  for (uint64_t i = 0; i < 4; ++i) {
    s->Prefetch(env.clk, i * 256, 256);
  }
  s->Access(env.clk, 100 * 256, 8, false);  // needs a victim: must not abort
  EXPECT_EQ(s->stats().soft_evictions, 1u);
}

// ---------------- SectionManager & RemotePtr ----------------

TEST(RemotePtr, EncodeDecodeRoundTrip) {
  const RemotePtr p = RemotePtr::Encode(7, 0x123456789ABCULL);
  EXPECT_EQ(p.section(), 7u);
  EXPECT_EQ(p.offset(), 0x123456789ABCULL);
  EXPECT_FALSE(p.is_local());
}

TEST(RemotePtr, LocalPointersDecodeAsSectionZero) {
  const RemotePtr p = RemotePtr::Local(0x7fff12345678ULL);
  EXPECT_TRUE(p.is_local());
  EXPECT_EQ(p.offset(), 0x7fff12345678ULL);
}

TEST(SectionManager, ResolveRoutesRanges) {
  Env env;
  auto swap = std::make_unique<SwapSection>(1 << 20, &env.net,
                                            std::make_unique<NullPrefetcher>());
  SectionManager mgr(std::move(swap));
  SectionConfig config;
  config.line_bytes = 256;
  config.size_bytes = 4096;
  const uint16_t id = mgr.AddSection(MakeSection(config, &env.net));
  mgr.MapRange(0x10000, 0x1000, id);
  EXPECT_EQ(mgr.Resolve(0x10000).section_id, id);
  EXPECT_EQ(mgr.Resolve(0x10FFF).section_id, id);
  EXPECT_EQ(mgr.Resolve(0x11000).section_id, 0u);  // swap
  EXPECT_EQ(mgr.Resolve(0x0FFFF).section_id, 0u);
  mgr.UnmapRange(0x10000);
  EXPECT_EQ(mgr.Resolve(0x10000).section_id, 0u);
}

TEST(SectionManager, TotalLocalBytes) {
  Env env;
  auto swap = std::make_unique<SwapSection>(1 << 20, &env.net,
                                            std::make_unique<NullPrefetcher>());
  SectionManager mgr(std::move(swap));
  SectionConfig config;
  config.line_bytes = 256;
  config.size_bytes = 4096;
  mgr.AddSection(MakeSection(config, &env.net));
  EXPECT_EQ(mgr.TotalLocalBytes(), (1u << 20) + 4096u);
}

}  // namespace
}  // namespace mira::cache
