// The coalescing async data plane: the MSHR-style in-flight request table
// (join semantics, residual-latency charging, duplicate-verb suppression),
// the prefetch coalescer (adjacent pending lines → one scatter-gather
// verb), and the fault semantics of both (a tainted shared fetch must fail
// every joined waiter the same way; a faulted gather aborts every line it
// carried).

#include <gtest/gtest.h>

#include "src/cache/section.h"
#include "src/cache/swap_prefetcher.h"
#include "src/cache/swap_section.h"
#include "src/farmem/far_memory_node.h"
#include "src/integrity/integrity.h"
#include "src/net/fault_injector.h"
#include "src/net/inflight.h"
#include "src/net/transport.h"

namespace mira {
namespace {

struct Env {
  farmem::FarMemoryNode node;
  net::Transport net{&node, sim::CostModel::Default()};
  sim::SimClock clk;
};

std::unique_ptr<cache::Section> SmallSection(net::Transport* net, uint32_t lines = 8) {
  cache::SectionConfig config;
  config.name = "t";
  config.structure = cache::SectionStructure::kDirectMapped;
  config.line_bytes = 64;
  config.size_bytes = static_cast<uint64_t>(64) * lines;
  return cache::MakeSection(config, net);
}

// ---- InflightTable unit semantics ----

TEST(InflightTable, RegisterFindAndLazyExpiry) {
  net::InflightTable table;
  EXPECT_EQ(table.Find(0, 64, 0), nullptr);  // empty
  table.Register(0, 64, /*done_ns=*/1'000, net::Delivery{});
  const net::InflightTable::Entry* e = table.Find(0, 64, 500);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->done_ns, 1'000u);
  // Once the clock passes done_ns the data has landed: residency governs,
  // and the entry is reclaimed lazily.
  EXPECT_EQ(table.Find(0, 64, 1'000), nullptr);
  EXPECT_FALSE(table.maybe_live());
}

TEST(InflightTable, ContainedRangesJoinPartialOverlapsDoNot) {
  net::InflightTable table;
  table.Register(4'096, 4'096, 9'999, net::Delivery{});
  EXPECT_NE(table.Find(4'096, 64, 0), nullptr);   // prefix
  EXPECT_NE(table.Find(8'000, 128, 0), nullptr);  // suffix
  EXPECT_NE(table.Find(5'000, 8, 0), nullptr);    // interior
  EXPECT_NE(table.Find(8'128, 64, 0), nullptr);   // flush with the end
  EXPECT_EQ(table.Find(4'000, 128, 0), nullptr);  // straddles the front
  EXPECT_EQ(table.Find(8'160, 64, 0), nullptr);   // straddles the back
}

TEST(InflightTable, DropKillsEveryOverlappingEntry) {
  net::InflightTable table;
  table.Register(0, 64, 9'999, net::Delivery{});
  table.Register(64, 64, 9'999, net::Delivery{});
  table.Register(4'096, 64, 9'999, net::Delivery{});
  EXPECT_EQ(table.Drop(32, 64), 2u);  // clips both of the first two
  EXPECT_EQ(table.Find(0, 64, 0), nullptr);
  EXPECT_EQ(table.Find(64, 64, 0), nullptr);
  EXPECT_NE(table.Find(4'096, 64, 0), nullptr);  // untouched
}

TEST(InflightTable, SameStartAddressOverwritesInPlace) {
  net::InflightTable table;
  table.Register(0, 64, 1'000, net::Delivery{});
  table.Register(0, 64, 2'000, net::Delivery{});  // heal round re-issued
  const net::InflightTable::Entry* e = table.Find(0, 64, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->done_ns, 2'000u);  // latest fetch wins
  EXPECT_EQ(table.Drop(0, 64), 1u);  // exactly one live entry existed
}

TEST(InflightTable, OverflowEvictsExactlyOneLiveEntryAndKeepsTheNewest) {
  // Capacity is 64; registration #65 ring-evicts one live entry. Which one
  // dies is a policy detail — the contract is that eviction never loses
  // data, only a would-be joiner's shortcut (it re-fetches for real).
  net::InflightTable table;
  for (uint64_t i = 0; i < 65; ++i) {
    table.Register(i * 64, 64, 9'999, net::Delivery{});
  }
  EXPECT_NE(table.Find(64 * 64, 64, 0), nullptr);  // the newest always survives
  EXPECT_EQ(table.Drop(0, 65 * 64), 64u);          // exactly one entry was evicted
}

// ---- Transport join semantics ----

TEST(InflightTransport, JoinReturnsTheCompletionWithoutANewMessage) {
  Env e;
  const auto addr = e.node.AllocRange(4'096).take();
  const auto r = e.net.TryReadAsync(e.clk, addr, nullptr, 64);
  ASSERT_TRUE(r.ok());
  const uint64_t msgs = e.net.stats().messages;
  const uint64_t bytes = e.net.stats().bytes_in;
  const uint64_t joined_done = e.net.TryJoinRead(e.clk, addr, 64);
  EXPECT_EQ(joined_done, r.value());
  // A join is free on the wire: no message, no bytes, no link occupancy.
  EXPECT_EQ(e.net.stats().messages, msgs);
  EXPECT_EQ(e.net.stats().bytes_in, bytes);
  EXPECT_EQ(e.net.inflight_stats().registered, 1u);
  EXPECT_EQ(e.net.inflight_stats().joined, 1u);
  EXPECT_EQ(e.net.inflight_stats().joined_bytes, 64u);
}

TEST(InflightTransport, WritesInvalidateOverlappingInflightReads) {
  Env e;
  const auto addr = e.node.AllocRange(4'096).take();
  ASSERT_TRUE(e.net.TryReadAsync(e.clk, addr, nullptr, 64).ok());
  e.net.WriteSync(e.clk, addr, nullptr, 64);  // overwrites the pending range
  EXPECT_EQ(e.net.TryJoinRead(e.clk, addr, 64), 0u);
  EXPECT_EQ(e.net.inflight_stats().dropped, 1u);
}

TEST(InflightTransport, JoinExpiresOnceTheFetchLands) {
  Env e;
  const auto addr = e.node.AllocRange(4'096).take();
  const auto r = e.net.TryReadAsync(e.clk, addr, nullptr, 64);
  ASSERT_TRUE(r.ok());
  e.clk.AdvanceTo(r.value());
  // Landed: cache residency governs; a miss now means eviction, and the
  // correct model is a real re-fetch, not a free join.
  EXPECT_EQ(e.net.TryJoinRead(e.clk, addr, 64), 0u);
}

TEST(InflightTransport, JoinAdoptsTheEntriesDeliveryTaint) {
  // A silently corrupted async read registers its taint with the entry;
  // every joiner sees the same delivery the original issuer saw, so the
  // same integrity verdict applies to all waiters of the shared fetch.
  Env e;
  net::FaultPlan p;
  p.seed = 7;
  p.verb(net::Verb::kReadAsync).corrupt_probability = 1.0;
  net::FaultInjector inj(p);
  e.net.SetFaultInjector(&inj);
  const auto addr = e.node.AllocRange(4'096).take();
  ASSERT_TRUE(e.net.TryReadAsync(e.clk, addr, nullptr, 64).ok());
  ASSERT_TRUE(e.net.last_delivery().corrupt);
  ASSERT_NE(e.net.TryJoinRead(e.clk, addr, 64), 0u);
  EXPECT_TRUE(e.net.last_delivery().corrupt);
  // A tainted joiner kills the shared entry; later requesters re-fetch.
  e.net.DropInflight(addr, 64);
  EXPECT_EQ(e.net.TryJoinRead(e.clk, addr, 64), 0u);
}

// ---- Section-level MSHR joins ----

TEST(InflightSection, DemandMissJoinsASoftEvictedPrefetchStillInFlight) {
  Env e;
  auto section = SmallSection(&e.net);
  // Prefetch line 0, then prefetch line 8 (same direct-mapped slot): the
  // conflict soft-evicts line 0 while its fetch is still on the wire.
  section->Prefetch(e.clk, 0, 8);
  section->Prefetch(e.clk, 64 * 8, 8);
  EXPECT_EQ(section->stats().soft_evictions, 1u);
  const uint64_t msgs = e.net.stats().messages;
  // Demand access to line 0: the frame is gone but the fetch is not — the
  // miss joins the in-flight read for the residual latency instead of
  // issuing a duplicate verb.
  section->Access(e.clk, 0, 8, /*write=*/false);
  EXPECT_EQ(section->stats().inflight_joins, 1u);
  EXPECT_EQ(e.net.stats().messages, msgs);  // no third fetch
  EXPECT_EQ(e.net.inflight_stats().joined, 1u);
  EXPECT_GT(section->stats().inflight_join_ns, 0u);
}

TEST(InflightSection, SectionsSharingATransportDedupeConcurrentFetches) {
  // Two sections over one transport (one evaluation world): a demand miss
  // in B for a range A is already fetching joins A's verb.
  Env e;
  auto a = SmallSection(&e.net);
  auto b = SmallSection(&e.net);
  a->Prefetch(e.clk, 0, 8);
  const uint64_t msgs = e.net.stats().messages;
  b->Access(e.clk, 0, 8, /*write=*/false);
  EXPECT_EQ(b->stats().inflight_joins, 1u);
  EXPECT_EQ(e.net.stats().messages, msgs);
}

// ---- Prefetch coalescing ----

TEST(CoalescePrefetch, MultiLinePrefetchRidesOneGatherVerb) {
  Env e;
  auto section = SmallSection(&e.net);
  section->Prefetch(e.clk, 0, 4 * 64);
  EXPECT_EQ(e.net.stats().messages, 1u);  // one doorbell for four lines
  EXPECT_EQ(e.net.stats().sg_segments, 4u);
  EXPECT_EQ(section->stats().coalesced_fetches, 1u);
  EXPECT_EQ(section->stats().coalesced_lines, 4u);
  EXPECT_EQ(section->stats().prefetches_issued, 4u);
  EXPECT_EQ(section->stats().bytes_fetched, 4u * 64);
  // All four land with the gather and hit on first use.
  for (uint64_t i = 0; i < 4; ++i) {
    section->Access(e.clk, i * 64, 8, /*write=*/false);
  }
  EXPECT_EQ(section->stats().lines.hits, 4u);
  EXPECT_EQ(section->stats().prefetched_hits, 4u);
}

TEST(CoalescePrefetch, SegmentsLandInOrderSoTheFirstLineIsNotDelayed) {
  // A gather's bytes arrive in segment order: joining the first segment
  // charges less residual wait than joining the last, and the last
  // segment's completion is the message completion. Coalescing must never
  // make the burst's first line *later* than its own solo fetch would be.
  Env e;
  std::vector<net::Segment> segs;
  for (uint64_t i = 0; i < 4; ++i) {
    segs.push_back(net::Segment{i * 4096, nullptr, 4096});
  }
  std::vector<uint64_t> seg_done;
  const uint64_t done = e.net.ReadGatherAsync(e.clk, segs, &seg_done);
  ASSERT_EQ(seg_done.size(), 4u);
  EXPECT_LT(seg_done[0], seg_done[3]);
  EXPECT_EQ(seg_done[3], done);
  for (size_t i = 1; i < seg_done.size(); ++i) {
    EXPECT_GE(seg_done[i], seg_done[i - 1]);
  }
  // The in-flight table carries the per-segment completions, so a demand
  // join on the first line pays only that segment's residual latency.
  EXPECT_EQ(e.net.TryJoinRead(e.clk, 0, 4096), seg_done[0]);
  EXPECT_EQ(e.net.TryJoinRead(e.clk, 3 * 4096, 4096), seg_done[3]);
}

TEST(CoalescePrefetch, SingleLinePrefetchKeepsTheHistoricalAsyncVerb) {
  Env e;
  auto section = SmallSection(&e.net);
  section->Prefetch(e.clk, 0, 8);
  EXPECT_EQ(e.net.stats().messages, 1u);
  EXPECT_EQ(e.net.stats().sg_segments, 0u);  // plain async read, no gather
  EXPECT_EQ(section->stats().coalesced_fetches, 0u);
  EXPECT_EQ(section->stats().prefetches_issued, 1u);
}

TEST(CoalesceSwap, LeapWindowRidesOneGatherVerb) {
  Env e;
  cache::SwapSection swap(256 << 10, &e.net, std::make_unique<cache::LeapPrefetcher>());
  // A sequential scan settles Leap on stride 1 with its 2-page starting
  // window; every multi-page prefetch burst must coalesce into a single
  // scatter-gather verb.
  for (uint64_t addr = 0; addr < (256 << 10); addr += 4'096) {
    swap.Access(e.clk, addr, 8, /*write=*/false);
  }
  EXPECT_GT(swap.stats().coalesced_fetches, 0u);
  EXPECT_GE(swap.stats().coalesced_lines, 2 * swap.stats().coalesced_fetches);
  EXPECT_GT(swap.stats().prefetched_hits, 0u);
  EXPECT_GT(e.net.stats().sg_segments, 0u);
}

// ---- Fault semantics of shared fetches ----

TEST(InflightFaults, TaintedPrefetchNeverLeavesAJoinableEntry) {
  // Silent corruption on every async read, integrity attached: the
  // prefetch verifies its own delivery, sees the taint, discards the copy,
  // AND kills its in-flight entry — so no demand miss can join the bad
  // fetch. The later demand access runs the verified ladder and heals.
  Env e;
  integrity::IntegrityManager integ(&e.node);
  e.net.SetIntegrity(&integ);
  net::FaultPlan p;
  p.seed = 11;
  p.verb(net::Verb::kReadAsync).corrupt_probability = 1.0;
  net::FaultInjector inj(p);
  e.net.SetFaultInjector(&inj);
  auto section = SmallSection(&e.net);
  section->Prefetch(e.clk, 0, 8);
  EXPECT_EQ(section->stats().prefetch_aborted, 1u);
  EXPECT_GE(e.net.inflight_stats().dropped, 1u);
  EXPECT_EQ(e.net.TryJoinRead(e.clk, 0, 64), 0u);  // entry died with the taint
  section->Access(e.clk, 0, 8, /*write=*/false);
  EXPECT_EQ(section->stats().lines.misses, 1u);
  integ.FinalAudit(e.clk);
  EXPECT_EQ(integ.stats().healed, integ.stats().detected);
  EXPECT_TRUE(integ.fatal().ok());
}

TEST(CoalesceFaults, DroppedGatherAbortsEveryLineItCarried) {
  // The coalesced verb is one message: if it faults out, every joined line
  // fails the same way — all abort, none half-arrive.
  Env e;
  net::FaultPlan p;
  p.seed = 5;
  p.verb(net::Verb::kReadGather).drop_probability = 1.0;
  net::FaultInjector inj(p);
  e.net.SetFaultInjector(&inj);
  auto section = SmallSection(&e.net);
  section->Prefetch(e.clk, 0, 4 * 64);
  EXPECT_EQ(section->stats().prefetch_aborted, 4u);
  EXPECT_EQ(section->stats().prefetches_issued, 0u);
  EXPECT_EQ(section->resident_lines(), 0u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(e.net.TryJoinRead(e.clk, i * 64, 64), 0u);  // nothing joinable
  }
  // Each line downgrades to a clean demand fetch.
  for (uint64_t i = 0; i < 4; ++i) {
    section->Access(e.clk, i * 64, 8, /*write=*/false);
  }
  EXPECT_EQ(section->stats().lines.misses, 4u);
  EXPECT_EQ(section->resident_lines(), 4u);
}

TEST(CoalesceFaults, CorruptGatherDiscardsOnlyTheTaintedLine) {
  // One delivery per message: the first segment carries the wire taint and
  // is discarded; the other lines of the same gather stand. The discarded
  // line's inflight entry dies so nothing joins it.
  Env e;
  integrity::IntegrityManager integ(&e.node);
  e.net.SetIntegrity(&integ);
  net::FaultPlan p;
  p.seed = 3;
  p.verb(net::Verb::kReadGather).corrupt_probability = 1.0;
  net::FaultInjector inj(p);
  e.net.SetFaultInjector(&inj);
  auto section = SmallSection(&e.net);
  section->Prefetch(e.clk, 0, 4 * 64);
  EXPECT_EQ(section->stats().coalesced_fetches, 1u);
  EXPECT_EQ(section->stats().prefetch_aborted, 1u);   // the tainted first line
  EXPECT_EQ(section->stats().prefetches_issued, 3u);  // the rest stand
  EXPECT_EQ(section->resident_lines(), 3u);
  section->Access(e.clk, 0, 8, /*write=*/false);  // heals via the ladder
  integ.FinalAudit(e.clk);
  EXPECT_EQ(integ.stats().healed, integ.stats().detected);
  EXPECT_TRUE(integ.fatal().ok());
}

}  // namespace
}  // namespace mira
