// Static analyses: pointer binding, access-pattern classification (scalar
// evolution), lifetime, offload cost.

#include <gtest/gtest.h>

#include "src/analysis/access_analysis.h"
#include "src/analysis/lifetime.h"
#include "src/analysis/offload_cost.h"
#include "src/ir/builder.h"

namespace mira::analysis {
namespace {

using ir::FunctionBuilder;
using ir::Local;
using ir::Module;
using ir::Type;
using ir::Value;

// A module with one function per pattern the classifier must recognize.
std::unique_ptr<Module> PatternZoo() {
  auto m = std::make_unique<Module>();
  {
    // sequential: a[i]
    FunctionBuilder f(m.get(), "seq", {Type::kPtr, Type::kI64}, Type::kI64);
    const Local acc = f.DeclLocal(Type::kI64);
    f.StoreLocal(acc, f.ConstI(0));
    f.For(f.ConstI(0), f.Arg(1), f.ConstI(1), [&](Value i) {
      f.StoreLocal(acc, f.Add(f.LoadLocal(acc),
                              f.Load(f.Index(f.Arg(0), i, 8, 0), 8, Type::kI64)));
    });
    f.Return(f.LoadLocal(acc));
  }
  {
    // strided: a[4*i]
    FunctionBuilder f(m.get(), "strided", {Type::kPtr, Type::kI64});
    f.For(f.ConstI(0), f.Arg(1), f.ConstI(1), [&](Value i) {
      f.Load(f.Index(f.Arg(0), f.Mul(i, f.ConstI(4)), 8, 0), 8, Type::kI64);
    });
    f.Return();
  }
  {
    // indirect: b[a[i]]
    FunctionBuilder f(m.get(), "indirect", {Type::kPtr, Type::kPtr, Type::kI64});
    f.For(f.ConstI(0), f.Arg(2), f.ConstI(1), [&](Value i) {
      const Value idx = f.Load(f.Index(f.Arg(0), i, 8, 0), 8, Type::kI64);
      f.Load(f.Index(f.Arg(1), idx, 64, 0), 8, Type::kI64);
    });
    f.Return();
  }
  {
    // unknown: a[cursor] with a local-driven cursor
    FunctionBuilder f(m.get(), "cursor", {Type::kPtr, Type::kI64});
    const Local cur = f.DeclLocal(Type::kI64);
    f.StoreLocal(cur, f.ConstI(0));
    f.For(f.ConstI(0), f.Arg(1), f.ConstI(1), [&](Value) {
      const Value c = f.LoadLocal(cur);
      const Value v = f.Load(f.Index(f.Arg(0), c, 8, 0), 8, Type::kI64);
      f.StoreLocal(cur, v);
    });
    f.Return();
  }
  {
    // main allocates and calls everything (binds params to objects).
    FunctionBuilder f(m.get(), "main", {}, Type::kVoid);
    const Value a = f.Alloc(f.ConstI(8192), "arr_a", 8);
    const Value b = f.Alloc(f.ConstI(65536), "arr_b", 64);
    const Value n = f.ConstI(512);
    f.Call("seq", {a, n});
    f.Call("strided", {a, f.ConstI(128)});
    f.Call("indirect", {a, b, n});
    f.Call("cursor", {a, n});
    f.Return();
  }
  return m;
}

AccessPattern PatternIn(const AccessAnalysis& analysis, const std::string& func,
                        const std::string& object) {
  for (const auto& a : analysis.ForFunction(func).accesses) {
    if (a.objects.count(object) > 0 && !a.is_store) {
      return a.pattern;
    }
  }
  return AccessPattern::kUnknown;
}

TEST(AccessAnalysis, BindsParamsToAllocationSites) {
  auto m = PatternZoo();
  AccessAnalysis analysis(m.get());
  analysis.Run();
  EXPECT_TRUE(analysis.ForFunction("seq").touched_objects.count("arr_a"));
  EXPECT_TRUE(analysis.ForFunction("indirect").touched_objects.count("arr_b"));
  EXPECT_FALSE(analysis.ForFunction("seq").touched_objects.count("arr_b"));
}

TEST(AccessAnalysis, ClassifiesSequential) {
  auto m = PatternZoo();
  AccessAnalysis analysis(m.get());
  analysis.Run();
  EXPECT_EQ(PatternIn(analysis, "seq", "arr_a"), AccessPattern::kSequential);
}

TEST(AccessAnalysis, ClassifiesStrided) {
  auto m = PatternZoo();
  AccessAnalysis analysis(m.get());
  analysis.Run();
  EXPECT_EQ(PatternIn(analysis, "strided", "arr_a"), AccessPattern::kStrided);
}

TEST(AccessAnalysis, ClassifiesIndirectWithSource) {
  auto m = PatternZoo();
  AccessAnalysis analysis(m.get());
  analysis.Run();
  EXPECT_EQ(PatternIn(analysis, "indirect", "arr_b"), AccessPattern::kIndirect);
  for (const auto& a : analysis.ForFunction("indirect").accesses) {
    if (a.objects.count("arr_b") > 0) {
      EXPECT_TRUE(a.index_source_objects.count("arr_a"));
    }
  }
}

TEST(AccessAnalysis, ClassifiesLocalCursorAsUnknown) {
  auto m = PatternZoo();
  AccessAnalysis analysis(m.get());
  analysis.Run();
  EXPECT_EQ(PatternIn(analysis, "cursor", "arr_a"), AccessPattern::kUnknown);
}

TEST(AccessAnalysis, StrideBytesComputed) {
  auto m = PatternZoo();
  AccessAnalysis analysis(m.get());
  analysis.Run();
  for (const auto& a : analysis.ForFunction("strided").accesses) {
    if (a.pattern == AccessPattern::kStrided) {
      EXPECT_EQ(a.stride_bytes, 32);  // 4 elems × 8 B
    }
  }
  for (const auto& a : analysis.ForFunction("seq").accesses) {
    if (a.pattern == AccessPattern::kSequential) {
      EXPECT_EQ(a.stride_bytes, 8);
    }
  }
}

TEST(AccessAnalysis, SummarizeAggregatesHardestPattern) {
  auto m = PatternZoo();
  AccessAnalysis analysis(m.get());
  analysis.Run();
  // arr_a is sequential in seq, strided in strided, unknown in cursor and
  // the index source in indirect; hardest analyzable = strided.
  const ObjectBehavior all = analysis.Summarize("arr_a", {});
  EXPECT_TRUE(all.has_reads);
  // Restricted to `seq` only: sequential.
  const ObjectBehavior seq_only = analysis.Summarize("arr_a", {"seq", "main"});
  EXPECT_EQ(seq_only.pattern, AccessPattern::kSequential);
}

TEST(AccessAnalysis, FieldCoverageForSelectiveTransmission) {
  auto m = std::make_unique<Module>();
  FunctionBuilder f(m.get(), "main", {}, Type::kVoid);
  const Value rows = f.Alloc(f.ConstI(128 * 100), "rows", 128);
  f.For(f.ConstI(0), f.ConstI(100), f.ConstI(1), [&](Value i) {
    f.Load(f.Index(rows, i, 128, 0), 8, Type::kI64);
    f.Load(f.Index(rows, i, 128, 24), 8, Type::kI64);
  });
  f.Return();
  AccessAnalysis analysis(m.get());
  analysis.Run();
  const ObjectBehavior b = analysis.Summarize("rows", {});
  EXPECT_EQ(b.elem_bytes, 128u);
  EXPECT_EQ(b.fields.size(), 2u);
  EXPECT_NEAR(b.AccessedFraction(), 16.0 / 128.0, 1e-9);
}

TEST(Lifetime, IntervalsFollowStatementOrder) {
  auto m = std::make_unique<Module>();
  {
    FunctionBuilder f(m.get(), "use", {Type::kPtr, Type::kI64});
    f.For(f.ConstI(0), f.Arg(1), f.ConstI(1),
          [&](Value i) { f.Load(f.Index(f.Arg(0), i, 8, 0), 8, Type::kI64); });
    f.Return();
  }
  FunctionBuilder f(m.get(), "main", {}, Type::kVoid);
  const Value a = f.Alloc(f.ConstI(1024), "early", 8);  // stmt 1 (const first)
  const Value b = f.Alloc(f.ConstI(1024), "late", 8);
  const Value n = f.ConstI(128);
  f.Call("use", {a, n});
  f.Call("use", {b, n});
  f.Call("use", {b, n});
  f.Return();
  AccessAnalysis analysis(m.get());
  analysis.Run();
  LifetimeAnalysis lifetime(m.get(), &analysis);
  lifetime.Run("main");
  const auto& lts = lifetime.lifetimes();
  ASSERT_TRUE(lts.count("early"));
  ASSERT_TRUE(lts.count("late"));
  EXPECT_LT(lts.at("early").last_stmt, lts.at("late").last_stmt);
  EXPECT_TRUE(lts.at("early").read_only);
  // Live sets: at "early"'s last statement both are... early ends before
  // late's final use.
  const auto live_at_end = lifetime.LiveAt(lts.at("late").last_stmt);
  EXPECT_TRUE(live_at_end.count("late"));
  EXPECT_FALSE(live_at_end.count("early"));
}

TEST(Lifetime, WritesDisableReadOnly) {
  auto m = std::make_unique<Module>();
  FunctionBuilder f(m.get(), "main", {}, Type::kVoid);
  const Value a = f.Alloc(f.ConstI(1024), "written", 8);
  f.Store(f.Index(a, f.ConstI(0), 8, 0), f.ConstI(1), 8);
  f.Return();
  AccessAnalysis analysis(m.get());
  analysis.Run();
  LifetimeAnalysis lifetime(m.get(), &analysis);
  lifetime.Run("main");
  EXPECT_FALSE(lifetime.lifetimes().at("written").read_only);
}

TEST(OffloadCost, LeafFunctionsAreCandidates) {
  auto m = PatternZoo();
  AccessAnalysis analysis(m.get());
  analysis.Run();
  OffloadCostAnalysis offload(m.get(), &analysis, sim::CostModel::Default());
  offload.Run({});
  EXPECT_TRUE(offload.estimates().at("seq").candidate);
  EXPECT_FALSE(offload.estimates().at("main").candidate);  // calls + allocs
}

TEST(OffloadCost, HighTrafficFavorsOffload) {
  auto m = PatternZoo();
  AccessAnalysis analysis(m.get());
  analysis.Run();
  OffloadCostAnalysis cheap(m.get(), &analysis, sim::CostModel::Default());
  cheap.Run({{"seq", 100}});  // almost no traffic
  OffloadCostAnalysis heavy(m.get(), &analysis, sim::CostModel::Default());
  heavy.Run({{"seq", 100 << 20}});  // 100 MiB of traffic if run locally
  EXPECT_GT(heavy.estimates().at("seq").benefit_ns, cheap.estimates().at("seq").benefit_ns);
  EXPECT_GT(heavy.estimates().at("seq").benefit_ns, 0);
}

}  // namespace
}  // namespace mira::analysis
