// The section-sizing ILP: correctness against brute force, pruning,
// infeasibility, and the lifetime-phase constraint structure.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/solver/ilp.h"
#include "src/support/rng.h"

namespace mira::solver {
namespace {

// Brute-force reference.
struct Brute {
  bool feasible = false;
  double cost = std::numeric_limits<double>::infinity();
};

Brute BruteForce(const std::vector<SectionChoices>& sections,
                 const std::vector<CapacityConstraint>& constraints) {
  Brute best;
  std::vector<int> choice(sections.size(), 0);
  while (true) {
    bool ok = true;
    for (const auto& c : constraints) {
      uint64_t used = 0;
      for (const int m : c.members) {
        used += sections[static_cast<size_t>(m)]
                    .sizes[static_cast<size_t>(choice[static_cast<size_t>(m)])];
      }
      if (used > c.capacity) {
        ok = false;
        break;
      }
    }
    if (ok) {
      double cost = 0;
      for (size_t i = 0; i < sections.size(); ++i) {
        cost += sections[i].costs[static_cast<size_t>(choice[i])];
      }
      if (cost < best.cost) {
        best.cost = cost;
        best.feasible = true;
      }
    }
    // Odometer increment.
    size_t k = 0;
    while (k < sections.size()) {
      if (++choice[k] < static_cast<int>(sections[k].sizes.size())) {
        break;
      }
      choice[k] = 0;
      ++k;
    }
    if (k == sections.size()) {
      break;
    }
  }
  return best;
}

TEST(Ilp, EmptyProblemIsFeasible) {
  const auto solution = SolveSectionSizing({}, {});
  EXPECT_TRUE(solution.feasible);
  EXPECT_EQ(solution.total_cost, 0.0);
}

TEST(Ilp, PicksCheapestWhenUnconstrained) {
  std::vector<SectionChoices> sections(2);
  sections[0] = {{100, 200, 300}, {30.0, 20.0, 10.0}};
  sections[1] = {{100, 200}, {5.0, 50.0}};
  const auto solution = SolveSectionSizing(sections, {});
  ASSERT_TRUE(solution.feasible);
  EXPECT_EQ(solution.choice[0], 2);
  EXPECT_EQ(solution.choice[1], 0);
  EXPECT_DOUBLE_EQ(solution.total_cost, 15.0);
}

TEST(Ilp, CapacityForcesTradeoff) {
  // Both sections want their big size but only one fits.
  std::vector<SectionChoices> sections(2);
  sections[0] = {{100, 500}, {100.0, 10.0}};
  sections[1] = {{100, 500}, {80.0, 5.0}};
  CapacityConstraint c;
  c.members = {0, 1};
  c.capacity = 600;
  const auto solution = SolveSectionSizing(sections, {c});
  ASSERT_TRUE(solution.feasible);
  // Best: give section 1 the big size (saves 75) over section 0 (saves 90)?
  // 0 big + 1 small: 10+80=90. 0 small + 1 big: 100+5=105. → pick first.
  EXPECT_DOUBLE_EQ(solution.total_cost, 90.0);
  EXPECT_EQ(solution.choice[0], 1);
  EXPECT_EQ(solution.choice[1], 0);
}

TEST(Ilp, InfeasibleWhenNothingFits) {
  std::vector<SectionChoices> sections(2);
  sections[0] = {{500}, {1.0}};
  sections[1] = {{600}, {1.0}};
  CapacityConstraint c;
  c.members = {0, 1};
  c.capacity = 1000;
  const auto solution = SolveSectionSizing(sections, {c});
  EXPECT_FALSE(solution.feasible);
}

TEST(Ilp, NonOverlappingLifetimesRelaxCapacity) {
  // Two sections never live simultaneously (separate phase constraints):
  // both can take the full budget.
  std::vector<SectionChoices> sections(2);
  sections[0] = {{100, 1000}, {50.0, 1.0}};
  sections[1] = {{100, 1000}, {50.0, 1.0}};
  CapacityConstraint phase1{{0}, 1000};
  CapacityConstraint phase2{{1}, 1000};
  const auto relaxed = SolveSectionSizing(sections, {phase1, phase2});
  ASSERT_TRUE(relaxed.feasible);
  EXPECT_DOUBLE_EQ(relaxed.total_cost, 2.0);
  // With overlapping lifetimes they must share.
  CapacityConstraint joint{{0, 1}, 1000};
  const auto tight = SolveSectionSizing(sections, {joint});
  ASSERT_TRUE(tight.feasible);
  EXPECT_GT(tight.total_cost, 2.0);
}

TEST(Ilp, MatchesBruteForceOnRandomInstances) {
  support::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 2 + rng.NextBelow(4);  // 2..5 sections
    std::vector<SectionChoices> sections(n);
    for (auto& s : sections) {
      const size_t k = 2 + rng.NextBelow(4);
      for (size_t j = 0; j < k; ++j) {
        s.sizes.push_back(50 + rng.NextBelow(500));
        s.costs.push_back(static_cast<double>(rng.NextBelow(1000)));
      }
    }
    std::vector<CapacityConstraint> constraints;
    const size_t nc = 1 + rng.NextBelow(3);
    for (size_t c = 0; c < nc; ++c) {
      CapacityConstraint constraint;
      for (size_t i = 0; i < n; ++i) {
        if (rng.NextBelow(2) == 0) {
          constraint.members.push_back(static_cast<int>(i));
        }
      }
      if (constraint.members.empty()) {
        constraint.members.push_back(0);
      }
      constraint.capacity = 200 + rng.NextBelow(1500);
      constraints.push_back(constraint);
    }
    const auto solution = SolveSectionSizing(sections, constraints);
    const Brute brute = BruteForce(sections, constraints);
    ASSERT_EQ(solution.feasible, brute.feasible) << "trial " << trial;
    if (brute.feasible) {
      EXPECT_NEAR(solution.total_cost, brute.cost, 1e-9) << "trial " << trial;
    }
  }
}

TEST(Ilp, SolutionSatisfiesConstraints) {
  support::Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<SectionChoices> sections(3);
    for (auto& s : sections) {
      for (int j = 0; j < 4; ++j) {
        s.sizes.push_back(100 + rng.NextBelow(400));
        s.costs.push_back(static_cast<double>(rng.NextBelow(100)));
      }
    }
    CapacityConstraint c{{0, 1, 2}, 900};
    const auto solution = SolveSectionSizing(sections, {c});
    if (!solution.feasible) {
      continue;
    }
    uint64_t used = 0;
    for (int i = 0; i < 3; ++i) {
      used += sections[static_cast<size_t>(i)]
                  .sizes[static_cast<size_t>(solution.choice[static_cast<size_t>(i)])];
    }
    EXPECT_LE(used, 900u);
  }
}

TEST(Ilp, BestFirstPrunes) {
  // A big instance the exhaustive search would visit 8^8 nodes for.
  std::vector<SectionChoices> sections(8);
  for (size_t i = 0; i < sections.size(); ++i) {
    for (uint64_t j = 1; j <= 8; ++j) {
      sections[i].sizes.push_back(j * 100);
      sections[i].costs.push_back(static_cast<double>(900 - j * 100));
    }
  }
  CapacityConstraint c;
  for (int i = 0; i < 8; ++i) {
    c.members.push_back(i);
  }
  c.capacity = 8 * 800;  // everything fits → min cost reachable directly
  const auto solution = SolveSectionSizing(sections, {c});
  ASSERT_TRUE(solution.feasible);
  EXPECT_DOUBLE_EQ(solution.total_cost, 8 * 100.0);
  EXPECT_LT(solution.nodes_explored, 100'000u);
}

}  // namespace
}  // namespace mira::solver
