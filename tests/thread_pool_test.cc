// Unit tests for the host-side parallel evaluation pool (DESIGN.md §9):
// futures and exception propagation, deterministic lowest-index rethrow
// from ParallelFor, destructor draining, and nested fan-out.

#include "src/support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace mira::support {
namespace {

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ZeroWorkersRunsEverythingInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  auto f = pool.Submit([&] { ran_on = std::this_thread::get_id(); });
  f.get();
  EXPECT_EQ(ran_on, caller);

  std::vector<int> hits(64, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i] = 1; });
  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, SubmitFuturePropagatesException) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(3);
  // Several indices throw; regardless of which host thread hits one first,
  // the call must rethrow the lowest index's exception — and every
  // non-throwing index still runs (no cancellation).
  std::atomic<int> ran{0};
  std::string caught;
  try {
    pool.ParallelFor(16, [&](size_t i) {
      if (i == 2 || i == 5 || i == 11) {
        throw std::runtime_error(std::to_string(i));
      }
      ran.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to throw";
  } catch (const std::runtime_error& e) {
    caught = e.what();
  }
  EXPECT_EQ(caught, "2");
  EXPECT_EQ(ran.load(), 13);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
    }
    // Destructor runs here: every queued task must complete first.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // The caller participates in ParallelFor, so an outer task fanning out on
  // the same (small) pool always makes progress even with every worker busy.
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { leaf.fetch_add(1); });
  });
  EXPECT_EQ(leaf.load(), 32);
}

TEST(ThreadPool, FireAndForgetSubmitFromInsideTask) {
  std::atomic<int> inner{0};
  {
    ThreadPool pool(2);
    auto outer = pool.Submit([&] {
      for (int i = 0; i < 8; ++i) {
        pool.Submit([&inner] { inner.fetch_add(1); });
      }
    });
    outer.get();
    // The nested submissions drain in the destructor.
  }
  EXPECT_EQ(inner.load(), 8);
}

TEST(ThreadPool, DefaultParallelismClampsAndResolves) {
  SetDefaultParallelism(3);
  EXPECT_EQ(DefaultParallelism(), 3);
  SetDefaultParallelism(1);
  EXPECT_EQ(DefaultParallelism(), 1);
  SetDefaultParallelism(-5);  // clamped to auto
  EXPECT_GE(DefaultParallelism(), 1);
  SetDefaultParallelism(0);  // auto: hardware concurrency, at least 1
  EXPECT_GE(DefaultParallelism(), 1);
}

}  // namespace
}  // namespace mira::support
