#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/sim/clock.h"
#include "src/telemetry/telemetry.h"

namespace mira::telemetry {
namespace {

// Minimal structural JSON check: every brace/bracket outside string
// literals balances, and escapes inside strings are well-formed. Enough to
// catch the classes of emitter bugs (truncated output, stray commas in
// keys, unescaped quotes) without a JSON library.
bool JsonBalanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= s.size()) {
          return false;
        }
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') {
          return false;
        }
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') {
          return false;
        }
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(MetricsRegistry, GetOrCreateReturnsStablePointers) {
  MetricsRegistry m;
  uint64_t* c = m.Counter("cache.test.misses");
  EXPECT_EQ(*c, 0u);
  *c += 3;
  // Registering more metrics must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    m.Counter("net.pad." + std::to_string(i));
  }
  EXPECT_EQ(m.Counter("cache.test.misses"), c);
  EXPECT_EQ(*m.FindCounter("cache.test.misses"), 3u);
}

TEST(MetricsRegistry, FindWithoutCreate) {
  MetricsRegistry m;
  EXPECT_EQ(m.FindCounter("absent"), nullptr);
  EXPECT_EQ(m.FindGauge("absent"), nullptr);
  EXPECT_EQ(m.FindHistogram("absent"), nullptr);
  EXPECT_EQ(m.size(), 0u);  // Find never registers
  m.SetGauge("test.g", 0.5);
  EXPECT_NE(m.FindGauge("test.g"), nullptr);
  EXPECT_DOUBLE_EQ(*m.FindGauge("test.g"), 0.5);
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  MetricsRegistry m;
  uint64_t* c = m.Counter("test.c");
  double* g = m.Gauge("test.g");
  m.RecordLatency("test.latency_ns", 1000);
  *c = 7;
  *g = 1.5;
  m.ResetValues();
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(*c, 0u);  // outstanding pointers still valid, zeroed
  EXPECT_DOUBLE_EQ(*g, 0.0);
  EXPECT_EQ(m.FindHistogram("test.latency_ns")->count(), 0u);
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
}

TEST(MetricsRegistry, ValidMetricNameEnforcesConvention) {
  // Dotted lowercase segments.
  EXPECT_TRUE(ValidMetricName("cache.section.hot.misses"));
  EXPECT_TRUE(ValidMetricName("net.retry.backoff_ns"));
  EXPECT_TRUE(ValidMetricName("a.b"));
  EXPECT_TRUE(ValidMetricName("interp.func.f_0.calls"));
  // Rejected: no dot, empty segments, uppercase, stray characters,
  // leading/trailing underscores in a segment.
  EXPECT_FALSE(ValidMetricName("counter"));
  EXPECT_FALSE(ValidMetricName(""));
  EXPECT_FALSE(ValidMetricName(".leading"));
  EXPECT_FALSE(ValidMetricName("trailing."));
  EXPECT_FALSE(ValidMetricName("a..b"));
  EXPECT_FALSE(ValidMetricName("a.B.c"));
  EXPECT_FALSE(ValidMetricName("a.b-c"));
  EXPECT_FALSE(ValidMetricName("a._x"));
  EXPECT_FALSE(ValidMetricName("a.x_"));
  // Histograms additionally spell their unit.
  EXPECT_TRUE(ValidMetricName("net.read.latency_ns", /*histogram=*/true));
  EXPECT_FALSE(ValidMetricName("net.read.latency", /*histogram=*/true));
  EXPECT_FALSE(ValidMetricName("net.read.latency_ms", /*histogram=*/true));
}

TEST(MetricsRegistry, JsonOutputBalancedAndComplete) {
  MetricsRegistry m;
  m.SetCounter("cache.section.s0.misses", 42);
  m.SetGauge("cache.section.s0.miss_rate", 0.25);
  m.RecordLatency("net.read.sync.latency_ns", 900);
  m.RecordLatency("net.read.sync.latency_ns", 1800);
  const std::string json = m.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"cache.section.s0.misses\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"net.read.sync.latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);

  const std::string table = m.ToTable();
  EXPECT_NE(table.find("cache.section.s0.misses"), std::string::npos);
  EXPECT_NE(table.find("net.read.sync.latency_ns"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder t;
  sim::SimClock clk(0, 1);
  t.Begin(clk, "f", "interp");
  t.End(clk);
  t.Instant(clk, "i", "cache");
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TraceRecorder, BalancedBeginEndPerThread) {
  TraceRecorder t;
  t.Enable(true);
  sim::SimClock a(0, 1);
  sim::SimClock b(0, 2);
  t.Begin(a, "outer", "interp");
  a.Advance(10);
  t.Begin(a, "inner", "interp");
  t.Begin(b, "other", "interp");
  a.Advance(5);
  t.End(a);  // closes inner
  b.Advance(3);
  t.End(b);  // closes other (thread 2's own stack)
  a.Advance(5);
  t.End(a);  // closes outer

  std::map<uint32_t, int> depth;
  std::map<uint32_t, uint64_t> last_ts;
  for (const auto& e : t.events()) {
    // Timestamps are non-decreasing per logical thread.
    auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) {
      EXPECT_GE(e.ts_ns, it->second);
    }
    last_ts[e.tid] = e.ts_ns;
    if (e.phase == 'B') {
      ++depth[e.tid];
    } else if (e.phase == 'E') {
      EXPECT_GT(depth[e.tid], 0);  // never an E without an open B
      --depth[e.tid];
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced B/E on tid " << tid;
  }
  // End restates the matched Begin's name: inner closes before outer.
  ASSERT_EQ(t.events().size(), 6u);
  EXPECT_EQ(t.events()[3].name, "inner");
  EXPECT_EQ(t.events()[5].name, "outer");
}

TEST(TraceRecorder, JsonParsesAndCarriesEventForms) {
  TraceRecorder t;
  t.Enable(true);
  sim::SimClock clk(1000, 7);
  t.Begin(clk, "span", "interp");
  clk.Advance(500);
  t.End(clk);
  t.Complete(clk, 2000, 250, "fetch", "net", "{\"bytes\":64}");
  t.Instant(clk, "mark", "pipeline", "{\"iteration\":1}");
  const std::string json = t.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.250"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"bytes\":64}"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  // ts is exported in microseconds with ns fractions: 1000ns -> 1.000us.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
}

TEST(TraceRecorder, CapDropsAndCountsButPinnedSurvive) {
  TraceRecorder t;
  t.Enable(true);
  t.set_max_events(4);
  sim::SimClock clk(0, 1);
  for (int i = 0; i < 10; ++i) {
    t.Instant(clk, "hot", "cache");
    clk.Advance(1);
  }
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // Control events (category "pipeline") bypass the cap: a long run must
  // still be reconstructable from its optimizer decision points.
  t.Instant(clk, "pipeline.iteration", "pipeline", "{\"iteration\":1}");
  EXPECT_EQ(t.events().size(), 5u);
  EXPECT_EQ(t.events().back().cat, "pipeline");
  t.Clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TraceRecorder, RingModeKeepsNewestAndCountsDrops) {
  TraceRecorder t;
  t.set_ring_capacity(4);
  t.Enable(true);
  sim::SimClock clk(0, 1);
  for (int i = 0; i < 10; ++i) {
    t.Instant(clk, "e" + std::to_string(i), "cache");
    clk.Advance(1);
  }
  // Drop-oldest: the buffer holds the last four events, overwrites counted.
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // Pinned categories are NOT exempt in ring mode (bounded window contract).
  t.Instant(clk, "pipeline.iteration", "pipeline");
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.dropped(), 7u);
  // ToJson exports chronologically despite the rotated storage: the oldest
  // surviving event ("e7") must precede the newest ("pipeline.iteration").
  const std::string json = t.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_EQ(json.find("e0"), std::string::npos);
  const size_t oldest = json.find("e7");
  const size_t newest = json.find("pipeline.iteration");
  ASSERT_NE(oldest, std::string::npos);
  ASSERT_NE(newest, std::string::npos);
  EXPECT_LT(oldest, newest);
  t.Clear();
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TraceRecorder, RingDefaultOffPreservesCapBehavior) {
  TraceRecorder t;
  EXPECT_EQ(t.ring_capacity(), 0u);
  t.Enable(true);
  t.set_max_events(2);
  sim::SimClock clk(0, 1);
  for (int i = 0; i < 5; ++i) {
    t.Instant(clk, "e" + std::to_string(i), "cache");
  }
  // Cap mode drops newest: the first two events survive.
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].name, "e0");
  EXPECT_EQ(t.events()[1].name, "e1");
}

TEST(TraceRecorder, ThreadNamesExportAsMetadataEvents) {
  TraceRecorder t;
  t.Enable(true);
  t.SetThreadName(9, "section:hot");
  t.CompleteOn(9, 100, 50, "cache.hot.miss", "cache");
  t.InstantOn(9, 200, "cache.hot.prefetch", "cache");
  const std::string json = t.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("section:hot"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":9"), std::string::npos);
  // Metadata precedes the data events.
  EXPECT_LT(json.find("thread_name"), json.find("cache.hot.miss"));
}

TEST(TelemetryGlobal, SingletonAndFileOutputs) {
  auto& tel = Telemetry::Global();
  EXPECT_EQ(&tel, &Telemetry::Global());
  EXPECT_EQ(&Metrics(), &tel.metrics());
  EXPECT_EQ(&Trace(), &tel.trace());

  tel.ResetAll();
  Metrics().SetCounter("test.counter", 5);
  Trace().Enable(true);
  sim::SimClock clk(0, 3);
  Trace().Instant(clk, "evt", "cache");

  const std::string mpath = ::testing::TempDir() + "/mira_metrics_test.json";
  const std::string tpath = ::testing::TempDir() + "/mira_trace_test.json";
  EXPECT_TRUE(WriteMetricsJson(mpath).ok());
  EXPECT_TRUE(WriteTraceJson(tpath).ok());
  for (const std::string& path : {mpath, tpath}) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << path;
    std::string contents;
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      contents.append(buf, n);
    }
    std::fclose(f);
    EXPECT_TRUE(JsonBalanced(contents)) << path;
    std::remove(path.c_str());
  }
  Trace().Enable(false);
  tel.ResetAll();
}

TEST(TelemetryGlobal, ParseOutputFlagsStripsArgs) {
  std::string a0 = "prog";
  std::string a1 = "--trace-out=/tmp/t.json";
  std::string a2 = "--benchmark_filter=abc";
  std::string a3 = "--metrics-out=/tmp/m.json";
  char* argv[] = {a0.data(), a1.data(), a2.data(), a3.data(), nullptr};
  int argc = 4;
  const OutputOptions opts = ParseOutputFlags(&argc, argv);
  EXPECT_EQ(opts.trace_path, "/tmp/t.json");
  EXPECT_EQ(opts.metrics_path, "/tmp/m.json");
  EXPECT_EQ(argc, 2);  // only prog + the benchmark flag remain
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "--benchmark_filter=abc");
  EXPECT_TRUE(Trace().enabled());  // a trace path enables recording
  Trace().Enable(false);
  Telemetry::Global().ResetAll();
}

TEST(TelemetryGlobal, ParseOutputFlagsHandlesProfilerAndRingFlags) {
  std::string a0 = "prog";
  std::string a1 = "--chrome-trace-out=/tmp/ct.json";
  std::string a2 = "--profile-out=/tmp/p.folded";
  std::string a3 = "--trace-ring=128";
  std::string a4 = "positional";
  char* argv[] = {a0.data(), a1.data(), a2.data(), a3.data(), a4.data(), nullptr};
  int argc = 5;
  const OutputOptions opts = ParseOutputFlags(&argc, argv);
  EXPECT_EQ(opts.trace_path, "/tmp/ct.json");  // --chrome-trace-out aliases --trace-out
  EXPECT_EQ(opts.profile_path, "/tmp/p.folded");
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "positional");
  EXPECT_TRUE(Trace().enabled());
  EXPECT_EQ(Trace().ring_capacity(), 128u);
  EXPECT_TRUE(Profiler().enabled());  // a profile path enables the profiler
  Trace().Enable(false);
  Trace().set_ring_capacity(0);
  Profiler().Enable(false);
  Profiler().Clear();
  Telemetry::Global().ResetAll();
}

TEST(SimClockTid, AllocateTidIsUniquePerCall) {
  const uint32_t a = sim::AllocateTid();
  const uint32_t b = sim::AllocateTid();
  EXPECT_NE(a, b);
  EXPECT_GT(b, a);
}

}  // namespace
}  // namespace mira::telemetry
