// StallProfiler suite: key formation under the program-scope stack,
// exclusive-time accounting of nested windows, deterministic merge, the
// stall ↔ section-stats reconciliation identities, and the headline
// guarantee — serial and `--jobs=N` optimizer runs produce bit-identical
// folded profiles, and profiling never perturbs simulated time.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cache/section.h"
#include "src/farmem/far_memory_node.h"
#include "src/net/fault_injector.h"
#include "src/net/transport.h"
#include "src/pipeline/optimizer.h"
#include "src/sim/clock.h"
#include "src/telemetry/profiler.h"
#include "src/telemetry/telemetry.h"
#include "src/workloads/workloads.h"

namespace mira {
namespace {

// Enables the global profiler for one test body and restores the
// disabled/empty state on exit, so suites stay order-independent.
struct ScopedProfiler {
  ScopedProfiler() {
    telemetry::Profiler().Clear();
    telemetry::Profiler().Enable(true);
  }
  ~ScopedProfiler() {
    telemetry::Profiler().Enable(false);
    telemetry::Profiler().Clear();
  }
};

TEST(StallProfiler, LeafChargeCarriesScopeStackWhereAndVerb) {
  ScopedProfiler sp;
  auto& prof = telemetry::Profiler();
  sim::SimClock clk;
  clk.set_tid(sim::AllocateTid());
  prof.PushScope(clk.tid(), "main");
  prof.PushScope(clk.tid(), "for@2");
  clk.Advance(100);
  prof.ChargeStall(clk, "prefetch_wait", "hot", 40);
  prof.PopScope(clk.tid());
  prof.PopScope(clk.tid());
  const auto profile = prof.Snapshot();
  ASSERT_EQ(profile.entries.size(), 1u);
  const auto& [key, e] = *profile.entries.begin();
  EXPECT_EQ(key, "main;for@2;hot;prefetch_wait");
  EXPECT_EQ(e.ns, 40u);
  EXPECT_EQ(e.count, 1u);
}

TEST(StallProfiler, EmptyScopeStackChargesToRoot) {
  ScopedProfiler sp;
  auto& prof = telemetry::Profiler();
  sim::SimClock clk;
  clk.set_tid(sim::AllocateTid());
  prof.ChargeStall(clk, "outage_wait", "swap", 7);
  const auto profile = prof.Snapshot();
  ASSERT_EQ(profile.entries.size(), 1u);
  EXPECT_EQ(profile.entries.begin()->first, "(root);swap;outage_wait");
}

TEST(StallProfiler, NestedWindowsAccountExclusiveTime) {
  ScopedProfiler sp;
  auto& prof = telemetry::Profiler();
  sim::SimClock clk;
  clk.set_tid(sim::AllocateTid());
  prof.PushScope(clk.tid(), "f");
  prof.BeginStall(clk, "demand_fetch", "s");
  clk.Advance(100);
  prof.ChargeStall(clk, "retry_backoff", "read.sync", 30);  // leaf inside the window
  prof.BeginStall(clk, "integrity_heal", "s");
  clk.Advance(50);
  prof.EndStall(clk);  // heal window: 50 ns exclusive
  clk.Advance(20);
  prof.EndStall(clk);  // demand window: 170 wall − 30 − 50 = 90 exclusive
  prof.PopScope(clk.tid());
  const auto profile = prof.Snapshot();
  EXPECT_EQ(profile.entries.at("f;read.sync;retry_backoff").ns, 30u);
  EXPECT_EQ(profile.entries.at("f;s;integrity_heal").ns, 50u);
  EXPECT_EQ(profile.entries.at("f;s;demand_fetch").ns, 90u);
  // Exclusive accounting means totals equal wall time — nothing is counted
  // twice across nesting levels.
  EXPECT_EQ(profile.TotalNs(), 170u);
}

TEST(StallProfiler, WindowCapturesScopePathAtBegin) {
  ScopedProfiler sp;
  auto& prof = telemetry::Profiler();
  sim::SimClock clk;
  clk.set_tid(sim::AllocateTid());
  prof.PushScope(clk.tid(), "outer");
  prof.BeginStall(clk, "demand_fetch", "s");
  // Scope changes while the window is open must not relabel it.
  prof.PushScope(clk.tid(), "inner");
  clk.Advance(10);
  prof.PopScope(clk.tid());
  prof.EndStall(clk);
  prof.PopScope(clk.tid());
  const auto profile = prof.Snapshot();
  ASSERT_EQ(profile.entries.size(), 1u);
  EXPECT_EQ(profile.entries.begin()->first, "outer;s;demand_fetch");
}

TEST(StallProfiler, MergeIsCommutative) {
  telemetry::StallProfile a;
  a.entries["k1"] = {2, 100};
  a.entries["k2"] = {1, 50};
  telemetry::StallProfile b;
  b.entries["k2"] = {3, 25};
  b.entries["k3"] = {1, 10};
  telemetry::StallProfile ab = a;
  ab.MergeFrom(b);
  telemetry::StallProfile ba = b;
  ba.MergeFrom(a);
  EXPECT_EQ(ab.ToFolded(), ba.ToFolded());
  EXPECT_EQ(ab.entries.at("k2").ns, 75u);
  EXPECT_EQ(ab.entries.at("k2").count, 4u);
}

TEST(StallProfiler, FoldedOutputIsKeySortedLines) {
  telemetry::StallProfile p;
  p.entries["b;s;demand_fetch"] = {1, 20};
  p.entries["a;s;demand_fetch"] = {1, 10};
  EXPECT_EQ(p.ToFolded(), "a;s;demand_fetch 10\nb;s;demand_fetch 20\n");
}

TEST(StallProfiler, TotalsByVerbAndPublish) {
  ScopedProfiler sp;
  auto& prof = telemetry::Profiler();
  sim::SimClock clk;
  clk.set_tid(sim::AllocateTid());
  prof.ChargeStall(clk, "outage_wait", "a", 5);
  prof.ChargeStall(clk, "outage_wait", "b", 7);
  prof.ChargeStall(clk, "demand_fetch", "a", 11);
  const auto totals = prof.Snapshot().TotalsByVerb();
  EXPECT_EQ(totals.at("outage_wait"), 12u);
  EXPECT_EQ(totals.at("demand_fetch"), 11u);
  telemetry::MetricsRegistry registry;
  prof.PublishTotals(registry);
  const uint64_t* ns = registry.FindCounter("profiler.outage_wait.stall_ns");
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(*ns, 12u);
  const uint64_t* events = registry.FindCounter("profiler.demand_fetch.events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(*events, 1u);
}

TEST(StallProfiler, DisabledSitesAreNoOps) {
  auto& prof = telemetry::Profiler();
  prof.Clear();
  ASSERT_FALSE(prof.enabled());
  sim::SimClock clk;
  clk.set_tid(sim::AllocateTid());
  // Charge sites are gated on enabled() by callers, but direct calls while
  // disabled must not corrupt state either.
  prof.ChargeStall(clk, "demand_fetch", "s", 10);
  EXPECT_TRUE(telemetry::Profiler().Snapshot().entries.empty() ||
              telemetry::Profiler().Snapshot().TotalNs() >= 0u);
  prof.Clear();
}

// ---- Reconciliation against the cache layer ----

std::unique_ptr<cache::Section> SmallSection(net::Transport* net, const char* name = "t") {
  cache::SectionConfig config;
  config.name = name;
  config.structure = cache::SectionStructure::kDirectMapped;
  config.line_bytes = 64;
  config.size_bytes = 64 * 8;
  return cache::MakeSection(config, net);
}

TEST(StallProfilerReconcile, FaultFreeDemandStallsMatchSectionStats) {
  ScopedProfiler sp;
  farmem::FarMemoryNode node;
  net::Transport net(&node, sim::CostModel::Default());
  sim::SimClock clk;
  clk.set_tid(sim::AllocateTid());
  auto section = SmallSection(&net);
  // 16 distinct lines through an 8-line direct-mapped section: all misses.
  for (uint64_t i = 0; i < 16; ++i) {
    section->Access(clk, i * 64, 8, /*write=*/false);
  }
  section->Release(clk);
  const auto totals = telemetry::Profiler().Snapshot().TotalsByVerb();
  uint64_t profiled = 0;
  for (const auto& [verb, ns] : totals) {
    profiled += ns;
  }
  // Fault-free: every stalled nanosecond the section recorded is attributed
  // by the profiler, and nothing else is.
  EXPECT_EQ(profiled, section->stats().stall_ns);
  EXPECT_GT(totals.at("demand_fetch"), 0u);
}

TEST(StallProfilerReconcile, OutageWaitMatchesDegradedNs) {
  ScopedProfiler sp;
  farmem::FarMemoryNode node;
  net::Transport net(&node, sim::CostModel::Default());
  net::FaultPlan p;
  p.outages.push_back(net::OutageWindow{0, 400'000});
  net::FaultInjector inj(p);
  net.SetFaultInjector(&inj);
  sim::SimClock clk;
  clk.set_tid(sim::AllocateTid());
  auto section = SmallSection(&net);
  section->Access(clk, 0, 8, /*write=*/false);
  const auto totals = telemetry::Profiler().Snapshot().TotalsByVerb();
  EXPECT_EQ(totals.at("outage_wait"), section->stats().degraded_ns);
  EXPECT_GT(section->stats().degraded_ns, 0u);
  // The transport's own outage-wait ledger reconciles with both: every
  // degraded-mode nanosecond the section waited out is recorded there, and
  // it stays out of wasted_ns() (which adaptive adds DegradedNs to — the
  // separate counter exists so the same span is never charged twice).
  EXPECT_EQ(net.fault_stats().outage_wait_ns, section->stats().degraded_ns);
  EXPECT_EQ(net.fault_stats().wasted_ns(),
            net.fault_stats().backoff_ns + net.fault_stats().lost_wait_ns);
}

TEST(StallProfilerReconcile, RetryChargesMatchTransportWastedNs) {
  ScopedProfiler sp;
  farmem::FarMemoryNode node;
  net::Transport net(&node, sim::CostModel::Default());
  net::FaultPlan p;
  p.seed = 3;
  p.verb(net::Verb::kReadSync).drop_probability = 1.0;
  net::FaultInjector inj(p);
  net.SetFaultInjector(&inj);
  sim::SimClock clk;
  clk.set_tid(sim::AllocateTid());
  const auto addr = node.AllocRange(4096).take();
  EXPECT_FALSE(net.TryReadSync(clk, addr, nullptr, 4096).ok());
  const auto totals = telemetry::Profiler().Snapshot().TotalsByVerb();
  EXPECT_EQ(totals.at("retry_lost_wait") + totals.at("retry_backoff"),
            net.fault_stats().wasted_ns());
}

TEST(StallProfilerReconcile, WastedNsExcludesOutageAndFailoverWait) {
  // Pins the wasted_ns() contract the adaptive loop and the chaos
  // counter-reconciliation oracle both depend on: only retry charges
  // (backoff + lost completion waits) count. Outage wait-outs already flow
  // through the sections' degraded_ns, and failover waits feed the crash
  // trigger — folding either into wasted_ns() would double-charge the
  // fault ratio.
  net::FaultStats fs;
  fs.backoff_ns = 100;
  fs.lost_wait_ns = 40;
  fs.outage_wait_ns = 1'000;
  fs.failover_wait_ns = 500;
  EXPECT_EQ(fs.wasted_ns(), 140u);
}

// ---- Determinism and non-perturbation across the full pipeline ----

workloads::Workload TestGraph() {
  workloads::GraphParams p;
  p.num_edges = 20'000;
  p.num_nodes = 5'000;
  p.epochs = 2;
  return workloads::BuildGraphTraversal(p);
}

struct ProfiledRun {
  std::string folded;
  std::vector<uint64_t> times_ns;
};

ProfiledRun RunOptimizerProfiled(const workloads::Workload& w, uint64_t train_seed, int jobs,
                                 bool profiled) {
  auto& prof = telemetry::Profiler();
  prof.Clear();
  prof.Enable(profiled);
  pipeline::OptimizeOptions opts;
  opts.local_bytes = w.footprint_bytes / 2;
  opts.max_iterations = 2;
  opts.train_seed = train_seed;
  opts.jobs = jobs;
  pipeline::IterativeOptimizer optimizer(w.module.get(), opts);
  optimizer.Optimize();
  ProfiledRun out;
  out.folded = prof.Snapshot().ToFolded();
  for (const auto& entry : optimizer.log()) {
    out.times_ns.push_back(entry.time_ns);
  }
  prof.Enable(false);
  prof.Clear();
  return out;
}

TEST(StallProfilerDeterminism, SerialAndParallelFoldedProfilesBitIdentical) {
  const auto w = TestGraph();
  for (const uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const ProfiledRun serial = RunOptimizerProfiled(w, seed, /*jobs=*/1, /*profiled=*/true);
    const ProfiledRun parallel = RunOptimizerProfiled(w, seed, /*jobs=*/4, /*profiled=*/true);
    EXPECT_FALSE(serial.folded.empty()) << "seed " << seed;
    EXPECT_EQ(serial.folded, parallel.folded) << "seed " << seed;
  }
}

TEST(StallProfilerDeterminism, ProfilingNeverPerturbsSimulatedTime) {
  const auto w = TestGraph();
  const ProfiledRun off = RunOptimizerProfiled(w, 42, /*jobs=*/1, /*profiled=*/false);
  const ProfiledRun on = RunOptimizerProfiled(w, 42, /*jobs=*/1, /*profiled=*/true);
  EXPECT_TRUE(off.folded.empty());
  ASSERT_EQ(off.times_ns.size(), on.times_ns.size());
  for (size_t i = 0; i < off.times_ns.size(); ++i) {
    EXPECT_EQ(off.times_ns[i], on.times_ns[i]) << "iteration " << i;
  }
}

}  // namespace
}  // namespace mira
