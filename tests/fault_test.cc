// Fault injection, retry/backoff, and graceful degradation (DESIGN.md
// "Failure model"): the injector's determinism, the transport's Try* retry
// protocol, the cache sections' degradation ladder, the interpreter's
// offload fallback, and the adaptive loop's failure-aware trigger.

#include <gtest/gtest.h>

#include "src/cache/section.h"
#include "src/cache/swap_section.h"
#include "src/farmem/far_memory_node.h"
#include "src/interp/interpreter.h"
#include "src/ir/builder.h"
#include "src/net/fault_injector.h"
#include "src/net/transport.h"
#include "src/pipeline/adaptive.h"
#include "src/pipeline/world.h"
#include "src/workloads/workloads.h"

namespace mira {
namespace {

using interp::Interpreter;
using ir::FunctionBuilder;
using ir::Local;
using ir::Type;
using ir::Value;
using pipeline::MakeWorld;
using pipeline::SystemKind;

struct Env {
  farmem::FarMemoryNode node;
  net::Transport net{&node, sim::CostModel::Default()};
  sim::SimClock clk;
};

// ---- Injector ----

TEST(FaultInjector, SameSeedReproducesTheExactSchedule) {
  const net::FaultPlan plan = net::FaultPlan::Lossy(/*seed=*/9);
  net::FaultInjector a(plan);
  net::FaultInjector b(plan);
  for (int i = 0; i < 2000; ++i) {
    const net::Verb v = static_cast<net::Verb>(i % net::kNumVerbs);
    const auto da = a.Evaluate(v, static_cast<uint64_t>(i) * 100, 5'000);
    const auto db = b.Evaluate(v, static_cast<uint64_t>(i) * 100, 5'000);
    ASSERT_EQ(da.unavailable, db.unavailable) << i;
    ASSERT_EQ(da.drop, db.drop) << i;
    ASSERT_EQ(da.timeout, db.timeout) << i;
    ASSERT_EQ(da.extra_ns, db.extra_ns) << i;
    ASSERT_DOUBLE_EQ(a.NextJitter(), b.NextJitter()) << i;
  }
}

TEST(FaultInjector, ScenarioConstructors) {
  EXPECT_FALSE(net::FaultPlan::Clean().AnyFaults());
  EXPECT_TRUE(net::FaultPlan::Lossy(1).AnyFaults());
  EXPECT_TRUE(net::FaultPlan::BurstyOutage(1, 0, 10, 20, 2).AnyFaults());
  EXPECT_TRUE(net::FaultPlan::DegradedBandwidth(1).AnyFaults());
  const net::FaultPlan p = net::FaultPlan::BurstyOutage(1, 100, 50, 200, 3);
  ASSERT_EQ(p.outages.size(), 3u);
  EXPECT_EQ(p.outages[1].start_ns, 300u);
  EXPECT_EQ(p.outages[1].end_ns, 350u);
  EXPECT_EQ(p.outages[2].start_ns, 500u);
}

TEST(FaultInjector, RetryPolicyAndLadderDefaultsArePinned) {
  // Regression pin: these defaults define the historical fault schedules
  // (bench_fault_resilience's bit-identical scenarios). Changing any of
  // them is a behavior change and must be deliberate.
  const net::RetryPolicy policy;
  EXPECT_EQ(policy.max_attempts, 5u);
  EXPECT_EQ(policy.attempt_timeout_ns, 15'000u);
  EXPECT_EQ(policy.base_backoff_ns, 4'000u);
  EXPECT_DOUBLE_EQ(policy.backoff_multiplier, 2.0);
  EXPECT_DOUBLE_EQ(policy.jitter_fraction, 0.25);
  EXPECT_EQ(policy.deadline_ns, 600'000u);
  EXPECT_DOUBLE_EQ(policy.jitter_min, -1.0);
  EXPECT_DOUBLE_EQ(policy.jitter_max, 1.0);
  EXPECT_EQ(cache::kMaxFaultRounds, 8);
  EXPECT_EQ(cache::kPendingWritebackLimit, 8u);
  const cache::SectionConfig config;
  EXPECT_EQ(config.max_fault_rounds, cache::kMaxFaultRounds);
  EXPECT_EQ(config.pending_writeback_limit, cache::kPendingWritebackLimit);
}

TEST(FaultInjector, DefaultJitterBoundsReproduceTheLegacyDrawBitExactly) {
  const net::FaultPlan plan = net::FaultPlan::Lossy(/*seed=*/17);
  net::FaultInjector legacy(plan);
  net::FaultInjector bounded(plan);
  for (int i = 0; i < 500; ++i) {
    // One draw either way: the sequences stay in lockstep.
    ASSERT_DOUBLE_EQ(legacy.NextJitter(), bounded.NextJitterIn(-1.0, 1.0)) << i;
  }
}

TEST(FaultInjector, CustomJitterBoundsAreRespected) {
  net::FaultInjector inj(net::FaultPlan::Lossy(/*seed=*/23));
  for (int i = 0; i < 500; ++i) {
    const double d = inj.NextJitterIn(0.0, 0.5);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 0.5);
  }
  for (int i = 0; i < 500; ++i) {
    const double d = inj.NextJitterIn(-0.25, 0.0);
    EXPECT_GE(d, -0.25);
    EXPECT_LT(d, 0.0);
  }
}

TEST(FaultInjector, OutageDecisionsAreScheduleDrivenNotRandom) {
  net::FaultPlan p;
  p.outages.push_back(net::OutageWindow{1'000, 2'000});
  net::FaultInjector inj(p);
  EXPECT_TRUE(inj.InOutage(1'000));
  EXPECT_TRUE(inj.InOutage(1'999));
  EXPECT_FALSE(inj.InOutage(2'000));  // half-open
  EXPECT_FALSE(inj.InOutage(999));
  EXPECT_TRUE(inj.Evaluate(net::Verb::kReadSync, 1'500, 100).unavailable);
  EXPECT_FALSE(inj.Evaluate(net::Verb::kReadSync, 500, 100).unavailable);
  EXPECT_EQ(inj.NextAvailableNs(1'500), 2'000u);
  EXPECT_EQ(inj.NextAvailableNs(500), 500u);
}

// ---- Transport retry protocol ----

TEST(TransportFaults, CleanPlanTryVerbsMatchPlainBitForBit) {
  Env plain;
  Env fallible;
  net::FaultInjector inj(net::FaultPlan::Clean());
  fallible.net.SetFaultInjector(&inj);
  EXPECT_FALSE(fallible.net.FaultsActive());
  const auto a1 = plain.node.AllocRange(1 << 16).take();
  const auto a2 = fallible.node.AllocRange(1 << 16).take();

  plain.net.ReadSync(plain.clk, a1, nullptr, 4096);
  EXPECT_TRUE(fallible.net.TryReadSync(fallible.clk, a2, nullptr, 4096).ok());
  plain.net.WriteSync(plain.clk, a1, nullptr, 256);
  EXPECT_TRUE(fallible.net.TryWriteSync(fallible.clk, a2, nullptr, 256).ok());
  const uint64_t d1 = plain.net.ReadAsync(plain.clk, a1, nullptr, 1024);
  const auto d2 = fallible.net.TryReadAsync(fallible.clk, a2, nullptr, 1024);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1, d2.value());
  plain.net.TwoSidedReadSync(plain.clk, a1, nullptr, 64, 2);
  EXPECT_TRUE(fallible.net.TryTwoSidedReadSync(fallible.clk, a2, nullptr, 64, 2).ok());
  const uint64_t r1 = plain.net.Rpc(plain.clk, 64, 16, 1'000);
  const auto r2 = fallible.net.TryRpc(fallible.clk, 64, 16, 1'000);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1, r2.value());

  EXPECT_EQ(plain.clk.now_ns(), fallible.clk.now_ns());
  EXPECT_EQ(plain.net.stats().messages, fallible.net.stats().messages);
  EXPECT_EQ(plain.net.stats().total_bytes(), fallible.net.stats().total_bytes());
  EXPECT_EQ(fallible.net.fault_stats().faulted_attempts(), 0u);
  EXPECT_EQ(fallible.net.fault_stats().wasted_ns(), 0u);
}

TEST(TransportFaults, DropExhaustionIsDeadlineExceededAndDeterministic) {
  auto run = [](sim::SimClock& clk, net::FaultStats* stats) {
    farmem::FarMemoryNode node;
    net::Transport net(&node, sim::CostModel::Default());
    net::FaultPlan p;
    p.seed = 3;
    p.verb(net::Verb::kReadSync).drop_probability = 1.0;
    net::FaultInjector inj(p);
    net.SetFaultInjector(&inj);
    const auto addr = node.AllocRange(4096).take();
    const auto s = net.TryReadSync(clk, addr, nullptr, 4096);
    EXPECT_EQ(s.code(), support::ErrorCode::kDeadlineExceeded);
    // A failed verb never completed: no message, no bytes moved.
    EXPECT_EQ(net.stats().messages, 0u);
    EXPECT_EQ(net.stats().total_bytes(), 0u);
    *stats = net.fault_stats();
    return net.retry_policy(net::Verb::kReadSync);
  };
  sim::SimClock c1;
  sim::SimClock c2;
  net::FaultStats f1;
  net::FaultStats f2;
  const net::RetryPolicy policy = run(c1, &f1);
  run(c2, &f2);
  // Two identical setups: identical clocks and identical fault accounting.
  EXPECT_EQ(c1.now_ns(), c2.now_ns());
  EXPECT_EQ(f1.backoff_ns, f2.backoff_ns);
  EXPECT_EQ(f1.drops, policy.max_attempts);
  EXPECT_EQ(f1.retries, policy.max_attempts - 1u);
  EXPECT_EQ(f1.exhausted, 1u);
  EXPECT_EQ(f1.recovered, 0u);
  // Every attempt waited out its timeout; all waiting landed on the clock.
  EXPECT_EQ(f1.lost_wait_ns, policy.max_attempts * policy.attempt_timeout_ns);
  EXPECT_GT(f1.backoff_ns, 0u);
  EXPECT_EQ(c1.now_ns(), f1.wasted_ns());
}

TEST(TransportFaults, OutageExhaustsWithUnavailableAndReportsWindowEnd) {
  Env e;
  net::FaultPlan p;
  p.outages.push_back(net::OutageWindow{0, 10'000'000});
  net::FaultInjector inj(p);
  e.net.SetFaultInjector(&inj);
  const auto addr = e.node.AllocRange(4096).take();
  const auto s = e.net.TryReadSync(e.clk, addr, nullptr, 4096);
  EXPECT_EQ(s.code(), support::ErrorCode::kUnavailable);
  const net::RetryPolicy& policy = e.net.retry_policy(net::Verb::kReadSync);
  EXPECT_EQ(e.net.fault_stats().unavailable, policy.max_attempts);
  EXPECT_EQ(e.net.fault_stats().exhausted, 1u);
  // Callers wait out the window from here instead of spinning.
  EXPECT_EQ(e.net.NextAvailableNs(e.clk.now_ns()), 10'000'000u);
}

TEST(TransportFaults, VerbRecoversWhenOutageEndsMidRetry) {
  Env e;
  net::FaultPlan p;
  p.outages.push_back(net::OutageWindow{0, 20'000});
  net::FaultInjector inj(p);
  e.net.SetFaultInjector(&inj);
  const auto addr = e.node.AllocRange(4096).take();
  EXPECT_TRUE(e.net.TryReadSync(e.clk, addr, nullptr, 4096).ok());
  EXPECT_GE(e.net.fault_stats().unavailable, 1u);
  EXPECT_EQ(e.net.fault_stats().recovered, 1u);
  EXPECT_EQ(e.net.fault_stats().exhausted, 0u);
  EXPECT_EQ(e.net.stats().one_sided_reads, 1u);
}

TEST(TransportFaults, FailedAttemptsNeverTouchTheDataPlane) {
  Env e;
  const auto addr = e.node.AllocRange(64).take();
  const uint64_t before = 0x1111222233334444ULL;
  e.net.WriteSync(e.clk, addr, &before, sizeof(before));
  net::FaultPlan p;
  p.seed = 5;
  p.verb(net::Verb::kWriteSync).drop_probability = 1.0;
  net::FaultInjector inj(p);
  e.net.SetFaultInjector(&inj);
  const uint64_t attempted = 0xAAAABBBBCCCCDDDDULL;
  EXPECT_FALSE(e.net.TryWriteSync(e.clk, addr, &attempted, sizeof(attempted)).ok());
  e.net.SetFaultInjector(nullptr);
  uint64_t back = 0;
  e.net.ReadSync(e.clk, addr, &back, sizeof(back));
  EXPECT_EQ(back, before);
  EXPECT_EQ(e.net.stats().one_sided_writes, 1u);  // only the initial write landed
}

TEST(TransportFaults, DegradedWindowInflatesWireTimeWithoutFaults) {
  Env nominal;
  Env slow;
  net::FaultPlan p;
  p.degraded.push_back(net::DegradedWindow{0, UINT64_MAX, 0.25});
  net::FaultInjector inj(p);
  slow.net.SetFaultInjector(&inj);
  const auto a1 = nominal.node.AllocRange(1 << 16).take();
  const auto a2 = slow.node.AllocRange(1 << 16).take();
  nominal.net.ReadSync(nominal.clk, a1, nullptr, 1 << 16);
  EXPECT_TRUE(slow.net.TryReadSync(slow.clk, a2, nullptr, 1 << 16).ok());
  EXPECT_GT(slow.clk.now_ns(), nominal.clk.now_ns());
  // A degraded link is slow, not broken: no fault counters, no retries.
  EXPECT_EQ(slow.net.fault_stats().faulted_attempts(), 0u);
  EXPECT_EQ(slow.net.fault_stats().retries, 0u);
}

// ---- Section degradation ladder ----

std::unique_ptr<cache::Section> SmallSection(net::Transport* net, uint32_t lines = 8) {
  cache::SectionConfig config;
  config.name = "t";
  config.structure = cache::SectionStructure::kDirectMapped;
  config.line_bytes = 64;
  config.size_bytes = static_cast<uint64_t>(64) * lines;
  return cache::MakeSection(config, net);
}

TEST(SectionFaults, DemandFetchRidesOutAnOutageInDegradedMode) {
  Env e;
  net::FaultPlan p;
  p.outages.push_back(net::OutageWindow{0, 400'000});
  net::FaultInjector inj(p);
  e.net.SetFaultInjector(&inj);
  auto section = SmallSection(&e.net);
  section->Access(e.clk, 0, 8, /*write=*/false);
  const auto& stats = section->stats();
  EXPECT_EQ(stats.lines.misses, 1u);
  // The fetch exhausted its retries inside the window, waited the window
  // out (degraded mode), then completed.
  EXPECT_GT(stats.degraded_ns, 0u);
  EXPECT_GE(e.clk.now_ns(), 400'000u);
  // Once the outage passed, the line is resident and hits are clean.
  section->Access(e.clk, 8, 8, /*write=*/false);
  EXPECT_EQ(stats.lines.hits, 1u);
}

TEST(SectionFaults, PrefetchAbortsAndDemandPathEscalatesToReliableVerb) {
  Env e;
  net::FaultPlan p;
  p.seed = 5;
  p.verb(net::Verb::kReadAsync).drop_probability = 1.0;
  net::FaultInjector inj(p);
  e.net.SetFaultInjector(&inj);
  auto section = SmallSection(&e.net);
  // The prefetch is optional work: a persistent fault drops it on the
  // floor (the line will be demand-fetched later), never stalls the app.
  section->Prefetch(e.clk, 0, 8);
  EXPECT_EQ(section->stats().prefetch_aborted, 1u);
  EXPECT_EQ(section->stats().prefetches_issued, 0u);
  EXPECT_EQ(section->resident_lines(), 0u);
  // The demand fetch cannot be dropped; after kMaxFaultRounds it escalates
  // to the infallible verb and the program gets its data.
  section->Access(e.clk, 0, 8, /*write=*/false);
  EXPECT_EQ(section->stats().lines.misses, 1u);
  EXPECT_GE(section->stats().reliable_escalations, 1u);
  EXPECT_EQ(section->resident_lines(), 1u);
}

TEST(SectionFaults, FaultedPrefetchNeverRegistersAJoinableFetch) {
  // Duplicate suppression must only ever dedupe *successful* verbs: a
  // prefetch dropped by the injector moved no bytes, so the demand miss
  // that follows has nothing to join and must run the real ladder.
  Env e;
  net::FaultPlan p;
  p.seed = 5;
  p.verb(net::Verb::kReadAsync).drop_probability = 1.0;
  net::FaultInjector inj(p);
  e.net.SetFaultInjector(&inj);
  auto section = SmallSection(&e.net);
  section->Prefetch(e.clk, 0, 8);
  EXPECT_EQ(section->stats().prefetch_aborted, 1u);
  EXPECT_EQ(e.net.inflight_stats().registered, 0u);
  EXPECT_EQ(e.net.TryJoinRead(e.clk, 0, 64), 0u);
  section->Access(e.clk, 0, 8, /*write=*/false);
  EXPECT_EQ(section->stats().inflight_joins, 0u);
  EXPECT_GE(section->stats().reliable_escalations, 1u);  // the real ladder ran
  EXPECT_EQ(section->resident_lines(), 1u);
}

TEST(SectionFaults, FailedWritebacksQueueUntilAForcedSyncFlush) {
  Env e;
  net::FaultPlan p;
  p.seed = 5;
  p.verb(net::Verb::kWriteAsync).drop_probability = 1.0;  // async writebacks fail
  net::FaultInjector inj(p);
  e.net.SetFaultInjector(&inj);
  auto section = SmallSection(&e.net, /*lines=*/4);
  // 16 dirty lines that all map to slot 0: each conflict evicts a dirty
  // victim whose async writeback fails and is requeued; at
  // kPendingWritebackLimit the queue forces a synchronous drain.
  const uint64_t stride = 64 * 4;
  for (uint64_t i = 0; i < 16; ++i) {
    section->Access(e.clk, i * stride, 8, /*write=*/true);
  }
  section->FlushAll(e.clk);
  const auto& stats = section->stats();
  EXPECT_GE(stats.writebacks_requeued, cache::kPendingWritebackLimit);
  EXPECT_GE(stats.forced_sync_flushes, 1u);
  // Nothing dirty was lost: every dirty line eventually wrote back.
  EXPECT_EQ(stats.writebacks, 16u);
  EXPECT_EQ(stats.bytes_written_back, 16u * 64);
}

TEST(SectionFaults, FaultRoundBoundIsConstructorConfigurable) {
  // Same persistent-drop schedule, two round budgets: the smaller budget
  // escalates to the infallible verb sooner and wastes less simulated time.
  auto run = [](int rounds) {
    Env e;
    net::FaultPlan p;
    p.seed = 5;
    p.verb(net::Verb::kReadAsync).drop_probability = 1.0;
    net::FaultInjector inj(p);
    e.net.SetFaultInjector(&inj);
    cache::SectionConfig config;
    config.name = "t";
    config.structure = cache::SectionStructure::kDirectMapped;
    config.line_bytes = 64;
    config.size_bytes = 64 * 8;
    config.max_fault_rounds = rounds;
    auto section = cache::MakeSection(config, &e.net);
    section->Access(e.clk, 0, 8, /*write=*/false);
    EXPECT_EQ(section->stats().reliable_escalations, 1u);
    return e.clk.now_ns();
  };
  const uint64_t quick = run(1);
  const uint64_t patient = run(cache::kMaxFaultRounds);
  EXPECT_LT(quick, patient);
}

TEST(SectionFaults, WritebackQueueLimitIsConstructorConfigurable) {
  auto run = [](uint32_t limit) {
    Env e;
    net::FaultPlan p;
    p.seed = 5;
    p.verb(net::Verb::kWriteAsync).drop_probability = 1.0;
    net::FaultInjector inj(p);
    e.net.SetFaultInjector(&inj);
    cache::SectionConfig config;
    config.name = "t";
    config.structure = cache::SectionStructure::kDirectMapped;
    config.line_bytes = 64;
    config.size_bytes = 64 * 4;
    config.pending_writeback_limit = limit;
    auto section = cache::MakeSection(config, &e.net);
    const uint64_t stride = 64 * 4;
    for (uint64_t i = 0; i < 16; ++i) {
      section->Access(e.clk, i * stride, 8, /*write=*/true);
    }
    section->FlushAll(e.clk);
    return section->stats().forced_sync_flushes;
  };
  // A tighter queue saturates more often across the same dirty traffic.
  EXPECT_GT(run(2), run(cache::kPendingWritebackLimit));
}

TEST(SwapFaults, DemandFaultInSurvivesPersistentLossAndOutages) {
  {
    Env e;
    net::FaultPlan p;
    p.seed = 5;
    p.verb(net::Verb::kReadSync).drop_probability = 1.0;
    net::FaultInjector inj(p);
    e.net.SetFaultInjector(&inj);
    cache::SwapSection swap(8 * 4096, &e.net,
                            std::make_unique<cache::ReadaheadPrefetcher>());
    swap.Access(e.clk, 0, 8, /*write=*/false);
    EXPECT_GE(swap.resident_pages(), 1u);  // faulted page (+ readahead neighbor)
    EXPECT_GE(swap.stats().reliable_escalations, 1u);
  }
  {
    Env e;
    net::FaultPlan p;
    p.outages.push_back(net::OutageWindow{0, 400'000});
    net::FaultInjector inj(p);
    e.net.SetFaultInjector(&inj);
    cache::SwapSection swap(8 * 4096, &e.net,
                            std::make_unique<cache::ReadaheadPrefetcher>());
    swap.Access(e.clk, 0, 8, /*write=*/false);
    EXPECT_GE(swap.resident_pages(), 1u);  // faulted page (+ readahead neighbor)
    EXPECT_GT(swap.stats().degraded_ns, 0u);
  }
}

// ---- Offload fallback ----

std::unique_ptr<ir::Module> BuildOffloadModule(bool offload) {
  auto m = std::make_unique<ir::Module>();
  {
    FunctionBuilder f(m.get(), "kernel", {Type::kPtr, Type::kI64}, Type::kI64);
    const Value arr = f.Arg(0);
    const Value n = f.Arg(1);
    const Local acc = f.DeclLocal(Type::kI64);
    f.StoreLocal(acc, f.ConstI(0));
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      f.StoreLocal(acc,
                   f.Add(f.LoadLocal(acc), f.Load(f.Index(arr, i, 8, 0), 8, Type::kI64)));
    });
    f.Return(f.LoadLocal(acc));
  }
  {
    FunctionBuilder f(m.get(), "main", {}, Type::kI64);
    const Value arr = f.Alloc(f.ConstI(256 * 8), "a", 8);
    f.For(f.ConstI(0), f.ConstI(256), f.ConstI(1), [&](Value i) {
      f.Store(f.Index(arr, i, 8, 0), i, 8);
    });
    f.Return(f.Call("kernel", {arr, f.ConstI(256)}));
  }
  if (offload) {
    ir::WalkInstrs(m->FindFunction("main")->body, [&](ir::Instr& instr) {
      if (instr.kind == ir::OpKind::kCall && instr.callee == 0) {
        instr.kind = ir::OpKind::kOffloadCall;
      }
    });
  }
  return m;
}

TEST(OffloadFaults, AdmissionFailureFallsBackToLocalExecution) {
  auto plain = BuildOffloadModule(false);
  auto off = BuildOffloadModule(true);
  auto w1 = MakeWorld(SystemKind::kMira, 1 << 20, {});
  auto w2 = MakeWorld(SystemKind::kMira, 1 << 20, {});
  net::FaultPlan p;
  p.seed = 5;
  p.verb(net::Verb::kRpc).drop_probability = 1.0;  // every offload admission fails
  pipeline::AttachFaults(w2, p);
  Interpreter i1(plain.get(), w1.backend.get());
  Interpreter i2(off.get(), w2.backend.get());
  EXPECT_EQ(i1.Run("main").value(), i2.Run("main").value());
  EXPECT_EQ(i2.offload_fallbacks(), 1u);
  // Admission is the request leg only: a denied offload charges no RPC and
  // leaves no remote side effects — both worlds paid just the allocator
  // refill.
  EXPECT_EQ(w2.net->stats().rpcs, w1.net->stats().rpcs);
  EXPECT_GE(w2.net->fault_stats().exhausted, 1u);
}

TEST(OffloadFaults, CleanAdmissionStillOffloads) {
  auto off = BuildOffloadModule(true);
  auto w = MakeWorld(SystemKind::kMira, 1 << 20, {});
  pipeline::AttachFaults(w, net::FaultPlan::Clean());
  Interpreter interp(off.get(), w.backend.get());
  EXPECT_EQ(interp.Run("main").value(), 256u * 255 / 2);
  EXPECT_EQ(interp.offload_fallbacks(), 0u);
  EXPECT_EQ(w.net->stats().rpcs, 2u);  // allocator refill + offloaded call
}

// ---- End-to-end determinism and the adaptive trigger ----

struct E2E {
  uint64_t result = 0;
  uint64_t sim_ns = 0;
  net::FaultStats faults;
};

E2E RunFaulted(const ir::Module& module, const net::FaultPlan* plan) {
  auto world = MakeWorld(SystemKind::kMira, 1 << 20, {});
  if (plan != nullptr) {
    pipeline::AttachFaults(world, *plan);
  }
  Interpreter interp(&module, world.backend.get());
  E2E out;
  out.result = interp.Run("main").value();
  world.backend->Drain(interp.clock());
  out.sim_ns = interp.clock().now_ns();
  out.faults = world.net->fault_stats();
  return out;
}

TEST(EndToEndFaults, FixedSeedFaultedRunsAreBitIdentical) {
  const auto w = workloads::BuildArraySum({.elems = 50'000, .epochs = 1});
  const net::FaultPlan plan = net::FaultPlan::Lossy(/*seed=*/11, /*p=*/0.05, /*tail_p=*/0.1);
  const E2E clean = RunFaulted(*w.module, nullptr);
  const E2E r1 = RunFaulted(*w.module, &plan);
  const E2E r2 = RunFaulted(*w.module, &plan);
  // Same (plan, seed): the same faults strike the same verbs at the same
  // times — schedules, stats, and the clock are identical.
  EXPECT_EQ(r1.sim_ns, r2.sim_ns);
  EXPECT_EQ(r1.faults.drops, r2.faults.drops);
  EXPECT_EQ(r1.faults.timeouts, r2.faults.timeouts);
  EXPECT_EQ(r1.faults.tail_events, r2.faults.tail_events);
  EXPECT_EQ(r1.faults.retries, r2.faults.retries);
  EXPECT_EQ(r1.faults.backoff_ns, r2.faults.backoff_ns);
  EXPECT_EQ(r1.faults.lost_wait_ns, r2.faults.lost_wait_ns);
  // Faults cost time but never change results.
  EXPECT_EQ(r1.result, clean.result);
  EXPECT_GT(r1.faults.faulted_attempts(), 0u);
  EXPECT_GE(r1.sim_ns, clean.sim_ns);
}

TEST(AdaptiveFaults, SustainedFaultRatioTriggersReoptimization) {
  workloads::GraphParams gp;
  gp.num_edges = 20'000;
  gp.num_nodes = 5'000;
  gp.epochs = 2;
  const auto w = workloads::BuildGraphTraversal(gp);
  pipeline::OptimizeOptions opts;
  opts.local_bytes = w.footprint_bytes / 2;
  opts.max_iterations = 1;
  opts.planner.enable_offload = false;  // keep verbs flowing through the run
  pipeline::AdaptiveRuntime runtime(w.module.get(), opts);
  const auto first = runtime.Invoke(1);
  EXPECT_EQ(runtime.fault_reoptimizations(), 0);
  net::FaultPlan plan;
  plan.seed = 5;
  plan.verb(net::Verb::kReadSync).drop_probability = 0.3;
  plan.verb(net::Verb::kReadAsync).drop_probability = 0.3;
  plan.verb(net::Verb::kReadGather).drop_probability = 0.3;
  runtime.SetFaultPlan(&plan);
  runtime.SetFaultDegradeTrigger(/*ratio=*/1e-9, /*streak=*/2);
  const auto second = runtime.Invoke(2);
  EXPECT_GT(second.fault_ratio, 0.0);
  EXPECT_EQ(runtime.fault_reoptimizations(), 0);  // streak of 1
  const auto third = runtime.Invoke(3);
  EXPECT_EQ(runtime.fault_reoptimizations(), 1);
  EXPECT_TRUE(third.reoptimized);
  // The environment is faulty, not broken: every invocation completed.
  EXPECT_GT(first.sim_ns, 0u);
  EXPECT_GT(third.sim_ns, 0u);
}

}  // namespace
}  // namespace mira
