// mira_report comparison engine: flat-JSON and metrics-CSV parsing, the
// gating rules (wall_ns and *_ns gate, throughput and counts are
// informational), and the acceptance scenario — an injected ≥10% synthetic
// slowdown is flagged while an identical pair passes.

#include <gtest/gtest.h>

#include <string>

#include "tools/report.h"

namespace mira::tools {
namespace {

const char kBaseReport[] = R"({
  "bench": "bench_fig17_gpt2",
  "jobs": 1,
  "serial": true,
  "wall_ns": 1000000000,
  "sims_run": 10,
  "sims_per_sec": 10.0
})";

std::string ReportWithWallNs(uint64_t wall_ns, double sims_per_sec) {
  return "{\n  \"bench\": \"bench_fig17_gpt2\",\n  \"wall_ns\": " + std::to_string(wall_ns) +
         ",\n  \"sims_per_sec\": " + std::to_string(sims_per_sec) + "\n}\n";
}

TEST(Report, FindJsonNumberAndString) {
  double v = 0;
  EXPECT_TRUE(FindJsonNumber(kBaseReport, "wall_ns", &v));
  EXPECT_EQ(v, 1e9);
  EXPECT_TRUE(FindJsonNumber(kBaseReport, "sims_per_sec", &v));
  EXPECT_EQ(v, 10.0);
  EXPECT_FALSE(FindJsonNumber(kBaseReport, "absent", &v));
  std::string s;
  EXPECT_TRUE(FindJsonString(kBaseReport, "bench", &s));
  EXPECT_EQ(s, "bench_fig17_gpt2");
  EXPECT_FALSE(FindJsonString(kBaseReport, "absent", &s));
}

TEST(Report, ParseMetricsCsvSkipsHeaderAndMalformedRows) {
  const auto m = ParseMetricsCsv(
      "metric,kind,value\n"
      "cache.hot.stall_ns,counter,12345\n"
      "cache.hot.miss_rate,gauge,0.25\n"
      "not-a-row\n"
      "bad,counter,not-a-number\n");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at("cache.hot.stall_ns"), 12345.0);
  EXPECT_EQ(m.at("cache.hot.miss_rate"), 0.25);
}

TEST(Report, IdenticalRunsPass) {
  const auto comps = CompareBenchReports(kBaseReport, kBaseReport, 0.10);
  ASSERT_FALSE(comps.empty());
  EXPECT_FALSE(AnyRegression(comps));
}

TEST(Report, InjectedTenPercentSlowdownIsFlagged) {
  // The acceptance scenario: inflate wall time by 20% (well beyond the 10%
  // threshold) and expect the gate to trip.
  const std::string slow = ReportWithWallNs(1'200'000'000, 8.3);
  const auto comps = CompareBenchReports(kBaseReport, slow, 0.10);
  EXPECT_TRUE(AnyRegression(comps));
  const std::string table = FormatReport("base -> cur", comps);
  EXPECT_NE(table.find("REGRESSION"), std::string::npos);
  EXPECT_NE(table.find("wall_ns"), std::string::npos);
}

TEST(Report, SlowdownWithinThresholdPasses) {
  const std::string slight = ReportWithWallNs(1'050'000'000, 9.5);
  EXPECT_FALSE(AnyRegression(CompareBenchReports(kBaseReport, slight, 0.10)));
  // The same pair trips a tighter gate.
  EXPECT_TRUE(AnyRegression(CompareBenchReports(kBaseReport, slight, 0.02)));
}

TEST(Report, SpeedupNeverRegresses) {
  const std::string fast = ReportWithWallNs(500'000'000, 20.0);
  EXPECT_FALSE(AnyRegression(CompareBenchReports(kBaseReport, fast, 0.10)));
}

TEST(Report, ThroughputIsInformationalOnly) {
  // sims_per_sec collapsing alone must not gate — it is derived from
  // wall_ns and double-flagging one slowdown helps nobody.
  for (const auto& c : CompareBenchReports(kBaseReport, kBaseReport, 0.10)) {
    if (c.name == "sims_per_sec") {
      EXPECT_FALSE(c.gating);
    }
    if (c.name == "wall_ns") {
      EXPECT_TRUE(c.gating);
    }
  }
}

TEST(Report, MetricsCsvOnlyNsRowsGate) {
  const char base[] =
      "metric,kind,value\n"
      "cache.hot.stall_ns,counter,1000\n"
      "cache.hot.misses,counter,50\n";
  const char cur[] =
      "metric,kind,value\n"
      "cache.hot.stall_ns,counter,1500\n"
      "cache.hot.misses,counter,500\n";
  const auto comps = CompareMetricsCsv(base, cur, 0.10);
  ASSERT_EQ(comps.size(), 2u);
  bool saw_ns = false;
  for (const auto& c : comps) {
    if (c.name == "cache.hot.stall_ns") {
      saw_ns = true;
      EXPECT_TRUE(c.gating);
      EXPECT_TRUE(c.regression);  // +50% stall time
    } else {
      EXPECT_FALSE(c.gating);
      EXPECT_FALSE(c.regression);  // 10x misses is informational
    }
  }
  EXPECT_TRUE(saw_ns);
}

TEST(Report, OneSidedMetricsReportedAsAddedAndRemoved) {
  const auto comps = CompareMetricsCsv("metric,kind,value\na.x_ns,counter,1\n",
                                       "metric,kind,value\nb.y_ns,counter,1\n", 0.10);
  ASSERT_EQ(comps.size(), 2u);
  const Comparison* removed = nullptr;
  const Comparison* added = nullptr;
  for (const auto& c : comps) {
    if (c.presence == Presence::kRemoved) {
      removed = &c;
    } else if (c.presence == Presence::kAdded) {
      added = &c;
    }
  }
  ASSERT_NE(removed, nullptr);
  ASSERT_NE(added, nullptr);
  EXPECT_EQ(removed->name, "a.x_ns");
  EXPECT_EQ(added->name, "b.y_ns");
  // A gating *_ns row that disappeared is itself a regression: the gate
  // would otherwise go blind on that code path.
  EXPECT_TRUE(removed->regression);
  EXPECT_TRUE(AnyRegression(comps));
  // A new row never gates: instrumentation growth is not a regression.
  EXPECT_FALSE(added->gating);
  EXPECT_FALSE(added->regression);
}

TEST(Report, RemovedInformationalRowDoesNotGate) {
  const auto comps = CompareMetricsCsv(
      "metric,kind,value\ncache.hot.misses,counter,5\ncache.hot.stall_ns,counter,10\n",
      "metric,kind,value\ncache.hot.stall_ns,counter,10\n", 0.10);
  ASSERT_EQ(comps.size(), 2u);
  for (const auto& c : comps) {
    if (c.name == "cache.hot.misses") {
      EXPECT_EQ(c.presence, Presence::kRemoved);
      EXPECT_FALSE(c.regression);  // a vanished count row is only informational
    }
  }
  EXPECT_FALSE(AnyRegression(comps));
}

TEST(Report, FormatReportMarksOneSidedRows) {
  const auto comps = CompareMetricsCsv("metric,kind,value\na.x_ns,counter,1\n",
                                       "metric,kind,value\nb.y,counter,2\n", 0.10);
  const std::string report = FormatReport("base -> cur", comps);
  EXPECT_NE(report.find("REGRESSION"), std::string::npos);  // removed gating row
  EXPECT_NE(report.find("added"), std::string::npos);
  EXPECT_NE(report.find("a.x_ns"), std::string::npos);
  EXPECT_NE(report.find("b.y"), std::string::npos);
}

}  // namespace
}  // namespace mira::tools
