#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "src/support/flat_map.h"
#include "src/support/rng.h"
#include "src/support/stats.h"
#include "src/support/status.h"
#include "src/support/str.h"

namespace mira::support {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    EXPECT_NE(va, c.NextU64());  // astronomically unlikely to collide 100×
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (const uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng r(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = r.NextRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ZipfIsSkewed) {
  Rng r(13);
  uint64_t head = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (r.NextZipf(1000, 0.9) < 100) {
      ++head;
    }
  }
  // With skew 0.9, far more than 10% of samples land in the first decile.
  EXPECT_GT(head, kSamples / 5u);
}

TEST(Rng, ZipfZeroThetaIsUniformish) {
  Rng r(17);
  uint64_t head = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (r.NextZipf(1000, 0.0) < 100) {
      ++head;
    }
  }
  EXPECT_NEAR(static_cast<double>(head) / kSamples, 0.1, 0.02);
}

TEST(RunningStat, Moments) {
  RunningStat s;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(LatencyHistogram, PercentilesOrdered) {
  LatencyHistogram h;
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Add(i * 100);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_LE(h.PercentileNs(50), h.PercentileNs(90));
  EXPECT_LE(h.PercentileNs(90), h.PercentileNs(99));
  EXPECT_GT(h.mean(), 0.0);
}

TEST(RunningStat, SingleSampleVarianceIsZero) {
  RunningStat s;
  s.Add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 7.5);
}

TEST(LatencyHistogram, EmptyPercentilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.PercentileNs(0), 0u);
  EXPECT_EQ(h.PercentileNs(50), 0u);
  EXPECT_EQ(h.PercentileNs(100), 0u);
}

TEST(LatencyHistogram, PercentileEndpoints) {
  LatencyHistogram h;
  h.Add(1);     // bucket 0
  h.Add(1000);  // bucket 9: [512, 1023]
  // p0 lands in the first occupied bucket; bucket 0's lower bound is 0.
  EXPECT_EQ(h.PercentileNs(0), 0u);
  // p50 is the second sample's bucket lower bound.
  EXPECT_EQ(h.PercentileNs(50), 512u);
  // p100's rank clamps to the last sample, so it answers with the highest
  // occupied bucket rather than the 2^47 upper-rail sentinel.
  EXPECT_EQ(h.PercentileNs(100), 512u);
}

TEST(LatencyHistogram, SingleSampleAnswersEveryPercentile) {
  LatencyHistogram h;
  h.Add(700);  // bucket 9: [512, 1023]
  for (const double p : {0.0, 1.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(h.PercentileNs(p), 512u) << "p" << p;
  }
}

TEST(LatencyHistogram, OutOfRangePercentilesClamp) {
  LatencyHistogram h;
  h.Add(1);
  h.Add(1000);
  EXPECT_EQ(h.PercentileNs(-5), h.PercentileNs(0));
  EXPECT_EQ(h.PercentileNs(250), h.PercentileNs(100));
}

TEST(LatencyHistogram, ResetDropsSamples) {
  LatencyHistogram h;
  h.Add(64);
  h.Add(128);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.PercentileNs(99), 0u);
}

TEST(HitMissCounter, ZeroTotalHasZeroMissRate) {
  HitMissCounter c;
  EXPECT_EQ(c.total(), 0u);
  EXPECT_EQ(c.miss_rate(), 0.0);  // no division by zero
  c.Hit();
  c.Miss();
  c.Reset();
  EXPECT_EQ(c.total(), 0u);
  EXPECT_EQ(c.miss_rate(), 0.0);
}

TEST(HitMissCounter, MissRate) {
  HitMissCounter c;
  EXPECT_EQ(c.miss_rate(), 0.0);
  for (int i = 0; i < 3; ++i) {
    c.Hit();
  }
  c.Miss();
  EXPECT_DOUBLE_EQ(c.miss_rate(), 0.25);
  EXPECT_EQ(c.total(), 4u);
}

TEST(Status, RoundTrip) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "not_found: thing");
}

TEST(Status, FailureModelCodes) {
  // The codes the transport's retry protocol returns to callers.
  const Status u = Status::Unavailable("far node down");
  EXPECT_EQ(u.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(u.ToString(), "unavailable: far node down");
  const Status d = Status::DeadlineExceeded("retries spent");
  EXPECT_EQ(d.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(d.ToString(), "deadline_exceeded: retries spent");
  const Status a = Status::Aborted("gave up");
  EXPECT_EQ(a.code(), ErrorCode::kAborted);
  EXPECT_EQ(a.ToString(), "aborted: gave up");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kUnavailable), "unavailable");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kAborted), "aborted");
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::OutOfMemory("x"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), ErrorCode::kOutOfMemory);
}

TEST(Str, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(Str, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(4096), "4.0KiB");
  EXPECT_EQ(HumanBytes(3u << 20), "3.0MiB");
}

TEST(Str, HumanNs) {
  EXPECT_EQ(HumanNs(500), "500ns");
  EXPECT_EQ(HumanNs(1500), "1.5us");
  EXPECT_EQ(HumanNs(2'500'000), "2.50ms");
}

TEST(FlatMap64, BasicInsertFindErase) {
  FlatMap64 m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(7), FlatMap64::kNotFound);
  m.Insert(7, 100);
  m.Insert(9, 200);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.Find(7), 100u);
  EXPECT_EQ(m.Find(9), 200u);
  m.Insert(7, 101);  // insert-or-assign
  EXPECT_EQ(m.Find(7), 101u);
  EXPECT_EQ(m.size(), 2u);
  m.Erase(7);
  EXPECT_EQ(m.Find(7), FlatMap64::kNotFound);
  EXPECT_EQ(m.Find(9), 200u);
  m.Erase(12345);  // absent: no-op
  EXPECT_EQ(m.size(), 1u);
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(9), FlatMap64::kNotFound);
}

TEST(FlatMap64, GrowsThroughReserveAndLoad) {
  FlatMap64 m;
  m.Reserve(4);
  for (uint64_t k = 0; k < 10'000; ++k) {
    m.Insert(k * 0x9E3779B97F4A7C15ULL, static_cast<uint32_t>(k));
  }
  EXPECT_EQ(m.size(), 10'000u);
  for (uint64_t k = 0; k < 10'000; ++k) {
    EXPECT_EQ(m.Find(k * 0x9E3779B97F4A7C15ULL), static_cast<uint32_t>(k));
  }
}

TEST(FlatMap64, FuzzAgainstStdUnorderedMap) {
  // Random insert/assign/erase/find mix over a small key universe (lots of
  // collisions and reuse) must match the reference map exactly. This is the
  // correctness net under the cache hot path's robin-hood table.
  Rng rng(0xF1A7);
  FlatMap64 m;
  std::unordered_map<uint64_t, uint32_t> ref;
  for (int step = 0; step < 200'000; ++step) {
    const uint64_t key = rng.NextBelow(512) * 0x100000001ULL;  // clustered hashes
    const uint32_t op = static_cast<uint32_t>(rng.NextBelow(10));
    if (op < 5) {
      const uint32_t value = static_cast<uint32_t>(rng.NextBelow(1u << 30));
      m.Insert(key, value);
      ref[key] = value;
    } else if (op < 7) {
      m.Erase(key);
      ref.erase(key);
    } else {
      const auto it = ref.find(key);
      EXPECT_EQ(m.Find(key), it == ref.end() ? FlatMap64::kNotFound : it->second);
    }
    if (step % 10'000 == 0) {
      ASSERT_EQ(m.size(), ref.size()) << "step " << step;
    }
  }
  ASSERT_EQ(m.size(), ref.size());
  for (const auto& [key, value] : ref) {
    EXPECT_EQ(m.Find(key), value);
  }
}

}  // namespace
}  // namespace mira::support
