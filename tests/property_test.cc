// Property-based tests: invariants that must hold for arbitrary access
// traces, section geometries, and schedules.

#include <gtest/gtest.h>

#include "src/cache/section.h"
#include "src/cache/section_manager.h"
#include "src/cache/swap_section.h"
#include "src/farmem/far_memory_node.h"
#include "src/integrity/integrity.h"
#include "src/interp/interpreter.h"
#include "src/net/fault_injector.h"
#include "src/pipeline/world.h"
#include "src/sim/mt_scheduler.h"
#include "src/support/json.h"
#include "src/support/rng.h"
#include "src/workloads/workloads.h"

namespace mira {
namespace {

struct TraceCase {
  std::string name;
  cache::SectionStructure structure;
  uint32_t line_bytes;
  uint32_t lines;
  uint64_t seed;
};

class SectionTraceProperties : public ::testing::TestWithParam<TraceCase> {
 protected:
  struct Env {
    farmem::FarMemoryNode node;
    net::Transport net{&node, sim::CostModel::Default()};
    sim::SimClock clk;
  };

  // Replays a pseudo-random mixed trace (reads, writes, prefetches, hints)
  // and returns the final stats + clock.
  static std::pair<cache::SectionStats, uint64_t> Replay(const TraceCase& c, Env& env) {
    cache::SectionConfig config;
    config.name = c.name;
    config.structure = c.structure;
    config.line_bytes = c.line_bytes;
    config.size_bytes = static_cast<uint64_t>(c.line_bytes) * c.lines;
    config.ways = 4;
    auto section = cache::MakeSection(config, &env.net);
    support::Rng rng(c.seed);
    const uint64_t space = static_cast<uint64_t>(c.line_bytes) * c.lines * 16;
    for (int i = 0; i < 3000; ++i) {
      const uint64_t addr = rng.NextBelow(space);
      switch (rng.NextBelow(10)) {
        case 0:
          section->Prefetch(env.clk, addr, 8);
          break;
        case 1:
          section->EvictHint(env.clk, addr, 8);
          break;
        case 2:
          section->Access(env.clk, addr, 8, /*write=*/true);
          break;
        default:
          section->Access(env.clk, addr, 8, /*write=*/false);
          break;
      }
      EXPECT_LE(section->resident_lines(), c.lines) << "capacity violated at step " << i;
    }
    auto result = std::make_pair(section->stats(), env.clk.now_ns());
    section->Release(env.clk);
    EXPECT_EQ(section->resident_lines(), 0u);
    return result;
  }
};

TEST_P(SectionTraceProperties, CapacityNeverExceededAndReleaseEmpties) {
  Env env;
  Replay(GetParam(), env);
}

TEST_P(SectionTraceProperties, DeterministicReplay) {
  Env e1, e2;
  const auto [s1, t1] = Replay(GetParam(), e1);
  const auto [s2, t2] = Replay(GetParam(), e2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(s1.lines.hits, s2.lines.hits);
  EXPECT_EQ(s1.lines.misses, s2.lines.misses);
  EXPECT_EQ(s1.evictions, s2.evictions);
  EXPECT_EQ(s1.writebacks, s2.writebacks);
  EXPECT_EQ(s1.bytes_fetched, s2.bytes_fetched);
}

TEST_P(SectionTraceProperties, AccountingConsistent) {
  Env env;
  const auto [stats, total_ns] = Replay(GetParam(), env);
  // Every demand miss and prefetch fetched exactly one line (one-sided,
  // whole lines; no full-line writes in this trace).
  EXPECT_EQ(stats.bytes_fetched,
            (stats.lines.misses + stats.prefetches_issued) *
                static_cast<uint64_t>(GetParam().line_bytes));
  // Time and overhead are sane: overhead is bounded by elapsed time.
  EXPECT_LE(stats.runtime_ns, total_ns);
  EXPECT_LE(stats.stall_ns, total_ns);
  // Evictions never exceed insertions.
  EXPECT_LE(stats.evictions, stats.lines.misses + stats.prefetches_issued);
}

std::vector<TraceCase> MakeCases() {
  std::vector<TraceCase> cases;
  int idx = 0;
  for (const auto structure :
       {cache::SectionStructure::kDirectMapped, cache::SectionStructure::kSetAssociative,
        cache::SectionStructure::kFullyAssociative}) {
    for (const uint32_t line : {64u, 1024u}) {
      for (const uint64_t seed : {1ULL, 77ULL}) {
        const char* sname = structure == cache::SectionStructure::kDirectMapped ? "direct"
                            : structure == cache::SectionStructure::kSetAssociative
                                ? "setassoc"
                                : "fullassoc";
        cases.push_back(TraceCase{std::string(sname) + "_line" + std::to_string(line) +
                                      "_seed" + std::to_string(seed),
                                  structure, line, 32, seed});
        ++idx;
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, SectionTraceProperties,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<TraceCase>& info) {
                           return info.param.name;
                         });

TEST(SwapTraceProperties, DeterministicUnderRandomTraffic) {
  auto run = [] {
    farmem::FarMemoryNode node;
    net::Transport net(&node, sim::CostModel::Default());
    sim::SimClock clk;
    cache::SwapSection swap(32 * 4096, &net,
                            std::make_unique<cache::ReadaheadPrefetcher>());
    support::Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
      swap.Access(clk, rng.NextBelow(256 * 4096), 8, rng.NextBelow(4) == 0);
      EXPECT_LE(swap.resident_pages(), 32u);
    }
    return clk.now_ns();
  };
  EXPECT_EQ(run(), run());
}

TEST(RemotePtrProperties, EncodeDecodeRoundTripsRandomValues) {
  support::Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const uint16_t section = static_cast<uint16_t>(rng.NextBelow(65536));
    const uint64_t offset = rng.NextBelow(1ULL << 48);
    const cache::RemotePtr p = cache::RemotePtr::Encode(section, offset);
    EXPECT_EQ(p.section(), section);
    EXPECT_EQ(p.offset(), offset);
    EXPECT_EQ(p.is_local(), section == 0);
  }
}

TEST(FaultInjectionProperties, ArbitraryFaultSchedulesPreserveResults) {
  // The failure-model contract (DESIGN.md): whatever faults the injector
  // throws at the transport, every run completes and computes the same
  // result as the fault-free run — faults cost time, never correctness.
  const auto w = workloads::BuildArraySum({.elems = 30'000, .epochs = 1});
  auto run = [&](const net::FaultPlan* plan) {
    auto world = pipeline::MakeWorld(pipeline::SystemKind::kMira, 1 << 20, {});
    if (plan != nullptr) {
      pipeline::AttachFaults(world, *plan);
    }
    interp::Interpreter interp(w.module.get(), world.backend.get());
    const uint64_t result = interp.Run("main").value();
    world.backend->Drain(interp.clock());
    return std::make_pair(result, interp.clock().now_ns());
  };
  const auto [clean_result, clean_ns] = run(nullptr);
  support::Rng rng(123);
  for (int trial = 0; trial < 8; ++trial) {
    net::FaultPlan plan;
    plan.seed = 1 + rng.NextBelow(1'000'000);
    for (size_t v = 0; v < net::kNumVerbs; ++v) {
      auto& cfg = plan.verbs[v];
      cfg.drop_probability = 0.3 * rng.NextDouble();
      cfg.timeout_probability = 0.3 * rng.NextDouble();
      cfg.tail_probability = 0.3 * rng.NextDouble();
      cfg.tail_multiplier = 1.0 + 4.0 * rng.NextDouble();
    }
    const uint64_t n_outages = rng.NextBelow(3);
    uint64_t at = rng.NextBelow(200'000);
    for (uint64_t o = 0; o < n_outages; ++o) {
      const uint64_t width = 50'000 + rng.NextBelow(400'000);
      plan.outages.push_back(net::OutageWindow{at, at + width});
      at += width + 100'000 + rng.NextBelow(500'000);
    }
    if (rng.NextBelow(2) == 0) {
      plan.degraded.push_back(
          net::DegradedWindow{0, UINT64_MAX, 0.2 + 0.8 * rng.NextDouble()});
    }
    const auto [result, sim_ns] = run(&plan);
    EXPECT_EQ(result, clean_result) << "trial " << trial;
    EXPECT_GE(sim_ns, clean_ns) << "trial " << trial;
  }
}

TEST(FaultInjectionProperties, ChecksumLedgerSurvivesArbitrarySilentFaultSchedules) {
  // The integrity contract (DESIGN.md "Integrity model"): for any seeded
  // schedule of silent faults — bit flips, stale reads, replayed
  // writebacks, torn drains — the run completes, computes the fault-free
  // result, and every detected corruption episode is healed.
  const auto w = workloads::BuildArraySum({.elems = 30'000, .epochs = 1});
  auto run = [&](const net::FaultPlan* plan) {
    auto world = pipeline::MakeWorld(pipeline::SystemKind::kMira, 1 << 20, {});
    if (plan != nullptr) {
      pipeline::AttachFaults(world, *plan);
    }
    pipeline::AttachIntegrity(world);
    interp::Interpreter interp(w.module.get(), world.backend.get());
    const uint64_t result = interp.Run("main").value();
    world.backend->Drain(interp.clock());
    return std::make_pair(result, world.integrity->stats());
  };
  const auto [clean_result, clean_stats] = run(nullptr);
  EXPECT_EQ(clean_stats.detected, 0u);
  support::Rng rng(321);
  for (int trial = 0; trial < 8; ++trial) {
    net::FaultPlan plan;
    plan.seed = 1 + rng.NextBelow(1'000'000);
    for (size_t v = 0; v < net::kNumVerbs; ++v) {
      auto& cfg = plan.verbs[v];
      cfg.corrupt_probability = 0.1 * rng.NextDouble();
      cfg.stale_probability = 0.1 * rng.NextDouble();
      cfg.duplicate_probability = 0.1 * rng.NextDouble();
      if (rng.NextBelow(2) == 0) {
        cfg.drop_probability = 0.2 * rng.NextDouble();  // mix in hard faults
      }
    }
    plan.torn_writeback_probability = rng.NextDouble();
    const auto [result, stats] = run(&plan);
    EXPECT_EQ(result, clean_result) << "trial " << trial;
    EXPECT_EQ(stats.healed, stats.detected) << "trial " << trial;
    EXPECT_EQ(stats.quarantined, 0u) << "trial " << trial;
  }
}

TEST(IntegrityProperties, DuplicatedWritebackReplayIsAlwaysANoOp) {
  // For arbitrary commit/writeback interleavings, replaying any writeback
  // frame (duplicate delivery) never changes the ledger verdict: the next
  // verified fetch of that granule is clean and nothing is detected.
  farmem::FarMemoryNode node;
  sim::SimClock clk;
  integrity::IntegrityManager integ(&node);
  const uint64_t base = node.AllocRange(64 * 1024).take();
  support::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t addr = base + (rng.NextBelow(64 * 1024 - 8) & ~7ULL);
    uint64_t bits = rng.NextBelow(UINT64_MAX);
    node.CopyIn(addr, &bits, sizeof(bits));
    integ.CommitStore(addr, 8);
    net::Delivery clean_frame;
    ASSERT_TRUE(integ.CommitWriteback(clk, addr, 8, clean_frame));
    const int replays = static_cast<int>(rng.NextBelow(3));
    for (int r = 0; r < replays; ++r) {
      net::Delivery dup;
      dup.duplicate = true;
      ASSERT_TRUE(integ.CommitWriteback(clk, addr, 8, dup));
    }
    ASSERT_EQ(integ.VerifyFetch(clk, addr, addr, 8, net::Delivery{}),
              integrity::FetchVerdict::kClean)
        << "step " << i;
    uint64_t back = 0;
    node.CopyOut(addr, &back, sizeof(back));
    ASSERT_EQ(back, bits) << "step " << i;
  }
  EXPECT_EQ(integ.stats().detected, 0u);
  EXPECT_GT(integ.stats().replays_suppressed, 0u);
  EXPECT_TRUE(integ.fatal().ok());
}

// ---- FaultPlan JSON round-trip (chaos repro artifact format) ----

// A pseudo-random FaultPlan exercising every field: arbitrary verb subsets,
// probabilities across the double range (including awkward non-representable
// decimals), extreme u64 timestamps, and crash schedules with and without
// rejoins.
net::FaultPlan RandomPlan(support::Rng& rng) {
  net::FaultPlan plan;
  plan.seed = rng.NextU64();  // full 64-bit range — must survive JSON
  const double probs[] = {0.0, 1.0, 0.5, 0.1, 1.0 / 3.0, 0.02, 1e-12, 0.9999999999999999};
  auto pick_p = [&] { return probs[rng.NextBelow(sizeof(probs) / sizeof(probs[0]))]; };
  for (size_t i = 0; i < net::kNumVerbs; ++i) {
    if (rng.NextBelow(2) == 0) {
      continue;  // leave this verb at defaults (omitted from JSON)
    }
    net::VerbFaultConfig& v = plan.verbs[i];
    v.drop_probability = pick_p();
    v.timeout_probability = pick_p();
    v.tail_probability = pick_p();
    v.tail_multiplier = 1.0 + 0.1 * static_cast<double>(rng.NextBelow(100));
    v.corrupt_probability = pick_p();
    v.stale_probability = pick_p();
    v.duplicate_probability = pick_p();
  }
  for (uint64_t i = 0, n = rng.NextBelow(4); i < n; ++i) {
    const uint64_t start = rng.NextBelow(1'000'000'000);
    plan.outages.push_back(net::OutageWindow{start, start + 1 + rng.NextBelow(1'000'000)});
  }
  if (rng.NextBelow(4) == 0) {
    plan.degraded.push_back(net::DegradedWindow{0, UINT64_MAX, 0.25});  // whole-run window
  }
  for (uint64_t i = 0, n = rng.NextBelow(3); i < n; ++i) {
    const uint64_t start = rng.NextBelow(1'000'000'000);
    plan.degraded.push_back(
        net::DegradedWindow{start, start + 1 + rng.NextBelow(1'000'000), pick_p()});
  }
  if (rng.NextBelow(2) == 0) {
    plan.torn_writeback_probability = pick_p();
  }
  for (uint64_t i = 0, n = rng.NextBelow(4); i < n; ++i) {
    net::NodeCrashEvent c;
    c.node = static_cast<int>(rng.NextBelow(8));
    c.crash_ns = rng.NextBelow(1'000'000'000);
    c.rejoin_ns = rng.NextBelow(2) == 0 ? 0 : c.crash_ns + 1 + rng.NextBelow(1'000'000);
    plan.node_crashes.push_back(c);
  }
  return plan;
}

TEST(FaultPlanJsonProperties, RandomPlansRoundTripBitExactly) {
  support::Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const net::FaultPlan plan = RandomPlan(rng);
    const std::string text = plan.ToJson().Dump();
    auto back = net::FaultPlan::FromJsonText(text);
    ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << text;
    EXPECT_TRUE(back.value() == plan) << "trial " << trial << "\n" << text;
    // Serialization is deterministic through a parse cycle too (pretty or
    // compact — whitespace never reaches the values).
    auto doc = support::JsonValue::Parse(plan.ToJson().Dump(2));
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value().Dump(), text);
  }
}

TEST(FaultPlanJsonProperties, EveryFactoryScenarioRoundTrips) {
  const net::FaultPlan scenarios[] = {
      net::FaultPlan::Clean(),
      net::FaultPlan::Lossy(7),
      net::FaultPlan::BurstyOutage(7, 10'000, 5'000, 50'000, 4),
      net::FaultPlan::DegradedBandwidth(7),
      net::FaultPlan::SilentCorruption(7),
      net::FaultPlan::TornWriteback(7),
      net::FaultPlan::NodeCrash(7, 1, 25'000, 90'000),
      net::FaultPlan::RollingCrashes(7, 3, 4, 20'000, 100'000, 40'000),
  };
  for (const net::FaultPlan& plan : scenarios) {
    auto back = net::FaultPlan::FromJsonText(plan.ToJson().Dump());
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back.value() == plan);
  }
}

TEST(FaultPlanJsonProperties, TolerantLoaderKeepsDefaultsAndRejectsGarbage) {
  // Hand-written minimal plan: unstated fields keep their defaults.
  auto plan = net::FaultPlan::FromJsonText(
      R"({"seed": 42, "verbs": {"read.sync": {"drop_probability": 0.5}}})");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().seed, 42u);
  EXPECT_EQ(plan.value().verb(net::Verb::kReadSync).drop_probability, 0.5);
  EXPECT_EQ(plan.value().verb(net::Verb::kReadSync).tail_multiplier, 1.0);
  EXPECT_TRUE(plan.value().outages.empty());

  EXPECT_FALSE(net::FaultPlan::FromJsonText("[1,2]").ok());         // not an object
  EXPECT_FALSE(net::FaultPlan::FromJsonText("{").ok());             // malformed
  EXPECT_FALSE(net::FaultPlan::FromJsonText(R"({"verbs": {"bogus.verb": {}}})").ok());
}

TEST(MtSchedulerProperties, MakespanBoundsHold) {
  // For independent threads, makespan == max per-thread total; with one
  // fully-serialized resource, makespan == sum of all busy time.
  support::Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const int threads = 2 + static_cast<int>(rng.NextBelow(6));
    std::vector<uint64_t> totals(static_cast<size_t>(threads), 0);
    sim::MtScheduler independent;
    for (int t = 0; t < threads; ++t) {
      auto steps = std::make_shared<int>(1 + static_cast<int>(rng.NextBelow(20)));
      const uint64_t cost = 10 + rng.NextBelow(90);
      totals[static_cast<size_t>(t)] = static_cast<uint64_t>(*steps) * cost;
      independent.AddThread([steps, cost](sim::SimClock& clk) {
        clk.Advance(cost);
        return --*steps > 0;
      });
    }
    const uint64_t expected = *std::max_element(totals.begin(), totals.end());
    EXPECT_EQ(independent.RunToCompletion(), expected);
  }
}

TEST(MtSchedulerProperties, SerializedResourceMakespanIsSum) {
  support::Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    const int threads = 2 + static_cast<int>(rng.NextBelow(5));
    sim::SerialResource lock;
    sim::MtScheduler sched;
    uint64_t total_busy = 0;
    for (int t = 0; t < threads; ++t) {
      auto steps = std::make_shared<int>(1 + static_cast<int>(rng.NextBelow(10)));
      const uint64_t cost = 10 + rng.NextBelow(50);
      total_busy += static_cast<uint64_t>(*steps) * cost;
      sched.AddThread([steps, cost, &lock](sim::SimClock& clk) {
        clk.AdvanceTo(lock.Acquire(clk.now_ns(), cost));
        return --*steps > 0;
      });
    }
    EXPECT_EQ(sched.RunToCompletion(), total_busy);
  }
}

}  // namespace
}  // namespace mira
