// FarMemoryCluster suite: chunk-granular placement and replication, the
// crash/rejoin membership model, the lease-based failure detector, the
// failover ladder (promotion, re-replication, quarantine), and the headline
// compatibility guarantee — a single-node, no-crash cluster is bit-identical
// to not having a cluster at all. Suite names contain Cluster/Failover so
// the CI TSAN job's filter picks them up.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/cache/section.h"
#include "src/farmem/cluster.h"
#include "src/farmem/far_memory_node.h"
#include "src/net/fault_injector.h"
#include "src/net/transport.h"
#include "src/sim/clock.h"
#include "src/support/status.h"

namespace mira {
namespace {

using farmem::FarMemoryCluster;
using farmem::FarMemoryNode;
using farmem::RemoteAddr;

constexpr uint64_t kChunk = FarMemoryNode::kChunkSize;

farmem::ClusterConfig Config(int nodes, int replicas) {
  farmem::ClusterConfig config;
  config.num_nodes = nodes;
  config.replicas = replicas;
  return config;
}

// Address of the first chunk whose primary is `node` under the ring rule.
RemoteAddr AddrOnPrimary(FarMemoryCluster& cluster, int node) {
  for (uint64_t chunk = 1; chunk < 64; ++chunk) {
    if (cluster.PrimaryOf(chunk * kChunk) == node) {
      return chunk * kChunk;
    }
  }
  ADD_FAILURE() << "no chunk primaried on node " << node;
  return 0;
}

TEST(ClusterPlacement, SingleNodeClusterHandsOutTheLoneNodeAddressSequence) {
  FarMemoryNode lone;
  FarMemoryNode seed;
  FarMemoryCluster cluster(&seed, Config(1, 0));
  for (uint64_t bytes : {100u, 64u, 4096u, 17u, 1u << 20}) {
    auto a = lone.AllocRange(bytes);
    auto b = cluster.AllocRange(bytes);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
}

TEST(ClusterPlacement, WritesFanOutToEveryHolderAndReadsComeBack) {
  FarMemoryNode seed;
  FarMemoryCluster cluster(&seed, Config(3, 1));
  auto addr = cluster.AllocRange(4096);
  ASSERT_TRUE(addr.ok());
  const uint64_t chunk = addr.value() >> FarMemoryCluster::kChunkShift;
  EXPECT_EQ(cluster.HolderCount(chunk), 2);  // primary + 1 replica

  std::vector<uint8_t> pattern(4096);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  cluster.CopyIn(addr.value(), pattern.data(), pattern.size());
  EXPECT_EQ(cluster.stats().replicated_write_bytes, pattern.size());

  std::vector<uint8_t> got(4096);
  cluster.CopyOut(addr.value(), got.data(), got.size());
  EXPECT_EQ(got, pattern);

  // Every live holder carries the same bytes: crash the primary and the
  // read must come back identical from the replica.
  const int primary = cluster.PrimaryOf(addr.value());
  cluster.CrashNode(primary, 1'000);
  std::fill(got.begin(), got.end(), 0);
  cluster.CopyOut(addr.value(), got.data(), got.size());
  EXPECT_EQ(got, pattern);
  EXPECT_EQ(cluster.stats().crashes, 1u);
  EXPECT_EQ(cluster.stats().lost_reads, 0u);
}

TEST(ClusterPlacement, CrashedNodeArenaIsPoisonedSoWrongRoutingIsVisible) {
  FarMemoryNode seed;
  FarMemoryCluster cluster(&seed, Config(2, 0));  // no replicas
  const RemoteAddr addr = AddrOnPrimary(cluster, 1);
  const uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  cluster.CopyIn(addr, data, sizeof(data));
  cluster.CrashNode(1, 1'000);
  // No live holder: the read lands on the scrubbed dead primary and is
  // counted as lost — and the poison fill makes the wrong bytes obvious.
  uint8_t got[8] = {0};
  cluster.CopyOut(addr, got, sizeof(got));
  EXPECT_EQ(got[0], FarMemoryCluster::kCrashPoison);
  EXPECT_EQ(cluster.stats().lost_reads, 1u);
}

TEST(FailoverLadder, PromotesSurvivorAndRereplicates) {
  FarMemoryNode seed;
  FarMemoryCluster cluster(&seed, Config(3, 1));
  auto addr = cluster.AllocRange(4096);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> pattern(4096, 0x5A);
  cluster.CopyIn(addr.value(), pattern.data(), pattern.size());

  const uint64_t chunk = addr.value() >> FarMemoryCluster::kChunkShift;
  const int primary = cluster.PrimaryOf(addr.value());
  cluster.CrashNode(primary, 1'000);
  EXPECT_TRUE(cluster.Failover(chunk).ok());
  EXPECT_EQ(cluster.stats().failovers, 1u);
  EXPECT_NE(cluster.PrimaryOf(addr.value()), primary);
  EXPECT_EQ(cluster.HolderCount(chunk), 1);
  ASSERT_TRUE(cluster.has_pending_rereplication());

  FarMemoryCluster::RereplicationJob job;
  while (cluster.RereplicateNext(&job)) {
  }
  EXPECT_EQ(cluster.HolderCount(chunk), 2);
  EXPECT_GE(cluster.stats().rereplicated_bytes, pattern.size());
  std::vector<uint8_t> got(4096);
  cluster.CopyOut(addr.value(), got.data(), got.size());
  EXPECT_EQ(got, pattern);
  // A second failover on the (now healthy) chunk is a no-op.
  EXPECT_TRUE(cluster.Failover(chunk).ok());
  EXPECT_EQ(cluster.stats().failovers, 1u);
}

TEST(FailoverLadder, QuarantinesWhenEveryHolderDied) {
  FarMemoryNode seed;
  FarMemoryCluster cluster(&seed, Config(2, 1));
  auto addr = cluster.AllocRange(256);
  ASSERT_TRUE(addr.ok());
  const uint64_t chunk = addr.value() >> FarMemoryCluster::kChunkShift;
  ASSERT_EQ(cluster.HolderCount(chunk), 2);
  cluster.CrashNode(0, 1'000);
  cluster.CrashNode(1, 2'000);
  const auto s = cluster.Failover(chunk);
  EXPECT_EQ(s.code(), support::ErrorCode::kDataLoss);
  EXPECT_TRUE(cluster.ChunkQuarantined(chunk));
  EXPECT_EQ(cluster.stats().quarantined_chunks, 1u);
  EXPECT_EQ(cluster.stats().failovers, 0u);
}

// The accounting identity the bench scenarios also assert: each crash that
// touches a chunk resolves to exactly one of {failover, quarantine}.
TEST(FailoverLadder, FailoversPlusQuarantinedReconcileWithInjectedCrashes) {
  {  // survivable: one crash -> one failover, nothing quarantined
    FarMemoryNode seed;
    FarMemoryCluster cluster(&seed, Config(3, 1));
    auto addr = cluster.AllocRange(256);
    ASSERT_TRUE(addr.ok());
    const uint64_t chunk = addr.value() >> FarMemoryCluster::kChunkShift;
    cluster.CrashNode(cluster.PrimaryOf(addr.value()), 1'000);
    EXPECT_TRUE(cluster.Failover(chunk).ok());
    EXPECT_EQ(cluster.stats().failovers + cluster.stats().quarantined_chunks, 1u);
  }
  {  // unsurvivable: both holders crash -> no failover, one quarantine
    FarMemoryNode seed;
    FarMemoryCluster cluster(&seed, Config(2, 1));
    auto addr = cluster.AllocRange(256);
    ASSERT_TRUE(addr.ok());
    const uint64_t chunk = addr.value() >> FarMemoryCluster::kChunkShift;
    cluster.CrashNode(0, 1'000);
    cluster.CrashNode(1, 2'000);
    EXPECT_FALSE(cluster.Failover(chunk).ok());
    EXPECT_EQ(cluster.stats().failovers + cluster.stats().quarantined_chunks, 1u);
  }
}

TEST(FailoverLadder, RejoinedNodeComesBackEmptyAndIsRefilled) {
  FarMemoryNode seed;
  FarMemoryCluster cluster(&seed, Config(3, 1));
  auto addr = cluster.AllocRange(4 * kChunk);  // several chunks
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> pattern(4 * kChunk, 0x33);
  cluster.CopyIn(addr.value(), pattern.data(), pattern.size());

  cluster.CrashNode(1, 1'000);
  cluster.RejoinNode(1);
  EXPECT_EQ(cluster.stats().rejoins, 1u);
  EXPECT_TRUE(cluster.NodeAlive(1));
  // The rejoined node was dropped from every placement entry (its data is
  // gone) — re-replication restores full redundancy.
  FarMemoryCluster::RereplicationJob job;
  while (cluster.RereplicateNext(&job)) {
  }
  const uint64_t first = addr.value() >> FarMemoryCluster::kChunkShift;
  for (uint64_t chunk = first; chunk < first + 4; ++chunk) {
    EXPECT_EQ(cluster.HolderCount(chunk), 2) << "chunk " << chunk;
    EXPECT_FALSE(cluster.ChunkQuarantined(chunk));
  }
  std::vector<uint8_t> got(pattern.size());
  cluster.CopyOut(addr.value(), got.data(), got.size());
  EXPECT_EQ(got, pattern);
  EXPECT_EQ(cluster.stats().quarantined_chunks, 0u);
}

// Satellite regression: a rejoin while the re-replication queue is
// NON-empty must neither double-replicate (the rejoin re-queues chunks
// Failover already queued — entries are deduped) nor strand an
// under-replicated chunk (every chunk that lost a copy is healed exactly
// once by the drain that follows).
TEST(FailoverLadder, RejoinMidDrainNeitherDoubleReplicatesNorStrands) {
  FarMemoryNode seed;
  FarMemoryCluster cluster(&seed, Config(3, 1));
  auto addr = cluster.AllocRange(6 * kChunk);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> pattern(6 * kChunk);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i * 13 + 5);
  }
  cluster.CopyIn(addr.value(), pattern.data(), pattern.size());

  const uint64_t first = addr.value() >> FarMemoryCluster::kChunkShift;
  const uint64_t last = (addr.value() + pattern.size() - 1) >> FarMemoryCluster::kChunkShift;
  // Under the ring rule holders are [c % 3, (c+1) % 3]; count the chunks
  // node 1 holds a copy of — each must be healed exactly once.
  int expect_heals = 0;
  for (uint64_t chunk = first; chunk <= last; ++chunk) {
    const int primary = cluster.PrimaryOf(chunk << FarMemoryCluster::kChunkShift);
    if (primary == 1 || (primary + 1) % 3 == 1) {
      ++expect_heals;
    }
  }
  ASSERT_GT(expect_heals, 1);

  cluster.CrashNode(1, 1'000);
  for (uint64_t chunk = first; chunk <= last; ++chunk) {
    ASSERT_TRUE(cluster.Failover(chunk).ok());  // no-op where 1 wasn't primary
  }
  ASSERT_TRUE(cluster.has_pending_rereplication());

  // Partial drain, then the rejoin lands MID-drain and re-queues every
  // still-under-replicated chunk on top of the queue's existing entries.
  FarMemoryCluster::RereplicationJob job;
  int heals = 0;
  ASSERT_TRUE(cluster.RereplicateNext(&job));
  ++heals;
  cluster.RejoinNode(1);
  while (cluster.RereplicateNext(&job)) {
    ++heals;
  }

  EXPECT_EQ(heals, expect_heals);
  EXPECT_EQ(cluster.stats().rereplicated_chunks, static_cast<uint64_t>(expect_heals));
  for (uint64_t chunk = first; chunk <= last; ++chunk) {
    EXPECT_EQ(cluster.HolderCount(chunk), 2) << "chunk " << chunk;
    EXPECT_FALSE(cluster.ChunkQuarantined(chunk)) << "chunk " << chunk;
  }
  EXPECT_EQ(cluster.stats().quarantined_chunks, 0u);
  std::vector<uint8_t> got(pattern.size());
  cluster.CopyOut(addr.value(), got.data(), got.size());
  EXPECT_EQ(got, pattern);
  EXPECT_FALSE(cluster.has_pending_rereplication());
}

// Satellite regression: rejoining a node whose chunk's only OTHER holder is
// also dead must quarantine the chunk, not "heal" it by copying the dead
// holder's poisoned arena into a live target (which would silently revive
// lost data and serve poison with lost_reads == 0).
TEST(FailoverLadder, RejoinWithEveryOtherHolderDeadQuarantinesInsteadOfRevivingPoison) {
  FarMemoryNode seed;
  FarMemoryCluster cluster(&seed, Config(3, 1));
  // Chunk 1's ring holders are [1, 2].
  const uint64_t chunk = 1;
  const RemoteAddr addr = chunk * kChunk;
  ASSERT_EQ(cluster.PrimaryOf(addr), 1);
  std::vector<uint8_t> pattern(512, 0x6B);
  cluster.CopyIn(addr, pattern.data(), pattern.size());
  ASSERT_EQ(cluster.HolderCount(chunk), 2);

  // Both holders die before any verb runs a failover; then the original
  // primary rejoins (empty) while holders still names the dead replica.
  cluster.CrashNode(1, 1'000);
  cluster.CrashNode(2, 2'000);
  cluster.RejoinNode(1);
  // Dropping the rejoined node left a dead successor as "primary": that is
  // a pending failover, not a resolved promotion.
  EXPECT_EQ(cluster.stats().rejoin_promotions, 0u);
  ASSERT_TRUE(cluster.has_pending_rereplication());

  FarMemoryCluster::RereplicationJob job;
  int heals = 0;
  while (cluster.RereplicateNext(&job)) {
    ++heals;
  }
  // Nothing to copy FROM: the chunk is lost and must say so.
  EXPECT_EQ(heals, 0);
  EXPECT_EQ(cluster.stats().rereplicated_chunks, 0u);
  EXPECT_TRUE(cluster.ChunkQuarantined(chunk));
  EXPECT_EQ(cluster.stats().quarantined_chunks, 1u);
  EXPECT_EQ(cluster.HolderCount(chunk), 1);

  // The loss stays visible: reads serve the scrubbed arena and count.
  std::vector<uint8_t> got(pattern.size());
  cluster.CopyOut(addr, got.data(), got.size());
  EXPECT_EQ(got[0], FarMemoryCluster::kCrashPoison);
  EXPECT_EQ(cluster.stats().lost_reads, 1u);
}

// ---- Transport-driven timing plane ----

struct ClusterWorld {
  FarMemoryNode node;
  net::Transport net{&node, sim::CostModel::Default()};
  std::unique_ptr<FarMemoryCluster> cluster;
  std::unique_ptr<net::FaultInjector> inj;
  sim::SimClock clk;

  ClusterWorld(int nodes, int replicas, net::FaultPlan plan) {
    cluster = std::make_unique<FarMemoryCluster>(&node, Config(nodes, replicas));
    net.SetCluster(cluster.get());
    inj = std::make_unique<net::FaultInjector>(std::move(plan));
    net.SetFaultInjector(inj.get());
    clk.set_tid(sim::AllocateTid());
  }
};

TEST(ClusterTransport, LeaseDetectionChargesTheFirstVerbOnly) {
  const uint64_t crash_ns = 23'000;
  ClusterWorld w(2, 1, net::FaultPlan::NodeCrash(1, /*node=*/1, crash_ns));
  const RemoteAddr addr = AddrOnPrimary(*w.cluster, 1);
  w.clk.AdvanceTo(30'000);  // past the crash, before the lease expires

  uint8_t buf[64] = {0};
  auto s = w.net.TryReadSync(w.clk, addr, buf, sizeof(buf));
  EXPECT_EQ(s.code(), support::ErrorCode::kNodeFailed);
  // Lease granted at the last heartbeat before the crash (t=20k) runs to
  // 20k + 50k = 70k: the first verb waits out the remnant.
  EXPECT_EQ(w.cluster->DetectionDeadlineNs(1), 70'000u);
  EXPECT_EQ(w.clk.now_ns(), 70'000u);
  EXPECT_EQ(w.net.fault_stats().failover_wait_ns, 40'000u);
  EXPECT_EQ(w.net.fault_stats().node_failures, 1u);

  // Later verbs fail fast: detection already happened, nothing more waits.
  s = w.net.TryReadSync(w.clk, addr, buf, sizeof(buf));
  EXPECT_EQ(s.code(), support::ErrorCode::kNodeFailed);
  EXPECT_EQ(w.clk.now_ns(), 70'000u);
  EXPECT_EQ(w.net.fault_stats().failover_wait_ns, 40'000u);
  EXPECT_EQ(w.net.fault_stats().node_failures, 2u);
  EXPECT_EQ(w.cluster->stats().detections, 1u);
}

TEST(ClusterTransport, RecoverNodeFailurePromotesAndReissues) {
  ClusterWorld w(3, 1, net::FaultPlan::NodeCrash(1, /*node=*/1, 10'000));
  const RemoteAddr addr = AddrOnPrimary(*w.cluster, 1);
  const uint8_t data[64] = {9, 9, 9};
  w.cluster->CopyIn(addr, data, sizeof(data));
  w.clk.AdvanceTo(100'000);  // lease long expired

  uint8_t buf[64] = {0};
  auto s = w.net.TryReadSync(w.clk, addr, buf, sizeof(buf));
  ASSERT_EQ(s.code(), support::ErrorCode::kNodeFailed);
  ASSERT_TRUE(w.net.RecoverNodeFailure(w.clk, addr, sizeof(buf)).ok());
  EXPECT_EQ(w.cluster->stats().failovers, 1u);
  // The re-issued verb now targets the promoted survivor and succeeds.
  s = w.net.TryReadSync(w.clk, addr, buf, sizeof(buf));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(std::memcmp(buf, data, sizeof(data)), 0);
  // Recovery also topped the replication factor back up in the background.
  EXPECT_GT(w.cluster->stats().rereplicated_chunks, 0u);
}

// Satellite: a far-node outage overlapping a node crash on the same verb
// must charge the lease-detection wait ONLY — never retry backoff on top.
// CheckTarget runs before verb admission, so the dead-node verdict wins.
TEST(ClusterTransport, StackedOutageAndCrashDoesNotDoubleChargeBackoff) {
  uint64_t last_now = 0;
  uint64_t last_wait = 0;
  for (const uint64_t seed : {1u, 7u, 42u}) {
    net::FaultPlan plan = net::FaultPlan::NodeCrash(seed, /*node=*/1, 23'000);
    plan.outages.push_back(net::OutageWindow{20'000, 200'000});
    ClusterWorld w(2, 1, plan);
    const RemoteAddr addr = AddrOnPrimary(*w.cluster, 1);
    w.clk.AdvanceTo(30'000);  // inside the outage AND past the crash

    uint8_t buf[64] = {0};
    const auto s = w.net.TryReadSync(w.clk, addr, buf, sizeof(buf));
    EXPECT_EQ(s.code(), support::ErrorCode::kNodeFailed);
    const net::FaultStats& fs = w.net.fault_stats();
    // The only clock charge is the lease remnant; the outage/backoff
    // machinery never saw the verb.
    EXPECT_EQ(fs.failover_wait_ns, 40'000u);
    EXPECT_EQ(fs.backoff_ns, 0u);
    EXPECT_EQ(fs.lost_wait_ns, 0u);
    EXPECT_EQ(fs.unavailable, 0u);
    EXPECT_EQ(fs.outage_wait_ns, 0u);
    EXPECT_EQ(w.clk.now_ns(), 70'000u);
    // Deadline accounting is schedule-driven, not RNG-driven: every seed
    // lands on the identical timeline.
    if (last_now != 0) {
      EXPECT_EQ(w.clk.now_ns(), last_now);
      EXPECT_EQ(fs.failover_wait_ns, last_wait);
    }
    last_now = w.clk.now_ns();
    last_wait = fs.failover_wait_ns;
  }
}

// Satellite: TRIPLE-stacked events on one verb — an outage window, a silent
// corruption probability, and a node crash all covering the same read at the
// same instant. Precedence is pinned: CheckTarget runs before verb
// admission, so the dead-node verdict wins — the verb pays the lease
// remnant (failover_wait) exactly once and never reaches the outage/backoff
// machinery OR the corruption draw (dead nodes deliver nothing to taint).
TEST(ClusterTransport, TripleStackedOutageCorruptionAndCrashPaysFailoverWaitOnce) {
  for (const uint64_t seed : {1u, 7u, 42u}) {
    net::FaultPlan plan = net::FaultPlan::NodeCrash(seed, /*node=*/1, 23'000);
    plan.outages.push_back(net::OutageWindow{20'000, 200'000});
    plan.verb(net::Verb::kReadSync).corrupt_probability = 1.0;  // every delivery
    ClusterWorld w(2, 1, plan);
    const RemoteAddr addr = AddrOnPrimary(*w.cluster, 1);
    w.clk.AdvanceTo(30'000);  // inside the outage, past the crash

    uint8_t buf[64] = {0};
    auto s = w.net.TryReadSync(w.clk, addr, buf, sizeof(buf));
    EXPECT_EQ(s.code(), support::ErrorCode::kNodeFailed);
    const net::FaultStats& fs = w.net.fault_stats();
    EXPECT_EQ(fs.failover_wait_ns, 40'000u);  // lease remnant, paid once
    EXPECT_EQ(fs.backoff_ns, 0u);
    EXPECT_EQ(fs.lost_wait_ns, 0u);
    EXPECT_EQ(fs.unavailable, 0u);
    EXPECT_EQ(fs.corrupt_deliveries, 0u);  // nothing was delivered
    EXPECT_FALSE(w.net.last_delivery().any());
    EXPECT_EQ(w.clk.now_ns(), 70'000u);

    // A second verb on the same dead target fails fast: the detection wait
    // was charged exactly once, never per-verb.
    s = w.net.TryReadSync(w.clk, addr, buf, sizeof(buf));
    EXPECT_EQ(s.code(), support::ErrorCode::kNodeFailed);
    EXPECT_EQ(fs.failover_wait_ns, 40'000u);
    EXPECT_EQ(fs.node_failures, 2u);
    EXPECT_EQ(w.clk.now_ns(), 70'000u);
  }
}

// Regression for a schedule the chaos harness found (graph seed 36): a
// crash+rejoin cycle AND a later permanent crash all coming due in ONE verb
// gap (a long compute phase issues no verbs). SyncCluster must apply the
// membership changes in timestamp order and run the background healer
// between distinct event times — collapsing them into one batch lets the
// second crash kill the only live source for the chunk the rejoin just
// queued, losing data the real gap had ample time to re-replicate.
TEST(ClusterTransport, CrashRejoinCrashInOneVerbGapHealsBetweenEventTimes) {
  net::FaultPlan plan = net::FaultPlan::NodeCrash(1, /*node=*/1, 50'000, /*rejoin_ns=*/120'000);
  plan.node_crashes.push_back(net::NodeCrashEvent{/*node=*/0, 500'000, /*rejoin_ns=*/0});
  ClusterWorld w(3, 1, plan);

  // Chunk 3's ring holders are {0, 1}: exactly the pair the two crashes
  // hit. Its data must ride out the whole schedule on re-replicated copies.
  const RemoteAddr victim = 3 * kChunk;
  const uint8_t pattern[64] = {0x5A, 0xA5, 0x5A};
  w.cluster->CopyIn(victim, pattern, sizeof(pattern));
  ASSERT_EQ(w.cluster->PrimaryOf(victim), 0);

  // No verbs until well past BOTH event times, then one verb on a chunk
  // primaried on the surviving node 2 applies the backlog.
  w.clk.AdvanceTo(600'000);
  uint8_t buf[64] = {0};
  const RemoteAddr live_addr = AddrOnPrimary(*w.cluster, 2);
  ASSERT_TRUE(w.net.TryReadSync(w.clk, live_addr, buf, sizeof(buf)).ok());

  // The rejoin-time heal ran BEFORE node 0's crash: nothing quarantined,
  // nothing lost, and chunk 0 still serves its bytes from a live holder.
  EXPECT_EQ(w.cluster->stats().quarantined_chunks, 0u);
  EXPECT_FALSE(w.cluster->ChunkQuarantined(3));
  EXPECT_GT(w.cluster->stats().rereplicated_chunks, 0u);
  uint8_t out[64] = {0};
  w.cluster->CopyOut(victim, out, sizeof(out));
  EXPECT_EQ(0, std::memcmp(out, pattern, sizeof(pattern)));
  EXPECT_EQ(w.cluster->stats().lost_reads, 0u);
}

TEST(ClusterTransport, CacheSectionLadderRecoversCrashedPrimary) {
  ClusterWorld w(3, 1, net::FaultPlan::NodeCrash(1, /*node=*/1, 5'000));
  cache::SectionConfig config;
  config.name = "t";
  config.structure = cache::SectionStructure::kDirectMapped;
  config.line_bytes = 64;
  config.size_bytes = 64 * 8;
  auto section = cache::MakeSection(config, &w.net);
  w.clk.AdvanceTo(100'000);
  // Touch a chunk primaried on the dead node: the reliable-fetch ladder's
  // kNodeFailed rung must fail over and re-issue, not abort.
  const RemoteAddr addr = AddrOnPrimary(*w.cluster, 1);
  section->Access(w.clk, addr, 8, /*write=*/false);
  section->Release(w.clk);
  EXPECT_GT(section->stats().node_failovers, 0u);
  EXPECT_GT(w.cluster->stats().failovers, 0u);
  EXPECT_EQ(w.cluster->stats().quarantined_chunks, 0u);
}

// The tentpole compatibility guarantee at verb granularity: a single-node
// cluster with no crash schedule adds zero timing and zero behavior — the
// transport with a cluster attached is bit-identical to one without.
TEST(ClusterTransport, SingleNodeNoCrashIsBitIdenticalToNoCluster) {
  FarMemoryNode plain_node;
  net::Transport plain(&plain_node, sim::CostModel::Default());
  sim::SimClock plain_clk;
  plain_clk.set_tid(sim::AllocateTid());

  ClusterWorld w(1, 0, net::FaultPlan::Clean());

  uint8_t buf[256] = {0};
  for (int i = 0; i < 8; ++i) {
    const RemoteAddr addr = kChunk + static_cast<uint64_t>(i) * 256;
    ASSERT_TRUE(plain.TryWriteSync(plain_clk, addr, buf, sizeof(buf)).ok());
    ASSERT_TRUE(w.net.TryWriteSync(w.clk, addr, buf, sizeof(buf)).ok());
    ASSERT_TRUE(plain.TryReadSync(plain_clk, addr, buf, sizeof(buf)).ok());
    ASSERT_TRUE(w.net.TryReadSync(w.clk, addr, buf, sizeof(buf)).ok());
  }
  EXPECT_EQ(plain_clk.now_ns(), w.clk.now_ns());
  EXPECT_EQ(plain.stats().messages, w.net.stats().messages);
  EXPECT_EQ(plain.stats().bytes_out, w.net.stats().bytes_out);
  EXPECT_EQ(plain.stats().bytes_in, w.net.stats().bytes_in);
  EXPECT_EQ(w.net.fault_stats().node_failures, 0u);
  EXPECT_EQ(w.net.fault_stats().failover_wait_ns, 0u);
}

}  // namespace
}  // namespace mira
