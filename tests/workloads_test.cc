// Workload programs: verify, execute on every backend, and confirm that
// all systems compute identical results (data plane is shared; only timing
// differs) while timing orders sanely.

#include <gtest/gtest.h>

#include "src/interp/interpreter.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/pipeline/world.h"
#include "src/workloads/workloads.h"

namespace mira {
namespace {

using interp::Interpreter;
using pipeline::MakeWorld;
using pipeline::SystemKind;
using workloads::Workload;

uint64_t RunOn(const Workload& w, SystemKind kind, uint64_t local_bytes, uint64_t* time_ns) {
  auto world = MakeWorld(kind, local_bytes);
  Interpreter interp(w.module.get(), world.backend.get());
  auto r = interp.Run(w.entry);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (time_ns != nullptr) {
    *time_ns = interp.clock().now_ns();
  }
  return r.ok() ? r.value() : 0;
}

class WorkloadVerify : public ::testing::Test {};

TEST(WorkloadVerify, GraphVerifies) {
  auto w = workloads::BuildGraphTraversal();
  EXPECT_TRUE(ir::VerifyModule(*w.module).ok());
  EXPECT_GT(w.footprint_bytes, 0u);
}

TEST(WorkloadVerify, GraphWithThirdArrayVerifies) {
  workloads::GraphParams p;
  p.third_array = true;
  auto w = workloads::BuildGraphTraversal(p);
  EXPECT_TRUE(ir::VerifyModule(*w.module).ok());
}

TEST(WorkloadVerify, ArraySumVerifies) {
  auto w = workloads::BuildArraySum();
  EXPECT_TRUE(ir::VerifyModule(*w.module).ok());
}

TEST(WorkloadVerify, DataFrameVerifies) {
  auto w = workloads::BuildDataFrame();
  EXPECT_TRUE(ir::VerifyModule(*w.module).ok());
}

TEST(WorkloadVerify, Gpt2Verifies) {
  workloads::Gpt2Params p;
  p.layers = 2;
  p.d_model = 16;
  p.tokens = 4;
  auto w = workloads::BuildGpt2(p);
  EXPECT_TRUE(ir::VerifyModule(*w.module).ok()) << ir::PrintModule(*w.module);
}

TEST(WorkloadVerify, McfVerifies) {
  auto w = workloads::BuildMcf();
  EXPECT_TRUE(ir::VerifyModule(*w.module).ok());
}

struct SmallWorkloadCase {
  std::string name;
  Workload (*build)();
};

Workload SmallGraph() {
  workloads::GraphParams p;
  p.num_edges = 4000;
  p.num_nodes = 1000;
  p.epochs = 2;
  return workloads::BuildGraphTraversal(p);
}
Workload SmallArraySum() {
  workloads::ArraySumParams p;
  p.elems = 20'000;
  return workloads::BuildArraySum(p);
}
Workload SmallDataFrame() {
  workloads::DataFrameParams p;
  p.rows = 5000;
  return workloads::BuildDataFrame(p);
}
Workload SmallGpt2() {
  workloads::Gpt2Params p;
  p.layers = 2;
  p.d_model = 24;
  p.tokens = 4;
  return workloads::BuildGpt2(p);
}
Workload SmallMcf() {
  workloads::McfParams p;
  p.nodes = 2000;
  p.arcs = 6000;
  p.iterations = 1;
  p.tree_steps = 2000;
  return workloads::BuildMcf(p);
}

class WorkloadEquivalence : public ::testing::TestWithParam<SmallWorkloadCase> {};

TEST_P(WorkloadEquivalence, AllSystemsComputeIdenticalResults) {
  const auto& param = GetParam();
  const Workload w = param.build();
  const uint64_t local = w.footprint_bytes / 2;
  uint64_t t_native = 0, t_fast = 0, t_leap = 0, t_mira = 0;
  const uint64_t native = RunOn(w, SystemKind::kNative, 0, &t_native);
  const uint64_t fast = RunOn(w, SystemKind::kFastSwap, local, &t_fast);
  const uint64_t leap = RunOn(w, SystemKind::kLeap, local, &t_leap);
  const uint64_t mira = RunOn(w, SystemKind::kMira, local, &t_mira);
  EXPECT_EQ(native, fast);
  EXPECT_EQ(native, leap);
  EXPECT_EQ(native, mira);
  // Native with full local memory is the fastest configuration.
  EXPECT_LT(t_native, t_fast);
  EXPECT_LT(t_native, t_leap);
  EXPECT_LT(t_native, t_mira);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, WorkloadEquivalence,
    ::testing::Values(SmallWorkloadCase{"graph", &SmallGraph},
                      SmallWorkloadCase{"arraysum", &SmallArraySum},
                      SmallWorkloadCase{"dataframe", &SmallDataFrame},
                      SmallWorkloadCase{"gpt2", &SmallGpt2},
                      SmallWorkloadCase{"mcf", &SmallMcf}),
    [](const ::testing::TestParamInfo<SmallWorkloadCase>& info) { return info.param.name; });

TEST(WorkloadDeterminism, SameSeedSameResultAndTime) {
  const Workload w = SmallGraph();
  uint64_t t1 = 0, t2 = 0;
  const uint64_t r1 = RunOn(w, SystemKind::kFastSwap, w.footprint_bytes / 2, &t1);
  const uint64_t r2 = RunOn(w, SystemKind::kFastSwap, w.footprint_bytes / 2, &t2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(t1, t2);
}

TEST(WorkloadAifm, RunsOnAifmWithMatchingResult) {
  const Workload w = SmallDataFrame();
  const uint64_t native = RunOn(w, SystemKind::kNative, 0, nullptr);
  const uint64_t aifm = RunOn(w, SystemKind::kAifm, w.footprint_bytes * 2, nullptr);
  EXPECT_EQ(native, aifm);
}

TEST(WorkloadAifm, McfMetadataExceedsSmallLocalMemory) {
  // MCF's 8-byte-element arrays give AIFM 2× metadata-to-data; below that
  // the allocation must fail (paper Fig 18: AIFM fails under full memory).
  const Workload w = SmallMcf();
  auto world = MakeWorld(SystemKind::kAifm, w.footprint_bytes / 2);
  Interpreter interp(w.module.get(), world.backend.get());
  auto r = interp.Run(w.entry);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), support::ErrorCode::kOutOfMemory);
}

}  // namespace
}  // namespace mira
