#include <gtest/gtest.h>

#include "src/farmem/far_memory_node.h"
#include "src/net/transport.h"

namespace mira::net {
namespace {

struct Env {
  farmem::FarMemoryNode node;
  Transport net{&node, sim::CostModel::Default()};
  sim::SimClock clk;
  const sim::CostModel& cost = sim::CostModel::Default();
};

TEST(Transport, ReadSyncCostsRttPlusTransfer) {
  Env e;
  const auto addr = e.node.AllocRange(4096).take();
  e.net.ReadSync(e.clk, addr, nullptr, 4096);
  const uint64_t expected =
      e.cost.per_message_cpu_ns + e.cost.TransferNs(4096) + e.cost.rdma_rtt_ns;
  EXPECT_EQ(e.clk.now_ns(), expected);
  EXPECT_EQ(e.net.stats().one_sided_reads, 1u);
  EXPECT_EQ(e.net.stats().bytes_in, 4096u);
}

TEST(Transport, AsyncReturnsCompletionWithoutBlocking) {
  Env e;
  const auto addr = e.node.AllocRange(4096).take();
  const uint64_t done = e.net.ReadAsync(e.clk, addr, nullptr, 4096);
  // Caller only paid the CPU issue cost.
  EXPECT_EQ(e.clk.now_ns(), e.cost.per_message_cpu_ns);
  EXPECT_GT(done, e.clk.now_ns());
}

TEST(Transport, DataPlaneCopiesWhenBuffersGiven) {
  Env e;
  const auto addr = e.node.AllocRange(64).take();
  const uint64_t v = 0xDEADBEEFCAFEF00DULL;
  e.net.WriteSync(e.clk, addr, &v, sizeof(v));
  uint64_t back = 0;
  e.net.ReadSync(e.clk, addr, &back, sizeof(back));
  EXPECT_EQ(back, v);
}

TEST(Transport, GatherChargesOneMessage) {
  Env e;
  const auto addr = e.node.AllocRange(1 << 16).take();
  // 8 segments of 64 B in one gather vs 8 individual reads.
  std::vector<Segment> segs;
  for (int i = 0; i < 8; ++i) {
    segs.push_back(Segment{addr + static_cast<uint64_t>(i) * 4096, nullptr, 64});
  }
  sim::SimClock gather_clk;
  e.net.ReadGatherSync(gather_clk, segs);
  Env e2;
  const auto addr2 = e2.node.AllocRange(1 << 16).take();
  sim::SimClock single_clk;
  for (int i = 0; i < 8; ++i) {
    e2.net.ReadSync(single_clk, addr2 + static_cast<uint64_t>(i) * 4096, nullptr, 64);
  }
  EXPECT_LT(gather_clk.now_ns(), single_clk.now_ns());
  EXPECT_EQ(e.net.stats().messages, 1u);
  EXPECT_EQ(e.net.stats().sg_segments, 8u);
}

TEST(Transport, TwoSidedCostsHandlerOnTop) {
  Env e;
  const auto addr = e.node.AllocRange(4096).take();
  sim::SimClock one, two;
  e.net.ReadSync(one, addr, nullptr, 256);
  e.net.TwoSidedReadSync(two, addr, nullptr, 256, 2);
  EXPECT_GT(two.now_ns(), one.now_ns());
}

TEST(Transport, SelectiveTwoSidedBeatsWholeOneSidedForBigStructs) {
  // The §4.7 decision: fetching 2 fields (16 B) two-sided beats fetching
  // the whole 4 KiB structure one-sided; for small structures the far-CPU
  // gather cost makes one-sided cheaper — exactly the planner's cost-aware
  // choice.
  // Fresh transports per measurement: the link's occupancy is shared state.
  sim::SimClock whole, partial;
  {
    Env e;
    const auto addr = e.node.AllocRange(4096).take();
    e.net.ReadSync(whole, addr, nullptr, 4096);
  }
  {
    Env e;
    const auto addr = e.node.AllocRange(4096).take();
    e.net.TwoSidedReadSync(partial, addr, nullptr, 16, 2);
  }
  EXPECT_LT(partial.now_ns(), whole.now_ns());
  sim::SimClock small_whole, small_partial;
  {
    Env e;
    const auto addr = e.node.AllocRange(4096).take();
    e.net.ReadSync(small_whole, addr, nullptr, 128);
  }
  {
    Env e;
    const auto addr = e.node.AllocRange(4096).take();
    e.net.TwoSidedReadSync(small_partial, addr, nullptr, 16, 2);
  }
  EXPECT_GT(small_partial.now_ns(), small_whole.now_ns());
}

TEST(Transport, RpcRoundTrip) {
  Env e;
  const uint64_t done = e.net.Rpc(e.clk, 64, 16, 10'000);
  EXPECT_EQ(done, e.clk.now_ns());
  EXPECT_GT(e.clk.now_ns(), 10'000u + e.cost.rdma_rtt_ns);
  EXPECT_EQ(e.net.stats().rpcs, 1u);
}

TEST(Transport, EmptyGatherAsyncIsANoOp) {
  Env e;
  const uint64_t before = e.clk.now_ns();
  const uint64_t done = e.net.ReadGatherAsync(e.clk, {});
  // No segments: no message, no stats, no time — just "done now".
  EXPECT_EQ(done, before);
  EXPECT_EQ(e.clk.now_ns(), before);
  EXPECT_EQ(e.net.stats().messages, 0u);
  EXPECT_EQ(e.net.stats().sg_segments, 0u);
  const auto st = e.net.TryReadGatherAsync(e.clk, {});
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value(), before);
}

TEST(Transport, ResetStatsOnlyResetsNetworkStats) {
  // Regression for the ResetStats contract: it clears the NetworkStats
  // snapshot and must NOT touch the telemetry registry's cumulative "net.*"
  // counters or the FaultStats.
  Env e;
  const auto addr = e.node.AllocRange(4096).take();
  net::FaultPlan plan;
  plan.seed = 2;
  plan.verb(net::Verb::kWriteSync).drop_probability = 1.0;
  net::FaultInjector inj(plan);
  e.net.SetFaultInjector(&inj);
  e.net.ReadSync(e.clk, addr, nullptr, 4096);
  EXPECT_FALSE(e.net.TryWriteSync(e.clk, addr, nullptr, 64).ok());
  // Verb/fault telemetry is batched per run; flush explicitly so the
  // registry reflects the accesses above while the transport is alive.
  e.net.FlushTelemetry();
  const uint64_t* reads = telemetry::Metrics().FindCounter("net.read.sync.count");
  ASSERT_NE(reads, nullptr);
  const uint64_t reads_before = *reads;
  EXPECT_GT(reads_before, 0u);
  const uint64_t drops_before = e.net.fault_stats().drops;
  EXPECT_GT(drops_before, 0u);
  EXPECT_EQ(e.net.stats().one_sided_reads, 1u);
  e.net.ResetStats();
  EXPECT_EQ(e.net.stats().one_sided_reads, 0u);
  EXPECT_EQ(e.net.stats().messages, 0u);
  EXPECT_EQ(*reads, reads_before);                      // registry untouched
  EXPECT_EQ(e.net.fault_stats().drops, drops_before);   // fault stats untouched
  e.net.ResetFaultStats();
  EXPECT_EQ(e.net.fault_stats().drops, 0u);
}

TEST(Transport, LinkOccupancySerializesBigTransfers) {
  Env e;
  const auto addr = e.node.AllocRange(1 << 20).take();
  // Two async megabyte reads issued back to back: the second completes
  // roughly one transfer-time later.
  const uint64_t d1 = e.net.ReadAsync(e.clk, addr, nullptr, 512 << 10);
  const uint64_t d2 = e.net.ReadAsync(e.clk, addr + (512 << 10), nullptr, 512 << 10);
  EXPECT_GT(d2, d1);
  EXPECT_NEAR(static_cast<double>(d2 - d1), static_cast<double>(e.cost.TransferNs(512 << 10)),
              1000.0);
}

}  // namespace
}  // namespace mira::net
