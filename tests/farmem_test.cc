#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>

#include "src/farmem/far_memory_node.h"
#include "src/support/rng.h"
#include "src/farmem/local_allocator.h"
#include "src/net/transport.h"

namespace mira::farmem {
namespace {

TEST(FarMemoryNode, AllocUniqueAndAligned) {
  FarMemoryNode node;
  auto a = node.AllocRange(100);
  auto b = node.AllocRange(100);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(a.value() % 64, 0u);
  EXPECT_GE(b.value(), a.value() + 128);  // rounded to 64
}

TEST(FarMemoryNode, CapacityEnforced) {
  FarMemoryNode node(1 << 20);
  auto big = node.AllocRange(2 << 20);
  EXPECT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), support::ErrorCode::kOutOfMemory);
  auto ok = node.AllocRange(1 << 19);
  EXPECT_TRUE(ok.ok());
}

TEST(FarMemoryNode, FreeListReuseAndCoalescing) {
  FarMemoryNode node;
  const RemoteAddr a = node.AllocRange(1024).take();
  const RemoteAddr b = node.AllocRange(1024).take();
  const RemoteAddr c = node.AllocRange(1024).take();
  (void)c;
  node.FreeRange(a, 1024);
  node.FreeRange(b, 1024);  // coalesces with a
  const RemoteAddr d = node.AllocRange(2048).take();
  EXPECT_EQ(d, a);  // reused the coalesced hole
}

// Property test: drive the node allocator with a deterministic random
// alloc/free workload and check it against an independent reference model
// after every step. The reference re-derives best-fit-lowest-address
// placement from its own book-keeping, so any divergence in hole selection,
// hole splitting, or free-list coalescing shows up as a wrong address or a
// broken invariant — not as silent fragmentation.
TEST(FarMemoryNode, AllocatorMatchesReferenceModelUnderRandomWorkload) {
  support::Rng rng(2026);
  FarMemoryNode node;
  std::map<RemoteAddr, uint64_t> live;  // addr -> rounded size
  std::map<RemoteAddr, uint64_t> holes;  // reference free list (coalesced)
  uint64_t live_bytes = 0;
  RemoteAddr bump = FarMemoryNode::kBaseAddr;

  auto check_invariants = [&](int step) {
    SCOPED_TRACE("step " + std::to_string(step));
    ASSERT_EQ(node.allocated_bytes(), live_bytes);
    const auto& free = node.free_ranges();
    ASSERT_EQ(free, holes);
    // Fully coalesced: no two adjacent entries touch (they would have been
    // merged) and none overlap.
    RemoteAddr prev_end = 0;
    for (const auto& [addr, size] : free) {
      ASSERT_GT(size, 0u);
      ASSERT_LT(prev_end, addr) << "free list not coalesced (or overlapping)";
      prev_end = addr + size;
      // Disjoint from every live allocation.
      auto it = live.lower_bound(addr);
      if (it != live.end()) {
        ASSERT_LE(addr + size, it->first);
      }
      if (it != live.begin()) {
        auto prev = std::prev(it);
        ASSERT_LE(prev->first + prev->second, addr);
      }
    }
  };

  for (int step = 0; step < 2000; ++step) {
    const bool do_free = !live.empty() && rng.NextBelow(100) < 45;
    if (do_free) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
      const auto [addr, size] = *it;
      node.FreeRange(addr, size);
      live.erase(it);
      live_bytes -= size;
      // Reference coalescing: merge with touching neighbors.
      auto [h, inserted] = holes.emplace(addr, size);
      ASSERT_TRUE(inserted);
      auto next = std::next(h);
      if (next != holes.end() && h->first + h->second == next->first) {
        h->second += next->second;
        holes.erase(next);
      }
      if (h != holes.begin()) {
        auto prev = std::prev(h);
        if (prev->first + prev->second == h->first) {
          prev->second += h->second;
          holes.erase(h);
        }
      }
    } else {
      // Sizes span sub-line, multi-line, and near-chunk requests so the
      // workload both splits holes and skips ones that are too small.
      const uint64_t raw = 1 + rng.NextBelow(rng.NextBelow(10) < 2 ? 300'000 : 4'000);
      const uint64_t size = (raw + 63) & ~63ULL;
      // Reference placement: best-fit over the holes, lowest address on
      // ties; bump allocation when no hole is large enough (hole-skipping —
      // a too-small hole is never split across into fresh arena).
      auto best = holes.end();
      for (auto it = holes.begin(); it != holes.end(); ++it) {
        if (it->second >= size && (best == holes.end() || it->second < best->second)) {
          best = it;
        }
      }
      RemoteAddr expect;
      if (best != holes.end()) {
        expect = best->first;
        const uint64_t remain = best->second - size;
        holes.erase(best);
        if (remain > 0) {
          holes[expect + size] = remain;
        }
      } else {
        expect = bump;
        bump += size;
      }
      const auto got = node.AllocRange(raw);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got.value(), expect) << "allocator diverged from reference at step " << step;
      ASSERT_TRUE(live.emplace(got.value(), size).second);
      live_bytes += size;
    }
    check_invariants(step);
  }

  // Free everything: the free list must collapse to one hole spanning the
  // whole touched arena, and the next allocation reuses its base.
  for (const auto& [addr, size] : live) {
    node.FreeRange(addr, size);
  }
  ASSERT_EQ(node.allocated_bytes(), 0u);
  ASSERT_EQ(node.free_ranges().size(), 1u);
  EXPECT_EQ(node.free_ranges().begin()->first, FarMemoryNode::kBaseAddr);
  EXPECT_EQ(node.free_ranges().begin()->second, bump - FarMemoryNode::kBaseAddr);
  EXPECT_EQ(node.AllocRange(64).take(), FarMemoryNode::kBaseAddr);
}

TEST(FarMemoryNode, DataRoundTripWithinChunk) {
  FarMemoryNode node;
  const RemoteAddr addr = node.AllocRange(256).take();
  uint8_t data[256];
  for (int i = 0; i < 256; ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  node.CopyIn(addr, data, sizeof(data));
  uint8_t back[256] = {};
  node.CopyOut(addr, back, sizeof(back));
  EXPECT_EQ(std::memcmp(data, back, sizeof(data)), 0);
}

TEST(FarMemoryNode, CopyAcrossChunkBoundary) {
  FarMemoryNode node;
  // Allocate a range spanning several 1 MiB chunks.
  const uint64_t size = 3 * FarMemoryNode::kChunkSize;
  const RemoteAddr base = node.AllocRange(size).take();
  // Write a pattern straddling the first boundary.
  const RemoteAddr addr = base + FarMemoryNode::kChunkSize - 17;
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(0xA0 + i);
  }
  node.CopyIn(addr, data.data(), data.size());
  std::vector<uint8_t> back(64, 0);
  node.CopyOut(addr, back.data(), back.size());
  EXPECT_EQ(data, back);
}

TEST(FarMemoryNode, ZeroInitialized) {
  FarMemoryNode node;
  const RemoteAddr addr = node.AllocRange(128).take();
  uint64_t v = 1;
  node.CopyOut(addr + 64, &v, sizeof(v));
  EXPECT_EQ(v, 0u);
}

TEST(LocalAllocator, BuffersRangesAndChargesRefillRpc) {
  FarMemoryNode node;
  net::Transport net(&node, sim::CostModel::Default());
  LocalAllocator alloc(&node, &net);
  sim::SimClock clk;
  const auto a = alloc.Alloc(clk, 4096);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(alloc.refill_rpcs(), 1u);
  const uint64_t after_first = clk.now_ns();
  EXPECT_GT(after_first, 0u);  // one RPC charged
  // Subsequent small allocations come from the buffered range: no RPC.
  const auto b = alloc.Alloc(clk, 4096);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(alloc.refill_rpcs(), 1u);
  EXPECT_EQ(clk.now_ns(), after_first);
  EXPECT_NE(a.value(), b.value());
}

TEST(LocalAllocator, FreeReturnsToLocalBuffer) {
  FarMemoryNode node;
  net::Transport net(&node, sim::CostModel::Default());
  LocalAllocator alloc(&node, &net);
  sim::SimClock clk;
  const RemoteAddr a = alloc.Alloc(clk, 1024).take();
  alloc.Free(a, 1024);
  const uint64_t buffered = alloc.buffered_bytes();
  const RemoteAddr b = alloc.Alloc(clk, 1024).take();
  EXPECT_EQ(a, b);  // reused locally
  EXPECT_EQ(alloc.buffered_bytes(), buffered - 1024);
}

}  // namespace
}  // namespace mira::farmem
