#include <gtest/gtest.h>

#include <cstring>

#include "src/farmem/far_memory_node.h"
#include "src/farmem/local_allocator.h"
#include "src/net/transport.h"

namespace mira::farmem {
namespace {

TEST(FarMemoryNode, AllocUniqueAndAligned) {
  FarMemoryNode node;
  auto a = node.AllocRange(100);
  auto b = node.AllocRange(100);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(a.value() % 64, 0u);
  EXPECT_GE(b.value(), a.value() + 128);  // rounded to 64
}

TEST(FarMemoryNode, CapacityEnforced) {
  FarMemoryNode node(1 << 20);
  auto big = node.AllocRange(2 << 20);
  EXPECT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), support::ErrorCode::kOutOfMemory);
  auto ok = node.AllocRange(1 << 19);
  EXPECT_TRUE(ok.ok());
}

TEST(FarMemoryNode, FreeListReuseAndCoalescing) {
  FarMemoryNode node;
  const RemoteAddr a = node.AllocRange(1024).take();
  const RemoteAddr b = node.AllocRange(1024).take();
  const RemoteAddr c = node.AllocRange(1024).take();
  (void)c;
  node.FreeRange(a, 1024);
  node.FreeRange(b, 1024);  // coalesces with a
  const RemoteAddr d = node.AllocRange(2048).take();
  EXPECT_EQ(d, a);  // reused the coalesced hole
}

TEST(FarMemoryNode, DataRoundTripWithinChunk) {
  FarMemoryNode node;
  const RemoteAddr addr = node.AllocRange(256).take();
  uint8_t data[256];
  for (int i = 0; i < 256; ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  node.CopyIn(addr, data, sizeof(data));
  uint8_t back[256] = {};
  node.CopyOut(addr, back, sizeof(back));
  EXPECT_EQ(std::memcmp(data, back, sizeof(data)), 0);
}

TEST(FarMemoryNode, CopyAcrossChunkBoundary) {
  FarMemoryNode node;
  // Allocate a range spanning several 1 MiB chunks.
  const uint64_t size = 3 * FarMemoryNode::kChunkSize;
  const RemoteAddr base = node.AllocRange(size).take();
  // Write a pattern straddling the first boundary.
  const RemoteAddr addr = base + FarMemoryNode::kChunkSize - 17;
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(0xA0 + i);
  }
  node.CopyIn(addr, data.data(), data.size());
  std::vector<uint8_t> back(64, 0);
  node.CopyOut(addr, back.data(), back.size());
  EXPECT_EQ(data, back);
}

TEST(FarMemoryNode, ZeroInitialized) {
  FarMemoryNode node;
  const RemoteAddr addr = node.AllocRange(128).take();
  uint64_t v = 1;
  node.CopyOut(addr + 64, &v, sizeof(v));
  EXPECT_EQ(v, 0u);
}

TEST(LocalAllocator, BuffersRangesAndChargesRefillRpc) {
  FarMemoryNode node;
  net::Transport net(&node, sim::CostModel::Default());
  LocalAllocator alloc(&node, &net);
  sim::SimClock clk;
  const auto a = alloc.Alloc(clk, 4096);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(alloc.refill_rpcs(), 1u);
  const uint64_t after_first = clk.now_ns();
  EXPECT_GT(after_first, 0u);  // one RPC charged
  // Subsequent small allocations come from the buffered range: no RPC.
  const auto b = alloc.Alloc(clk, 4096);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(alloc.refill_rpcs(), 1u);
  EXPECT_EQ(clk.now_ns(), after_first);
  EXPECT_NE(a.value(), b.value());
}

TEST(LocalAllocator, FreeReturnsToLocalBuffer) {
  FarMemoryNode node;
  net::Transport net(&node, sim::CostModel::Default());
  LocalAllocator alloc(&node, &net);
  sim::SimClock clk;
  const RemoteAddr a = alloc.Alloc(clk, 1024).take();
  alloc.Free(a, 1024);
  const uint64_t buffered = alloc.buffered_bytes();
  const RemoteAddr b = alloc.Alloc(clk, 1024).take();
  EXPECT_EQ(a, b);  // reused locally
  EXPECT_EQ(alloc.buffered_bytes(), buffered - 1024);
}

}  // namespace
}  // namespace mira::farmem
