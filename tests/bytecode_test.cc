// Differential testing of the bytecode engine against the tree walker.
//
// The contract (bytecode.h, DESIGN.md §10) is bit-identity: for any
// verified module, both engines must produce the same result bits, the
// same simulated clock, the same instruction count, and the same profile
// ledgers. These tests check that contract three ways:
//   1. a seeded fuzzer over random verified IR modules (arith of both
//      types, nested control flow, locals, memory, rand, calls);
//   2. pipeline-compiled workloads (rmem dialect: sections, prefetch,
//      batching, promotion, selective transmission, offload);
//   3. edge paths — instruction-budget aborts and the shared code cache.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/access_analysis.h"
#include "src/interp/bytecode.h"
#include "src/interp/interpreter.h"
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/pipeline/optimizer.h"
#include "src/pipeline/planner.h"
#include "src/pipeline/world.h"
#include "src/support/rng.h"
#include "src/workloads/workloads.h"

namespace mira {
namespace {

using interp::EngineKind;
using interp::Interpreter;
using interp::InterpOptions;
using ir::FunctionBuilder;
using ir::Local;
using ir::OpKind;
using ir::Type;
using ir::Value;
using pipeline::MakeWorld;
using pipeline::SystemKind;

// ---------------------------------------------------------------------------
// Random verified module generation (property-test RNG discipline: all
// randomness from one seeded support::Rng, so failures replay exactly).

class RandomProgram {
 public:
  explicit RandomProgram(uint64_t seed) : rng_(seed) {}

  std::unique_ptr<ir::Module> Build() {
    auto m = std::make_unique<ir::Module>();
    {
      // A leaf callee so the fuzz covers kCall frames and the per-function
      // profile ledger.
      FunctionBuilder f(m.get(), "leaf", {Type::kI64, Type::kI64}, Type::kI64);
      const Value mixed = f.Xor(f.Mul(f.Arg(0), f.ConstI(0x9e37)), f.Arg(1));
      f.Return(f.Add(f.Min(mixed, f.Arg(0)), f.Max(mixed, f.Arg(1))));
    }
    FunctionBuilder f(m.get(), "main", {}, Type::kI64);
    arr_ = f.Alloc(f.ConstI(kElems * 8), "scratch", 8);
    acc_ = f.DeclLocal(Type::kI64);
    f.StoreLocal(acc_, f.ConstI(0));
    ivals_ = {f.ConstI(static_cast<int64_t>(rng_.NextBelow(1000)) + 1),
              f.ConstI(static_cast<int64_t>(rng_.NextBelow(97)) - 48)};
    fvals_ = {f.ConstF(rng_.NextDouble() * 8.0 - 4.0), f.ConstF(1.5)};
    EmitBlock(f, /*depth=*/0, /*budget=*/12 + static_cast<int>(rng_.NextBelow(10)));
    // Fold a few array cells into the result so stored memory matters.
    f.For(f.ConstI(0), f.ConstI(kElems), f.ConstI(1), [&](Value i) {
      f.StoreLocal(acc_, f.Add(f.LoadLocal(acc_), f.Load(f.Index(arr_, i, 8, 0), 8, Type::kI64)));
    });
    f.Return(f.Add(f.LoadLocal(acc_), PickI(f)));
    return m;
  }

 private:
  static constexpr int64_t kElems = 64;  // power of two: indices are masked

  Value PickI(FunctionBuilder& f) {
    return ivals_[rng_.NextBelow(ivals_.size())];
  }
  Value PickF(FunctionBuilder& f) {
    return fvals_[rng_.NextBelow(fvals_.size())];
  }
  Value MaskedIndex(FunctionBuilder& f) {
    return f.And(PickI(f), f.ConstI(kElems - 1));
  }

  void EmitBlock(FunctionBuilder& f, int depth, int budget) {
    const size_t isize = ivals_.size();
    const size_t fsize = fvals_.size();
    for (int n = 0; n < budget; ++n) {
      EmitStmt(f, depth);
    }
    // Values defined in this block die with it (they live in a region the
    // verifier scopes); keep only the outer ones visible.
    ivals_.resize(isize);
    fvals_.resize(fsize);
  }

  void EmitStmt(FunctionBuilder& f, int depth) {
    switch (rng_.NextBelow(depth < 2 ? 14 : 11)) {
      case 0: {  // integer arithmetic (wraparound, div/rem-by-zero → 0)
        static const OpKind kOps[] = {OpKind::kAdd, OpKind::kSub, OpKind::kMul,
                                      OpKind::kDiv, OpKind::kRem, OpKind::kMin,
                                      OpKind::kMax};
        ivals_.push_back(f.Binary(kOps[rng_.NextBelow(7)], PickI(f), PickI(f)));
        break;
      }
      case 1: {  // bitwise / shifts (shift count masked by the engines)
        static const OpKind kOps[] = {OpKind::kAnd, OpKind::kOr, OpKind::kXor,
                                      OpKind::kShl, OpKind::kShr};
        ivals_.push_back(f.Binary(kOps[rng_.NextBelow(5)], PickI(f), PickI(f)));
        break;
      }
      case 2: {  // float arithmetic
        static const OpKind kOps[] = {OpKind::kAdd, OpKind::kSub, OpKind::kMul,
                                      OpKind::kDiv, OpKind::kMin, OpKind::kMax};
        fvals_.push_back(f.Binary(kOps[rng_.NextBelow(6)], PickF(f), PickF(f)));
        break;
      }
      case 3: {  // math unaries; tanh bounds values so f2i stays in range
        const Value t = f.Unary(OpKind::kTanh, PickF(f));
        fvals_.push_back(f.Unary(rng_.NextBelow(2) == 0 ? OpKind::kExp : OpKind::kSqrt,
                                 f.Binary(OpKind::kMax, t, f.ConstF(0.0))));
        ivals_.push_back(f.F2I(f.Mul(t, f.ConstF(1000.0))));
        break;
      }
      case 4:  // comparisons (both types) + select
        ivals_.push_back(f.Select(f.Cmp(RandCmp(), PickI(f), PickI(f)), PickI(f), PickI(f)));
        ivals_.push_back(f.Cmp(RandCmp(), PickF(f), PickF(f)));
        break;
      case 5:  // conversions
        fvals_.push_back(f.I2F(f.And(PickI(f), f.ConstI(0xFFFF))));
        break;
      case 6:  // seeded workload randomness
        ivals_.push_back(f.Rand(f.ConstI(static_cast<int64_t>(rng_.NextBelow(5000)) + 1)));
        break;
      case 7:  // store to the scratch array (kIndex+kStore superinstruction)
        f.Store(f.Index(arr_, MaskedIndex(f), 8, 0), PickI(f), 8);
        break;
      case 8:  // load from the scratch array (kIndex+kLoad superinstruction)
        ivals_.push_back(f.Load(f.Index(arr_, MaskedIndex(f), 8, 0), 8, Type::kI64));
        break;
      case 9:  // accumulate through the local slot
        f.StoreLocal(acc_, f.Add(f.LoadLocal(acc_), PickI(f)));
        break;
      case 10:  // cross-function call
        ivals_.push_back(f.Call("leaf", {PickI(f), PickI(f)}));
        break;
      case 11: {  // for loop (iv visible in the body only)
        const int64_t trips = static_cast<int64_t>(rng_.NextBelow(6)) + 1;
        const int body = 2 + static_cast<int>(rng_.NextBelow(3));
        f.For(f.ConstI(0), f.ConstI(trips), f.ConstI(1), [&](Value iv) {
          ivals_.push_back(iv);
          EmitBlock(f, depth + 1, body);
          ivals_.pop_back();
        });
        break;
      }
      case 12: {  // if/else (cmp+branch superinstruction)
        const Value cond = f.Cmp(RandCmp(), PickI(f), PickI(f));
        f.If(
            cond, [&] { EmitBlock(f, depth + 1, 2); },
            [&] { EmitBlock(f, depth + 1, 2); });
        break;
      }
      case 13: {  // while loop over a dedicated counter (guaranteed exit)
        const Local w = f.DeclLocal(Type::kI64);
        f.StoreLocal(w, f.ConstI(0));
        const int64_t trips = static_cast<int64_t>(rng_.NextBelow(5)) + 1;
        f.While([&] { return f.CmpLt(f.LoadLocal(w), f.ConstI(trips)); },
                [&] {
                  f.StoreLocal(w, f.Add(f.LoadLocal(w), f.ConstI(1)));
                  EmitBlock(f, depth + 1, 2);
                });
        break;
      }
      default:
        break;
    }
  }

  OpKind RandCmp() {
    static const OpKind kCmps[] = {OpKind::kCmpEq, OpKind::kCmpNe, OpKind::kCmpLt,
                                   OpKind::kCmpLe, OpKind::kCmpGt, OpKind::kCmpGe};
    return kCmps[rng_.NextBelow(6)];
  }

  support::Rng rng_;
  Value arr_;
  Local acc_;
  std::vector<Value> ivals_;
  std::vector<Value> fvals_;
};

// ---------------------------------------------------------------------------
// Run capture + bit-identity assertion.

struct RunSnapshot {
  bool ok = false;
  std::string status;
  uint64_t result = 0;
  uint64_t sim_ns = 0;
  uint64_t instrs = 0;
  uint64_t offload_fallbacks = 0;
  interp::RunProfile profile;
  std::map<std::string, farmem::RemoteAddr> object_addrs;
};

RunSnapshot RunWith(const ir::Module& m, const std::string& entry, EngineKind engine,
                    const runtime::CachePlan& plan, uint64_t local_bytes, bool profiling,
                    uint64_t max_instrs = 0) {
  pipeline::World world = MakeWorld(SystemKind::kMira, local_bytes, plan);
  InterpOptions opts;
  opts.seed = 42;
  opts.profiling = profiling;
  opts.engine = engine;
  opts.max_instrs = max_instrs;
  Interpreter interp(&m, world.backend.get(), opts);
  auto r = interp.Run(entry);
  RunSnapshot snap;
  snap.ok = r.ok();
  snap.status = r.status().ToString();
  if (r.ok()) {
    snap.result = r.value();
    world.backend->Drain(interp.clock());
  }
  snap.sim_ns = interp.clock().now_ns();
  snap.instrs = interp.instrs_executed();
  snap.offload_fallbacks = interp.offload_fallbacks();
  snap.profile = interp.profile();
  snap.object_addrs = interp.object_addrs();
  return snap;
}

void ExpectBitIdentical(const RunSnapshot& tree, const RunSnapshot& bc,
                        const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(tree.ok, bc.ok) << "tree: " << tree.status << " bytecode: " << bc.status;
  EXPECT_EQ(tree.status, bc.status);
  if (tree.ok) {
    EXPECT_EQ(tree.result, bc.result);
  }
  EXPECT_EQ(tree.sim_ns, bc.sim_ns);
  EXPECT_EQ(tree.instrs, bc.instrs);
  EXPECT_EQ(tree.offload_fallbacks, bc.offload_fallbacks);
  EXPECT_EQ(tree.object_addrs, bc.object_addrs);
  EXPECT_EQ(tree.profile.total_ns, bc.profile.total_ns);
  EXPECT_EQ(tree.profile.total_overhead_ns, bc.profile.total_overhead_ns);
  EXPECT_EQ(tree.profile.alloc_bytes, bc.profile.alloc_bytes);
  ASSERT_EQ(tree.profile.funcs.size(), bc.profile.funcs.size());
  for (const auto& [name, tp] : tree.profile.funcs) {
    ASSERT_TRUE(bc.profile.funcs.count(name)) << name;
    const interp::FuncProfile& bp = bc.profile.funcs.at(name);
    EXPECT_EQ(tp.calls, bp.calls) << name;
    EXPECT_EQ(tp.inclusive_ns, bp.inclusive_ns) << name;
    EXPECT_EQ(tp.overhead_ns, bp.overhead_ns) << name;
    EXPECT_EQ(tp.mem_accesses, bp.mem_accesses) << name;
    EXPECT_EQ(tp.compute_instrs, bp.compute_instrs) << name;
  }
}

// ---------------------------------------------------------------------------
// 1. Fuzz: random verified modules, seeds 1/7/42.

TEST(BytecodeDifferential, FuzzRandomModules) {
  for (const uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    support::SplitMix64 expand(seed);
    for (int iter = 0; iter < 24; ++iter) {
      const uint64_t case_seed = expand.Next();
      RandomProgram gen(case_seed);
      auto m = gen.Build();
      ASSERT_TRUE(ir::VerifyModule(*m).ok()) << "seed " << seed << " iter " << iter;
      // Alternate profiling so instrumentation-cost charging is compared too.
      const bool profiling = (iter % 2) == 0;
      const auto tree = RunWith(*m, "main", EngineKind::kTree, {}, 1 << 20, profiling);
      const auto bc = RunWith(*m, "main", EngineKind::kBytecode, {}, 1 << 20, profiling);
      ExpectBitIdentical(tree, bc,
                         "seed " + std::to_string(seed) + " iter " + std::to_string(iter) +
                             " case_seed " + std::to_string(case_seed));
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Pipeline-compiled workloads: the full rmem dialect (sections,
// prefetch, batching, promotion, selective transmission, offload).

RunSnapshot CompiledWorkloadRun(workloads::Workload& w, EngineKind engine) {
  const uint64_t local_bytes = w.footprint_bytes / 4;
  // Deep-dive compile (the chaos runner / bench FullPlanCompile path). The
  // profiling run uses the tree walker for both arms so each engine
  // executes the identical compiled module.
  pipeline::World prof_world = MakeWorld(SystemKind::kMira, local_bytes);
  InterpOptions popts;
  popts.seed = 42;
  popts.profiling = true;
  popts.engine = EngineKind::kTree;
  Interpreter prof(w.module.get(), prof_world.backend.get(), popts);
  auto prof_result = prof.Run(w.entry);
  MIRA_CHECK(prof_result.ok());
  prof_world.backend->Drain(prof.clock());

  analysis::AccessAnalysis access(w.module.get());
  access.Run();
  pipeline::PlannerOptions planner;
  planner.local_bytes = local_bytes;
  planner.func_frac = 1.0;
  planner.obj_frac = 1.0;
  pipeline::PlanDraft draft = pipeline::DerivePlan(*w.module, access, prof.profile(),
                                                   sim::CostModel::Default(), planner);
  const ir::Module compiled = pipeline::CompileWithPlan(*w.module, draft, planner, w.entry);
  return RunWith(compiled, w.entry, engine, draft.plan, local_bytes, /*profiling=*/false);
}

TEST(BytecodeDifferential, CompiledGraphWorkload) {
  workloads::GraphParams p;
  p.num_edges = 6'000;
  p.num_nodes = 1'500;
  p.epochs = 2;
  auto w1 = workloads::BuildGraphTraversal(p);
  auto w2 = workloads::BuildGraphTraversal(p);
  ExpectBitIdentical(CompiledWorkloadRun(w1, EngineKind::kTree),
                     CompiledWorkloadRun(w2, EngineKind::kBytecode), "graph");
}

TEST(BytecodeDifferential, CompiledDataFrameWorkload) {
  workloads::DataFrameParams p;
  p.rows = 8'000;
  p.groups = 128;
  auto w1 = workloads::BuildDataFrame(p);
  auto w2 = workloads::BuildDataFrame(p);
  ExpectBitIdentical(CompiledWorkloadRun(w1, EngineKind::kTree),
                     CompiledWorkloadRun(w2, EngineKind::kBytecode), "dataframe");
}

// ---------------------------------------------------------------------------
// 3. Edge paths.

TEST(BytecodeDifferential, MaxInstrBudgetAbortsIdentically) {
  ir::Module m;
  FunctionBuilder f(&m, "main", {}, Type::kI64);
  const Local x = f.DeclLocal(Type::kI64);
  f.StoreLocal(x, f.ConstI(0));
  f.While([&] { return f.ConstI(1); },
          [&] { f.StoreLocal(x, f.Add(f.LoadLocal(x), f.ConstI(1))); });
  f.Return(f.LoadLocal(x));
  ASSERT_TRUE(ir::VerifyModule(m).ok());
  const auto tree =
      RunWith(m, "main", EngineKind::kTree, {}, 1 << 20, false, /*max_instrs=*/10'000);
  const auto bc =
      RunWith(m, "main", EngineKind::kBytecode, {}, 1 << 20, false, /*max_instrs=*/10'000);
  EXPECT_FALSE(tree.ok);
  ExpectBitIdentical(tree, bc, "budget abort");
}

TEST(Bytecode, CodeCacheSharesCompilations) {
  ir::Module m;
  {
    FunctionBuilder f(&m, "main", {}, Type::kI64);
    const Local acc = f.DeclLocal(Type::kI64);
    f.StoreLocal(acc, f.ConstI(0));
    f.For(f.ConstI(0), f.ConstI(16), f.ConstI(1),
          [&](Value i) { f.StoreLocal(acc, f.Add(f.LoadLocal(acc), i)); });
    f.Return(f.LoadLocal(acc));
  }
  const auto before = interp::bytecode::GetCodeCacheStats();
  auto first = interp::bytecode::SharedBytecode(m);
  auto again = interp::bytecode::SharedBytecode(m);
  // Same module → same shared compilation, served from the cache.
  EXPECT_EQ(first.get(), again.get());
  // A clone has the same content fingerprint, so it shares the entry too.
  const ir::Module clone = m.Clone();
  auto from_clone = interp::bytecode::SharedBytecode(clone);
  EXPECT_EQ(first.get(), from_clone.get());
  EXPECT_EQ(first->fingerprint, ir::ModuleFingerprint(clone));
  const auto after = interp::bytecode::GetCodeCacheStats();
  EXPECT_GE(after.hits, before.hits + 2);
  EXPECT_GE(after.entries, 1u);
}

TEST(Bytecode, EngineNameRoundTrip) {
  EXPECT_EQ(interp::ParseEngineName("tree"), EngineKind::kTree);
  EXPECT_EQ(interp::ParseEngineName("bytecode"), EngineKind::kBytecode);
  EXPECT_EQ(interp::ParseEngineName("nope"), EngineKind::kDefault);
  EXPECT_STREQ(interp::EngineName(EngineKind::kTree), "tree");
  EXPECT_STREQ(interp::EngineName(EngineKind::kBytecode), "bytecode");
  // The resolved default is never kDefault.
  EXPECT_NE(interp::DefaultEngine(), EngineKind::kDefault);
}

}  // namespace
}  // namespace mira
