// End-to-end pipeline: the iterative optimizer must derive sensible cache
// plans from profiling + analysis, preserve program semantics, and beat the
// generic swap configuration on the rundown example.

#include <gtest/gtest.h>

#include "src/analysis/access_analysis.h"
#include "src/interp/interpreter.h"
#include "src/ir/verifier.h"
#include "src/pipeline/adaptive.h"
#include "src/pipeline/optimizer.h"
#include "src/pipeline/world.h"
#include "src/workloads/workloads.h"

namespace mira {
namespace {

using interp::Interpreter;
using pipeline::IterativeOptimizer;
using pipeline::MakeWorld;
using pipeline::OptimizeOptions;
using pipeline::SystemKind;

workloads::Workload TestGraph() {
  workloads::GraphParams p;
  p.num_edges = 20'000;
  p.num_nodes = 5'000;
  p.epochs = 2;
  return workloads::BuildGraphTraversal(p);
}

TEST(Pipeline, OptimizerBeatsSwapOnGraph) {
  const auto w = TestGraph();
  OptimizeOptions opts;
  opts.local_bytes = w.footprint_bytes / 2;
  opts.max_iterations = 2;
  IterativeOptimizer optimizer(w.module.get(), opts);
  auto compiled = optimizer.Optimize();
  ASSERT_TRUE(ir::VerifyModule(compiled.module).ok());
  EXPECT_GT(optimizer.baseline_swap_ns(), 0u);

  // Execute both and compare results + time.
  auto ws = MakeWorld(SystemKind::kMira, opts.local_bytes, {});
  Interpreter swap_run(w.module.get(), ws.backend.get());
  const uint64_t swap_result = swap_run.Run("main").value();

  auto wm = MakeWorld(SystemKind::kMira, opts.local_bytes, compiled.plan);
  Interpreter mira_run(&compiled.module, wm.backend.get());
  const uint64_t mira_result = mira_run.Run("main").value();

  EXPECT_EQ(swap_result, mira_result);
  EXPECT_LT(mira_run.clock().now_ns(), swap_run.clock().now_ns());
}

TEST(Pipeline, PlanSeparatesEdgeAndNodeSections) {
  const auto w = TestGraph();
  OptimizeOptions opts;
  opts.local_bytes = w.footprint_bytes / 2;
  opts.max_iterations = 3;
  // Study cache-section behavior in isolation (offloading the whole kernel
  // is legitimate but hides the sections).
  opts.planner.enable_offload = false;
  IterativeOptimizer optimizer(w.module.get(), opts);
  auto compiled = optimizer.Optimize();
  // Both big objects end up in sections with distinct structures:
  // edges sequential → direct-mapped, nodes indirect → set-associative.
  const auto& plan = compiled.plan;
  ASSERT_TRUE(plan.object_to_section.count("edges"));
  ASSERT_TRUE(plan.object_to_section.count("nodes"));
  const auto& edge_section = plan.sections[plan.object_to_section.at("edges")];
  const auto& node_section = plan.sections[plan.object_to_section.at("nodes")];
  EXPECT_NE(plan.object_to_section.at("edges"), plan.object_to_section.at("nodes"));
  EXPECT_EQ(edge_section.structure, cache::SectionStructure::kDirectMapped);
  EXPECT_EQ(node_section.structure, cache::SectionStructure::kSetAssociative);
  // Edge lines are big (contiguous); node lines fit the 128 B element.
  EXPECT_GT(edge_section.line_bytes, node_section.line_bytes);
  EXPECT_EQ(node_section.line_bytes, 128u);
}

TEST(Pipeline, CompiledModuleContainsRmemAndPrefetchOps) {
  const auto w = TestGraph();
  OptimizeOptions opts;
  opts.local_bytes = w.footprint_bytes / 2;
  opts.max_iterations = 2;
  IterativeOptimizer optimizer(w.module.get(), opts);
  auto compiled = optimizer.Optimize();
  int rmem = 0, prefetch = 0, evict = 0, lifetime_end = 0;
  for (const auto& f : compiled.module.functions) {
    ir::WalkInstrs(f->body, [&](const ir::Instr& instr) {
      rmem += instr.kind == ir::OpKind::kRmemLoad || instr.kind == ir::OpKind::kRmemStore;
      prefetch += instr.kind == ir::OpKind::kPrefetch;
      evict += instr.kind == ir::OpKind::kEvictHint;
      lifetime_end += instr.kind == ir::OpKind::kLifetimeEnd;
    });
  }
  EXPECT_GT(rmem, 0);
  EXPECT_GT(prefetch, 0);
}

TEST(Pipeline, AblationTogglesReduceMachinery) {
  const auto w = TestGraph();
  analysis::AccessAnalysis access(w.module.get());
  access.Run();
  interp::RunProfile profile;
  // Synthetic profile: traverse is the hot function; objects sized.
  profile.funcs["traverse"].overhead_ns = 1000;
  profile.funcs["traverse"].inclusive_ns = 2000;
  profile.funcs["main"].inclusive_ns = 3000;
  profile.alloc_bytes["edges"] = 20'000 * 16;
  profile.alloc_bytes["nodes"] = 5'000 * 128;
  pipeline::PlannerOptions popts;
  popts.local_bytes = w.footprint_bytes / 2;
  popts.enable_sections = false;
  auto draft =
      pipeline::DerivePlan(*w.module, access, profile, sim::CostModel::Default(), popts);
  EXPECT_TRUE(draft.plan.sections.empty());

  popts.enable_sections = true;
  popts.enable_prefetch = false;
  popts.obj_frac = 1.0;
  popts.func_frac = 1.0;
  draft = pipeline::DerivePlan(*w.module, access, profile, sim::CostModel::Default(), popts);
  EXPECT_FALSE(draft.plan.sections.empty());
  for (const auto& [obj, info] : draft.compile_info) {
    EXPECT_EQ(info.prefetch_distance, 0u) << obj;
  }
}

TEST(Pipeline, IterationLogRecordsRollbacks) {
  const auto w = TestGraph();
  OptimizeOptions opts;
  opts.local_bytes = w.footprint_bytes / 2;
  opts.max_iterations = 3;
  IterativeOptimizer optimizer(w.module.get(), opts);
  optimizer.Optimize();
  EXPECT_EQ(optimizer.log().size(), 3u);
  for (const auto& entry : optimizer.log()) {
    EXPECT_GT(entry.time_ns, 0u);
    EXPECT_GT(entry.functions_selected, 0u);
  }
}

TEST(AdaptiveRuntime, FirstInvocationCompilesThenStaysStable) {
  const auto w = TestGraph();
  OptimizeOptions opts;
  opts.local_bytes = w.footprint_bytes / 2;
  opts.max_iterations = 2;
  pipeline::AdaptiveRuntime runtime(w.module.get(), opts);
  const auto first = runtime.Invoke(42);
  EXPECT_TRUE(first.reoptimized);
  EXPECT_EQ(runtime.optimization_rounds(), 1);
  // Same input distribution: the compilation carries over, no re-round.
  const auto second = runtime.Invoke(43);
  const auto third = runtime.Invoke(44);
  EXPECT_FALSE(second.reoptimized);
  EXPECT_FALSE(third.reoptimized);
  EXPECT_EQ(runtime.optimization_rounds(), 1);
  // Results are real program outputs (deterministic per seed).
  auto native = MakeWorld(SystemKind::kNative, 0, {});
  interp::InterpOptions iopts;
  iopts.seed = 43;
  Interpreter check(w.module.get(), native.backend.get(), iopts);
  EXPECT_EQ(second.result, check.Run("main").value());
}

TEST(AdaptiveRuntime, DegradationTriggersReoptimization) {
  const auto w = TestGraph();
  OptimizeOptions opts;
  opts.local_bytes = w.footprint_bytes / 2;
  opts.max_iterations = 1;
  // A hair-trigger threshold: any measurement noise across seeds forces a
  // new round, exercising the trigger + rollback path.
  pipeline::AdaptiveRuntime runtime(w.module.get(), opts, /*degrade_factor=*/1.0);
  runtime.Invoke(42);
  runtime.Invoke(999);
  EXPECT_GE(runtime.optimization_rounds(), 1);
}

}  // namespace
}  // namespace mira
