// Chaos harness tests: generator determinism, composition purity, event
// round-trips, oracle detection, ddmin minimality, and bit-exact repro
// replay. These are the tier-1 guarantees the CI chaos job leans on; the CLI
// sweep itself runs in a separate bounded CI step.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/chaos/oracles.h"
#include "src/chaos/repro.h"
#include "src/chaos/runner.h"
#include "src/chaos/schedule.h"
#include "src/chaos/shrink.h"
#include "src/net/fault_injector.h"
#include "src/support/rng.h"

namespace mira::chaos {
namespace {

GenOptions TestGenOptions() {
  GenOptions opts;
  opts.max_events = 8;
  opts.num_nodes = 3;
  opts.horizon_ns = 2'000'000;
  return opts;
}

TEST(ChaosSchedule, GenerationIsDeterministicAndSeedSensitive) {
  const GenOptions opts = TestGenOptions();
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    EXPECT_EQ(GenerateSchedule(seed, opts), GenerateSchedule(seed, opts)) << "seed " << seed;
  }
  // Different seeds must explore different schedules (not necessarily all
  // distinct, but overwhelmingly so).
  std::set<std::string> distinct;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    distinct.insert(ScheduleToJson(GenerateSchedule(seed, opts)).Dump());
  }
  EXPECT_GT(distinct.size(), 45u);
}

TEST(ChaosSchedule, GeneratedCrashCyclesAreSequentialWithASurvivor) {
  const GenOptions opts = TestGenOptions();
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    const std::vector<ChaosEvent> events = GenerateSchedule(seed, opts);
    // Collect crash events in generation order; the discipline promises
    // sequential cycles: each crash strictly after the previous rejoin, and
    // nothing after a permanent (no-rejoin) crash.
    uint64_t prev_rejoin = 0;
    bool closed = false;
    for (const ChaosEvent& e : events) {
      if (e.kind != EventKind::kNodeCrash) {
        continue;
      }
      EXPECT_FALSE(closed) << "seed " << seed << ": crash after a permanent crash";
      EXPECT_GT(e.crash_ns, prev_rejoin) << "seed " << seed << ": overlapping crash cycles";
      if (e.rejoin_ns == 0) {
        closed = true;
      } else {
        EXPECT_GT(e.rejoin_ns, e.crash_ns) << "seed " << seed;
        prev_rejoin = e.rejoin_ns;
      }
    }
  }
}

TEST(ChaosSchedule, ComposeIsPureAndOrderCanonical) {
  const GenOptions opts = TestGenOptions();
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const std::vector<ChaosEvent> events = GenerateSchedule(seed, opts);
    const net::FaultPlan a = ComposePlan(seed, events);
    const net::FaultPlan b = ComposePlan(seed, events);
    EXPECT_EQ(a, b) << "seed " << seed;
    // Windows and crash schedules come out sorted regardless of event order.
    std::vector<ChaosEvent> reversed(events.rbegin(), events.rend());
    const net::FaultPlan c = ComposePlan(seed, reversed);
    EXPECT_EQ(a.outages, c.outages) << "seed " << seed;
    EXPECT_EQ(a.degraded, c.degraded) << "seed " << seed;
    EXPECT_EQ(a.node_crashes, c.node_crashes) << "seed " << seed;
  }
}

TEST(ChaosSchedule, EventsRoundTripThroughJson) {
  const GenOptions opts = TestGenOptions();
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const std::vector<ChaosEvent> events = GenerateSchedule(seed, opts);
    auto back = ScheduleFromJson(ScheduleToJson(events));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(events, back.value()) << "seed " << seed;
  }
}

// ---- ddmin on synthetic predicates (no workload executions) ----

ChaosEvent TornEvent(double p) {
  ChaosEvent e;
  e.kind = EventKind::kTornWriteback;
  e.probability = p;
  return e;
}

TEST(ChaosShrink, FindsTheSingleCulprit) {
  std::vector<ChaosEvent> events;
  for (int i = 0; i < 16; ++i) {
    events.push_back(TornEvent(0.01 * (i + 1)));
  }
  const ChaosEvent culprit = TornEvent(0.07);  // index 6
  int executions = 0;
  const std::vector<ChaosEvent> minimal = Minimize(
      events,
      [&](const std::vector<ChaosEvent>& evs) {
        for (const ChaosEvent& e : evs) {
          if (e == culprit) {
            return true;
          }
        }
        return false;
      },
      &executions);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], culprit);
  EXPECT_GT(executions, 0);
  EXPECT_LT(executions, 64);  // ddmin, not brute force over all subsets
}

TEST(ChaosShrink, MinimizesConjunctionsToExactlyTheRequiredEvents) {
  // Failure requires BOTH culprits: the classic case 1-minimality handles
  // and naive one-at-a-time removal does too — but ddmin must keep both.
  std::vector<ChaosEvent> events;
  for (int i = 0; i < 12; ++i) {
    events.push_back(TornEvent(0.01 * (i + 1)));
  }
  const ChaosEvent a = TornEvent(0.03);
  const ChaosEvent b = TornEvent(0.10);
  const std::vector<ChaosEvent> minimal =
      Minimize(events, [&](const std::vector<ChaosEvent>& evs) {
        bool has_a = false;
        bool has_b = false;
        for (const ChaosEvent& e : evs) {
          has_a = has_a || e == a;
          has_b = has_b || e == b;
        }
        return has_a && has_b;
      });
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0], a);
  EXPECT_EQ(minimal[1], b);
}

TEST(ChaosShrink, ResultIsOneMinimal) {
  // Predicate: fails iff the list holds >= 3 torn events with p > 0.05.
  auto fails = [](const std::vector<ChaosEvent>& evs) {
    int n = 0;
    for (const ChaosEvent& e : evs) {
      n += e.probability > 0.05 ? 1 : 0;
    }
    return n >= 3;
  };
  std::vector<ChaosEvent> events;
  for (int i = 0; i < 10; ++i) {
    events.push_back(TornEvent(0.02 * (i + 1)));
  }
  const std::vector<ChaosEvent> minimal = Minimize(events, fails);
  ASSERT_TRUE(fails(minimal));
  EXPECT_EQ(minimal.size(), 3u);
  for (size_t i = 0; i < minimal.size(); ++i) {
    std::vector<ChaosEvent> without = minimal;
    without.erase(without.begin() + static_cast<long>(i));
    EXPECT_FALSE(fails(without)) << "removable event " << i;
  }
}

// ---- End-to-end: runner + oracles + minimizer + repro artifacts ----
//
// One fixture-compiled runner (the compile is the expensive part) shared
// across the execution tests.

class ChaosEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RunnerOptions opts;
    opts.workload = "graph";
    runner_ = new ChaosRunner(opts);
  }
  static void TearDownTestSuite() {
    delete runner_;
    runner_ = nullptr;
  }
  static ChaosRunner* runner_;
};

ChaosRunner* ChaosEndToEnd::runner_ = nullptr;

TEST_F(ChaosEndToEnd, CleanPlanReproducesTheBaselineBitExactly) {
  const RunResult r = runner_->Execute(net::FaultPlan::Clean());
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.result, runner_->clean().result);
  EXPECT_EQ(r.sim_ns, runner_->clean().sim_ns);
  EXPECT_EQ(r.object_addrs, runner_->clean().object_addrs);
  const std::vector<Violation> v =
      CheckOracles(runner_->clean(), r, {}, OracleOptions{});
  EXPECT_TRUE(v.empty()) << FormatViolations(v);
}

TEST_F(ChaosEndToEnd, GeneratedSchedulesExecuteDeterministically) {
  const GenOptions gen = runner_->MakeGenOptions(6);
  const uint64_t seed = 3;
  const std::vector<ChaosEvent> events = GenerateSchedule(seed, gen);
  const net::FaultPlan plan = ComposePlan(seed, events);
  const RunResult a = runner_->Execute(plan);
  const RunResult b = runner_->Execute(plan);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.sim_ns, b.sim_ns);
  EXPECT_EQ(a.stall_totals, b.stall_totals);
  EXPECT_EQ(a.fault.wasted_ns(), b.fault.wasted_ns());
}

TEST_F(ChaosEndToEnd, OraclesHoldOverASeedSweep) {
  const GenOptions gen = runner_->MakeGenOptions(6);
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const std::vector<ChaosEvent> events = GenerateSchedule(seed, gen);
    const RunResult r = runner_->Execute(ComposePlan(seed, events));
    const std::vector<Violation> v =
        CheckOracles(runner_->clean(), r, events, OracleOptions{});
    EXPECT_TRUE(v.empty()) << "seed " << seed << ":\n" << FormatViolations(v);
  }
}

TEST_F(ChaosEndToEnd, CanaryOracleIsDetectedMinimizedAndReplayedBitExactly) {
  // Arm the deliberately-broken test_hook oracle on two kinds and find a
  // seed whose schedule contains both.
  OracleOptions oracle_opts;
  oracle_opts.fail_oracles = {"verb_fault", "outage"};
  const GenOptions gen = runner_->MakeGenOptions(8);
  uint64_t seed = 0;
  std::vector<ChaosEvent> events;
  for (uint64_t s = 1; s <= 64 && seed == 0; ++s) {
    std::set<std::string> kinds;
    for (const ChaosEvent& e : GenerateSchedule(s, gen)) {
      kinds.insert(EventKindName(e.kind));
    }
    if (kinds.count("verb_fault") > 0 && kinds.count("outage") > 0) {
      seed = s;
      events = GenerateSchedule(s, gen);
    }
  }
  ASSERT_NE(seed, 0u) << "no generated schedule stacked verb_fault + outage";

  auto violations_for = [&](const std::vector<ChaosEvent>& evs) {
    const RunResult r = runner_->Execute(ComposePlan(seed, evs));
    return CheckOracles(runner_->clean(), r, evs, oracle_opts);
  };
  ASSERT_FALSE(violations_for(events).empty());

  // Minimize: must land on exactly one event per armed kind (<= 3 is the
  // CI canary bound; the hook's structure forces exactly 2 here).
  const std::vector<ChaosEvent> minimal = Minimize(
      events, [&](const std::vector<ChaosEvent>& evs) { return !violations_for(evs).empty(); });
  ASSERT_EQ(minimal.size(), 2u);
  std::set<std::string> kinds;
  for (const ChaosEvent& e : minimal) {
    kinds.insert(EventKindName(e.kind));
  }
  EXPECT_EQ(kinds, (std::set<std::string>{"verb_fault", "outage"}));

  // Build the artifact the CLI would emit, round-trip it through JSON text,
  // and replay: violations and the execution fingerprint must match bit
  // for bit.
  ReproArtifact artifact;
  artifact.workload = runner_->options().workload;
  artifact.local_percent = runner_->options().local_percent;
  artifact.interp_seed = runner_->options().interp_seed;
  artifact.schedule_seed = seed;
  artifact.fail_oracles = oracle_opts.fail_oracles;
  artifact.events = minimal;
  artifact.plan = ComposePlan(seed, minimal);
  const RunResult min_run = runner_->Execute(artifact.plan);
  artifact.violations = CheckOracles(runner_->clean(), min_run, minimal, oracle_opts);
  artifact.sim_ns = min_run.sim_ns;
  artifact.result = min_run.result;

  auto loaded = ReproArtifact::FromJsonText(artifact.ToJson().Dump(2));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ReproArtifact replay = loaded.take();
  EXPECT_EQ(replay.events, artifact.events);
  EXPECT_EQ(replay.plan, artifact.plan);
  EXPECT_EQ(replay.violations, artifact.violations);

  const RunResult replayed = runner_->Execute(replay.plan);
  EXPECT_EQ(replayed.sim_ns, replay.sim_ns);
  EXPECT_EQ(replayed.result, replay.result);
  EXPECT_EQ(CheckOracles(runner_->clean(), replayed, replay.events, oracle_opts),
            replay.violations);
}

TEST_F(ChaosEndToEnd, BrokenInvariantIsCaughtByARealOracle) {
  // Sanity that the REAL oracles (not the test hook) can fire: corrupt a
  // RunResult the way a healing bug would look and check self_healing trips.
  const RunResult clean = runner_->clean();
  RunResult faulted = runner_->Execute(net::FaultPlan::Clean());
  faulted.integrity.detected += 3;  // 3 detections that never healed
  const std::vector<Violation> v = CheckOracles(clean, faulted, {}, OracleOptions{});
  ASSERT_FALSE(v.empty());
  bool self_healing = false;
  for (const Violation& x : v) {
    self_healing = self_healing || x.oracle == "self_healing";
  }
  EXPECT_TRUE(self_healing) << FormatViolations(v);
}

}  // namespace
}  // namespace mira::chaos
