// Swap section and the swap prefetchers (readahead, Leap majority-trend).

#include <gtest/gtest.h>

#include "src/cache/swap_prefetcher.h"
#include "src/cache/swap_section.h"
#include "src/support/rng.h"
#include "src/farmem/far_memory_node.h"

namespace mira::cache {
namespace {

struct Env {
  farmem::FarMemoryNode node;
  net::Transport net{&node, sim::CostModel::Default()};
  sim::SimClock clk;
};

TEST(SwapSection, MajorFaultThenMappedAccess) {
  Env env;
  SwapSection swap(64 << 10, &env.net, std::make_unique<NullPrefetcher>());
  const uint64_t t0 = env.clk.now_ns();
  swap.Access(env.clk, 0x1000, 8, false);
  const uint64_t fault_cost = env.clk.now_ns() - t0;
  EXPECT_GT(fault_cost, sim::CostModel::Default().page_fault_ns);
  const uint64_t t1 = env.clk.now_ns();
  swap.Access(env.clk, 0x1008, 8, false);  // same page: native
  EXPECT_EQ(env.clk.now_ns() - t1, sim::CostModel::Default().native_access_ns);
}

TEST(SwapSection, PageGranularityAmplification) {
  Env env;
  SwapSection swap(64 << 10, &env.net, std::make_unique<NullPrefetcher>());
  swap.Access(env.clk, 0, 8, false);  // 8 bytes wanted
  EXPECT_EQ(env.net.stats().bytes_in, 4096u);  // 4 KiB moved (512× blowup)
}

TEST(SwapSection, EvictsAtCapacityWithWriteback) {
  Env env;
  SwapSection swap(4 * 4096, &env.net, std::make_unique<NullPrefetcher>());
  for (uint64_t p = 0; p < 16; ++p) {
    swap.Access(env.clk, p * 4096, 8, /*write=*/true);
  }
  EXPECT_LE(swap.resident_pages(), 4u);
  EXPECT_GT(swap.stats().evictions, 0u);
  EXPECT_GT(swap.stats().writebacks, 0u);
}

TEST(SwapSection, DatapathFactorSlowsLeapStyleSwap) {
  Env fast_env, slow_env;
  SwapSection fast(64 << 10, &fast_env.net, std::make_unique<NullPrefetcher>(), 1.0);
  SwapSection slow(64 << 10, &slow_env.net, std::make_unique<NullPrefetcher>(), 1.5);
  fast.Access(fast_env.clk, 0, 8, false);
  slow.Access(slow_env.clk, 0, 8, false);
  EXPECT_GT(slow_env.clk.now_ns(), fast_env.clk.now_ns());
}

TEST(SwapSection, ReadaheadServesSequentialScan) {
  Env ra_env, null_env;
  SwapSection with_ra(256 << 10, &ra_env.net, std::make_unique<ReadaheadPrefetcher>());
  SwapSection without(256 << 10, &null_env.net, std::make_unique<NullPrefetcher>());
  for (uint64_t addr = 0; addr < (128 << 10); addr += 64) {
    with_ra.Access(ra_env.clk, addr, 8, false);
    without.Access(null_env.clk, addr, 8, false);
  }
  EXPECT_LT(ra_env.clk.now_ns(), null_env.clk.now_ns());
  EXPECT_GT(with_ra.stats().prefetched_hits, 0u);
}

TEST(SwapSection, ReleaseWritesDirtyPagesBack) {
  Env env;
  SwapSection swap(64 << 10, &env.net, std::make_unique<NullPrefetcher>());
  swap.Access(env.clk, 0, 8, true);
  swap.Access(env.clk, 4096, 8, false);
  swap.Release(env.clk);
  EXPECT_EQ(swap.resident_pages(), 0u);
  EXPECT_EQ(swap.stats().writebacks, 1u);
}

TEST(SwapSection, FaultLockSerializesThreads) {
  Env env;
  SwapSection swap(1 << 20, &env.net, std::make_unique<NullPrefetcher>());
  sim::SerialResource lock;
  swap.SetFaultLock(&lock);
  sim::SimClock t1, t2;
  swap.Access(t1, 0, 8, false);
  swap.Access(t2, 8192, 8, false);  // concurrent fault at t=0 queues
  EXPECT_GT(t2.now_ns(), sim::CostModel::Default().page_fault_ns * 2);
}

// ---------------- Prefetchers ----------------

TEST(Readahead, WindowDoublesOnSequentialStreak) {
  ReadaheadPrefetcher ra(8);
  std::vector<uint64_t> out;
  ra.OnFault(10, &out);
  EXPECT_EQ(out.size(), 1u);  // cold: window 1
  out.clear();
  ra.OnFault(11, &out);
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  ra.OnFault(12, &out);
  EXPECT_EQ(out.size(), 4u);
  out.clear();
  ra.OnFault(13, &out);
  EXPECT_EQ(out.size(), 8u);
  out.clear();
  ra.OnFault(14, &out);
  EXPECT_EQ(out.size(), 8u);  // capped
  out.clear();
  ra.OnFault(99, &out);  // streak broken
  EXPECT_EQ(out.size(), 1u);
}

TEST(Leap, FindsUnitStrideMajority) {
  LeapPrefetcher leap;
  std::vector<uint64_t> out;
  for (uint64_t p = 0; p < 8; ++p) {
    out.clear();
    leap.OnFault(p, &out);
  }
  EXPECT_EQ(leap.MajorityStride(), 1);
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(out[0], 8u);  // next page along the trend
}

TEST(Leap, FindsNonUnitStride) {
  LeapPrefetcher leap;
  std::vector<uint64_t> out;
  for (uint64_t p = 0; p < 64; p += 4) {
    out.clear();
    leap.OnFault(p, &out);
  }
  EXPECT_EQ(leap.MajorityStride(), 4);
}

TEST(Leap, NoMajorityOnInterleavedPatterns) {
  // The paper's Fig 15 point: interleaved per-object patterns have no
  // global majority stride, so Leap prefetches nothing useful.
  LeapPrefetcher leap;
  support::Rng rng(3);
  std::vector<uint64_t> out;
  for (int i = 0; i < 64; ++i) {
    out.clear();
    // Alternate a sequential page with a random far page.
    const uint64_t page = (i % 2 == 0) ? static_cast<uint64_t>(i / 2)
                                       : 100'000 + rng.NextBelow(50'000);
    leap.OnFault(page, &out);
  }
  EXPECT_EQ(leap.MajorityStride(), 0);
}

TEST(Leap, ExactHalfOfWindowStillWins) {
  // A regular stride-2 stream with every-other-access noise holds exactly
  // half the delta window. The vote must accept it: deltas [3,4,2,2] give
  // the Boyer-Moore candidate 2 with occurrence 2 of 4, and a strict ">"
  // test silenced the prefetcher on this stream.
  LeapPrefetcher leap;
  std::vector<uint64_t> out;
  for (const uint64_t page : {10u, 13u, 17u, 19u, 21u}) {
    out.clear();
    leap.OnFault(page, &out);
  }
  EXPECT_EQ(leap.MajorityStride(), 2);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0], 23u);  // next page along the stride-2 trend
}

TEST(Leap, AlternatingStridesNeverProduceACandidate) {
  // Alternating 1,3,1,3,... deltas: each stride holds exactly half the
  // window, but the Boyer-Moore counter cancels to zero, so no candidate
  // survives to the occurrence check — the at-least-half rule must not
  // resurrect a stride the vote itself rejected.
  LeapPrefetcher leap;
  std::vector<uint64_t> out;
  uint64_t page = 0;
  for (int i = 0; i < 17; ++i) {  // 16 deltas: 8 full (1,3) pairs
    out.clear();
    leap.OnFault(page, &out);
    page += (i % 2 == 0) ? 1 : 3;
  }
  EXPECT_EQ(leap.MajorityStride(), 0);
  EXPECT_TRUE(out.empty());
}

TEST(Leap, WindowAdaptsToFeedback) {
  LeapPrefetcher leap(32, 16);
  std::vector<uint64_t> out;
  for (uint64_t p = 0; p < 16; ++p) {
    out.clear();
    leap.OnFault(p, &out);
  }
  const size_t before = out.size();
  for (int i = 0; i < 8; ++i) {
    leap.Feedback(true);
  }
  out.clear();
  leap.OnFault(16, &out);
  EXPECT_GT(out.size(), before);
  for (int i = 0; i < 16; ++i) {
    leap.Feedback(false);
  }
  const size_t grown = out.size();
  out.clear();
  leap.OnFault(17, &out);
  EXPECT_LT(out.size(), grown);
}

}  // namespace
}  // namespace mira::cache
