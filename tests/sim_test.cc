#include <gtest/gtest.h>

#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/mt_scheduler.h"
#include "src/sim/resource.h"

namespace mira::sim {
namespace {

TEST(SimClock, AdvanceAndAdvanceTo) {
  SimClock c;
  EXPECT_EQ(c.now_ns(), 0u);
  c.Advance(100);
  EXPECT_EQ(c.now_ns(), 100u);
  c.AdvanceTo(50);  // no-op (past)
  EXPECT_EQ(c.now_ns(), 100u);
  c.AdvanceTo(250);
  EXPECT_EQ(c.now_ns(), 250u);
}

TEST(CostModel, TransferScalesWithBytes) {
  const CostModel& m = CostModel::Default();
  EXPECT_EQ(m.TransferNs(0), 0u);
  EXPECT_GT(m.TransferNs(4096), m.TransferNs(64));
  // 50 Gbps = 6.25 B/ns → 4 KiB ≈ 655 ns.
  EXPECT_NEAR(static_cast<double>(m.TransferNs(4096)), 655.0, 5.0);
  EXPECT_GT(m.OneSidedReadNs(64), m.rdma_rtt_ns);
}

TEST(SerialResource, SerializesOverlappingRequests) {
  SerialResource r;
  EXPECT_EQ(r.Acquire(0, 100), 100u);
  // Arrives at t=50 while busy until 100 → runs 100..200.
  EXPECT_EQ(r.Acquire(50, 100), 200u);
  // Arrives after idle → runs immediately.
  EXPECT_EQ(r.Acquire(500, 10), 510u);
  EXPECT_EQ(r.requests(), 3u);
  EXPECT_EQ(r.total_busy_ns(), 210u);
  EXPECT_EQ(r.total_queue_ns(), 50u);
}

TEST(BandwidthLink, OccupancySharedLatencyOverlapped) {
  BandwidthLink link(1.0);  // 1 byte/ns
  // Two concurrent 1000 B transfers with 500 ns latency: occupancy
  // serializes (1000 + 1000), latency overlaps.
  const uint64_t first = link.Transfer(0, 1000, 500);
  const uint64_t second = link.Transfer(0, 1000, 500);
  EXPECT_EQ(first, 1500u);
  EXPECT_EQ(second, 2500u);
  EXPECT_EQ(link.total_bytes(), 2000u);
}

TEST(MtScheduler, MinClockFirstInterleavesDeterministically) {
  MtScheduler sched;
  std::vector<int> order;
  // Thread 0 steps cost 10ns, thread 1 steps cost 25ns.
  int steps0 = 0, steps1 = 0;
  sched.AddThread([&](SimClock& clk) {
    order.push_back(0);
    clk.Advance(10);
    return ++steps0 < 5;
  });
  sched.AddThread([&](SimClock& clk) {
    order.push_back(1);
    clk.Advance(25);
    return ++steps1 < 2;
  });
  const uint64_t makespan = sched.RunToCompletion();
  EXPECT_EQ(makespan, 50u);
  EXPECT_EQ(steps0, 5);
  EXPECT_EQ(steps1, 2);
  // The fast thread runs several steps between slow-thread steps.
  const std::vector<int> expected = {0, 1, 0, 0, 1, 0, 0};
  EXPECT_EQ(order, expected);
}

TEST(MtScheduler, SharedResourceContentionSlowsThreads) {
  // N threads each need the same serial resource for all their work: the
  // makespan must grow linearly with N.
  auto run = [](int threads) {
    SerialResource lock;
    MtScheduler sched;
    for (int t = 0; t < threads; ++t) {
      auto remaining = std::make_shared<int>(10);
      sched.AddThread([&lock, remaining](SimClock& clk) {
        clk.AdvanceTo(lock.Acquire(clk.now_ns(), 100));
        return --*remaining > 0;
      });
    }
    return sched.RunToCompletion();
  };
  const uint64_t one = run(1);
  const uint64_t four = run(4);
  EXPECT_EQ(one, 1000u);
  EXPECT_EQ(four, 4000u);
}

TEST(MtScheduler, EmptyIsZero) {
  MtScheduler sched;
  EXPECT_EQ(sched.RunToCompletion(), 0u);
}

}  // namespace
}  // namespace mira::sim
