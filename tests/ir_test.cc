// IR construction, printing, verification, cloning.

#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"

namespace mira::ir {
namespace {

TEST(Builder, SimpleFunctionShape) {
  Module m;
  FunctionBuilder f(&m, "add2", {Type::kI64, Type::kI64}, Type::kI64);
  f.Return(f.Add(f.Arg(0), f.Arg(1)));
  ASSERT_EQ(m.functions.size(), 1u);
  const Function& func = *m.functions[0];
  EXPECT_EQ(func.name, "add2");
  EXPECT_EQ(func.params.size(), 2u);
  EXPECT_EQ(func.body.body.size(), 2u);  // add + return
  EXPECT_TRUE(VerifyModule(m).ok());
}

TEST(Builder, NestedControlFlowVerifies) {
  Module m;
  FunctionBuilder f(&m, "main", {}, Type::kI64);
  const Local acc = f.DeclLocal(Type::kI64);
  f.StoreLocal(acc, f.ConstI(0));
  f.For(f.ConstI(0), f.ConstI(10), f.ConstI(1), [&](Value i) {
    f.If(f.CmpLt(i, f.ConstI(5)),
         [&] { f.StoreLocal(acc, f.Add(f.LoadLocal(acc), i)); },
         [&] { f.StoreLocal(acc, f.Sub(f.LoadLocal(acc), i)); });
    f.For(f.ConstI(0), i, f.ConstI(1),
          [&](Value j) { f.StoreLocal(acc, f.Add(f.LoadLocal(acc), j)); });
  });
  f.Return(f.LoadLocal(acc));
  EXPECT_TRUE(VerifyModule(m).ok());
}

TEST(Builder, MemoryOpsCarryAttributes) {
  Module m;
  FunctionBuilder f(&m, "main", {}, Type::kVoid);
  const Value p = f.Alloc(f.ConstI(4096), "buf", 16);
  const Value addr = f.Index(p, f.ConstI(3), 16, 8);
  f.Store(addr, f.ConstI(1), 8);
  f.Return();
  EXPECT_TRUE(VerifyModule(m).ok());
  const Function& func = *m.functions[0];
  const Instr* alloc = nullptr;
  const Instr* index = nullptr;
  WalkInstrs(func.body, [&](const Instr& i) {
    if (i.kind == OpKind::kAlloc) {
      alloc = &i;
    }
    if (i.kind == OpKind::kIndex) {
      index = &i;
    }
  });
  ASSERT_NE(alloc, nullptr);
  EXPECT_EQ(alloc->s_attr, "buf");
  EXPECT_EQ(alloc->i_attr, 16);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->i_attr, 16);
  EXPECT_EQ(index->i_attr2, 8);
}

TEST(Printer, ShowsRmemDialectMarkers) {
  Module m;
  FunctionBuilder f(&m, "main", {}, Type::kVoid);
  const Value p = f.Alloc(f.ConstI(64), "x", 8);
  const Value v = f.Load(f.Index(p, f.ConstI(0), 8, 0), 8, Type::kI64);
  (void)v;
  f.Return();
  // Convert the load to an rmem op with attributes by hand.
  WalkInstrs(m.functions[0]->body, [&](Instr& i) {
    if (i.kind == OpKind::kLoad) {
      i.kind = OpKind::kRmemLoad;
      i.mem.promoted = true;
      i.mem.batch_group = 3;
    }
  });
  const std::string text = PrintModule(m);
  EXPECT_NE(text.find("rmem.load"), std::string::npos);
  EXPECT_NE(text.find("promoted"), std::string::npos);
  EXPECT_NE(text.find("batch=3"), std::string::npos);
  EXPECT_NE(text.find("remotable.alloc"), std::string::npos);
}

TEST(Verifier, CatchesUseBeforeDef) {
  Module m;
  FunctionBuilder f(&m, "main", {}, Type::kI64);
  f.Return(f.ConstI(1));
  // Corrupt: make return reference an undefined value.
  m.functions[0]->body.body.back().operands[0] = 999;
  EXPECT_FALSE(VerifyModule(m).ok());
}

TEST(Verifier, CatchesBadOperandCount) {
  Module m;
  FunctionBuilder f(&m, "main", {}, Type::kVoid);
  const Value a = f.ConstI(1);
  const Value b = f.Add(a, a);
  (void)b;
  f.Return();
  m.functions[0]->body.body[1].operands.pop_back();
  EXPECT_FALSE(VerifyModule(m).ok());
}

TEST(Verifier, CatchesAllocWithoutLabel) {
  Module m;
  FunctionBuilder f(&m, "main", {}, Type::kVoid);
  f.Alloc(f.ConstI(64), "x", 8);
  f.Return();
  m.functions[0]->body.body[1].s_attr.clear();
  EXPECT_FALSE(VerifyModule(m).ok());
}

TEST(Verifier, CatchesBadCallee) {
  Module m;
  FunctionBuilder f(&m, "callee", {}, Type::kVoid);
  f.Return();
  FunctionBuilder g(&m, "main", {}, Type::kVoid);
  g.Call("callee", {});
  g.Return();
  WalkInstrs(m.functions[1]->body, [&](Instr& i) {
    if (i.kind == OpKind::kCall) {
      i.callee = 42;
    }
  });
  EXPECT_FALSE(VerifyModule(m).ok());
}

TEST(Verifier, CatchesZeroByteLoad) {
  Module m;
  FunctionBuilder f(&m, "main", {}, Type::kVoid);
  const Value p = f.Alloc(f.ConstI(64), "x", 8);
  f.Load(p, 8, Type::kI64);
  f.Return();
  WalkInstrs(m.functions[0]->body, [&](Instr& i) {
    if (i.kind == OpKind::kLoad) {
      i.mem.bytes = 0;
    }
  });
  EXPECT_FALSE(VerifyModule(m).ok());
}

TEST(Module, CloneIsDeepAndIndependent) {
  Module m;
  FunctionBuilder f(&m, "main", {}, Type::kI64);
  f.Return(f.ConstI(7));
  Module copy = m.Clone();
  copy.functions[0]->body.body[0].i_attr = 9;
  EXPECT_EQ(m.functions[0]->body.body[0].i_attr, 7);
  EXPECT_EQ(copy.functions[0]->body.body[0].i_attr, 9);
  EXPECT_EQ(m.InstrCount(), copy.InstrCount());
}

TEST(Module, InstrCountRecursesIntoRegions) {
  Module m;
  FunctionBuilder f(&m, "main", {}, Type::kVoid);
  f.For(f.ConstI(0), f.ConstI(10), f.ConstI(1), [&](Value i) {
    f.If(f.CmpLt(i, f.ConstI(5)), [&] { f.ConstI(1); });
  });
  f.Return();
  // consts(3) + for + cmp-const + cmp + if + inner const + return = 9
  EXPECT_EQ(m.InstrCount(), 9u);
}

TEST(Module, FindFunctionAndIndex) {
  Module m;
  FunctionBuilder f(&m, "a", {}, Type::kVoid);
  f.Return();
  FunctionBuilder g(&m, "b", {}, Type::kVoid);
  g.Return();
  EXPECT_NE(m.FindFunction("a"), nullptr);
  EXPECT_EQ(m.FindFunction("zzz"), nullptr);
  EXPECT_EQ(m.FunctionIndex("b"), 1u);
}

}  // namespace
}  // namespace mira::ir
