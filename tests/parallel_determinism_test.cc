// Determinism suite for the host-parallel evaluation engine: running the
// iterative optimizer with a worker pool must produce bit-identical
// results to the serial configuration — same iteration log, same plan,
// same simulated times — across seeds. Every candidate/probe simulation
// executes in its own world, and ParallelFor writes results into
// index-addressed slots, so host scheduling cannot leak into output.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/interp/interpreter.h"
#include "src/pipeline/optimizer.h"
#include "src/workloads/workloads.h"

namespace mira {
namespace {

workloads::Workload TestGraph() {
  workloads::GraphParams p;
  p.num_edges = 20'000;
  p.num_nodes = 5'000;
  p.epochs = 2;
  return workloads::BuildGraphTraversal(p);
}

struct OptimizeResult {
  std::vector<pipeline::IterationLog> log;
  std::string plan;
  uint64_t baseline_swap_ns = 0;
  uint64_t analysis_scope_instrs = 0;
};

OptimizeResult RunOptimizer(const workloads::Workload& w, uint64_t train_seed, int jobs) {
  pipeline::OptimizeOptions opts;
  opts.local_bytes = w.footprint_bytes / 2;
  opts.max_iterations = 2;
  opts.train_seed = train_seed;
  opts.jobs = jobs;
  pipeline::IterativeOptimizer optimizer(w.module.get(), opts);
  auto compiled = optimizer.Optimize();
  OptimizeResult out;
  out.log = optimizer.log();
  out.plan = compiled.plan.ToString();
  out.baseline_swap_ns = optimizer.baseline_swap_ns();
  out.analysis_scope_instrs = compiled.analysis_scope_instrs;
  return out;
}

void ExpectIdentical(const OptimizeResult& serial, const OptimizeResult& parallel,
                     uint64_t seed) {
  EXPECT_EQ(serial.plan, parallel.plan) << "seed " << seed;
  EXPECT_EQ(serial.baseline_swap_ns, parallel.baseline_swap_ns) << "seed " << seed;
  EXPECT_EQ(serial.analysis_scope_instrs, parallel.analysis_scope_instrs) << "seed " << seed;
  ASSERT_EQ(serial.log.size(), parallel.log.size()) << "seed " << seed;
  for (size_t i = 0; i < serial.log.size(); ++i) {
    const auto& a = serial.log[i];
    const auto& b = parallel.log[i];
    EXPECT_EQ(a.iteration, b.iteration) << "seed " << seed << " iter " << i;
    EXPECT_EQ(a.func_frac, b.func_frac) << "seed " << seed << " iter " << i;
    EXPECT_EQ(a.time_ns, b.time_ns) << "seed " << seed << " iter " << i;
    EXPECT_EQ(a.functions_selected, b.functions_selected) << "seed " << seed << " iter " << i;
    EXPECT_EQ(a.objects_selected, b.objects_selected) << "seed " << seed << " iter " << i;
    EXPECT_EQ(a.sections, b.sections) << "seed " << seed << " iter " << i;
    EXPECT_EQ(a.rolled_back, b.rolled_back) << "seed " << seed << " iter " << i;
  }
}

TEST(ParallelDeterminism, OptimizerSerialVsParallelBitIdentical) {
  const auto w = TestGraph();
  for (const uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const OptimizeResult serial = RunOptimizer(w, seed, /*jobs=*/1);
    const OptimizeResult parallel = RunOptimizer(w, seed, /*jobs=*/4);
    ExpectIdentical(serial, parallel, seed);
  }
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreStable) {
  // Two parallel runs with the same seed must agree with each other too
  // (catches result slots keyed by completion order rather than index).
  const auto w = TestGraph();
  const OptimizeResult a = RunOptimizer(w, 42, /*jobs=*/4);
  const OptimizeResult b = RunOptimizer(w, 42, /*jobs=*/4);
  ExpectIdentical(a, b, 42);
}

TEST(ParallelDeterminism, SimulationCounterAdvances) {
  // The bench harness reports sims/sec from this process-wide counter; an
  // optimizer pass must account for its probe grid and candidate runs.
  const auto w = TestGraph();
  const uint64_t before = interp::SimulationsRun();
  RunOptimizer(w, 42, /*jobs=*/2);
  const uint64_t after = interp::SimulationsRun();
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace mira
