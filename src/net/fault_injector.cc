#include "src/net/fault_injector.h"

namespace mira::net {

const char* VerbName(Verb v) {
  switch (v) {
    case Verb::kReadSync:
      return "read.sync";
    case Verb::kReadAsync:
      return "read.async";
    case Verb::kReadGather:
      return "read.gather";
    case Verb::kWriteSync:
      return "write.sync";
    case Verb::kWriteAsync:
      return "write.async";
    case Verb::kTwoSidedRead:
      return "two_sided.read";
    case Verb::kTwoSidedWrite:
      return "two_sided.write";
    case Verb::kRpc:
      return "rpc";
  }
  return "?";
}

bool FaultPlan::AnyFaults() const {
  for (const auto& v : verbs) {
    if (v.CanFault()) {
      return true;
    }
  }
  return !outages.empty() || !degraded.empty() || torn_writeback_probability > 0.0 ||
         !node_crashes.empty();
}

FaultPlan FaultPlan::Clean() { return FaultPlan{}; }

FaultPlan FaultPlan::Lossy(uint64_t seed, double p, double tail_p) {
  FaultPlan plan;
  plan.seed = seed;
  for (auto& v : plan.verbs) {
    v.drop_probability = p / 2;
    v.timeout_probability = p / 2;
    v.tail_probability = tail_p;
    v.tail_multiplier = 4.0;
  }
  return plan;
}

FaultPlan FaultPlan::BurstyOutage(uint64_t seed, uint64_t first_start_ns, uint64_t width_ns,
                                  uint64_t period_ns, int count) {
  FaultPlan plan;
  plan.seed = seed;
  for (int i = 0; i < count; ++i) {
    const uint64_t start = first_start_ns + static_cast<uint64_t>(i) * period_ns;
    plan.outages.push_back(OutageWindow{start, start + width_ns});
  }
  return plan;
}

FaultPlan FaultPlan::DegradedBandwidth(uint64_t seed, double bandwidth_factor) {
  FaultPlan plan;
  plan.seed = seed;
  plan.degraded.push_back(DegradedWindow{0, UINT64_MAX, bandwidth_factor});
  for (auto& v : plan.verbs) {
    v.tail_probability = 0.02;
    v.tail_multiplier = 2.0;
  }
  return plan;
}

FaultPlan FaultPlan::SilentCorruption(uint64_t seed, double corrupt_p, double stale_p,
                                      double duplicate_p) {
  FaultPlan plan;
  plan.seed = seed;
  for (const Verb v : {Verb::kReadSync, Verb::kReadAsync, Verb::kReadGather,
                       Verb::kTwoSidedRead}) {
    plan.verb(v).corrupt_probability = corrupt_p;
    plan.verb(v).stale_probability = stale_p;
  }
  for (const Verb v : {Verb::kWriteSync, Verb::kWriteAsync, Verb::kTwoSidedWrite}) {
    plan.verb(v).corrupt_probability = corrupt_p;
    plan.verb(v).duplicate_probability = duplicate_p;
  }
  return plan;
}

FaultPlan FaultPlan::TornWriteback(uint64_t seed, double async_drop_p, double tear_p,
                                   double sync_corrupt_p) {
  FaultPlan plan;
  plan.seed = seed;
  plan.verb(Verb::kWriteAsync).drop_probability = async_drop_p;
  plan.verb(Verb::kWriteSync).corrupt_probability = sync_corrupt_p;
  plan.torn_writeback_probability = tear_p;
  return plan;
}

FaultPlan FaultPlan::NodeCrash(uint64_t seed, int node, uint64_t crash_ns, uint64_t rejoin_ns) {
  FaultPlan plan;
  plan.seed = seed;
  plan.node_crashes.push_back(NodeCrashEvent{node, crash_ns, rejoin_ns});
  return plan;
}

FaultPlan FaultPlan::RollingCrashes(uint64_t seed, int num_nodes, int count,
                                    uint64_t first_crash_ns, uint64_t period_ns,
                                    uint64_t downtime_ns) {
  FaultPlan plan;
  plan.seed = seed;
  for (int i = 0; i < count; ++i) {
    const uint64_t crash = first_crash_ns + static_cast<uint64_t>(i) * period_ns;
    plan.node_crashes.push_back(NodeCrashEvent{(1 + i) % num_nodes, crash, crash + downtime_ns});
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {}

bool FaultInjector::InOutage(uint64_t now_ns) const {
  for (const auto& w : plan_.outages) {
    if (now_ns >= w.start_ns && now_ns < w.end_ns) {
      return true;
    }
  }
  return false;
}

uint64_t FaultInjector::NextAvailableNs(uint64_t now_ns) const {
  // Windows may abut; chase through any chain covering `now_ns`.
  uint64_t t = now_ns;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& w : plan_.outages) {
      if (t >= w.start_ns && t < w.end_ns) {
        t = w.end_ns;
        moved = true;
      }
    }
  }
  return t;
}

FaultInjector::Decision FaultInjector::Evaluate(Verb verb, uint64_t now_ns, uint64_t wire_ns) {
  Decision d;
  if (InOutage(now_ns)) {
    d.unavailable = true;
    return d;  // no RNG draw: outage decisions are purely schedule-driven
  }
  const VerbFaultConfig& cfg = plan_.verb(verb);
  // Draws are conditional on a nonzero probability so clean verbs consume no
  // RNG state — the schedule for one verb is independent of which other
  // verbs a scenario leaves clean.
  if (cfg.drop_probability > 0.0 && rng_.NextDouble() < cfg.drop_probability) {
    d.drop = true;
    return d;
  }
  if (cfg.timeout_probability > 0.0 && rng_.NextDouble() < cfg.timeout_probability) {
    d.timeout = true;
    return d;
  }
  if (cfg.tail_probability > 0.0 && rng_.NextDouble() < cfg.tail_probability) {
    d.extra_ns += static_cast<uint64_t>(static_cast<double>(wire_ns) *
                                        (cfg.tail_multiplier - 1.0));
  }
  for (const auto& w : plan_.degraded) {
    if (now_ns >= w.start_ns && now_ns < w.end_ns && w.bandwidth_factor > 0.0 &&
        w.bandwidth_factor < 1.0) {
      d.extra_ns += static_cast<uint64_t>(static_cast<double>(wire_ns) *
                                          (1.0 / w.bandwidth_factor - 1.0));
    }
  }
  // Silent faults: the attempt succeeds, but the delivery is tainted. Same
  // conditional-draw rule as above so plans without silent modes keep their
  // historical RNG schedule.
  if (cfg.corrupt_probability > 0.0 && rng_.NextDouble() < cfg.corrupt_probability) {
    d.corrupt = true;
  }
  if (cfg.stale_probability > 0.0 && rng_.NextDouble() < cfg.stale_probability) {
    d.stale = true;
  }
  if (cfg.duplicate_probability > 0.0 && rng_.NextDouble() < cfg.duplicate_probability) {
    d.duplicate = true;
  }
  return d;
}

size_t FaultInjector::EvaluateTear(size_t n) {
  if (plan_.torn_writeback_probability <= 0.0 || n < 2) {
    return n;
  }
  if (rng_.NextDouble() >= plan_.torn_writeback_probability) {
    return n;
  }
  // Tear somewhere strictly inside the burst: at least one line lands, at
  // least one is lost.
  return 1 + static_cast<size_t>(rng_.NextDouble() * static_cast<double>(n - 1));
}

double FaultInjector::NextJitter() { return rng_.NextDouble() * 2.0 - 1.0; }

double FaultInjector::NextJitterIn(double lo, double hi) {
  if (lo == -1.0 && hi == 1.0) {
    // The historical formula: `u * 2 - 1` and `lo + u * (hi - lo)` are not
    // IEEE-identical for all u, and retry schedules are pinned bit-exactly.
    return NextJitter();
  }
  return lo + rng_.NextDouble() * (hi - lo);
}

}  // namespace mira::net
