#include "src/net/fault_injector.h"

#include "src/support/str.h"

namespace mira::net {

using support::JsonValue;

const char* VerbName(Verb v) {
  switch (v) {
    case Verb::kReadSync:
      return "read.sync";
    case Verb::kReadAsync:
      return "read.async";
    case Verb::kReadGather:
      return "read.gather";
    case Verb::kWriteSync:
      return "write.sync";
    case Verb::kWriteAsync:
      return "write.async";
    case Verb::kTwoSidedRead:
      return "two_sided.read";
    case Verb::kTwoSidedWrite:
      return "two_sided.write";
    case Verb::kRpc:
      return "rpc";
  }
  return "?";
}

bool VerbFromName(std::string_view name, Verb* out) {
  for (size_t i = 0; i < kNumVerbs; ++i) {
    const Verb v = static_cast<Verb>(i);
    if (name == VerbName(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

namespace {

JsonValue VerbConfigToJson(const VerbFaultConfig& cfg) {
  // Emit only knobs that differ from the default, so plans read as what
  // they inject and defaulted fields round-trip by omission.
  const VerbFaultConfig def;
  JsonValue o = JsonValue::Object();
  if (cfg.drop_probability != def.drop_probability) {
    o.Set("drop_probability", JsonValue::Double(cfg.drop_probability));
  }
  if (cfg.timeout_probability != def.timeout_probability) {
    o.Set("timeout_probability", JsonValue::Double(cfg.timeout_probability));
  }
  if (cfg.tail_probability != def.tail_probability) {
    o.Set("tail_probability", JsonValue::Double(cfg.tail_probability));
  }
  if (cfg.tail_multiplier != def.tail_multiplier) {
    o.Set("tail_multiplier", JsonValue::Double(cfg.tail_multiplier));
  }
  if (cfg.corrupt_probability != def.corrupt_probability) {
    o.Set("corrupt_probability", JsonValue::Double(cfg.corrupt_probability));
  }
  if (cfg.stale_probability != def.stale_probability) {
    o.Set("stale_probability", JsonValue::Double(cfg.stale_probability));
  }
  if (cfg.duplicate_probability != def.duplicate_probability) {
    o.Set("duplicate_probability", JsonValue::Double(cfg.duplicate_probability));
  }
  return o;
}

VerbFaultConfig VerbConfigFromJson(const JsonValue& o) {
  VerbFaultConfig cfg;
  cfg.drop_probability = o.GetDouble("drop_probability", cfg.drop_probability);
  cfg.timeout_probability = o.GetDouble("timeout_probability", cfg.timeout_probability);
  cfg.tail_probability = o.GetDouble("tail_probability", cfg.tail_probability);
  cfg.tail_multiplier = o.GetDouble("tail_multiplier", cfg.tail_multiplier);
  cfg.corrupt_probability = o.GetDouble("corrupt_probability", cfg.corrupt_probability);
  cfg.stale_probability = o.GetDouble("stale_probability", cfg.stale_probability);
  cfg.duplicate_probability = o.GetDouble("duplicate_probability", cfg.duplicate_probability);
  return cfg;
}

}  // namespace

JsonValue FaultPlan::ToJson() const {
  JsonValue o = JsonValue::Object();
  o.Set("seed", JsonValue::U64(seed));
  const VerbFaultConfig def;
  JsonValue verbs_obj = JsonValue::Object();
  for (size_t i = 0; i < kNumVerbs; ++i) {
    if (!(verbs[i] == def)) {
      verbs_obj.Set(VerbName(static_cast<Verb>(i)), VerbConfigToJson(verbs[i]));
    }
  }
  if (verbs_obj.size() > 0) {
    o.Set("verbs", std::move(verbs_obj));
  }
  if (!outages.empty()) {
    JsonValue arr = JsonValue::Array();
    for (const auto& w : outages) {
      JsonValue e = JsonValue::Object();
      e.Set("start_ns", JsonValue::U64(w.start_ns));
      e.Set("end_ns", JsonValue::U64(w.end_ns));
      arr.Append(std::move(e));
    }
    o.Set("outages", std::move(arr));
  }
  if (!degraded.empty()) {
    JsonValue arr = JsonValue::Array();
    for (const auto& w : degraded) {
      JsonValue e = JsonValue::Object();
      e.Set("start_ns", JsonValue::U64(w.start_ns));
      e.Set("end_ns", JsonValue::U64(w.end_ns));
      e.Set("bandwidth_factor", JsonValue::Double(w.bandwidth_factor));
      arr.Append(std::move(e));
    }
    o.Set("degraded", std::move(arr));
  }
  if (torn_writeback_probability != 0.0) {
    o.Set("torn_writeback_probability", JsonValue::Double(torn_writeback_probability));
  }
  if (!node_crashes.empty()) {
    JsonValue arr = JsonValue::Array();
    for (const auto& c : node_crashes) {
      JsonValue e = JsonValue::Object();
      e.Set("node", JsonValue::I64(c.node));
      e.Set("crash_ns", JsonValue::U64(c.crash_ns));
      e.Set("rejoin_ns", JsonValue::U64(c.rejoin_ns));
      arr.Append(std::move(e));
    }
    o.Set("node_crashes", std::move(arr));
  }
  return o;
}

support::Result<FaultPlan> FaultPlan::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return support::Status::InvalidArgument("FaultPlan JSON must be an object");
  }
  FaultPlan plan;
  plan.seed = json.GetU64("seed", plan.seed);
  if (const JsonValue* verbs_obj = json.Find("verbs")) {
    if (!verbs_obj->is_object()) {
      return support::Status::InvalidArgument("FaultPlan 'verbs' must be an object");
    }
    for (const auto& [name, cfg] : verbs_obj->items()) {
      Verb v;
      if (!VerbFromName(name, &v)) {
        return support::Status::InvalidArgument(
            support::StrFormat("unknown verb '%s' in FaultPlan JSON", name.c_str()));
      }
      if (!cfg.is_object()) {
        return support::Status::InvalidArgument(
            support::StrFormat("verb '%s' config must be an object", name.c_str()));
      }
      plan.verb(v) = VerbConfigFromJson(cfg);
    }
  }
  if (const JsonValue* arr = json.Find("outages")) {
    if (!arr->is_array()) {
      return support::Status::InvalidArgument("FaultPlan 'outages' must be an array");
    }
    for (size_t i = 0; i < arr->size(); ++i) {
      const JsonValue& e = arr->at(i);
      if (!e.is_object()) {
        return support::Status::InvalidArgument("outage entry must be an object");
      }
      OutageWindow w;
      w.start_ns = e.GetU64("start_ns", 0);
      w.end_ns = e.GetU64("end_ns", 0);
      plan.outages.push_back(w);
    }
  }
  if (const JsonValue* arr = json.Find("degraded")) {
    if (!arr->is_array()) {
      return support::Status::InvalidArgument("FaultPlan 'degraded' must be an array");
    }
    for (size_t i = 0; i < arr->size(); ++i) {
      const JsonValue& e = arr->at(i);
      if (!e.is_object()) {
        return support::Status::InvalidArgument("degraded entry must be an object");
      }
      DegradedWindow w;
      w.start_ns = e.GetU64("start_ns", 0);
      w.end_ns = e.GetU64("end_ns", 0);
      w.bandwidth_factor = e.GetDouble("bandwidth_factor", 1.0);
      plan.degraded.push_back(w);
    }
  }
  plan.torn_writeback_probability =
      json.GetDouble("torn_writeback_probability", plan.torn_writeback_probability);
  if (const JsonValue* arr = json.Find("node_crashes")) {
    if (!arr->is_array()) {
      return support::Status::InvalidArgument("FaultPlan 'node_crashes' must be an array");
    }
    for (size_t i = 0; i < arr->size(); ++i) {
      const JsonValue& e = arr->at(i);
      if (!e.is_object()) {
        return support::Status::InvalidArgument("node_crash entry must be an object");
      }
      NodeCrashEvent c;
      c.node = static_cast<int>(e.GetI64("node", 0));
      c.crash_ns = e.GetU64("crash_ns", 0);
      c.rejoin_ns = e.GetU64("rejoin_ns", 0);
      plan.node_crashes.push_back(c);
    }
  }
  return plan;
}

support::Result<FaultPlan> FaultPlan::FromJsonText(std::string_view text) {
  auto doc = JsonValue::Parse(text);
  if (!doc.ok()) {
    return doc.status();
  }
  return FromJson(doc.value());
}

bool FaultPlan::AnyFaults() const {
  for (const auto& v : verbs) {
    if (v.CanFault()) {
      return true;
    }
  }
  return !outages.empty() || !degraded.empty() || torn_writeback_probability > 0.0 ||
         !node_crashes.empty();
}

FaultPlan FaultPlan::Clean() { return FaultPlan{}; }

FaultPlan FaultPlan::Lossy(uint64_t seed, double p, double tail_p) {
  FaultPlan plan;
  plan.seed = seed;
  for (auto& v : plan.verbs) {
    v.drop_probability = p / 2;
    v.timeout_probability = p / 2;
    v.tail_probability = tail_p;
    v.tail_multiplier = 4.0;
  }
  return plan;
}

FaultPlan FaultPlan::BurstyOutage(uint64_t seed, uint64_t first_start_ns, uint64_t width_ns,
                                  uint64_t period_ns, int count) {
  FaultPlan plan;
  plan.seed = seed;
  for (int i = 0; i < count; ++i) {
    const uint64_t start = first_start_ns + static_cast<uint64_t>(i) * period_ns;
    plan.outages.push_back(OutageWindow{start, start + width_ns});
  }
  return plan;
}

FaultPlan FaultPlan::DegradedBandwidth(uint64_t seed, double bandwidth_factor) {
  FaultPlan plan;
  plan.seed = seed;
  plan.degraded.push_back(DegradedWindow{0, UINT64_MAX, bandwidth_factor});
  for (auto& v : plan.verbs) {
    v.tail_probability = 0.02;
    v.tail_multiplier = 2.0;
  }
  return plan;
}

FaultPlan FaultPlan::SilentCorruption(uint64_t seed, double corrupt_p, double stale_p,
                                      double duplicate_p) {
  FaultPlan plan;
  plan.seed = seed;
  for (const Verb v : {Verb::kReadSync, Verb::kReadAsync, Verb::kReadGather,
                       Verb::kTwoSidedRead}) {
    plan.verb(v).corrupt_probability = corrupt_p;
    plan.verb(v).stale_probability = stale_p;
  }
  for (const Verb v : {Verb::kWriteSync, Verb::kWriteAsync, Verb::kTwoSidedWrite}) {
    plan.verb(v).corrupt_probability = corrupt_p;
    plan.verb(v).duplicate_probability = duplicate_p;
  }
  return plan;
}

FaultPlan FaultPlan::TornWriteback(uint64_t seed, double async_drop_p, double tear_p,
                                   double sync_corrupt_p) {
  FaultPlan plan;
  plan.seed = seed;
  plan.verb(Verb::kWriteAsync).drop_probability = async_drop_p;
  plan.verb(Verb::kWriteSync).corrupt_probability = sync_corrupt_p;
  plan.torn_writeback_probability = tear_p;
  return plan;
}

FaultPlan FaultPlan::NodeCrash(uint64_t seed, int node, uint64_t crash_ns, uint64_t rejoin_ns) {
  FaultPlan plan;
  plan.seed = seed;
  plan.node_crashes.push_back(NodeCrashEvent{node, crash_ns, rejoin_ns});
  return plan;
}

FaultPlan FaultPlan::RollingCrashes(uint64_t seed, int num_nodes, int count,
                                    uint64_t first_crash_ns, uint64_t period_ns,
                                    uint64_t downtime_ns) {
  FaultPlan plan;
  plan.seed = seed;
  for (int i = 0; i < count; ++i) {
    const uint64_t crash = first_crash_ns + static_cast<uint64_t>(i) * period_ns;
    plan.node_crashes.push_back(NodeCrashEvent{(1 + i) % num_nodes, crash, crash + downtime_ns});
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {}

bool FaultInjector::InOutage(uint64_t now_ns) const {
  for (const auto& w : plan_.outages) {
    if (now_ns >= w.start_ns && now_ns < w.end_ns) {
      return true;
    }
  }
  return false;
}

uint64_t FaultInjector::NextAvailableNs(uint64_t now_ns) const {
  // Windows may abut; chase through any chain covering `now_ns`.
  uint64_t t = now_ns;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& w : plan_.outages) {
      if (t >= w.start_ns && t < w.end_ns) {
        t = w.end_ns;
        moved = true;
      }
    }
  }
  return t;
}

FaultInjector::Decision FaultInjector::Evaluate(Verb verb, uint64_t now_ns, uint64_t wire_ns) {
  Decision d;
  if (InOutage(now_ns)) {
    d.unavailable = true;
    return d;  // no RNG draw: outage decisions are purely schedule-driven
  }
  const VerbFaultConfig& cfg = plan_.verb(verb);
  // Draws are conditional on a nonzero probability so clean verbs consume no
  // RNG state — the schedule for one verb is independent of which other
  // verbs a scenario leaves clean.
  if (cfg.drop_probability > 0.0 && rng_.NextDouble() < cfg.drop_probability) {
    d.drop = true;
    return d;
  }
  if (cfg.timeout_probability > 0.0 && rng_.NextDouble() < cfg.timeout_probability) {
    d.timeout = true;
    return d;
  }
  if (cfg.tail_probability > 0.0 && rng_.NextDouble() < cfg.tail_probability) {
    d.extra_ns += static_cast<uint64_t>(static_cast<double>(wire_ns) *
                                        (cfg.tail_multiplier - 1.0));
  }
  for (const auto& w : plan_.degraded) {
    if (now_ns >= w.start_ns && now_ns < w.end_ns && w.bandwidth_factor > 0.0 &&
        w.bandwidth_factor < 1.0) {
      d.extra_ns += static_cast<uint64_t>(static_cast<double>(wire_ns) *
                                          (1.0 / w.bandwidth_factor - 1.0));
    }
  }
  // Silent faults: the attempt succeeds, but the delivery is tainted. Same
  // conditional-draw rule as above so plans without silent modes keep their
  // historical RNG schedule.
  if (cfg.corrupt_probability > 0.0 && rng_.NextDouble() < cfg.corrupt_probability) {
    d.corrupt = true;
  }
  if (cfg.stale_probability > 0.0 && rng_.NextDouble() < cfg.stale_probability) {
    d.stale = true;
  }
  if (cfg.duplicate_probability > 0.0 && rng_.NextDouble() < cfg.duplicate_probability) {
    d.duplicate = true;
  }
  return d;
}

size_t FaultInjector::EvaluateTear(size_t n) {
  if (plan_.torn_writeback_probability <= 0.0 || n < 2) {
    return n;
  }
  if (rng_.NextDouble() >= plan_.torn_writeback_probability) {
    return n;
  }
  // Tear somewhere strictly inside the burst: at least one line lands, at
  // least one is lost.
  return 1 + static_cast<size_t>(rng_.NextDouble() * static_cast<double>(n - 1));
}

double FaultInjector::NextJitter() { return rng_.NextDouble() * 2.0 - 1.0; }

double FaultInjector::NextJitterIn(double lo, double hi) {
  if (lo == -1.0 && hi == 1.0) {
    // The historical formula: `u * 2 - 1` and `lo + u * (hi - lo)` are not
    // IEEE-identical for all u, and retry schedules are pinned bit-exactly.
    return NextJitter();
  }
  return lo + rng_.NextDouble() * (hi - lo);
}

}  // namespace mira::net
