#include "src/net/transport.h"

#include <algorithm>

#include "src/farmem/cluster.h"
#include "src/support/check.h"
#include "src/support/str.h"

namespace mira::net {

Transport::Transport(farmem::FarMemoryNode* node, const sim::CostModel& cost)
    : node_(node), cost_(cost), trace_(&telemetry::Trace()), link_(cost.network_bytes_per_ns) {
  auto& m = telemetry::Metrics();
  const auto verb = [&m](const char* name) {
    VerbTelemetry v;
    const std::string prefix = std::string("net.") + name;
    v.count_sink = m.Counter(prefix + ".count");
    v.bytes_sink = m.Counter(prefix + ".bytes");
    v.latency_sink = m.Histogram(prefix + ".latency_ns");
    return v;
  };
  read_sync_ = verb("read.sync");
  read_async_ = verb("read.async");
  read_gather_ = verb("read.gather");
  write_sync_ = verb("write.sync");
  write_async_ = verb("write.async");
  two_sided_read_ = verb("two_sided.read");
  two_sided_write_ = verb("two_sided.write");
  rpc_ = verb("rpc");
  fault_telemetry_.drops.sink = m.Counter("net.fault.drops");
  fault_telemetry_.timeouts.sink = m.Counter("net.fault.timeouts");
  fault_telemetry_.unavailable.sink = m.Counter("net.fault.unavailable");
  fault_telemetry_.tail_events.sink = m.Counter("net.fault.tail_events");
  fault_telemetry_.retries.sink = m.Counter("net.retry.attempts");
  fault_telemetry_.recovered.sink = m.Counter("net.retry.recovered");
  fault_telemetry_.exhausted.sink = m.Counter("net.retry.exhausted");
  fault_telemetry_.backoff_ns.sink = m.Counter("net.retry.backoff_ns");
  fault_telemetry_.lost_wait_ns.sink = m.Counter("net.retry.lost_wait_ns");
  fault_telemetry_.corrupt.sink = m.Counter("net.fault.corrupt_deliveries");
  fault_telemetry_.stale.sink = m.Counter("net.fault.stale_deliveries");
  fault_telemetry_.duplicate.sink = m.Counter("net.fault.duplicated_verbs");
  fault_telemetry_.torn.sink = m.Counter("net.fault.torn_writebacks");
  fault_telemetry_.outage_wait_ns.sink = m.Counter("net.fault.outage_wait_ns");
  fault_telemetry_.node_failures.sink = m.Counter("net.fault.node_failures");
  fault_telemetry_.failover_wait_ns.sink = m.Counter("net.fault.failover_wait_ns");
  fault_telemetry_.rereplicate_ns.sink = m.Counter("net.cluster.rereplicate_ns");
  inflight_telemetry_.registered.sink = m.Counter("net.inflight.registered");
  inflight_telemetry_.joined.sink = m.Counter("net.inflight.joined");
  inflight_telemetry_.joined_bytes.sink = m.Counter("net.inflight.joined_bytes");
  inflight_telemetry_.dropped.sink = m.Counter("net.inflight.dropped");
}

Transport::~Transport() { FlushTelemetry(); }

void Transport::FlushTelemetry() {
  auto lock = telemetry::Metrics().Acquire();
  const auto flush_verb = [](VerbTelemetry& v) {
    *v.count_sink += v.count;
    *v.bytes_sink += v.bytes;
    v.latency_sink->MergeFrom(v.latency);
    v.count = 0;
    v.bytes = 0;
    v.latency.Reset();
  };
  flush_verb(read_sync_);
  flush_verb(read_async_);
  flush_verb(read_gather_);
  flush_verb(write_sync_);
  flush_verb(write_async_);
  flush_verb(two_sided_read_);
  flush_verb(two_sided_write_);
  flush_verb(rpc_);
  const auto flush_counter = [](PendingCounter& c) {
    *c.sink += c.pending;
    c.pending = 0;
  };
  flush_counter(fault_telemetry_.drops);
  flush_counter(fault_telemetry_.timeouts);
  flush_counter(fault_telemetry_.unavailable);
  flush_counter(fault_telemetry_.tail_events);
  flush_counter(fault_telemetry_.retries);
  flush_counter(fault_telemetry_.recovered);
  flush_counter(fault_telemetry_.exhausted);
  flush_counter(fault_telemetry_.backoff_ns);
  flush_counter(fault_telemetry_.lost_wait_ns);
  flush_counter(fault_telemetry_.corrupt);
  flush_counter(fault_telemetry_.stale);
  flush_counter(fault_telemetry_.duplicate);
  flush_counter(fault_telemetry_.torn);
  flush_counter(fault_telemetry_.outage_wait_ns);
  flush_counter(fault_telemetry_.node_failures);
  flush_counter(fault_telemetry_.failover_wait_ns);
  flush_counter(fault_telemetry_.rereplicate_ns);
  flush_counter(inflight_telemetry_.registered);
  flush_counter(inflight_telemetry_.joined);
  flush_counter(inflight_telemetry_.joined_bytes);
  flush_counter(inflight_telemetry_.dropped);
}

// ---- In-flight request table (MSHR semantics) ----

uint64_t Transport::TryJoinRead(sim::SimClock& clk, farmem::RemoteAddr raddr, uint32_t len) {
  const InflightTable::Entry* e = inflight_.Find(raddr, len, clk.now_ns());
  if (e == nullptr) {
    return 0;
  }
  // The joiner adopts the pending fetch wholesale: its delivery taint (so
  // integrity checks see what the wire actually did) and its completion
  // time. Nothing is charged here — no message, no bytes, no link
  // occupancy; the caller decides how to account the residual wait.
  last_delivery_ = e->delivery;
  ++inflight_stats_.joined;
  inflight_stats_.joined_bytes += len;
  inflight_telemetry_.joined.Add(1);
  inflight_telemetry_.joined_bytes.Add(len);
  const uint64_t done = e->done_ns;
  if (trace_->enabled()) {
    trace_->Instant(clk, "net.inflight.join", "net",
                    support::StrFormat("{\"raddr\":%llu,\"residual_ns\":%llu}",
                                       static_cast<unsigned long long>(raddr),
                                       static_cast<unsigned long long>(
                                           done > clk.now_ns() ? done - clk.now_ns() : 0)));
  }
  return done;
}

void Transport::DropInflight(farmem::RemoteAddr raddr, uint64_t len) {
  const uint32_t n = inflight_.Drop(raddr, len);
  if (n > 0) {
    inflight_stats_.dropped += n;
    inflight_telemetry_.dropped.Add(n);
  }
}

void Transport::SetRetryPolicy(const RetryPolicy& policy) {
  for (auto& p : policies_) {
    p = policy;
  }
}

void Transport::SetRetryPolicy(Verb verb, const RetryPolicy& policy) {
  policies_[static_cast<size_t>(verb)] = policy;
}

// ---- Cluster / node-crash machinery ----

void Transport::SetCluster(farmem::FarMemoryCluster* cluster) {
  cluster_ = cluster;
  crash_applied_.clear();
  rejoin_applied_.clear();
}

void Transport::DataIn(farmem::RemoteAddr raddr, const void* src, uint64_t len) {
  if (cluster_ != nullptr) {
    cluster_->CopyIn(raddr, src, len);
  } else {
    node_->CopyIn(raddr, src, len);
  }
}

void Transport::DataOut(farmem::RemoteAddr raddr, void* dst, uint64_t len) {
  if (cluster_ != nullptr) {
    cluster_->CopyOut(raddr, dst, len);
  } else {
    node_->CopyOut(raddr, dst, len);
  }
}

void Transport::RecordOutageWait(uint64_t span_ns) {
  fault_stats_.outage_wait_ns += span_ns;
  fault_telemetry_.outage_wait_ns.Add(span_ns);
}

void Transport::SyncCluster(sim::SimClock& clk) {
  const auto& events = fault_->plan().node_crashes;
  if (crash_applied_.size() != events.size()) {
    crash_applied_.assign(events.size(), false);
    rejoin_applied_.assign(events.size(), false);
  }
  auto& trace = telemetry::Trace();
  // Apply due membership changes in TIMESTAMP order, draining the
  // re-replication queue between changes at distinct times. Several events
  // can come due in one verb gap (long compute phases issue no verbs);
  // collapsing them into one batch would let a later crash kill the only
  // live source for a chunk an earlier rejoin had just queued — data loss
  // the background healer would have prevented, since it had the whole gap
  // between the two event times to finish the copy.
  for (;;) {
    uint64_t next = UINT64_MAX;
    for (size_t i = 0; i < events.size(); ++i) {
      const NodeCrashEvent& e = events[i];
      if (!crash_applied_[i] && clk.now_ns() >= e.crash_ns) {
        next = std::min(next, e.crash_ns);
      }
      if (crash_applied_[i] && !rejoin_applied_[i] && e.rejoin_ns != 0 &&
          clk.now_ns() >= e.rejoin_ns) {
        next = std::min(next, e.rejoin_ns);
      }
    }
    if (next == UINT64_MAX) {
      break;
    }
    bool changed = false;
    for (size_t i = 0; i < events.size(); ++i) {
      const NodeCrashEvent& e = events[i];
      if (!crash_applied_[i] && e.crash_ns == next) {
        crash_applied_[i] = true;
        cluster_->CrashNode(e.node, e.crash_ns);
        changed = true;
        if (trace.enabled()) {
          trace.Instant(clk, "net.cluster.crash", "net",
                        support::StrFormat("{\"node\":%d}", e.node));
        }
      }
      if (crash_applied_[i] && !rejoin_applied_[i] && e.rejoin_ns != 0 && e.rejoin_ns == next) {
        rejoin_applied_[i] = true;
        cluster_->RejoinNode(e.node);
        changed = true;
        if (trace.enabled()) {
          trace.Instant(clk, "net.cluster.rejoin", "net",
                        support::StrFormat("{\"node\":%d}", e.node));
        }
      }
    }
    if (changed && cluster_->has_pending_rereplication()) {
      RereplicatePending(clk);
    }
  }
}

support::Status Transport::CheckNode(sim::SimClock& clk, Verb verb, int node) {
  if (cluster_ == nullptr || fault_ == nullptr || fault_->plan().node_crashes.empty()) {
    return support::Status::Ok();
  }
  SyncCluster(clk);
  if (cluster_->NodeAlive(node)) {
    return support::Status::Ok();
  }
  if (!cluster_->Detected(node)) {
    // Lease-based failure detection: the first verb that targets the dead
    // node blocks until the node's lease expires, then learns the truth.
    const uint64_t detect_at = cluster_->DetectionDeadlineNs(node);
    if (detect_at > clk.now_ns()) {
      const uint64_t wait = detect_at - clk.now_ns();
      clk.AdvanceTo(detect_at);
      fault_stats_.failover_wait_ns += wait;
      fault_telemetry_.failover_wait_ns.Add(wait);
      auto& prof = telemetry::Profiler();
      if (prof.enabled()) {
        prof.ChargeStall(clk, "failover_wait", VerbName(verb), wait);
      }
    }
    cluster_->MarkDetected(node);
    auto& trace = telemetry::Trace();
    if (trace.enabled()) {
      trace.Instant(clk, "net.cluster.node_failed", "net",
                    support::StrFormat("{\"verb\":\"%s\",\"node\":%d}", VerbName(verb), node));
    }
  }
  ++fault_stats_.node_failures;
  fault_telemetry_.node_failures.Add(1);
  return support::Status::NodeFailed(
      support::StrFormat("%s: far node %d crashed", VerbName(verb), node));
}

support::Status Transport::CheckTarget(sim::SimClock& clk, Verb verb,
                                       farmem::RemoteAddr raddr) {
  if (cluster_ == nullptr || fault_ == nullptr || fault_->plan().node_crashes.empty()) {
    return support::Status::Ok();
  }
  return CheckNode(clk, verb, cluster_->PrimaryOf(raddr));
}

void Transport::RereplicatePending(sim::SimClock& clk) {
  farmem::FarMemoryCluster::RereplicationJob job;
  auto& prof = telemetry::Profiler();
  auto& trace = telemetry::Trace();
  while (cluster_->RereplicateNext(&job)) {
    // Posting the background copy costs caller CPU (profiled under the
    // `rereplicate` site); the bytes then occupy the shared link without
    // blocking the caller — completion overlaps compute, but every byte is
    // charged to the link the foreground verbs share.
    clk.Advance(cost_.per_message_cpu_ns);
    fault_telemetry_.rereplicate_ns.Add(cost_.per_message_cpu_ns);
    if (prof.enabled()) {
      prof.ChargeStall(clk, "rereplicate", "cluster", cost_.per_message_cpu_ns);
    }
    if (job.bytes > 0) {
      ++stats_.messages;
      stats_.bytes_out += job.bytes;
      link_.Transfer(clk.now_ns(), job.bytes, cost_.rdma_rtt_ns);
    }
    if (trace.enabled()) {
      trace.Instant(clk, "net.cluster.rereplicate", "net",
                    support::StrFormat("{\"chunk\":%llu,\"bytes\":%llu}",
                                       static_cast<unsigned long long>(job.chunk),
                                       static_cast<unsigned long long>(job.bytes)));
    }
  }
}

support::Status Transport::RecoverNodeFailure(sim::SimClock& clk, farmem::RemoteAddr raddr,
                                              uint64_t len) {
  MIRA_CHECK_MSG(cluster_ != nullptr, "node-failure recovery without a cluster");
  support::Status out = support::Status::Ok();
  const uint64_t first = raddr >> farmem::FarMemoryCluster::kChunkShift;
  const uint64_t last =
      (raddr + (len == 0 ? 0 : len - 1)) >> farmem::FarMemoryCluster::kChunkShift;
  for (uint64_t chunk = first; chunk <= last; ++chunk) {
    auto s = cluster_->Failover(chunk);
    if (!s.ok()) {
      out = s;
    }
  }
  // Promotion done; top up the replication factor in the background.
  RereplicatePending(clk);
  return out;
}

void Transport::RecordVerbTrace(const char* name, const sim::SimClock& clk,
                                uint64_t start_ns, uint64_t done_ns, uint64_t bytes) {
  auto& trace = *trace_;
  if (trace.enabled()) {
    trace.Complete(clk, start_ns, done_ns > start_ns ? done_ns - start_ns : 0, name, "net",
                   support::StrFormat("{\"bytes\":%llu}",
                                      static_cast<unsigned long long>(bytes)));
  }
}

// ---- Fault/retry protocol ----

support::Result<uint64_t> Transport::AdmitVerb(Verb verb, sim::SimClock& clk,
                                               uint64_t wire_ns) {
  const RetryPolicy& policy = policies_[static_cast<size_t>(verb)];
  auto& trace = telemetry::Trace();
  const uint64_t start_ns = clk.now_ns();
  bool retried = false;
  last_delivery_ = Delivery{};
  for (uint32_t attempt = 1;; ++attempt) {
    const FaultInjector::Decision d = fault_->Evaluate(verb, clk.now_ns(), wire_ns);
    if (!d.unavailable && !d.drop && !d.timeout) {
      if (d.extra_ns > 0) {
        ++fault_stats_.tail_events;
        fault_telemetry_.tail_events.Add(1);
      }
      if (retried) {
        ++fault_stats_.recovered;
        fault_telemetry_.recovered.Add(1);
      }
      // Record the winning attempt's silent taint for the caller's
      // integrity check.
      last_delivery_.corrupt = d.corrupt;
      last_delivery_.stale = d.stale;
      last_delivery_.duplicate = d.duplicate;
      if (d.corrupt) {
        ++fault_stats_.corrupt_deliveries;
        fault_telemetry_.corrupt.Add(1);
      }
      if (d.stale) {
        ++fault_stats_.stale_deliveries;
        fault_telemetry_.stale.Add(1);
      }
      if (d.duplicate) {
        ++fault_stats_.duplicated_verbs;
        fault_telemetry_.duplicate.Add(1);
      }
      return d.extra_ns;
    }
    // Failed attempt: the caller waits out the attempt timeout before
    // declaring the verb lost.
    const char* kind;
    if (d.unavailable) {
      ++fault_stats_.unavailable;
      fault_telemetry_.unavailable.Add(1);
      kind = "net.fault.unavailable";
    } else if (d.drop) {
      ++fault_stats_.drops;
      fault_telemetry_.drops.Add(1);
      kind = "net.fault.drop";
    } else {
      ++fault_stats_.timeouts;
      fault_telemetry_.timeouts.Add(1);
      kind = "net.fault.timeout";
    }
    clk.Advance(policy.attempt_timeout_ns);
    fault_stats_.lost_wait_ns += policy.attempt_timeout_ns;
    fault_telemetry_.lost_wait_ns.Add(policy.attempt_timeout_ns);
    {
      auto& prof = telemetry::Profiler();
      if (prof.enabled()) {
        prof.ChargeStall(clk, "retry_lost_wait", VerbName(verb), policy.attempt_timeout_ns);
      }
    }
    if (trace.enabled()) {
      trace.Instant(clk, kind, "net",
                    support::StrFormat("{\"verb\":\"%s\",\"attempt\":%u}", VerbName(verb),
                                       attempt));
    }
    const uint64_t elapsed = clk.now_ns() - start_ns;
    if (attempt >= policy.max_attempts || elapsed >= policy.deadline_ns) {
      ++fault_stats_.exhausted;
      fault_telemetry_.exhausted.Add(1);
      if (d.unavailable) {
        return support::Status::Unavailable(support::StrFormat(
            "%s: far node unreachable after %u attempts", VerbName(verb), attempt));
      }
      return support::Status::DeadlineExceeded(support::StrFormat(
          "%s: gave up after %u attempts / %llu ns", VerbName(verb), attempt,
          static_cast<unsigned long long>(elapsed)));
    }
    // Exponential backoff with deterministic jitter, charged to the caller.
    uint64_t backoff = policy.BackoffNs(attempt);
    if (policy.jitter_fraction > 0.0) {
      const double jitter =
          policy.jitter_fraction * fault_->NextJitterIn(policy.jitter_min, policy.jitter_max);
      backoff = static_cast<uint64_t>(static_cast<double>(backoff) * (1.0 + jitter));
    }
    clk.Advance(backoff);
    fault_stats_.backoff_ns += backoff;
    fault_telemetry_.backoff_ns.Add(backoff);
    {
      auto& prof = telemetry::Profiler();
      if (prof.enabled()) {
        prof.ChargeStall(clk, "retry_backoff", VerbName(verb), backoff);
      }
    }
    ++fault_stats_.retries;
    fault_telemetry_.retries.Add(1);
    retried = true;
  }
}

// ---- One-sided verbs ----

void Transport::ReadSyncImpl(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                             uint32_t len, uint64_t extra_ns) {
  if (dst != nullptr) {
    DataOut(raddr, dst, len);
  }
  ++stats_.one_sided_reads;
  stats_.bytes_in += len;
  const uint64_t t0 = clk.now_ns();
  clk.AdvanceTo(MessageDoneAt(clk, len, extra_ns));
  RecordVerb(read_sync_, "net.read.sync", clk, t0, clk.now_ns(), len);
}

void Transport::ReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst, uint32_t len) {
  last_delivery_ = Delivery{};
  ReadSyncImpl(clk, raddr, dst, len, 0);
}

support::Status Transport::TryReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                                       uint32_t len) {
  if (!FaultsActive()) {
    ReadSync(clk, raddr, dst, len);
    return support::Status::Ok();
  }
  if (auto target = CheckTarget(clk, Verb::kReadSync, raddr); !target.ok()) {
    return target;
  }
  auto admit = AdmitVerb(Verb::kReadSync, clk, WireNs(len, 0));
  if (!admit.ok()) {
    return admit.status();
  }
  ReadSyncImpl(clk, raddr, dst, len, admit.value());
  return support::Status::Ok();
}

void Transport::WriteSyncImpl(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                              uint32_t len, uint64_t extra_ns) {
  DropInflight(raddr, len);  // overwritten: any in-flight read is now stale
  if (src != nullptr) {
    DataIn(raddr, src, len);
  }
  ++stats_.one_sided_writes;
  stats_.bytes_out += len;
  const uint64_t t0 = clk.now_ns();
  clk.AdvanceTo(MessageDoneAt(clk, len, extra_ns));
  RecordVerb(write_sync_, "net.write.sync", clk, t0, clk.now_ns(), len);
}

void Transport::WriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                          uint32_t len) {
  last_delivery_ = Delivery{};
  WriteSyncImpl(clk, raddr, src, len, 0);
}

support::Status Transport::TryWriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr,
                                        const void* src, uint32_t len) {
  if (!FaultsActive()) {
    WriteSync(clk, raddr, src, len);
    return support::Status::Ok();
  }
  if (auto target = CheckTarget(clk, Verb::kWriteSync, raddr); !target.ok()) {
    return target;
  }
  auto admit = AdmitVerb(Verb::kWriteSync, clk, WireNs(len, 0));
  if (!admit.ok()) {
    return admit.status();
  }
  WriteSyncImpl(clk, raddr, src, len, admit.value());
  return support::Status::Ok();
}

uint64_t Transport::ReadAsyncImpl(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                                  uint32_t len, uint64_t extra_ns) {
  if (dst != nullptr) {
    DataOut(raddr, dst, len);
  }
  ++stats_.one_sided_reads;
  stats_.bytes_in += len;
  const uint64_t t0 = clk.now_ns();
  const uint64_t done = MessageDoneAt(clk, len, extra_ns);
  RecordVerb(read_async_, "net.read.async", clk, t0, done, len);
  // The fetch is now in flight until `done`: later requests for the range
  // can join it instead of duplicating the verb.
  RegisterInflight(raddr, len, done);
  return done;
}

uint64_t Transport::ReadAsync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                              uint32_t len) {
  last_delivery_ = Delivery{};
  return ReadAsyncImpl(clk, raddr, dst, len, 0);
}

support::Result<uint64_t> Transport::TryReadAsync(sim::SimClock& clk, farmem::RemoteAddr raddr,
                                                  void* dst, uint32_t len) {
  if (!FaultsActive()) {
    return ReadAsync(clk, raddr, dst, len);
  }
  if (auto target = CheckTarget(clk, Verb::kReadAsync, raddr); !target.ok()) {
    return target;
  }
  auto admit = AdmitVerb(Verb::kReadAsync, clk, WireNs(len, 0));
  if (!admit.ok()) {
    return admit.status();
  }
  return ReadAsyncImpl(clk, raddr, dst, len, admit.value());
}

uint64_t Transport::WriteAsyncImpl(sim::SimClock& clk, farmem::RemoteAddr raddr,
                                   const void* src, uint32_t len, uint64_t extra_ns) {
  DropInflight(raddr, len);  // overwritten: any in-flight read is now stale
  if (src != nullptr) {
    DataIn(raddr, src, len);
  }
  ++stats_.one_sided_writes;
  stats_.bytes_out += len;
  const uint64_t t0 = clk.now_ns();
  const uint64_t done = MessageDoneAt(clk, len, extra_ns);
  RecordVerb(write_async_, "net.write.async", clk, t0, done, len);
  return done;
}

uint64_t Transport::WriteAsync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                               uint32_t len) {
  last_delivery_ = Delivery{};
  return WriteAsyncImpl(clk, raddr, src, len, 0);
}

support::Result<uint64_t> Transport::TryWriteAsync(sim::SimClock& clk,
                                                   farmem::RemoteAddr raddr, const void* src,
                                                   uint32_t len) {
  if (!FaultsActive()) {
    return WriteAsync(clk, raddr, src, len);
  }
  if (auto target = CheckTarget(clk, Verb::kWriteAsync, raddr); !target.ok()) {
    return target;
  }
  auto admit = AdmitVerb(Verb::kWriteAsync, clk, WireNs(len, 0));
  if (!admit.ok()) {
    return admit.status();
  }
  return WriteAsyncImpl(clk, raddr, src, len, admit.value());
}

void Transport::ReadGatherSync(sim::SimClock& clk, const std::vector<Segment>& segs) {
  clk.AdvanceTo(ReadGatherAsync(clk, segs));
}

support::Status Transport::TryReadGatherSync(sim::SimClock& clk,
                                             const std::vector<Segment>& segs) {
  auto done = TryReadGatherAsync(clk, segs);
  if (!done.ok()) {
    return done.status();
  }
  clk.AdvanceTo(done.value());
  return support::Status::Ok();
}

uint64_t Transport::ReadGatherAsyncImpl(sim::SimClock& clk, const std::vector<Segment>& segs,
                                        uint64_t extra_ns, std::vector<uint64_t>* seg_done) {
  uint64_t bytes = 0;
  for (const auto& s : segs) {
    if (s.dst != nullptr) {
      DataOut(s.raddr, s.dst, s.len);
    }
    bytes += s.len;
  }
  ++stats_.one_sided_reads;
  stats_.bytes_in += bytes;
  stats_.sg_segments += segs.size();
  const uint64_t sg_cost = (segs.size() - 1) * cost_.sg_segment_ns;
  const uint64_t t0 = clk.now_ns();
  const uint64_t done = MessageDoneAt(clk, bytes, sg_cost + extra_ns);
  RecordVerb(read_gather_, "net.read.gather", clk, t0, done, bytes);
  if (seg_done != nullptr) {
    seg_done->clear();
    seg_done->reserve(segs.size());
  }
  // Bytes land in segment order on the serialized link: segment i's last
  // byte clears the wire TransferNs(bytes after i) before the message
  // completes, and carries only the i segment-handler charges the NIC has
  // processed so far (the full sg_cost lands on the last segment). Each
  // segment is individually joinable until then, at its own (earlier)
  // completion.
  const uint64_t occupancy = cost_.TransferNs(bytes);
  uint64_t cum = 0;
  size_t i = 0;
  for (const auto& s : segs) {
    cum += s.len;
    const uint64_t at =
        done - occupancy - sg_cost + cost_.TransferNs(cum) + i * cost_.sg_segment_ns;
    RegisterInflight(s.raddr, s.len, at);
    if (seg_done != nullptr) {
      seg_done->push_back(at);
    }
    ++i;
  }
  return done;
}

uint64_t Transport::ReadGatherAsync(sim::SimClock& clk, const std::vector<Segment>& segs,
                                    std::vector<uint64_t>* seg_done) {
  if (segs.empty()) {
    // Nothing to fetch: no message, no one-sided-read count, no CPU charge.
    return clk.now_ns();
  }
  last_delivery_ = Delivery{};
  return ReadGatherAsyncImpl(clk, segs, 0, seg_done);
}

support::Result<uint64_t> Transport::TryReadGatherAsync(sim::SimClock& clk,
                                                        const std::vector<Segment>& segs,
                                                        std::vector<uint64_t>* seg_done) {
  if (segs.empty()) {
    return clk.now_ns();
  }
  if (!FaultsActive()) {
    return ReadGatherAsyncImpl(clk, segs, 0, seg_done);
  }
  uint64_t bytes = 0;
  for (const auto& s : segs) {
    if (auto target = CheckTarget(clk, Verb::kReadGather, s.raddr); !target.ok()) {
      return target;
    }
    bytes += s.len;
  }
  auto admit = AdmitVerb(Verb::kReadGather, clk,
                         WireNs(bytes, (segs.size() - 1) * cost_.sg_segment_ns));
  if (!admit.ok()) {
    return admit.status();
  }
  return ReadGatherAsyncImpl(clk, segs, admit.value(), seg_done);
}

void Transport::TwoSidedReadSyncImpl(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                                     uint32_t len, uint32_t gather_segments,
                                     uint64_t extra_ns) {
  if (dst != nullptr) {
    DataOut(raddr, dst, len);
  }
  ++stats_.two_sided_msgs;
  stats_.bytes_in += len;
  const uint64_t handler =
      cost_.two_sided_handler_ns + gather_segments * cost_.sg_segment_ns;
  const uint64_t t0 = clk.now_ns();
  clk.AdvanceTo(MessageDoneAt(clk, len, handler + extra_ns));
  RecordVerb(two_sided_read_, "net.two_sided.read", clk, t0, clk.now_ns(), len);
}

void Transport::TwoSidedReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                                 uint32_t len, uint32_t gather_segments) {
  last_delivery_ = Delivery{};
  TwoSidedReadSyncImpl(clk, raddr, dst, len, gather_segments, 0);
}

support::Status Transport::TryTwoSidedReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr,
                                               void* dst, uint32_t len,
                                               uint32_t gather_segments) {
  if (!FaultsActive()) {
    TwoSidedReadSync(clk, raddr, dst, len, gather_segments);
    return support::Status::Ok();
  }
  const uint64_t handler =
      cost_.two_sided_handler_ns + gather_segments * cost_.sg_segment_ns;
  if (auto target = CheckTarget(clk, Verb::kTwoSidedRead, raddr); !target.ok()) {
    return target;
  }
  auto admit = AdmitVerb(Verb::kTwoSidedRead, clk, WireNs(len, handler));
  if (!admit.ok()) {
    return admit.status();
  }
  TwoSidedReadSyncImpl(clk, raddr, dst, len, gather_segments, admit.value());
  return support::Status::Ok();
}

void Transport::TwoSidedWriteSyncImpl(sim::SimClock& clk, farmem::RemoteAddr raddr,
                                      const void* src, uint32_t len, uint32_t gather_segments,
                                      uint64_t extra_ns) {
  DropInflight(raddr, len);  // overwritten: any in-flight read is now stale
  if (src != nullptr) {
    DataIn(raddr, src, len);
  }
  ++stats_.two_sided_msgs;
  stats_.bytes_out += len;
  const uint64_t handler =
      cost_.two_sided_handler_ns + gather_segments * cost_.sg_segment_ns;
  const uint64_t t0 = clk.now_ns();
  clk.AdvanceTo(MessageDoneAt(clk, len, handler + extra_ns));
  RecordVerb(two_sided_write_, "net.two_sided.write", clk, t0, clk.now_ns(), len);
}

void Transport::TwoSidedWriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr,
                                  const void* src, uint32_t len, uint32_t gather_segments) {
  last_delivery_ = Delivery{};
  TwoSidedWriteSyncImpl(clk, raddr, src, len, gather_segments, 0);
}

support::Status Transport::TryTwoSidedWriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr,
                                                const void* src, uint32_t len,
                                                uint32_t gather_segments) {
  if (!FaultsActive()) {
    TwoSidedWriteSync(clk, raddr, src, len, gather_segments);
    return support::Status::Ok();
  }
  const uint64_t handler =
      cost_.two_sided_handler_ns + gather_segments * cost_.sg_segment_ns;
  if (auto target = CheckTarget(clk, Verb::kTwoSidedWrite, raddr); !target.ok()) {
    return target;
  }
  auto admit = AdmitVerb(Verb::kTwoSidedWrite, clk, WireNs(len, handler));
  if (!admit.ok()) {
    return admit.status();
  }
  TwoSidedWriteSyncImpl(clk, raddr, src, len, gather_segments, admit.value());
  return support::Status::Ok();
}

uint64_t Transport::RpcImpl(sim::SimClock& clk, uint32_t req_bytes, uint32_t resp_bytes,
                            uint64_t remote_service_ns, uint64_t extra_ns) {
  ++stats_.rpcs;
  stats_.bytes_out += req_bytes;
  stats_.bytes_in += resp_bytes;
  const uint64_t t0 = clk.now_ns();
  const uint64_t done = MessageDoneAt(clk, req_bytes + resp_bytes,
                                      cost_.rpc_dispatch_ns + remote_service_ns + extra_ns);
  clk.AdvanceTo(done);
  RecordVerb(rpc_, "net.rpc", clk, t0, done,
             static_cast<uint64_t>(req_bytes) + resp_bytes);
  return done;
}

uint64_t Transport::Rpc(sim::SimClock& clk, uint32_t req_bytes, uint32_t resp_bytes,
                        uint64_t remote_service_ns) {
  last_delivery_ = Delivery{};
  return RpcImpl(clk, req_bytes, resp_bytes, remote_service_ns, 0);
}

support::Result<uint64_t> Transport::TryRpc(sim::SimClock& clk, uint32_t req_bytes,
                                            uint32_t resp_bytes, uint64_t remote_service_ns) {
  if (!FaultsActive()) {
    return Rpc(clk, req_bytes, resp_bytes, remote_service_ns);
  }
  if (auto target = CheckNode(clk, Verb::kRpc, 0); !target.ok()) {
    return target;
  }
  auto admit = AdmitVerb(Verb::kRpc, clk,
                         WireNs(static_cast<uint64_t>(req_bytes) + resp_bytes,
                                cost_.rpc_dispatch_ns + remote_service_ns));
  if (!admit.ok()) {
    return admit.status();
  }
  return RpcImpl(clk, req_bytes, resp_bytes, remote_service_ns, admit.value());
}

size_t Transport::TearPoint(size_t n) {
  if (fault_ == nullptr) {
    return n;
  }
  const size_t tear_at = fault_->EvaluateTear(n);
  if (tear_at < n) {
    ++fault_stats_.torn_writebacks;
    fault_telemetry_.torn.Add(1);
  }
  return tear_at;
}

support::Status Transport::AdmitRpc(sim::SimClock& clk) {
  if (!FaultsActive()) {
    return support::Status::Ok();
  }
  // The RPC home is node 0; a crashed home node denies admission, and the
  // caller's existing ladder falls back to local execution.
  if (auto target = CheckNode(clk, Verb::kRpc, 0); !target.ok()) {
    return target;
  }
  // Admission models the request leg only: a minimal payload, no service
  // time. The successful attempt's tail latency (if any) is absorbed into
  // the subsequent plain Rpc charge.
  auto admit = AdmitVerb(Verb::kRpc, clk, WireNs(64, cost_.rpc_dispatch_ns));
  if (!admit.ok()) {
    return admit.status();
  }
  return support::Status::Ok();
}

}  // namespace mira::net
