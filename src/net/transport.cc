#include "src/net/transport.h"

#include "src/support/str.h"

namespace mira::net {

Transport::Transport(farmem::FarMemoryNode* node, const sim::CostModel& cost)
    : node_(node), cost_(cost), link_(cost.network_bytes_per_ns) {
  auto& m = telemetry::Metrics();
  const auto verb = [&m](const char* name) {
    VerbTelemetry v;
    const std::string prefix = std::string("net.") + name;
    v.count = m.Counter(prefix + ".count");
    v.bytes = m.Counter(prefix + ".bytes");
    v.latency = m.Histogram(prefix + ".latency_ns");
    return v;
  };
  read_sync_ = verb("read.sync");
  read_async_ = verb("read.async");
  read_gather_ = verb("read.gather");
  write_sync_ = verb("write.sync");
  write_async_ = verb("write.async");
  two_sided_read_ = verb("two_sided.read");
  two_sided_write_ = verb("two_sided.write");
  rpc_ = verb("rpc");
}

void Transport::RecordVerb(const VerbTelemetry& verb, const char* name,
                           const sim::SimClock& clk, uint64_t start_ns, uint64_t done_ns,
                           uint64_t bytes) {
  ++*verb.count;
  *verb.bytes += bytes;
  verb.latency->Add(done_ns > start_ns ? done_ns - start_ns : 0);
  auto& trace = telemetry::Trace();
  if (trace.enabled()) {
    trace.Complete(clk, start_ns, done_ns > start_ns ? done_ns - start_ns : 0, name, "net",
                   support::StrFormat("{\"bytes\":%llu}",
                                      static_cast<unsigned long long>(bytes)));
  }
}

uint64_t Transport::MessageDoneAt(sim::SimClock& clk, uint64_t bytes, uint64_t extra_ns) {
  // Caller pays CPU to post the verb; the wire occupies the shared link for
  // the transfer; propagation (RTT) overlaps across messages.
  clk.Advance(cost_.per_message_cpu_ns);
  ++stats_.messages;
  return link_.Transfer(clk.now_ns(), bytes, cost_.rdma_rtt_ns + extra_ns);
}

void Transport::ReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst, uint32_t len) {
  if (dst != nullptr) {
    node_->CopyOut(raddr, dst, len);
  }
  ++stats_.one_sided_reads;
  stats_.bytes_in += len;
  const uint64_t t0 = clk.now_ns();
  clk.AdvanceTo(MessageDoneAt(clk, len, 0));
  RecordVerb(read_sync_, "net.read.sync", clk, t0, clk.now_ns(), len);
}

void Transport::WriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                          uint32_t len) {
  if (src != nullptr) {
    node_->CopyIn(raddr, src, len);
  }
  ++stats_.one_sided_writes;
  stats_.bytes_out += len;
  const uint64_t t0 = clk.now_ns();
  clk.AdvanceTo(MessageDoneAt(clk, len, 0));
  RecordVerb(write_sync_, "net.write.sync", clk, t0, clk.now_ns(), len);
}

uint64_t Transport::ReadAsync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                              uint32_t len) {
  if (dst != nullptr) {
    node_->CopyOut(raddr, dst, len);
  }
  ++stats_.one_sided_reads;
  stats_.bytes_in += len;
  const uint64_t t0 = clk.now_ns();
  const uint64_t done = MessageDoneAt(clk, len, 0);
  RecordVerb(read_async_, "net.read.async", clk, t0, done, len);
  return done;
}

uint64_t Transport::WriteAsync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                               uint32_t len) {
  if (src != nullptr) {
    node_->CopyIn(raddr, src, len);
  }
  ++stats_.one_sided_writes;
  stats_.bytes_out += len;
  const uint64_t t0 = clk.now_ns();
  const uint64_t done = MessageDoneAt(clk, len, 0);
  RecordVerb(write_async_, "net.write.async", clk, t0, done, len);
  return done;
}

void Transport::ReadGatherSync(sim::SimClock& clk, const std::vector<Segment>& segs) {
  clk.AdvanceTo(ReadGatherAsync(clk, segs));
}

uint64_t Transport::ReadGatherAsync(sim::SimClock& clk, const std::vector<Segment>& segs) {
  uint64_t bytes = 0;
  for (const auto& s : segs) {
    if (s.dst != nullptr) {
      node_->CopyOut(s.raddr, s.dst, s.len);
    }
    bytes += s.len;
  }
  ++stats_.one_sided_reads;
  stats_.bytes_in += bytes;
  stats_.sg_segments += segs.size();
  const uint64_t sg_cost =
      segs.empty() ? 0 : (segs.size() - 1) * cost_.sg_segment_ns;
  const uint64_t t0 = clk.now_ns();
  const uint64_t done = MessageDoneAt(clk, bytes, sg_cost);
  RecordVerb(read_gather_, "net.read.gather", clk, t0, done, bytes);
  return done;
}

void Transport::TwoSidedReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                                 uint32_t len, uint32_t gather_segments) {
  if (dst != nullptr) {
    node_->CopyOut(raddr, dst, len);
  }
  ++stats_.two_sided_msgs;
  stats_.bytes_in += len;
  const uint64_t handler =
      cost_.two_sided_handler_ns + gather_segments * cost_.sg_segment_ns;
  const uint64_t t0 = clk.now_ns();
  clk.AdvanceTo(MessageDoneAt(clk, len, handler));
  RecordVerb(two_sided_read_, "net.two_sided.read", clk, t0, clk.now_ns(), len);
}

void Transport::TwoSidedWriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                                  uint32_t len, uint32_t gather_segments) {
  if (src != nullptr) {
    node_->CopyIn(raddr, src, len);
  }
  ++stats_.two_sided_msgs;
  stats_.bytes_out += len;
  const uint64_t handler =
      cost_.two_sided_handler_ns + gather_segments * cost_.sg_segment_ns;
  const uint64_t t0 = clk.now_ns();
  clk.AdvanceTo(MessageDoneAt(clk, len, handler));
  RecordVerb(two_sided_write_, "net.two_sided.write", clk, t0, clk.now_ns(), len);
}

uint64_t Transport::Rpc(sim::SimClock& clk, uint32_t req_bytes, uint32_t resp_bytes,
                        uint64_t remote_service_ns) {
  ++stats_.rpcs;
  stats_.bytes_out += req_bytes;
  stats_.bytes_in += resp_bytes;
  const uint64_t t0 = clk.now_ns();
  const uint64_t done = MessageDoneAt(clk, req_bytes + resp_bytes,
                                      cost_.rpc_dispatch_ns + remote_service_ns);
  clk.AdvanceTo(done);
  RecordVerb(rpc_, "net.rpc", clk, t0, done,
             static_cast<uint64_t>(req_bytes) + resp_bytes);
  return done;
}

}  // namespace mira::net
