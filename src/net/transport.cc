#include "src/net/transport.h"

namespace mira::net {

uint64_t Transport::MessageDoneAt(sim::SimClock& clk, uint64_t bytes, uint64_t extra_ns) {
  // Caller pays CPU to post the verb; the wire occupies the shared link for
  // the transfer; propagation (RTT) overlaps across messages.
  clk.Advance(cost_.per_message_cpu_ns);
  ++stats_.messages;
  return link_.Transfer(clk.now_ns(), bytes, cost_.rdma_rtt_ns + extra_ns);
}

void Transport::ReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst, uint32_t len) {
  if (dst != nullptr) {
    node_->CopyOut(raddr, dst, len);
  }
  ++stats_.one_sided_reads;
  stats_.bytes_in += len;
  clk.AdvanceTo(MessageDoneAt(clk, len, 0));
}

void Transport::WriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                          uint32_t len) {
  if (src != nullptr) {
    node_->CopyIn(raddr, src, len);
  }
  ++stats_.one_sided_writes;
  stats_.bytes_out += len;
  clk.AdvanceTo(MessageDoneAt(clk, len, 0));
}

uint64_t Transport::ReadAsync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                              uint32_t len) {
  if (dst != nullptr) {
    node_->CopyOut(raddr, dst, len);
  }
  ++stats_.one_sided_reads;
  stats_.bytes_in += len;
  return MessageDoneAt(clk, len, 0);
}

uint64_t Transport::WriteAsync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                               uint32_t len) {
  if (src != nullptr) {
    node_->CopyIn(raddr, src, len);
  }
  ++stats_.one_sided_writes;
  stats_.bytes_out += len;
  return MessageDoneAt(clk, len, 0);
}

void Transport::ReadGatherSync(sim::SimClock& clk, const std::vector<Segment>& segs) {
  clk.AdvanceTo(ReadGatherAsync(clk, segs));
}

uint64_t Transport::ReadGatherAsync(sim::SimClock& clk, const std::vector<Segment>& segs) {
  uint64_t bytes = 0;
  for (const auto& s : segs) {
    if (s.dst != nullptr) {
      node_->CopyOut(s.raddr, s.dst, s.len);
    }
    bytes += s.len;
  }
  ++stats_.one_sided_reads;
  stats_.bytes_in += bytes;
  stats_.sg_segments += segs.size();
  const uint64_t sg_cost =
      segs.empty() ? 0 : (segs.size() - 1) * cost_.sg_segment_ns;
  return MessageDoneAt(clk, bytes, sg_cost);
}

void Transport::TwoSidedReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                                 uint32_t len, uint32_t gather_segments) {
  if (dst != nullptr) {
    node_->CopyOut(raddr, dst, len);
  }
  ++stats_.two_sided_msgs;
  stats_.bytes_in += len;
  const uint64_t handler =
      cost_.two_sided_handler_ns + gather_segments * cost_.sg_segment_ns;
  clk.AdvanceTo(MessageDoneAt(clk, len, handler));
}

void Transport::TwoSidedWriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                                  uint32_t len, uint32_t gather_segments) {
  if (src != nullptr) {
    node_->CopyIn(raddr, src, len);
  }
  ++stats_.two_sided_msgs;
  stats_.bytes_out += len;
  const uint64_t handler =
      cost_.two_sided_handler_ns + gather_segments * cost_.sg_segment_ns;
  clk.AdvanceTo(MessageDoneAt(clk, len, handler));
}

uint64_t Transport::Rpc(sim::SimClock& clk, uint32_t req_bytes, uint32_t resp_bytes,
                        uint64_t remote_service_ns) {
  ++stats_.rpcs;
  stats_.bytes_out += req_bytes;
  stats_.bytes_in += resp_bytes;
  const uint64_t done = MessageDoneAt(clk, req_bytes + resp_bytes,
                                      cost_.rpc_dispatch_ns + remote_service_ns);
  clk.AdvanceTo(done);
  return done;
}

}  // namespace mira::net
