// In-flight read table: MSHR semantics for the far-memory data plane.
//
// Every successful *asynchronous* read (one-sided async, gather segments)
// registers the range it is bringing in together with its completion
// timestamp and the winning attempt's delivery taint. A later request for
// the same range that arrives before the completion timestamp can *join*
// the pending entry instead of issuing a duplicate verb: the joiner is
// charged only the residual latency (entry completion − its own now) and
// no message, bytes, or link occupancy — exactly a miss-status holding
// register hit in a hardware cache.
//
// Entries expire lazily: once the simulated clock passes `done_ns` the data
// has landed and cache residency governs — a miss after that point means
// the frame was evicted, so a real re-fetch is the correct model. The table
// is a small fixed-capacity ring (registration overwrites the oldest slot);
// a dropped entry only costs the would-be joiner a full fetch, never
// correctness.
//
// Fault semantics: only *successful* verbs register (a failed attempt never
// moved bytes), but success can still be silently tainted (corrupt / stale
// / duplicated delivery). The taint rides the entry so every joiner runs
// the same integrity verification the original issuer did; a joiner whose
// verdict demands a re-fetch calls Drop() so the shared entry dies with the
// episode and subsequent requesters fall back to the real retry ladder —
// one ladder, shared by all waiters that joined the faulted verb.
//
// The table is owned by a Transport, which is per-evaluation-world, so no
// locking is needed and parallel evaluation stays deterministic.

#ifndef MIRA_SRC_NET_INFLIGHT_H_
#define MIRA_SRC_NET_INFLIGHT_H_

#include <array>
#include <cstdint>

#include "src/net/fault_injector.h"

namespace mira::net {

// Counters for the table itself. Cumulative, like FaultStats: Transport's
// ResetStats() does not touch them.
struct InflightStats {
  uint64_t registered = 0;    // async reads entered into the table
  uint64_t joined = 0;        // requests absorbed by a pending entry
  uint64_t joined_bytes = 0;  // bytes those joins did NOT re-transfer
  uint64_t dropped = 0;       // entries killed by a tainted joiner / write
  void Reset() { *this = InflightStats{}; }
};

class InflightTable {
 public:
  struct Entry {
    uint64_t raddr = 0;
    uint32_t len = 0;
    uint64_t done_ns = 0;  // 0 = empty slot
    Delivery delivery;
  };

  // Registers a successful async read of [raddr, raddr+len) completing at
  // `done_ns`. Re-registering a range whose live entry starts at the same
  // raddr overwrites it in place (latest fetch wins — e.g. an integrity
  // heal round re-issuing the same line), so at most one live entry exists
  // per start address.
  void Register(uint64_t raddr, uint32_t len, uint64_t done_ns, const Delivery& delivery) {
    if (!live_hint_) {
      // Empty table (the steady state for demand-only workloads): no live
      // entry can share the start address, so skip the scan.
      entries_[next_victim_] = Entry{raddr, len, done_ns, delivery};
      next_victim_ = (next_victim_ + 1) % entries_.size();
      live_hint_ = true;
      return;
    }
    Entry* slot = nullptr;
    for (Entry& e : entries_) {
      if (e.done_ns != 0 && e.raddr == raddr) {
        slot = &e;  // same start address: overwrite
        break;
      }
      if (slot == nullptr && e.done_ns == 0) {
        slot = &e;
      }
    }
    if (slot == nullptr) {
      slot = &entries_[next_victim_];
      next_victim_ = (next_victim_ + 1) % entries_.size();
    }
    *slot = Entry{raddr, len, done_ns, delivery};
    live_hint_ = true;
  }

  // A live entry covering [raddr, raddr+len) at time `now_ns`, or nullptr.
  // Expired entries are reclaimed on the way.
  const Entry* Find(uint64_t raddr, uint32_t len, uint64_t now_ns) {
    if (!live_hint_) {
      return nullptr;
    }
    const Entry* found = nullptr;
    bool any_live = false;
    for (Entry& e : entries_) {
      if (e.done_ns == 0) {
        continue;
      }
      if (e.done_ns <= now_ns) {
        e = Entry{};  // landed: residency governs from here on
        continue;
      }
      any_live = true;
      if (raddr >= e.raddr && raddr + len <= e.raddr + e.len) {
        found = &e;
      }
    }
    live_hint_ = any_live;
    return found;
  }

  // Kills every live entry overlapping [raddr, raddr+len): a joiner saw a
  // tainted delivery (the shared fetch must not serve anyone else), or a
  // write made the in-flight data stale. Returns how many entries died.
  uint32_t Drop(uint64_t raddr, uint64_t len) {
    if (!live_hint_) {
      return 0;
    }
    uint32_t dropped = 0;
    for (Entry& e : entries_) {
      if (e.done_ns != 0 && raddr < e.raddr + e.len && e.raddr < raddr + len) {
        e = Entry{};
        ++dropped;
      }
    }
    return dropped;
  }

  void Clear() {
    entries_.fill(Entry{});
    live_hint_ = false;
  }

  // True when at least one entry *may* be live (cleared lazily by Find).
  bool maybe_live() const { return live_hint_; }

 private:
  // 64 entries comfortably covers the deepest prefetch windows (Leap caps
  // at 16 pages) plus concurrent logical threads; the scan is branch-cheap
  // and skipped entirely while the table is empty.
  std::array<Entry, 64> entries_{};
  size_t next_victim_ = 0;
  bool live_hint_ = false;
};

}  // namespace mira::net

#endif  // MIRA_SRC_NET_INFLIGHT_H_
