// Deterministic fault injection for the transport (DESIGN.md "Failure
// model").
//
// A FaultInjector is configured from a FaultPlan: per-verb drop / timeout /
// tail-latency probabilities plus scheduled far-node unavailability and
// link-degradation windows over *simulated* time. All randomness flows
// through one seeded support::Rng whose consumption order is the verb-issue
// order — deterministic because the whole simulation is single-host-threaded
// — so a fixed (plan, seed) reproduces the exact same fault schedule, retry
// timestamps, and trace, bit for bit.
//
// The injector only *decides*; the Transport's Try* verbs act on the
// decisions (charge timeouts, back off, retry, or fail) and the call sites
// own the degradation ladder (see cache::Section and the interpreter's
// offload fallback).

#ifndef MIRA_SRC_NET_FAULT_INJECTOR_H_
#define MIRA_SRC_NET_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/json.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace mira::net {

// Transport verbs, as the injector and retry policies key on them.
enum class Verb : uint8_t {
  kReadSync = 0,
  kReadAsync,
  kReadGather,
  kWriteSync,
  kWriteAsync,
  kTwoSidedRead,
  kTwoSidedWrite,
  kRpc,
};
inline constexpr size_t kNumVerbs = 8;

const char* VerbName(Verb v);
// Inverse of VerbName. False when `name` names no verb.
bool VerbFromName(std::string_view name, Verb* out);

// How a *successful* verb delivery was silently perturbed in flight. The
// transport records the winning attempt's flags; the integrity layer at the
// call site consumes them (an unchecked tainted delivery is exactly the
// silent-corruption threat the checksums exist to catch).
struct Delivery {
  bool corrupt = false;    // payload bits flipped on the wire
  bool stale = false;      // payload served from a stale-read window
  bool duplicate = false;  // verb delivered twice (replayed frame)

  bool any() const { return corrupt || stale || duplicate; }
};

// Per-verb fault knobs. Probabilities are evaluated independently per
// attempt; `tail_multiplier` scales the attempt's wire latency (RTT +
// transfer) when a tail event fires. The last three are *silent* faults:
// the verb reports success but the delivery is tainted (see Delivery).
struct VerbFaultConfig {
  double drop_probability = 0.0;     // request lost; caller observes a timeout
  double timeout_probability = 0.0;  // completion lost; same cost, own counter
  double tail_probability = 0.0;     // attempt completes, but slower
  double tail_multiplier = 1.0;      // latency factor for tail events (>= 1)
  double corrupt_probability = 0.0;    // bits flipped in flight
  double stale_probability = 0.0;      // stale-version payload delivered
  double duplicate_probability = 0.0;  // frame replayed (delivered twice)

  bool CanFault() const {
    return drop_probability > 0.0 || timeout_probability > 0.0 || tail_probability > 0.0 ||
           corrupt_probability > 0.0 || stale_probability > 0.0 || duplicate_probability > 0.0;
  }

  bool operator==(const VerbFaultConfig&) const = default;
};

// Far node unreachable during [start_ns, end_ns): every attempt fails.
struct OutageWindow {
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;

  bool operator==(const OutageWindow&) const = default;
};

// Link degraded during [start_ns, end_ns): transfers take 1/bandwidth_factor
// times longer (0 < bandwidth_factor <= 1).
struct DegradedWindow {
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  double bandwidth_factor = 1.0;

  bool operator==(const DegradedWindow&) const = default;
};

// Deterministic node-crash schedule entry: far node `node` crashes at
// `crash_ns` (its arena contents are lost; verbs targeting it observe
// kNodeFailed once the lease-based failure detector fires) and, when
// `rejoin_ns` is nonzero (> crash_ns), rejoins *empty* at `rejoin_ns` as a
// valid re-replication target. Crash decisions are schedule-driven and draw
// no RNG, so adding a crash plan perturbs no other fault stream.
struct NodeCrashEvent {
  int node = 0;
  uint64_t crash_ns = 0;
  uint64_t rejoin_ns = 0;  // 0 = never rejoins

  bool operator==(const NodeCrashEvent&) const = default;
};

// Bounded-attempt retry with exponential backoff and deterministic jitter.
// All waiting (attempt timeouts, backoff) is charged to the caller's
// SimClock, so retries show up as real tail latency in every bench.
struct RetryPolicy {
  uint32_t max_attempts = 5;
  uint64_t attempt_timeout_ns = 15'000;  // declared lost after this wait
  uint64_t base_backoff_ns = 4'000;
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.25;   // backoff * (1 ± jitter), drawn from the injector
  uint64_t deadline_ns = 600'000;  // per-verb overall deadline across attempts
  // Jitter draw bounds. The draw is uniform in [jitter_min, jitter_max) and
  // then scaled by jitter_fraction; the defaults reproduce the historical
  // symmetric ±1 schedule bit-exactly (see FaultInjector::NextJitterIn).
  double jitter_min = -1.0;
  double jitter_max = 1.0;

  // Backoff before retry number `retry` (1-based), before jitter.
  uint64_t BackoffNs(uint32_t retry) const {
    double b = static_cast<double>(base_backoff_ns);
    for (uint32_t i = 1; i < retry; ++i) {
      b *= backoff_multiplier;
    }
    return static_cast<uint64_t>(b);
  }
};

struct FaultPlan {
  uint64_t seed = 1;
  VerbFaultConfig verbs[kNumVerbs];
  std::vector<OutageWindow> outages;
  std::vector<DegradedWindow> degraded;
  // Probability that a synchronous drain of >= 2 queued writebacks tears:
  // a prefix of the burst is applied at the far node, the rest completes on
  // the wire but is never applied (caught by the version-vector audit).
  double torn_writeback_probability = 0.0;
  // Node-crash schedule, applied by the transport against the attached
  // FarMemoryCluster as simulated time passes the event timestamps.
  std::vector<NodeCrashEvent> node_crashes;

  VerbFaultConfig& verb(Verb v) { return verbs[static_cast<size_t>(v)]; }
  const VerbFaultConfig& verb(Verb v) const { return verbs[static_cast<size_t>(v)]; }

  bool AnyFaults() const;
  bool operator==(const FaultPlan&) const = default;

  // ---- Canonical JSON round-trip (chaos repro artifacts + hand-written
  // scenarios share this one format; see DESIGN.md §7.2) ----
  //
  // ToJson emits every schedule list plus only the verbs that differ from
  // the default config, so FromJson(ToJson(p)) == p bit-exactly: integers
  // are full-precision decimal and probabilities %.17g. FromJson is
  // tolerant — missing keys keep their defaults — so hand-written plans can
  // state only what they inject.
  support::JsonValue ToJson() const;
  static support::Result<FaultPlan> FromJson(const support::JsonValue& json);
  // Convenience over a serialized document.
  static support::Result<FaultPlan> FromJsonText(std::string_view text);

  // ---- Canonical scenarios (bench_fault_resilience, tests) ----

  // No faults at all; attaching this plan must not change any timing.
  static FaultPlan Clean();
  // Every verb drops/times out with probability `p` and sees `tail_p`
  // tail events at 4x latency.
  static FaultPlan Lossy(uint64_t seed, double p = 0.02, double tail_p = 0.05);
  // `count` far-node outages of `width_ns`, every `period_ns` starting at
  // `first_start_ns`.
  static FaultPlan BurstyOutage(uint64_t seed, uint64_t first_start_ns, uint64_t width_ns,
                                uint64_t period_ns, int count);
  // Link at `bandwidth_factor` of nominal bandwidth for the whole run, with
  // mild tail inflation.
  static FaultPlan DegradedBandwidth(uint64_t seed, double bandwidth_factor = 0.25);
  // Silent faults only: reads see in-flight bit flips and stale-version
  // deliveries, writes are occasionally replayed. Every verb still reports
  // success — only the integrity layer can tell.
  static FaultPlan SilentCorruption(uint64_t seed, double corrupt_p = 0.02,
                                    double stale_p = 0.01, double duplicate_p = 0.05);
  // Writeback-hostile: async writebacks drop until they exhaust their retry
  // budget (forcing requeue + synchronous drains), and drain bursts tear
  // with probability `tear_p`. A light corrupt rate on the sync write verb
  // exercises far-node frame rejection during the drains.
  static FaultPlan TornWriteback(uint64_t seed, double async_drop_p = 0.85,
                                 double tear_p = 0.5, double sync_corrupt_p = 0.05);
  // One far node crashing mid-run (optionally rejoining empty later); no
  // link-level faults, so the verb RNG streams stay untouched.
  static FaultPlan NodeCrash(uint64_t seed, int node, uint64_t crash_ns, uint64_t rejoin_ns = 0);
  // `count` sequential crash+rejoin cycles rolling over the nodes of an
  // `num_nodes`-node cluster starting at node 1 (node 0 — the RPC home and
  // allocator seed — crashes last): node (1 + i) % num_nodes crashes at
  // first_crash_ns + i * period_ns and rejoins downtime_ns later. With
  // downtime_ns < period_ns at most one node is ever down.
  static FaultPlan RollingCrashes(uint64_t seed, int num_nodes, int count, uint64_t first_crash_ns,
                                  uint64_t period_ns, uint64_t downtime_ns);
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Decision for one attempt of `verb` issued at `now_ns`.
  struct Decision {
    bool unavailable = false;  // inside an outage window
    bool drop = false;         // request lost
    bool timeout = false;      // completion lost
    uint64_t extra_ns = 0;     // added wire latency (tail and/or degraded link)
    bool corrupt = false;      // delivered, but bits flipped in flight
    bool stale = false;        // delivered, but from a stale-read window
    bool duplicate = false;    // delivered twice (replayed frame)
  };
  // `wire_ns` is the attempt's nominal wire latency (RTT + transfer): the
  // base that tail multipliers and degraded-bandwidth factors scale.
  Decision Evaluate(Verb verb, uint64_t now_ns, uint64_t wire_ns);

  // Tear decision for a synchronous drain of `n` queued writebacks: index of
  // the first line NOT applied at the far node, or `n` when the whole burst
  // lands. Draws RNG state only when tearing is enabled and n >= 2.
  size_t EvaluateTear(size_t n);

  // Deterministic jitter draw in [-1, 1) for retry backoff.
  double NextJitter();
  // Jitter draw in [lo, hi). For the default (-1, 1) bounds this delegates
  // to NextJitter() so legacy schedules stay bit-exact; either branch
  // consumes exactly one RNG draw.
  double NextJitterIn(double lo, double hi);

  bool InOutage(uint64_t now_ns) const;
  // End of the outage window covering `now_ns`, or `now_ns` if none.
  uint64_t NextAvailableNs(uint64_t now_ns) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  support::Rng rng_;
};

}  // namespace mira::net

#endif  // MIRA_SRC_NET_FAULT_INJECTOR_H_
