// The RDMA-like transport between the local node and the far-memory node.
//
// Models the verbs Mira's compiler targets (§4.7, §5.2.1 of the paper):
//   - one-sided read/write: zero-copy access to whole remote ranges;
//   - scatter-gather one-sided reads: one message, many segments (batching);
//   - two-sided messages: the far node's CPU assembles/handles the payload,
//     used for partial-structure (selective) transmission;
//   - RPC: offloaded function invocation.
//
// All methods take the calling logical thread's SimClock. Blocking variants
// advance the clock past completion; async variants return the completion
// timestamp so the caller (prefetcher, flusher) can overlap it with compute.
// The data plane always executes immediately on the host (memcpy), which
// keeps results identical across timing models. Callers whose data plane is
// handled elsewhere (the cache sections — the interpreter writes through to
// the far arena directly) pass nullptr buffers for timing-only transfers.

#ifndef MIRA_SRC_NET_TRANSPORT_H_
#define MIRA_SRC_NET_TRANSPORT_H_

#include <cstdint>
#include <vector>

#include "src/farmem/far_memory_node.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/resource.h"
#include "src/support/stats.h"
#include "src/telemetry/telemetry.h"

namespace mira::net {

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t one_sided_reads = 0;
  uint64_t one_sided_writes = 0;
  uint64_t two_sided_msgs = 0;
  uint64_t rpcs = 0;
  uint64_t bytes_in = 0;   // far → local
  uint64_t bytes_out = 0;  // local → far
  uint64_t sg_segments = 0;

  uint64_t total_bytes() const { return bytes_in + bytes_out; }
  void Reset() { *this = NetworkStats{}; }
};

// A segment of a scatter-gather read.
struct Segment {
  farmem::RemoteAddr raddr;
  void* dst;
  uint32_t len;
};

class Transport {
 public:
  Transport(farmem::FarMemoryNode* node, const sim::CostModel& cost);

  // ---- One-sided verbs ----

  // Blocking one-sided read of [raddr, raddr+len) into dst.
  void ReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst, uint32_t len);

  // Blocking one-sided write.
  void WriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src, uint32_t len);

  // Async one-sided read: data lands in dst "at" the returned timestamp.
  // Charges only the issue cost to the caller's clock.
  uint64_t ReadAsync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst, uint32_t len);

  // Async one-sided write (used for asynchronous flush / writeback).
  uint64_t WriteAsync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                      uint32_t len);

  // Blocking scatter-gather read: one message, many segments.
  void ReadGatherSync(sim::SimClock& clk, const std::vector<Segment>& segs);

  // Async scatter-gather read.
  uint64_t ReadGatherAsync(sim::SimClock& clk, const std::vector<Segment>& segs);

  // ---- Two-sided messages ----

  // Blocking two-sided partial read: the far node CPU gathers `len` bytes at
  // raddr into a message (selective transmission, §4.7). `gather_segments`
  // models how many discontiguous fields the far CPU copies.
  void TwoSidedReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst, uint32_t len,
                        uint32_t gather_segments = 1);

  void TwoSidedWriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                         uint32_t len, uint32_t gather_segments = 1);

  // ---- RPC ----

  // Round trip carrying `req_bytes` out and `resp_bytes` back, plus
  // `remote_service_ns` of far-node service time (e.g., an offloaded
  // function's execution). Returns the completion timestamp.
  uint64_t Rpc(sim::SimClock& clk, uint32_t req_bytes, uint32_t resp_bytes,
               uint64_t remote_service_ns);

  farmem::FarMemoryNode* node() { return node_; }
  const sim::CostModel& cost() const { return cost_; }
  const NetworkStats& stats() const { return stats_; }
  sim::BandwidthLink& link() { return link_; }
  void ResetStats() { stats_.Reset(); }

 private:
  // Cached registry pointers for one verb's "net.<verb>.{count,bytes}"
  // counters and "net.<verb>.latency_ns" histogram, so hot-path recording
  // is three pointer updates with no name lookup.
  struct VerbTelemetry {
    uint64_t* count = nullptr;
    uint64_t* bytes = nullptr;
    support::LatencyHistogram* latency = nullptr;
  };

  // Completion time of a message of `bytes` issued at clk.now(), after the
  // caller-side CPU cost. Shares the link across logical threads.
  uint64_t MessageDoneAt(sim::SimClock& clk, uint64_t bytes, uint64_t extra_ns);

  // Records one completed verb: registry counters/latency plus (when trace
  // recording is on) a Complete event spanning [start_ns, done_ns).
  void RecordVerb(const VerbTelemetry& verb, const char* name, const sim::SimClock& clk,
                  uint64_t start_ns, uint64_t done_ns, uint64_t bytes);

  farmem::FarMemoryNode* node_;
  const sim::CostModel& cost_;
  sim::BandwidthLink link_;
  NetworkStats stats_;
  VerbTelemetry read_sync_;
  VerbTelemetry read_async_;
  VerbTelemetry read_gather_;
  VerbTelemetry write_sync_;
  VerbTelemetry write_async_;
  VerbTelemetry two_sided_read_;
  VerbTelemetry two_sided_write_;
  VerbTelemetry rpc_;
};

}  // namespace mira::net

#endif  // MIRA_SRC_NET_TRANSPORT_H_
