// The RDMA-like transport between the local node and the far-memory node.
//
// Models the verbs Mira's compiler targets (§4.7, §5.2.1 of the paper):
//   - one-sided read/write: zero-copy access to whole remote ranges;
//   - scatter-gather one-sided reads: one message, many segments (batching);
//   - two-sided messages: the far node's CPU assembles/handles the payload,
//     used for partial-structure (selective) transmission;
//   - RPC: offloaded function invocation.
//
// All methods take the calling logical thread's SimClock. Blocking variants
// advance the clock past completion; async variants return the completion
// timestamp so the caller (prefetcher, flusher) can overlap it with compute.
// The data plane always executes immediately on the host (memcpy), which
// keeps results identical across timing models. Callers whose data plane is
// handled elsewhere (the cache sections — the interpreter writes through to
// the far arena directly) pass nullptr buffers for timing-only transfers.
//
// Failure model (DESIGN.md "Failure model"): the plain verbs are infallible
// — the pre-fault-injection behavior, still used by code with no degradation
// story. Each verb also has a Try* variant that consults an attached
// FaultInjector and runs the verb's RetryPolicy: failed attempts charge the
// attempt timeout to the caller's clock, retries back off exponentially with
// deterministic jitter, and exhaustion returns kUnavailable (outage window)
// or kDeadlineExceeded (lossy link). With no injector attached — or an
// injector whose plan has no faults — Try* is bit-identical to the plain
// verb. The data plane runs only on the successful attempt, so a failed Try*
// never moved bytes.

#ifndef MIRA_SRC_NET_TRANSPORT_H_
#define MIRA_SRC_NET_TRANSPORT_H_

#include <cstdint>
#include <vector>

#include "src/farmem/far_memory_node.h"
#include "src/net/fault_injector.h"
#include "src/net/inflight.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/resource.h"
#include "src/support/stats.h"
#include "src/support/status.h"
#include "src/telemetry/telemetry.h"

namespace mira::integrity {
class IntegrityManager;
}  // namespace mira::integrity

namespace mira::farmem {
class FarMemoryCluster;
}  // namespace mira::farmem

namespace mira::net {

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t one_sided_reads = 0;
  uint64_t one_sided_writes = 0;
  uint64_t two_sided_msgs = 0;
  uint64_t rpcs = 0;
  uint64_t bytes_in = 0;   // far → local
  uint64_t bytes_out = 0;  // local → far
  uint64_t sg_segments = 0;

  uint64_t total_bytes() const { return bytes_in + bytes_out; }
  void Reset() { *this = NetworkStats{}; }
};

// Counters for injected faults and the retry machinery. Only successfully
// completed verbs count in NetworkStats; everything that went wrong on the
// way counts here.
struct FaultStats {
  uint64_t drops = 0;        // request lost
  uint64_t timeouts = 0;     // completion lost
  uint64_t unavailable = 0;  // attempt landed inside an outage window
  uint64_t tail_events = 0;  // attempt completed with inflated latency
  uint64_t retries = 0;      // backoff-then-retry transitions
  uint64_t recovered = 0;    // verbs that succeeded after >= 1 failed attempt
  uint64_t exhausted = 0;    // verbs that gave up (status returned to caller)
  uint64_t backoff_ns = 0;   // total backoff charged to callers
  uint64_t lost_wait_ns = 0;  // total attempt-timeout waiting charged
  // Silent faults: the verb *succeeded* but the delivery was tainted (see
  // Delivery). Not part of faulted_attempts() — nothing failed on the wire.
  uint64_t corrupt_deliveries = 0;
  uint64_t stale_deliveries = 0;
  uint64_t duplicated_verbs = 0;
  uint64_t torn_writebacks = 0;  // torn drain bursts (one per burst)
  // Outage wait-outs the call sites charged to their clocks (the cache
  // sections report each WaitOutOutage span via RecordOutageWait). Tracked
  // separately from wasted_ns(): those spans already count in the sections'
  // degraded_ns, which the adaptive loop adds to wasted_ns() — folding them
  // in here too would double-charge the fault ratio.
  uint64_t outage_wait_ns = 0;
  // Node-crash machinery (cluster attached): verbs refused because the
  // target node is down, and the lease remnants waited out detecting that.
  uint64_t node_failures = 0;
  uint64_t failover_wait_ns = 0;

  uint64_t faulted_attempts() const { return drops + timeouts + unavailable; }
  // Clock time charged to callers that bought no progress — the fault-
  // inflated overhead the adaptive loop watches. Deliberately excludes
  // outage_wait_ns (counted via the sections' degraded_ns, see above) and
  // failover_wait_ns (the crash trigger watches failovers instead).
  uint64_t wasted_ns() const { return backoff_ns + lost_wait_ns; }
  void Reset() { *this = FaultStats{}; }
};

// A segment of a scatter-gather read.
struct Segment {
  farmem::RemoteAddr raddr;
  void* dst;
  uint32_t len;
};

class Transport {
 public:
  Transport(farmem::FarMemoryNode* node, const sim::CostModel& cost);

  // Flushes the batched "net.*" telemetry (see FlushTelemetry below).
  ~Transport();

  // ---- One-sided verbs ----

  // Blocking one-sided read of [raddr, raddr+len) into dst.
  void ReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst, uint32_t len);

  // Blocking one-sided write.
  void WriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src, uint32_t len);

  // Async one-sided read: data lands in dst "at" the returned timestamp.
  // Charges only the issue cost to the caller's clock.
  uint64_t ReadAsync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst, uint32_t len);

  // Async one-sided write (used for asynchronous flush / writeback).
  uint64_t WriteAsync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                      uint32_t len);

  // Blocking scatter-gather read: one message, many segments.
  void ReadGatherSync(sim::SimClock& clk, const std::vector<Segment>& segs);

  // Async scatter-gather read. An empty segment list is a no-op returning
  // the current time (no message, no stats). When `seg_done` is non-null it
  // is replaced with one completion timestamp per segment: bytes land in
  // segment order, so segment i clears the wire TransferNs(bytes after i)
  // before the message completes (the last entry equals the return value).
  uint64_t ReadGatherAsync(sim::SimClock& clk, const std::vector<Segment>& segs,
                           std::vector<uint64_t>* seg_done = nullptr);

  // ---- Two-sided messages ----

  // Blocking two-sided partial read: the far node CPU gathers `len` bytes at
  // raddr into a message (selective transmission, §4.7). `gather_segments`
  // models how many discontiguous fields the far CPU copies.
  void TwoSidedReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst, uint32_t len,
                        uint32_t gather_segments = 1);

  void TwoSidedWriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                         uint32_t len, uint32_t gather_segments = 1);

  // ---- RPC ----

  // Round trip carrying `req_bytes` out and `resp_bytes` back, plus
  // `remote_service_ns` of far-node service time (e.g., an offloaded
  // function's execution). Returns the completion timestamp.
  uint64_t Rpc(sim::SimClock& clk, uint32_t req_bytes, uint32_t resp_bytes,
               uint64_t remote_service_ns);

  // ---- Fallible variants (fault injection + retry; see header comment) ----

  support::Status TryReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                              uint32_t len);
  support::Status TryWriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                               uint32_t len);
  support::Result<uint64_t> TryReadAsync(sim::SimClock& clk, farmem::RemoteAddr raddr,
                                         void* dst, uint32_t len);
  support::Result<uint64_t> TryWriteAsync(sim::SimClock& clk, farmem::RemoteAddr raddr,
                                          const void* src, uint32_t len);
  support::Status TryReadGatherSync(sim::SimClock& clk, const std::vector<Segment>& segs);
  support::Result<uint64_t> TryReadGatherAsync(sim::SimClock& clk,
                                               const std::vector<Segment>& segs,
                                               std::vector<uint64_t>* seg_done = nullptr);
  support::Status TryTwoSidedReadSync(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                                      uint32_t len, uint32_t gather_segments = 1);
  support::Status TryTwoSidedWriteSync(sim::SimClock& clk, farmem::RemoteAddr raddr,
                                       const void* src, uint32_t len,
                                       uint32_t gather_segments = 1);
  support::Result<uint64_t> TryRpc(sim::SimClock& clk, uint32_t req_bytes, uint32_t resp_bytes,
                                   uint64_t remote_service_ns);

  // Admission handshake for an offloaded call: runs the RPC verb's fault /
  // retry protocol for the request leg without charging the RPC itself.
  // Callers that get OK then charge the full RPC through the plain verb —
  // offload faults are modeled at initiation, so a failed admission can
  // fall back to local execution with no remote side effects.
  support::Status AdmitRpc(sim::SimClock& clk);

  // ---- Fault configuration ----

  // Attaches a fault injector (not owned; nullptr detaches). Plain verbs
  // ignore it entirely. Re-attaching rewinds the crash-schedule progress.
  void SetFaultInjector(FaultInjector* injector) {
    fault_ = injector;
    crash_applied_.clear();
    rejoin_applied_.clear();
  }
  FaultInjector* fault_injector() const { return fault_; }
  // True when Try* verbs can actually fail (injector attached with a
  // non-empty plan).
  bool FaultsActive() const { return fault_ != nullptr && fault_->plan().AnyFaults(); }
  // When `now_ns` falls inside an outage window: the window's end. Call
  // sites use this to wait out an unavailability instead of spinning.
  uint64_t NextAvailableNs(uint64_t now_ns) const {
    return fault_ == nullptr ? now_ns : fault_->NextAvailableNs(now_ns);
  }

  void SetRetryPolicy(const RetryPolicy& policy);              // all verbs
  void SetRetryPolicy(Verb verb, const RetryPolicy& policy);   // one verb
  const RetryPolicy& retry_policy(Verb verb) const {
    return policies_[static_cast<size_t>(verb)];
  }

  // ---- Cluster hooks (node-crash failure model) ----

  // Attaches a replicated cluster (not owned; nullptr detaches). Once
  // attached, the data plane routes through it and Try* verbs check the
  // target chunk's primary against the fault plan's crash schedule: a verb
  // against a dead node waits out the failure detector's lease remnant
  // (charged as `failover_wait`), then returns kNodeFailed. With a single
  // node and no crash schedule every path is bit-identical to no cluster.
  void SetCluster(farmem::FarMemoryCluster* cluster);
  farmem::FarMemoryCluster* cluster() const { return cluster_; }

  // The failover ladder's recovery rung, called by a site that saw
  // kNodeFailed: for every chunk of [raddr, raddr+len), promote a surviving
  // replica and remap the placement entry, then re-replicate
  // under-replicated chunks in the background (bandwidth charged to `clk`,
  // overlapping compute). Ok → re-issue the verb against the new primary;
  // DataLoss → no replica survived and the range was quarantined through the
  // integrity ladder (when one is attached).
  support::Status RecoverNodeFailure(sim::SimClock& clk, farmem::RemoteAddr raddr, uint64_t len);

  // Call-site report of one WaitOutOutage span (already charged to the
  // caller's clock and the section's degraded_ns). Feeds
  // FaultStats::outage_wait_ns and the "net.fault.outage_wait_ns" counter.
  void RecordOutageWait(uint64_t span_ns);

  // ---- In-flight request table (MSHR semantics; see inflight.h) ----

  // If a successful async read covering [raddr, raddr+len) is still in
  // flight at clk.now(), join it instead of issuing a duplicate verb: no
  // message, no bytes, no link occupancy — the caller charges only the
  // residual wait (returned timestamp − its own now) to its clock.
  // last_delivery() takes the joined entry's taint so the joiner runs the
  // same integrity verification the issuer did. Returns the pending
  // completion timestamp, or 0 when no live entry covers the range (every
  // real fetch completes strictly after t=0, so 0 is unambiguous).
  uint64_t TryJoinRead(sim::SimClock& clk, farmem::RemoteAddr raddr, uint32_t len);

  // Kills any in-flight entry overlapping [raddr, raddr+len): a joiner's
  // integrity verdict demanded a real re-fetch (the shared entry must not
  // serve further waiters — they fall back to the retry ladder), or a
  // write just made the in-flight data stale. Write verbs call this
  // automatically.
  void DropInflight(farmem::RemoteAddr raddr, uint64_t len);

  // Cumulative, like FaultStats: ResetStats() does not touch them.
  const InflightStats& inflight_stats() const { return inflight_stats_; }
  void ResetInflightStats() { inflight_stats_.Reset(); }

  // ---- Integrity hooks ----

  // Attaches the integrity manager (not owned; nullptr detaches). The
  // transport never calls it — call sites that verify deliveries reach it
  // through this accessor, so attaching costs nothing on the clean path.
  void SetIntegrity(integrity::IntegrityManager* integrity) { integrity_ = integrity; }
  integrity::IntegrityManager* integrity() const { return integrity_; }

  // Silent-fault taint of the most recent *successful* verb. Plain verbs
  // always report a clean delivery; Try* verbs report the winning attempt's
  // injector flags.
  const Delivery& last_delivery() const { return last_delivery_; }

  // Tear decision for a synchronous drain of `n` queued writebacks: index
  // of the first line the far node will NOT apply, or `n` for a whole
  // burst. Consumes injector RNG only when tearing is configured.
  size_t TearPoint(size_t n);

  farmem::FarMemoryNode* node() { return node_; }
  const sim::CostModel& cost() const { return cost_; }
  const NetworkStats& stats() const { return stats_; }
  const FaultStats& fault_stats() const { return fault_stats_; }
  sim::BandwidthLink& link() { return link_; }
  // Resets ONLY NetworkStats. The telemetry registry ("net.*" counters /
  // histograms) and FaultStats are cumulative and unaffected — pinned by a
  // regression test in net_test.cc. Use telemetry::Metrics().ResetValues()
  // / ResetFaultStats() for those.
  void ResetStats() { stats_.Reset(); }
  void ResetFaultStats() { fault_stats_.Reset(); }

  // Merges everything accumulated locally since the last flush into the
  // global registry's "net.*" counters/histograms in ONE critical section
  // (MetricsRegistry::Acquire). Verbs batch per-access telemetry locally so
  // the hot path never touches shared state — which also makes a Transport
  // usable from a parallel-evaluation worker without racing other worlds.
  // The destructor flushes; call explicitly before reading registry "net.*"
  // values while the transport is still alive.
  void FlushTelemetry();

 private:
  // One verb's "net.<verb>.{count,bytes,latency_ns}" telemetry: cached
  // registry sinks plus the values accumulated locally since the last
  // flush. Hot-path recording touches only the local fields (no lookup, no
  // lock); FlushTelemetry() merges them into the registry in one batch.
  struct VerbTelemetry {
    uint64_t* count_sink = nullptr;
    uint64_t* bytes_sink = nullptr;
    support::LatencyHistogram* latency_sink = nullptr;
    uint64_t count = 0;
    uint64_t bytes = 0;
    support::LatencyHistogram latency;
  };
  // A batched counter: registry sink + locally pending delta.
  struct PendingCounter {
    uint64_t* sink = nullptr;
    uint64_t pending = 0;
    void Add(uint64_t delta) { pending += delta; }
  };
  // Batched "net.inflight.*" counters (same discipline as FaultTelemetry).
  struct InflightTelemetry {
    PendingCounter registered;
    PendingCounter joined;
    PendingCounter joined_bytes;
    PendingCounter dropped;
  };
  // Same batching for the "net.fault.*" / "net.retry.*" counters.
  struct FaultTelemetry {
    PendingCounter drops;
    PendingCounter timeouts;
    PendingCounter unavailable;
    PendingCounter tail_events;
    PendingCounter retries;
    PendingCounter recovered;
    PendingCounter exhausted;
    PendingCounter backoff_ns;
    PendingCounter lost_wait_ns;
    PendingCounter corrupt;
    PendingCounter stale;
    PendingCounter duplicate;
    PendingCounter torn;
    PendingCounter outage_wait_ns;
    PendingCounter node_failures;
    PendingCounter failover_wait_ns;
    PendingCounter rereplicate_ns;
  };

  // Completion time of a message of `bytes` issued at clk.now(), after the
  // caller-side CPU cost. Shares the link across logical threads. Inline:
  // this runs once per verb, and swap-thrashing workloads issue tens of
  // millions of verbs per simulation.
  uint64_t MessageDoneAt(sim::SimClock& clk, uint64_t bytes, uint64_t extra_ns) {
    // Caller pays CPU to post the verb; the wire occupies the shared link
    // for the transfer; propagation (RTT) overlaps across messages.
    clk.Advance(cost_.per_message_cpu_ns);
    ++stats_.messages;
    return link_.Transfer(clk.now_ns(), bytes, cost_.rdma_rtt_ns + extra_ns);
  }

  // Records one completed verb into the local batch plus (when trace
  // recording is on) a Complete event spanning [start_ns, done_ns).
  void RecordVerb(VerbTelemetry& verb, const char* name, const sim::SimClock& clk,
                  uint64_t start_ns, uint64_t done_ns, uint64_t bytes) {
    ++verb.count;
    verb.bytes += bytes;
    verb.latency.Add(done_ns > start_ns ? done_ns - start_ns : 0);
    if (trace_->enabled()) {
      RecordVerbTrace(name, clk, start_ns, done_ns, bytes);
    }
  }
  // Out-of-line tail of RecordVerb (string formatting; trace recording on).
  void RecordVerbTrace(const char* name, const sim::SimClock& clk, uint64_t start_ns,
                       uint64_t done_ns, uint64_t bytes);

  // Enters a successful async read into the in-flight table. Called by the
  // read Impl bodies, where last_delivery_ already holds the winning
  // attempt's taint (AdmitVerb set it; plain verbs reset it to clean).
  void RegisterInflight(farmem::RemoteAddr raddr, uint32_t len, uint64_t done_ns) {
    inflight_.Register(raddr, len, done_ns, last_delivery_);
    ++inflight_stats_.registered;
    inflight_telemetry_.registered.Add(1);
  }

  // Fault/retry protocol for one Try* verb. On success returns the extra
  // wire latency (tail / degraded link) to charge the winning attempt; on
  // exhaustion returns kUnavailable or kDeadlineExceeded. All waiting is
  // charged to `clk`. `wire_ns` is the attempt's nominal wire latency.
  support::Result<uint64_t> AdmitVerb(Verb verb, sim::SimClock& clk, uint64_t wire_ns);

  // Node-crash gate for one Try* verb, run BEFORE AdmitVerb so a dead node
  // charges only the detection wait — never the retry ladder's backoff on
  // top. Applies the crash schedule up to now, then fails the verb with
  // kNodeFailed when the target chunk's primary (or the RPC home node) is
  // down. No-op (and no charge) without a cluster + crash schedule.
  support::Status CheckTarget(sim::SimClock& clk, Verb verb, farmem::RemoteAddr raddr);
  support::Status CheckNode(sim::SimClock& clk, Verb verb, int node);
  // Applies every crash/rejoin event with a timestamp <= clk.now() to the
  // cluster, then kicks background re-replication if membership changed.
  void SyncCluster(sim::SimClock& clk);
  // Drains the cluster's re-replication queue: each chunk costs one
  // per-message CPU charge to `clk` (profiled as `rereplicate`) and its
  // bytes occupy the shared link in the background (no blocking wait).
  void RereplicatePending(sim::SimClock& clk);

  // Verb bodies shared by the plain (extra_ns = 0) and Try* paths.
  void ReadSyncImpl(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst, uint32_t len,
                    uint64_t extra_ns);
  void WriteSyncImpl(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                     uint32_t len, uint64_t extra_ns);
  uint64_t ReadAsyncImpl(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst, uint32_t len,
                         uint64_t extra_ns);
  uint64_t WriteAsyncImpl(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                          uint32_t len, uint64_t extra_ns);
  uint64_t ReadGatherAsyncImpl(sim::SimClock& clk, const std::vector<Segment>& segs,
                               uint64_t extra_ns, std::vector<uint64_t>* seg_done);
  void TwoSidedReadSyncImpl(sim::SimClock& clk, farmem::RemoteAddr raddr, void* dst,
                            uint32_t len, uint32_t gather_segments, uint64_t extra_ns);
  void TwoSidedWriteSyncImpl(sim::SimClock& clk, farmem::RemoteAddr raddr, const void* src,
                             uint32_t len, uint32_t gather_segments, uint64_t extra_ns);
  uint64_t RpcImpl(sim::SimClock& clk, uint32_t req_bytes, uint32_t resp_bytes,
                   uint64_t remote_service_ns, uint64_t extra_ns);

  uint64_t WireNs(uint64_t bytes, uint64_t handler_ns) const {
    return cost_.rdma_rtt_ns + cost_.TransferNs(bytes) + handler_ns;
  }

  // Data-plane copies: through the cluster when attached (replicated
  // writes, first-live-holder reads), else straight to the single node.
  void DataIn(farmem::RemoteAddr raddr, const void* src, uint64_t len);
  void DataOut(farmem::RemoteAddr raddr, void* dst, uint64_t len);

  farmem::FarMemoryNode* node_;
  const sim::CostModel& cost_;
  // The process-wide trace recorder, cached so the per-verb enabled check
  // skips the Telemetry::Global() call (the singleton is leaked, so the
  // pointer can never dangle).
  telemetry::TraceRecorder* trace_;
  sim::BandwidthLink link_;
  NetworkStats stats_;
  FaultStats fault_stats_;
  FaultInjector* fault_ = nullptr;
  integrity::IntegrityManager* integrity_ = nullptr;
  farmem::FarMemoryCluster* cluster_ = nullptr;
  // Crash-schedule progress: which plan events have been applied. Indexed
  // like FaultPlan::node_crashes; reset when the injector or cluster is
  // re-attached.
  std::vector<bool> crash_applied_;
  std::vector<bool> rejoin_applied_;
  Delivery last_delivery_;
  RetryPolicy policies_[kNumVerbs];
  VerbTelemetry read_sync_;
  VerbTelemetry read_async_;
  VerbTelemetry read_gather_;
  VerbTelemetry write_sync_;
  VerbTelemetry write_async_;
  VerbTelemetry two_sided_read_;
  VerbTelemetry two_sided_write_;
  VerbTelemetry rpc_;
  FaultTelemetry fault_telemetry_;
  InflightTable inflight_;
  InflightStats inflight_stats_;
  InflightTelemetry inflight_telemetry_;
};

}  // namespace mira::net

#endif  // MIRA_SRC_NET_TRANSPORT_H_
