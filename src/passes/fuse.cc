#include "src/passes/fuse.h"

#include <map>

#include "src/passes/rewrite_util.h"

namespace mira::passes {

namespace {

bool FusionSafeBody(const ir::Region& body) {
  for (const auto& instr : body.body) {
    switch (instr.kind) {
      case ir::OpKind::kStore:
      case ir::OpKind::kRmemStore:
      case ir::OpKind::kCall:
      case ir::OpKind::kOffloadCall:
      case ir::OpKind::kAlloc:
      case ir::OpKind::kFree:
      case ir::OpKind::kFor:
      case ir::OpKind::kWhile:
      case ir::OpKind::kIf:
      case ir::OpKind::kReturn:
        return false;
      default:
        break;
    }
  }
  return true;
}

// Do two bound operands denote the same value (same SSA value or equal
// constants)?
bool SameBound(const ir::Function& func, const std::map<uint32_t, const ir::Instr*>& defs,
               uint32_t a, uint32_t b) {
  if (a == b) {
    return true;
  }
  const auto da = defs.find(a);
  const auto db = defs.find(b);
  return da != defs.end() && db != defs.end() && da->second->kind == ir::OpKind::kConstI &&
         db->second->kind == ir::OpKind::kConstI && da->second->i_attr == db->second->i_attr;
}

void SubstituteValue(ir::Region& region, uint32_t from, uint32_t to) {
  ir::WalkInstrs(region, [&](ir::Instr& instr) {
    for (uint32_t& op : instr.operands) {
      if (op == from) {
        op = to;
      }
    }
  });
}

// Is `value` a pure function of the iv / constants / loop-invariant values
// (i.e., safe to hoist its chain to the body front)?
bool AddrPure(const std::map<uint32_t, const ir::Instr*>& local_defs, uint32_t value,
              uint32_t iv, int depth = 0) {
  if (value == iv || depth > 12) {
    return value == iv;
  }
  const auto it = local_defs.find(value);
  if (it == local_defs.end()) {
    return true;  // defined outside the body: invariant
  }
  const ir::Instr& d = *it->second;
  switch (d.kind) {
    case ir::OpKind::kConstI:
      return true;
    case ir::OpKind::kAdd:
    case ir::OpKind::kSub:
    case ir::OpKind::kMul:
    case ir::OpKind::kDiv:
    case ir::OpKind::kRem:
    case ir::OpKind::kMin:
    case ir::OpKind::kMax:
    case ir::OpKind::kIndex: {
      for (const uint32_t op : d.operands) {
        if (!AddrPure(local_defs, op, iv, depth + 1)) {
          return false;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

int next_batch_group = 0;

void FuseRegion(ir::Function& func, ir::Region& region, int* fused) {
  for (auto& instr : region.body) {
    for (auto& sub : instr.regions) {
      FuseRegion(func, sub, fused);
    }
  }
  auto defs = BuildDefMap(func);
  // "Adjacent" loops may be separated by pure constant materialization (the
  // builder emits each loop's bound constants right before it).
  auto is_glue = [](const ir::Instr& i) {
    return i.kind == ir::OpKind::kConstI || i.kind == ir::OpKind::kConstF ||
           i.kind == ir::OpKind::kLocalAlloc;
  };
  for (size_t i = 0; i < region.body.size();) {
    if (region.body[i].kind != ir::OpKind::kFor) {
      ++i;
      continue;
    }
    // Next loop after only glue instructions?
    size_t j = i + 1;
    while (j < region.body.size() && is_glue(region.body[j])) {
      ++j;
    }
    if (j >= region.body.size() || region.body[j].kind != ir::OpKind::kFor) {
      ++i;
      continue;
    }
    ir::Instr& a = region.body[i];
    ir::Instr& b = region.body[j];
    if (!SameBound(func, defs, a.operands[0], b.operands[0]) ||
        !SameBound(func, defs, a.operands[1], b.operands[1]) ||
        !SameBound(func, defs, a.operands[2], b.operands[2]) ||
        !FusionSafeBody(a.regions[0]) || !FusionSafeBody(b.regions[0])) {
      ++i;
      continue;
    }
    // Fuse b into a: substitute b's iv with a's, splice bodies.
    const uint32_t iv_a = a.regions[0].args[0];
    const uint32_t iv_b = b.regions[0].args[0];
    SubstituteValue(b.regions[0], iv_b, iv_a);
    for (auto& moved : b.regions[0].body) {
      a.regions[0].body.push_back(std::move(moved));
    }
    region.body.erase(region.body.begin() + static_cast<long>(j));
    ++*fused;
    // The erase relocated instructions; refresh the def map before the next
    // bound comparison. Keep `i` so chains of 3+ loops fuse fully.
    defs = BuildDefMap(func);
  }
  // Tag + hoist batchable loads in every fused loop (only loops that
  // contain ≥ 2 rmem loads benefit).
  for (auto& instr : region.body) {
    if (instr.kind != ir::OpKind::kFor) {
      continue;
    }
    ir::Region& body = instr.regions[0];
    const uint32_t iv = body.args[0];
    std::map<uint32_t, const ir::Instr*> local_defs;
    for (const auto& bi : body.body) {
      if (bi.has_result()) {
        local_defs[bi.result] = &bi;
      }
    }
    std::vector<ir::Instr*> loads;
    for (auto& bi : body.body) {
      if (bi.kind == ir::OpKind::kRmemLoad && bi.mem.batch_group < 0 &&
          AddrPure(local_defs, bi.operands[0], iv)) {
        loads.push_back(&bi);
      }
    }
    if (loads.size() < 2) {
      continue;
    }
    const int group = next_batch_group++;
    for (ir::Instr* l : loads) {
      l->mem.batch_group = group;
    }
    // Hoist the address-pure chains to the front, preserving relative
    // order, so every group member's address is computed before the first
    // member executes (the interpreter's batch contract).
    std::vector<ir::Instr> front;
    std::vector<ir::Instr> rest;
    for (auto& bi : body.body) {
      const bool pure =
          (bi.kind == ir::OpKind::kConstI || bi.kind == ir::OpKind::kIndex ||
           bi.kind == ir::OpKind::kAdd || bi.kind == ir::OpKind::kSub ||
           bi.kind == ir::OpKind::kMul || bi.kind == ir::OpKind::kDiv ||
           bi.kind == ir::OpKind::kRem || bi.kind == ir::OpKind::kMin ||
           bi.kind == ir::OpKind::kMax) &&
          bi.has_result() && AddrPure(local_defs, bi.result, iv);
      (pure ? front : rest).push_back(std::move(bi));
    }
    body.body.clear();
    for (auto& x : front) {
      body.body.push_back(std::move(x));
    }
    for (auto& x : rest) {
      body.body.push_back(std::move(x));
    }
  }
}

}  // namespace

int FuseAndBatchLoops(ir::Module* module) {
  int fused = 0;
  for (auto& f : module->functions) {
    FuseRegion(*f, f->body, &fused);
  }
  return fused;
}

}  // namespace mira::passes
