// Prefetch insertion (§4.5 "adaptive prefetching") and eviction hints
// (§4.5 "eviction hints"), plus lifetime-end insertion (§6.2: "we end a
// section as soon as its lifetime in the program ends").
//
// Prefetching is compiled into the program, not predicted at run time:
//   - contiguous patterns: a line-boundary-guarded rmem.prefetch of the
//     line `distance` lines ahead, plus a prologue prefetch covering the
//     first `distance` lines before the loop (paper Fig 14's async fetch +
//     wait structure);
//   - indirect patterns (B[A[i]]): a per-iteration runahead — load
//     A[i+distance] (cheap: A's lines are prefetched/promoted) and prefetch
//     B at the loaded index — exactly the paper's §1 example.

#ifndef MIRA_SRC_PASSES_PREFETCH_EVICT_H_
#define MIRA_SRC_PASSES_PREFETCH_EVICT_H_

#include <set>
#include <string>

#include "src/analysis/access_analysis.h"
#include "src/analysis/lifetime.h"
#include "src/ir/ir.h"
#include "src/passes/compile_info.h"

namespace mira::passes {

// Returns the number of prefetch sites inserted.
int InsertPrefetches(ir::Module* module, const analysis::AccessAnalysis& access,
                     const CompileInfoMap& info);

// Returns the number of eviction-hint sites inserted.
int InsertEvictionHints(ir::Module* module, const analysis::AccessAnalysis& access,
                        const CompileInfoMap& info);

// Inserts rmem.lifetime_end in `root` after the last statement touching
// each object in `objects` (only objects allocated in `root`). Returns the
// number of markers inserted.
int InsertLifetimeEnds(ir::Module* module, const std::string& root,
                       const analysis::LifetimeAnalysis& lifetime,
                       const std::set<std::string>& objects);

}  // namespace mira::passes

#endif  // MIRA_SRC_PASSES_PREFETCH_EVICT_H_
