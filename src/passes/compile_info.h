// Per-object compilation directives derived by the planner from analysis +
// profiling, consumed by the IR-rewriting passes.

#ifndef MIRA_SRC_PASSES_COMPILE_INFO_H_
#define MIRA_SRC_PASSES_COMPILE_INFO_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/analysis/access_analysis.h"

namespace mira::passes {

struct ObjectCompileInfo {
  analysis::AccessPattern pattern = analysis::AccessPattern::kUnknown;
  uint32_t line_bytes = 4096;
  uint32_t elem_bytes = 8;
  // Prefetch lookahead: lines for contiguous patterns, elements for
  // indirect ones. 0 disables prefetch insertion.
  uint32_t prefetch_distance = 0;
  bool eviction_hints = false;
  // Native-load promotion is legal for this object's loop accesses (§4.4).
  bool promote = false;
};

using CompileInfoMap = std::map<std::string, ObjectCompileInfo>;

}  // namespace mira::passes

#endif  // MIRA_SRC_PASSES_COMPILE_INFO_H_
