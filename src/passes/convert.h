// Conversion and attribute passes:
//
//  - RemotableConversion (§4.4, §5.2.1): loads/stores whose pointers bind to
//    selected far objects become rmem.load / rmem.store.
//  - PromoteNativeLoads (§4.4): rmem accesses proven conflict-free and
//    covered by prefetching are marked `promoted`, compiling to native
//    loads; full-line write-only stores are marked `full_line_write`.
//  - OffloadExtraction (§4.8): calls to chosen functions become
//    rmem.offload_call and the callee is marked remotable.

#ifndef MIRA_SRC_PASSES_CONVERT_H_
#define MIRA_SRC_PASSES_CONVERT_H_

#include <set>
#include <string>

#include "src/analysis/access_analysis.h"
#include "src/ir/ir.h"
#include "src/passes/compile_info.h"

namespace mira::passes {

// Rewrites kLoad/kStore → kRmemLoad/kRmemStore for accesses that may touch
// `selected` objects. Returns the number of converted accesses.
int RemotableConversion(ir::Module* module, const analysis::AccessAnalysis& access,
                        const std::set<std::string>& selected);

// Marks promotion / full-line-write attributes per `info`. Returns the
// number of promoted accesses.
int PromoteNativeLoads(ir::Module* module, const analysis::AccessAnalysis& access,
                       const CompileInfoMap& info);

// Converts calls to `functions` into offload calls. Returns count.
int OffloadExtraction(ir::Module* module, const std::set<std::string>& functions);

}  // namespace mira::passes

#endif  // MIRA_SRC_PASSES_CONVERT_H_
