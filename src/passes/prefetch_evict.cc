#include "src/passes/prefetch_evict.h"

#include <algorithm>

#include "src/passes/rewrite_util.h"

namespace mira::passes {

namespace {

// Minimal per-loop scalar evolution: is `value` affine in `iv`?
bool AffineInIv(const std::map<uint32_t, const ir::Instr*>& defs, uint32_t value, uint32_t iv,
                int64_t* coeff, int depth = 0) {
  if (value == iv) {
    *coeff = 1;
    return true;
  }
  if (depth > 12) {
    return false;
  }
  const auto it = defs.find(value);
  if (it == defs.end()) {
    *coeff = 0;  // parameter / outer region arg: invariant
    return true;
  }
  const ir::Instr& d = *it->second;
  switch (d.kind) {
    case ir::OpKind::kConstI:
      *coeff = 0;
      return true;
    case ir::OpKind::kAdd:
    case ir::OpKind::kSub: {
      int64_t a = 0, b = 0;
      if (!AffineInIv(defs, d.operands[0], iv, &a, depth + 1) ||
          !AffineInIv(defs, d.operands[1], iv, &b, depth + 1)) {
        return false;
      }
      *coeff = d.kind == ir::OpKind::kSub ? a - b : a + b;
      return true;
    }
    case ir::OpKind::kMul: {
      int64_t a = 0, b = 0;
      const auto ca = defs.find(d.operands[0]);
      const auto cb = defs.find(d.operands[1]);
      if (cb != defs.end() && cb->second->kind == ir::OpKind::kConstI &&
          AffineInIv(defs, d.operands[0], iv, &a, depth + 1)) {
        *coeff = a * cb->second->i_attr;
        return true;
      }
      if (ca != defs.end() && ca->second->kind == ir::OpKind::kConstI &&
          AffineInIv(defs, d.operands[1], iv, &b, depth + 1)) {
        *coeff = b * ca->second->i_attr;
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

// The load instruction feeding `value` (possibly through affine arith), or
// nullptr.
const ir::Instr* FeedingLoad(const std::map<uint32_t, const ir::Instr*>& defs, uint32_t value,
                             int depth = 0) {
  if (depth > 12) {
    return nullptr;
  }
  const auto it = defs.find(value);
  if (it == defs.end()) {
    return nullptr;
  }
  const ir::Instr& d = *it->second;
  if (d.kind == ir::OpKind::kRmemLoad || d.kind == ir::OpKind::kLoad) {
    return &d;
  }
  if (d.kind == ir::OpKind::kAdd || d.kind == ir::OpKind::kSub ||
      d.kind == ir::OpKind::kMul) {
    for (const uint32_t op : d.operands) {
      if (const ir::Instr* l = FeedingLoad(defs, op, depth + 1)) {
        return l;
      }
    }
  }
  return nullptr;
}

// Picks the object (with compile info) an access binds to.
const std::string* ObjectOf(const std::map<uint32_t, std::set<std::string>>& bindings,
                            uint32_t addr_value, const CompileInfoMap& info) {
  const auto it = bindings.find(addr_value);
  if (it == bindings.end()) {
    return nullptr;
  }
  for (const auto& label : it->second) {
    const auto info_it = info.find(label);
    if (info_it != info.end()) {
      return &info_it->first;
    }
  }
  return nullptr;
}

class PrefetchInserter {
 public:
  PrefetchInserter(ir::Module* module, ir::Function* func,
                   const std::map<uint32_t, std::set<std::string>>& bindings,
                   const CompileInfoMap& info)
      : module_(module), func_(func), bindings_(bindings), info_(info) {}

  int Run() {
    ProcessRegion(func_->body);
    return inserted_;
  }

 private:
  void ProcessRegion(ir::Region& region) {
    // Bottom-up: children first. Iterate by index; insertions happen only
    // after children of the current loop are done.
    for (size_t i = 0; i < region.body.size(); ++i) {
      for (auto& sub : region.body[i].regions) {
        ProcessRegion(sub);
      }
      if (region.body[i].kind == ir::OpKind::kFor) {
        i += ProcessLoop(region, i);  // may insert a prologue before i
      }
    }
  }

  // Returns how many instructions were inserted *before* the loop at `pos`.
  size_t ProcessLoop(ir::Region& parent, size_t pos) {
    ir::Instr& loop = parent.body[pos];
    ir::Region& body = loop.regions[0];
    const uint32_t iv = body.args[0];
    const auto defs = BuildDefMap(*func_);

    struct SeqPlan {
      std::string object;
      uint32_t base;
      int64_t scale;
      uint32_t line;
      uint32_t elem;
      uint32_t distance;
    };
    struct IndirectPlan {
      std::string b_object;
      const ir::Instr* b_index;   // kIndex feeding the indirect access
      const ir::Instr* a_load;    // the load producing the index
      uint32_t distance;
      bool a_promote;
      uint32_t b_line;
    };
    std::vector<SeqPlan> seq;
    std::vector<IndirectPlan> indirect;
    // Dedup: one prefetch construct per object for contiguous patterns, and
    // one per (object, index-source field) for indirect ones — B[A[i].x]
    // and B[A[i].y] each get their own runahead chain.
    std::set<std::string> planned;

    for (const auto& instr : body.body) {
      if (instr.kind != ir::OpKind::kRmemLoad && instr.kind != ir::OpKind::kRmemStore) {
        continue;
      }
      const auto addr_def = defs.find(instr.operands[0]);
      if (addr_def == defs.end() || addr_def->second->kind != ir::OpKind::kIndex) {
        continue;
      }
      const ir::Instr& index = *addr_def->second;
      const std::string* obj = ObjectOf(bindings_, instr.operands[0], info_);
      if (obj == nullptr) {
        obj = ObjectOf(bindings_, index.operands[0], info_);
      }
      if (obj == nullptr) {
        continue;
      }
      const ObjectCompileInfo& oi = info_.at(*obj);
      if (oi.prefetch_distance == 0) {
        continue;
      }
      int64_t coeff = 0;
      if (AffineInIv(defs, index.operands[1], iv, &coeff) && coeff != 0) {
        if (!planned.insert(*obj).second) {
          continue;
        }
        seq.push_back(SeqPlan{*obj, index.operands[0], index.i_attr, oi.line_bytes,
                              oi.elem_bytes, oi.prefetch_distance});
      } else if (const ir::Instr* a_load = FeedingLoad(defs, index.operands[1])) {
        // Key the runahead by the source load's address expression (its
        // kIndex), so distinct source fields each get coverage.
        const std::string key =
            *obj + "#" + std::to_string(a_load->operands[0]);
        if (!planned.insert(key).second) {
          continue;
        }
        const std::string* a_obj = ObjectOf(bindings_, a_load->operands[0], info_);
        indirect.push_back(IndirectPlan{*obj, &index, a_load, oi.prefetch_distance,
                                        a_obj != nullptr && info_.at(*a_obj).promote,
                                        oi.line_bytes});
      }
    }
    if (seq.empty() && indirect.empty()) {
      return 0;
    }

    // ---- In-loop constructs, built back-to-front so prefix order holds.
    std::vector<ir::Instr> prefix;
    for (const auto& p : seq) {
      const uint32_t epl = std::max<uint32_t>(1, p.line / std::max<uint32_t>(1, p.elem));
      uint32_t c_epl, c_zero, c_ahead, rem, is_edge, idx2, addr2;
      prefix.push_back(MakeConstI(func_, epl, &c_epl));
      prefix.push_back(MakeConstI(func_, 0, &c_zero));
      prefix.push_back(
          MakeConstI(func_, static_cast<int64_t>(p.distance) * epl, &c_ahead));
      prefix.push_back(MakeBinary(func_, ir::OpKind::kRem, iv, c_epl, ir::Type::kI64, &rem));
      prefix.push_back(
          MakeBinary(func_, ir::OpKind::kCmpEq, rem, c_zero, ir::Type::kI64, &is_edge));
      ir::Instr guard;
      guard.kind = ir::OpKind::kIf;
      guard.operands = {is_edge};
      guard.regions.resize(2);
      std::vector<ir::Instr> then_body;
      then_body.push_back(
          MakeBinary(func_, ir::OpKind::kAdd, iv, c_ahead, ir::Type::kI64, &idx2));
      then_body.push_back(MakeIndex(func_, p.base, idx2, p.scale, 0, &addr2));
      then_body.push_back(MakePrefetch(addr2, p.line));
      guard.regions[0].body = std::move(then_body);
      prefix.push_back(std::move(guard));
    }
    for (const auto& p : indirect) {
      uint32_t c_d, c_one, iv2, him, iv2m;
      prefix.push_back(MakeConstI(func_, p.distance, &c_d));
      prefix.push_back(MakeConstI(func_, 1, &c_one));
      prefix.push_back(MakeBinary(func_, ir::OpKind::kAdd, iv, c_d, ir::Type::kI64, &iv2));
      prefix.push_back(MakeBinary(func_, ir::OpKind::kSub, loop.operands[1], c_one,
                                  ir::Type::kI64, &him));
      prefix.push_back(MakeBinary(func_, ir::OpKind::kMin, iv2, him, ir::Type::kI64, &iv2m));
      // Runahead load of the index source at i+d.
      std::map<uint32_t, uint32_t> subst{{iv, iv2m}};
      const uint32_t a_addr2 =
          CloneExpr(func_, defs, p.a_load->operands[0], subst, &prefix);
      if (a_addr2 == UINT32_MAX) {
        continue;
      }
      ir::Instr a2;
      a2.kind = ir::OpKind::kRmemLoad;
      a2.operands = {a_addr2};
      a2.mem.bytes = p.a_load->mem.bytes;
      a2.mem.promoted = p.a_promote;
      a2.type = p.a_load->type;
      a2.result = func_->NewValue(p.a_load->type);
      const uint32_t aval2 = a2.result;
      prefix.push_back(std::move(a2));
      // Address of B at the runahead index.
      subst[p.a_load->result] = aval2;
      const uint32_t b_addr2 = CloneExpr(func_, defs, p.b_index->result, subst, &prefix);
      if (b_addr2 == UINT32_MAX) {
        prefix.pop_back();
        continue;
      }
      prefix.push_back(MakePrefetch(b_addr2, p.b_line));
    }
    inserted_ += static_cast<int>(seq.size() + indirect.size());
    body.body.insert(body.body.begin(), std::make_move_iterator(prefix.begin()),
                     std::make_move_iterator(prefix.end()));

    // ---- Prologue: prefetch the first `distance` lines before the loop.
    std::vector<ir::Instr> prologue;
    for (const auto& p : seq) {
      uint32_t addr0;
      prologue.push_back(MakeIndex(func_, p.base, loop.operands[0], p.scale, 0, &addr0));
      const uint32_t span =
          std::min<uint32_t>(p.distance, 8) * p.line;
      prologue.push_back(MakePrefetch(addr0, span));
    }
    const size_t n = prologue.size();
    parent.body.insert(parent.body.begin() + static_cast<long>(pos),
                       std::make_move_iterator(prologue.begin()),
                       std::make_move_iterator(prologue.end()));
    return n;
  }

  ir::Module* module_;
  ir::Function* func_;
  const std::map<uint32_t, std::set<std::string>>& bindings_;
  const CompileInfoMap& info_;
  int inserted_ = 0;
};

}  // namespace

int InsertPrefetches(ir::Module* module, const analysis::AccessAnalysis& access,
                     const CompileInfoMap& info) {
  int total = 0;
  for (auto& f : module->functions) {
    total += PrefetchInserter(module, f.get(), access.Bindings(f->name), info).Run();
  }
  return total;
}

namespace {

class EvictHintInserter {
 public:
  EvictHintInserter(ir::Function* func,
                    const std::map<uint32_t, std::set<std::string>>& bindings,
                    const CompileInfoMap& info)
      : func_(func), bindings_(bindings), info_(info) {}

  int Run() {
    ProcessRegion(func_->body);
    return inserted_;
  }

 private:
  void ProcessRegion(ir::Region& region) {
    for (auto& instr : region.body) {
      for (auto& sub : instr.regions) {
        ProcessRegion(sub);
      }
      if (instr.kind == ir::OpKind::kFor) {
        ProcessLoop(instr);
      }
    }
  }

  void ProcessLoop(ir::Instr& loop) {
    ir::Region& body = loop.regions[0];
    const uint32_t iv = body.args[0];
    const auto defs = BuildDefMap(*func_);
    struct Plan {
      uint32_t base;
      int64_t scale;
      uint32_t line;
      uint32_t elem;
    };
    std::vector<Plan> plans;
    std::set<std::string> planned;
    for (const auto& instr : body.body) {
      if (instr.kind != ir::OpKind::kRmemLoad && instr.kind != ir::OpKind::kRmemStore) {
        continue;
      }
      const auto addr_def = defs.find(instr.operands[0]);
      if (addr_def == defs.end() || addr_def->second->kind != ir::OpKind::kIndex) {
        continue;
      }
      const ir::Instr& index = *addr_def->second;
      const std::string* obj = ObjectOf(bindings_, instr.operands[0], info_);
      if (obj == nullptr) {
        obj = ObjectOf(bindings_, index.operands[0], info_);
      }
      if (obj == nullptr || planned.count(*obj) > 0) {
        continue;
      }
      const ObjectCompileInfo& oi = info_.at(*obj);
      if (!oi.eviction_hints) {
        continue;
      }
      int64_t coeff = 0;
      if (!AffineInIv(defs, index.operands[1], iv, &coeff) || coeff == 0) {
        continue;  // hints only for analyzable contiguous last-accesses
      }
      plans.push_back(Plan{index.operands[0], index.i_attr, oi.line_bytes, oi.elem_bytes});
      planned.insert(*obj);
    }
    for (const auto& p : plans) {
      const uint32_t epl = std::max<uint32_t>(1, p.line / std::max<uint32_t>(1, p.elem));
      uint32_t c_epl, c_last, rem, is_last, addr;
      std::vector<ir::Instr> suffix;
      suffix.push_back(MakeConstI(func_, epl, &c_epl));
      suffix.push_back(MakeConstI(func_, epl - 1, &c_last));
      suffix.push_back(MakeBinary(func_, ir::OpKind::kRem, iv, c_epl, ir::Type::kI64, &rem));
      suffix.push_back(
          MakeBinary(func_, ir::OpKind::kCmpEq, rem, c_last, ir::Type::kI64, &is_last));
      ir::Instr guard;
      guard.kind = ir::OpKind::kIf;
      guard.operands = {is_last};
      guard.regions.resize(2);
      std::vector<ir::Instr> then_body;
      then_body.push_back(MakeIndex(func_, p.base, iv, p.scale, 0, &addr));
      then_body.push_back(MakeEvictHint(addr, 1));
      guard.regions[0].body = std::move(then_body);
      suffix.push_back(std::move(guard));
      body.body.insert(body.body.end(), std::make_move_iterator(suffix.begin()),
                       std::make_move_iterator(suffix.end()));
      ++inserted_;
    }
  }

  ir::Function* func_;
  const std::map<uint32_t, std::set<std::string>>& bindings_;
  const CompileInfoMap& info_;
  int inserted_ = 0;
};

}  // namespace

int InsertEvictionHints(ir::Module* module, const analysis::AccessAnalysis& access,
                        const CompileInfoMap& info) {
  int total = 0;
  for (auto& f : module->functions) {
    total += EvictHintInserter(f.get(), access.Bindings(f->name), info).Run();
  }
  return total;
}

int InsertLifetimeEnds(ir::Module* module, const std::string& root,
                       const analysis::LifetimeAnalysis& lifetime,
                       const std::set<std::string>& objects) {
  ir::Function* func = module->FindFunction(root);
  if (func == nullptr) {
    return 0;
  }
  // Find alloc sites in root: label → (stmt index, result value).
  struct AllocSite {
    int stmt;
    uint32_t value;
  };
  std::map<std::string, AllocSite> sites;
  for (int i = 0; i < static_cast<int>(func->body.body.size()); ++i) {
    const ir::Instr& instr = func->body.body[static_cast<size_t>(i)];
    if (instr.kind == ir::OpKind::kAlloc && sites.find(instr.s_attr) == sites.end()) {
      sites[instr.s_attr] = AllocSite{i, instr.result};
    }
  }
  // Collect insertions (position after last_stmt), apply in descending
  // order so positions stay valid.
  std::vector<std::pair<int, uint32_t>> points;  // (insert position, ptr value)
  for (const auto& obj : objects) {
    const auto lt = lifetime.lifetimes().find(obj);
    const auto site = sites.find(obj);
    if (lt == lifetime.lifetimes().end() || site == sites.end()) {
      continue;
    }
    if (lt->second.last_stmt + 1 >= static_cast<int>(func->body.body.size())) {
      continue;  // dies at program end anyway
    }
    points.push_back({lt->second.last_stmt + 1, site->second.value});
  }
  std::sort(points.begin(), points.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [pos, value] : points) {
    ir::Instr end;
    end.kind = ir::OpKind::kLifetimeEnd;
    end.operands = {value};
    func->body.body.insert(func->body.body.begin() + pos, std::move(end));
  }
  return static_cast<int>(points.size());
}

}  // namespace mira::passes
