#include "src/passes/rewrite_util.h"

namespace mira::passes {

std::map<uint32_t, const ir::Instr*> BuildDefMap(const ir::Function& func) {
  std::map<uint32_t, const ir::Instr*> defs;
  ir::WalkInstrs(const_cast<ir::Region&>(func.body), [&](ir::Instr& instr) {
    if (instr.has_result()) {
      defs[instr.result] = &instr;
    }
  });
  return defs;
}

ir::Instr MakeConstI(ir::Function* func, int64_t v, uint32_t* result) {
  ir::Instr instr;
  instr.kind = ir::OpKind::kConstI;
  instr.i_attr = v;
  instr.type = ir::Type::kI64;
  instr.result = func->NewValue(ir::Type::kI64);
  *result = instr.result;
  return instr;
}

ir::Instr MakeBinary(ir::Function* func, ir::OpKind kind, uint32_t a, uint32_t b, ir::Type t,
                     uint32_t* result) {
  ir::Instr instr;
  instr.kind = kind;
  instr.operands = {a, b};
  instr.type = t;
  instr.result = func->NewValue(t);
  *result = instr.result;
  return instr;
}

ir::Instr MakeIndex(ir::Function* func, uint32_t base, uint32_t idx, int64_t scale,
                    int64_t offset, uint32_t* result) {
  ir::Instr instr;
  instr.kind = ir::OpKind::kIndex;
  instr.operands = {base, idx};
  instr.i_attr = scale;
  instr.i_attr2 = offset;
  instr.type = ir::Type::kPtr;
  instr.result = func->NewValue(ir::Type::kPtr);
  *result = instr.result;
  return instr;
}

ir::Instr MakePrefetch(uint32_t addr, uint32_t bytes) {
  ir::Instr instr;
  instr.kind = ir::OpKind::kPrefetch;
  instr.operands = {addr};
  instr.mem.bytes = bytes;
  return instr;
}

ir::Instr MakeEvictHint(uint32_t addr, uint32_t bytes) {
  ir::Instr instr;
  instr.kind = ir::OpKind::kEvictHint;
  instr.operands = {addr};
  instr.mem.bytes = bytes;
  return instr;
}

uint32_t CloneExpr(ir::Function* func, const std::map<uint32_t, const ir::Instr*>& defs,
                   uint32_t value, const std::map<uint32_t, uint32_t>& subst,
                   std::vector<ir::Instr>* out, int depth) {
  const auto sub_it = subst.find(value);
  if (sub_it != subst.end()) {
    return sub_it->second;
  }
  if (depth > 12) {
    return UINT32_MAX;
  }
  const auto it = defs.find(value);
  if (it == defs.end()) {
    // Parameter or region arg (not the iv): loop-invariant, reuse directly.
    return value;
  }
  const ir::Instr& d = *it->second;
  switch (d.kind) {
    case ir::OpKind::kConstI:
      // Invariant; reuse (dominance holds only if defined outside the loop —
      // constants are rematerialized to be safe).
      {
        uint32_t r;
        out->push_back(MakeConstI(func, d.i_attr, &r));
        return r;
      }
    case ir::OpKind::kAdd:
    case ir::OpKind::kSub:
    case ir::OpKind::kMul:
    case ir::OpKind::kDiv:
    case ir::OpKind::kRem:
    case ir::OpKind::kMin:
    case ir::OpKind::kMax: {
      const uint32_t a = CloneExpr(func, defs, d.operands[0], subst, out, depth + 1);
      const uint32_t b = CloneExpr(func, defs, d.operands[1], subst, out, depth + 1);
      if (a == UINT32_MAX || b == UINT32_MAX) {
        return UINT32_MAX;
      }
      uint32_t r;
      out->push_back(MakeBinary(func, d.kind, a, b, d.type, &r));
      return r;
    }
    case ir::OpKind::kIndex: {
      const uint32_t base = d.operands[0];  // invariant base pointer
      const uint32_t idx = CloneExpr(func, defs, d.operands[1], subst, out, depth + 1);
      if (idx == UINT32_MAX) {
        return UINT32_MAX;
      }
      uint32_t r;
      out->push_back(MakeIndex(func, base, idx, d.i_attr, d.i_attr2, &r));
      return r;
    }
    default:
      return UINT32_MAX;
  }
}

}  // namespace mira::passes
