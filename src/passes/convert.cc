#include "src/passes/convert.h"

#include <algorithm>

namespace mira::passes {

namespace {

bool Intersects(const std::set<std::string>& a, const std::set<std::string>& b) {
  for (const auto& x : a) {
    if (b.find(x) != b.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace

int RemotableConversion(ir::Module* module, const analysis::AccessAnalysis& access,
                        const std::set<std::string>& selected) {
  int converted = 0;
  for (auto& f : module->functions) {
    const auto& bindings = access.Bindings(f->name);
    ir::WalkInstrs(f->body, [&](ir::Instr& instr) {
      if (instr.kind != ir::OpKind::kLoad && instr.kind != ir::OpKind::kStore) {
        return;
      }
      const auto it = bindings.find(instr.operands[0]);
      if (it == bindings.end() || !Intersects(it->second, selected)) {
        return;
      }
      instr.kind = instr.kind == ir::OpKind::kLoad ? ir::OpKind::kRmemLoad
                                                   : ir::OpKind::kRmemStore;
      ++converted;
    });
  }
  return converted;
}

int PromoteNativeLoads(ir::Module* module, const analysis::AccessAnalysis& access,
                       const CompileInfoMap& info) {
  int promoted = 0;
  for (auto& f : module->functions) {
    const auto& finfo = access.ForFunction(f->name);
    for (const auto& a : finfo.accesses) {
      if (a.objects.empty()) {
        continue;
      }
      bool all_promotable = true;
      for (const auto& obj : a.objects) {
        const auto it = info.find(obj);
        if (it == info.end() || !it->second.promote) {
          all_promotable = false;
          break;
        }
      }
      // The analysis holds const pointers into `module`, which we own here.
      auto* instr = const_cast<ir::Instr*>(a.instr);
      if (instr->kind != ir::OpKind::kRmemLoad && instr->kind != ir::OpKind::kRmemStore) {
        continue;
      }
      const bool contiguous = a.pattern == analysis::AccessPattern::kSequential ||
                              a.pattern == analysis::AccessPattern::kStrided;
      if (all_promotable && contiguous && a.loop_depth > 0) {
        instr->mem.promoted = true;
        ++promoted;
      }
      // Write-only full-line stores skip the fetch (§4.5): the loop writes
      // each consecutive element and never reads the object in that loop.
      if (a.is_store && a.pattern == analysis::AccessPattern::kSequential &&
          a.bytes == a.elem_bytes && a.loop_body != nullptr) {
        bool read_in_loop = false;
        for (const auto& other : finfo.accesses) {
          if (!other.is_store && other.loop_body == a.loop_body &&
              Intersects(other.objects, a.objects)) {
            read_in_loop = true;
            break;
          }
        }
        if (!read_in_loop) {
          instr->mem.full_line_write = true;
        }
      }
    }
  }
  return promoted;
}

int OffloadExtraction(ir::Module* module, const std::set<std::string>& functions) {
  int count = 0;
  std::set<uint32_t> indices;
  for (const auto& name : functions) {
    if (module->FindFunction(name) != nullptr) {
      const uint32_t idx = module->FunctionIndex(name);
      indices.insert(idx);
      module->functions[idx]->remotable = true;
    }
  }
  for (auto& f : module->functions) {
    ir::WalkInstrs(f->body, [&](ir::Instr& instr) {
      if (instr.kind == ir::OpKind::kCall && indices.count(instr.callee) > 0) {
        instr.kind = ir::OpKind::kOffloadCall;
        ++count;
      }
    });
  }
  return count;
}

}  // namespace mira::passes
