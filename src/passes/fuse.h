// Loop fusion + data-access batching (§4.5 "data access batching").
//
// Adjacent for-loops with identical bounds whose bodies are fusion-safe
// (no memory stores, no calls, no nested control flow — reductions into
// locals are fine) are merged into one loop. All rmem loads in the fused
// body whose addresses are pure functions of the induction variable get a
// shared batch group: the runtime fetches all their missing lines with one
// scatter-gather message per iteration. Loads of the *same* address across
// fused bodies (the paper's avg/min/max DataFrame job, Fig 23) naturally
// deduplicate into a single fetch.

#ifndef MIRA_SRC_PASSES_FUSE_H_
#define MIRA_SRC_PASSES_FUSE_H_

#include "src/ir/ir.h"

namespace mira::passes {

// Returns the number of loops fused away.
int FuseAndBatchLoops(ir::Module* module);

}  // namespace mira::passes

#endif  // MIRA_SRC_PASSES_FUSE_H_
