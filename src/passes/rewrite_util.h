// Shared helpers for IR-rewriting passes: creating instructions with fresh
// SSA values, locating definitions, and cloning address expressions with the
// induction variable substituted (used by prefetch insertion's runahead
// address computation).

#ifndef MIRA_SRC_PASSES_REWRITE_UTIL_H_
#define MIRA_SRC_PASSES_REWRITE_UTIL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/ir/ir.h"

namespace mira::passes {

// Map of value id → defining instruction for one function.
std::map<uint32_t, const ir::Instr*> BuildDefMap(const ir::Function& func);

// Instruction factories (result ids allocated from `func`).
ir::Instr MakeConstI(ir::Function* func, int64_t v, uint32_t* result);
ir::Instr MakeBinary(ir::Function* func, ir::OpKind kind, uint32_t a, uint32_t b, ir::Type t,
                     uint32_t* result);
ir::Instr MakeIndex(ir::Function* func, uint32_t base, uint32_t idx, int64_t scale,
                    int64_t offset, uint32_t* result);
ir::Instr MakePrefetch(uint32_t addr, uint32_t bytes);
ir::Instr MakeEvictHint(uint32_t addr, uint32_t bytes);

// Clones the pure expression tree producing `value` (consts, arith, index)
// with values remapped through `subst`, appending the cloned instructions
// to `out`. Returns the cloned value id, or UINT32_MAX if the expression is
// not pure/cloneable (touches memory or locals).
uint32_t CloneExpr(ir::Function* func, const std::map<uint32_t, const ir::Instr*>& defs,
                   uint32_t value, const std::map<uint32_t, uint32_t>& subst,
                   std::vector<ir::Instr>* out, int depth = 0);

}  // namespace mira::passes

#endif  // MIRA_SRC_PASSES_REWRITE_UTIL_H_
