// Chaos schedules: the event vocabulary the fault-search harness explores.
//
// A schedule is a flat list of ChaosEvents — each one an independent,
// human-readable fault ("drop 2% of read.sync", "outage [120k, 180k)",
// "node 2 crashes at 400k and rejoins at 520k") — drawn by a seeded
// generator and COMPOSED into one net::FaultPlan. Keeping the event list
// (not the composed plan) as the unit of search is what makes delta-
// debugging work: the minimizer removes whole events and recomposes, so a
// minimized repro reads as the handful of faults that actually matter.
//
// Generation is deterministic: GenerateSchedule(seed, opts) depends on
// nothing but its arguments, and ComposePlan is a pure function of
// (seed, events) — so (seed, opts) names a schedule and a repro artifact's
// event list replays bit-exactly (DESIGN.md §7.2).

#ifndef MIRA_SRC_CHAOS_SCHEDULE_H_
#define MIRA_SRC_CHAOS_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/fault_injector.h"
#include "src/support/json.h"
#include "src/support/status.h"

namespace mira::chaos {

enum class EventKind : uint8_t {
  kVerbFault,      // one probability knob on one verb (drop/timeout/tail/...)
  kOutage,         // far node unreachable for a window
  kDegraded,       // link bandwidth degraded for a window
  kTornWriteback,  // sync drain bursts may tear
  kNodeCrash,      // node crash (+ optional rejoin)
};
inline constexpr size_t kNumEventKinds = 5;

const char* EventKindName(EventKind k);
bool EventKindFromName(std::string_view name, EventKind* out);

// One schedule event. Only the fields its kind names are meaningful; the
// rest stay at their defaults (and are omitted from JSON), so defaulted
// equality is exact across a JSON round trip.
struct ChaosEvent {
  EventKind kind = EventKind::kVerbFault;
  // kVerbFault: which verb, which knob, how hard.
  net::Verb verb = net::Verb::kReadSync;
  std::string fault;              // drop|timeout|tail|corrupt|stale|duplicate
  double probability = 0.0;       // also kTornWriteback's tear probability
  double tail_multiplier = 1.0;   // fault == "tail" only
  // kOutage / kDegraded: the window.
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  double bandwidth_factor = 1.0;  // kDegraded only
  // kNodeCrash.
  int node = 0;
  uint64_t crash_ns = 0;
  uint64_t rejoin_ns = 0;  // 0 = never rejoins

  bool operator==(const ChaosEvent&) const = default;

  support::JsonValue ToJson() const;
  static support::Result<ChaosEvent> FromJson(const support::JsonValue& json);
  // One-line human description for logs and minimized repro listings.
  std::string Describe() const;
};

support::JsonValue ScheduleToJson(const std::vector<ChaosEvent>& events);
support::Result<std::vector<ChaosEvent>> ScheduleFromJson(const support::JsonValue& json);

struct GenOptions {
  // Upper bound on generated events (the draw is 1..max_events).
  int max_events = 6;
  // Cluster size crash events pick nodes from.
  int num_nodes = 3;
  // Rough clean-run duration: windows and crash times land inside it.
  uint64_t horizon_ns = 2'000'000;
};

// Draws a schedule from Rng(seed). Stacking is allowed and intended —
// several events may hit the same verb, windows may overlap — EXCEPT crash
// discipline: crash cycles are sequential with generous spacing (one node
// down at a time, next crash well after the previous rejoin) and a
// no-rejoin crash closes the crash stream, so with one replica a survivor
// always exists and the no-data-loss oracles are sound by construction.
std::vector<ChaosEvent> GenerateSchedule(uint64_t seed, const GenOptions& opts);

// Composes events into one FaultPlan with the given RNG seed. Probability
// knobs hit by several events add (clamped); windows and crash schedules
// concatenate (windows sorted by start, crashes by crash time). Pure:
// identical (seed, events) → identical plan, bit for bit.
net::FaultPlan ComposePlan(uint64_t seed, const std::vector<ChaosEvent>& events);

}  // namespace mira::chaos

#endif  // MIRA_SRC_CHAOS_SCHEDULE_H_
