#include "src/chaos/runner.h"

#include <algorithm>
#include <utility>

#include "src/analysis/access_analysis.h"
#include "src/interp/interpreter.h"
#include "src/pipeline/optimizer.h"
#include "src/pipeline/planner.h"
#include "src/pipeline/world.h"
#include "src/support/check.h"
#include "src/telemetry/profiler.h"
#include "src/workloads/workloads.h"

namespace mira::chaos {

namespace {

// Chaos-scaled workloads: the same programs the figure benches run, sized
// so a 200-seed sweep finishes in CI time. Scaling only shrinks the data;
// every far-memory technique (sections, prefetch, batching, selective
// transmission, offload) still engages.
workloads::Workload BuildChaosWorkload(const std::string& name) {
  if (name == "graph") {
    workloads::GraphParams p;
    p.num_edges = 12'000;
    p.num_nodes = 3'000;
    p.epochs = 2;
    return workloads::BuildGraphTraversal(p);
  }
  if (name == "dataframe") {
    workloads::DataFrameParams p;
    p.rows = 16'000;
    p.groups = 128;
    return workloads::BuildDataFrame(p);
  }
  MIRA_CHECK_MSG(false, "unknown chaos workload (see ChaosRunner::KnownWorkloads)");
  return {};
}

}  // namespace

const std::vector<std::string>& ChaosRunner::KnownWorkloads() {
  static const std::vector<std::string> kNames = {"graph", "dataframe"};
  return kNames;
}

ChaosRunner::ChaosRunner(const RunnerOptions& opts) : opts_(opts) {
  workloads::Workload w = BuildChaosWorkload(opts_.workload);
  entry_ = w.entry;
  local_bytes_ = w.footprint_bytes * static_cast<uint64_t>(opts_.local_percent) / 100;

  // Deep-dive compile (the bench FullPlanCompile path, sans bench deps):
  // one profiling run on the generic swap configuration, then a full-scope
  // plan and the complete pass stack.
  pipeline::World prof_world = pipeline::MakeWorld(pipeline::SystemKind::kMira, local_bytes_);
  interp::InterpOptions prof_opts;
  prof_opts.seed = opts_.interp_seed;
  prof_opts.profiling = true;
  prof_opts.engine = opts_.engine;
  interp::Interpreter prof_interp(w.module.get(), prof_world.backend.get(), prof_opts);
  auto prof_result = prof_interp.Run(entry_);
  MIRA_CHECK_MSG(prof_result.ok(), "chaos workload profiling run failed");
  prof_world.backend->Drain(prof_interp.clock());

  analysis::AccessAnalysis access(w.module.get());
  access.Run();
  pipeline::PlannerOptions popts;
  popts.local_bytes = local_bytes_;
  popts.func_frac = 1.0;
  popts.obj_frac = 1.0;
  pipeline::PlanDraft draft = pipeline::DerivePlan(*w.module, access, prof_interp.profile(),
                                                   sim::CostModel::Default(), popts);
  compiled_ = std::make_unique<ir::Module>(
      pipeline::CompileWithPlan(*w.module, draft, popts, entry_));
  cache_plan_ = std::move(draft.plan);

  clean_ = RunWorld(nullptr, /*with_profiler=*/false);
  MIRA_CHECK_MSG(!clean_.failed, clean_.fail_reason.c_str());
}

ChaosRunner::~ChaosRunner() = default;

RunResult ChaosRunner::RunWorld(const net::FaultPlan* plan, bool with_profiler) const {
  RunResult out;
  pipeline::World world =
      pipeline::MakeWorld(pipeline::SystemKind::kMira, local_bytes_, cache_plan_);
  if (plan != nullptr) {
    pipeline::AttachFaults(world, *plan);
  }
  pipeline::AttachCluster(world, opts_.cluster);
  pipeline::AttachIntegrity(world, opts_.integrity);

  // Scoped profiler enable: Clear() isolates this run's stall totals. The
  // profiler is strictly observational, so enabling it cannot perturb the
  // timing the oracles compare.
  telemetry::StallProfiler& prof = telemetry::Profiler();
  const bool was_enabled = prof.enabled();
  if (with_profiler) {
    prof.Clear();
    prof.Enable(true);
  }

  interp::InterpOptions iopts;
  iopts.seed = opts_.interp_seed;
  iopts.engine = opts_.engine;
  interp::Interpreter interp(compiled_.get(), world.backend.get(), iopts);
  auto result = interp.Run(entry_);
  if (result.ok()) {
    world.backend->Drain(interp.clock());
    out.sim_ns = interp.clock().now_ns();
    out.result = result.value();
    for (const auto& [label, addr] : interp.object_addrs()) {
      out.object_addrs[label] = addr;
    }
  } else {
    out.failed = true;
    out.fail_reason = result.status().ToString();
  }

  if (with_profiler) {
    out.stall_totals = prof.Snapshot().TotalsByVerb();
    prof.Enable(was_enabled);
    if (!was_enabled) {
      prof.Clear();
    }
  }
  out.fault = world.net->fault_stats();
  if (world.cluster != nullptr) {
    out.cluster = world.cluster->stats();
  }
  if (world.integrity != nullptr) {
    out.integrity = world.integrity->stats();
  }
  return out;
}

RunResult ChaosRunner::Execute(const net::FaultPlan& plan) const {
  return RunWorld(&plan, /*with_profiler=*/true);
}

GenOptions ChaosRunner::MakeGenOptions(int max_events) const {
  GenOptions opts;
  opts.max_events = max_events;
  opts.num_nodes = opts_.cluster.num_nodes;
  opts.horizon_ns = clean_.sim_ns;
  return opts;
}

}  // namespace mira::chaos
