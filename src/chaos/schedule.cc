#include "src/chaos/schedule.h"

#include <algorithm>

#include "src/support/rng.h"
#include "src/support/str.h"

namespace mira::chaos {

using support::JsonValue;

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kVerbFault:
      return "verb_fault";
    case EventKind::kOutage:
      return "outage";
    case EventKind::kDegraded:
      return "degraded";
    case EventKind::kTornWriteback:
      return "torn_writeback";
    case EventKind::kNodeCrash:
      return "node_crash";
  }
  return "?";
}

bool EventKindFromName(std::string_view name, EventKind* out) {
  for (size_t i = 0; i < kNumEventKinds; ++i) {
    const EventKind k = static_cast<EventKind>(i);
    if (name == EventKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

JsonValue ChaosEvent::ToJson() const {
  JsonValue o = JsonValue::Object();
  o.Set("kind", JsonValue::Str(EventKindName(kind)));
  switch (kind) {
    case EventKind::kVerbFault:
      o.Set("verb", JsonValue::Str(net::VerbName(verb)));
      o.Set("fault", JsonValue::Str(fault));
      o.Set("probability", JsonValue::Double(probability));
      if (fault == "tail") {
        o.Set("tail_multiplier", JsonValue::Double(tail_multiplier));
      }
      break;
    case EventKind::kOutage:
      o.Set("start_ns", JsonValue::U64(start_ns));
      o.Set("end_ns", JsonValue::U64(end_ns));
      break;
    case EventKind::kDegraded:
      o.Set("start_ns", JsonValue::U64(start_ns));
      o.Set("end_ns", JsonValue::U64(end_ns));
      o.Set("bandwidth_factor", JsonValue::Double(bandwidth_factor));
      break;
    case EventKind::kTornWriteback:
      o.Set("probability", JsonValue::Double(probability));
      break;
    case EventKind::kNodeCrash:
      o.Set("node", JsonValue::I64(node));
      o.Set("crash_ns", JsonValue::U64(crash_ns));
      o.Set("rejoin_ns", JsonValue::U64(rejoin_ns));
      break;
  }
  return o;
}

support::Result<ChaosEvent> ChaosEvent::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return support::Status::InvalidArgument("chaos event must be a JSON object");
  }
  ChaosEvent e;
  const std::string kind_name = json.GetString("kind", "");
  if (!EventKindFromName(kind_name, &e.kind)) {
    return support::Status::InvalidArgument(
        support::StrFormat("unknown chaos event kind '%s'", kind_name.c_str()));
  }
  switch (e.kind) {
    case EventKind::kVerbFault: {
      const std::string verb_name = json.GetString("verb", "");
      if (!net::VerbFromName(verb_name, &e.verb)) {
        return support::Status::InvalidArgument(
            support::StrFormat("unknown verb '%s' in chaos event", verb_name.c_str()));
      }
      e.fault = json.GetString("fault", "");
      e.probability = json.GetDouble("probability", 0.0);
      if (e.fault == "tail") {
        e.tail_multiplier = json.GetDouble("tail_multiplier", 1.0);
      }
      break;
    }
    case EventKind::kOutage:
      e.start_ns = json.GetU64("start_ns", 0);
      e.end_ns = json.GetU64("end_ns", 0);
      break;
    case EventKind::kDegraded:
      e.start_ns = json.GetU64("start_ns", 0);
      e.end_ns = json.GetU64("end_ns", 0);
      e.bandwidth_factor = json.GetDouble("bandwidth_factor", 1.0);
      break;
    case EventKind::kTornWriteback:
      e.probability = json.GetDouble("probability", 0.0);
      break;
    case EventKind::kNodeCrash:
      e.node = static_cast<int>(json.GetI64("node", 0));
      e.crash_ns = json.GetU64("crash_ns", 0);
      e.rejoin_ns = json.GetU64("rejoin_ns", 0);
      break;
  }
  return e;
}

std::string ChaosEvent::Describe() const {
  switch (kind) {
    case EventKind::kVerbFault:
      return support::StrFormat("verb_fault %s.%s p=%.4g%s", net::VerbName(verb), fault.c_str(),
                                probability,
                                fault == "tail"
                                    ? support::StrFormat(" x%.3g", tail_multiplier).c_str()
                                    : "");
    case EventKind::kOutage:
      return support::StrFormat("outage [%llu, %llu)",
                                static_cast<unsigned long long>(start_ns),
                                static_cast<unsigned long long>(end_ns));
    case EventKind::kDegraded:
      return support::StrFormat("degraded [%llu, %llu) bw=%.3g",
                                static_cast<unsigned long long>(start_ns),
                                static_cast<unsigned long long>(end_ns), bandwidth_factor);
    case EventKind::kTornWriteback:
      return support::StrFormat("torn_writeback p=%.4g", probability);
    case EventKind::kNodeCrash:
      return rejoin_ns == 0
                 ? support::StrFormat("node_crash node=%d at=%llu (no rejoin)", node,
                                      static_cast<unsigned long long>(crash_ns))
                 : support::StrFormat("node_crash node=%d at=%llu rejoin=%llu", node,
                                      static_cast<unsigned long long>(crash_ns),
                                      static_cast<unsigned long long>(rejoin_ns));
  }
  return "?";
}

JsonValue ScheduleToJson(const std::vector<ChaosEvent>& events) {
  JsonValue arr = JsonValue::Array();
  for (const ChaosEvent& e : events) {
    arr.Append(e.ToJson());
  }
  return arr;
}

support::Result<std::vector<ChaosEvent>> ScheduleFromJson(const JsonValue& json) {
  if (!json.is_array()) {
    return support::Status::InvalidArgument("chaos schedule must be a JSON array");
  }
  std::vector<ChaosEvent> events;
  for (size_t i = 0; i < json.size(); ++i) {
    auto e = ChaosEvent::FromJson(json.at(i));
    if (!e.ok()) {
      return e.status();
    }
    events.push_back(e.take());
  }
  return events;
}

namespace {

// Verb-fault knob menu with per-knob probability ranges. Link-level loss
// stays light (the retry ladder must still converge under stacking);
// silent-fault rates mirror the SilentCorruption scenario's magnitudes.
struct FaultMenu {
  const char* name;
  double min_p;
  double max_p;
};
constexpr FaultMenu kFaultMenu[] = {
    {"drop", 0.005, 0.04},    {"timeout", 0.005, 0.04}, {"tail", 0.02, 0.20},
    {"corrupt", 0.005, 0.04}, {"stale", 0.005, 0.03},   {"duplicate", 0.01, 0.06},
};

double DrawIn(support::Rng& rng, double lo, double hi) {
  return lo + rng.NextDouble() * (hi - lo);
}

}  // namespace

std::vector<ChaosEvent> GenerateSchedule(uint64_t seed, const GenOptions& opts) {
  support::Rng rng(seed);
  const int count = 1 + static_cast<int>(rng.NextBelow(
                            static_cast<uint64_t>(std::max(1, opts.max_events))));
  const uint64_t horizon = std::max<uint64_t>(opts.horizon_ns, 200'000);
  // Crash discipline (see header): cycles are laid out left to right with a
  // wide gap after each rejoin so the previous cycle's heal has finished
  // (the first verb after any membership change drains the whole
  // re-replication queue), and a no-rejoin crash ends the stream.
  uint64_t crash_cursor = horizon / 8;
  const uint64_t crash_gap = std::max<uint64_t>(horizon / 4, 400'000);
  bool crashes_open = opts.num_nodes > 1;
  std::vector<ChaosEvent> events;
  for (int i = 0; i < count; ++i) {
    ChaosEvent e;
    uint64_t pick = rng.NextBelow(100);
    if (pick >= 85 && (!crashes_open || crash_cursor + crash_gap > horizon)) {
      pick = rng.NextBelow(85);  // no room for another crash cycle
    }
    if (pick < 40) {
      e.kind = EventKind::kVerbFault;
      e.verb = static_cast<net::Verb>(rng.NextBelow(net::kNumVerbs));
      const FaultMenu& m = kFaultMenu[rng.NextBelow(sizeof(kFaultMenu) / sizeof(kFaultMenu[0]))];
      e.fault = m.name;
      e.probability = DrawIn(rng, m.min_p, m.max_p);
      if (e.fault == "tail") {
        e.tail_multiplier = DrawIn(rng, 2.0, 8.0);
      }
    } else if (pick < 60) {
      e.kind = EventKind::kOutage;
      e.start_ns = horizon / 10 + rng.NextBelow(horizon - horizon / 10);
      e.end_ns = e.start_ns + 5'000 + rng.NextBelow(75'000);
    } else if (pick < 75) {
      e.kind = EventKind::kDegraded;
      e.start_ns = rng.NextBelow(horizon);
      e.end_ns = e.start_ns + 20'000 + rng.NextBelow(horizon / 2);
      e.bandwidth_factor = DrawIn(rng, 0.2, 0.8);
    } else if (pick < 85) {
      e.kind = EventKind::kTornWriteback;
      e.probability = DrawIn(rng, 0.1, 0.6);
    } else {
      e.kind = EventKind::kNodeCrash;
      e.node = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(opts.num_nodes)));
      e.crash_ns = crash_cursor + rng.NextBelow(crash_gap / 4 + 1);
      const uint64_t downtime = 60'000 + rng.NextBelow(140'000);
      if (rng.NextBelow(4) == 0) {
        e.rejoin_ns = 0;  // permanent: closes the crash stream
        crashes_open = false;
      } else {
        e.rejoin_ns = e.crash_ns + downtime;
        crash_cursor = e.rejoin_ns + crash_gap;
      }
    }
    events.push_back(std::move(e));
  }
  return events;
}

net::FaultPlan ComposePlan(uint64_t seed, const std::vector<ChaosEvent>& events) {
  net::FaultPlan plan;
  plan.seed = seed;
  auto clamp_p = [](double p) { return std::min(p, 0.9); };
  for (const ChaosEvent& e : events) {
    switch (e.kind) {
      case EventKind::kVerbFault: {
        net::VerbFaultConfig& v = plan.verb(e.verb);
        if (e.fault == "drop") {
          v.drop_probability = clamp_p(v.drop_probability + e.probability);
        } else if (e.fault == "timeout") {
          v.timeout_probability = clamp_p(v.timeout_probability + e.probability);
        } else if (e.fault == "tail") {
          v.tail_probability = clamp_p(v.tail_probability + e.probability);
          v.tail_multiplier = std::max(v.tail_multiplier, e.tail_multiplier);
        } else if (e.fault == "corrupt") {
          v.corrupt_probability = clamp_p(v.corrupt_probability + e.probability);
        } else if (e.fault == "stale") {
          v.stale_probability = clamp_p(v.stale_probability + e.probability);
        } else if (e.fault == "duplicate") {
          v.duplicate_probability = clamp_p(v.duplicate_probability + e.probability);
        }
        break;
      }
      case EventKind::kOutage:
        plan.outages.push_back(net::OutageWindow{e.start_ns, e.end_ns});
        break;
      case EventKind::kDegraded:
        plan.degraded.push_back(net::DegradedWindow{e.start_ns, e.end_ns, e.bandwidth_factor});
        break;
      case EventKind::kTornWriteback:
        plan.torn_writeback_probability =
            clamp_p(plan.torn_writeback_probability + e.probability);
        break;
      case EventKind::kNodeCrash:
        plan.node_crashes.push_back(net::NodeCrashEvent{e.node, e.crash_ns, e.rejoin_ns});
        break;
    }
  }
  // Canonical order: stable sorts keyed on start time, so composition does
  // not depend on event order beyond the verb-knob sums (which commute).
  std::stable_sort(plan.outages.begin(), plan.outages.end(),
                   [](const net::OutageWindow& a, const net::OutageWindow& b) {
                     return a.start_ns < b.start_ns;
                   });
  std::stable_sort(plan.degraded.begin(), plan.degraded.end(),
                   [](const net::DegradedWindow& a, const net::DegradedWindow& b) {
                     return a.start_ns < b.start_ns;
                   });
  std::stable_sort(plan.node_crashes.begin(), plan.node_crashes.end(),
                   [](const net::NodeCrashEvent& a, const net::NodeCrashEvent& b) {
                     return a.crash_ns < b.crash_ns;
                   });
  return plan;
}

}  // namespace mira::chaos
