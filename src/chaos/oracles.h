// Invariant oracles run after every chaos execution (DESIGN.md §7.2).
//
// Each oracle compares one faulted run against the clean baseline of the
// same (workload, interpreter seed) and states an invariant the resilience
// machinery promises under ANY schedule the generator can produce:
//
//   result_equality         faulted run completes with the clean run's result
//   address_identity        allocator address sequence is schedule-independent
//   self_healing            integrity healed == detected, quarantined == 0
//   no_data_loss            cluster quarantined == 0, lost reads/writes == 0
//                           (sound because generated schedules always leave
//                           a survivor — see GenerateSchedule)
//   counter_reconciliation  profiler per-verb stall totals reconcile with
//                           FaultStats: retry_backoff + retry_lost_wait ==
//                           wasted_ns, outage_wait == outage_wait_ns,
//                           failover_wait == failover_wait_ns
//   test_hook               deliberately-broken oracle for harness canaries:
//                           fires when the schedule contains at least one
//                           event of EVERY kind named in `fail_oracles` —
//                           so ddmin must shrink exactly to one event per
//                           named kind, proving minimization works
//
// Oracles only READ RunResults; they never execute anything, so the caller
// decides how often to re-run (the minimizer calls them once per candidate).

#ifndef MIRA_SRC_CHAOS_ORACLES_H_
#define MIRA_SRC_CHAOS_ORACLES_H_

#include <string>
#include <vector>

#include "src/chaos/runner.h"
#include "src/chaos/schedule.h"

namespace mira::chaos {

struct Violation {
  std::string oracle;   // which invariant broke
  std::string message;  // what was observed vs expected

  bool operator==(const Violation&) const = default;
};

struct OracleOptions {
  // Generated schedules always leave a survivor (crash discipline), so the
  // data-loss oracles apply. Hand-written no-survivor schedules set false.
  bool survivor_exists = true;
  // Test-hook kinds (EventKindName strings). Empty = hook disabled.
  std::vector<std::string> fail_oracles;
};

std::vector<Violation> CheckOracles(const RunResult& clean, const RunResult& faulted,
                                    const std::vector<ChaosEvent>& events,
                                    const OracleOptions& opts);

// "oracle: message" lines, one per violation.
std::string FormatViolations(const std::vector<Violation>& violations);

}  // namespace mira::chaos

#endif  // MIRA_SRC_CHAOS_ORACLES_H_
