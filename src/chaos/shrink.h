// Delta-debugging schedule minimizer (Zeller's ddmin over ChaosEvents).
//
// Given a failing schedule and a predicate "does this event list still
// violate an oracle", Minimize removes whole events — never parts of one,
// so crash+rejoin pairs stay intact — until the list is locally minimal:
// the predicate still fails on the result, and removing ANY single
// remaining event makes it pass. Each predicate call re-executes the
// workload, so the caller bounds cost via the executions counter.

#ifndef MIRA_SRC_CHAOS_SHRINK_H_
#define MIRA_SRC_CHAOS_SHRINK_H_

#include <functional>
#include <vector>

#include "src/chaos/schedule.h"

namespace mira::chaos {

// True when the candidate event list still reproduces a violation.
using FailsPredicate = std::function<bool(const std::vector<ChaosEvent>&)>;

// ddmin. `events` must satisfy the predicate (checked); the result does
// too and is 1-minimal. `executions`, when non-null, accumulates the number
// of predicate evaluations (one workload execution each).
std::vector<ChaosEvent> Minimize(std::vector<ChaosEvent> events, const FailsPredicate& fails,
                                 int* executions = nullptr);

}  // namespace mira::chaos

#endif  // MIRA_SRC_CHAOS_SHRINK_H_
