#include "src/chaos/shrink.h"

#include <algorithm>

#include "src/support/check.h"

namespace mira::chaos {

namespace {

// Complement of chunk `i` when `events` is cut into `n` chunks.
std::vector<ChaosEvent> WithoutChunk(const std::vector<ChaosEvent>& events, size_t n,
                                     size_t i) {
  const size_t size = events.size();
  const size_t begin = size * i / n;
  const size_t end = size * (i + 1) / n;
  std::vector<ChaosEvent> out;
  out.reserve(size - (end - begin));
  for (size_t k = 0; k < size; ++k) {
    if (k < begin || k >= end) {
      out.push_back(events[k]);
    }
  }
  return out;
}

}  // namespace

std::vector<ChaosEvent> Minimize(std::vector<ChaosEvent> events, const FailsPredicate& fails,
                                 int* executions) {
  auto check = [&](const std::vector<ChaosEvent>& candidate) {
    if (executions != nullptr) {
      ++*executions;
    }
    return fails(candidate);
  };
  MIRA_CHECK_MSG(check(events), "Minimize called on a schedule that does not fail");
  size_t n = 2;
  while (events.size() >= 2) {
    n = std::min(n, events.size());
    bool reduced = false;
    // Try each complement (drop one chunk) at the current granularity.
    for (size_t i = 0; i < n; ++i) {
      std::vector<ChaosEvent> candidate = WithoutChunk(events, n, i);
      if (candidate.size() == events.size()) {
        continue;  // empty chunk (more chunks than events)
      }
      if (check(candidate)) {
        events = std::move(candidate);
        n = std::max<size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= events.size()) {
        break;  // singleton chunks and none removable: 1-minimal
      }
      n = std::min(events.size(), n * 2);
    }
  }
  return events;
}

}  // namespace mira::chaos
