// Chaos execution engine: compiles a workload once, then executes arbitrary
// FaultPlans against it in fresh worlds and snapshots every counter the
// oracles reconcile.
//
// The runner replicates the bench harness's deep-dive compile path
// (profiling run on the generic swap configuration → access analysis →
// full-scope plan → compile) without depending on bench/, so the chaos CLI
// and tests stay a pure src/ + tools/ build. Every Execute() uses a fresh
// pipeline::World with the SAME attachment order as the benches (faults,
// cluster, integrity), so a (plan, seed) pair is bit-reproducible and a
// Clean() plan is bit-identical to the cached clean baseline.

#ifndef MIRA_SRC_CHAOS_RUNNER_H_
#define MIRA_SRC_CHAOS_RUNNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/chaos/schedule.h"
#include "src/farmem/cluster.h"
#include "src/integrity/integrity.h"
#include "src/interp/bytecode.h"
#include "src/ir/ir.h"
#include "src/net/transport.h"
#include "src/runtime/plan.h"

namespace mira::chaos {

// Everything one execution observed — results, addresses, and the counter
// ledgers the oracles reconcile against each other.
struct RunResult {
  bool failed = false;
  std::string fail_reason;
  uint64_t sim_ns = 0;
  uint64_t result = 0;
  std::map<std::string, uint64_t> object_addrs;  // allocation site → address
  net::FaultStats fault;
  farmem::ClusterStats cluster;
  integrity::IntegrityStats integrity;
  // Profiler per-verb stall totals (retry_backoff, outage_wait, ...) from a
  // scoped enable around the run.
  std::map<std::string, uint64_t> stall_totals;
};

struct RunnerOptions {
  std::string workload = "graph";  // see KnownWorkloads()
  int local_percent = 25;          // local cache budget, % of footprint
  uint64_t interp_seed = 42;       // workload-data seed (kRand)
  // Execution engine for the profiling run and every chaos execution.
  // Engines are bit-identical (same results, clocks, and counter ledgers),
  // so schedules found under one engine replay exactly under the other;
  // the chaos CLI's --interp= flag exercises that property.
  interp::EngineKind engine = interp::EngineKind::kDefault;
  farmem::ClusterConfig cluster{.num_nodes = 3, .replicas = 1};
  integrity::IntegrityConfig integrity;
};

class ChaosRunner {
 public:
  // Builds + compiles the workload and measures the clean baseline. CHECKs
  // on an unknown workload name (validate against KnownWorkloads() first).
  explicit ChaosRunner(const RunnerOptions& opts);
  ~ChaosRunner();

  // Chaos-scaled workload names ("graph", "dataframe").
  static const std::vector<std::string>& KnownWorkloads();

  // The fault-free baseline: same world shape (cluster + integrity
  // attached), no injector.
  const RunResult& clean() const { return clean_; }

  // One full execution under `plan` in a fresh world, with the profiler
  // scoped on so stall totals land in the result.
  RunResult Execute(const net::FaultPlan& plan) const;

  // Generator options matched to this runner: the cluster's node count and
  // a horizon from the measured clean duration.
  GenOptions MakeGenOptions(int max_events) const;

  const RunnerOptions& options() const { return opts_; }

 private:
  RunResult RunWorld(const net::FaultPlan* plan, bool with_profiler) const;

  RunnerOptions opts_;
  std::unique_ptr<ir::Module> compiled_;
  runtime::CachePlan cache_plan_;
  std::string entry_;
  uint64_t local_bytes_ = 0;
  RunResult clean_;
};

}  // namespace mira::chaos

#endif  // MIRA_SRC_CHAOS_RUNNER_H_
