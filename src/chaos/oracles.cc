#include "src/chaos/oracles.h"

#include <set>

#include "src/support/str.h"

namespace mira::chaos {

namespace {

uint64_t Total(const RunResult& r, const char* verb) {
  const auto it = r.stall_totals.find(verb);
  return it == r.stall_totals.end() ? 0 : it->second;
}

void Check(std::vector<Violation>* out, bool ok, const char* oracle, std::string message) {
  if (!ok) {
    out->push_back(Violation{oracle, std::move(message)});
  }
}

}  // namespace

std::vector<Violation> CheckOracles(const RunResult& clean, const RunResult& faulted,
                                    const std::vector<ChaosEvent>& events,
                                    const OracleOptions& opts) {
  std::vector<Violation> v;

  // result_equality: resilience means the program still finishes with the
  // bit-identical answer the clean run produced.
  Check(&v, !faulted.failed, "result_equality",
        support::StrFormat("faulted run failed: %s", faulted.fail_reason.c_str()));
  if (!faulted.failed) {
    Check(&v, faulted.result == clean.result, "result_equality",
          support::StrFormat("result %llu != clean %llu",
                             static_cast<unsigned long long>(faulted.result),
                             static_cast<unsigned long long>(clean.result)));
  }

  // address_identity: allocator metadata is client-side and allocation order
  // is program order, so no fault schedule may perturb a single address.
  Check(&v, faulted.object_addrs == clean.object_addrs, "address_identity",
        support::StrFormat("%zu object addresses vs clean %zu (or values differ)",
                           faulted.object_addrs.size(), clean.object_addrs.size()));

  // self_healing: every detected integrity episode must close healed, and
  // nothing may be quarantined while a clean copy exists somewhere.
  Check(&v, faulted.integrity.healed == faulted.integrity.detected, "self_healing",
        support::StrFormat("healed %llu != detected %llu",
                           static_cast<unsigned long long>(faulted.integrity.healed),
                           static_cast<unsigned long long>(faulted.integrity.detected)));
  if (opts.survivor_exists) {
    Check(&v, faulted.integrity.quarantined == 0, "self_healing",
          support::StrFormat("%llu granules quarantined with a survivor present",
                             static_cast<unsigned long long>(faulted.integrity.quarantined)));

    // no_data_loss: the crash discipline guarantees a live holder at every
    // instant, so the cluster must never lose or quarantine anything.
    Check(&v, faulted.cluster.quarantined_chunks == 0, "no_data_loss",
          support::StrFormat("%llu chunks quarantined",
                             static_cast<unsigned long long>(
                                 faulted.cluster.quarantined_chunks)));
    Check(&v, faulted.cluster.lost_reads == 0 && faulted.cluster.lost_writes == 0,
          "no_data_loss",
          support::StrFormat("lost_reads=%llu lost_writes=%llu",
                             static_cast<unsigned long long>(faulted.cluster.lost_reads),
                             static_cast<unsigned long long>(faulted.cluster.lost_writes)));
  }

  // counter_reconciliation: the profiler watched the same machinery the
  // transport counted — their ledgers must agree exactly.
  const uint64_t retry_ns = Total(faulted, "retry_backoff") + Total(faulted, "retry_lost_wait");
  Check(&v, retry_ns == faulted.fault.wasted_ns(), "counter_reconciliation",
        support::StrFormat("profiler retry %llu != FaultStats wasted %llu",
                           static_cast<unsigned long long>(retry_ns),
                           static_cast<unsigned long long>(faulted.fault.wasted_ns())));
  Check(&v, Total(faulted, "outage_wait") == faulted.fault.outage_wait_ns,
        "counter_reconciliation",
        support::StrFormat("profiler outage_wait %llu != FaultStats %llu",
                           static_cast<unsigned long long>(Total(faulted, "outage_wait")),
                           static_cast<unsigned long long>(faulted.fault.outage_wait_ns)));
  Check(&v, Total(faulted, "failover_wait") == faulted.fault.failover_wait_ns,
        "counter_reconciliation",
        support::StrFormat("profiler failover_wait %llu != FaultStats %llu",
                           static_cast<unsigned long long>(Total(faulted, "failover_wait")),
                           static_cast<unsigned long long>(faulted.fault.failover_wait_ns)));

  // test_hook: the deliberately-broken oracle. Fires only when EVERY named
  // kind appears in the schedule, so a correct minimizer must land on
  // exactly one event per named kind.
  if (!opts.fail_oracles.empty()) {
    std::set<std::string> present;
    for (const ChaosEvent& e : events) {
      present.insert(EventKindName(e.kind));
    }
    bool all = true;
    for (const std::string& kind : opts.fail_oracles) {
      all = all && present.count(kind) > 0;
    }
    if (all) {
      std::string kinds;
      for (const std::string& kind : opts.fail_oracles) {
        kinds += (kinds.empty() ? "" : ",") + kind;
      }
      v.push_back(Violation{
          "test_hook", support::StrFormat("deliberate violation: schedule contains {%s}",
                                          kinds.c_str())});
    }
  }
  return v;
}

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& x : violations) {
    out += x.oracle + ": " + x.message + "\n";
  }
  return out;
}

}  // namespace mira::chaos
