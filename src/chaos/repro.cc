#include "src/chaos/repro.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "src/telemetry/telemetry.h"

namespace mira::chaos {

using support::JsonValue;

JsonValue ReproArtifact::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("workload", JsonValue::Str(workload));
  doc.Set("local_percent", JsonValue::I64(local_percent));
  doc.Set("interp_seed", JsonValue::U64(interp_seed));
  doc.Set("schedule_seed", JsonValue::U64(schedule_seed));
  if (!fail_oracles.empty()) {
    JsonValue arr = JsonValue::Array();
    for (const std::string& kind : fail_oracles) {
      arr.Append(JsonValue::Str(kind));
    }
    doc.Set("fail_oracles", std::move(arr));
  }
  doc.Set("events", ScheduleToJson(events));
  doc.Set("plan", plan.ToJson());
  JsonValue viol = JsonValue::Array();
  for (const Violation& x : violations) {
    JsonValue v = JsonValue::Object();
    v.Set("oracle", JsonValue::Str(x.oracle));
    v.Set("message", JsonValue::Str(x.message));
    viol.Append(std::move(v));
  }
  doc.Set("violations", std::move(viol));
  doc.Set("sim_ns", JsonValue::U64(sim_ns));
  doc.Set("result", JsonValue::U64(result));
  return doc;
}

support::Result<ReproArtifact> ReproArtifact::FromJsonText(std::string_view text) {
  auto doc = JsonValue::Parse(text);
  if (!doc.ok()) {
    return doc.status();
  }
  const JsonValue& json = doc.value();
  if (!json.is_object()) {
    return support::Status::InvalidArgument("repro artifact: expected a JSON object");
  }
  ReproArtifact out;
  out.workload = json.GetString("workload", "graph");
  out.local_percent = static_cast<int>(json.GetI64("local_percent", 25));
  out.interp_seed = json.GetU64("interp_seed", 42);
  out.schedule_seed = json.GetU64("schedule_seed", 0);
  if (const JsonValue* arr = json.Find("fail_oracles"); arr != nullptr) {
    if (!arr->is_array()) {
      return support::Status::InvalidArgument("repro artifact: fail_oracles must be an array");
    }
    for (size_t i = 0; i < arr->size(); ++i) {
      out.fail_oracles.push_back(arr->at(i).AsString());
    }
  }
  const JsonValue* events = json.Find("events");
  if (events == nullptr) {
    return support::Status::InvalidArgument("repro artifact: missing events");
  }
  auto sched = ScheduleFromJson(*events);
  if (!sched.ok()) {
    return sched.status();
  }
  out.events = sched.take();
  const JsonValue* plan = json.Find("plan");
  if (plan == nullptr) {
    return support::Status::InvalidArgument("repro artifact: missing plan");
  }
  auto parsed_plan = net::FaultPlan::FromJson(*plan);
  if (!parsed_plan.ok()) {
    return parsed_plan.status();
  }
  out.plan = parsed_plan.take();
  if (const JsonValue* viol = json.Find("violations"); viol != nullptr && viol->is_array()) {
    for (size_t i = 0; i < viol->size(); ++i) {
      const JsonValue& v = viol->at(i);
      out.violations.push_back(
          Violation{v.GetString("oracle", ""), v.GetString("message", "")});
    }
  }
  out.sim_ns = json.GetU64("sim_ns", 0);
  out.result = json.GetU64("result", 0);
  return out;
}

bool SaveArtifact(const ReproArtifact& artifact, const std::string& path) {
  return telemetry::WriteStringToFile(path, artifact.ToJson().Dump(2) + "\n").ok();
}

support::Result<ReproArtifact> LoadArtifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return support::Status::InvalidArgument("cannot open repro artifact: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReproArtifact::FromJsonText(buf.str());
}

}  // namespace mira::chaos
