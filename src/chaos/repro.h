// Repro artifacts: a self-contained JSON file that captures everything a
// failing chaos execution needs to be re-run bit-exactly — the workload and
// runner knobs, the (minimized) event schedule, the composed FaultPlan, the
// violations observed, and the run fingerprint (sim_ns + result) that replay
// must match.

#ifndef MIRA_SRC_CHAOS_REPRO_H_
#define MIRA_SRC_CHAOS_REPRO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/oracles.h"
#include "src/chaos/schedule.h"
#include "src/net/fault_injector.h"
#include "src/support/json.h"
#include "src/support/status.h"

namespace mira::chaos {

struct ReproArtifact {
  // Runner configuration needed to rebuild the identical world.
  std::string workload;
  int local_percent = 25;
  uint64_t interp_seed = 42;
  // Schedule provenance: the sweep seed the events came from.
  uint64_t schedule_seed = 0;
  // Test-hook kinds active when the violation fired (empty for real ones).
  std::vector<std::string> fail_oracles;
  // The minimized schedule and the plan composed from it.
  std::vector<ChaosEvent> events;
  net::FaultPlan plan;
  // What the minimized schedule violated, and the execution fingerprint.
  std::vector<Violation> violations;
  uint64_t sim_ns = 0;
  uint64_t result = 0;

  support::JsonValue ToJson() const;
  static support::Result<ReproArtifact> FromJsonText(std::string_view text);
};

// Writes the artifact (pretty-printed) to `path`. Returns false on IO error.
bool SaveArtifact(const ReproArtifact& artifact, const std::string& path);

// Reads and parses an artifact file.
support::Result<ReproArtifact> LoadArtifact(const std::string& path);

}  // namespace mira::chaos

#endif  // MIRA_SRC_CHAOS_REPRO_H_
