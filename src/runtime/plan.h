// The output of Mira's analysis/compilation pipeline that configures the
// runtime: which cache sections exist, how each is configured, and which
// allocation sites (objects) map into which section. Objects are named by
// allocation-site labels because remote addresses only exist at run time.

#ifndef MIRA_SRC_RUNTIME_PLAN_H_
#define MIRA_SRC_RUNTIME_PLAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/cache/section_config.h"

namespace mira::runtime {

struct CachePlan {
  // Section configurations; index in this vector is the plan-local section
  // index (the runtime assigns real 16-bit ids at instantiation).
  std::vector<cache::SectionConfig> sections;

  // Allocation-site label → index into `sections`. Objects not listed stay
  // in the generic swap section.
  std::map<std::string, uint32_t> object_to_section;

  // Local memory reserved for the swap section after carving out sections.
  uint64_t swap_bytes = 0;

  // Objects whose scopes are read-only: their sections are discarded (no
  // writeback) on release (§4.5 read/write optimization).
  std::map<std::string, bool> discard_on_release;

  uint64_t SectionBytesTotal() const {
    uint64_t total = 0;
    for (const auto& s : sections) {
      total += s.size_bytes;
    }
    return total;
  }

  std::string ToString() const;
};

}  // namespace mira::runtime

#endif  // MIRA_SRC_RUNTIME_PLAN_H_
