#include "src/runtime/plan.h"

#include "src/support/str.h"

namespace mira::runtime {

std::string CachePlan::ToString() const {
  std::string out = support::StrFormat("CachePlan{swap=%s, %zu sections:\n",
                                       support::HumanBytes(swap_bytes).c_str(), sections.size());
  for (size_t i = 0; i < sections.size(); ++i) {
    out += "  [" + std::to_string(i) + "] " + sections[i].ToString();
    out += " objects:";
    for (const auto& [obj, idx] : object_to_section) {
      if (idx == i) {
        out += " " + obj;
      }
    }
    out += "\n";
  }
  out += "}";
  return out;
}

}  // namespace mira::runtime
