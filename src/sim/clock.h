// Simulated time. Every performance number reported by the benchmark harness
// is measured on a SimClock, never on the wall clock, so results reproduce
// bit-identically on any host.

#ifndef MIRA_SRC_SIM_CLOCK_H_
#define MIRA_SRC_SIM_CLOCK_H_

#include <cstdint>

#include "src/support/check.h"

namespace mira::sim {

// A monotonically advancing nanosecond clock. One clock per logical thread
// of execution; the multi-thread scheduler arbitrates between clocks.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(uint64_t start_ns) : now_ns_(start_ns) {}

  uint64_t now_ns() const { return now_ns_; }

  // Advance by a delta. Deltas are additive simulated costs.
  void Advance(uint64_t delta_ns) { now_ns_ += delta_ns; }

  // Jump forward to an absolute time (e.g., the completion timestamp of an
  // asynchronous fetch). No-op if `t_ns` is in the past.
  void AdvanceTo(uint64_t t_ns) {
    if (t_ns > now_ns_) {
      now_ns_ = t_ns;
    }
  }

  void Reset(uint64_t t_ns = 0) { now_ns_ = t_ns; }

 private:
  uint64_t now_ns_ = 0;
};

}  // namespace mira::sim

#endif  // MIRA_SRC_SIM_CLOCK_H_
