// Simulated time. Every performance number reported by the benchmark harness
// is measured on a SimClock, never on the wall clock, so results reproduce
// bit-identically on any host.

#ifndef MIRA_SRC_SIM_CLOCK_H_
#define MIRA_SRC_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "src/support/check.h"

namespace mira::sim {

// A monotonically advancing nanosecond clock. One clock per logical thread
// of execution; the multi-thread scheduler arbitrates between clocks.
//
// `tid` names the logical thread for telemetry: trace events stamped with
// this clock land on track `tid` of the exported timeline. It never affects
// simulated timing.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(uint64_t start_ns, uint32_t tid = 0) : now_ns_(start_ns), tid_(tid) {}

  uint64_t now_ns() const { return now_ns_; }
  uint32_t tid() const { return tid_; }
  void set_tid(uint32_t tid) { tid_ = tid; }

  // Advance by a delta. Deltas are additive simulated costs.
  void Advance(uint64_t delta_ns) { now_ns_ += delta_ns; }

  // Jump forward to an absolute time (e.g., the completion timestamp of an
  // asynchronous fetch). No-op if `t_ns` is in the past.
  void AdvanceTo(uint64_t t_ns) {
    if (t_ns > now_ns_) {
      now_ns_ = t_ns;
    }
  }

  void Reset(uint64_t t_ns = 0) { now_ns_ = t_ns; }

 private:
  uint64_t now_ns_ = 0;
  uint32_t tid_ = 0;
};

// Process-wide logical-thread-id allocator. Each execution context that
// owns a SimClock (interpreter run, scheduler thread, pipeline timeline)
// takes a fresh id, so timestamps on any one id are monotonic — the
// invariant the trace exporter relies on. Ids never influence timing.
// Atomic so parallel evaluation workers can construct worlds concurrently;
// the numbering order across threads is unspecified (and must not matter).
inline uint32_t AllocateTid() {
  static std::atomic<uint32_t> next_tid{0};
  return next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace mira::sim

#endif  // MIRA_SRC_SIM_CLOCK_H_
