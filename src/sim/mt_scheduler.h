// Deterministic multi-threading for the simulation.
//
// A logical thread is a sequence of work chunks, each of which advances that
// thread's SimClock (possibly via shared SerialResource / BandwidthLink
// arbitration). The scheduler always resumes the thread with the smallest
// clock, which is the standard conservative discrete-event rule: by the time
// a thread executes a chunk, no other thread can later perform work at an
// earlier timestamp, so shared-resource arbitration sees requests in
// (approximately chunk-granular) timestamp order.

#ifndef MIRA_SRC_SIM_MT_SCHEDULER_H_
#define MIRA_SRC_SIM_MT_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/clock.h"

namespace mira::sim {

// One logical thread: `step` executes the next chunk against `clock` and
// returns false when the thread has finished.
struct SimThread {
  SimClock clock;
  std::function<bool(SimClock&)> step;
  bool done = false;
};

class MtScheduler {
 public:
  // Adds a thread starting at time `start_ns`.
  void AddThread(std::function<bool(SimClock&)> step, uint64_t start_ns = 0) {
    threads_.push_back(SimThread{SimClock(start_ns, AllocateTid()), std::move(step), false});
  }

  size_t thread_count() const { return threads_.size(); }

  // Runs all threads to completion; returns the makespan (max final clock).
  uint64_t RunToCompletion();

  // Final clock of thread i (valid after RunToCompletion).
  uint64_t ThreadFinishNs(size_t i) const { return threads_[i].clock.now_ns(); }

 private:
  std::vector<SimThread> threads_;
};

}  // namespace mira::sim

#endif  // MIRA_SRC_SIM_MT_SCHEDULER_H_
