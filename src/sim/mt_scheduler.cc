#include "src/sim/mt_scheduler.h"

#include <limits>

namespace mira::sim {

uint64_t MtScheduler::RunToCompletion() {
  uint64_t makespan = 0;
  while (true) {
    // Pick the live thread with the smallest clock.
    SimThread* next = nullptr;
    uint64_t best = std::numeric_limits<uint64_t>::max();
    for (auto& t : threads_) {
      if (!t.done && t.clock.now_ns() < best) {
        best = t.clock.now_ns();
        next = &t;
      }
    }
    if (next == nullptr) {
      break;
    }
    if (!next->step(next->clock)) {
      next->done = true;
    }
    if (next->clock.now_ns() > makespan) {
      makespan = next->clock.now_ns();
    }
  }
  return makespan;
}

}  // namespace mira::sim
