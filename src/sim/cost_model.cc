#include "src/sim/cost_model.h"

namespace mira::sim {

const CostModel& CostModel::Default() {
  static const CostModel kDefault;
  return kDefault;
}

}  // namespace mira::sim
