// Timestamp-arbitrated shared resources for the multi-threaded simulation.

#ifndef MIRA_SRC_SIM_RESOURCE_H_
#define MIRA_SRC_SIM_RESOURCE_H_

#include <cstddef>
#include <cstdint>

namespace mira::sim {

// A shared serial resource (network link, swap-subsystem lock). A requester
// arriving at `start_ns` with a demand of `busy_ns` is granted the interval
// [max(start, free_time), max(start, free_time) + busy) and the resource's
// free time moves to the end of that interval. Single-threaded host code;
// callers present monotone-ish timestamps (the min-clock-first scheduler
// guarantees near-monotone arrival order).
class SerialResource {
 public:
  // Returns the completion timestamp of the request.
  uint64_t Acquire(uint64_t start_ns, uint64_t busy_ns) {
    const uint64_t begin = start_ns > free_at_ns_ ? start_ns : free_at_ns_;
    free_at_ns_ = begin + busy_ns;
    total_busy_ns_ += busy_ns;
    ++requests_;
    if (begin > start_ns) {
      total_queue_ns_ += begin - start_ns;
    }
    return free_at_ns_;
  }

  uint64_t free_at_ns() const { return free_at_ns_; }
  uint64_t total_busy_ns() const { return total_busy_ns_; }
  uint64_t total_queue_ns() const { return total_queue_ns_; }
  uint64_t requests() const { return requests_; }

  void Reset() { *this = SerialResource(); }

 private:
  uint64_t free_at_ns_ = 0;
  uint64_t total_busy_ns_ = 0;
  uint64_t total_queue_ns_ = 0;
  uint64_t requests_ = 0;
};

// A shared link: transfer occupancy is serialized (bandwidth sharing), but
// propagation latency overlaps across requesters.
class BandwidthLink {
 public:
  explicit BandwidthLink(double bytes_per_ns) : bytes_per_ns_(bytes_per_ns) {}

  // A transfer of `bytes` issued at `start_ns`; returns completion time
  // including `latency_ns` propagation.
  uint64_t Transfer(uint64_t start_ns, size_t bytes, uint64_t latency_ns) {
    const uint64_t occupancy =
        static_cast<uint64_t>(static_cast<double>(bytes) / bytes_per_ns_);
    const uint64_t done = occupancy_.Acquire(start_ns, occupancy);
    total_bytes_ += bytes;
    return done + latency_ns;
  }

  uint64_t total_bytes() const { return total_bytes_; }
  const SerialResource& occupancy() const { return occupancy_; }
  void Reset() {
    occupancy_.Reset();
    total_bytes_ = 0;
  }

 private:
  double bytes_per_ns_;
  SerialResource occupancy_;
  uint64_t total_bytes_ = 0;
};

}  // namespace mira::sim

#endif  // MIRA_SRC_SIM_RESOURCE_H_
