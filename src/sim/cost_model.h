// The single home of every latency / CPU-cost constant in the simulation.
//
// The paper evaluates on a CloudLab cluster with 50 Gbps InfiniBand and
// FDR-CX3 NICs; we model the same class of hardware. Mira's design decisions
// depend only on *relative* costs (network RTT vs per-iteration compute,
// line size vs bandwidth-delay product), so the reproduction targets curve
// shapes, not absolute numbers. See DESIGN.md §5.

#ifndef MIRA_SRC_SIM_COST_MODEL_H_
#define MIRA_SRC_SIM_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace mira::sim {

struct CostModel {
  // ---- Network ----
  // One-sided RDMA read/write round trip for a minimal payload.
  uint64_t rdma_rtt_ns = 3000;
  // Link bandwidth in bits per nanosecond terms: 50 Gbps = 6.25 bytes/ns.
  double network_bytes_per_ns = 6.25;
  // CPU cost to post/complete one verb or message (doorbell, CQE handling).
  uint64_t per_message_cpu_ns = 600;
  // Extra cost of a two-sided message: remote CPU copies into/out of the
  // final location and runs a handler.
  uint64_t two_sided_handler_ns = 250;
  // Per-segment cost of a scatter-gather element beyond the first.
  uint64_t sg_segment_ns = 40;

  // ---- Swap data path (FastSwap / Leap baselines and Mira's swap section) ----
  // Kernel page-fault + swap-entry path per 4 KB fault, excluding transfer.
  uint64_t page_fault_ns = 4000;
  // Leap's swap data path is less optimized than FastSwap's (paper §6.1:
  // "FastSwap's more efficient data-path implementation in Linux").
  double leap_datapath_factor = 1.3;
  // Page eviction bookkeeping (unmap + writeback issue).
  uint64_t page_evict_ns = 1200;

  // ---- Local CPU ----
  // A native cached memory load/store (the unit everything normalizes to).
  uint64_t native_access_ns = 2;
  // One arithmetic IR op.
  uint64_t compute_op_ns = 1;
  // Mira cache lookup on the non-promoted dereference path.
  uint64_t cache_lookup_direct_ns = 6;
  uint64_t cache_lookup_setassoc_ns = 10;
  uint64_t cache_lookup_fullassoc_ns = 18;
  // Runtime cost of inserting a fetched line (map update, list splice).
  uint64_t line_insert_ns = 60;
  // Eviction selection + metadata update per evicted line.
  uint64_t line_evict_ns = 90;
  // Asynchronous flush issue cost (hidden off critical path after issue).
  uint64_t flush_issue_ns = 40;
  // Prefetch issue cost.
  uint64_t prefetch_issue_ns = 50;

  // ---- AIFM model ----
  // Per-dereference cost of an AIFM remoteable pointer (scope management,
  // remote-bit checks, per-object metadata touch).
  uint64_t aifm_deref_ns = 35;
  // Local-memory metadata bytes consumed per remoteable pointer.
  uint64_t aifm_meta_bytes_per_ptr = 16;
  // AIFM miss handling (userspace object fetch path, excluding transfer).
  uint64_t aifm_miss_cpu_ns = 2500;

  // ---- Far node ----
  // Far-memory node compute is slower (low-power cores).
  double remote_compute_slowdown = 2.0;
  // RPC dispatch on the far node for offloaded function calls.
  uint64_t rpc_dispatch_ns = 1500;
  // Remote allocator RPC (amortized by local-allocator range buffering).
  uint64_t remote_alloc_rpc_ns = 2000;

  // ---- Profiling instrumentation ----
  uint64_t profile_event_ns = 4;

  // Transfer time of `bytes` over the link (excludes RTT and CPU costs).
  uint64_t TransferNs(size_t bytes) const {
    return static_cast<uint64_t>(static_cast<double>(bytes) / network_bytes_per_ns);
  }

  // Full cost of one blocking one-sided read of `bytes`.
  uint64_t OneSidedReadNs(size_t bytes) const {
    return rdma_rtt_ns + TransferNs(bytes) + per_message_cpu_ns;
  }

  // The default model used by all experiments.
  static const CostModel& Default();
};

}  // namespace mira::sim

#endif  // MIRA_SRC_SIM_COST_MODEL_H_
