// Host-side parallel evaluation engine (DESIGN.md §9).
//
// A fixed-size worker pool for fanning out *independent deterministic
// simulations*: candidate-plan evaluations, the optimizer's per-section ×
// per-size-ratio sampling grid, and the benches' multi-config sweeps. Each
// task builds its own world (far node, transport, backend, interpreter,
// RNG), so running them concurrently cannot perturb simulated time — the
// pool changes host wall-clock only, and results are asserted bit-identical
// to a serial run by the determinism suite.
//
// Concurrency contract:
//  - Submit() enqueues a task and returns a future. Do NOT block on a
//    future from inside a pool task (workers are a fixed resource); for
//    nested fan-out use ParallelFor, whose caller helps execute, so nesting
//    can never deadlock.
//  - ParallelFor(n, fn) runs fn(0..n-1) on the workers *and* the calling
//    thread, returns when all n are done, and rethrows the lowest-index
//    exception. Results must be written to index-addressed slots — never
//    appended — so completion order cannot leak into output order.
//  - The destructor drains: every task already queued runs to completion
//    before the workers exit.

#ifndef MIRA_SRC_SUPPORT_THREAD_POOL_H_
#define MIRA_SRC_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mira::support {

class ThreadPool {
 public:
  // Spawns `workers` host threads. 0 is valid: every Submit/ParallelFor
  // then executes inline on the caller (the --serial configuration).
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return workers_.size(); }

  // Enqueues `f` and returns its future (which rethrows any exception on
  // get()). With zero workers the task runs inline before returning.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return future;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  // Runs fn(0), ..., fn(n-1) to completion, using up to workers()+1 host
  // threads (the caller participates). Exceptions are collected and the one
  // thrown by the lowest index is rethrown — deterministically, regardless
  // of which host thread hit it first.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  struct ForState;

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// ---- Process-wide parallelism configuration ----
//
// Benches and tools call SetDefaultParallelism() from their flag parsing
// (--jobs=N / --serial) BEFORE the first SharedPool() use; the shared pool
// is then built once with jobs-1 workers (so `jobs` bounds total concurrent
// evaluation threads, caller included). jobs == 1 yields a zero-worker pool:
// everything runs inline, bit-and-schedule-identical to the pre-pool code.

// 0 restores "auto" (hardware concurrency). Values are clamped to >= 0.
void SetDefaultParallelism(int jobs);
// The resolved job count: the configured value, else hardware concurrency
// (at least 1).
int DefaultParallelism();
// The lazily-built process-wide pool (DefaultParallelism() - 1 workers).
ThreadPool& SharedPool();

}  // namespace mira::support

#endif  // MIRA_SRC_SUPPORT_THREAD_POOL_H_
