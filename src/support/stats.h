// Small statistics accumulators used by profiling and benchmark reporting.

#ifndef MIRA_SRC_SUPPORT_STATS_H_
#define MIRA_SRC_SUPPORT_STATS_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace mira::support {

// Streaming mean/min/max/count accumulator (Welford variance).
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    if (count_ == 1) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  void Reset() { *this = RunningStat(); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bucket latency histogram (power-of-two nanosecond buckets) with
// approximate percentile queries. 48 buckets cover [1ns, ~78h].
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 48;

  void Add(uint64_t ns) {
    // Bucket = floor(log2(ns)) clamped to the top bucket (0 for ns <= 1).
    // One bit-scan; the histogram sits on the per-verb transport hot path.
    const int b = std::min(static_cast<int>(std::bit_width(ns | 1)) - 1, kBuckets - 1);
    ++buckets_[b];
    ++count_;
    sum_ += ns;
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? static_cast<double>(sum_) / count_ : 0.0; }

  // Folds another histogram in. Bucket-wise addition is order-independent,
  // so per-run local histograms merged into the registry at flush time give
  // the same result as recording every sample directly.
  void MergeFrom(const LatencyHistogram& other) {
    for (int b = 0; b < kBuckets; ++b) {
      buckets_[b] += other.buckets_[b];
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  // Returns the lower bound of the bucket containing percentile p (0..100).
  uint64_t PercentileNs(double p) const;

  void Reset() { *this = LatencyHistogram(); }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

// Ratio counter for hit/miss style metrics.
struct HitMissCounter {
  uint64_t hits = 0;
  uint64_t misses = 0;

  void Hit() { ++hits; }
  void Miss() { ++misses; }
  uint64_t total() const { return hits + misses; }
  double miss_rate() const {
    return total() > 0 ? static_cast<double>(misses) / static_cast<double>(total()) : 0.0;
  }
  void Reset() { *this = HitMissCounter{}; }
};

}  // namespace mira::support

#endif  // MIRA_SRC_SUPPORT_STATS_H_
