#include "src/support/str.h"

#include <cstdarg>
#include <cstdio>

namespace mira::support {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return u == 0 ? StrFormat("%.0fB", v) : StrFormat("%.1f%s", v, units[u]);
}

std::string HumanNs(uint64_t ns) {
  if (ns < 1000) {
    return StrFormat("%luns", static_cast<unsigned long>(ns));
  }
  const double us = static_cast<double>(ns) / 1000.0;
  if (us < 1000.0) {
    return StrFormat("%.1fus", us);
  }
  const double ms = us / 1000.0;
  if (ms < 1000.0) {
    return StrFormat("%.2fms", ms);
  }
  return StrFormat("%.3fs", ms / 1000.0);
}

}  // namespace mira::support
