#include "src/support/check.h"

namespace mira::support {

void CheckFailed(const char* expr, const char* file, int line, const char* msg) {
  std::fprintf(stderr, "MIRA_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg != nullptr ? " — " : "", msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace mira::support
