#include "src/support/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace mira::support {

ThreadPool::ThreadPool(size_t workers) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left: the pool has drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

// Shared between the caller and the helper tasks of one ParallelFor. Held
// by shared_ptr because a helper can still sit in the queue after the call
// returned (the caller finished every index itself); such stale helpers
// must find the state alive, see next >= n, and exit.
struct ThreadPool::ForState {
  std::function<void(size_t)> fn;
  size_t n = 0;
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t completed = 0;
  size_t first_error_index = SIZE_MAX;
  std::exception_ptr error;

  void RunIndices() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (err && i < first_error_index) {
        first_error_index = i;
        error = err;
      }
      if (++completed == n) {
        done_cv.notify_all();
      }
    }
  }
};

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  auto state = std::make_shared<ForState>();
  state->fn = fn;
  state->n = n;
  const size_t helpers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t h = 0; h < helpers; ++h) {
      queue_.emplace_back([state] { state->RunIndices(); });
    }
  }
  cv_.notify_all();
  state->RunIndices();  // the caller is always one of the executors
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->completed == state->n; });
  if (state->error) {
    std::rethrow_exception(state->error);
  }
}

namespace {
std::atomic<int> g_default_jobs{0};
}  // namespace

void SetDefaultParallelism(int jobs) {
  g_default_jobs.store(std::max(0, jobs), std::memory_order_relaxed);
}

int DefaultParallelism() {
  const int configured = g_default_jobs.load(std::memory_order_relaxed);
  if (configured > 0) {
    return configured;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

ThreadPool& SharedPool() {
  static ThreadPool pool(static_cast<size_t>(std::max(0, DefaultParallelism() - 1)));
  return pool;
}

}  // namespace mira::support
