// Minimal JSON document model: parse, build, serialize.
//
// Built for configuration and repro artifacts (FaultPlan schedules, chaos
// repros), not for speed. Two properties matter here and are guaranteed:
//
//  1. Numbers round-trip bit-exactly. A parsed number keeps its source
//     literal; Dump() re-emits it verbatim. Builders emit uint64 values as
//     full-precision decimal (no double conversion — a 64-bit seed survives)
//     and doubles as %.17g, which strtod reads back to the identical bits.
//  2. Serialization is deterministic: object entries keep insertion
//     (or source) order, so Dump(Parse(Dump(x))) == Dump(x).
//
// The accessors MIRA_CHECK on kind mismatches — artifact schema errors are
// programming/input errors, and the Find/Get* helpers exist for the
// tolerant-with-defaults style FromJson loaders use.

#ifndef MIRA_SRC_SUPPORT_JSON_H_
#define MIRA_SRC_SUPPORT_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/support/status.h"

namespace mira::support {

class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  // ---- Builders ----
  static JsonValue Bool(bool b);
  static JsonValue U64(uint64_t v);
  static JsonValue I64(int64_t v);
  static JsonValue Double(double v);  // emitted as %.17g (round-trip exact)
  // A number from its source literal, emitted verbatim (the parser's path).
  static JsonValue NumberLiteral(std::string literal);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  // ---- Parse / serialize ----
  static Result<JsonValue> Parse(std::string_view text);
  // indent < 0: compact one-line. indent >= 0: pretty-printed, `indent`
  // spaces per level.
  std::string Dump(int indent = -1) const;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // ---- Scalar accessors (MIRA_CHECK on kind mismatch) ----
  bool AsBool() const;
  uint64_t AsU64() const;
  int64_t AsI64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // ---- Array access ----
  size_t size() const;  // array elements or object entries
  const JsonValue& at(size_t i) const;
  void Append(JsonValue v);

  // ---- Object access (insertion-ordered; lookups are linear) ----
  const JsonValue* Find(std::string_view key) const;
  void Set(std::string key, JsonValue v);  // appends or overwrites
  const std::vector<std::pair<std::string, JsonValue>>& items() const { return obj_; }

  // Tolerant typed getters: the default when the key is absent or of the
  // wrong kind. Only valid on objects.
  bool GetBool(std::string_view key, bool def) const;
  uint64_t GetU64(std::string_view key, uint64_t def) const;
  int64_t GetI64(std::string_view key, int64_t def) const;
  double GetDouble(std::string_view key, double def) const;
  std::string GetString(std::string_view key, std::string def) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  // kNumber: the literal (source or builder-emitted); kString: the payload.
  std::string scalar_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

}  // namespace mira::support

#endif  // MIRA_SRC_SUPPORT_JSON_H_
