#include "src/support/stats.h"

namespace mira::support {

uint64_t LatencyHistogram::PercentileNs(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  // Rank of the percentile sample, clamped to the last sample so p100 (and
  // any p where p/100*count rounds up to count) lands in the highest
  // non-empty bucket instead of falling off the end of the scan — a
  // single-sample histogram now answers every percentile with its one
  // bucket rather than returning the 2^47 sentinel for p100.
  uint64_t target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  if (target >= count_) {
    target = count_ - 1;
  }
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) {
      return b == 0 ? 0 : (1ULL << b);
    }
  }
  return 1ULL << (kBuckets - 1);
}

}  // namespace mira::support
