#include "src/support/stats.h"

namespace mira::support {

uint64_t LatencyHistogram::PercentileNs(double p) const {
  if (count_ == 0) {
    return 0;
  }
  const auto target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) {
      return b == 0 ? 0 : (1ULL << b);
    }
  }
  return 1ULL << (kBuckets - 1);
}

}  // namespace mira::support
