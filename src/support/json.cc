#include "src/support/json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/support/check.h"
#include "src/support/str.h"

namespace mira::support {

namespace {

constexpr int kMaxDepth = 64;

bool IsNumberChar(char c) {
  return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E';
}

void AppendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Recursive-descent parser over a cursor. Errors carry the byte offset.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    JsonValue v;
    auto s = ParseValue(&v, 0);
    if (!s.ok()) {
      return s;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing content");
    }
    return v;
  }

 private:
  Status Error(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at offset %zu", what, pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    const size_t n = std::strlen(w);
    if (text_.substr(pos_, n) == w) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWs();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out, depth);
    }
    if (c == '[') {
      return ParseArray(out, depth);
    }
    if (c == '"') {
      std::string s;
      auto st = ParseString(&s);
      if (!st.ok()) {
        return st;
      }
      *out = JsonValue::Str(std::move(s));
      return Status::Ok();
    }
    if (ConsumeWord("true")) {
      *out = JsonValue::Bool(true);
      return Status::Ok();
    }
    if (ConsumeWord("false")) {
      *out = JsonValue::Bool(false);
      return Status::Ok();
    }
    if (ConsumeWord("null")) {
      *out = JsonValue();
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() && IsNumberChar(text_[pos_])) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("invalid value");
    }
    const std::string literal(text_.substr(start, pos_ - start));
    char* end = nullptr;
    std::strtod(literal.c_str(), &end);
    if (end != literal.c_str() + literal.size()) {
      return Error("malformed number");
    }
    *out = JsonValue::NumberLiteral(literal);
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::Ok();
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // BMP-only UTF-8 encoding (no surrogate pairing — the artifacts
          // this parser exists for are ASCII).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    JsonValue v = JsonValue::Array();
    SkipWs();
    if (Consume(']')) {
      *out = std::move(v);
      return Status::Ok();
    }
    while (true) {
      JsonValue elem;
      auto s = ParseValue(&elem, depth + 1);
      if (!s.ok()) {
        return s;
      }
      v.Append(std::move(elem));
      SkipWs();
      if (Consume(']')) {
        *out = std::move(v);
        return Status::Ok();
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']'");
      }
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    JsonValue v = JsonValue::Object();
    SkipWs();
    if (Consume('}')) {
      *out = std::move(v);
      return Status::Ok();
    }
    while (true) {
      SkipWs();
      std::string key;
      auto s = ParseString(&key);
      if (!s.ok()) {
        return s;
      }
      SkipWs();
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      JsonValue elem;
      s = ParseValue(&elem, depth + 1);
      if (!s.ok()) {
        return s;
      }
      v.Set(std::move(key), std::move(elem));
      SkipWs();
      if (Consume('}')) {
        *out = std::move(v);
        return Status::Ok();
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::U64(uint64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = std::to_string(value);
  return v;
}

JsonValue JsonValue::I64(int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = std::to_string(value);
  return v;
}

JsonValue JsonValue::Double(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  // %.17g round-trips every finite double bit-exactly through strtod.
  v.scalar_ = StrFormat("%.17g", value);
  return v;
}

JsonValue JsonValue::NumberLiteral(std::string literal) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = std::move(literal);
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.scalar_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) { return Parser(text).Run(); }

bool JsonValue::AsBool() const {
  MIRA_CHECK_MSG(kind_ == Kind::kBool, "JsonValue::AsBool on non-bool");
  return bool_;
}

uint64_t JsonValue::AsU64() const {
  MIRA_CHECK_MSG(kind_ == Kind::kNumber, "JsonValue::AsU64 on non-number");
  return std::strtoull(scalar_.c_str(), nullptr, 10);
}

int64_t JsonValue::AsI64() const {
  MIRA_CHECK_MSG(kind_ == Kind::kNumber, "JsonValue::AsI64 on non-number");
  return std::strtoll(scalar_.c_str(), nullptr, 10);
}

double JsonValue::AsDouble() const {
  MIRA_CHECK_MSG(kind_ == Kind::kNumber, "JsonValue::AsDouble on non-number");
  return std::strtod(scalar_.c_str(), nullptr);
}

const std::string& JsonValue::AsString() const {
  MIRA_CHECK_MSG(kind_ == Kind::kString, "JsonValue::AsString on non-string");
  return scalar_;
}

size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) {
    return arr_.size();
  }
  if (kind_ == Kind::kObject) {
    return obj_.size();
  }
  return 0;
}

const JsonValue& JsonValue::at(size_t i) const {
  MIRA_CHECK_MSG(kind_ == Kind::kArray, "JsonValue::at on non-array");
  MIRA_CHECK_MSG(i < arr_.size(), "JsonValue::at out of range");
  return arr_[i];
}

void JsonValue::Append(JsonValue v) {
  MIRA_CHECK_MSG(kind_ == Kind::kArray, "JsonValue::Append on non-array");
  arr_.push_back(std::move(v));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : obj_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue v) {
  MIRA_CHECK_MSG(kind_ == Kind::kObject, "JsonValue::Set on non-object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

bool JsonValue::GetBool(std::string_view key, bool def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : def;
}

uint64_t JsonValue::GetU64(std::string_view key, uint64_t def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsU64() : def;
}

int64_t JsonValue::GetI64(std::string_view key, int64_t def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsI64() : def;
}

double JsonValue::GetDouble(std::string_view key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : def;
}

std::string JsonValue::GetString(std::string_view key, std::string def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : def;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                                 : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent * depth), ' ') : std::string();
  const char* nl = pretty ? "\n" : "";
  const char* kv_sep = pretty ? ": " : ":";
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      *out += scalar_;
      return;
    case Kind::kString:
      AppendEscaped(out, scalar_);
      return;
    case Kind::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[";
      *out += nl;
      for (size_t i = 0; i < arr_.size(); ++i) {
        *out += pad;
        arr_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < arr_.size()) {
          *out += ",";
        }
        *out += nl;
      }
      *out += close_pad;
      *out += "]";
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{";
      *out += nl;
      for (size_t i = 0; i < obj_.size(); ++i) {
        *out += pad;
        AppendEscaped(out, obj_[i].first);
        *out += kv_sep;
        obj_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < obj_.size()) {
          *out += ",";
        }
        *out += nl;
      }
      *out += close_pad;
      *out += "}";
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

}  // namespace mira::support
