// FlatMap64: an open-addressing robin-hood hash table from uint64_t keys to
// uint32_t values, built for the cache runtime's hottest lookup (line → slot,
// page → frame). Compared to std::unordered_map it stores entries inline in
// one contiguous array — no per-node allocation, no pointer chase per probe —
// and robin-hood displacement keeps probe sequences short and bounded, so
// both hits and misses terminate after a handful of adjacent cache lines.
//
// Deletion uses backward shifting (successors are pulled one step toward
// their home bucket) instead of tombstones, so lookup cost never degrades as
// the table churns — the steady state of an LRU cache that inserts and
// erases a line per miss.
//
// Not thread-safe; each simulation world owns its tables.

#ifndef MIRA_SRC_SUPPORT_FLAT_MAP_H_
#define MIRA_SRC_SUPPORT_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/support/check.h"

namespace mira::support {

class FlatMap64 {
 public:
  static constexpr uint32_t kNotFound = UINT32_MAX;

  FlatMap64() = default;

  // Pre-sizes the table for `n` entries without exceeding the max load
  // factor (3/4), avoiding rehash churn during warm-up.
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) {
      cap <<= 1;
    }
    if (cap > slots_.size()) {
      Rehash(cap);
    }
  }

  // Returns the value mapped to `key`, or kNotFound.
  uint32_t Find(uint64_t key) const {
    if (slots_.empty()) {
      return kNotFound;
    }
    const size_t mask = slots_.size() - 1;
    size_t i = HashKey(key) & mask;
    uint16_t dist = 1;
    for (;;) {
      const Entry& e = slots_[i];
      // Robin-hood invariant: had `key` been present, it would have
      // displaced any entry probing shorter than us — stop early.
      if (e.dist < dist) {
        return kNotFound;
      }
      if (e.key == key && e.dist != 0) {
        return e.value;
      }
      i = (i + 1) & mask;
      ++dist;
    }
  }

  // Insert-or-assign.
  void Insert(uint64_t key, uint32_t value) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const size_t mask = slots_.size() - 1;
    Entry incoming{key, value, 1};
    size_t i = HashKey(key) & mask;
    for (;;) {
      Entry& e = slots_[i];
      if (e.dist == 0) {
        e = incoming;
        ++size_;
        return;
      }
      if (e.key == incoming.key) {
        e.value = incoming.value;
        return;
      }
      if (e.dist < incoming.dist) {
        std::swap(e, incoming);
      }
      i = (i + 1) & mask;
      ++incoming.dist;
      MIRA_CHECK_MSG(incoming.dist < UINT16_MAX, "FlatMap64 probe distance overflow");
    }
  }

  // Removes `key`; returns whether it was present.
  bool Erase(uint64_t key) {
    if (slots_.empty()) {
      return false;
    }
    const size_t mask = slots_.size() - 1;
    size_t i = HashKey(key) & mask;
    uint16_t dist = 1;
    for (;;) {
      const Entry& e = slots_[i];
      if (e.dist < dist) {
        return false;
      }
      if (e.key == key && e.dist != 0) {
        break;
      }
      i = (i + 1) & mask;
      ++dist;
    }
    // Backward shift: pull each successor one step toward its home bucket
    // until a hole or an entry already at home — no tombstones.
    size_t j = (i + 1) & mask;
    while (slots_[j].dist > 1) {
      slots_[i] = slots_[j];
      --slots_[i].dist;
      i = j;
      j = (j + 1) & mask;
    }
    slots_[i].dist = 0;
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    for (Entry& e : slots_) {
      e = Entry{};
    }
    size_ = 0;
  }

 private:
  struct Entry {
    uint64_t key = 0;
    uint32_t value = 0;
    uint16_t dist = 0;  // 0 = empty; else probe distance from home + 1
  };

  static constexpr size_t kMinCapacity = 16;  // power of two

  // Murmur3 finalizer: full avalanche, so sequential line numbers spread
  // across the table instead of clustering.
  static size_t HashKey(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }

  void Rehash(size_t new_capacity) {
    std::vector<Entry> old = std::move(slots_);
    slots_.assign(new_capacity, Entry{});
    size_ = 0;
    for (const Entry& e : old) {
      if (e.dist != 0) {
        Insert(e.key, e.value);
      }
    }
  }

  std::vector<Entry> slots_;
  size_t size_ = 0;
};

}  // namespace mira::support

#endif  // MIRA_SRC_SUPPORT_FLAT_MAP_H_
