#include "src/support/rng.h"

#include <cmath>

#include "src/support/check.h"

namespace mira::support {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.Next();
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  MIRA_CHECK(bound > 0);
  // Lemire-style multiply-shift; the slight modulo bias at 64 bits is
  // irrelevant for workload synthesis.
  return static_cast<uint64_t>((static_cast<__uint128_t>(NextU64()) * bound) >> 64);
}

int64_t Rng::NextRange(int64_t lo, int64_t hi) {
  MIRA_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Rng::NextZipf(uint64_t n, double theta) {
  MIRA_CHECK(n > 0);
  if (theta <= 0.0) {
    return NextBelow(n);
  }
  // Approximate inverse-CDF sampling of a Zipf-like distribution via the
  // bounded Pareto transform; preserves head-heavy skew, which is all the
  // cache experiments depend on.
  const double u = NextDouble();
  const double alpha = 1.0 - theta;
  const double x = std::pow(static_cast<double>(n), alpha);
  const double v = std::pow(u * (x - 1.0) + 1.0, 1.0 / alpha) - 1.0;
  uint64_t idx = static_cast<uint64_t>(v);
  if (idx >= n) {
    idx = n - 1;
  }
  return idx;
}

}  // namespace mira::support
