// Minimal error-handling vocabulary (no exceptions, Google-style StatusOr).
//
// Fallible public APIs return Status or Result<T>. Internal invariants use
// MIRA_CHECK instead.

#ifndef MIRA_SRC_SUPPORT_STATUS_H_
#define MIRA_SRC_SUPPORT_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/support/check.h"

namespace mira::support {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfMemory,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  // The far node / link is down for the duration of the attempt window.
  kUnavailable,
  // The per-verb retry deadline elapsed before an attempt succeeded.
  kDeadlineExceeded,
  // The operation was abandoned by its caller (e.g. a dropped prefetch).
  kAborted,
  // Data failed its integrity check and could not be healed (quarantined
  // line with no clean copy anywhere). Unrecoverable by retry.
  kDataLoss,
  // The far-memory node holding the target range crashed (lease expired).
  // Recoverable when a replica survives: the failover ladder promotes it,
  // remaps the placement entry, and re-issues the verb.
  kNodeFailed,
};

// Human-readable name for an error code ("ok", "invalid_argument", ...).
const char* ErrorCodeName(ErrorCode code);

// A success-or-error value with an optional message. Cheap to copy on the
// success path (no allocation).
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(ErrorCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(ErrorCode::kNotFound, std::move(m)); }
  static Status OutOfMemory(std::string m) { return Status(ErrorCode::kOutOfMemory, std::move(m)); }
  static Status FailedPrecondition(std::string m) {
    return Status(ErrorCode::kFailedPrecondition, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(ErrorCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) { return Status(ErrorCode::kInternal, std::move(m)); }
  static Status Unavailable(std::string m) {
    return Status(ErrorCode::kUnavailable, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(ErrorCode::kDeadlineExceeded, std::move(m));
  }
  static Status Aborted(std::string m) { return Status(ErrorCode::kAborted, std::move(m)); }
  static Status DataLoss(std::string m) { return Status(ErrorCode::kDataLoss, std::move(m)); }
  static Status NodeFailed(std::string m) { return Status(ErrorCode::kNodeFailed, std::move(m)); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}                      // NOLINT(google-explicit-*)
  Result(Status status) : status_(std::move(status)) {               // NOLINT(google-explicit-*)
    MIRA_CHECK_MSG(!status_.ok(), "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    MIRA_CHECK_MSG(ok(), "Result::value() called on error");
    return *value_;
  }
  const T& value() const {
    MIRA_CHECK_MSG(ok(), "Result::value() called on error");
    return *value_;
  }
  T take() {
    MIRA_CHECK_MSG(ok(), "Result::take() called on error");
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace mira::support

#endif  // MIRA_SRC_SUPPORT_STATUS_H_
