// printf-style std::string formatting and human-readable size helpers.

#ifndef MIRA_SRC_SUPPORT_STR_H_
#define MIRA_SRC_SUPPORT_STR_H_

#include <cstdint>
#include <string>

namespace mira::support {

// printf into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// "4.0KiB", "1.5MiB", ... for byte counts.
std::string HumanBytes(uint64_t bytes);

// "3.2us", "1.5ms", ... for nanosecond durations.
std::string HumanNs(uint64_t ns);

}  // namespace mira::support

#endif  // MIRA_SRC_SUPPORT_STR_H_
