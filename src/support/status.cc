#include "src/support/status.h"

namespace mira::support {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kOutOfMemory:
      return "out_of_memory";
    case ErrorCode::kAlreadyExists:
      return "already_exists";
    case ErrorCode::kFailedPrecondition:
      return "failed_precondition";
    case ErrorCode::kUnimplemented:
      return "unimplemented";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kAborted:
      return "aborted";
    case ErrorCode::kDataLoss:
      return "data_loss";
    case ErrorCode::kNodeFailed:
      return "node_failed";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mira::support
