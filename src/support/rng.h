// Deterministic pseudo-random number generation for workload synthesis.
//
// All randomness in the repository flows through SplitMix64 / Xoshiro256**
// instances seeded explicitly, so every experiment reproduces bit-identically.

#ifndef MIRA_SRC_SUPPORT_RNG_H_
#define MIRA_SRC_SUPPORT_RNG_H_

#include <cstdint>

namespace mira::support {

// SplitMix64: used to expand a single seed into stream state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256**: fast, high-quality generator for workload data.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi]. Requires lo <= hi.
  int64_t NextRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Zipfian-distributed value in [0, n) with skew theta (0 = uniform-ish).
  // Uses the rejection-inversion free approximation adequate for workload
  // skew synthesis (not for statistical tests).
  uint64_t NextZipf(uint64_t n, double theta);

 private:
  uint64_t s_[4];
};

}  // namespace mira::support

#endif  // MIRA_SRC_SUPPORT_RNG_H_
