// Lightweight assertion macros used throughout the Mira codebase.
//
// MIRA_CHECK is always on (including release builds): far-memory bookkeeping
// bugs corrupt simulated results silently, so we prefer a loud abort. The
// macros print the failing expression and location before aborting.

#ifndef MIRA_SRC_SUPPORT_CHECK_H_
#define MIRA_SRC_SUPPORT_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace mira::support {

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line, const char* msg);

}  // namespace mira::support

#define MIRA_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::mira::support::CheckFailed(#expr, __FILE__, __LINE__, nullptr);  \
    }                                                                    \
  } while (0)

#define MIRA_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::mira::support::CheckFailed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (0)

#define MIRA_UNREACHABLE(msg) ::mira::support::CheckFailed("unreachable", __FILE__, __LINE__, (msg))

// Debug-only check: compiled out under NDEBUG (the default RelWithDebInfo
// build defines it). For validation that should catch mistakes in debug/CI
// builds without taxing or aborting release runs — e.g. metric-name
// convention checks at registration.
#ifdef NDEBUG
#define MIRA_DCHECK_MSG(expr, msg) \
  do {                             \
    (void)sizeof(expr);            \
  } while (0)
#else
#define MIRA_DCHECK_MSG(expr, msg) MIRA_CHECK_MSG(expr, msg)
#endif

#endif  // MIRA_SRC_SUPPORT_CHECK_H_
