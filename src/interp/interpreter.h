// The IR interpreter: executes a verified module against a far-memory
// Backend. Stands in for the paper's compiled binary — each IR instruction
// charges its simulated cost, memory ops consult the backend for timing,
// and the data plane reads/writes the far arena directly so results are
// identical across backends.
//
// Also implements:
//  - per-function run-time profiling (the §4.1 ledger: calls, inclusive
//    time, cache overhead) with optional instrumentation cost;
//  - function offloading (§4.8): kOffloadCall runs the callee in "remote
//    mode" (compute scaled by the far node's slowdown, memory at native
//    speed) and charges an RPC round trip;
//  - fused-loop batch fetches: rmem loads sharing a batch_group are issued
//    as one scatter-gather LoadBatch per loop iteration.

#ifndef MIRA_SRC_INTERP_INTERPRETER_H_
#define MIRA_SRC_INTERP_INTERPRETER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/backends/backend.h"
#include "src/interp/bytecode.h"
#include "src/ir/ir.h"
#include "src/sim/clock.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/telemetry/telemetry.h"

namespace mira::farmem {
class FarMemoryCluster;
}  // namespace mira::farmem

namespace mira::integrity {
class IntegrityManager;
}  // namespace mira::integrity

namespace mira::interp {

struct FuncProfile {
  uint64_t calls = 0;
  uint64_t inclusive_ns = 0;           // wall (simulated) time inside the call
  uint64_t overhead_ns = 0;            // cache runtime+stall beyond native, exclusive
  uint64_t mem_accesses = 0;
  uint64_t compute_instrs = 0;
};

struct RunProfile {
  std::map<std::string, FuncProfile> funcs;
  // Allocation-site label → total bytes (paper: "we collect allocation
  // sizes of all data objects").
  std::map<std::string, uint64_t> alloc_bytes;
  uint64_t total_ns = 0;
  uint64_t total_overhead_ns = 0;

  // The paper's "cache performance overhead": runtime time over remaining
  // execution time.
  double OverheadRatio() const {
    const uint64_t rest = total_ns > total_overhead_ns ? total_ns - total_overhead_ns : 1;
    return static_cast<double>(total_overhead_ns) / static_cast<double>(rest);
  }
};

// Snapshots a run profile into the registry: per-function ledgers under
// "interp.func.<name>.*" plus run totals and the overhead ratio.
void PublishRunProfile(telemetry::MetricsRegistry& registry, const RunProfile& profile);

// Process-wide count of top-level Interpreter::Run invocations (atomic).
// The bench harness reads the delta across a timed region to report
// simulations/second for the parallel evaluation engine.
uint64_t SimulationsRun();

struct InterpOptions {
  // Seed for the kRand op's generator (workload data synthesis).
  uint64_t seed = 42;
  // Insert profiling instrumentation cost (paper: coarse-grained
  // function-level events, 0.4–0.7% overhead).
  bool profiling = false;
  // Abort (via Status) after this many executed instructions (0 = off).
  uint64_t max_instrs = 0;
  // Which execution engine runs the module: the reference tree walker or
  // the compiled bytecode engine (bit-identical; see bytecode.h). kDefault
  // resolves through DefaultEngine() — SetDefaultEngine / MIRA_INTERP /
  // bytecode, in that order.
  EngineKind engine = EngineKind::kDefault;
};

class Interpreter {
 public:
  Interpreter(const ir::Module* module, backends::Backend* backend, InterpOptions options = {});

  // Runs `func_name` with i64/f64/ptr arguments packed as raw bits.
  support::Result<uint64_t> Run(std::string_view func_name, std::vector<uint64_t> args = {});

  sim::SimClock& clock() { return clock_; }
  const RunProfile& profile() const { return profile_; }
  uint64_t instrs_executed() const { return instrs_executed_; }
  // Offloaded calls whose RPC admission failed and ran locally instead.
  uint64_t offload_fallbacks() const { return offload_fallbacks_; }

  // Remote address of the object allocated at site `label` (first hit).
  farmem::RemoteAddr ObjectAddr(const std::string& label) const;
  const std::map<std::string, farmem::RemoteAddr>& object_addrs() const {
    return first_alloc_addr_;
  }

 private:
  struct Frame {
    const ir::Function* func = nullptr;
    uint32_t func_index = 0;
    std::vector<uint64_t> values;
    std::vector<uint64_t> locals;
    uint64_t ret_bits = 0;
    bool returned = false;
    // Batch groups already serviced in the current innermost iteration.
    std::vector<int32_t> batched_groups;
  };

  // Bytecode engine frame: dense register file plus flattened loop state
  // ({i, hi, step} triples indexed by BInstr::loop_slot).
  struct BFrame {
    std::vector<uint64_t> values;
    std::vector<uint64_t> locals;
    std::vector<int64_t> loop_state;
    std::vector<int32_t> batched_groups;
    // One entry per open loop scope; nonzero iff a profiler scope was
    // pushed for it (profiler enabled at entry). Popped by kLoopExit /
    // kReturn, or unwound wholesale on an error abort.
    std::vector<uint8_t> loop_scopes;
    uint64_t ret_bits = 0;
  };

  enum class Flow { kNormal, kReturned };

  support::Status CallFunction(uint32_t index, const std::vector<uint64_t>& args,
                               uint64_t* result_bits);
  support::Status ExecRegion(Frame& frame, const ir::Region& region, Flow* flow);
  support::Status ExecInstr(Frame& frame, const ir::Region& region, size_t pos, Flow* flow);

  // Bytecode engine (bit-identical to the tree walker above; see
  // bytecode.h for the contract and DESIGN.md §10 for the design).
  support::Status RunBytecodeFunction(uint32_t index, const std::vector<uint64_t>& args,
                                      uint64_t* result_bits);
  support::Status ExecBytecode(BFrame& frame, uint32_t func_index);
  void BytecodeMemAccess(uint64_t addr, const bytecode::BInstr& instr, bool is_store,
                         uint32_t func_index, cache::AccessSite* site);
  void BytecodeLoadPath(BFrame& frame, const bytecode::BFunction& bf,
                        const bytecode::BInstr& instr, uint32_t func_index, uint64_t addr,
                        cache::AccessSite* site);
  void BytecodeServiceBatch(BFrame& frame, const bytecode::BFunction& bf,
                            const bytecode::BInstr& instr, uint32_t func_index);
  void UnwindLoopScopes(BFrame& frame);

  void ChargeCompute(uint64_t ops);
  void MemAccess(Frame& frame, const ir::Instr& instr, bool is_store);
  void ServiceBatchGroup(Frame& frame, const ir::Region& region, size_t pos);
  // Builds the tree walker's batch-membership table (trigger instruction →
  // span of batch_members_) on first use, replacing the per-iteration
  // region re-scan the walker used to do.
  void EnsureBatchTable();

  uint64_t LoadData(farmem::RemoteAddr addr, uint32_t bytes) const;
  void StoreData(farmem::RemoteAddr addr, uint64_t bits, uint32_t bytes);

  // Folds the interned per-function ledger into profile_.funcs (stringified
  // once per Run instead of a map lookup per call/access).
  void FoldFuncLedger();

  const ir::Module* module_;
  backends::Backend* backend_;
  // Integrity manager attached to the backend's transport, or null. Cached
  // at construction: every committed store notifies it, and a fatal
  // (unhealable) integrity verdict aborts the run with kDataLoss.
  integrity::IntegrityManager* integrity_ = nullptr;
  // Replicated far-memory cluster attached to the transport, or null. When
  // present, data-plane loads/stores route through it so reads come from a
  // live replica and writes reach every replica.
  farmem::FarMemoryCluster* cluster_ = nullptr;
  InterpOptions options_;
  sim::SimClock clock_;
  RunProfile profile_;
  uint64_t instrs_executed_ = 0;
  uint64_t offload_fallbacks_ = 0;  // offloads denied admission, run locally
  bool remote_mode_ = false;
  int call_depth_ = 0;
  std::map<std::string, farmem::RemoteAddr> first_alloc_addr_;
  support::Rng rng_{42};
  support::Status failure_ = support::Status::Ok();

  // Resolved execution engine (never kDefault).
  EngineKind engine_;
  // Compiled form, fetched from the process-wide code cache on the first
  // bytecode Run. sites_ is this interpreter's private AccessSite binding
  // table (one slot per static load/store across the module, indexed via
  // bcode_->site_base[func] + BInstr::site) — the code is shared, the
  // placement memos are not.
  std::shared_ptr<const bytecode::BytecodeModule> bcode_;
  std::vector<cache::AccessSite> sites_;

  // Per-function profile ledger indexed by function index; folded into
  // profile_.funcs at the end of every Run.
  std::vector<FuncProfile> func_ledger_;

  // Tree-walker batch table: trigger load → span of batch_members_.
  struct BatchSpan {
    uint32_t off = 0;
    uint32_t len = 0;
  };
  bool batch_table_built_ = false;
  std::unordered_map<const ir::Instr*, BatchSpan> batch_spans_;
  std::vector<bytecode::BatchMember> batch_members_;
};

// Helpers to pack/unpack f64 arguments.
inline uint64_t PackF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}
inline double UnpackF64(uint64_t bits) {
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace mira::interp

#endif  // MIRA_SRC_INTERP_INTERPRETER_H_
