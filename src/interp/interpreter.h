// The IR interpreter: executes a verified module against a far-memory
// Backend. Stands in for the paper's compiled binary — each IR instruction
// charges its simulated cost, memory ops consult the backend for timing,
// and the data plane reads/writes the far arena directly so results are
// identical across backends.
//
// Also implements:
//  - per-function run-time profiling (the §4.1 ledger: calls, inclusive
//    time, cache overhead) with optional instrumentation cost;
//  - function offloading (§4.8): kOffloadCall runs the callee in "remote
//    mode" (compute scaled by the far node's slowdown, memory at native
//    speed) and charges an RPC round trip;
//  - fused-loop batch fetches: rmem loads sharing a batch_group are issued
//    as one scatter-gather LoadBatch per loop iteration.

#ifndef MIRA_SRC_INTERP_INTERPRETER_H_
#define MIRA_SRC_INTERP_INTERPRETER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/backends/backend.h"
#include "src/ir/ir.h"
#include "src/sim/clock.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/telemetry/telemetry.h"

namespace mira::farmem {
class FarMemoryCluster;
}  // namespace mira::farmem

namespace mira::integrity {
class IntegrityManager;
}  // namespace mira::integrity

namespace mira::interp {

struct FuncProfile {
  uint64_t calls = 0;
  uint64_t inclusive_ns = 0;           // wall (simulated) time inside the call
  uint64_t overhead_ns = 0;            // cache runtime+stall beyond native, exclusive
  uint64_t mem_accesses = 0;
  uint64_t compute_instrs = 0;
};

struct RunProfile {
  std::map<std::string, FuncProfile> funcs;
  // Allocation-site label → total bytes (paper: "we collect allocation
  // sizes of all data objects").
  std::map<std::string, uint64_t> alloc_bytes;
  uint64_t total_ns = 0;
  uint64_t total_overhead_ns = 0;

  // The paper's "cache performance overhead": runtime time over remaining
  // execution time.
  double OverheadRatio() const {
    const uint64_t rest = total_ns > total_overhead_ns ? total_ns - total_overhead_ns : 1;
    return static_cast<double>(total_overhead_ns) / static_cast<double>(rest);
  }
};

// Snapshots a run profile into the registry: per-function ledgers under
// "interp.func.<name>.*" plus run totals and the overhead ratio.
void PublishRunProfile(telemetry::MetricsRegistry& registry, const RunProfile& profile);

// Process-wide count of top-level Interpreter::Run invocations (atomic).
// The bench harness reads the delta across a timed region to report
// simulations/second for the parallel evaluation engine.
uint64_t SimulationsRun();

struct InterpOptions {
  // Seed for the kRand op's generator (workload data synthesis).
  uint64_t seed = 42;
  // Insert profiling instrumentation cost (paper: coarse-grained
  // function-level events, 0.4–0.7% overhead).
  bool profiling = false;
  // Abort (via Status) after this many executed instructions (0 = off).
  uint64_t max_instrs = 0;
};

class Interpreter {
 public:
  Interpreter(const ir::Module* module, backends::Backend* backend, InterpOptions options = {});

  // Runs `func_name` with i64/f64/ptr arguments packed as raw bits.
  support::Result<uint64_t> Run(std::string_view func_name, std::vector<uint64_t> args = {});

  sim::SimClock& clock() { return clock_; }
  const RunProfile& profile() const { return profile_; }
  uint64_t instrs_executed() const { return instrs_executed_; }
  // Offloaded calls whose RPC admission failed and ran locally instead.
  uint64_t offload_fallbacks() const { return offload_fallbacks_; }

  // Remote address of the object allocated at site `label` (first hit).
  farmem::RemoteAddr ObjectAddr(const std::string& label) const;
  const std::map<std::string, farmem::RemoteAddr>& object_addrs() const {
    return first_alloc_addr_;
  }

 private:
  struct Frame {
    const ir::Function* func = nullptr;
    std::vector<uint64_t> values;
    std::vector<uint64_t> locals;
    uint64_t ret_bits = 0;
    bool returned = false;
    // Batch groups already serviced in the current innermost iteration.
    std::vector<int32_t> batched_groups;
  };

  enum class Flow { kNormal, kReturned };

  support::Status CallFunction(uint32_t index, const std::vector<uint64_t>& args,
                               uint64_t* result_bits);
  support::Status ExecRegion(Frame& frame, const ir::Region& region, Flow* flow);
  support::Status ExecInstr(Frame& frame, const ir::Region& region, size_t pos, Flow* flow);

  void ChargeCompute(uint64_t ops);
  void MemAccess(Frame& frame, const ir::Instr& instr, bool is_store);
  void ServiceBatchGroup(Frame& frame, const ir::Region& region, size_t pos);

  uint64_t LoadData(farmem::RemoteAddr addr, uint32_t bytes) const;
  void StoreData(farmem::RemoteAddr addr, uint64_t bits, uint32_t bytes);

  FuncProfile& ProfileOf(const ir::Function& f) { return profile_.funcs[f.name]; }

  const ir::Module* module_;
  backends::Backend* backend_;
  // Integrity manager attached to the backend's transport, or null. Cached
  // at construction: every committed store notifies it, and a fatal
  // (unhealable) integrity verdict aborts the run with kDataLoss.
  integrity::IntegrityManager* integrity_ = nullptr;
  // Replicated far-memory cluster attached to the transport, or null. When
  // present, data-plane loads/stores route through it so reads come from a
  // live replica and writes reach every replica.
  farmem::FarMemoryCluster* cluster_ = nullptr;
  InterpOptions options_;
  sim::SimClock clock_;
  RunProfile profile_;
  uint64_t instrs_executed_ = 0;
  uint64_t offload_fallbacks_ = 0;  // offloads denied admission, run locally
  bool remote_mode_ = false;
  int call_depth_ = 0;
  std::vector<std::string> func_stack_;
  std::map<std::string, farmem::RemoteAddr> first_alloc_addr_;
  support::Rng rng_{42};
  support::Status failure_ = support::Status::Ok();
};

// Helpers to pack/unpack f64 arguments.
inline uint64_t PackF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}
inline double UnpackF64(uint64_t bits) {
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace mira::interp

#endif  // MIRA_SRC_INTERP_INTERPRETER_H_
