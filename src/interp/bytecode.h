// The bytecode execution engine's compiled form and code cache.
//
// The tree walker (interpreter.cc) re-discovers everything on every visit:
// it recurses through regions, walks per-instruction operand vectors,
// re-scans loop bodies for batch-group members, and resolves every memory
// access through ordered maps. BytecodeCompiler (compiler.cc) pays those
// costs once, lowering each verified ir::Function into a flat stream of
// fixed-size, pre-decoded instructions:
//
//   - operands are dense register indices in named slots (a/b/c/d) — no
//     vector walks;
//   - control flow is pre-resolved branch targets into the same stream —
//     no region recursion (only cross-function calls recurse);
//   - arithmetic and comparisons are type-specialized at compile time
//     (kAddI vs kAddF) — no per-instr type dispatch;
//   - batch-group membership is a precomputed pool span on each grouped
//     load — no per-iteration body scan;
//   - every load/store carries an AccessSite slot, a placement memo the
//     Mira backend validates with one generation compare — no per-access
//     range-map lookup;
//   - hot adjacent pairs fuse into superinstructions (see DESIGN.md §10):
//     kIndex+load, kIndex+store, cmp+if, cmp+while-yield, and the for-loop
//     iv-increment+back-edge (inherent in kForNext).
//
// Execution semantics are bit-identical to the tree walker by construction:
// every lowered IR instruction performs the same budget/integrity "prestep",
// the same ChargeCompute calls in the same order, the same profiler scope
// pushes, and the same backend calls. The tree walker remains the
// differential-testing reference (tests/bytecode_test.cc).

#ifndef MIRA_SRC_INTERP_BYTECODE_H_
#define MIRA_SRC_INTERP_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mira::ir {
struct Module;
}  // namespace mira::ir

namespace mira::interp {

// Which execution engine an Interpreter uses. kDefault resolves to the
// process-wide default: SetDefaultEngine() if called, else the MIRA_INTERP
// environment variable ("tree" or "bytecode"), else bytecode.
enum class EngineKind : uint8_t { kDefault = 0, kTree = 1, kBytecode = 2 };

// The resolved process-wide default (never kDefault).
EngineKind DefaultEngine();
// Overrides the default; pass kDefault to restore env/bytecode resolution.
void SetDefaultEngine(EngineKind kind);
// "tree" / "bytecode"; kDefault → "default".
const char* EngineName(EngineKind kind);
// Parses "tree"/"bytecode"; anything else → kDefault.
EngineKind ParseEngineName(std::string_view name);
// requested == kDefault ? DefaultEngine() : requested.
inline EngineKind ResolveEngine(EngineKind requested) {
  return requested == EngineKind::kDefault ? DefaultEngine() : requested;
}

namespace bytecode {

enum class BOp : uint8_t {
  // No-op carrying only the prestep (kLocalAlloc, stray kYield).
  kNop,
  // Constants (no compute charge, like the tree walker).
  kConstI,  // a = imm
  kConstF,  // a = fimm
  // Type-specialized arithmetic: a = b <op> c.
  kAddI, kSubI, kMulI, kDivI, kRemI, kMinI, kMaxI,
  kAddF, kSubF, kMulF, kDivF, kRemF, kMinF, kMaxF,
  // Comparisons: a = (b <pred> c) ? 1 : 0; pred = raw ir::OpKind.
  kCmpI, kCmpF,
  // Bitwise / logic on i64.
  kAnd, kOr, kXor, kShl, kShr,
  kSelect,  // a = b != 0 ? c : d
  // Conversions and math.
  kI2F, kF2I, kSqrt, kExp, kTanh,
  kRand,  // a = rng.NextBelow(b)
  // Local scalar slots: imm = slot index.
  kLocalLoad,   // a = locals[imm]
  kLocalStore,  // locals[imm] = b
  // Heap / far-memory layer.
  kAlloc,        // a = alloc(bytes = b); label strings[str_idx], elem imm
  kFree,         // free(b)
  kLifetimeEnd,  // lifetime_end(b)
  kIndex,        // a = b + c*imm + imm2
  kLoad,         // a = load(addr = b)     [mem_bytes, mflags, batch, site]
  kStore,        // store(addr = b, value = c)
  kPrefetch,     // prefetch(b, mem_bytes)
  kEvictHint,    // evict_hint(b, mem_bytes)
  // Calls: args are arg_pool[pool_off .. pool_off+pool_len); result → a.
  kCall,
  kOffloadCall,
  kReturn,  // has_result → ret = b; c = open loop scopes to pop
  // Intra-function control flow (synthetic: no prestep, no charge).
  kJump,      // pc = target
  kIfBranch,  // prestep+charge(1); pc = b != 0 ? next : target
  // For loop (loop_slot indexes the frame's {i, hi, step} state):
  kForInit,  // prestep; push scope strings[str_idx]; read lo=b hi=c step=d;
             // zero-trip → target (the kLoopExit)
  kForHead,  // charge(1); a (iv) = i; clear batched groups
  kForNext,  // i += step; i < hi → target (the kForHead), else fall through
  // While loop:
  kWhileInit,  // prestep; push scope strings[str_idx]
  kWhileHead,  // charge(1)  [top of every iteration, before the cond]
  kWhileCond,  // prestep (the kYield); b == 0 → target (the kLoopExit),
               // else clear batched groups and fall into the body
  kLoopExit,   // pop one loop scope
  // Superinstructions (multiple presteps, one dispatch).
  kIndexLoad,     // d = b + c*imm + imm2; a = load(d)
  kIndexStore,    // d = b + c*imm + imm2; store(d, a)
  kCmpIfBranch,   // a = cmp(b, c); pc = a ? next : target   [mflags&1: f64]
  kCmpWhileCond,  // a = cmp(b, c); fused cmp+yield while condition
};

const char* BOpName(BOp op);

// mflags bits for kLoad/kStore/kIndexLoad/kIndexStore.
inline constexpr uint8_t kMemPromoted = 1;
inline constexpr uint8_t kMemFullLineWrite = 2;
inline constexpr uint8_t kMemPinned = 4;
// mflags bit for kCmpIfBranch/kCmpWhileCond: operands are f64.
inline constexpr uint8_t kCmpFloat = 1;

// One pre-decoded instruction, exactly one cache line per pair (64 bytes):
// every field the handler needs is an aligned direct load, and nothing is
// re-derived per execution. Fields used by disjoint op sets share storage
// through anonymous unions (e.g. a load's AccessSite slot overlays a call's
// callee index); the per-op comments in BOp say which fields apply.
struct BInstr {
  BOp op = BOp::kNop;
  uint8_t pred = 0;        // raw ir::OpKind for kCmp* / fused cmps
  uint8_t mflags = 0;
  uint8_t has_result = 0;  // kCall/kOffloadCall/kReturn
  uint32_t a = 0;          // dst register (iv for kForHead, value for kIndexStore)
  uint32_t b = 0;
  uint32_t c = 0;
  uint32_t d = 0;          // index-result register for fused index ops
  union {
    int64_t imm = 0;  // const / local slot / index scale / alloc elem bytes
    double fimm;      // kConstF payload
  };
  int64_t imm2 = 0;        // index byte offset
  int32_t batch_group = -1;
  uint32_t mem_bytes = 8;
  uint32_t target = 0;     // pre-resolved branch target (pc index)
  union {
    uint32_t pool_off = 0;  // arg_pool / batch_pool span start
    uint32_t str_idx;       // strings[] index (alloc label / loop scope label)
  };
  uint32_t pool_len = 0;
  union {
    uint32_t site = 0;   // function-local AccessSite slot (loads/stores)
    uint32_t callee;     // kCall/kOffloadCall target function
    uint32_t loop_slot;  // for-loop {i, hi, step} state index
  };
};
static_assert(sizeof(BInstr) == 64, "BInstr should stay one cache line");

// A batch-group member as seen from its trigger site: the register holding
// the member's address at trigger time, and its access width.
struct BatchMember {
  uint32_t value = 0;
  uint32_t bytes = 0;
};

struct BFunction {
  std::vector<BInstr> code;
  std::vector<uint32_t> arg_pool;       // call-argument register spans
  std::vector<BatchMember> batch_pool;  // batch-group member spans
  std::vector<std::string> strings;     // alloc labels, loop scope labels
  uint32_t num_values = 0;
  uint32_t num_locals = 0;
  uint32_t num_loop_slots = 0;
  uint32_t num_sites = 0;
};

struct BytecodeModule {
  uint64_t fingerprint = 0;
  std::vector<BFunction> funcs;  // parallel to ir::Module::functions
  // Prefix sums of per-function AccessSite counts; back() is the total, the
  // size of each Interpreter's private binding table.
  std::vector<uint32_t> site_base;
};

// Returns the compiled form of `module` from the process-wide code cache,
// compiling on first sight. Keyed by ir::ModuleFingerprint — a content
// hash, so identical compiled modules (e.g. the same plan candidate across
// SharedPool workers, or sweep points whose plans lower to the same code)
// share one compilation. Thread-safe; compilation runs under the cache
// lock (it is far cheaper than one simulation).
std::shared_ptr<const BytecodeModule> SharedBytecode(const ir::Module& module);

struct CodeCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
};
CodeCacheStats GetCodeCacheStats();

}  // namespace bytecode
}  // namespace mira::interp

#endif  // MIRA_SRC_INTERP_BYTECODE_H_
