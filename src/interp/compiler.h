// BytecodeCompiler: lowers a verified ir::Module into the flat pre-decoded
// form executed by the Interpreter's bytecode engine (bytecode.h). One
// compile per (module-content) fingerprint — callers normally go through
// bytecode::SharedBytecode rather than invoking this directly.

#ifndef MIRA_SRC_INTERP_COMPILER_H_
#define MIRA_SRC_INTERP_COMPILER_H_

#include "src/interp/bytecode.h"
#include "src/ir/ir.h"

namespace mira::interp::bytecode {

// Lowers every function. The module must be verified (ir::VerifyModule);
// structural invariants are CHECKed, not reported.
BytecodeModule CompileModule(const ir::Module& module);

}  // namespace mira::interp::bytecode

#endif  // MIRA_SRC_INTERP_COMPILER_H_
