#include "src/interp/compiler.h"

#include <string>
#include <utility>

#include "src/support/check.h"

namespace mira::interp::bytecode {

namespace {

bool IsCmpKind(ir::OpKind k) {
  return k >= ir::OpKind::kCmpEq && k <= ir::OpKind::kCmpGe;
}

bool IsLoadKind(ir::OpKind k) {
  return k == ir::OpKind::kLoad || k == ir::OpKind::kRmemLoad;
}

bool IsStoreKind(ir::OpKind k) {
  return k == ir::OpKind::kStore || k == ir::OpKind::kRmemStore;
}

// Lowers one function. Branch targets are emitted as placeholders and
// backpatched once the target pc is known; loop-scope depth is tracked so
// kReturn can pop the right number of open profiler scopes.
class FunctionCompiler {
 public:
  explicit FunctionCompiler(const ir::Function& func) : func_(func) {}

  BFunction Compile() {
    out_.num_values = static_cast<uint32_t>(func_.value_types.size());
    out_.num_locals = func_.local_slots;
    LowerRange(func_.body, 0, func_.body.body.size());
    out_.num_loop_slots = num_loop_slots_;
    out_.num_sites = num_sites_;
    return std::move(out_);
  }

 private:
  uint32_t Emit(const BInstr& in) {
    out_.code.push_back(in);
    return static_cast<uint32_t>(out_.code.size() - 1);
  }
  uint32_t NextPc() const { return static_cast<uint32_t>(out_.code.size()); }

  uint32_t AddString(std::string s) {
    for (uint32_t i = 0; i < out_.strings.size(); ++i) {
      if (out_.strings[i] == s) {
        return i;
      }
    }
    out_.strings.push_back(std::move(s));
    return static_cast<uint32_t>(out_.strings.size() - 1);
  }

  // Decodes the memory attributes of an IR load/store into `b` and, for
  // batch-grouped loads, records the group's member span: the tree walker
  // gathers members by scanning the region body from the trigger position
  // to its end — the same scan runs here, once, at compile time.
  void FillMem(BInstr& b, const ir::Instr& instr, const ir::Region& region, size_t pos) {
    b.mem_bytes = instr.mem.bytes;
    b.mflags = static_cast<uint8_t>((instr.mem.promoted ? kMemPromoted : 0) |
                                    (instr.mem.full_line_write ? kMemFullLineWrite : 0) |
                                    (instr.mem.pinned ? kMemPinned : 0));
    b.batch_group = instr.mem.batch_group;
    b.site = num_sites_++;
    if (IsLoadKind(instr.kind) && instr.mem.batch_group >= 0) {
      b.pool_off = static_cast<uint32_t>(out_.batch_pool.size());
      for (size_t j = pos; j < region.body.size(); ++j) {
        const ir::Instr& m = region.body[j];
        if (m.kind == ir::OpKind::kRmemLoad && m.mem.batch_group == instr.mem.batch_group) {
          out_.batch_pool.push_back(BatchMember{m.operands[0], m.mem.bytes});
        }
      }
      b.pool_len = static_cast<uint32_t>(out_.batch_pool.size()) - b.pool_off;
    }
  }

  void FillCmp(BInstr& b, const ir::Instr& cmp) {
    b.pred = static_cast<uint8_t>(cmp.kind);
    if (func_.ValueType(cmp.operands[0]) == ir::Type::kF64) {
      b.mflags |= kCmpFloat;
    }
    b.a = cmp.result;
    b.b = cmp.operands[0];
    b.c = cmp.operands[1];
  }

  // Lowers region.body[begin, end) with superinstruction fusion. Fusion
  // only pairs instructions adjacent inside the range, so while-cond
  // tails (handled by LowerWhile) never fuse across the yield boundary.
  void LowerRange(const ir::Region& region, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const ir::Instr& in = region.body[i];
      if (in.kind == ir::OpKind::kIndex && i + 1 < end) {
        const ir::Instr& next = region.body[i + 1];
        const bool fuse_load = IsLoadKind(next.kind) && next.operands[0] == in.result;
        const bool fuse_store = IsStoreKind(next.kind) && next.operands[0] == in.result;
        if (fuse_load || fuse_store) {
          BInstr b;
          b.op = fuse_load ? BOp::kIndexLoad : BOp::kIndexStore;
          b.d = in.result;
          b.b = in.operands[0];
          b.c = in.operands[1];
          b.imm = in.i_attr;
          b.imm2 = in.i_attr2;
          b.a = fuse_load ? next.result : next.operands[1];
          FillMem(b, next, region, i + 1);
          Emit(b);
          ++i;
          continue;
        }
      }
      if (IsCmpKind(in.kind) && i + 1 < end) {
        const ir::Instr& next = region.body[i + 1];
        if (next.kind == ir::OpKind::kIf && next.operands[0] == in.result) {
          LowerIf(next, i + 1, &in, i);
          ++i;
          continue;
        }
      }
      LowerInstr(region, i);
    }
  }

  void LowerFor(const ir::Instr& in, size_t pos) {
    const uint32_t slot = num_loop_slots_++;
    BInstr init;
    init.op = BOp::kForInit;
    init.b = in.operands[0];
    init.c = in.operands[1];
    init.d = in.operands[2];
    init.loop_slot = slot;
    init.str_idx = AddString("for@" + std::to_string(pos));
    const uint32_t init_pc = Emit(init);
    ++loop_depth_;
    const uint32_t head_pc = NextPc();
    BInstr head;
    head.op = BOp::kForHead;
    head.a = in.regions[0].args[0];  // induction variable register
    head.loop_slot = slot;
    Emit(head);
    LowerRange(in.regions[0], 0, in.regions[0].body.size());
    BInstr next;
    next.op = BOp::kForNext;
    next.loop_slot = slot;
    next.target = head_pc;
    Emit(next);
    --loop_depth_;
    out_.code[init_pc].target = NextPc();
    BInstr exit;
    exit.op = BOp::kLoopExit;
    Emit(exit);
  }

  void LowerWhile(const ir::Instr& in, size_t pos) {
    const ir::Region& cond = in.regions[0];
    const ir::Region& body = in.regions[1];
    MIRA_CHECK(!cond.body.empty());
    const ir::Instr& yield = cond.body.back();
    MIRA_CHECK(yield.kind == ir::OpKind::kYield && yield.operands.size() == 1);
    BInstr init;
    init.op = BOp::kWhileInit;
    init.str_idx = AddString("while@" + std::to_string(pos));
    Emit(init);
    ++loop_depth_;
    const uint32_t head_pc = NextPc();
    BInstr head;
    head.op = BOp::kWhileHead;
    Emit(head);
    const size_t yield_pos = cond.body.size() - 1;
    const bool fuse = yield_pos >= 1 && IsCmpKind(cond.body[yield_pos - 1].kind) &&
                      cond.body[yield_pos - 1].result == yield.operands[0];
    uint32_t cond_pc;
    if (fuse) {
      LowerRange(cond, 0, yield_pos - 1);
      BInstr b;
      b.op = BOp::kCmpWhileCond;
      FillCmp(b, cond.body[yield_pos - 1]);
      cond_pc = Emit(b);
    } else {
      LowerRange(cond, 0, yield_pos);
      BInstr b;
      b.op = BOp::kWhileCond;
      b.b = yield.operands[0];
      cond_pc = Emit(b);
    }
    LowerRange(body, 0, body.body.size());
    BInstr jump;
    jump.op = BOp::kJump;
    jump.target = head_pc;
    Emit(jump);
    --loop_depth_;
    out_.code[cond_pc].target = NextPc();
    BInstr exit;
    exit.op = BOp::kLoopExit;
    Emit(exit);
  }

  void LowerIf(const ir::Instr& in, size_t pos, const ir::Instr* fused_cmp, size_t cmp_pos) {
    uint32_t branch_pc;
    if (fused_cmp != nullptr) {
      BInstr b;
      b.op = BOp::kCmpIfBranch;
      FillCmp(b, *fused_cmp);
      branch_pc = Emit(b);
    } else {
      BInstr b;
      b.op = BOp::kIfBranch;
      b.b = in.operands[0];
      branch_pc = Emit(b);
    }
    LowerRange(in.regions[0], 0, in.regions[0].body.size());
    if (in.regions[1].body.empty()) {
      out_.code[branch_pc].target = NextPc();
    } else {
      BInstr jump;
      jump.op = BOp::kJump;
      const uint32_t jump_pc = Emit(jump);
      out_.code[branch_pc].target = NextPc();
      LowerRange(in.regions[1], 0, in.regions[1].body.size());
      out_.code[jump_pc].target = NextPc();
    }
  }

  void LowerInstr(const ir::Region& region, size_t pos) {
    const ir::Instr& in = region.body[pos];
    BInstr b;
    switch (in.kind) {
      case ir::OpKind::kConstI:
        b.op = BOp::kConstI;
        b.a = in.result;
        b.imm = in.i_attr;
        break;
      case ir::OpKind::kConstF:
        b.op = BOp::kConstF;
        b.a = in.result;
        b.fimm = in.f_attr;
        break;
      case ir::OpKind::kAdd:
      case ir::OpKind::kSub:
      case ir::OpKind::kMul:
      case ir::OpKind::kDiv:
      case ir::OpKind::kRem:
      case ir::OpKind::kMin:
      case ir::OpKind::kMax: {
        const bool f = in.type == ir::Type::kF64;
        const int base = static_cast<int>(in.kind) - static_cast<int>(ir::OpKind::kAdd);
        b.op = static_cast<BOp>(static_cast<int>(f ? BOp::kAddF : BOp::kAddI) + base);
        b.a = in.result;
        b.b = in.operands[0];
        b.c = in.operands[1];
        break;
      }
      case ir::OpKind::kCmpEq:
      case ir::OpKind::kCmpNe:
      case ir::OpKind::kCmpLt:
      case ir::OpKind::kCmpLe:
      case ir::OpKind::kCmpGt:
      case ir::OpKind::kCmpGe:
        b.op = func_.ValueType(in.operands[0]) == ir::Type::kF64 ? BOp::kCmpF : BOp::kCmpI;
        b.pred = static_cast<uint8_t>(in.kind);
        b.a = in.result;
        b.b = in.operands[0];
        b.c = in.operands[1];
        break;
      case ir::OpKind::kAnd:
      case ir::OpKind::kOr:
      case ir::OpKind::kXor:
      case ir::OpKind::kShl:
      case ir::OpKind::kShr: {
        const int base = static_cast<int>(in.kind) - static_cast<int>(ir::OpKind::kAnd);
        b.op = static_cast<BOp>(static_cast<int>(BOp::kAnd) + base);
        b.a = in.result;
        b.b = in.operands[0];
        b.c = in.operands[1];
        break;
      }
      case ir::OpKind::kSelect:
        b.op = BOp::kSelect;
        b.a = in.result;
        b.b = in.operands[0];
        b.c = in.operands[1];
        b.d = in.operands[2];
        break;
      case ir::OpKind::kI2F:
      case ir::OpKind::kF2I:
      case ir::OpKind::kSqrt:
      case ir::OpKind::kExp:
      case ir::OpKind::kTanh: {
        const int base = static_cast<int>(in.kind) - static_cast<int>(ir::OpKind::kI2F);
        b.op = static_cast<BOp>(static_cast<int>(BOp::kI2F) + base);
        b.a = in.result;
        b.b = in.operands[0];
        break;
      }
      case ir::OpKind::kRand:
        b.op = BOp::kRand;
        b.a = in.result;
        b.b = in.operands[0];
        break;
      case ir::OpKind::kLocalAlloc:
        b.op = BOp::kNop;  // slots pre-allocated in the frame
        break;
      case ir::OpKind::kLocalLoad:
        b.op = BOp::kLocalLoad;
        b.a = in.result;
        b.imm = in.i_attr;
        break;
      case ir::OpKind::kLocalStore:
        b.op = BOp::kLocalStore;
        b.b = in.operands[0];
        b.imm = in.i_attr;
        break;
      case ir::OpKind::kAlloc:
        b.op = BOp::kAlloc;
        b.a = in.result;
        b.b = in.operands[0];
        b.imm = in.i_attr;
        b.str_idx = AddString(in.s_attr);
        break;
      case ir::OpKind::kFree:
        b.op = BOp::kFree;
        b.b = in.operands[0];
        break;
      case ir::OpKind::kLifetimeEnd:
        b.op = BOp::kLifetimeEnd;
        b.b = in.operands[0];
        break;
      case ir::OpKind::kIndex:
        b.op = BOp::kIndex;
        b.a = in.result;
        b.b = in.operands[0];
        b.c = in.operands[1];
        b.imm = in.i_attr;
        b.imm2 = in.i_attr2;
        break;
      case ir::OpKind::kLoad:
      case ir::OpKind::kRmemLoad:
        b.op = BOp::kLoad;
        b.a = in.result;
        b.b = in.operands[0];
        FillMem(b, in, region, pos);
        break;
      case ir::OpKind::kStore:
      case ir::OpKind::kRmemStore:
        b.op = BOp::kStore;
        b.b = in.operands[0];
        b.c = in.operands[1];
        FillMem(b, in, region, pos);
        break;
      case ir::OpKind::kPrefetch:
        b.op = BOp::kPrefetch;
        b.b = in.operands[0];
        b.mem_bytes = in.mem.bytes;
        break;
      case ir::OpKind::kEvictHint:
        b.op = BOp::kEvictHint;
        b.b = in.operands[0];
        b.mem_bytes = in.mem.bytes;
        break;
      case ir::OpKind::kFor:
        LowerFor(in, pos);
        return;
      case ir::OpKind::kWhile:
        LowerWhile(in, pos);
        return;
      case ir::OpKind::kIf:
        LowerIf(in, pos, nullptr, 0);
        return;
      case ir::OpKind::kYield:
        b.op = BOp::kNop;  // while-cond yields are consumed by LowerWhile
        break;
      case ir::OpKind::kCall:
      case ir::OpKind::kOffloadCall:
        b.op = in.kind == ir::OpKind::kCall ? BOp::kCall : BOp::kOffloadCall;
        b.callee = in.callee;
        b.pool_off = static_cast<uint32_t>(out_.arg_pool.size());
        b.pool_len = static_cast<uint32_t>(in.operands.size());
        for (const uint32_t op : in.operands) {
          out_.arg_pool.push_back(op);
        }
        if (in.has_result()) {
          b.has_result = 1;
          b.a = in.result;
        }
        break;
      case ir::OpKind::kReturn:
        b.op = BOp::kReturn;
        if (!in.operands.empty()) {
          b.has_result = 1;
          b.b = in.operands[0];
        }
        b.c = loop_depth_;  // open loop scopes to pop on the way out
        break;
    }
    Emit(b);
  }

  const ir::Function& func_;
  BFunction out_;
  uint32_t loop_depth_ = 0;
  uint32_t num_loop_slots_ = 0;
  uint32_t num_sites_ = 0;
};

}  // namespace

BytecodeModule CompileModule(const ir::Module& module) {
  BytecodeModule out;
  out.fingerprint = ir::ModuleFingerprint(module);
  out.site_base.reserve(module.functions.size() + 1);
  uint32_t base = 0;
  for (const auto& func : module.functions) {
    out.site_base.push_back(base);
    out.funcs.push_back(FunctionCompiler(*func).Compile());
    base += out.funcs.back().num_sites;
  }
  out.site_base.push_back(base);
  return out;
}

}  // namespace mira::interp::bytecode
