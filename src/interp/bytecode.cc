#include "src/interp/bytecode.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "src/interp/compiler.h"
#include "src/ir/ir.h"

namespace mira::interp {

namespace {

// 0 = unresolved; otherwise a valid (non-default) EngineKind. Resolved
// lazily on first use so tests and tools can SetDefaultEngine (or set
// MIRA_INTERP) before the first interpreter runs.
std::atomic<int> g_default_engine{0};

}  // namespace

EngineKind DefaultEngine() {
  int v = g_default_engine.load(std::memory_order_relaxed);
  if (v == 0) {
    const char* env = std::getenv("MIRA_INTERP");
    EngineKind k = env != nullptr ? ParseEngineName(env) : EngineKind::kDefault;
    if (k == EngineKind::kDefault) {
      k = EngineKind::kBytecode;
    }
    int expected = 0;
    g_default_engine.compare_exchange_strong(expected, static_cast<int>(k),
                                             std::memory_order_relaxed);
    v = g_default_engine.load(std::memory_order_relaxed);
  }
  return static_cast<EngineKind>(v);
}

void SetDefaultEngine(EngineKind kind) {
  g_default_engine.store(kind == EngineKind::kDefault ? 0 : static_cast<int>(kind),
                         std::memory_order_relaxed);
}

const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kDefault:
      return "default";
    case EngineKind::kTree:
      return "tree";
    case EngineKind::kBytecode:
      return "bytecode";
  }
  return "?";
}

EngineKind ParseEngineName(std::string_view name) {
  if (name == "tree") {
    return EngineKind::kTree;
  }
  if (name == "bytecode") {
    return EngineKind::kBytecode;
  }
  return EngineKind::kDefault;
}

namespace bytecode {

const char* BOpName(BOp op) {
  switch (op) {
    case BOp::kNop: return "nop";
    case BOp::kConstI: return "const.i";
    case BOp::kConstF: return "const.f";
    case BOp::kAddI: return "add.i";
    case BOp::kSubI: return "sub.i";
    case BOp::kMulI: return "mul.i";
    case BOp::kDivI: return "div.i";
    case BOp::kRemI: return "rem.i";
    case BOp::kMinI: return "min.i";
    case BOp::kMaxI: return "max.i";
    case BOp::kAddF: return "add.f";
    case BOp::kSubF: return "sub.f";
    case BOp::kMulF: return "mul.f";
    case BOp::kDivF: return "div.f";
    case BOp::kRemF: return "rem.f";
    case BOp::kMinF: return "min.f";
    case BOp::kMaxF: return "max.f";
    case BOp::kCmpI: return "cmp.i";
    case BOp::kCmpF: return "cmp.f";
    case BOp::kAnd: return "and";
    case BOp::kOr: return "or";
    case BOp::kXor: return "xor";
    case BOp::kShl: return "shl";
    case BOp::kShr: return "shr";
    case BOp::kSelect: return "select";
    case BOp::kI2F: return "i2f";
    case BOp::kF2I: return "f2i";
    case BOp::kSqrt: return "sqrt";
    case BOp::kExp: return "exp";
    case BOp::kTanh: return "tanh";
    case BOp::kRand: return "rand";
    case BOp::kLocalLoad: return "local.load";
    case BOp::kLocalStore: return "local.store";
    case BOp::kAlloc: return "alloc";
    case BOp::kFree: return "free";
    case BOp::kLifetimeEnd: return "lifetime_end";
    case BOp::kIndex: return "index";
    case BOp::kLoad: return "load";
    case BOp::kStore: return "store";
    case BOp::kPrefetch: return "prefetch";
    case BOp::kEvictHint: return "evict_hint";
    case BOp::kCall: return "call";
    case BOp::kOffloadCall: return "offload_call";
    case BOp::kReturn: return "return";
    case BOp::kJump: return "jump";
    case BOp::kIfBranch: return "if.branch";
    case BOp::kForInit: return "for.init";
    case BOp::kForHead: return "for.head";
    case BOp::kForNext: return "for.next";
    case BOp::kWhileInit: return "while.init";
    case BOp::kWhileHead: return "while.head";
    case BOp::kWhileCond: return "while.cond";
    case BOp::kLoopExit: return "loop.exit";
    case BOp::kIndexLoad: return "index+load";
    case BOp::kIndexStore: return "index+store";
    case BOp::kCmpIfBranch: return "cmp+if.branch";
    case BOp::kCmpWhileCond: return "cmp+while.cond";
  }
  return "?";
}

namespace {

// Process-wide code cache, keyed by module-content fingerprint. Bounded by
// LRU eviction; entries are shared_ptrs, so an evicted module stays alive
// for any interpreter still holding it. Compilation happens under the lock:
// it is orders of magnitude cheaper than one simulation, and serializing
// guarantees concurrent SharedPool workers compile each plan exactly once.
struct CacheEntry {
  std::shared_ptr<const BytecodeModule> module;
  uint64_t stamp = 0;
};

struct CodeCache {
  std::mutex mu;
  std::unordered_map<uint64_t, CacheEntry> entries;
  uint64_t stamp = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

CodeCache& Cache() {
  static CodeCache* cache = new CodeCache();
  return *cache;
}

constexpr size_t kMaxCachedModules = 256;

}  // namespace

std::shared_ptr<const BytecodeModule> SharedBytecode(const ir::Module& module) {
  const uint64_t fp = ir::ModuleFingerprint(module);
  CodeCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  auto it = cache.entries.find(fp);
  if (it != cache.entries.end()) {
    ++cache.hits;
    it->second.stamp = ++cache.stamp;
    return it->second.module;
  }
  ++cache.misses;
  if (cache.entries.size() >= kMaxCachedModules) {
    auto victim = cache.entries.begin();
    for (auto e = cache.entries.begin(); e != cache.entries.end(); ++e) {
      if (e->second.stamp < victim->second.stamp) {
        victim = e;
      }
    }
    cache.entries.erase(victim);
    ++cache.evictions;
  }
  auto compiled = std::make_shared<BytecodeModule>(CompileModule(module));
  cache.entries[fp] = CacheEntry{compiled, ++cache.stamp};
  return compiled;
}

CodeCacheStats GetCodeCacheStats() {
  CodeCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  CodeCacheStats stats;
  stats.hits = cache.hits;
  stats.misses = cache.misses;
  stats.evictions = cache.evictions;
  stats.entries = cache.entries.size();
  return stats;
}

}  // namespace bytecode
}  // namespace mira::interp
