#include "src/interp/interpreter.h"

#include <atomic>
#include <cmath>
#include <cstring>

#include "src/farmem/cluster.h"
#include "src/integrity/integrity.h"
#include "src/support/str.h"

namespace mira::interp {

using support::Status;

namespace {
std::atomic<uint64_t> g_runs{0};
}  // namespace

uint64_t SimulationsRun() { return g_runs.load(std::memory_order_relaxed); }

Interpreter::Interpreter(const ir::Module* module, backends::Backend* backend,
                         InterpOptions options)
    : module_(module),
      backend_(backend),
      integrity_(integrity::ActiveOrNull(backend->net()->integrity())),
      cluster_(backend->net()->cluster()),
      options_(options),
      rng_(options.seed) {
  // Each interpreter run is one logical thread of the telemetry timeline.
  clock_.set_tid(sim::AllocateTid());
}

void PublishRunProfile(telemetry::MetricsRegistry& registry, const RunProfile& profile) {
  for (const auto& [name, fp] : profile.funcs) {
    const std::string prefix = "interp.func." + name;
    registry.SetCounter(prefix + ".calls", fp.calls);
    registry.SetCounter(prefix + ".inclusive_ns", fp.inclusive_ns);
    registry.SetCounter(prefix + ".overhead_ns", fp.overhead_ns);
    registry.SetCounter(prefix + ".mem_accesses", fp.mem_accesses);
  }
  registry.SetCounter("interp.total_ns", profile.total_ns);
  registry.SetCounter("interp.total_overhead_ns", profile.total_overhead_ns);
  registry.SetGauge("interp.overhead_ratio", profile.OverheadRatio());
}

farmem::RemoteAddr Interpreter::ObjectAddr(const std::string& label) const {
  const auto it = first_alloc_addr_.find(label);
  return it == first_alloc_addr_.end() ? farmem::kNullRemoteAddr : it->second;
}

support::Result<uint64_t> Interpreter::Run(std::string_view func_name,
                                           std::vector<uint64_t> args) {
  g_runs.fetch_add(1, std::memory_order_relaxed);
  const ir::Function* func = module_->FindFunction(func_name);
  if (func == nullptr) {
    return Status::NotFound(std::string(func_name));
  }
  uint64_t result = 0;
  const uint64_t t0 = clock_.now_ns();
  if (auto s = CallFunction(module_->FunctionIndex(func_name), args, &result); !s.ok()) {
    return s;
  }
  profile_.total_ns += clock_.now_ns() - t0;
  return result;
}

void Interpreter::ChargeCompute(uint64_t ops) {
  const auto& cost = backend_->cost();
  uint64_t ns = ops * cost.compute_op_ns;
  if (remote_mode_) {
    ns = static_cast<uint64_t>(static_cast<double>(ns) * cost.remote_compute_slowdown);
  }
  clock_.Advance(ns);
}

uint64_t Interpreter::LoadData(farmem::RemoteAddr addr, uint32_t bytes) const {
  uint64_t bits = 0;
  if (cluster_ != nullptr) {
    cluster_->CopyOut(addr, &bits, bytes);
  } else {
    backend_->node()->CopyOut(addr, &bits, bytes);
  }
  return bits;
}

void Interpreter::StoreData(farmem::RemoteAddr addr, uint64_t bits, uint32_t bytes) {
  if (cluster_ != nullptr) {
    cluster_->CopyIn(addr, &bits, bytes);
  } else {
    backend_->node()->CopyIn(addr, &bits, bytes);
  }
  if (integrity_ != nullptr) {
    // Offloaded (remote-mode) stores commit directly at the far node, so
    // their far-side version is already current; cached-mode stores leave a
    // writeback pending until the cache drains them.
    integrity_->CommitStore(addr, bytes, /*through_cache=*/!remote_mode_);
  }
}

void Interpreter::MemAccess(Frame& frame, const ir::Instr& instr, bool is_store) {
  const auto& cost = backend_->cost();
  if (remote_mode_) {
    // Offloaded execution: the data is local to the far node.
    clock_.Advance(cost.native_access_ns);
    return;
  }
  backends::AccessHints hints;
  hints.promoted = instr.mem.promoted;
  hints.full_line_write = instr.mem.full_line_write;
  const farmem::RemoteAddr addr = frame.values[instr.operands[0]];
  const uint64_t t0 = clock_.now_ns();
  if (instr.mem.pinned) {
    backend_->Pin(clock_, addr, instr.mem.bytes);
  }
  if (is_store) {
    backend_->Store(clock_, addr, instr.mem.bytes, hints);
  } else {
    backend_->Load(clock_, addr, instr.mem.bytes, hints);
  }
  if (instr.mem.pinned) {
    backend_->Unpin(clock_, addr, instr.mem.bytes);
  }
  const uint64_t delta = clock_.now_ns() - t0;
  const uint64_t native = cost.native_access_ns;
  const uint64_t overhead = delta > native ? delta - native : 0;
  if (!func_stack_.empty()) {
    FuncProfile& fp = profile_.funcs[func_stack_.back()];
    fp.overhead_ns += overhead;
    ++fp.mem_accesses;
  }
  profile_.total_overhead_ns += overhead;
  if (options_.profiling && overhead > 0) {
    // Non-native cache events carry the (tiny) instrumentation cost.
    clock_.Advance(cost.profile_event_ns);
  }
}

void Interpreter::ServiceBatchGroup(Frame& frame, const ir::Region& region, size_t pos) {
  const ir::Instr& first = region.body[pos];
  const int32_t group = first.mem.batch_group;
  std::vector<std::pair<farmem::RemoteAddr, uint32_t>> accesses;
  for (size_t i = pos; i < region.body.size(); ++i) {
    const ir::Instr& instr = region.body[i];
    if (instr.kind == ir::OpKind::kRmemLoad && instr.mem.batch_group == group) {
      accesses.push_back({frame.values[instr.operands[0]], instr.mem.bytes});
    }
  }
  const uint64_t t0 = clock_.now_ns();
  backend_->LoadBatch(clock_, accesses);
  const uint64_t native = accesses.size() * backend_->cost().native_access_ns;
  const uint64_t delta = clock_.now_ns() - t0;
  const uint64_t overhead = delta > native ? delta - native : 0;
  if (!func_stack_.empty()) {
    FuncProfile& fp = profile_.funcs[func_stack_.back()];
    fp.overhead_ns += overhead;
    fp.mem_accesses += accesses.size();
  }
  profile_.total_overhead_ns += overhead;
  frame.batched_groups.push_back(group);
}

support::Status Interpreter::CallFunction(uint32_t index, const std::vector<uint64_t>& args,
                                          uint64_t* result_bits) {
  MIRA_CHECK(index < module_->functions.size());
  const ir::Function& func = *module_->functions[index];
  if (call_depth_ > 64) {
    return Status::Internal("call depth exceeded (recursion not supported)");
  }
  if (args.size() != func.param_types.size()) {
    return Status::InvalidArgument(
        support::StrFormat("call @%s: bad arg count", func.name.c_str()));
  }
  Frame frame;
  frame.func = &func;
  frame.values.resize(func.value_types.size(), 0);
  frame.locals.resize(func.local_slots, 0);
  for (size_t i = 0; i < args.size(); ++i) {
    frame.values[func.params[i]] = args[i];
  }
  ++call_depth_;
  func_stack_.push_back(func.name);
  telemetry::ProfileScope prof_scope(clock_.tid(), func.name);
  FuncProfile& fp = ProfileOf(func);
  ++fp.calls;
  if (options_.profiling) {
    clock_.Advance(backend_->cost().profile_event_ns);  // entry event
  }
  auto& trace = telemetry::Trace();
  const bool traced = trace.enabled();
  if (traced) {
    trace.Begin(clock_, func.name, "interp");
  }
  const uint64_t t0 = clock_.now_ns();
  Flow flow = Flow::kNormal;
  Status status = ExecRegion(frame, func.body, &flow);
  fp.inclusive_ns += clock_.now_ns() - t0;
  if (traced) {
    trace.End(clock_);
  }
  if (options_.profiling) {
    clock_.Advance(backend_->cost().profile_event_ns);  // exit event
  }
  func_stack_.pop_back();
  --call_depth_;
  if (!status.ok()) {
    return status;
  }
  if (result_bits != nullptr) {
    *result_bits = frame.ret_bits;
  }
  return Status::Ok();
}

support::Status Interpreter::ExecRegion(Frame& frame, const ir::Region& region, Flow* flow) {
  for (size_t i = 0; i < region.body.size(); ++i) {
    if (auto s = ExecInstr(frame, region, i, flow); !s.ok()) {
      return s;
    }
    if (*flow == Flow::kReturned) {
      return Status::Ok();
    }
  }
  return Status::Ok();
}

support::Status Interpreter::ExecInstr(Frame& frame, const ir::Region& region, size_t pos,
                                       Flow* flow) {
  const ir::Instr& instr = region.body[pos];
  ++instrs_executed_;
  if (options_.max_instrs != 0 && instrs_executed_ > options_.max_instrs) {
    return Status::Internal("instruction budget exceeded");
  }
  if (integrity_ != nullptr && !integrity_->fatal().ok()) {
    // A line failed its integrity check and could not be healed: abort the
    // run with kDataLoss rather than computing on quarantined bytes.
    return integrity_->fatal();
  }
  auto& vals = frame.values;
  auto I = [&](size_t i) { return static_cast<int64_t>(vals[instr.operands[i]]); };
  auto F = [&](size_t i) { return UnpackF64(vals[instr.operands[i]]); };
  auto SetI = [&](int64_t v) { vals[instr.result] = static_cast<uint64_t>(v); };
  auto SetF = [&](double v) { vals[instr.result] = PackF64(v); };

  switch (instr.kind) {
    case ir::OpKind::kConstI:
      SetI(instr.i_attr);
      break;
    case ir::OpKind::kConstF:
      SetF(instr.f_attr);
      break;
    case ir::OpKind::kAdd:
    case ir::OpKind::kSub:
    case ir::OpKind::kMul:
    case ir::OpKind::kDiv:
    case ir::OpKind::kRem:
    case ir::OpKind::kMin:
    case ir::OpKind::kMax: {
      ChargeCompute(1);
      if (instr.type == ir::Type::kF64) {
        const double a = F(0), b = F(1);
        switch (instr.kind) {
          case ir::OpKind::kAdd:
            SetF(a + b);
            break;
          case ir::OpKind::kSub:
            SetF(a - b);
            break;
          case ir::OpKind::kMul:
            SetF(a * b);
            break;
          case ir::OpKind::kDiv:
            SetF(b == 0.0 ? 0.0 : a / b);
            break;
          case ir::OpKind::kRem:
            SetF(b == 0.0 ? 0.0 : std::fmod(a, b));
            break;
          case ir::OpKind::kMin:
            SetF(a < b ? a : b);
            break;
          case ir::OpKind::kMax:
            SetF(a > b ? a : b);
            break;
          default:
            MIRA_UNREACHABLE("float binop");
        }
      } else {
        const int64_t a = I(0), b = I(1);
        switch (instr.kind) {
          // Two's-complement wraparound semantics (the workloads' LCG mixing
          // relies on it); compute unsigned to keep UBSan quiet.
          case ir::OpKind::kAdd:
            SetI(static_cast<int64_t>(static_cast<uint64_t>(a) + static_cast<uint64_t>(b)));
            break;
          case ir::OpKind::kSub:
            SetI(static_cast<int64_t>(static_cast<uint64_t>(a) - static_cast<uint64_t>(b)));
            break;
          case ir::OpKind::kMul:
            SetI(static_cast<int64_t>(static_cast<uint64_t>(a) * static_cast<uint64_t>(b)));
            break;
          case ir::OpKind::kDiv:
            SetI(b == 0 ? 0 : a / b);
            break;
          case ir::OpKind::kRem:
            SetI(b == 0 ? 0 : a % b);
            break;
          case ir::OpKind::kMin:
            SetI(a < b ? a : b);
            break;
          case ir::OpKind::kMax:
            SetI(a > b ? a : b);
            break;
          default:
            MIRA_UNREACHABLE("int binop");
        }
      }
      break;
    }
    case ir::OpKind::kCmpEq:
    case ir::OpKind::kCmpNe:
    case ir::OpKind::kCmpLt:
    case ir::OpKind::kCmpLe:
    case ir::OpKind::kCmpGt:
    case ir::OpKind::kCmpGe: {
      ChargeCompute(1);
      const ir::Type t = frame.func->ValueType(instr.operands[0]);
      bool r = false;
      if (t == ir::Type::kF64) {
        const double a = F(0), b = F(1);
        switch (instr.kind) {
          case ir::OpKind::kCmpEq:
            r = a == b;
            break;
          case ir::OpKind::kCmpNe:
            r = a != b;
            break;
          case ir::OpKind::kCmpLt:
            r = a < b;
            break;
          case ir::OpKind::kCmpLe:
            r = a <= b;
            break;
          case ir::OpKind::kCmpGt:
            r = a > b;
            break;
          case ir::OpKind::kCmpGe:
            r = a >= b;
            break;
          default:
            MIRA_UNREACHABLE("cmp");
        }
      } else {
        const int64_t a = I(0), b = I(1);
        switch (instr.kind) {
          case ir::OpKind::kCmpEq:
            r = a == b;
            break;
          case ir::OpKind::kCmpNe:
            r = a != b;
            break;
          case ir::OpKind::kCmpLt:
            r = a < b;
            break;
          case ir::OpKind::kCmpLe:
            r = a <= b;
            break;
          case ir::OpKind::kCmpGt:
            r = a > b;
            break;
          case ir::OpKind::kCmpGe:
            r = a >= b;
            break;
          default:
            MIRA_UNREACHABLE("cmp");
        }
      }
      SetI(r ? 1 : 0);
      break;
    }
    case ir::OpKind::kAnd:
      ChargeCompute(1);
      SetI(I(0) & I(1));
      break;
    case ir::OpKind::kOr:
      ChargeCompute(1);
      SetI(I(0) | I(1));
      break;
    case ir::OpKind::kXor:
      ChargeCompute(1);
      SetI(I(0) ^ I(1));
      break;
    case ir::OpKind::kShl:
      ChargeCompute(1);
      SetI(I(0) << (I(1) & 63));
      break;
    case ir::OpKind::kShr:
      ChargeCompute(1);
      SetI(static_cast<int64_t>(static_cast<uint64_t>(I(0)) >> (I(1) & 63)));
      break;
    case ir::OpKind::kSelect:
      ChargeCompute(1);
      vals[instr.result] = I(0) != 0 ? vals[instr.operands[1]] : vals[instr.operands[2]];
      break;
    case ir::OpKind::kI2F:
      ChargeCompute(1);
      SetF(static_cast<double>(I(0)));
      break;
    case ir::OpKind::kF2I:
      ChargeCompute(1);
      SetI(static_cast<int64_t>(F(0)));
      break;
    case ir::OpKind::kSqrt:
      ChargeCompute(4);
      SetF(std::sqrt(F(0)));
      break;
    case ir::OpKind::kExp:
      ChargeCompute(8);
      SetF(std::exp(F(0)));
      break;
    case ir::OpKind::kTanh:
      ChargeCompute(8);
      SetF(std::tanh(F(0)));
      break;
    case ir::OpKind::kRand: {
      ChargeCompute(2);
      const int64_t bound = I(0);
      SetI(bound <= 0 ? 0 : static_cast<int64_t>(rng_.NextBelow(static_cast<uint64_t>(bound))));
      break;
    }
    case ir::OpKind::kLocalAlloc:
      break;  // slots pre-allocated in the frame
    case ir::OpKind::kLocalLoad:
      ChargeCompute(1);
      vals[instr.result] = frame.locals[static_cast<size_t>(instr.i_attr)];
      break;
    case ir::OpKind::kLocalStore:
      ChargeCompute(1);
      frame.locals[static_cast<size_t>(instr.i_attr)] = vals[instr.operands[0]];
      break;
    case ir::OpKind::kAlloc: {
      const uint64_t bytes = vals[instr.operands[0]];
      auto addr = backend_->Alloc(clock_, bytes, instr.s_attr,
                                  static_cast<uint32_t>(instr.i_attr));
      if (!addr.ok()) {
        return addr.status();
      }
      vals[instr.result] = addr.value();
      profile_.alloc_bytes[instr.s_attr] += bytes;
      first_alloc_addr_.emplace(instr.s_attr, addr.value());
      if (options_.profiling) {
        clock_.Advance(backend_->cost().profile_event_ns);  // allocation-site event
      }
      break;
    }
    case ir::OpKind::kFree:
      backend_->Free(clock_, vals[instr.operands[0]]);
      break;
    case ir::OpKind::kLifetimeEnd:
      if (!remote_mode_) {
        backend_->LifetimeEnd(clock_, vals[instr.operands[0]]);
      }
      break;
    case ir::OpKind::kIndex:
      ChargeCompute(1);
      vals[instr.result] = vals[instr.operands[0]] +
                           static_cast<uint64_t>(I(1) * instr.i_attr + instr.i_attr2);
      break;
    case ir::OpKind::kLoad:
    case ir::OpKind::kRmemLoad: {
      if (instr.mem.batch_group >= 0 && !remote_mode_) {
        bool serviced = false;
        for (const int32_t g : frame.batched_groups) {
          if (g == instr.mem.batch_group) {
            serviced = true;
            break;
          }
        }
        if (!serviced) {
          ServiceBatchGroup(frame, region, pos);
        }
      } else {
        MemAccess(frame, instr, /*is_store=*/false);
      }
      vals[instr.result] = LoadData(vals[instr.operands[0]], instr.mem.bytes);
      break;
    }
    case ir::OpKind::kStore:
    case ir::OpKind::kRmemStore:
      MemAccess(frame, instr, /*is_store=*/true);
      StoreData(vals[instr.operands[0]], vals[instr.operands[1]], instr.mem.bytes);
      break;
    case ir::OpKind::kPrefetch:
      if (!remote_mode_) {
        backend_->Prefetch(clock_, vals[instr.operands[0]],
                           static_cast<uint32_t>(instr.mem.bytes));
      }
      break;
    case ir::OpKind::kEvictHint:
      if (!remote_mode_) {
        backend_->EvictHint(clock_, vals[instr.operands[0]],
                            static_cast<uint32_t>(instr.mem.bytes));
      }
      break;
    case ir::OpKind::kFor: {
      telemetry::ProfileScope prof_scope(clock_.tid(), "for", pos);
      const int64_t lo = I(0);
      const int64_t hi = I(1);
      const int64_t step = I(2);
      MIRA_CHECK_MSG(step > 0, "for step must be positive");
      const ir::Region& body = instr.regions[0];
      const uint32_t iv = body.args[0];
      for (int64_t i = lo; i < hi; i += step) {
        ChargeCompute(1);  // induction update + bound check
        vals[iv] = static_cast<uint64_t>(i);
        frame.batched_groups.clear();
        if (auto s = ExecRegion(frame, body, flow); !s.ok()) {
          return s;
        }
        if (*flow == Flow::kReturned) {
          return Status::Ok();
        }
      }
      break;
    }
    case ir::OpKind::kWhile: {
      telemetry::ProfileScope prof_scope(clock_.tid(), "while", pos);
      const ir::Region& cond = instr.regions[0];
      const ir::Region& body = instr.regions[1];
      while (true) {
        ChargeCompute(1);
        if (auto s = ExecRegion(frame, cond, flow); !s.ok()) {
          return s;
        }
        if (*flow == Flow::kReturned) {
          return Status::Ok();
        }
        const ir::Instr& yield = cond.body.back();
        if (vals[yield.operands[0]] == 0) {
          break;
        }
        frame.batched_groups.clear();
        if (auto s = ExecRegion(frame, body, flow); !s.ok()) {
          return s;
        }
        if (*flow == Flow::kReturned) {
          return Status::Ok();
        }
      }
      break;
    }
    case ir::OpKind::kIf: {
      ChargeCompute(1);
      const ir::Region& taken = I(0) != 0 ? instr.regions[0] : instr.regions[1];
      if (auto s = ExecRegion(frame, taken, flow); !s.ok()) {
        return s;
      }
      break;
    }
    case ir::OpKind::kYield:
      break;
    case ir::OpKind::kCall: {
      std::vector<uint64_t> args;
      args.reserve(instr.operands.size());
      for (const uint32_t op : instr.operands) {
        args.push_back(vals[op]);
      }
      uint64_t result = 0;
      if (auto s = CallFunction(instr.callee, args, &result); !s.ok()) {
        return s;
      }
      if (instr.has_result()) {
        vals[instr.result] = result;
      }
      break;
    }
    case ir::OpKind::kOffloadCall: {
      std::vector<uint64_t> args;
      args.reserve(instr.operands.size());
      for (const uint32_t op : instr.operands) {
        args.push_back(vals[op]);
      }
      uint64_t result = 0;
      bool remote = !remote_mode_ && backend_->SupportsOffload();
      if (remote && !backend_->OffloadAdmission(clock_)) {
        // Offload faults strike at initiation: the request leg could not be
        // admitted, so the callee runs locally — its data-plane effects are
        // identical, only the timing differs (no remote side effects exist).
        remote = false;
        ++offload_fallbacks_;
        telemetry::Metrics().AddCounter("interp.offload.local_fallbacks", 1);
        auto& trace = telemetry::Trace();
        if (trace.enabled()) {
          trace.Instant(clock_, "interp.offload.fallback", "interp",
                        support::StrFormat("{\"callee\":%u}", instr.callee));
        }
      }
      if (!remote) {
        // Already on the far node, backend can't offload, or admission
        // failed: plain (local) call.
        if (auto s = CallFunction(instr.callee, args, &result); !s.ok()) {
          return s;
        }
      } else {
        // Execute remotely on a shadow clock to measure service time, then
        // charge flush + RPC to the real clock.
        remote_mode_ = true;
        const uint64_t t0 = clock_.now_ns();
        auto s = CallFunction(instr.callee, args, &result);
        remote_mode_ = false;
        if (!s.ok()) {
          return s;
        }
        const uint64_t service = clock_.now_ns() - t0;
        clock_.Reset(t0);  // rewind: the remote work happens inside the RPC
        const uint32_t req = static_cast<uint32_t>(8 * args.size() + 16);
        backend_->OffloadCall(clock_, req, 16, service);
      }
      if (instr.has_result()) {
        vals[instr.result] = result;
      }
      break;
    }
    case ir::OpKind::kReturn:
      if (!instr.operands.empty()) {
        frame.ret_bits = vals[instr.operands[0]];
      }
      frame.returned = true;
      *flow = Flow::kReturned;
      break;
  }
  return Status::Ok();
}

}  // namespace mira::interp
