#include "src/interp/interpreter.h"

#include <atomic>
#include <cmath>
#include <cstring>

#include "src/farmem/cluster.h"
#include "src/integrity/integrity.h"
#include "src/support/str.h"

namespace mira::interp {

using support::Status;

namespace {
std::atomic<uint64_t> g_runs{0};

// Comparison evaluators shared by the bytecode engine's kCmp* handlers and
// the fused cmp+branch superinstructions. `pred` is the raw ir::OpKind.
bool EvalCmpI(uint8_t pred, int64_t a, int64_t b) {
  switch (static_cast<ir::OpKind>(pred)) {
    case ir::OpKind::kCmpEq:
      return a == b;
    case ir::OpKind::kCmpNe:
      return a != b;
    case ir::OpKind::kCmpLt:
      return a < b;
    case ir::OpKind::kCmpLe:
      return a <= b;
    case ir::OpKind::kCmpGt:
      return a > b;
    case ir::OpKind::kCmpGe:
      return a >= b;
    default:
      MIRA_UNREACHABLE("cmp pred");
  }
}

bool EvalCmpF(uint8_t pred, double a, double b) {
  switch (static_cast<ir::OpKind>(pred)) {
    case ir::OpKind::kCmpEq:
      return a == b;
    case ir::OpKind::kCmpNe:
      return a != b;
    case ir::OpKind::kCmpLt:
      return a < b;
    case ir::OpKind::kCmpLe:
      return a <= b;
    case ir::OpKind::kCmpGt:
      return a > b;
    case ir::OpKind::kCmpGe:
      return a >= b;
    default:
      MIRA_UNREACHABLE("cmp pred");
  }
}
}  // namespace

uint64_t SimulationsRun() { return g_runs.load(std::memory_order_relaxed); }

Interpreter::Interpreter(const ir::Module* module, backends::Backend* backend,
                         InterpOptions options)
    : module_(module),
      backend_(backend),
      integrity_(integrity::ActiveOrNull(backend->net()->integrity())),
      cluster_(backend->net()->cluster()),
      options_(options),
      rng_(options.seed),
      engine_(ResolveEngine(options.engine)) {
  // Each interpreter run is one logical thread of the telemetry timeline.
  clock_.set_tid(sim::AllocateTid());
  func_ledger_.resize(module_->functions.size());
}

void PublishRunProfile(telemetry::MetricsRegistry& registry, const RunProfile& profile) {
  for (const auto& [name, fp] : profile.funcs) {
    const std::string prefix = "interp.func." + name;
    registry.SetCounter(prefix + ".calls", fp.calls);
    registry.SetCounter(prefix + ".inclusive_ns", fp.inclusive_ns);
    registry.SetCounter(prefix + ".overhead_ns", fp.overhead_ns);
    registry.SetCounter(prefix + ".mem_accesses", fp.mem_accesses);
  }
  registry.SetCounter("interp.total_ns", profile.total_ns);
  registry.SetCounter("interp.total_overhead_ns", profile.total_overhead_ns);
  registry.SetGauge("interp.overhead_ratio", profile.OverheadRatio());
}

farmem::RemoteAddr Interpreter::ObjectAddr(const std::string& label) const {
  const auto it = first_alloc_addr_.find(label);
  return it == first_alloc_addr_.end() ? farmem::kNullRemoteAddr : it->second;
}

support::Result<uint64_t> Interpreter::Run(std::string_view func_name,
                                           std::vector<uint64_t> args) {
  g_runs.fetch_add(1, std::memory_order_relaxed);
  const ir::Function* func = module_->FindFunction(func_name);
  if (func == nullptr) {
    return Status::NotFound(std::string(func_name));
  }
  if (engine_ == EngineKind::kBytecode && bcode_ == nullptr) {
    bcode_ = bytecode::SharedBytecode(*module_);
    sites_.resize(bcode_->site_base.back());
  }
  const uint32_t index = module_->FunctionIndex(func_name);
  uint64_t result = 0;
  const uint64_t t0 = clock_.now_ns();
  const Status s = engine_ == EngineKind::kBytecode
                       ? RunBytecodeFunction(index, args, &result)
                       : CallFunction(index, args, &result);
  FoldFuncLedger();
  if (!s.ok()) {
    return s;
  }
  profile_.total_ns += clock_.now_ns() - t0;
  return result;
}

void Interpreter::FoldFuncLedger() {
  for (size_t i = 0; i < func_ledger_.size(); ++i) {
    const FuncProfile& fp = func_ledger_[i];
    if (fp.calls != 0) {
      profile_.funcs[module_->functions[i]->name] = fp;
    }
  }
}

void Interpreter::ChargeCompute(uint64_t ops) {
  const auto& cost = backend_->cost();
  uint64_t ns = ops * cost.compute_op_ns;
  if (remote_mode_) {
    ns = static_cast<uint64_t>(static_cast<double>(ns) * cost.remote_compute_slowdown);
  }
  clock_.Advance(ns);
}

uint64_t Interpreter::LoadData(farmem::RemoteAddr addr, uint32_t bytes) const {
  uint64_t bits = 0;
  if (cluster_ != nullptr) {
    cluster_->CopyOut(addr, &bits, bytes);
  } else {
    backend_->node()->CopyOut(addr, &bits, bytes);
  }
  return bits;
}

void Interpreter::StoreData(farmem::RemoteAddr addr, uint64_t bits, uint32_t bytes) {
  if (cluster_ != nullptr) {
    cluster_->CopyIn(addr, &bits, bytes);
  } else {
    backend_->node()->CopyIn(addr, &bits, bytes);
  }
  if (integrity_ != nullptr) {
    // Offloaded (remote-mode) stores commit directly at the far node, so
    // their far-side version is already current; cached-mode stores leave a
    // writeback pending until the cache drains them.
    integrity_->CommitStore(addr, bytes, /*through_cache=*/!remote_mode_);
  }
}

void Interpreter::MemAccess(Frame& frame, const ir::Instr& instr, bool is_store) {
  const auto& cost = backend_->cost();
  if (remote_mode_) {
    // Offloaded execution: the data is local to the far node.
    clock_.Advance(cost.native_access_ns);
    return;
  }
  backends::AccessHints hints;
  hints.promoted = instr.mem.promoted;
  hints.full_line_write = instr.mem.full_line_write;
  const farmem::RemoteAddr addr = frame.values[instr.operands[0]];
  const uint64_t t0 = clock_.now_ns();
  if (instr.mem.pinned) {
    backend_->Pin(clock_, addr, instr.mem.bytes);
  }
  if (is_store) {
    backend_->Store(clock_, addr, instr.mem.bytes, hints);
  } else {
    backend_->Load(clock_, addr, instr.mem.bytes, hints);
  }
  if (instr.mem.pinned) {
    backend_->Unpin(clock_, addr, instr.mem.bytes);
  }
  const uint64_t delta = clock_.now_ns() - t0;
  const uint64_t native = cost.native_access_ns;
  const uint64_t overhead = delta > native ? delta - native : 0;
  FuncProfile& fp = func_ledger_[frame.func_index];
  fp.overhead_ns += overhead;
  ++fp.mem_accesses;
  profile_.total_overhead_ns += overhead;
  if (options_.profiling && overhead > 0) {
    // Non-native cache events carry the (tiny) instrumentation cost.
    clock_.Advance(cost.profile_event_ns);
  }
}

void Interpreter::EnsureBatchTable() {
  if (batch_table_built_) {
    return;
  }
  batch_table_built_ = true;
  // Depth-first over every region: for each batch-group trigger (a grouped
  // load), record the members a trigger-time scan of the rest of its region
  // would have found — the scan now happens once, not per loop iteration.
  struct Walker {
    Interpreter* self;
    void Walk(const ir::Region& region) {
      for (size_t pos = 0; pos < region.body.size(); ++pos) {
        const ir::Instr& instr = region.body[pos];
        if ((instr.kind == ir::OpKind::kLoad || instr.kind == ir::OpKind::kRmemLoad) &&
            instr.mem.batch_group >= 0) {
          BatchSpan span;
          span.off = static_cast<uint32_t>(self->batch_members_.size());
          for (size_t i = pos; i < region.body.size(); ++i) {
            const ir::Instr& member = region.body[i];
            if (member.kind == ir::OpKind::kRmemLoad &&
                member.mem.batch_group == instr.mem.batch_group) {
              self->batch_members_.push_back({member.operands[0], member.mem.bytes});
            }
          }
          span.len = static_cast<uint32_t>(self->batch_members_.size()) - span.off;
          self->batch_spans_.emplace(&instr, span);
        }
        for (const ir::Region& sub : instr.regions) {
          Walk(sub);
        }
      }
    }
  };
  Walker walker{this};
  for (const auto& func : module_->functions) {
    walker.Walk(func->body);
  }
}

void Interpreter::ServiceBatchGroup(Frame& frame, const ir::Region& region, size_t pos) {
  EnsureBatchTable();
  const ir::Instr& first = region.body[pos];
  const BatchSpan span = batch_spans_.find(&first)->second;
  std::vector<std::pair<farmem::RemoteAddr, uint32_t>> accesses;
  accesses.reserve(span.len);
  for (uint32_t i = 0; i < span.len; ++i) {
    const bytecode::BatchMember& member = batch_members_[span.off + i];
    accesses.push_back({frame.values[member.value], member.bytes});
  }
  const uint64_t t0 = clock_.now_ns();
  backend_->LoadBatch(clock_, accesses);
  const uint64_t native = accesses.size() * backend_->cost().native_access_ns;
  const uint64_t delta = clock_.now_ns() - t0;
  const uint64_t overhead = delta > native ? delta - native : 0;
  FuncProfile& fp = func_ledger_[frame.func_index];
  fp.overhead_ns += overhead;
  fp.mem_accesses += accesses.size();
  profile_.total_overhead_ns += overhead;
  frame.batched_groups.push_back(first.mem.batch_group);
}

support::Status Interpreter::CallFunction(uint32_t index, const std::vector<uint64_t>& args,
                                          uint64_t* result_bits) {
  MIRA_CHECK(index < module_->functions.size());
  const ir::Function& func = *module_->functions[index];
  if (call_depth_ > 64) {
    return Status::Internal("call depth exceeded (recursion not supported)");
  }
  if (args.size() != func.param_types.size()) {
    return Status::InvalidArgument(
        support::StrFormat("call @%s: bad arg count", func.name.c_str()));
  }
  Frame frame;
  frame.func = &func;
  frame.func_index = index;
  frame.values.resize(func.value_types.size(), 0);
  frame.locals.resize(func.local_slots, 0);
  for (size_t i = 0; i < args.size(); ++i) {
    frame.values[func.params[i]] = args[i];
  }
  ++call_depth_;
  telemetry::ProfileScope prof_scope(clock_.tid(), func.name);
  FuncProfile& fp = func_ledger_[index];
  ++fp.calls;
  if (options_.profiling) {
    clock_.Advance(backend_->cost().profile_event_ns);  // entry event
  }
  auto& trace = telemetry::Trace();
  const bool traced = trace.enabled();
  if (traced) {
    trace.Begin(clock_, func.name, "interp");
  }
  const uint64_t t0 = clock_.now_ns();
  Flow flow = Flow::kNormal;
  Status status = ExecRegion(frame, func.body, &flow);
  fp.inclusive_ns += clock_.now_ns() - t0;
  if (traced) {
    trace.End(clock_);
  }
  if (options_.profiling) {
    clock_.Advance(backend_->cost().profile_event_ns);  // exit event
  }
  --call_depth_;
  if (!status.ok()) {
    return status;
  }
  if (result_bits != nullptr) {
    *result_bits = frame.ret_bits;
  }
  return Status::Ok();
}

support::Status Interpreter::ExecRegion(Frame& frame, const ir::Region& region, Flow* flow) {
  for (size_t i = 0; i < region.body.size(); ++i) {
    if (auto s = ExecInstr(frame, region, i, flow); !s.ok()) {
      return s;
    }
    if (*flow == Flow::kReturned) {
      return Status::Ok();
    }
  }
  return Status::Ok();
}

support::Status Interpreter::ExecInstr(Frame& frame, const ir::Region& region, size_t pos,
                                       Flow* flow) {
  const ir::Instr& instr = region.body[pos];
  ++instrs_executed_;
  if (options_.max_instrs != 0 && instrs_executed_ > options_.max_instrs) {
    return Status::Internal("instruction budget exceeded");
  }
  if (integrity_ != nullptr && !integrity_->fatal().ok()) {
    // A line failed its integrity check and could not be healed: abort the
    // run with kDataLoss rather than computing on quarantined bytes.
    return integrity_->fatal();
  }
  auto& vals = frame.values;
  auto I = [&](size_t i) { return static_cast<int64_t>(vals[instr.operands[i]]); };
  auto F = [&](size_t i) { return UnpackF64(vals[instr.operands[i]]); };
  auto SetI = [&](int64_t v) { vals[instr.result] = static_cast<uint64_t>(v); };
  auto SetF = [&](double v) { vals[instr.result] = PackF64(v); };

  switch (instr.kind) {
    case ir::OpKind::kConstI:
      SetI(instr.i_attr);
      break;
    case ir::OpKind::kConstF:
      SetF(instr.f_attr);
      break;
    case ir::OpKind::kAdd:
    case ir::OpKind::kSub:
    case ir::OpKind::kMul:
    case ir::OpKind::kDiv:
    case ir::OpKind::kRem:
    case ir::OpKind::kMin:
    case ir::OpKind::kMax: {
      ChargeCompute(1);
      if (instr.type == ir::Type::kF64) {
        const double a = F(0), b = F(1);
        switch (instr.kind) {
          case ir::OpKind::kAdd:
            SetF(a + b);
            break;
          case ir::OpKind::kSub:
            SetF(a - b);
            break;
          case ir::OpKind::kMul:
            SetF(a * b);
            break;
          case ir::OpKind::kDiv:
            SetF(b == 0.0 ? 0.0 : a / b);
            break;
          case ir::OpKind::kRem:
            SetF(b == 0.0 ? 0.0 : std::fmod(a, b));
            break;
          case ir::OpKind::kMin:
            SetF(a < b ? a : b);
            break;
          case ir::OpKind::kMax:
            SetF(a > b ? a : b);
            break;
          default:
            MIRA_UNREACHABLE("float binop");
        }
      } else {
        const int64_t a = I(0), b = I(1);
        switch (instr.kind) {
          // Two's-complement wraparound semantics (the workloads' LCG mixing
          // relies on it); compute unsigned to keep UBSan quiet.
          case ir::OpKind::kAdd:
            SetI(static_cast<int64_t>(static_cast<uint64_t>(a) + static_cast<uint64_t>(b)));
            break;
          case ir::OpKind::kSub:
            SetI(static_cast<int64_t>(static_cast<uint64_t>(a) - static_cast<uint64_t>(b)));
            break;
          case ir::OpKind::kMul:
            SetI(static_cast<int64_t>(static_cast<uint64_t>(a) * static_cast<uint64_t>(b)));
            break;
          case ir::OpKind::kDiv:
            SetI(b == 0 ? 0 : a / b);
            break;
          case ir::OpKind::kRem:
            SetI(b == 0 ? 0 : a % b);
            break;
          case ir::OpKind::kMin:
            SetI(a < b ? a : b);
            break;
          case ir::OpKind::kMax:
            SetI(a > b ? a : b);
            break;
          default:
            MIRA_UNREACHABLE("int binop");
        }
      }
      break;
    }
    case ir::OpKind::kCmpEq:
    case ir::OpKind::kCmpNe:
    case ir::OpKind::kCmpLt:
    case ir::OpKind::kCmpLe:
    case ir::OpKind::kCmpGt:
    case ir::OpKind::kCmpGe: {
      ChargeCompute(1);
      const ir::Type t = frame.func->ValueType(instr.operands[0]);
      bool r = false;
      if (t == ir::Type::kF64) {
        const double a = F(0), b = F(1);
        switch (instr.kind) {
          case ir::OpKind::kCmpEq:
            r = a == b;
            break;
          case ir::OpKind::kCmpNe:
            r = a != b;
            break;
          case ir::OpKind::kCmpLt:
            r = a < b;
            break;
          case ir::OpKind::kCmpLe:
            r = a <= b;
            break;
          case ir::OpKind::kCmpGt:
            r = a > b;
            break;
          case ir::OpKind::kCmpGe:
            r = a >= b;
            break;
          default:
            MIRA_UNREACHABLE("cmp");
        }
      } else {
        const int64_t a = I(0), b = I(1);
        switch (instr.kind) {
          case ir::OpKind::kCmpEq:
            r = a == b;
            break;
          case ir::OpKind::kCmpNe:
            r = a != b;
            break;
          case ir::OpKind::kCmpLt:
            r = a < b;
            break;
          case ir::OpKind::kCmpLe:
            r = a <= b;
            break;
          case ir::OpKind::kCmpGt:
            r = a > b;
            break;
          case ir::OpKind::kCmpGe:
            r = a >= b;
            break;
          default:
            MIRA_UNREACHABLE("cmp");
        }
      }
      SetI(r ? 1 : 0);
      break;
    }
    case ir::OpKind::kAnd:
      ChargeCompute(1);
      SetI(I(0) & I(1));
      break;
    case ir::OpKind::kOr:
      ChargeCompute(1);
      SetI(I(0) | I(1));
      break;
    case ir::OpKind::kXor:
      ChargeCompute(1);
      SetI(I(0) ^ I(1));
      break;
    case ir::OpKind::kShl:
      ChargeCompute(1);
      SetI(I(0) << (I(1) & 63));
      break;
    case ir::OpKind::kShr:
      ChargeCompute(1);
      SetI(static_cast<int64_t>(static_cast<uint64_t>(I(0)) >> (I(1) & 63)));
      break;
    case ir::OpKind::kSelect:
      ChargeCompute(1);
      vals[instr.result] = I(0) != 0 ? vals[instr.operands[1]] : vals[instr.operands[2]];
      break;
    case ir::OpKind::kI2F:
      ChargeCompute(1);
      SetF(static_cast<double>(I(0)));
      break;
    case ir::OpKind::kF2I:
      ChargeCompute(1);
      SetI(static_cast<int64_t>(F(0)));
      break;
    case ir::OpKind::kSqrt:
      ChargeCompute(4);
      SetF(std::sqrt(F(0)));
      break;
    case ir::OpKind::kExp:
      ChargeCompute(8);
      SetF(std::exp(F(0)));
      break;
    case ir::OpKind::kTanh:
      ChargeCompute(8);
      SetF(std::tanh(F(0)));
      break;
    case ir::OpKind::kRand: {
      ChargeCompute(2);
      const int64_t bound = I(0);
      SetI(bound <= 0 ? 0 : static_cast<int64_t>(rng_.NextBelow(static_cast<uint64_t>(bound))));
      break;
    }
    case ir::OpKind::kLocalAlloc:
      break;  // slots pre-allocated in the frame
    case ir::OpKind::kLocalLoad:
      ChargeCompute(1);
      vals[instr.result] = frame.locals[static_cast<size_t>(instr.i_attr)];
      break;
    case ir::OpKind::kLocalStore:
      ChargeCompute(1);
      frame.locals[static_cast<size_t>(instr.i_attr)] = vals[instr.operands[0]];
      break;
    case ir::OpKind::kAlloc: {
      const uint64_t bytes = vals[instr.operands[0]];
      auto addr = backend_->Alloc(clock_, bytes, instr.s_attr,
                                  static_cast<uint32_t>(instr.i_attr));
      if (!addr.ok()) {
        return addr.status();
      }
      vals[instr.result] = addr.value();
      profile_.alloc_bytes[instr.s_attr] += bytes;
      first_alloc_addr_.emplace(instr.s_attr, addr.value());
      if (options_.profiling) {
        clock_.Advance(backend_->cost().profile_event_ns);  // allocation-site event
      }
      break;
    }
    case ir::OpKind::kFree:
      backend_->Free(clock_, vals[instr.operands[0]]);
      break;
    case ir::OpKind::kLifetimeEnd:
      if (!remote_mode_) {
        backend_->LifetimeEnd(clock_, vals[instr.operands[0]]);
      }
      break;
    case ir::OpKind::kIndex:
      ChargeCompute(1);
      vals[instr.result] = vals[instr.operands[0]] +
                           static_cast<uint64_t>(I(1) * instr.i_attr + instr.i_attr2);
      break;
    case ir::OpKind::kLoad:
    case ir::OpKind::kRmemLoad: {
      if (instr.mem.batch_group >= 0 && !remote_mode_) {
        bool serviced = false;
        for (const int32_t g : frame.batched_groups) {
          if (g == instr.mem.batch_group) {
            serviced = true;
            break;
          }
        }
        if (!serviced) {
          ServiceBatchGroup(frame, region, pos);
        }
      } else {
        MemAccess(frame, instr, /*is_store=*/false);
      }
      vals[instr.result] = LoadData(vals[instr.operands[0]], instr.mem.bytes);
      break;
    }
    case ir::OpKind::kStore:
    case ir::OpKind::kRmemStore:
      MemAccess(frame, instr, /*is_store=*/true);
      StoreData(vals[instr.operands[0]], vals[instr.operands[1]], instr.mem.bytes);
      break;
    case ir::OpKind::kPrefetch:
      if (!remote_mode_) {
        backend_->Prefetch(clock_, vals[instr.operands[0]],
                           static_cast<uint32_t>(instr.mem.bytes));
      }
      break;
    case ir::OpKind::kEvictHint:
      if (!remote_mode_) {
        backend_->EvictHint(clock_, vals[instr.operands[0]],
                            static_cast<uint32_t>(instr.mem.bytes));
      }
      break;
    case ir::OpKind::kFor: {
      telemetry::ProfileScope prof_scope(clock_.tid(), "for", pos);
      const int64_t lo = I(0);
      const int64_t hi = I(1);
      const int64_t step = I(2);
      MIRA_CHECK_MSG(step > 0, "for step must be positive");
      const ir::Region& body = instr.regions[0];
      const uint32_t iv = body.args[0];
      for (int64_t i = lo; i < hi; i += step) {
        ChargeCompute(1);  // induction update + bound check
        vals[iv] = static_cast<uint64_t>(i);
        frame.batched_groups.clear();
        if (auto s = ExecRegion(frame, body, flow); !s.ok()) {
          return s;
        }
        if (*flow == Flow::kReturned) {
          return Status::Ok();
        }
      }
      break;
    }
    case ir::OpKind::kWhile: {
      telemetry::ProfileScope prof_scope(clock_.tid(), "while", pos);
      const ir::Region& cond = instr.regions[0];
      const ir::Region& body = instr.regions[1];
      while (true) {
        ChargeCompute(1);
        if (auto s = ExecRegion(frame, cond, flow); !s.ok()) {
          return s;
        }
        if (*flow == Flow::kReturned) {
          return Status::Ok();
        }
        const ir::Instr& yield = cond.body.back();
        if (vals[yield.operands[0]] == 0) {
          break;
        }
        frame.batched_groups.clear();
        if (auto s = ExecRegion(frame, body, flow); !s.ok()) {
          return s;
        }
        if (*flow == Flow::kReturned) {
          return Status::Ok();
        }
      }
      break;
    }
    case ir::OpKind::kIf: {
      ChargeCompute(1);
      const ir::Region& taken = I(0) != 0 ? instr.regions[0] : instr.regions[1];
      if (auto s = ExecRegion(frame, taken, flow); !s.ok()) {
        return s;
      }
      break;
    }
    case ir::OpKind::kYield:
      break;
    case ir::OpKind::kCall: {
      std::vector<uint64_t> args;
      args.reserve(instr.operands.size());
      for (const uint32_t op : instr.operands) {
        args.push_back(vals[op]);
      }
      uint64_t result = 0;
      if (auto s = CallFunction(instr.callee, args, &result); !s.ok()) {
        return s;
      }
      if (instr.has_result()) {
        vals[instr.result] = result;
      }
      break;
    }
    case ir::OpKind::kOffloadCall: {
      std::vector<uint64_t> args;
      args.reserve(instr.operands.size());
      for (const uint32_t op : instr.operands) {
        args.push_back(vals[op]);
      }
      uint64_t result = 0;
      bool remote = !remote_mode_ && backend_->SupportsOffload();
      if (remote && !backend_->OffloadAdmission(clock_)) {
        // Offload faults strike at initiation: the request leg could not be
        // admitted, so the callee runs locally — its data-plane effects are
        // identical, only the timing differs (no remote side effects exist).
        remote = false;
        ++offload_fallbacks_;
        telemetry::Metrics().AddCounter("interp.offload.local_fallbacks", 1);
        auto& trace = telemetry::Trace();
        if (trace.enabled()) {
          trace.Instant(clock_, "interp.offload.fallback", "interp",
                        support::StrFormat("{\"callee\":%u}", instr.callee));
        }
      }
      if (!remote) {
        // Already on the far node, backend can't offload, or admission
        // failed: plain (local) call.
        if (auto s = CallFunction(instr.callee, args, &result); !s.ok()) {
          return s;
        }
      } else {
        // Execute remotely on a shadow clock to measure service time, then
        // charge flush + RPC to the real clock.
        remote_mode_ = true;
        const uint64_t t0 = clock_.now_ns();
        auto s = CallFunction(instr.callee, args, &result);
        remote_mode_ = false;
        if (!s.ok()) {
          return s;
        }
        const uint64_t service = clock_.now_ns() - t0;
        clock_.Reset(t0);  // rewind: the remote work happens inside the RPC
        const uint32_t req = static_cast<uint32_t>(8 * args.size() + 16);
        backend_->OffloadCall(clock_, req, 16, service);
      }
      if (instr.has_result()) {
        vals[instr.result] = result;
      }
      break;
    }
    case ir::OpKind::kReturn:
      if (!instr.operands.empty()) {
        frame.ret_bits = vals[instr.operands[0]];
      }
      frame.returned = true;
      *flow = Flow::kReturned;
      break;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Bytecode engine. Every handler below mirrors the tree walker's ExecInstr
// case for the same IR instruction — same prestep, same ChargeCompute calls,
// same backend calls in the same order — so the two engines are bit-identical
// in results, simulated time, and profile ledgers (tests/bytecode_test.cc
// enforces this differentially).
// ---------------------------------------------------------------------------

void Interpreter::UnwindLoopScopes(BFrame& frame) {
  telemetry::StallProfiler& profiler = telemetry::Profiler();
  while (!frame.loop_scopes.empty()) {
    if (frame.loop_scopes.back() != 0) {
      profiler.PopScope(clock_.tid());
    }
    frame.loop_scopes.pop_back();
  }
}

void Interpreter::BytecodeMemAccess(uint64_t addr, const bytecode::BInstr& instr,
                                    bool is_store, uint32_t func_index,
                                    cache::AccessSite* site) {
  const auto& cost = backend_->cost();
  if (remote_mode_) {
    // Offloaded execution: the data is local to the far node.
    clock_.Advance(cost.native_access_ns);
    return;
  }
  backends::AccessHints hints;
  hints.promoted = (instr.mflags & bytecode::kMemPromoted) != 0;
  hints.full_line_write = (instr.mflags & bytecode::kMemFullLineWrite) != 0;
  const bool pinned = (instr.mflags & bytecode::kMemPinned) != 0;
  const uint64_t t0 = clock_.now_ns();
  if (pinned) {
    backend_->Pin(clock_, addr, instr.mem_bytes);
  }
  if (is_store) {
    backend_->Store(clock_, addr, instr.mem_bytes, hints, site);
  } else {
    backend_->Load(clock_, addr, instr.mem_bytes, hints, site);
  }
  if (pinned) {
    backend_->Unpin(clock_, addr, instr.mem_bytes);
  }
  const uint64_t delta = clock_.now_ns() - t0;
  const uint64_t native = cost.native_access_ns;
  const uint64_t overhead = delta > native ? delta - native : 0;
  FuncProfile& fp = func_ledger_[func_index];
  fp.overhead_ns += overhead;
  ++fp.mem_accesses;
  profile_.total_overhead_ns += overhead;
  if (options_.profiling && overhead > 0) {
    clock_.Advance(cost.profile_event_ns);
  }
}

void Interpreter::BytecodeServiceBatch(BFrame& frame, const bytecode::BFunction& bf,
                                       const bytecode::BInstr& instr, uint32_t func_index) {
  std::vector<std::pair<farmem::RemoteAddr, uint32_t>> accesses;
  accesses.reserve(instr.pool_len);
  for (uint32_t i = 0; i < instr.pool_len; ++i) {
    const bytecode::BatchMember& member = bf.batch_pool[instr.pool_off + i];
    accesses.push_back({frame.values[member.value], member.bytes});
  }
  const uint64_t t0 = clock_.now_ns();
  backend_->LoadBatch(clock_, accesses);
  const uint64_t native = accesses.size() * backend_->cost().native_access_ns;
  const uint64_t delta = clock_.now_ns() - t0;
  const uint64_t overhead = delta > native ? delta - native : 0;
  FuncProfile& fp = func_ledger_[func_index];
  fp.overhead_ns += overhead;
  fp.mem_accesses += accesses.size();
  profile_.total_overhead_ns += overhead;
  frame.batched_groups.push_back(instr.batch_group);
}

void Interpreter::BytecodeLoadPath(BFrame& frame, const bytecode::BFunction& bf,
                                   const bytecode::BInstr& instr, uint32_t func_index,
                                   uint64_t addr, cache::AccessSite* site) {
  if (instr.batch_group >= 0 && !remote_mode_) {
    for (const int32_t g : frame.batched_groups) {
      if (g == instr.batch_group) {
        return;  // group already serviced this iteration
      }
    }
    BytecodeServiceBatch(frame, bf, instr, func_index);
  } else {
    BytecodeMemAccess(addr, instr, /*is_store=*/false, func_index, site);
  }
}

support::Status Interpreter::RunBytecodeFunction(uint32_t index,
                                                const std::vector<uint64_t>& args,
                                                uint64_t* result_bits) {
  MIRA_CHECK(index < module_->functions.size());
  const ir::Function& func = *module_->functions[index];
  const bytecode::BFunction& bf = bcode_->funcs[index];
  if (call_depth_ > 64) {
    return Status::Internal("call depth exceeded (recursion not supported)");
  }
  if (args.size() != func.param_types.size()) {
    return Status::InvalidArgument(
        support::StrFormat("call @%s: bad arg count", func.name.c_str()));
  }
  BFrame frame;
  frame.values.resize(bf.num_values, 0);
  frame.locals.resize(bf.num_locals, 0);
  frame.loop_state.resize(static_cast<size_t>(bf.num_loop_slots) * 3, 0);
  for (size_t i = 0; i < args.size(); ++i) {
    frame.values[func.params[i]] = args[i];
  }
  ++call_depth_;
  telemetry::ProfileScope prof_scope(clock_.tid(), func.name);
  FuncProfile& fp = func_ledger_[index];
  ++fp.calls;
  if (options_.profiling) {
    clock_.Advance(backend_->cost().profile_event_ns);  // entry event
  }
  auto& trace = telemetry::Trace();
  const bool traced = trace.enabled();
  if (traced) {
    trace.Begin(clock_, func.name, "interp");
  }
  const uint64_t t0 = clock_.now_ns();
  Status status = ExecBytecode(frame, index);
  fp.inclusive_ns += clock_.now_ns() - t0;
  if (traced) {
    trace.End(clock_);
  }
  if (options_.profiling) {
    clock_.Advance(backend_->cost().profile_event_ns);  // exit event
  }
  --call_depth_;
  if (!status.ok()) {
    return status;
  }
  if (result_bits != nullptr) {
    *result_bits = frame.ret_bits;
  }
  return Status::Ok();
}

support::Status Interpreter::ExecBytecode(BFrame& frame, uint32_t func_index) {
  using bytecode::BOp;
  const bytecode::BFunction& bf = bcode_->funcs[func_index];
  const bytecode::BInstr* code = bf.code.data();
  const size_t code_size = bf.code.size();
  uint64_t* vals = frame.values.data();
  uint64_t* locals = frame.locals.data();
  int64_t* loops = frame.loop_state.data();
  cache::AccessSite* sites = sites_.data() + bcode_->site_base[func_index];
  // max_instrs == 0 means "off"; folding it to UINT64_MAX keeps the hot
  // prestep to a single compare (instrs_executed_ can never exceed it).
  const uint64_t limit = options_.max_instrs == 0 ? UINT64_MAX : options_.max_instrs;
  telemetry::StallProfiler& profiler = telemetry::Profiler();
  const uint32_t tid = clock_.tid();
  size_t pc = 0;

// One prestep per *IR* instruction, at the same point the tree walker's
// ExecInstr performs it (superinstructions expand to one prestep per fused
// IR instruction).
#define MIRA_BC_PRESTEP()                                         \
  do {                                                            \
    if (++instrs_executed_ > limit) {                             \
      UnwindLoopScopes(frame);                                    \
      return Status::Internal("instruction budget exceeded");     \
    }                                                             \
    if (integrity_ != nullptr && !integrity_->fatal().ok()) {     \
      UnwindLoopScopes(frame);                                    \
      return integrity_->fatal();                                 \
    }                                                             \
  } while (0)

  while (pc < code_size) {
    const bytecode::BInstr& in = code[pc];
    switch (in.op) {
      case BOp::kNop:
        MIRA_BC_PRESTEP();
        ++pc;
        break;
      case BOp::kConstI:
        MIRA_BC_PRESTEP();
        vals[in.a] = static_cast<uint64_t>(in.imm);
        ++pc;
        break;
      case BOp::kConstF:
        MIRA_BC_PRESTEP();
        vals[in.a] = PackF64(in.fimm);
        ++pc;
        break;
      // Two's-complement wraparound (unsigned compute keeps UBSan quiet),
      // matching the tree walker's int binops bit for bit.
      case BOp::kAddI:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = vals[in.b] + vals[in.c];
        ++pc;
        break;
      case BOp::kSubI:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = vals[in.b] - vals[in.c];
        ++pc;
        break;
      case BOp::kMulI:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = vals[in.b] * vals[in.c];
        ++pc;
        break;
      case BOp::kDivI: {
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        const int64_t a = static_cast<int64_t>(vals[in.b]);
        const int64_t b = static_cast<int64_t>(vals[in.c]);
        vals[in.a] = static_cast<uint64_t>(b == 0 ? 0 : a / b);
        ++pc;
        break;
      }
      case BOp::kRemI: {
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        const int64_t a = static_cast<int64_t>(vals[in.b]);
        const int64_t b = static_cast<int64_t>(vals[in.c]);
        vals[in.a] = static_cast<uint64_t>(b == 0 ? 0 : a % b);
        ++pc;
        break;
      }
      case BOp::kMinI: {
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        const int64_t a = static_cast<int64_t>(vals[in.b]);
        const int64_t b = static_cast<int64_t>(vals[in.c]);
        vals[in.a] = static_cast<uint64_t>(a < b ? a : b);
        ++pc;
        break;
      }
      case BOp::kMaxI: {
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        const int64_t a = static_cast<int64_t>(vals[in.b]);
        const int64_t b = static_cast<int64_t>(vals[in.c]);
        vals[in.a] = static_cast<uint64_t>(a > b ? a : b);
        ++pc;
        break;
      }
      case BOp::kAddF:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = PackF64(UnpackF64(vals[in.b]) + UnpackF64(vals[in.c]));
        ++pc;
        break;
      case BOp::kSubF:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = PackF64(UnpackF64(vals[in.b]) - UnpackF64(vals[in.c]));
        ++pc;
        break;
      case BOp::kMulF:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = PackF64(UnpackF64(vals[in.b]) * UnpackF64(vals[in.c]));
        ++pc;
        break;
      case BOp::kDivF: {
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        const double a = UnpackF64(vals[in.b]);
        const double b = UnpackF64(vals[in.c]);
        vals[in.a] = PackF64(b == 0.0 ? 0.0 : a / b);
        ++pc;
        break;
      }
      case BOp::kRemF: {
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        const double a = UnpackF64(vals[in.b]);
        const double b = UnpackF64(vals[in.c]);
        vals[in.a] = PackF64(b == 0.0 ? 0.0 : std::fmod(a, b));
        ++pc;
        break;
      }
      case BOp::kMinF: {
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        const double a = UnpackF64(vals[in.b]);
        const double b = UnpackF64(vals[in.c]);
        vals[in.a] = PackF64(a < b ? a : b);
        ++pc;
        break;
      }
      case BOp::kMaxF: {
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        const double a = UnpackF64(vals[in.b]);
        const double b = UnpackF64(vals[in.c]);
        vals[in.a] = PackF64(a > b ? a : b);
        ++pc;
        break;
      }
      case BOp::kCmpI:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = EvalCmpI(in.pred, static_cast<int64_t>(vals[in.b]),
                              static_cast<int64_t>(vals[in.c]))
                         ? 1
                         : 0;
        ++pc;
        break;
      case BOp::kCmpF:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = EvalCmpF(in.pred, UnpackF64(vals[in.b]), UnpackF64(vals[in.c])) ? 1 : 0;
        ++pc;
        break;
      case BOp::kAnd:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = vals[in.b] & vals[in.c];
        ++pc;
        break;
      case BOp::kOr:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = vals[in.b] | vals[in.c];
        ++pc;
        break;
      case BOp::kXor:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = vals[in.b] ^ vals[in.c];
        ++pc;
        break;
      case BOp::kShl:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = static_cast<uint64_t>(static_cast<int64_t>(vals[in.b])
                                           << (static_cast<int64_t>(vals[in.c]) & 63));
        ++pc;
        break;
      case BOp::kShr:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = vals[in.b] >> (static_cast<int64_t>(vals[in.c]) & 63);
        ++pc;
        break;
      case BOp::kSelect:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = vals[in.b] != 0 ? vals[in.c] : vals[in.d];
        ++pc;
        break;
      case BOp::kI2F:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = PackF64(static_cast<double>(static_cast<int64_t>(vals[in.b])));
        ++pc;
        break;
      case BOp::kF2I:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = static_cast<uint64_t>(static_cast<int64_t>(UnpackF64(vals[in.b])));
        ++pc;
        break;
      case BOp::kSqrt:
        MIRA_BC_PRESTEP();
        ChargeCompute(4);
        vals[in.a] = PackF64(std::sqrt(UnpackF64(vals[in.b])));
        ++pc;
        break;
      case BOp::kExp:
        MIRA_BC_PRESTEP();
        ChargeCompute(8);
        vals[in.a] = PackF64(std::exp(UnpackF64(vals[in.b])));
        ++pc;
        break;
      case BOp::kTanh:
        MIRA_BC_PRESTEP();
        ChargeCompute(8);
        vals[in.a] = PackF64(std::tanh(UnpackF64(vals[in.b])));
        ++pc;
        break;
      case BOp::kRand: {
        MIRA_BC_PRESTEP();
        ChargeCompute(2);
        const int64_t bound = static_cast<int64_t>(vals[in.b]);
        vals[in.a] = static_cast<uint64_t>(
            bound <= 0 ? 0
                       : static_cast<int64_t>(rng_.NextBelow(static_cast<uint64_t>(bound))));
        ++pc;
        break;
      }
      case BOp::kLocalLoad:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] = locals[in.imm];
        ++pc;
        break;
      case BOp::kLocalStore:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        locals[in.imm] = vals[in.b];
        ++pc;
        break;
      case BOp::kAlloc: {
        MIRA_BC_PRESTEP();
        const std::string& label = bf.strings[in.str_idx];
        const uint64_t bytes = vals[in.b];
        auto addr = backend_->Alloc(clock_, bytes, label, static_cast<uint32_t>(in.imm));
        if (!addr.ok()) {
          UnwindLoopScopes(frame);
          return addr.status();
        }
        vals[in.a] = addr.value();
        profile_.alloc_bytes[label] += bytes;
        first_alloc_addr_.emplace(label, addr.value());
        if (options_.profiling) {
          clock_.Advance(backend_->cost().profile_event_ns);  // allocation-site event
        }
        ++pc;
        break;
      }
      case BOp::kFree:
        MIRA_BC_PRESTEP();
        backend_->Free(clock_, vals[in.b]);
        ++pc;
        break;
      case BOp::kLifetimeEnd:
        MIRA_BC_PRESTEP();
        if (!remote_mode_) {
          backend_->LifetimeEnd(clock_, vals[in.b]);
        }
        ++pc;
        break;
      case BOp::kIndex:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        vals[in.a] =
            vals[in.b] +
            static_cast<uint64_t>(static_cast<int64_t>(vals[in.c]) * in.imm + in.imm2);
        ++pc;
        break;
      case BOp::kLoad: {
        MIRA_BC_PRESTEP();
        const uint64_t addr = vals[in.b];
        BytecodeLoadPath(frame, bf, in, func_index, addr, sites + in.site);
        vals[in.a] = LoadData(addr, in.mem_bytes);
        ++pc;
        break;
      }
      case BOp::kStore: {
        MIRA_BC_PRESTEP();
        const uint64_t addr = vals[in.b];
        BytecodeMemAccess(addr, in, /*is_store=*/true, func_index, sites + in.site);
        StoreData(addr, vals[in.c], in.mem_bytes);
        ++pc;
        break;
      }
      case BOp::kPrefetch:
        MIRA_BC_PRESTEP();
        if (!remote_mode_) {
          backend_->Prefetch(clock_, vals[in.b], in.mem_bytes);
        }
        ++pc;
        break;
      case BOp::kEvictHint:
        MIRA_BC_PRESTEP();
        if (!remote_mode_) {
          backend_->EvictHint(clock_, vals[in.b], in.mem_bytes);
        }
        ++pc;
        break;
      case BOp::kCall: {
        MIRA_BC_PRESTEP();
        std::vector<uint64_t> args;
        args.reserve(in.pool_len);
        for (uint32_t i = 0; i < in.pool_len; ++i) {
          args.push_back(vals[bf.arg_pool[in.pool_off + i]]);
        }
        uint64_t result = 0;
        if (auto s = RunBytecodeFunction(in.callee, args, &result); !s.ok()) {
          UnwindLoopScopes(frame);
          return s;
        }
        if (in.has_result != 0) {
          vals[in.a] = result;
        }
        ++pc;
        break;
      }
      case BOp::kOffloadCall: {
        MIRA_BC_PRESTEP();
        std::vector<uint64_t> args;
        args.reserve(in.pool_len);
        for (uint32_t i = 0; i < in.pool_len; ++i) {
          args.push_back(vals[bf.arg_pool[in.pool_off + i]]);
        }
        uint64_t result = 0;
        bool remote = !remote_mode_ && backend_->SupportsOffload();
        if (remote && !backend_->OffloadAdmission(clock_)) {
          remote = false;
          ++offload_fallbacks_;
          telemetry::Metrics().AddCounter("interp.offload.local_fallbacks", 1);
          auto& trace = telemetry::Trace();
          if (trace.enabled()) {
            trace.Instant(clock_, "interp.offload.fallback", "interp",
                          support::StrFormat("{\"callee\":%u}", in.callee));
          }
        }
        if (!remote) {
          if (auto s = RunBytecodeFunction(in.callee, args, &result); !s.ok()) {
            UnwindLoopScopes(frame);
            return s;
          }
        } else {
          // Shadow clock: measure remote service time, then rewind and
          // charge flush + RPC (see the tree walker's kOffloadCall).
          remote_mode_ = true;
          const uint64_t t0 = clock_.now_ns();
          auto s = RunBytecodeFunction(in.callee, args, &result);
          remote_mode_ = false;
          if (!s.ok()) {
            UnwindLoopScopes(frame);
            return s;
          }
          const uint64_t service = clock_.now_ns() - t0;
          clock_.Reset(t0);
          const uint32_t req = static_cast<uint32_t>(8 * args.size() + 16);
          backend_->OffloadCall(clock_, req, 16, service);
        }
        if (in.has_result != 0) {
          vals[in.a] = result;
        }
        ++pc;
        break;
      }
      case BOp::kReturn:
        MIRA_BC_PRESTEP();
        if (in.has_result != 0) {
          frame.ret_bits = vals[in.b];
        }
        // Pop the loop scopes the return jumps out of (innermost first),
        // exactly as the tree walker's ProfileScope destructors would.
        for (uint32_t i = 0; i < in.c; ++i) {
          if (frame.loop_scopes.back() != 0) {
            profiler.PopScope(tid);
          }
          frame.loop_scopes.pop_back();
        }
        return Status::Ok();
      case BOp::kJump:
        pc = in.target;
        break;
      case BOp::kIfBranch:
        MIRA_BC_PRESTEP();
        ChargeCompute(1);
        pc = vals[in.b] != 0 ? pc + 1 : in.target;
        break;
      case BOp::kForInit: {
        MIRA_BC_PRESTEP();
        if (profiler.enabled()) {
          profiler.PushScope(tid, bf.strings[in.str_idx]);
          frame.loop_scopes.push_back(1);
        } else {
          frame.loop_scopes.push_back(0);
        }
        const int64_t lo = static_cast<int64_t>(vals[in.b]);
        const int64_t hi = static_cast<int64_t>(vals[in.c]);
        const int64_t step = static_cast<int64_t>(vals[in.d]);
        MIRA_CHECK_MSG(step > 0, "for step must be positive");
        int64_t* state = loops + static_cast<size_t>(in.loop_slot) * 3;
        state[0] = lo;
        state[1] = hi;
        state[2] = step;
        pc = lo < hi ? pc + 1 : in.target;
        break;
      }
      case BOp::kForHead: {
        ChargeCompute(1);  // induction update + bound check
        const int64_t* state = loops + static_cast<size_t>(in.loop_slot) * 3;
        vals[in.a] = static_cast<uint64_t>(state[0]);
        frame.batched_groups.clear();
        ++pc;
        break;
      }
      case BOp::kForNext: {
        int64_t* state = loops + static_cast<size_t>(in.loop_slot) * 3;
        state[0] = static_cast<int64_t>(static_cast<uint64_t>(state[0]) +
                                        static_cast<uint64_t>(state[2]));
        pc = state[0] < state[1] ? in.target : pc + 1;
        break;
      }
      case BOp::kWhileInit:
        MIRA_BC_PRESTEP();
        if (profiler.enabled()) {
          profiler.PushScope(tid, bf.strings[in.str_idx]);
          frame.loop_scopes.push_back(1);
        } else {
          frame.loop_scopes.push_back(0);
        }
        ++pc;
        break;
      case BOp::kWhileHead:
        ChargeCompute(1);
        ++pc;
        break;
      case BOp::kWhileCond:
        MIRA_BC_PRESTEP();  // the cond region's kYield
        if (vals[in.b] == 0) {
          pc = in.target;
        } else {
          frame.batched_groups.clear();
          ++pc;
        }
        break;
      case BOp::kLoopExit:
        if (frame.loop_scopes.back() != 0) {
          profiler.PopScope(tid);
        }
        frame.loop_scopes.pop_back();
        ++pc;
        break;
      case BOp::kIndexLoad: {
        MIRA_BC_PRESTEP();  // the kIndex
        ChargeCompute(1);
        const uint64_t addr =
            vals[in.b] +
            static_cast<uint64_t>(static_cast<int64_t>(vals[in.c]) * in.imm + in.imm2);
        vals[in.d] = addr;
        MIRA_BC_PRESTEP();  // the load
        BytecodeLoadPath(frame, bf, in, func_index, addr, sites + in.site);
        vals[in.a] = LoadData(addr, in.mem_bytes);
        ++pc;
        break;
      }
      case BOp::kIndexStore: {
        MIRA_BC_PRESTEP();  // the kIndex
        ChargeCompute(1);
        const uint64_t addr =
            vals[in.b] +
            static_cast<uint64_t>(static_cast<int64_t>(vals[in.c]) * in.imm + in.imm2);
        vals[in.d] = addr;
        MIRA_BC_PRESTEP();  // the store
        BytecodeMemAccess(addr, in, /*is_store=*/true, func_index, sites + in.site);
        StoreData(addr, vals[in.a], in.mem_bytes);
        ++pc;
        break;
      }
      case BOp::kCmpIfBranch: {
        MIRA_BC_PRESTEP();  // the cmp
        ChargeCompute(1);
        const bool r =
            (in.mflags & bytecode::kCmpFloat) != 0
                ? EvalCmpF(in.pred, UnpackF64(vals[in.b]), UnpackF64(vals[in.c]))
                : EvalCmpI(in.pred, static_cast<int64_t>(vals[in.b]),
                           static_cast<int64_t>(vals[in.c]));
        vals[in.a] = r ? 1 : 0;
        MIRA_BC_PRESTEP();  // the kIf
        ChargeCompute(1);
        pc = r ? pc + 1 : in.target;
        break;
      }
      case BOp::kCmpWhileCond: {
        MIRA_BC_PRESTEP();  // the cmp
        ChargeCompute(1);
        const bool r =
            (in.mflags & bytecode::kCmpFloat) != 0
                ? EvalCmpF(in.pred, UnpackF64(vals[in.b]), UnpackF64(vals[in.c]))
                : EvalCmpI(in.pred, static_cast<int64_t>(vals[in.b]),
                           static_cast<int64_t>(vals[in.c]));
        vals[in.a] = r ? 1 : 0;
        MIRA_BC_PRESTEP();  // the cond region's kYield
        if (!r) {
          pc = in.target;
        } else {
          frame.batched_groups.clear();
          ++pc;
        }
        break;
      }
    }
  }
#undef MIRA_BC_PRESTEP
  return Status::Ok();
}

}  // namespace mira::interp
