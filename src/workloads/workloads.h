// Workload programs, expressed in the Mira IR exactly as an application
// author would write them for local memory: plain loads/stores, no
// far-memory awareness. The pipeline converts and optimizes them.
//
// Paper mapping:
//   - BuildGraphTraversal: the Fig 4 rundown example (sequential edge array
//     driving indirect node updates), optionally with the third
//     uniformly-random array of Figs 11/12.
//   - BuildArraySum: the "simple loop over an array" runtime microbench.
//   - BuildDataFrame: NYC-taxi-like analytics — filter (full-line writes),
//     the avg/min/max job of Fig 23 (three adjacent loops → fusion +
//     batching), zone group-by (indirect), and a wide-row scan that touches
//     2 of 16 fields (selective transmission).
//   - BuildGpt2: layer-by-layer transformer inference with per-layer weight
//     and KV-cache objects whose lifetimes end when the layer finishes.
//   - BuildMcf: SPEC-MCF-like vehicle scheduling — sequential arc pricing
//     with indirect node potentials plus an analysis-hostile pointer-chase
//     tree walk.
//
// All data synthesis happens inside the program via the seeded kRand op, so
// every system executes identical accesses for a given interpreter seed.

#ifndef MIRA_SRC_WORKLOADS_WORKLOADS_H_
#define MIRA_SRC_WORKLOADS_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/ir/ir.h"

namespace mira::workloads {

struct Workload {
  std::unique_ptr<ir::Module> module;
  std::string entry = "main";
  uint64_t footprint_bytes = 0;  // total far-object bytes ("full memory")
  std::string name;
};

struct GraphParams {
  int64_t num_edges = 60'000;
  int64_t num_nodes = 15'000;
  int64_t epochs = 4;
  bool third_array = false;       // Figs 11/12
  int64_t third_elems = 100'000;  // 8 B elements, uniform random access
};
Workload BuildGraphTraversal(const GraphParams& params = {});

struct ArraySumParams {
  int64_t elems = 400'000;  // 8 B each
  int64_t epochs = 2;
};
Workload BuildArraySum(const ArraySumParams& params = {});

struct DataFrameParams {
  int64_t rows = 120'000;
  int64_t groups = 512;
  // Wide-row scan: 128 B rows, 16 B accessed (selective transmission).
  bool wide_row_scan = true;
  bool filter_op = true;
  bool batch_job = true;  // avg/min/max over one column (Fig 23)
  bool groupby_op = true;
};
Workload BuildDataFrame(const DataFrameParams& params = {});

struct Gpt2Params {
  int64_t layers = 6;
  int64_t d_model = 128;
  int64_t tokens = 12;
};
Workload BuildGpt2(const Gpt2Params& params = {});

struct McfParams {
  int64_t nodes = 20'000;
  int64_t arcs = 60'000;
  int64_t iterations = 2;
  int64_t tree_steps = 30'000;  // pointer-chase walk length per iteration
};
Workload BuildMcf(const McfParams& params = {});

}  // namespace mira::workloads

#endif  // MIRA_SRC_WORKLOADS_WORKLOADS_H_
