#include "src/ir/builder.h"
#include "src/workloads/workloads.h"

namespace mira::workloads {

using ir::FunctionBuilder;
using ir::Local;
using ir::Type;
using ir::Value;

namespace {
constexpr int64_t kEdgeBytes = 16;   // {from: i64 @0, to: i64 @8}
constexpr int64_t kNodeBytes = 128;  // counter @0, 120 B payload
}  // namespace

Workload BuildGraphTraversal(const GraphParams& params) {
  Workload w;
  w.name = params.third_array ? "graph3" : "graph";
  w.module = std::make_unique<ir::Module>();
  w.module->name = w.name;
  w.footprint_bytes = static_cast<uint64_t>(params.num_edges * kEdgeBytes +
                                            params.num_nodes * kNodeBytes +
                                            (params.third_array ? params.third_elems * 8 : 0));

  // init_edges(edges, num_edges, num_nodes): random endpoints.
  {
    FunctionBuilder f(w.module.get(), "init_edges", {Type::kPtr, Type::kI64, Type::kI64});
    const Value edges = f.Arg(0);
    const Value n = f.Arg(1);
    const Value m = f.Arg(2);
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      f.Store(f.Index(edges, i, kEdgeBytes, 0), f.Rand(m), 8);
      f.Store(f.Index(edges, i, kEdgeBytes, 8), f.Rand(m), 8);
    });
    f.Return();
  }

  // init_third(third, elems): zero fill.
  if (params.third_array) {
    FunctionBuilder f(w.module.get(), "init_third", {Type::kPtr, Type::kI64});
    const Value third = f.Arg(0);
    const Value n = f.Arg(1);
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      f.Store(f.Index(third, i, 8, 0), f.ConstI(0), 8);
    });
    f.Return();
  }

  // traverse(edges, nodes, n [, third, third_elems]): Fig 4's loop. The
  // node updates are written inline (the paper's Fig 13 compiled form).
  {
    std::vector<Type> sig{Type::kPtr, Type::kPtr, Type::kI64};
    if (params.third_array) {
      sig.push_back(Type::kPtr);
      sig.push_back(Type::kI64);
    }
    FunctionBuilder f(w.module.get(), "traverse", sig);
    const Value edges = f.Arg(0);
    const Value nodes = f.Arg(1);
    const Value n = f.Arg(2);
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      const Value from = f.Load(f.Index(edges, i, kEdgeBytes, 0), 8, Type::kI64);
      const Value to = f.Load(f.Index(edges, i, kEdgeBytes, 8), 8, Type::kI64);
      // Edge weight: a little real computation per edge, as update_node in
      // the paper's application would do.
      const Local mix = f.DeclLocal(Type::kI64);
      f.StoreLocal(mix, f.Add(f.Mul(from, f.ConstI(31)), to));
      f.For(f.ConstI(0), f.ConstI(8), f.ConstI(1), [&](Value) {
        const Value m = f.LoadLocal(mix);
        f.StoreLocal(mix, f.Xor(f.Mul(m, f.ConstI(6364136223846793005LL)),
                                f.Shr(m, f.ConstI(29))));
      });
      const Value weight = f.Rem(f.LoadLocal(mix), f.ConstI(127));
      // update_node(edges[i].from)
      const Value pf = f.Index(nodes, from, kNodeBytes, 0);
      f.Store(pf, f.Add(f.Load(pf, 8, Type::kI64), weight), 8);
      // update_node(edges[i].to)
      const Value pt = f.Index(nodes, to, kNodeBytes, 0);
      f.Store(pt, f.Add(f.Load(pt, 8, Type::kI64), weight), 8);
      if (params.third_array) {
        const Value third = f.Arg(3);
        const Value telems = f.Arg(4);
        const Value r = f.Rand(telems);
        const Value p3 = f.Index(third, r, 8, 0);
        f.Store(p3, f.Add(f.Load(p3, 8, Type::kI64), f.ConstI(1)), 8);
      }
    });
    f.Return();
  }

  // main: allocate, initialize, run epochs, checksum.
  {
    FunctionBuilder f(w.module.get(), "main", {}, Type::kI64);
    // AIFM's port wraps edges in 4-edge remoteable chunks (64 B), the
    // granularity its array library would choose for a 16 B struct.
    const Value edges =
        f.Alloc(f.ConstI(params.num_edges * kEdgeBytes), "edges", 64);
    const Value nodes =
        f.Alloc(f.ConstI(params.num_nodes * kNodeBytes), "nodes", kNodeBytes);
    Value third{};
    if (params.third_array) {
      third = f.Alloc(f.ConstI(params.third_elems * 8), "third", 8);
    }
    f.Call("init_edges", {edges, f.ConstI(params.num_edges), f.ConstI(params.num_nodes)});
    if (params.third_array) {
      f.Call("init_third", {third, f.ConstI(params.third_elems)});
    }
    f.For(f.ConstI(0), f.ConstI(params.epochs), f.ConstI(1), [&](Value) {
      if (params.third_array) {
        f.Call("traverse", {edges, nodes, f.ConstI(params.num_edges), third,
                            f.ConstI(params.third_elems)});
      } else {
        f.Call("traverse", {edges, nodes, f.ConstI(params.num_edges)});
      }
    });
    // Checksum over a node sample so results are comparable across systems.
    const Local sum = f.DeclLocal(Type::kI64);
    f.StoreLocal(sum, f.ConstI(0));
    const int64_t stride = std::max<int64_t>(1, params.num_nodes / 256);
    f.For(f.ConstI(0), f.ConstI(params.num_nodes), f.ConstI(stride), [&](Value i) {
      const Value v = f.Load(f.Index(nodes, i, kNodeBytes, 0), 8, Type::kI64);
      f.StoreLocal(sum, f.Add(f.LoadLocal(sum), v));
    });
    f.Return(f.LoadLocal(sum));
  }
  return w;
}

}  // namespace mira::workloads
