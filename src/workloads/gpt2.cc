#include "src/ir/builder.h"
#include "src/support/str.h"
#include "src/workloads/workloads.h"

namespace mira::workloads {

using ir::FunctionBuilder;
using ir::Local;
using ir::Type;
using ir::Value;

// Scaled-down transformer inference preserving the structure the paper's
// GPT-2 result depends on: per-layer weight matrices and KV caches whose
// lifetimes end when the layer's computation finishes (§6.1: "data used in
// one layer is not needed anymore in the remaining layers").
//
// Each layer l is its own function layer<l> and its own top-level call
// statement in main, so lifetime analysis sees one phase per layer. Weights
// stream sequentially through the matvecs; the KV cache is appended
// (full-line writes) then read back within the layer.
Workload BuildGpt2(const Gpt2Params& params) {
  Workload w;
  w.name = "gpt2";
  w.module = std::make_unique<ir::Module>();
  w.module->name = w.name;
  const int64_t d = params.d_model;
  const int64_t t = params.tokens;
  w.footprint_bytes = static_cast<uint64_t>(params.layers) *
                          (static_cast<uint64_t>(d * d * 8) /*W*/ +
                           2 * static_cast<uint64_t>(t * d * 8) /*K,V*/) +
                      2 * static_cast<uint64_t>(d * 8) /*activations*/;

  // init_weights(wl, count): pseudo-random parameters.
  {
    FunctionBuilder f(w.module.get(), "init_matrix", {Type::kPtr, Type::kI64});
    const Value m = f.Arg(0);
    const Value count = f.Arg(1);
    f.For(f.ConstI(0), count, f.ConstI(1), [&](Value i) {
      const Value r = f.Rand(f.ConstI(2000));
      const Value x = f.Div(f.Sub(f.I2F(r), f.ConstF(1000.0)), f.ConstF(1000.0));
      f.Store(f.Index(m, i, 8, 0), x, 8);
    });
    f.Return();
  }

  // layer<l>(w, k, v, x, y): for each token: matvec through W (sequential
  // streaming), append to K/V, attend over the cache, activation.
  for (int64_t layer = 0; layer < params.layers; ++layer) {
    FunctionBuilder f(w.module.get(), support::StrFormat("layer%lld",
                                                         static_cast<long long>(layer)),
                      {Type::kPtr, Type::kPtr, Type::kPtr, Type::kPtr, Type::kPtr});
    const Value wm = f.Arg(0);
    const Value kc = f.Arg(1);
    const Value vc = f.Arg(2);
    const Value x = f.Arg(3);
    const Value y = f.Arg(4);
    f.For(f.ConstI(0), f.ConstI(t), f.ConstI(1), [&](Value tok) {
      // y[j] = Σ_i W[j*d+i] * x[i]   (W streamed sequentially)
      f.For(f.ConstI(0), f.ConstI(d), f.ConstI(1), [&](Value j) {
        const Local acc = f.DeclLocal(Type::kF64);
        f.StoreLocal(acc, f.ConstF(0.0));
        const Value row = f.Mul(j, f.ConstI(d));
        f.For(f.ConstI(0), f.ConstI(d), f.ConstI(1), [&](Value i) {
          const Value wv = f.Load(f.Index(wm, f.Add(row, i), 8, 0), 8, Type::kF64);
          const Value xv = f.Load(f.Index(x, i, 8, 0), 8, Type::kF64);
          f.StoreLocal(acc, f.Add(f.LoadLocal(acc), f.Mul(wv, xv)));
        });
        f.Store(f.Index(y, j, 8, 0), f.Unary(ir::OpKind::kTanh, f.LoadLocal(acc)), 8);
      });
      // Append keys/values for this token (write-only full rows).
      const Value base = f.Mul(tok, f.ConstI(d));
      f.For(f.ConstI(0), f.ConstI(d), f.ConstI(1), [&](Value i) {
        const Value yv = f.Load(f.Index(y, i, 8, 0), 8, Type::kF64);
        f.Store(f.Index(kc, f.Add(base, i), 8, 0), yv, 8);
        f.Store(f.Index(vc, f.Add(base, i), 8, 0), yv, 8);
      });
      // Attend over the cache so far: x[i] = Σ_{t2≤tok} K[t2*d+i]*V[t2*d+i].
      f.For(f.ConstI(0), f.ConstI(d), f.ConstI(1), [&](Value i) {
        const Local acc = f.DeclLocal(Type::kF64);
        f.StoreLocal(acc, f.ConstF(0.0));
        const Value upto = f.Add(tok, f.ConstI(1));
        f.For(f.ConstI(0), upto, f.ConstI(1), [&](Value t2) {
          const Value off = f.Add(f.Mul(t2, f.ConstI(d)), i);
          const Value kv = f.Load(f.Index(kc, off, 8, 0), 8, Type::kF64);
          const Value vv = f.Load(f.Index(vc, off, 8, 0), 8, Type::kF64);
          f.StoreLocal(acc, f.Add(f.LoadLocal(acc), f.Mul(kv, vv)));
        });
        f.Store(f.Index(x, i, 8, 0),
                f.Unary(ir::OpKind::kTanh, f.Div(f.LoadLocal(acc), f.I2F(upto))), 8);
      });
    });
    f.Return();
  }

  // main: allocate the model, run layers in order (one statement each).
  {
    FunctionBuilder f(w.module.get(), "main", {}, Type::kF64);
    std::vector<Value> wm(static_cast<size_t>(params.layers));
    std::vector<Value> kc(static_cast<size_t>(params.layers));
    std::vector<Value> vc(static_cast<size_t>(params.layers));
    for (int64_t l = 0; l < params.layers; ++l) {
      const std::string suffix = std::to_string(l);
      wm[static_cast<size_t>(l)] =
          f.Alloc(f.ConstI(d * d * 8), "weights" + suffix, 8);
      kc[static_cast<size_t>(l)] = f.Alloc(f.ConstI(t * d * 8), "kcache" + suffix, 8);
      vc[static_cast<size_t>(l)] = f.Alloc(f.ConstI(t * d * 8), "vcache" + suffix, 8);
    }
    const Value x = f.Alloc(f.ConstI(d * 8), "act_x", 8);
    const Value y = f.Alloc(f.ConstI(d * 8), "act_y", 8);
    for (int64_t l = 0; l < params.layers; ++l) {
      f.Call("init_matrix", {wm[static_cast<size_t>(l)], f.ConstI(d * d)});
    }
    f.Call("init_matrix", {x, f.ConstI(d)});
    for (int64_t l = 0; l < params.layers; ++l) {
      f.Call(support::StrFormat("layer%lld", static_cast<long long>(l)),
             {wm[static_cast<size_t>(l)], kc[static_cast<size_t>(l)],
              vc[static_cast<size_t>(l)], x, y});
    }
    // Output checksum.
    const Local acc = f.DeclLocal(Type::kF64);
    f.StoreLocal(acc, f.ConstF(0.0));
    f.For(f.ConstI(0), f.ConstI(d), f.ConstI(1), [&](Value i) {
      f.StoreLocal(acc, f.Add(f.LoadLocal(acc), f.Load(f.Index(x, i, 8, 0), 8, Type::kF64)));
    });
    f.Return(f.LoadLocal(acc));
  }
  return w;
}

}  // namespace mira::workloads
