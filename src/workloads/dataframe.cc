#include "src/ir/builder.h"
#include "src/workloads/workloads.h"

namespace mira::workloads {

using ir::FunctionBuilder;
using ir::Local;
using ir::Type;
using ir::Value;

namespace {
constexpr int64_t kRowBytes = 4096;  // wide row: a big record, 2 fields accessed
}  // namespace

// A columnar analytics job over synthetic taxi-trip data. Columns are
// separate far objects (distinct access patterns per operator); a wide
// row-store table exercises selective transmission.
Workload BuildDataFrame(const DataFrameParams& params) {
  Workload w;
  w.name = "dataframe";
  w.module = std::make_unique<ir::Module>();
  w.module->name = w.name;
  const int64_t rows = params.rows;
  const int64_t wide_rows = rows / 8;  // the wide table has fewer, fat rows
  w.footprint_bytes = static_cast<uint64_t>(rows) * (8 /*zone*/ + 8 /*fare*/ + 8 /*flags*/) +
                      static_cast<uint64_t>(params.groups) * 8 +
                      (params.wide_row_scan ? static_cast<uint64_t>(wide_rows) * kRowBytes : 0);

  // init(zone, fare, wide, n, groups)
  {
    std::vector<Type> sig{Type::kPtr, Type::kPtr, Type::kI64, Type::kI64};
    if (params.wide_row_scan) {
      sig.insert(sig.begin() + 2, Type::kPtr);
      sig.push_back(Type::kI64);  // wide-row count
    }
    FunctionBuilder f(w.module.get(), "load_table", sig);
    const Value zone = f.Arg(0);
    const Value fare = f.Arg(1);
    const Value wide = params.wide_row_scan ? f.Arg(2) : Value{};
    const Value n = f.Arg(params.wide_row_scan ? 3 : 2);
    const Value groups = f.Arg(params.wide_row_scan ? 4 : 3);
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      f.Store(f.Index(zone, i, 8, 0), f.Rand(groups), 8);
      const Value cents = f.Rand(f.ConstI(10'000));
      f.Store(f.Index(fare, i, 8, 0), f.I2F(cents), 8);
    });
    if (params.wide_row_scan) {
      const Value wn = f.Arg(5);
      f.For(f.ConstI(0), wn, f.ConstI(1), [&](Value i) {
        // Only two fields get meaningful data; the row is mostly payload.
        f.Store(f.Index(wide, i, kRowBytes, 0), f.I2F(f.Rand(f.ConstI(10'000))), 8);
        f.Store(f.Index(wide, i, kRowBytes, 8), f.Rand(f.ConstI(100)), 8);
      });
    }
    f.Return();
  }

  // filter_flags(zone, flags, n, threshold): full-line sequential writes.
  if (params.filter_op) {
    FunctionBuilder f(w.module.get(), "filter_flags",
                      {Type::kPtr, Type::kPtr, Type::kI64, Type::kI64});
    const Value zone = f.Arg(0);
    const Value flags = f.Arg(1);
    const Value n = f.Arg(2);
    const Value threshold = f.Arg(3);
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      const Value z = f.Load(f.Index(zone, i, 8, 0), 8, Type::kI64);
      f.Store(f.Index(flags, i, 8, 0), f.CmpLt(z, threshold), 8);
    });
    f.Return();
  }

  // avg_min_max(fare, n) — Fig 23's job: three consecutive loops over the
  // same vector, fusable + batchable by the compiler.
  if (params.batch_job) {
    FunctionBuilder f(w.module.get(), "avg_min_max", {Type::kPtr, Type::kI64}, Type::kF64);
    const Value fare = f.Arg(0);
    const Value n = f.Arg(1);
    const Local sum = f.DeclLocal(Type::kF64);
    const Local mn = f.DeclLocal(Type::kF64);
    const Local mx = f.DeclLocal(Type::kF64);
    f.StoreLocal(sum, f.ConstF(0.0));
    f.StoreLocal(mn, f.ConstF(1e18));
    f.StoreLocal(mx, f.ConstF(-1e18));
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      const Value v = f.Load(f.Index(fare, i, 8, 0), 8, Type::kF64);
      f.StoreLocal(sum, f.Add(f.LoadLocal(sum), v));
    });
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      const Value v = f.Load(f.Index(fare, i, 8, 0), 8, Type::kF64);
      f.StoreLocal(mn, f.Min(f.LoadLocal(mn), v));
    });
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      const Value v = f.Load(f.Index(fare, i, 8, 0), 8, Type::kF64);
      f.StoreLocal(mx, f.Max(f.LoadLocal(mx), v));
    });
    const Value avg = f.Div(f.LoadLocal(sum), f.I2F(n));
    f.Return(f.Add(avg, f.Add(f.LoadLocal(mn), f.LoadLocal(mx))));
  }

  // groupby_sum(zone, fare, agg, n): indirect accumulation per zone.
  if (params.groupby_op) {
    FunctionBuilder f(w.module.get(), "groupby_sum",
                      {Type::kPtr, Type::kPtr, Type::kPtr, Type::kI64});
    const Value zone = f.Arg(0);
    const Value fare = f.Arg(1);
    const Value agg = f.Arg(2);
    const Value n = f.Arg(3);
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      const Value z = f.Load(f.Index(zone, i, 8, 0), 8, Type::kI64);
      const Value v = f.Load(f.Index(fare, i, 8, 0), 8, Type::kF64);
      const Value p = f.Index(agg, z, 8, 0);
      f.Store(p, f.Add(f.Load(p, 8, Type::kF64), v), 8);
    });
    f.Return();
  }

  // scan_wide(wide, n): touches 2 of 16 fields per 128 B row — selective
  // transmission (§4.5) cuts traffic by 8×.
  if (params.wide_row_scan) {
    FunctionBuilder f(w.module.get(), "scan_wide", {Type::kPtr, Type::kI64}, Type::kF64);
    const Value wide = f.Arg(0);
    const Value n = f.Arg(1);
    const Local acc = f.DeclLocal(Type::kF64);
    f.StoreLocal(acc, f.ConstF(0.0));
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      const Value fare = f.Load(f.Index(wide, i, kRowBytes, 0), 8, Type::kF64);
      const Value tip = f.Load(f.Index(wide, i, kRowBytes, 8), 8, Type::kI64);
      f.StoreLocal(acc, f.Add(f.LoadLocal(acc), f.Add(fare, f.I2F(tip))));
    });
    f.Return(f.LoadLocal(acc));
  }

  // main
  {
    FunctionBuilder f(w.module.get(), "main", {}, Type::kF64);
    const Value zone = f.Alloc(f.ConstI(rows * 8), "col_zone", 512);
    const Value fare = f.Alloc(f.ConstI(rows * 8), "col_fare", 512);
    Value wide{};
    if (params.wide_row_scan) {
      // AIFM treats each 128 B row as one remoteable object (and fetches it
      // whole — the selective-transmission contrast in §4.5).
      wide = f.Alloc(f.ConstI(wide_rows * kRowBytes), "wide_rows", kRowBytes);
    }
    const Value flags =
        params.filter_op ? f.Alloc(f.ConstI(rows * 8), "col_flags", 512) : Value{};
    const Value agg = f.Alloc(f.ConstI(params.groups * 8), "agg_groups", 8);
    const Value n = f.ConstI(rows);
    if (params.wide_row_scan) {
      f.Call("load_table",
             {zone, fare, wide, n, f.ConstI(params.groups), f.ConstI(wide_rows)});
    } else {
      f.Call("load_table", {zone, fare, n, f.ConstI(params.groups)});
    }
    const Local out = f.DeclLocal(Type::kF64);
    f.StoreLocal(out, f.ConstF(0.0));
    if (params.filter_op) {
      f.Call("filter_flags", {zone, flags, n, f.ConstI(params.groups / 2)});
    }
    if (params.batch_job) {
      const Value r = f.Call("avg_min_max", {fare, n});
      f.StoreLocal(out, f.Add(f.LoadLocal(out), r));
    }
    if (params.groupby_op) {
      f.Call("groupby_sum", {zone, fare, agg, n});
    }
    if (params.wide_row_scan) {
      const Value r = f.Call("scan_wide", {wide, f.ConstI(wide_rows)});
      f.StoreLocal(out, f.Add(f.LoadLocal(out), r));
    }
    f.Return(f.LoadLocal(out));
  }
  return w;
}

}  // namespace mira::workloads
