#include "src/ir/builder.h"
#include "src/workloads/workloads.h"

namespace mira::workloads {

using ir::FunctionBuilder;
using ir::Local;
using ir::Type;
using ir::Value;

namespace {
// Arc: tail @0, head @8, cost @16, flow @24, pad → 64 B.
constexpr int64_t kArcBytes = 64;
// Node: potential @0, next (tree successor) @8, depth @16, pad → 64 B.
constexpr int64_t kNodeBytes = 64;
}  // namespace

// A single-depot vehicle-scheduling kernel in the shape of SPEC-2006 MCF:
// network-simplex-style arc pricing (sequential over arcs, indirect into
// node potentials) plus a spanning-tree walk whose next pointer is loaded
// from memory — the control-flow-dependent pattern that makes MCF "the
// least friendly to program analysis" (§6.1).
//
// The arrays are allocated with 8-byte element granularity, matching how
// the paper ports MCF to AIFM's array library ("MCF's data structures
// allocated in continuous memory") — which is what makes AIFM's
// per-element pointer metadata exceed local memory below full size.
Workload BuildMcf(const McfParams& params) {
  Workload w;
  w.name = "mcf";
  w.module = std::make_unique<ir::Module>();
  w.module->name = w.name;
  w.footprint_bytes = static_cast<uint64_t>(params.arcs * kArcBytes +
                                            params.nodes * kNodeBytes);

  // build_network(arcs, nodes, m, n): random arc endpoints, random tree
  // permutation via next pointers.
  {
    FunctionBuilder f(w.module.get(), "build_network",
                      {Type::kPtr, Type::kPtr, Type::kI64, Type::kI64});
    const Value arcs = f.Arg(0);
    const Value nodes = f.Arg(1);
    const Value m = f.Arg(2);
    const Value n = f.Arg(3);
    f.For(f.ConstI(0), m, f.ConstI(1), [&](Value a) {
      f.Store(f.Index(arcs, a, kArcBytes, 0), f.Rand(n), 8);
      f.Store(f.Index(arcs, a, kArcBytes, 8), f.Rand(n), 8);
      f.Store(f.Index(arcs, a, kArcBytes, 16), f.Rand(f.ConstI(1000)), 8);
      f.Store(f.Index(arcs, a, kArcBytes, 24), f.ConstI(0), 8);
    });
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value v) {
      f.Store(f.Index(nodes, v, kNodeBytes, 0), f.Rand(f.ConstI(500)), 8);
      // A random successor keeps the walk unpredictable (pointer values).
      f.Store(f.Index(nodes, v, kNodeBytes, 8), f.Rand(n), 8);
      f.Store(f.Index(nodes, v, kNodeBytes, 16), f.ConstI(0), 8);
    });
    f.Return();
  }

  // price_arcs(arcs, nodes, m) → i64: reduced costs; marks negative arcs.
  {
    FunctionBuilder f(w.module.get(), "price_arcs", {Type::kPtr, Type::kPtr, Type::kI64},
                      Type::kI64);
    const Value arcs = f.Arg(0);
    const Value nodes = f.Arg(1);
    const Value m = f.Arg(2);
    const Local negatives = f.DeclLocal(Type::kI64);
    f.StoreLocal(negatives, f.ConstI(0));
    f.For(f.ConstI(0), m, f.ConstI(1), [&](Value a) {
      const Value tail = f.Load(f.Index(arcs, a, kArcBytes, 0), 8, Type::kI64);
      const Value head = f.Load(f.Index(arcs, a, kArcBytes, 8), 8, Type::kI64);
      const Value cost = f.Load(f.Index(arcs, a, kArcBytes, 16), 8, Type::kI64);
      const Value pt = f.Load(f.Index(nodes, tail, kNodeBytes, 0), 8, Type::kI64);
      const Value ph = f.Load(f.Index(nodes, head, kNodeBytes, 0), 8, Type::kI64);
      const Value reduced = f.Sub(f.Add(cost, ph), pt);
      const Value neg = f.CmpLt(reduced, f.ConstI(0));
      f.Store(f.Index(arcs, a, kArcBytes, 24), reduced, 8);
      f.StoreLocal(negatives, f.Add(f.LoadLocal(negatives), neg));
    });
    f.Return(f.LoadLocal(negatives));
  }

  // tree_walk(nodes, steps, start) → i64: follow next pointers, bumping
  // depth — the analysis-hostile pointer chase.
  {
    FunctionBuilder f(w.module.get(), "tree_walk", {Type::kPtr, Type::kI64, Type::kI64},
                      Type::kI64);
    const Value nodes = f.Arg(0);
    const Value steps = f.Arg(1);
    const Value start = f.Arg(2);
    const Local cur = f.DeclLocal(Type::kI64);
    const Local sum = f.DeclLocal(Type::kI64);
    f.StoreLocal(cur, start);
    f.StoreLocal(sum, f.ConstI(0));
    f.For(f.ConstI(0), steps, f.ConstI(1), [&](Value) {
      const Value c = f.LoadLocal(cur);
      const Value pot = f.Load(f.Index(nodes, c, kNodeBytes, 0), 8, Type::kI64);
      const Value nxt = f.Load(f.Index(nodes, c, kNodeBytes, 8), 8, Type::kI64);
      const Value pd = f.Index(nodes, c, kNodeBytes, 16);
      f.Store(pd, f.Add(f.Load(pd, 8, Type::kI64), f.ConstI(1)), 8);
      f.StoreLocal(sum, f.Add(f.LoadLocal(sum), pot));
      f.StoreLocal(cur, nxt);
    });
    f.Return(f.LoadLocal(sum));
  }

  // update_potentials(nodes, n): sweep applying accumulated depth.
  {
    FunctionBuilder f(w.module.get(), "update_potentials", {Type::kPtr, Type::kI64});
    const Value nodes = f.Arg(0);
    const Value n = f.Arg(1);
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value v) {
      const Value pp = f.Index(nodes, v, kNodeBytes, 0);
      const Value pd = f.Index(nodes, v, kNodeBytes, 16);
      const Value pot = f.Load(pp, 8, Type::kI64);
      const Value depth = f.Load(pd, 8, Type::kI64);
      f.Store(pp, f.Add(pot, depth), 8);
      f.Store(pd, f.ConstI(0), 8);
    });
    f.Return();
  }

  // main
  {
    FunctionBuilder f(w.module.get(), "main", {}, Type::kI64);
    const Value arcs = f.Alloc(f.ConstI(params.arcs * kArcBytes), "mcf_arcs", 8);
    const Value nodes = f.Alloc(f.ConstI(params.nodes * kNodeBytes), "mcf_nodes", 8);
    const Value m = f.ConstI(params.arcs);
    const Value n = f.ConstI(params.nodes);
    f.Call("build_network", {arcs, nodes, m, n});
    const Local total = f.DeclLocal(Type::kI64);
    f.StoreLocal(total, f.ConstI(0));
    f.For(f.ConstI(0), f.ConstI(params.iterations), f.ConstI(1), [&](Value it) {
      const Value negs = f.Call("price_arcs", {arcs, nodes, m});
      const Value walked = f.Call("tree_walk", {nodes, f.ConstI(params.tree_steps), it});
      f.Call("update_potentials", {nodes, n});
      f.StoreLocal(total, f.Add(f.LoadLocal(total), f.Add(negs, walked)));
    });
    f.Return(f.LoadLocal(total));
  }
  return w;
}

}  // namespace mira::workloads
