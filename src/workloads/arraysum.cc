#include "src/ir/builder.h"
#include "src/workloads/workloads.h"

namespace mira::workloads {

using ir::FunctionBuilder;
using ir::Local;
using ir::Type;
using ir::Value;

Workload BuildArraySum(const ArraySumParams& params) {
  Workload w;
  w.name = "arraysum";
  w.module = std::make_unique<ir::Module>();
  w.module->name = w.name;
  w.footprint_bytes = static_cast<uint64_t>(params.elems) * 8;

  {
    FunctionBuilder f(w.module.get(), "fill", {Type::kPtr, Type::kI64});
    const Value arr = f.Arg(0);
    const Value n = f.Arg(1);
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      f.Store(f.Index(arr, i, 8, 0), f.Rand(f.ConstI(1000)), 8);
    });
    f.Return();
  }
  {
    FunctionBuilder f(w.module.get(), "sum", {Type::kPtr, Type::kI64}, Type::kI64);
    const Value arr = f.Arg(0);
    const Value n = f.Arg(1);
    const Local acc = f.DeclLocal(Type::kI64);
    f.StoreLocal(acc, f.ConstI(0));
    f.For(f.ConstI(0), n, f.ConstI(1), [&](Value i) {
      const Value v = f.Load(f.Index(arr, i, 8, 0), 8, Type::kI64);
      f.StoreLocal(acc, f.Add(f.LoadLocal(acc), v));
    });
    f.Return(f.LoadLocal(acc));
  }
  {
    FunctionBuilder f(w.module.get(), "main", {}, Type::kI64);
    const Value arr = f.Alloc(f.ConstI(params.elems * 8), "array", 8);
    const Value n = f.ConstI(params.elems);
    f.Call("fill", {arr, n});
    const Local total = f.DeclLocal(Type::kI64);
    f.StoreLocal(total, f.ConstI(0));
    f.For(f.ConstI(0), f.ConstI(params.epochs), f.ConstI(1), [&](Value) {
      const Value s = f.Call("sum", {arr, n});
      f.StoreLocal(total, f.Add(f.LoadLocal(total), s));
    });
    f.Return(f.LoadLocal(total));
  }
  return w;
}

}  // namespace mira::workloads
