// MetricsRegistry: the unified metric store behind Mira's observability
// layer. Components register named counters, gauges, and latency histograms
// and hold on to the returned pointers, so hot-path updates are a single
// pointer increment — no lookup cost inside the simulation loops.
//
// Names are hierarchical dotted paths, lowercase, with the owning subsystem
// first: `cache.section.<name>.misses`, `net.read.sync.latency_ns`,
// `interp.func.<name>.calls`, `pipeline.iterations`. Units are spelled in
// the final component where they are not obvious (`_ns`, `_bytes`).

#ifndef MIRA_SRC_TELEMETRY_METRICS_H_
#define MIRA_SRC_TELEMETRY_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/support/stats.h"

namespace mira::telemetry {

// Escapes `s` for embedding inside a JSON string literal.
std::string JsonEscape(std::string_view s);

class MetricsRegistry {
 public:
  // Get-or-create. Returned pointers stay valid until Clear() — the maps
  // are node-based, so registration of further metrics never moves them.
  uint64_t* Counter(const std::string& name);
  double* Gauge(const std::string& name);
  support::LatencyHistogram* Histogram(const std::string& name);

  void AddCounter(const std::string& name, uint64_t delta) { *Counter(name) += delta; }
  void SetCounter(const std::string& name, uint64_t value) { *Counter(name) = value; }
  void SetGauge(const std::string& name, double value) { *Gauge(name) = value; }
  void RecordLatency(const std::string& name, uint64_t ns) { Histogram(name)->Add(ns); }

  // Lookup without creating; nullptr when absent.
  const uint64_t* FindCounter(const std::string& name) const;
  const double* FindGauge(const std::string& name) const;
  const support::LatencyHistogram* FindHistogram(const std::string& name) const;

  size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

  // Zeroes every value but keeps registrations (and outstanding pointers).
  void ResetValues();
  // Drops everything; outstanding pointers become invalid.
  void Clear();

  // Full registry as a JSON object with "counters"/"gauges"/"histograms"
  // sub-objects, keys sorted (maps iterate in order) for stable diffs.
  std::string ToJson() const;
  // Human-readable aligned table, one metric per line.
  std::string ToTable() const;
  // "metric,kind,value" CSV, keys sorted. Histograms flatten to
  // <name>.count / <name>.mean_ns / <name>.p50_ns / <name>.p99_ns rows.
  std::string ToCsv() const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, support::LatencyHistogram> histograms_;
};

}  // namespace mira::telemetry

#endif  // MIRA_SRC_TELEMETRY_METRICS_H_
