// MetricsRegistry: the unified metric store behind Mira's observability
// layer. Components register named counters, gauges, and latency histograms
// and hold on to the returned pointers, so hot-path updates are a single
// pointer increment — no lookup cost inside the simulation loops.
//
// Names are hierarchical dotted paths, lowercase, with the owning subsystem
// first: `cache.section.<name>.misses`, `net.read.sync.latency_ns`,
// `interp.func.<name>.calls`, `pipeline.iterations`. Units are spelled in
// the final component where they are not obvious (`_ns`, `_bytes`).

#ifndef MIRA_SRC_TELEMETRY_METRICS_H_
#define MIRA_SRC_TELEMETRY_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "src/support/stats.h"

namespace mira::telemetry {

// Escapes `s` for embedding inside a JSON string literal.
std::string JsonEscape(std::string_view s);

// Checks `name` against the naming convention above: one or more dots, and
// every dot-separated segment non-empty lowercase [a-z0-9_] (no leading or
// trailing underscore). Histogram names must additionally end in `_ns` —
// LatencyHistogram records nanoseconds, so the unit belongs in the name.
// Enforced at registration behind MIRA_DCHECK_MSG (debug builds only).
bool ValidMetricName(std::string_view name, bool histogram = false);

// Thread-safety: registration, the convenience mutators, lookups, and the
// serializers all take an internal mutex, so worker threads of the parallel
// evaluation engine (support/thread_pool.h) may register and publish
// concurrently. Hot-path code instead caches the returned pointers and
// accumulates *locally*, merging into the registry once per run while
// holding Acquire() — see net::Transport::FlushTelemetry for the pattern.
// Raw writes through cached pointers are NOT otherwise synchronized.
class MetricsRegistry {
 public:
  // Get-or-create. Returned pointers stay valid until Clear() — the maps
  // are node-based, so registration of further metrics never moves them.
  uint64_t* Counter(const std::string& name);
  double* Gauge(const std::string& name);
  support::LatencyHistogram* Histogram(const std::string& name);

  void AddCounter(const std::string& name, uint64_t delta);
  void SetCounter(const std::string& name, uint64_t value);
  void SetGauge(const std::string& name, double value);
  void RecordLatency(const std::string& name, uint64_t ns);

  // Lookup without creating; nullptr when absent.
  const uint64_t* FindCounter(const std::string& name) const;
  const double* FindGauge(const std::string& name) const;
  const support::LatencyHistogram* FindHistogram(const std::string& name) const;

  size_t size() const;

  // Exclusive access for batched merges through cached pointers (per-run
  // telemetry flushes). Hold the returned lock for the whole merge.
  std::unique_lock<std::mutex> Acquire() const { return std::unique_lock<std::mutex>(mu_); }

  // Zeroes every value but keeps registrations (and outstanding pointers).
  void ResetValues();
  // Drops everything; outstanding pointers become invalid.
  void Clear();

  // Full registry as a JSON object with "counters"/"gauges"/"histograms"
  // sub-objects, keys sorted (maps iterate in order) for stable diffs.
  std::string ToJson() const;
  // Human-readable aligned table, one metric per line.
  std::string ToTable() const;
  // "metric,kind,value" CSV, keys sorted. Histograms flatten to
  // <name>.count / <name>.mean_ns / <name>.p50_ns / <name>.p99_ns rows.
  std::string ToCsv() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, support::LatencyHistogram> histograms_;
};

}  // namespace mira::telemetry

#endif  // MIRA_SRC_TELEMETRY_METRICS_H_
