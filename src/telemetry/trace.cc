#include "src/telemetry/trace.h"

#include <algorithm>

#include "src/telemetry/metrics.h"
#include "src/support/str.h"

namespace mira::telemetry {

bool TraceRecorder::Admit(const std::string& cat) {
  if (!enabled()) {
    return false;
  }
  if (ring_capacity_ > 0) {
    return true;  // the ring admits everything; Append drops the oldest
  }
  if (events_.size() >= max_events_ &&
      std::find(pinned_cats_.begin(), pinned_cats_.end(), cat) == pinned_cats_.end()) {
    ++dropped_;
    return false;
  }
  return true;
}

void TraceRecorder::Append(TraceEvent e) {
  if (ring_capacity_ > 0 && events_.size() >= ring_capacity_) {
    events_[ring_head_] = std::move(e);
    ring_head_ = (ring_head_ + 1) % ring_capacity_;
    ++dropped_;  // an oldest event was overwritten
    return;
  }
  events_.push_back(std::move(e));
}

void TraceRecorder::SetThreadName(uint32_t tid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[tid] = std::move(name);
}

void TraceRecorder::Begin(const sim::SimClock& clk, std::string name, std::string cat) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const bool admit = Admit(cat);
  open_[clk.tid()].push_back(OpenBegin{name, cat, admit});
  if (admit) {
    Append(TraceEvent{'B', clk.tid(), clk.now_ns(), 0, std::move(name), std::move(cat), ""});
  }
}

void TraceRecorder::End(const sim::SimClock& clk) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(clk.tid());
  if (it == open_.end() || it->second.empty()) {
    return;  // unmatched End: skip
  }
  OpenBegin span = std::move(it->second.back());
  it->second.pop_back();
  if (!span.recorded) {
    return;  // its Begin was dropped at the cap: drop the End too
  }
  if (!Admit(span.cat)) {
    return;
  }
  Append(TraceEvent{'E', clk.tid(), clk.now_ns(), 0, std::move(span.name),
                    std::move(span.cat), ""});
}

void TraceRecorder::Complete(const sim::SimClock& clk, uint64_t ts_ns, uint64_t dur_ns,
                             std::string name, std::string cat, std::string args_json) {
  CompleteOn(clk.tid(), ts_ns, dur_ns, std::move(name), std::move(cat), std::move(args_json));
}

void TraceRecorder::CompleteOn(uint32_t tid, uint64_t ts_ns, uint64_t dur_ns,
                               std::string name, std::string cat, std::string args_json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Admit(cat)) {
    return;
  }
  Append(TraceEvent{'X', tid, ts_ns, dur_ns, std::move(name), std::move(cat),
                    std::move(args_json)});
}

void TraceRecorder::Instant(const sim::SimClock& clk, std::string name, std::string cat,
                            std::string args_json) {
  InstantOn(clk.tid(), clk.now_ns(), std::move(name), std::move(cat), std::move(args_json));
}

void TraceRecorder::InstantOn(uint32_t tid, uint64_t ts_ns, std::string name, std::string cat,
                              std::string args_json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Admit(cat)) {
    return;
  }
  Append(TraceEvent{'i', tid, ts_ns, 0, std::move(name), std::move(cat),
                    std::move(args_json)});
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  open_.clear();
  thread_names_.clear();
  dropped_ = 0;
  ring_head_ = 0;
}

std::string TraceRecorder::ToJson() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : thread_names_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += support::StrFormat(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
        "\"args\":{\"name\":\"%s\"}}",
        tid, JsonEscape(name).c_str());
  }
  // In ring mode the oldest surviving event sits at ring_head_ once the
  // buffer has wrapped; export chronologically from there.
  const size_t n = events_.size();
  const size_t start = (ring_capacity_ > 0 && n >= ring_capacity_) ? ring_head_ : 0;
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events_[(start + i) % n];
    out += first ? "\n" : ",\n";
    first = false;
    out += support::StrFormat(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":0,\"tid\":%u,\"ts\":%.3f",
        JsonEscape(e.name).c_str(), JsonEscape(e.cat).c_str(), e.phase, e.tid,
        static_cast<double>(e.ts_ns) / 1000.0);
    if (e.phase == 'X') {
      out += support::StrFormat(",\"dur\":%.3f", static_cast<double>(e.dur_ns) / 1000.0);
    }
    if (e.phase == 'i') {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    if (!e.args_json.empty()) {
      out += ",\"args\":" + e.args_json;
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace mira::telemetry
