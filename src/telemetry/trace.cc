#include "src/telemetry/trace.h"

#include <algorithm>

#include "src/telemetry/metrics.h"
#include "src/support/str.h"

namespace mira::telemetry {

bool TraceRecorder::Admit(const std::string& cat) {
  if (!enabled()) {
    return false;
  }
  if (events_.size() >= max_events_ &&
      std::find(pinned_cats_.begin(), pinned_cats_.end(), cat) == pinned_cats_.end()) {
    ++dropped_;
    return false;
  }
  return true;
}

void TraceRecorder::Begin(const sim::SimClock& clk, std::string name, std::string cat) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Admit(cat)) {
    return;
  }
  open_[clk.tid()].push_back(events_.size());
  events_.push_back(TraceEvent{'B', clk.tid(), clk.now_ns(), 0, std::move(name),
                               std::move(cat), ""});
}

void TraceRecorder::End(const sim::SimClock& clk) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& stack = open_[clk.tid()];
  if (stack.empty()) {
    return;  // unmatched End (its Begin was dropped at the cap): skip
  }
  const size_t begin_index = stack.back();
  stack.pop_back();
  if (!Admit(events_[begin_index].cat)) {
    return;
  }
  events_.push_back(TraceEvent{'E', clk.tid(), clk.now_ns(), 0, events_[begin_index].name,
                               events_[begin_index].cat, ""});
}

void TraceRecorder::Complete(const sim::SimClock& clk, uint64_t ts_ns, uint64_t dur_ns,
                             std::string name, std::string cat, std::string args_json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Admit(cat)) {
    return;
  }
  events_.push_back(TraceEvent{'X', clk.tid(), ts_ns, dur_ns, std::move(name),
                               std::move(cat), std::move(args_json)});
}

void TraceRecorder::Instant(const sim::SimClock& clk, std::string name, std::string cat,
                            std::string args_json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Admit(cat)) {
    return;
  }
  events_.push_back(TraceEvent{'i', clk.tid(), clk.now_ns(), 0, std::move(name),
                               std::move(cat), std::move(args_json)});
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  open_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::ToJson() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += support::StrFormat(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":0,\"tid\":%u,\"ts\":%.3f",
        JsonEscape(e.name).c_str(), JsonEscape(e.cat).c_str(), e.phase, e.tid,
        static_cast<double>(e.ts_ns) / 1000.0);
    if (e.phase == 'X') {
      out += support::StrFormat(",\"dur\":%.3f", static_cast<double>(e.dur_ns) / 1000.0);
    }
    if (e.phase == 'i') {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    if (!e.args_json.empty()) {
      out += ",\"args\":" + e.args_json;
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace mira::telemetry
