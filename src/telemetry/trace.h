// TraceRecorder: an event timeline over *simulated* time, exported in the
// Chrome trace-event JSON format (open chrome://tracing or https://ui.
// perfetto.dev and load the file). Because every timestamp comes from a
// SimClock, traces are bit-identical across hosts, and one logical thread
// of execution (one SimClock) maps to one trace-viewer track.
//
// Recording is off by default: every instrumentation site is gated on
// enabled(), so the simulator pays nothing unless a run asked for a trace
// (`--trace-out=`). A hard event cap bounds memory on huge runs; dropped
// events are counted, never silently lost.

#ifndef MIRA_SRC_TELEMETRY_TRACE_H_
#define MIRA_SRC_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/sim/clock.h"

namespace mira::telemetry {

struct TraceEvent {
  char phase = 'i';        // 'B' begin, 'E' end, 'X' complete, 'i' instant
  uint32_t tid = 0;        // logical thread (SimClock id)
  uint64_t ts_ns = 0;      // simulated time
  uint64_t dur_ns = 0;     // 'X' only
  std::string name;
  std::string cat;
  std::string args_json;   // "" or a complete JSON object ("{...}")
};

// Thread-safety: event-appending entry points take an internal mutex, so
// parallel evaluation workers may record concurrently. Each worker's clock
// carries its own tid and simulated timestamps, so the *content* of the
// trace is deterministic; only the interleaving (and tid numbering) in the
// exported JSON can vary across parallel runs. enabled() is a relaxed
// atomic read — the zero-cost gate every instrumentation site checks.
class TraceRecorder {
 public:
  void Enable(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
    if (on) {
      std::lock_guard<std::mutex> lock(mu_);
      // Pre-size the event buffer so the first traced run doesn't pay
      // vector-growth churn inside the simulation hot path.
      events_.reserve(std::min<size_t>(max_events_, 1u << 16));
    }
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Memory backstop: further events beyond the cap are dropped and counted.
  // Pinned categories are exempt: low-frequency control events (the
  // optimizer/adaptive loop's decision points, category "pipeline") must
  // survive even when millions of hot cache/net events filled the buffer
  // first — they are what makes a long trace reconstructable.
  void set_max_events(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    max_events_ = n;
  }
  void PinCategory(std::string cat) {
    std::lock_guard<std::mutex> lock(mu_);
    pinned_cats_.push_back(std::move(cat));
  }

  // Scoped duration events. End closes the innermost open Begin on the
  // clock's thread and re-states its name (Perfetto accepts both forms;
  // restating keeps the JSON self-describing).
  void Begin(const sim::SimClock& clk, std::string name, std::string cat);
  void End(const sim::SimClock& clk);

  // A span known only at completion (e.g. an async fetch): starts at
  // `ts_ns`, lasts `dur_ns`, attributed to the clock's thread.
  void Complete(const sim::SimClock& clk, uint64_t ts_ns, uint64_t dur_ns, std::string name,
                std::string cat, std::string args_json = "");

  // A point event at the clock's current time.
  void Instant(const sim::SimClock& clk, std::string name, std::string cat,
               std::string args_json = "");

  // Post-run readers (report sinks, tests): call only after every recording
  // thread has joined.
  const std::vector<TraceEvent>& events() const { return events_; }
  size_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  void Clear();

  // {"displayTimeUnit":"ns","traceEvents":[...]} — ts/dur in microseconds
  // (the Chrome format's unit) with nanosecond fractions preserved.
  std::string ToJson() const;

 private:
  // Requires mu_ held.
  bool Admit(const std::string& cat);

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  size_t max_events_ = 4u << 20;
  size_t dropped_ = 0;
  std::vector<std::string> pinned_cats_{"pipeline"};
  std::vector<TraceEvent> events_;
  // Per-thread stack of open Begin event indices, for End name matching.
  std::map<uint32_t, std::vector<size_t>> open_;
};

}  // namespace mira::telemetry

#endif  // MIRA_SRC_TELEMETRY_TRACE_H_
