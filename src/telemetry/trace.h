// TraceRecorder: an event timeline over *simulated* time, exported in the
// Chrome trace-event JSON format (open chrome://tracing or https://ui.
// perfetto.dev and load the file). Because every timestamp comes from a
// SimClock, traces are bit-identical across hosts, and one logical thread
// of execution (one SimClock) maps to one trace-viewer track. Components
// may also claim dedicated lanes (e.g. one per cache section) by allocating
// a tid and naming it via SetThreadName; the exporter emits the
// `thread_name` metadata events Perfetto uses to label tracks.
//
// Recording is off by default: every instrumentation site is gated on
// enabled(), so the simulator pays nothing unless a run asked for a trace
// (`--trace-out=` / `--chrome-trace-out=`). Two memory backstops exist:
//  - the default hard cap (set_max_events): once full, further events are
//    dropped-newest and counted; pinned categories ("pipeline") are exempt
//    so a long trace stays reconstructable from its decision points;
//  - an opt-in ring buffer (set_ring_capacity, `--trace-ring=`): the last N
//    events are kept, oldest overwritten first (pinned categories
//    included), for week-long adaptive runs where the *tail* matters.
// Dropped events are counted either way, never silently lost.

#ifndef MIRA_SRC_TELEMETRY_TRACE_H_
#define MIRA_SRC_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/sim/clock.h"

namespace mira::telemetry {

struct TraceEvent {
  char phase = 'i';        // 'B' begin, 'E' end, 'X' complete, 'i' instant
  uint32_t tid = 0;        // logical thread (SimClock id)
  uint64_t ts_ns = 0;      // simulated time
  uint64_t dur_ns = 0;     // 'X' only
  std::string name;
  std::string cat;
  std::string args_json;   // "" or a complete JSON object ("{...}")
};

// Thread-safety: event-appending entry points take an internal mutex, so
// parallel evaluation workers may record concurrently. Each worker's clock
// carries its own tid and simulated timestamps, so the *content* of the
// trace is deterministic; only the interleaving (and tid numbering) in the
// exported JSON can vary across parallel runs. enabled() is a relaxed
// atomic read — the zero-cost gate every instrumentation site checks.
class TraceRecorder {
 public:
  void Enable(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
    if (on) {
      std::lock_guard<std::mutex> lock(mu_);
      // Pre-size the event buffer so the first traced run doesn't pay
      // vector-growth churn inside the simulation hot path.
      events_.reserve(std::min<size_t>(
          ring_capacity_ > 0 ? ring_capacity_ : max_events_, 1u << 16));
    }
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Memory backstop: further events beyond the cap are dropped and counted.
  // Pinned categories are exempt: low-frequency control events (the
  // optimizer/adaptive loop's decision points, category "pipeline") must
  // survive even when millions of hot cache/net events filled the buffer
  // first — they are what makes a long trace reconstructable.
  void set_max_events(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    max_events_ = n;
  }
  // Ring-buffer mode (0 = off, the default): keep only the newest `n`
  // events, overwriting the oldest (pinned categories included — the ring
  // trades reconstructability for a bounded, recent window). Overwrites
  // count as drops. Set before recording starts; default preserves the
  // drop-newest cap behavior exactly.
  void set_ring_capacity(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    ring_capacity_ = n;
    ring_head_ = 0;
  }
  size_t ring_capacity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_capacity_;
  }
  void PinCategory(std::string cat) {
    std::lock_guard<std::mutex> lock(mu_);
    pinned_cats_.push_back(std::move(cat));
  }

  // Names a logical thread's lane in the exported timeline (Perfetto
  // `thread_name` metadata). Used by cache sections to claim per-section
  // lanes: `section:<name>`.
  void SetThreadName(uint32_t tid, std::string name);

  // Scoped duration events. End closes the innermost open Begin on the
  // clock's thread and re-states its name (Perfetto accepts both forms;
  // restating keeps the JSON self-describing). Nestable per thread.
  void Begin(const sim::SimClock& clk, std::string name, std::string cat);
  void End(const sim::SimClock& clk);

  // A span known only at completion (e.g. an async fetch): starts at
  // `ts_ns`, lasts `dur_ns`, attributed to the clock's thread — or, via the
  // *On overloads, to an explicit lane tid (per-section lanes).
  void Complete(const sim::SimClock& clk, uint64_t ts_ns, uint64_t dur_ns, std::string name,
                std::string cat, std::string args_json = "");
  void CompleteOn(uint32_t tid, uint64_t ts_ns, uint64_t dur_ns, std::string name,
                  std::string cat, std::string args_json = "");

  // A point event at the clock's current time (or on an explicit lane).
  void Instant(const sim::SimClock& clk, std::string name, std::string cat,
               std::string args_json = "");
  void InstantOn(uint32_t tid, uint64_t ts_ns, std::string name, std::string cat,
                 std::string args_json = "");

  // Post-run readers (report sinks, tests): call only after every recording
  // thread has joined. In ring mode the vector's storage order rotates;
  // ToJson exports chronologically.
  const std::vector<TraceEvent>& events() const { return events_; }
  size_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  void Clear();

  // {"displayTimeUnit":"ns","traceEvents":[...]} — ts/dur in microseconds
  // (the Chrome format's unit) with nanosecond fractions preserved.
  // Thread-name metadata events ('M' phase) come first.
  std::string ToJson() const;

 private:
  // Requires mu_ held.
  bool Admit(const std::string& cat);
  void Append(TraceEvent e);

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  size_t max_events_ = 4u << 20;
  size_t ring_capacity_ = 0;  // 0 = cap mode
  size_t ring_head_ = 0;      // next overwrite slot once the ring is full
  size_t dropped_ = 0;
  std::vector<std::string> pinned_cats_{"pipeline"};
  std::vector<TraceEvent> events_;
  std::map<uint32_t, std::string> thread_names_;
  // Per-thread stack of open Begins, for End matching. Entries carry the
  // name/category (not an index — ring overwrites invalidate indices);
  // `recorded` is false when the Begin itself was dropped at the cap, so
  // the matching End is skipped and nesting stays aligned.
  struct OpenBegin {
    std::string name;
    std::string cat;
    bool recorded = false;
  };
  std::map<uint32_t, std::vector<OpenBegin>> open_;
};

}  // namespace mira::telemetry

#endif  // MIRA_SRC_TELEMETRY_TRACE_H_
