#include "src/telemetry/metrics.h"

#include "src/support/check.h"
#include "src/support/str.h"

namespace mira::telemetry {

bool ValidMetricName(std::string_view name, bool histogram) {
  if (name.empty() || name.find('.') == std::string_view::npos) {
    return false;
  }
  size_t seg_start = 0;
  for (size_t i = 0; i <= name.size(); ++i) {
    if (i == name.size() || name[i] == '.') {
      if (i == seg_start) {
        return false;  // empty segment (leading/trailing/double dot)
      }
      if (name[seg_start] == '_' || name[i - 1] == '_') {
        return false;
      }
      seg_start = i + 1;
      continue;
    }
    const char c = name[i];
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  if (histogram && (name.size() < 3 || name.substr(name.size() - 3) != "_ns")) {
    return false;
  }
  return true;
}

namespace {

void CheckName(const std::string& name, bool histogram = false) {
  MIRA_DCHECK_MSG(ValidMetricName(name, histogram), name.c_str());
  (void)name;
  (void)histogram;
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += support::StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

uint64_t* MetricsRegistry::Counter(const std::string& name) {
  CheckName(name);
  std::lock_guard<std::mutex> lock(mu_);
  return &counters_[name];
}

double* MetricsRegistry::Gauge(const std::string& name) {
  CheckName(name);
  std::lock_guard<std::mutex> lock(mu_);
  return &gauges_[name];
}

support::LatencyHistogram* MetricsRegistry::Histogram(const std::string& name) {
  CheckName(name, /*histogram=*/true);
  std::lock_guard<std::mutex> lock(mu_);
  return &histograms_[name];
}

void MetricsRegistry::AddCounter(const std::string& name, uint64_t delta) {
  CheckName(name);
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetCounter(const std::string& name, uint64_t value) {
  CheckName(name);
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] = value;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  CheckName(name);
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::RecordLatency(const std::string& name, uint64_t ns) {
  CheckName(name, /*histogram=*/true);
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Add(ns);
}

const uint64_t* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const double* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const support::LatencyHistogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, v] : counters_) {
    v = 0;
  }
  for (auto& [name, v] : gauges_) {
    v = 0.0;
  }
  for (auto& [name, h] : histograms_) {
    h.Reset();
  }
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    out += support::StrFormat("%s\n    \"%s\": %llu", first ? "" : ",",
                              JsonEscape(name).c_str(), static_cast<unsigned long long>(v));
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    out += support::StrFormat("%s\n    \"%s\": %.9g", first ? "" : ",",
                              JsonEscape(name).c_str(), v);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += support::StrFormat(
        "%s\n    \"%s\": {\"count\": %llu, \"mean_ns\": %.3f, \"p50_ns\": %llu, "
        "\"p90_ns\": %llu, \"p99_ns\": %llu}",
        first ? "" : ",", JsonEscape(name).c_str(),
        static_cast<unsigned long long>(h.count()), h.mean(),
        static_cast<unsigned long long>(h.PercentileNs(50)),
        static_cast<unsigned long long>(h.PercentileNs(90)),
        static_cast<unsigned long long>(h.PercentileNs(99)));
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::ToCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "metric,kind,value\n";
  for (const auto& [name, v] : counters_) {
    out += support::StrFormat("%s,counter,%llu\n", name.c_str(),
                              static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : gauges_) {
    out += support::StrFormat("%s,gauge,%.9g\n", name.c_str(), v);
  }
  for (const auto& [name, h] : histograms_) {
    out += support::StrFormat("%s.count,histogram,%llu\n", name.c_str(),
                              static_cast<unsigned long long>(h.count()));
    out += support::StrFormat("%s.mean_ns,histogram,%.3f\n", name.c_str(), h.mean());
    out += support::StrFormat("%s.p50_ns,histogram,%llu\n", name.c_str(),
                              static_cast<unsigned long long>(h.PercentileNs(50)));
    out += support::StrFormat("%s.p99_ns,histogram,%llu\n", name.c_str(),
                              static_cast<unsigned long long>(h.PercentileNs(99)));
  }
  return out;
}

std::string MetricsRegistry::ToTable() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t width = 8;
  for (const auto& [name, v] : counters_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, v] : gauges_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, h] : histograms_) {
    width = std::max(width, name.size());
  }
  const int w = static_cast<int>(width);
  std::string out;
  for (const auto& [name, v] : counters_) {
    out += support::StrFormat("%-*s %20llu\n", w, name.c_str(),
                              static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : gauges_) {
    out += support::StrFormat("%-*s %20.6g\n", w, name.c_str(), v);
  }
  for (const auto& [name, h] : histograms_) {
    out += support::StrFormat(
        "%-*s count=%llu mean=%s p50=%s p99=%s\n", w, name.c_str(),
        static_cast<unsigned long long>(h.count()),
        support::HumanNs(static_cast<uint64_t>(h.mean())).c_str(),
        support::HumanNs(h.PercentileNs(50)).c_str(),
        support::HumanNs(h.PercentileNs(99)).c_str());
  }
  return out;
}

}  // namespace mira::telemetry
