// The process-wide telemetry context: one MetricsRegistry plus one
// TraceRecorder shared by every subsystem (cache, net, interp, pipeline).
// The simulation is single-host-threaded (logical threads are interleaved
// by the deterministic scheduler), so no locking is needed.
//
// Hot-path components cache metric pointers at construction; end-of-run
// code publishes snapshots (section stats, run profiles) via the Publish*
// helpers next to each subsystem. Benches and examples route `--trace-out=`
// / `--metrics-out=` here through ParseOutputFlags / FlushOutputs.

#ifndef MIRA_SRC_TELEMETRY_TELEMETRY_H_
#define MIRA_SRC_TELEMETRY_TELEMETRY_H_

#include <string>

#include "src/support/status.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace mira::telemetry {

class Telemetry {
 public:
  static Telemetry& Global();

  MetricsRegistry& metrics() { return metrics_; }
  TraceRecorder& trace() { return trace_; }

  // Drops all metrics and trace events (tracing enablement is kept).
  void ResetAll() {
    metrics_.Clear();
    trace_.Clear();
  }

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
};

inline MetricsRegistry& Metrics() { return Telemetry::Global().metrics(); }
inline TraceRecorder& Trace() { return Telemetry::Global().trace(); }

// ---- Report sinks ----

support::Status WriteStringToFile(const std::string& path, const std::string& contents);

// Dumps the global registry as JSON / CSV / a table, the global trace as
// Chrome trace-event JSON.
support::Status WriteMetricsJson(const std::string& path);
support::Status WriteMetricsCsv(const std::string& path);
support::Status WriteTraceJson(const std::string& path);

// ---- CLI wiring for benches and examples ----

struct OutputOptions {
  std::string trace_path;    // --trace-out=<file>
  std::string metrics_path;  // --metrics-out=<file>; a ".csv" suffix selects
                             // CSV, anything else gets JSON
};

// Strips `--trace-out=`/`--metrics-out=` from argv (so downstream flag
// parsers never see them) and enables trace recording when requested.
OutputOptions ParseOutputFlags(int* argc, char** argv);

// Writes whatever ParseOutputFlags requested; logs destinations to stderr.
void FlushOutputs(const OutputOptions& options);

}  // namespace mira::telemetry

#endif  // MIRA_SRC_TELEMETRY_TELEMETRY_H_
