// The process-wide telemetry context: one MetricsRegistry plus one
// TraceRecorder shared by every subsystem (cache, net, interp, pipeline).
// The simulation is single-host-threaded (logical threads are interleaved
// by the deterministic scheduler), so no locking is needed.
//
// Hot-path components cache metric pointers at construction; end-of-run
// code publishes snapshots (section stats, run profiles) via the Publish*
// helpers next to each subsystem. Benches and examples route `--trace-out=`
// (alias `--chrome-trace-out=`), `--metrics-out=`, `--profile-out=`, and
// `--trace-ring=` here through ParseOutputFlags / FlushOutputs. The stall
// profiler (profiler.h) has its own global, telemetry::Profiler().

#ifndef MIRA_SRC_TELEMETRY_TELEMETRY_H_
#define MIRA_SRC_TELEMETRY_TELEMETRY_H_

#include <string>

#include "src/support/status.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/profiler.h"
#include "src/telemetry/trace.h"

namespace mira::telemetry {

class Telemetry {
 public:
  static Telemetry& Global();

  MetricsRegistry& metrics() { return metrics_; }
  TraceRecorder& trace() { return trace_; }

  // Drops all metrics and trace events (tracing enablement is kept).
  void ResetAll() {
    metrics_.Clear();
    trace_.Clear();
  }

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
};

inline MetricsRegistry& Metrics() { return Telemetry::Global().metrics(); }
inline TraceRecorder& Trace() { return Telemetry::Global().trace(); }

// ---- Report sinks ----

support::Status WriteStringToFile(const std::string& path, const std::string& contents);

// Dumps the global registry as JSON / CSV / a table, the global trace as
// Chrome trace-event JSON, the global stall profiler as folded stacks.
support::Status WriteMetricsJson(const std::string& path);
support::Status WriteMetricsCsv(const std::string& path);
support::Status WriteTraceJson(const std::string& path);
support::Status WriteProfileFolded(const std::string& path);

// ---- CLI wiring for benches and examples ----

struct OutputOptions {
  std::string trace_path;    // --trace-out=<file> / --chrome-trace-out=<file>
  std::string metrics_path;  // --metrics-out=<file>; a ".csv" suffix selects
                             // CSV, anything else gets JSON
  std::string profile_path;  // --profile-out=<file> (folded stacks; enables
                             // the stall profiler)
};

// Strips `--trace-out=` (alias `--chrome-trace-out=`), `--metrics-out=`,
// `--profile-out=`, and `--trace-ring=N` from argv (so downstream flag
// parsers never see them); enables trace recording / stall profiling /
// ring-buffer mode when requested.
OutputOptions ParseOutputFlags(int* argc, char** argv);

// Writes whatever ParseOutputFlags requested; logs destinations to stderr.
// When profiling is on, a top-10 stall table also goes to stderr and
// per-verb totals are published into the registry before the metrics dump.
void FlushOutputs(const OutputOptions& options);

}  // namespace mira::telemetry

#endif  // MIRA_SRC_TELEMETRY_TELEMETRY_H_
