#include "src/telemetry/telemetry.h"

#include <cstdio>
#include <cstring>

namespace mira::telemetry {

Telemetry& Telemetry::Global() {
  static Telemetry instance;
  return instance;
}

support::Status WriteStringToFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return support::Status::InvalidArgument("cannot open " + path);
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  if (written != contents.size()) {
    return support::Status::Internal("short write to " + path);
  }
  return support::Status::Ok();
}

support::Status WriteMetricsJson(const std::string& path) {
  return WriteStringToFile(path, Metrics().ToJson());
}

support::Status WriteMetricsCsv(const std::string& path) {
  return WriteStringToFile(path, Metrics().ToCsv());
}

support::Status WriteTraceJson(const std::string& path) {
  return WriteStringToFile(path, Trace().ToJson());
}

support::Status WriteProfileFolded(const std::string& path) {
  return WriteStringToFile(path, Profiler().Snapshot().ToFolded());
}

OutputOptions ParseOutputFlags(int* argc, char** argv) {
  OutputOptions options;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      options.trace_path = arg + 12;
    } else if (std::strncmp(arg, "--chrome-trace-out=", 19) == 0) {
      options.trace_path = arg + 19;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      options.metrics_path = arg + 14;
    } else if (std::strncmp(arg, "--profile-out=", 14) == 0) {
      options.profile_path = arg + 14;
    } else if (std::strncmp(arg, "--trace-ring=", 13) == 0) {
      Trace().set_ring_capacity(std::strtoull(arg + 13, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (!options.trace_path.empty()) {
    Trace().Enable(true);
  }
  if (!options.profile_path.empty()) {
    Profiler().Enable(true);
  }
  return options;
}

void FlushOutputs(const OutputOptions& options) {
  // Publish derived counters before any metrics dump so they land in it.
  if (Trace().enabled()) {
    Metrics().SetCounter("telemetry.trace.dropped", Trace().dropped());
  }
  if (Profiler().enabled()) {
    Profiler().PublishTotals(Metrics());
  }
  if (!options.trace_path.empty()) {
    const auto status = WriteTraceJson(options.trace_path);
    if (status.ok()) {
      std::fprintf(stderr, "[telemetry] trace: %s (%zu events%s)\n",
                   options.trace_path.c_str(), Trace().events().size(),
                   Trace().dropped() > 0 ? ", some dropped at cap" : "");
    } else {
      std::fprintf(stderr, "[telemetry] trace write failed: %s\n",
                   status.ToString().c_str());
    }
  }
  if (!options.metrics_path.empty()) {
    const std::string& p = options.metrics_path;
    const bool csv = p.size() > 4 && p.compare(p.size() - 4, 4, ".csv") == 0;
    const auto status = csv ? WriteMetricsCsv(p) : WriteMetricsJson(p);
    if (status.ok()) {
      std::fprintf(stderr, "[telemetry] metrics: %s (%zu metrics)\n",
                   options.metrics_path.c_str(), Metrics().size());
    } else {
      std::fprintf(stderr, "[telemetry] metrics write failed: %s\n",
                   status.ToString().c_str());
    }
  }
  if (!options.profile_path.empty()) {
    const auto status = WriteProfileFolded(options.profile_path);
    if (status.ok()) {
      const StallProfile profile = Profiler().Snapshot();
      std::fprintf(stderr, "[telemetry] profile: %s (%zu keys)\n%s",
                   options.profile_path.c_str(), profile.entries.size(),
                   profile.ToTable().c_str());
    } else {
      std::fprintf(stderr, "[telemetry] profile write failed: %s\n",
                   status.ToString().c_str());
    }
  }
}

}  // namespace mira::telemetry
