// StallProfiler: scope-stack stall attribution (the observability layer
// behind Mira's "which loop is waiting on what" question). The interpreter
// maintains a program-scope stack per logical thread (IR function →
// loop/region), and every simulated-clock stall — demand-fetch waits,
// batched-fetch waits, writeback flushes and drains, retry backoff, outage
// wait-out, integrity heal rounds — is charged to the full
// (scope-stack × where × verb) key, e.g.
//
//   main;for@2;act_x;demand_fetch 183220
//
// where `act_x` is the cache section and `demand_fetch` the stall verb.
//
// Charging is strictly observational: the profiler never advances a
// SimClock, so profiled runs are timing-identical to unprofiled ones, and
// the profiler-off path costs one relaxed atomic load per site.
//
// Nested windows account *exclusive* time: an open stall window (BeginStall/
// EndStall) is charged its wall span minus every nested window and leaf
// charge inside it, so a demand fetch that spends most of its span in retry
// backoff attributes the backoff to `retry_backoff`, not `demand_fetch`,
// and totals never double-count.
//
// Determinism: samples accumulate per logical thread (SimClock tid) and are
// merged by commutative addition over key-sorted maps, so serial and
// `--jobs=N` runs of the same work produce bit-identical folded profiles —
// host scheduling and tid numbering cannot leak into the output.

#ifndef MIRA_SRC_TELEMETRY_PROFILER_H_
#define MIRA_SRC_TELEMETRY_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/clock.h"

namespace mira::telemetry {

class MetricsRegistry;

struct StallEntry {
  uint64_t count = 0;  // stall windows / leaf charges folded into this key
  uint64_t ns = 0;     // exclusive simulated nanoseconds
};

// A merged, key-sorted profile. Addition is commutative and the map is
// ordered, so MergeFrom is deterministic regardless of merge order.
struct StallProfile {
  std::map<std::string, StallEntry> entries;

  void MergeFrom(const StallProfile& other) {
    for (const auto& [key, e] : other.entries) {
      StallEntry& dst = entries[key];
      dst.count += e.count;
      dst.ns += e.ns;
    }
  }

  // One `key ns` line per entry, key-sorted — the folded-stack format flame
  // graph tooling consumes directly (flamegraph.pl, speedscope, inferno).
  std::string ToFolded() const;

  // Human-readable top-N table, heaviest key first (ties broken by key).
  std::string ToTable(size_t top_n = 10) const;

  // Total exclusive ns per stall verb (the key's last ';' component).
  std::map<std::string, uint64_t> TotalsByVerb() const;

  uint64_t TotalNs() const;
};

// Thread-safety: every entry point takes an internal mutex (profiling is an
// opt-in observability mode; parallel evaluation workers each carry their
// own clock tid, so their samples land in disjoint shards). enabled() is a
// relaxed atomic read — the zero-cost gate every charge site checks first.
class StallProfiler {
 public:
  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // ---- Program-scope stack (interpreter) ----
  void PushScope(uint32_t tid, std::string_view name);
  void PopScope(uint32_t tid);

  // ---- Stall windows (cache sections, swap, transport, integrity) ----
  // BeginStall opens a window on the clock's thread; EndStall (same thread,
  // after the clock advanced past the stall) charges the window's exclusive
  // time to "<scopes>;<where>;<verb>" and folds the full window into the
  // enclosing open window's nested time. `where` names the charging
  // component (a cache section name, "swap", or a transport verb).
  void BeginStall(const sim::SimClock& clk, std::string_view verb, std::string_view where);
  void EndStall(const sim::SimClock& clk);

  // Leaf charge of a known span (the clock already advanced past it).
  void ChargeStall(const sim::SimClock& clk, std::string_view verb, std::string_view where,
                   uint64_t ns);

  // Merged snapshot across all thread shards (deterministic; see above).
  StallProfile Snapshot() const;

  // Publishes per-verb totals as `profiler.<verb>.stall_ns` /
  // `profiler.<verb>.events` counters.
  void PublishTotals(MetricsRegistry& registry) const;

  void Clear();

 private:
  struct Window {
    std::string prefix;  // scope path captured at BeginStall
    std::string where;
    std::string verb;
    uint64_t start_ns = 0;
    uint64_t inner_ns = 0;  // nested windows + leaf charges, to subtract
  };
  struct Shard {
    std::string path;               // ';'-joined open scope names
    std::vector<size_t> path_lens;  // path length before each push, for pop
    std::vector<Window> open;
    std::map<std::string, StallEntry> local;
  };

  // Requires mu_ held.
  Shard& ShardFor(uint32_t tid) { return shards_[tid]; }
  static std::string Key(const std::string& prefix, std::string_view where,
                         std::string_view verb);
  static void ChargeKey(Shard& shard, std::string key, uint64_t ns);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<uint32_t, Shard> shards_;
};

// The process-wide profiler (mirrors telemetry::Metrics()/Trace()).
StallProfiler& Profiler();

// RAII program scope used by the interpreter: pushes on construction when
// profiling is enabled, pops on destruction — loop bodies with early
// returns (errors, kReturned flow) stay balanced.
class ProfileScope {
 public:
  ProfileScope(uint32_t tid, std::string_view name) : tid_(tid) {
    StallProfiler& prof = Profiler();
    if (prof.enabled()) {
      prof.PushScope(tid_, name);
      engaged_ = true;
    }
  }
  // Loop scopes: "<kind>@<pos>", where `pos` is the loop instruction's
  // position in its region — stable across runs, so keys are deterministic.
  ProfileScope(uint32_t tid, const char* kind, size_t pos) : tid_(tid) {
    StallProfiler& prof = Profiler();
    if (prof.enabled()) {
      prof.PushScope(tid_, std::string(kind) + "@" + std::to_string(pos));
      engaged_ = true;
    }
  }
  ~ProfileScope() {
    if (engaged_) {
      Profiler().PopScope(tid_);
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  uint32_t tid_;
  bool engaged_ = false;
};

}  // namespace mira::telemetry

#endif  // MIRA_SRC_TELEMETRY_PROFILER_H_
