#include "src/telemetry/profiler.h"

#include <algorithm>

#include "src/support/str.h"
#include "src/telemetry/metrics.h"

namespace mira::telemetry {

StallProfiler& Profiler() {
  static StallProfiler instance;
  return instance;
}

std::string StallProfiler::Key(const std::string& prefix, std::string_view where,
                               std::string_view verb) {
  std::string key;
  key.reserve(prefix.size() + where.size() + verb.size() + 9);
  key += prefix.empty() ? std::string_view("(root)") : std::string_view(prefix);
  key += ';';
  key += where;
  key += ';';
  key += verb;
  return key;
}

void StallProfiler::ChargeKey(Shard& shard, std::string key, uint64_t ns) {
  StallEntry& e = shard.local[std::move(key)];
  ++e.count;
  e.ns += ns;
}

void StallProfiler::PushScope(uint32_t tid, std::string_view name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Shard& shard = ShardFor(tid);
  shard.path_lens.push_back(shard.path.size());
  if (!shard.path.empty()) {
    shard.path += ';';
  }
  shard.path += name;
}

void StallProfiler::PopScope(uint32_t tid) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Shard& shard = ShardFor(tid);
  if (shard.path_lens.empty()) {
    return;  // enabled mid-run: tolerate an unmatched pop
  }
  shard.path.resize(shard.path_lens.back());
  shard.path_lens.pop_back();
}

void StallProfiler::BeginStall(const sim::SimClock& clk, std::string_view verb,
                               std::string_view where) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Shard& shard = ShardFor(clk.tid());
  Window w;
  w.prefix = shard.path;  // captured now: scope pushes inside the window
                          // (none today) could not retroactively move it
  w.where = where;
  w.verb = verb;
  w.start_ns = clk.now_ns();
  shard.open.push_back(std::move(w));
}

void StallProfiler::EndStall(const sim::SimClock& clk) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Shard& shard = ShardFor(clk.tid());
  if (shard.open.empty()) {
    return;  // enabled mid-window: tolerate an unmatched end
  }
  Window w = std::move(shard.open.back());
  shard.open.pop_back();
  const uint64_t window = clk.now_ns() > w.start_ns ? clk.now_ns() - w.start_ns : 0;
  const uint64_t exclusive = window > w.inner_ns ? window - w.inner_ns : 0;
  ChargeKey(shard, Key(w.prefix, w.where, w.verb), exclusive);
  if (!shard.open.empty()) {
    // The whole window (nested charges included) is inner time of the parent.
    shard.open.back().inner_ns += window;
  }
}

void StallProfiler::ChargeStall(const sim::SimClock& clk, std::string_view verb,
                                std::string_view where, uint64_t ns) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Shard& shard = ShardFor(clk.tid());
  ChargeKey(shard, Key(shard.path, where, verb), ns);
  if (!shard.open.empty()) {
    shard.open.back().inner_ns += ns;
  }
}

StallProfile StallProfiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StallProfile out;
  for (const auto& [tid, shard] : shards_) {
    for (const auto& [key, e] : shard.local) {
      StallEntry& dst = out.entries[key];
      dst.count += e.count;
      dst.ns += e.ns;
    }
  }
  return out;
}

void StallProfiler::PublishTotals(MetricsRegistry& registry) const {
  const StallProfile profile = Snapshot();
  for (const auto& [verb, ns] : profile.TotalsByVerb()) {
    registry.SetCounter("profiler." + verb + ".stall_ns", ns);
  }
  for (const auto& [key, e] : profile.entries) {
    const auto sep = key.rfind(';');
    const std::string verb = sep == std::string::npos ? key : key.substr(sep + 1);
    registry.AddCounter("profiler." + verb + ".events", e.count);
  }
}

void StallProfiler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.clear();
}

std::string StallProfile::ToFolded() const {
  std::string out;
  for (const auto& [key, e] : entries) {
    out += support::StrFormat("%s %llu\n", key.c_str(),
                              static_cast<unsigned long long>(e.ns));
  }
  return out;
}

std::string StallProfile::ToTable(size_t top_n) const {
  std::vector<std::pair<std::string, StallEntry>> rows(entries.begin(), entries.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.ns != b.second.ns) {
      return a.second.ns > b.second.ns;
    }
    return a.first < b.first;
  });
  if (rows.size() > top_n) {
    rows.resize(top_n);
  }
  const uint64_t total = TotalNs();
  std::string out = support::StrFormat("total stall: %s across %zu keys\n",
                                       support::HumanNs(total).c_str(), entries.size());
  for (const auto& [key, e] : rows) {
    const double pct =
        total > 0 ? 100.0 * static_cast<double>(e.ns) / static_cast<double>(total) : 0.0;
    out += support::StrFormat("%10s %5.1f%% %8llu  %s\n", support::HumanNs(e.ns).c_str(),
                              pct, static_cast<unsigned long long>(e.count), key.c_str());
  }
  return out;
}

std::map<std::string, uint64_t> StallProfile::TotalsByVerb() const {
  std::map<std::string, uint64_t> out;
  for (const auto& [key, e] : entries) {
    const auto sep = key.rfind(';');
    out[sep == std::string::npos ? key : key.substr(sep + 1)] += e.ns;
  }
  return out;
}

uint64_t StallProfile::TotalNs() const {
  uint64_t total = 0;
  for (const auto& [key, e] : entries) {
    total += e.ns;
  }
  return total;
}

}  // namespace mira::telemetry
