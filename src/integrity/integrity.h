// End-to-end data integrity for the far-memory data plane (DESIGN.md
// "Integrity model").
//
// The simulator keeps one authoritative copy of remote data in the
// FarMemoryNode arena; cache and transport move *timing*, not bytes. The
// IntegrityManager layers a checksum + version-vector ledger over that
// arena at fixed-size granules:
//
//   - Every committed store bumps the granule's monotonic version and
//     recomputes its FNV-1a checksum from the arena bytes, so any later
//     out-of-band damage to the arena (tests, cosmic rays in a real system)
//     is detectable on the next verified fetch.
//   - Every verified fetch recomputes the checksum and compares. A mismatch
//     against the arena is real data damage: with the shadow oracle enabled
//     the granule is restored from the golden mirror; otherwise it is
//     quarantined and the run surfaces kDataLoss.
//   - The version vector tracks `far_version` (what the far node has
//     acknowledged) against `version` (what the program committed). Silent
//     wire faults reported by the injector — corrupt/stale deliveries,
//     replayed writebacks, torn drain bursts — show up as tainted
//     deliveries or as far_version lag, and the cache heals them with
//     bounded re-fetch/re-publish rounds charged to the SimClock.
//
// Episode accounting guarantees `healed == detected` at end of run for any
// injector-only fault schedule: each corruption episode (keyed by the
// fetch/writeback base address) increments `detected` exactly once when it
// opens and `healed` exactly once when it closes, and FinalAudit closes
// every episode that is still open (tainted copies were discarded; the
// arena stayed clean). Only a quarantined granule — real arena damage with
// no golden copy — breaks the invariant, and that is fatal by design.

#ifndef MIRA_SRC_INTEGRITY_INTEGRITY_H_
#define MIRA_SRC_INTEGRITY_INTEGRITY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/farmem/far_memory_node.h"
#include "src/integrity/checksum.h"
#include "src/net/fault_injector.h"
#include "src/sim/clock.h"
#include "src/support/status.h"
#include "src/telemetry/metrics.h"

namespace mira::farmem {
class FarMemoryCluster;
}  // namespace mira::farmem

namespace mira::integrity {

struct IntegrityConfig {
  bool enabled = true;
  // Shadow-oracle audit mode: mirror every committed store into a flat
  // golden memory, restore from it on mismatch, and cross-check the whole
  // ledger at end of run, pinpointing the first divergent granule.
  bool paranoid = false;
  // Bounded transparent re-fetch rounds for a tainted clean-line fetch
  // before escalating to the infallible verb.
  int max_refetch_rounds = 3;
  // Simulated cost of verifying one granule (checksum over granule_bytes).
  uint64_t verify_ns_per_granule = 16;
  // Checksum granule. Must be a power of two <= 4096 so a granule never
  // straddles a far-node chunk and Mem() can hand out a zero-copy view.
  uint32_t granule_bytes = 256;

  // `paranoid` from the MIRA_PARANOID environment variable (any non-empty
  // value other than "0" enables the oracle).
  static IntegrityConfig FromEnv();
};

struct IntegrityStats {
  uint64_t commits = 0;             // stores committed into the ledger
  uint64_t fetches_verified = 0;    // local-side verifications
  uint64_t writebacks_committed = 0;  // far-node receipt checks
  // Episode counters: the self-healing contract is healed == detected for
  // every injector-only schedule (see file header).
  uint64_t detected = 0;
  uint64_t healed = 0;
  // Event counters, by silent-fault kind.
  uint64_t corrupt_deliveries = 0;   // tainted read payloads discarded
  uint64_t corrupt_writebacks = 0;   // writeback frames rejected at the far node
  uint64_t stale_reads = 0;          // injector stale-window deliveries
  uint64_t version_stale_reads = 0;  // far_version lag observed at fetch
  uint64_t torn_writebacks = 0;      // lines lost from torn drain bursts
  uint64_t replays_suppressed = 0;   // duplicated writeback frames (no-ops)
  // Recovery-ladder counters.
  uint64_t refetch_rounds = 0;   // transparent re-fetch rounds taken
  uint64_t escalated_heals = 0;  // episodes closed by infallible-verb escalation
  uint64_t quarantined = 0;      // granules with unhealable damage (fatal)
  uint64_t oracle_restores = 0;  // granules restored from the golden mirror
  // Final-audit counters.
  uint64_t audit_granules = 0;         // granules re-verified at end of run
  uint64_t audit_lag_reconciled = 0;   // far_version lag reconciled at audit
  uint64_t oracle_divergences = 0;     // arena-vs-golden mismatches found
  uint64_t first_divergent_addr = 0;   // lowest divergent granule (0 = none)
};

// Verdict for one verified fetch.
enum class FetchVerdict : uint8_t {
  kClean = 0,  // delivery usable
  kRetry,      // tainted delivery: discard and re-fetch
  kStale,      // far copy lags a committed store: drain writebacks, re-fetch
  kFatal,      // quarantined granule: surface kDataLoss
};

class IntegrityManager {
 public:
  explicit IntegrityManager(farmem::FarMemoryNode* node, IntegrityConfig config = {});

  bool enabled() const { return config_.enabled; }
  const IntegrityConfig& config() const { return config_; }
  const IntegrityStats& stats() const { return stats_; }
  // Ok until a granule is quarantined; then the kDataLoss status that every
  // subsequent instruction surfaces.
  const support::Status& fatal() const { return fatal_; }

  // Commits one store (the interpreter's write-through). Bumps the version
  // of every overlapped granule and recomputes its checksum from the arena.
  // `through_cache` = false for stores applied at the far node itself
  // (offloaded/native execution): those advance far_version immediately —
  // there is no writeback in flight to wait for.
  void CommitStore(uint64_t addr, uint32_t len, bool through_cache = true);

  // Local-side verification of one delivered range. Episode accounting is
  // keyed on `key` (the fetch's base address); `delivery` carries the wire
  // taint flags recorded by the transport. Charges verification time to
  // `clk`. A checksum mismatch against the arena is real damage: restored
  // from the golden mirror in paranoid mode, quarantined (-> kFatal)
  // otherwise.
  FetchVerdict VerifyFetch(sim::SimClock& clk, uint64_t key, uint64_t raddr, uint32_t len,
                           const net::Delivery& delivery);

  // Far-node receipt of one writeback frame. Returns false when the frame
  // is rejected (wire corruption) and must be retransmitted. Duplicated
  // frames are idempotent: the version vector suppresses the replay.
  bool CommitWriteback(sim::SimClock& clk, uint64_t raddr, uint32_t len,
                       const net::Delivery& delivery);

  // Operator-grade apply after ladder escalation (infallible verb): always
  // accepted, closes any open episode at `raddr` as healed.
  void ForceCommit(uint64_t raddr, uint32_t len);

  // Records a line lost from a torn drain burst: its verb completed on the
  // wire but the far node never applied it. far_version keeps lagging until
  // the burst receipt audit re-publishes the line.
  void RecordTorn(uint64_t raddr, uint32_t len);

  // Closes the episode keyed at `key` as healed, if one is open.
  // `escalated` marks heals delivered by the infallible-verb rung.
  void MarkHealed(uint64_t key, bool escalated = false);
  bool EpisodeOpen(uint64_t key) const { return episodes_.count(key) > 0; }
  void CountRefetchRound() { ++stats_.refetch_rounds; }

  // End-of-run audit (backend drain): re-verifies every ledger granule
  // against the arena — and against the golden mirror in paranoid mode,
  // recording the first divergent granule — reconciles any still-lagging
  // far versions, and closes surviving episodes as healed (their tainted
  // copies were discarded; the arena stayed clean). Metadata-only: charges
  // verification time but issues no verbs.
  void FinalAudit(sim::SimClock& clk);

  void Publish(telemetry::MetricsRegistry& registry) const;

  // Routes arena reads/writes through the replicated cluster when one is
  // attached: verification reads come from the first live replica and
  // golden-mirror restores propagate to every live replica, so the ledger
  // stays consistent with whichever copy the transport serves next.
  void SetCluster(farmem::FarMemoryCluster* cluster) { cluster_ = cluster; }

  // Quarantines every granule overlapping [addr, addr+len): the failover
  // ladder found no surviving replica for the range, so its bytes are gone
  // for good. Latches `fatal()` to kDataLoss like any unhealable damage.
  void QuarantineRange(uint64_t addr, uint32_t len);

  // Test hook: deliberately damage the arena bytes of `addr` without
  // updating the ledger, modeling out-of-band corruption.
  void DamageArenaForTest(uint64_t addr, uint32_t len);

 private:
  struct GranuleRecord {
    uint64_t checksum = 0;
    uint64_t version = 0;      // committed by the program
    uint64_t far_version = 0;  // acknowledged by the far node
    bool quarantined = false;
  };

  uint64_t GranuleBase(uint64_t addr) const { return addr & ~uint64_t{config_.granule_bytes - 1}; }
  uint64_t ChecksumGranule(uint64_t base, uint64_t version);
  void ChargeVerify(sim::SimClock& clk, uint64_t granules);
  // Opens an episode at `key` (increments `detected` once per episode).
  void OpenEpisode(uint64_t key);
  void Quarantine(uint64_t base, GranuleRecord& rec);
  bool RestoreFromGolden(uint64_t base, GranuleRecord& rec);
  // Authoritative arena bytes for [addr, addr+len): the cluster's first live
  // replica when one is attached, the single node otherwise.
  uint8_t* ArenaMem(uint64_t addr, uint32_t len);

  farmem::FarMemoryNode* node_;
  farmem::FarMemoryCluster* cluster_ = nullptr;
  IntegrityConfig config_;
  IntegrityStats stats_;
  support::Status fatal_;
  std::unordered_map<uint64_t, GranuleRecord> ledger_;
  std::unordered_map<uint64_t, uint8_t> episodes_;  // key -> open marker
  std::unordered_map<uint64_t, std::vector<uint8_t>> golden_;  // paranoid mirror
};

// Convenience: `m` when it is attached and enabled, nullptr otherwise.
inline IntegrityManager* ActiveOrNull(IntegrityManager* m) {
  return (m != nullptr && m->enabled()) ? m : nullptr;
}

}  // namespace mira::integrity

#endif  // MIRA_SRC_INTEGRITY_INTEGRITY_H_
