#include "src/integrity/integrity.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/farmem/cluster.h"
#include "src/support/check.h"

namespace mira::integrity {

namespace {

std::string QuarantineMessage(uint64_t base) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "integrity: unhealable checksum mismatch at remote 0x%llx (granule quarantined)",
                static_cast<unsigned long long>(base));
  return std::string(buf);
}

}  // namespace

IntegrityConfig IntegrityConfig::FromEnv() {
  IntegrityConfig config;
  const char* paranoid = std::getenv("MIRA_PARANOID");
  config.paranoid = paranoid != nullptr && paranoid[0] != '\0' && std::strcmp(paranoid, "0") != 0;
  return config;
}

IntegrityManager::IntegrityManager(farmem::FarMemoryNode* node, IntegrityConfig config)
    : node_(node), config_(config) {
  MIRA_CHECK(node_ != nullptr);
  MIRA_CHECK(config_.granule_bytes > 0 &&
             (config_.granule_bytes & (config_.granule_bytes - 1)) == 0);
  // A granule must never straddle a far-node chunk so Mem() can hand out a
  // contiguous zero-copy view.
  MIRA_CHECK(config_.granule_bytes <= 4096);
  MIRA_CHECK(config_.max_refetch_rounds >= 1);
}

uint8_t* IntegrityManager::ArenaMem(uint64_t addr, uint32_t len) {
  if (cluster_ != nullptr) {
    return cluster_->Mem(addr, len);
  }
  return node_->Mem(addr, len);
}

uint64_t IntegrityManager::ChecksumGranule(uint64_t base, uint64_t version) {
  const uint8_t* mem = ArenaMem(base, config_.granule_bytes);
  return LineChecksum(mem, config_.granule_bytes, version);
}

void IntegrityManager::ChargeVerify(sim::SimClock& clk, uint64_t granules) {
  clk.Advance(granules * config_.verify_ns_per_granule);
}

void IntegrityManager::OpenEpisode(uint64_t key) {
  if (episodes_.emplace(key, uint8_t{1}).second) {
    ++stats_.detected;
  }
}

void IntegrityManager::MarkHealed(uint64_t key, bool escalated) {
  if (episodes_.erase(key) > 0) {
    ++stats_.healed;
    if (escalated) {
      ++stats_.escalated_heals;
    }
  }
}

void IntegrityManager::Quarantine(uint64_t base, GranuleRecord& rec) {
  rec.quarantined = true;
  ++stats_.detected;
  ++stats_.quarantined;
  if (fatal_.ok()) {
    fatal_ = support::Status::DataLoss(QuarantineMessage(base));
  }
}

bool IntegrityManager::RestoreFromGolden(uint64_t base, GranuleRecord& rec) {
  const auto it = golden_.find(base);
  if (it == golden_.end()) {
    return false;
  }
  if (cluster_ != nullptr) {
    // Propagate the restore to every live replica, not just the one the
    // next read happens to hit.
    cluster_->CopyIn(base, it->second.data(), config_.granule_bytes);
  } else {
    std::memcpy(node_->Mem(base, config_.granule_bytes), it->second.data(),
                config_.granule_bytes);
  }
  rec.checksum = ChecksumGranule(base, rec.version);
  ++stats_.oracle_restores;
  return true;
}

void IntegrityManager::CommitStore(uint64_t addr, uint32_t len, bool through_cache) {
  if (!config_.enabled || len == 0) {
    return;
  }
  ++stats_.commits;
  const uint64_t first = GranuleBase(addr);
  const uint64_t last = GranuleBase(addr + len - 1);
  for (uint64_t base = first; base <= last; base += config_.granule_bytes) {
    GranuleRecord& rec = ledger_[base];
    ++rec.version;
    rec.checksum = ChecksumGranule(base, rec.version);
    if (!through_cache) {
      rec.far_version = rec.version;
    }
    if (config_.paranoid) {
      const uint8_t* mem = ArenaMem(base, config_.granule_bytes);
      golden_[base].assign(mem, mem + config_.granule_bytes);
    }
  }
}

FetchVerdict IntegrityManager::VerifyFetch(sim::SimClock& clk, uint64_t key, uint64_t raddr,
                                           uint32_t len, const net::Delivery& delivery) {
  if (!config_.enabled || len == 0) {
    return FetchVerdict::kClean;
  }
  ++stats_.fetches_verified;
  const uint64_t first = GranuleBase(raddr);
  const uint64_t last = GranuleBase(raddr + len - 1);
  ChargeVerify(clk, (last - first) / config_.granule_bytes + 1);
  bool version_stale = false;
  for (uint64_t base = first; base <= last; base += config_.granule_bytes) {
    const auto it = ledger_.find(base);
    if (it == ledger_.end()) {
      continue;  // never stored: zero-filled arena, nothing to verify against
    }
    GranuleRecord& rec = it->second;
    if (rec.quarantined) {
      return FetchVerdict::kFatal;
    }
    if (ChecksumGranule(base, rec.version) != rec.checksum) {
      // Real arena damage, not a wire fault: the authoritative copy itself
      // is wrong, so no amount of re-fetching helps.
      if (config_.paranoid && RestoreFromGolden(base, rec)) {
        ++stats_.detected;
        ++stats_.healed;
        if (stats_.first_divergent_addr == 0 || base < stats_.first_divergent_addr) {
          stats_.first_divergent_addr = base;
        }
        continue;
      }
      Quarantine(base, rec);
      return FetchVerdict::kFatal;
    }
    if (rec.far_version < rec.version) {
      version_stale = true;
    }
  }
  if (delivery.corrupt) {
    ++stats_.corrupt_deliveries;
    OpenEpisode(key);
    return FetchVerdict::kRetry;
  }
  if (version_stale) {
    // The far node has not acknowledged the latest committed store for some
    // granule in this range: a lost-update window (requeued or torn
    // writeback). The caller drains pending writebacks and re-fetches.
    ++stats_.version_stale_reads;
    OpenEpisode(key);
    return FetchVerdict::kStale;
  }
  if (delivery.stale) {
    ++stats_.stale_reads;
    OpenEpisode(key);
    return FetchVerdict::kRetry;
  }
  MarkHealed(key);
  return FetchVerdict::kClean;
}

bool IntegrityManager::CommitWriteback(sim::SimClock& clk, uint64_t raddr, uint32_t len,
                                       const net::Delivery& delivery) {
  if (!config_.enabled || len == 0) {
    return true;
  }
  ++stats_.writebacks_committed;
  const uint64_t first = GranuleBase(raddr);
  const uint64_t last = GranuleBase(raddr + len - 1);
  ChargeVerify(clk, (last - first) / config_.granule_bytes + 1);
  if (delivery.corrupt) {
    // The far node recomputes the frame checksum on receipt and rejects the
    // damaged frame; the caller retransmits.
    ++stats_.corrupt_writebacks;
    OpenEpisode(raddr);
    return false;
  }
  if (delivery.duplicate) {
    // Replayed frame: the version vector makes the second application a
    // no-op, so acknowledging it twice is harmless.
    ++stats_.replays_suppressed;
  }
  for (uint64_t base = first; base <= last; base += config_.granule_bytes) {
    const auto it = ledger_.find(base);
    if (it != ledger_.end() && it->second.far_version < it->second.version) {
      it->second.far_version = it->second.version;
    }
  }
  MarkHealed(raddr);
  return true;
}

void IntegrityManager::ForceCommit(uint64_t raddr, uint32_t len) {
  if (!config_.enabled || len == 0) {
    return;
  }
  const uint64_t first = GranuleBase(raddr);
  const uint64_t last = GranuleBase(raddr + len - 1);
  for (uint64_t base = first; base <= last; base += config_.granule_bytes) {
    const auto it = ledger_.find(base);
    if (it != ledger_.end()) {
      it->second.far_version = it->second.version;
    }
  }
  MarkHealed(raddr, /*escalated=*/true);
}

void IntegrityManager::RecordTorn(uint64_t raddr, uint32_t len) {
  if (!config_.enabled || len == 0) {
    return;
  }
  ++stats_.torn_writebacks;
  OpenEpisode(raddr);
}

void IntegrityManager::FinalAudit(sim::SimClock& clk) {
  if (!config_.enabled) {
    return;
  }
  for (auto& [base, rec] : ledger_) {
    ++stats_.audit_granules;
    ChargeVerify(clk, 1);
    if (rec.quarantined) {
      continue;
    }
    if (ChecksumGranule(base, rec.version) != rec.checksum) {
      if (config_.paranoid && RestoreFromGolden(base, rec)) {
        ++stats_.detected;
        ++stats_.healed;
        ++stats_.oracle_divergences;
        if (stats_.first_divergent_addr == 0 || base < stats_.first_divergent_addr) {
          stats_.first_divergent_addr = base;
        }
      } else {
        Quarantine(base, rec);
        continue;
      }
    } else if (config_.paranoid) {
      const auto it = golden_.find(base);
      if (it != golden_.end() &&
          std::memcmp(ArenaMem(base, config_.granule_bytes), it->second.data(),
                      config_.granule_bytes) != 0) {
        // Cross-check stronger than the checksum: a divergence here means
        // the ledger itself was poisoned along with the arena.
        ++stats_.oracle_divergences;
        if (stats_.first_divergent_addr == 0 || base < stats_.first_divergent_addr) {
          stats_.first_divergent_addr = base;
        }
        RestoreFromGolden(base, rec);
      }
    }
    if (rec.far_version < rec.version) {
      // Never re-fetched after its last writeback window closed; the drain
      // path has already re-published the bytes, so reconcile quietly.
      rec.far_version = rec.version;
      ++stats_.audit_lag_reconciled;
    }
  }
  // Episodes still open belong to tainted deliveries whose line was never
  // demand-fetched again: the tainted copy was discarded and the arena is
  // verified clean above, so the episode closes healed.
  stats_.healed += episodes_.size();
  episodes_.clear();
}

void IntegrityManager::Publish(telemetry::MetricsRegistry& registry) const {
  registry.SetCounter("integrity.commits", stats_.commits);
  registry.SetCounter("integrity.fetches_verified", stats_.fetches_verified);
  registry.SetCounter("integrity.writebacks_committed", stats_.writebacks_committed);
  registry.SetCounter("integrity.detected", stats_.detected);
  registry.SetCounter("integrity.healed", stats_.healed);
  registry.SetCounter("integrity.corrupt_deliveries", stats_.corrupt_deliveries);
  registry.SetCounter("integrity.corrupt_writebacks", stats_.corrupt_writebacks);
  registry.SetCounter("integrity.stale_reads", stats_.stale_reads);
  registry.SetCounter("integrity.version_stale_reads", stats_.version_stale_reads);
  registry.SetCounter("integrity.torn_writebacks", stats_.torn_writebacks);
  registry.SetCounter("integrity.replays_suppressed", stats_.replays_suppressed);
  registry.SetCounter("integrity.refetch_rounds", stats_.refetch_rounds);
  registry.SetCounter("integrity.escalated_heals", stats_.escalated_heals);
  registry.SetCounter("integrity.quarantined", stats_.quarantined);
  registry.SetCounter("integrity.oracle_restores", stats_.oracle_restores);
  registry.SetCounter("integrity.oracle_divergences", stats_.oracle_divergences);
  registry.SetCounter("integrity.audit_granules", stats_.audit_granules);
  registry.SetCounter("integrity.audit_lag_reconciled", stats_.audit_lag_reconciled);
  if (stats_.first_divergent_addr != 0) {
    registry.SetCounter("integrity.first_divergent_addr", stats_.first_divergent_addr);
  }
}

void IntegrityManager::QuarantineRange(uint64_t addr, uint32_t len) {
  if (!config_.enabled || len == 0) {
    return;
  }
  const uint64_t first = GranuleBase(addr);
  const uint64_t last = GranuleBase(addr + len - 1);
  for (uint64_t base = first; base <= last; base += config_.granule_bytes) {
    GranuleRecord& rec = ledger_[base];
    if (!rec.quarantined) {
      Quarantine(base, rec);
    }
  }
}

void IntegrityManager::DamageArenaForTest(uint64_t addr, uint32_t len) {
  uint8_t* mem = node_->Mem(GranuleBase(addr), config_.granule_bytes);
  for (uint32_t i = 0; i < len && i < config_.granule_bytes; ++i) {
    mem[i] ^= 0xA5;
  }
}

}  // namespace mira::integrity
