#include "src/integrity/checksum.h"

namespace mira::integrity {

uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

uint64_t LineChecksum(const void* payload, size_t len, uint64_t version) {
  uint8_t v[8];
  for (int i = 0; i < 8; ++i) {
    v[i] = static_cast<uint8_t>(version >> (8 * i));
  }
  return Fnv1a64(payload, len, Fnv1a64(v, sizeof(v)));
}

}  // namespace mira::integrity
