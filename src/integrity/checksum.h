// Payload checksums for the data-integrity subsystem. FNV-1a/64 is used for
// every line/granule checksum: it is cheap, has no dependencies, and — unlike
// CRC32 hardware intrinsics — produces the same value on every host, which
// the bit-identical replay contract requires.

#ifndef MIRA_SRC_INTEGRITY_CHECKSUM_H_
#define MIRA_SRC_INTEGRITY_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace mira::integrity {

inline constexpr uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv1aPrime = 0x100000001b3ULL;

// FNV-1a over `len` bytes, optionally chained from a previous digest.
uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed = kFnv1aOffset);

// Checksum of one line/granule payload bound to its monotonic version: the
// version is folded into the digest so a stale payload with a valid
// old-version checksum can never masquerade as the current one.
uint64_t LineChecksum(const void* payload, size_t len, uint64_t version);

}  // namespace mira::integrity

#endif  // MIRA_SRC_INTEGRITY_CHECKSUM_H_
