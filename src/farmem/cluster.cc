#include "src/farmem/cluster.h"

#include <algorithm>
#include <cstring>

#include "src/support/check.h"
#include "src/support/str.h"

namespace mira::farmem {

namespace {
bool Contains(const std::vector<int>& holders, int node) {
  return std::find(holders.begin(), holders.end(), node) != holders.end();
}
}  // namespace

FarMemoryCluster::FarMemoryCluster(FarMemoryNode* seed_node, const ClusterConfig& config)
    : config_(config) {
  MIRA_CHECK_MSG(seed_node != nullptr, "cluster needs a seed node");
  MIRA_CHECK_MSG(config_.num_nodes >= 1, "cluster needs at least one node");
  MIRA_CHECK_MSG(config_.lease_ns >= config_.heartbeat_ns,
                 "lease must outlive the heartbeat interval");
  config_.replicas = std::min(config_.replicas, config_.num_nodes - 1);
  nodes_.push_back(seed_node);
  for (int i = 1; i < config_.num_nodes; ++i) {
    owned_.push_back(std::make_unique<FarMemoryNode>(seed_node->capacity_bytes()));
    nodes_.push_back(owned_.back().get());
  }
  state_.resize(static_cast<size_t>(config_.num_nodes));
}

int FarMemoryCluster::DesiredCopies() const { return config_.replicas + 1; }

FarMemoryCluster::Placement& FarMemoryCluster::PlacementFor(uint64_t chunk) {
  Placement& p = placement_[chunk];
  if (!p.placed) {
    p.placed = true;
    ++stats_.placed_chunks;
    // Ring placement: primary is the first live node scanning from
    // chunk % N, replicas the next K live nodes. Depends only on the chunk
    // index and the live set, so placement is deterministic.
    for (int i = 0; i < config_.num_nodes && static_cast<int>(p.holders.size()) < DesiredCopies();
         ++i) {
      const int cand = static_cast<int>((chunk + static_cast<uint64_t>(i)) %
                                        static_cast<uint64_t>(config_.num_nodes));
      if (state_[static_cast<size_t>(cand)].alive) {
        p.holders.push_back(cand);
      }
    }
    if (p.holders.empty()) {
      // Every node is down; record the ring primary so the address space
      // stays backed. Anything placed here is already lost.
      p.holders.push_back(static_cast<int>(chunk % static_cast<uint64_t>(config_.num_nodes)));
      QuarantineChunk(p);
    }
  }
  return p;
}

void FarMemoryCluster::QuarantineChunk(Placement& p) {
  if (!p.quarantined) {
    p.quarantined = true;
    ++stats_.quarantined_chunks;
  }
}

void FarMemoryCluster::QueueIfUnderReplicated(uint64_t chunk, const Placement& p) {
  if (p.quarantined || p.holders.empty()) {
    return;
  }
  if (static_cast<int>(p.holders.size()) < DesiredCopies()) {
    // Dedupe: a rejoin mid-drain re-queues every under-replicated chunk,
    // including ones Failover already queued. A duplicate entry would make
    // one heal pass copy the same chunk twice (two targets for one loss),
    // burning background bandwidth on a copy nobody lost.
    if (std::find(rereplicate_queue_.begin(), rereplicate_queue_.end(), chunk) ==
        rereplicate_queue_.end()) {
      rereplicate_queue_.push_back(chunk);
    }
  }
}

support::Result<RemoteAddr> FarMemoryCluster::AllocRange(uint64_t bytes) {
  auto addr = nodes_[0]->AllocRange(bytes);
  if (!addr.ok()) {
    return addr.status();
  }
  // Same 64 B rounding as the node allocator, so placement covers the full
  // handed-out range.
  const uint64_t rounded = (bytes + 63) & ~63ULL;
  const uint64_t first = addr.value() >> kChunkShift;
  const uint64_t last = (addr.value() + rounded - 1) >> kChunkShift;
  for (uint64_t chunk = first; chunk <= last; ++chunk) {
    PlacementFor(chunk);
  }
  return addr.take();
}

void FarMemoryCluster::FreeRange(RemoteAddr addr, uint64_t bytes) {
  // Placement is chunk-granular and chunks host many ranges; entries stay.
  nodes_[0]->FreeRange(addr, bytes);
}

void FarMemoryCluster::CopyIn(RemoteAddr addr, const void* src, uint64_t len) {
  const auto* in = static_cast<const uint8_t*>(src);
  while (len > 0) {
    const uint64_t off = addr & (kChunkSize - 1);
    const uint64_t n = std::min<uint64_t>(len, kChunkSize - off);
    Placement& p = PlacementFor(addr >> kChunkShift);
    p.extent = std::max(p.extent, off + n);
    bool wrote = false;
    for (const int node : p.holders) {
      if (!state_[static_cast<size_t>(node)].alive) {
        continue;
      }
      nodes_[static_cast<size_t>(node)]->CopyIn(addr, in, n);
      if (wrote) {
        stats_.replicated_write_bytes += n;
      }
      wrote = true;
    }
    if (!wrote) {
      // No live holder: land the bytes on the (dead, scrubbed) primary so
      // the address stays backed. The chunk is already on the quarantine
      // path — this write is lost the moment anyone asks a live node for it.
      nodes_[static_cast<size_t>(p.holders[0])]->CopyIn(addr, in, n);
      ++stats_.lost_writes;
    }
    addr += n;
    in += n;
    len -= n;
  }
}

void FarMemoryCluster::CopyOut(RemoteAddr addr, void* dst, uint64_t len) {
  auto* out = static_cast<uint8_t*>(dst);
  while (len > 0) {
    const uint64_t off = addr & (kChunkSize - 1);
    const uint64_t n = std::min<uint64_t>(len, kChunkSize - off);
    Placement& p = PlacementFor(addr >> kChunkShift);
    int serve = -1;
    for (const int node : p.holders) {
      if (state_[static_cast<size_t>(node)].alive) {
        serve = node;
        break;
      }
    }
    if (serve < 0) {
      // Every holder is dead: serve the scrubbed primary (visibly-poisoned
      // bytes) and count the loss. Only reachable in no-survivor scenarios,
      // which the integrity ladder surfaces as kDataLoss.
      serve = p.holders[0];
      ++stats_.lost_reads;
    }
    nodes_[static_cast<size_t>(serve)]->CopyOut(addr, out, n);
    addr += n;
    out += n;
    len -= n;
  }
}

uint8_t* FarMemoryCluster::Mem(RemoteAddr addr, uint64_t len) {
  Placement& p = PlacementFor(addr >> kChunkShift);
  for (const int node : p.holders) {
    if (state_[static_cast<size_t>(node)].alive) {
      return nodes_[static_cast<size_t>(node)]->Mem(addr, len);
    }
  }
  ++stats_.lost_reads;
  return nodes_[static_cast<size_t>(p.holders[0])]->Mem(addr, len);
}

void FarMemoryCluster::CrashNode(int node, uint64_t now_ns) {
  NodeState& st = state_[static_cast<size_t>(node)];
  MIRA_CHECK_MSG(st.alive, "crashing a node that is already down");
  st.alive = false;
  st.detected = false;
  st.crashed_at_ns = now_ns;
  ++stats_.crashes;
  // Poison the arena: the node's contents are gone, and any read that still
  // routes here is visibly wrong instead of silently stale.
  nodes_[static_cast<size_t>(node)]->ScrubArena(kCrashPoison);
  // Placement entries are NOT remapped here — failover is lazy, driven by
  // the first verb that trips over the dead primary (Transport::CheckTarget
  // → call-site ladder → Failover). Reads meanwhile route around the dead
  // node in CopyOut's first-live-holder scan.
}

void FarMemoryCluster::RejoinNode(int node) {
  NodeState& st = state_[static_cast<size_t>(node)];
  MIRA_CHECK_MSG(!st.alive, "rejoining a node that never crashed");
  st.alive = true;
  st.detected = false;
  st.crashed_at_ns = 0;
  ++stats_.rejoins;
  // A rejoined node is empty (zero-filled, like a fresh node): drop it from
  // every placement entry still naming it, then refill the re-replication
  // queue — the rejoined node is a valid target again, including for chunks
  // whose re-replication was previously deferred for lack of live targets.
  nodes_[static_cast<size_t>(node)]->ScrubArena(0);
  for (auto& [chunk, p] : placement_) {
    auto it = std::find(p.holders.begin(), p.holders.end(), node);
    if (it != p.holders.end()) {
      const bool was_primary = it == p.holders.begin();
      p.holders.erase(it);
      if (p.holders.empty()) {
        p.holders.push_back(node);  // keep the address space backed
        QuarantineChunk(p);
        continue;
      }
      if (was_primary && !p.quarantined &&
          state_[static_cast<size_t>(p.holders[0])].alive) {
        // Only a promotion if the chunk actually gained a live primary; a
        // dead successor is a pending failover, not a resolved one.
        ++stats_.rejoin_promotions;
      }
    }
    QueueIfUnderReplicated(chunk, p);
  }
}

void FarMemoryCluster::MarkDetected(int node) {
  NodeState& st = state_[static_cast<size_t>(node)];
  if (!st.detected) {
    st.detected = true;
    ++stats_.detections;
  }
}

uint64_t FarMemoryCluster::DetectionDeadlineNs(int node) const {
  const NodeState& st = state_[static_cast<size_t>(node)];
  MIRA_CHECK_MSG(!st.alive, "detection deadline of a live node");
  const uint64_t hb = std::max<uint64_t>(1, config_.heartbeat_ns);
  const uint64_t last_beat = (st.crashed_at_ns / hb) * hb;
  return std::max(st.crashed_at_ns, last_beat + config_.lease_ns);
}

int FarMemoryCluster::PrimaryOf(RemoteAddr addr) {
  return PlacementFor(addr >> kChunkShift).holders[0];
}

support::Status FarMemoryCluster::Failover(uint64_t chunk) {
  Placement& p = PlacementFor(chunk);
  if (state_[static_cast<size_t>(p.holders[0])].alive) {
    return support::Status::Ok();  // already healthy (e.g. a sibling verb won)
  }
  std::vector<int> live;
  for (const int node : p.holders) {
    if (state_[static_cast<size_t>(node)].alive) {
      live.push_back(node);
    }
  }
  if (live.empty()) {
    QuarantineChunk(p);
    return support::Status::DataLoss(
        support::StrFormat("chunk %llu lost every replica",
                           static_cast<unsigned long long>(chunk)));
  }
  // Promote the first surviving replica; dead holders no longer hold the
  // data, so they leave the entry entirely.
  p.holders = std::move(live);
  ++stats_.failovers;
  QueueIfUnderReplicated(chunk, p);
  return support::Status::Ok();
}

bool FarMemoryCluster::RereplicateNext(RereplicationJob* job) {
  while (!rereplicate_queue_.empty()) {
    const uint64_t chunk = rereplicate_queue_.front();
    rereplicate_queue_.pop_front();
    auto it = placement_.find(chunk);
    if (it == placement_.end()) {
      continue;
    }
    Placement& p = it->second;
    if (p.quarantined || p.holders.empty() ||
        static_cast<int>(p.holders.size()) >= DesiredCopies()) {
      continue;
    }
    int target = -1;
    for (int i = 0; i < config_.num_nodes; ++i) {
      const int cand = static_cast<int>((chunk + static_cast<uint64_t>(i)) %
                                        static_cast<uint64_t>(config_.num_nodes));
      if (state_[static_cast<size_t>(cand)].alive && !Contains(p.holders, cand)) {
        target = cand;
        break;
      }
    }
    if (target < 0) {
      // No live node without a copy right now; retry after the next
      // membership change (RejoinNode refills the queue).
      continue;
    }
    // Source must be a LIVE holder. The queue can carry a chunk whose every
    // holder died after it was queued (crash → second crash → rejoin of the
    // first node mid-drain leaves holders = [dead survivor]); copying from
    // the dead, poisoned arena would silently "revive" a lost chunk into a
    // live node. That chunk is lost — quarantine it instead.
    int source = -1;
    for (const int node : p.holders) {
      if (state_[static_cast<size_t>(node)].alive) {
        source = node;
        break;
      }
    }
    if (source < 0) {
      QuarantineChunk(p);
      continue;
    }
    const RemoteAddr base = static_cast<RemoteAddr>(chunk) << kChunkShift;
    const uint64_t bytes = p.extent;
    if (bytes > 0) {
      nodes_[static_cast<size_t>(target)]
          ->CopyIn(base, nodes_[static_cast<size_t>(source)]->Mem(base, bytes), bytes);
    }
    p.holders.push_back(target);
    ++stats_.rereplicated_chunks;
    stats_.rereplicated_bytes += bytes;
    if (static_cast<int>(p.holders.size()) < DesiredCopies()) {
      rereplicate_queue_.push_back(chunk);  // still short a copy: another pass
    }
    job->chunk = chunk;
    job->bytes = bytes;
    return true;
  }
  return false;
}

bool FarMemoryCluster::ChunkQuarantined(uint64_t chunk) const {
  auto it = placement_.find(chunk);
  return it != placement_.end() && it->second.quarantined;
}

int FarMemoryCluster::HolderCount(uint64_t chunk) const {
  auto it = placement_.find(chunk);
  return it == placement_.end() ? 0 : static_cast<int>(it->second.holders.size());
}

int FarMemoryCluster::alive_nodes() const {
  int n = 0;
  for (const NodeState& st : state_) {
    n += st.alive ? 1 : 0;
  }
  return n;
}

}  // namespace mira::farmem
