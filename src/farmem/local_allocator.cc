#include "src/farmem/local_allocator.h"

#include <algorithm>

#include "src/farmem/cluster.h"
#include "src/net/transport.h"
#include "src/support/check.h"

namespace mira::farmem {

support::Result<RemoteAddr> LocalAllocator::Alloc(sim::SimClock& clk, uint64_t bytes) {
  bytes = (bytes + 63) & ~63ULL;
  // First-fit over buffered ranges.
  for (auto it = buffered_.begin(); it != buffered_.end(); ++it) {
    if (it->second >= bytes) {
      const RemoteAddr addr = it->first;
      const uint64_t remain = it->second - bytes;
      buffered_.erase(it);
      if (remain > 0) {
        buffered_[addr + bytes] = remain;
      }
      buffered_bytes_ -= bytes;
      return addr;
    }
  }
  // Refill from the remote allocator: one RPC, charged to the caller. The
  // cluster route places the fresh chunks on their replica set as well.
  FarMemoryCluster* cluster = net_->cluster();
  const uint64_t ask = std::max(bytes, kRefillBytes);
  auto range = cluster != nullptr ? cluster->AllocRange(ask) : node_->AllocRange(ask);
  if (!range.ok()) {
    // Retry with the exact size (the big refill may overshoot capacity).
    range = cluster != nullptr ? cluster->AllocRange(bytes) : node_->AllocRange(bytes);
    if (!range.ok()) {
      return range.status();
    }
    net_->Rpc(clk, 16, 16, net_->cost().remote_alloc_rpc_ns);
    ++refill_rpcs_;
    return range.take();
  }
  net_->Rpc(clk, 16, 16, net_->cost().remote_alloc_rpc_ns);
  ++refill_rpcs_;
  const RemoteAddr base = range.take();
  if (ask > bytes) {
    buffered_[base + bytes] = ask - bytes;
    buffered_bytes_ += ask - bytes;
  }
  return base;
}

void LocalAllocator::Free(RemoteAddr addr, uint64_t bytes) {
  bytes = (bytes + 63) & ~63ULL;
  auto [it, inserted] = buffered_.emplace(addr, bytes);
  MIRA_CHECK_MSG(inserted, "double free in local allocator");
  buffered_bytes_ += bytes;
  auto next = std::next(it);
  if (next != buffered_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    buffered_.erase(next);
  }
  if (it != buffered_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      buffered_.erase(it);
    }
  }
}

}  // namespace mira::farmem
