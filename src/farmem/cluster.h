// A replicated far-memory cluster: N FarMemoryNodes behind one remote
// address space.
//
// Every allocated range is placed on a primary plus K replica nodes at chunk
// (1 MiB) granularity. The data plane fans writes out to every live holder
// and serves reads from the first live holder in placement order, so results
// stay correct the instant a node dies as long as one replica survives; the
// *timing* plane (lease-based failure detection, kNodeFailed verbs, the
// failover ladder, background re-replication bandwidth) is driven separately
// by the Transport against the sim clock — the same data/timing decoupling
// as the single node (DESIGN.md §3).
//
// Addressing delegates to node 0's allocator, so a cluster hands out the
// exact same address sequence as a lone FarMemoryNode — the single-node,
// no-crash configuration is bit-identical to not having a cluster at all.
// Allocator metadata is client-side (paper §5.2.1): it survives any node
// crash, including node 0's own.
//
// Crash model: a crashed node's arena is scrubbed with a poison byte (any
// read that wrongly routes to it is visibly wrong, failing the benches'
// result-equality asserts), and a rejoining node comes back *empty* — it is
// dropped from every placement entry it appears in and becomes a fresh
// re-replication target. A chunk whose every holder died is quarantined; the
// integrity ladder surfaces it as kDataLoss.

#ifndef MIRA_SRC_FARMEM_CLUSTER_H_
#define MIRA_SRC_FARMEM_CLUSTER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/farmem/far_memory_node.h"
#include "src/support/status.h"

namespace mira::farmem {

struct ClusterConfig {
  int num_nodes = 1;
  int replicas = 0;  // K extra copies beyond the primary (clamped to N-1)
  // Lease/heartbeat failure detector: nodes renew a lease every
  // heartbeat_ns; a crash is detected when the lease granted at the last
  // renewal *before* the crash expires. The first verb that targets the dead
  // node after the crash waits out the remaining lease (charged to its sim
  // clock as `failover_wait`); later verbs fail fast with kNodeFailed.
  uint64_t lease_ns = 50'000;
  uint64_t heartbeat_ns = 10'000;
};

struct ClusterStats {
  uint64_t crashes = 0;
  uint64_t rejoins = 0;
  uint64_t detections = 0;          // lease expiries observed (≤ crashes)
  uint64_t failovers = 0;           // verb-path promotions of a surviving replica
  uint64_t rejoin_promotions = 0;   // promotions resolved while wiping a rejoining node
  uint64_t quarantined_chunks = 0;  // chunks that lost every holder
  uint64_t rereplicated_chunks = 0;
  uint64_t rereplicated_bytes = 0;
  uint64_t replicated_write_bytes = 0;  // extra bytes fanned out to replicas
  uint64_t lost_reads = 0;   // reads served from a dead node (no live holder)
  uint64_t lost_writes = 0;  // writes with no live holder to land on
  uint64_t placed_chunks = 0;
};

class FarMemoryCluster {
 public:
  static constexpr uint64_t kChunkShift = FarMemoryNode::kChunkShift;
  static constexpr uint64_t kChunkSize = FarMemoryNode::kChunkSize;
  static constexpr uint8_t kCrashPoison = 0xDD;

  // `seed_node` becomes node 0 and is NOT owned (it is World::node, and
  // existing single-node callers keep using it directly); nodes 1..N-1 are
  // created and owned here, with node 0's capacity bound.
  FarMemoryCluster(FarMemoryNode* seed_node, const ClusterConfig& config);

  int num_nodes() const { return config_.num_nodes; }
  bool multi_node() const { return config_.num_nodes > 1; }
  const ClusterConfig& config() const { return config_; }
  FarMemoryNode* node(int i) { return nodes_[static_cast<size_t>(i)]; }

  // ---- Allocation (addresses from node 0's allocator; placement here) ----
  support::Result<RemoteAddr> AllocRange(uint64_t bytes);
  void FreeRange(RemoteAddr addr, uint64_t bytes);

  // ---- Data plane (immediate host copies; no timing) ----
  // Writes fan out to every live holder of each covered chunk; reads come
  // from the first live holder in placement order. Chunks never touched
  // through the cluster are placed lazily with the same ring rule as
  // AllocRange, so raw-address users (tests) still get replication.
  void CopyIn(RemoteAddr addr, const void* src, uint64_t len);
  void CopyOut(RemoteAddr addr, void* dst, uint64_t len);
  // Host pointer into the first live holder's arena (same single-chunk-span
  // contract as FarMemoryNode::Mem). Read-siding only: writing through this
  // pointer would bypass replication — use CopyIn.
  uint8_t* Mem(RemoteAddr addr, uint64_t len);

  // ---- Membership / failure detection (driven by the Transport) ----
  void CrashNode(int node, uint64_t now_ns);
  void RejoinNode(int node);
  bool NodeAlive(int node) const { return state_[static_cast<size_t>(node)].alive; }
  bool Detected(int node) const { return state_[static_cast<size_t>(node)].detected; }
  void MarkDetected(int node);
  // Sim time at which the failure detector notices `node` (dead) is gone:
  // the lease granted at the last heartbeat before the crash expires.
  uint64_t DetectionDeadlineNs(int node) const;

  // Primary node of the chunk covering `addr` (placing the chunk if new).
  int PrimaryOf(RemoteAddr addr);

  // Failover ladder step: drop dead holders of `addr`'s chunk and promote
  // the first surviving replica to primary. Ok when a replica survives (the
  // chunk is queued for re-replication); DataLoss when none does (the chunk
  // is quarantined). A chunk whose primary is already alive is a no-op.
  support::Status Failover(uint64_t chunk);

  // ---- Background re-replication ----
  // Pops the next under-replicated chunk and copies its written extent from
  // the live primary to a fresh target node (host copy, immediate). Returns
  // false when the queue is drained. The caller (Transport) charges the
  // returned byte count to the sim clock as background bandwidth.
  struct RereplicationJob {
    uint64_t chunk = 0;
    uint64_t bytes = 0;
  };
  bool RereplicateNext(RereplicationJob* job);
  bool has_pending_rereplication() const { return !rereplicate_queue_.empty(); }

  bool ChunkQuarantined(uint64_t chunk) const;
  int HolderCount(uint64_t chunk) const;
  int alive_nodes() const;
  const ClusterStats& stats() const { return stats_; }

 private:
  struct Placement {
    std::vector<int> holders;  // [0] = primary; only nodes that HOLD the data
    uint64_t extent = 0;       // written high-water offset within the chunk
    bool placed = false;
    bool quarantined = false;
  };
  struct NodeState {
    bool alive = true;
    bool detected = false;
    uint64_t crashed_at_ns = 0;
  };

  int DesiredCopies() const;
  Placement& PlacementFor(uint64_t chunk);
  void QueueIfUnderReplicated(uint64_t chunk, const Placement& p);
  void QuarantineChunk(Placement& p);

  ClusterConfig config_;
  std::vector<std::unique_ptr<FarMemoryNode>> owned_;  // nodes 1..N-1
  std::vector<FarMemoryNode*> nodes_;                  // [0] = seed (unowned)
  std::vector<NodeState> state_;
  // Ordered so membership-change scans and the re-replication queue fill in
  // deterministic chunk order (timing depends on it).
  std::map<uint64_t, Placement> placement_;
  std::deque<uint64_t> rereplicate_queue_;
  ClusterStats stats_;
};

}  // namespace mira::farmem

#endif  // MIRA_SRC_FARMEM_CLUSTER_H_
