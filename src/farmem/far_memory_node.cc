#include "src/farmem/far_memory_node.h"

#include <algorithm>
#include <cstring>

#include "src/support/check.h"
#include "src/support/str.h"

namespace mira::farmem {

FarMemoryNode::FarMemoryNode(uint64_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

void FarMemoryNode::EnsureMapped(RemoteAddr addr, uint64_t len) {
  const uint64_t last_chunk = (addr + len - 1) >> kChunkShift;
  while (chunks_.size() <= last_chunk) {
    auto chunk = std::make_unique<uint8_t[]>(kChunkSize);
    std::memset(chunk.get(), 0, kChunkSize);
    chunks_.push_back(std::move(chunk));
  }
}

support::Result<RemoteAddr> FarMemoryNode::AllocRange(uint64_t bytes) {
  if (bytes == 0) {
    return support::Status::InvalidArgument("AllocRange of 0 bytes");
  }
  // Round to 64 B so distinct objects never share a minimal cache line.
  bytes = (bytes + 63) & ~63ULL;
  if (capacity_bytes_ != 0 && allocated_bytes_ + bytes > capacity_bytes_) {
    return support::Status::OutOfMemory(
        support::StrFormat("far memory exhausted: %llu + %llu > %llu",
                           static_cast<unsigned long long>(allocated_bytes_),
                           static_cast<unsigned long long>(bytes),
                           static_cast<unsigned long long>(capacity_bytes_)));
  }
  // Best-fit over the free list first.
  auto best = free_ranges_.end();
  for (auto it = free_ranges_.begin(); it != free_ranges_.end(); ++it) {
    if (it->second >= bytes && (best == free_ranges_.end() || it->second < best->second)) {
      best = it;
    }
  }
  RemoteAddr addr;
  if (best != free_ranges_.end()) {
    addr = best->first;
    const uint64_t remain = best->second - bytes;
    free_ranges_.erase(best);
    if (remain > 0) {
      free_ranges_[addr + bytes] = remain;
    }
  } else {
    addr = bump_;
    bump_ += bytes;
  }
  EnsureMapped(addr, bytes);
  allocated_bytes_ += bytes;
  return addr;
}

void FarMemoryNode::FreeRange(RemoteAddr addr, uint64_t bytes) {
  MIRA_CHECK(addr != kNullRemoteAddr);
  bytes = (bytes + 63) & ~63ULL;
  MIRA_CHECK(allocated_bytes_ >= bytes);
  allocated_bytes_ -= bytes;
  // Insert and coalesce with neighbors.
  auto [it, inserted] = free_ranges_.emplace(addr, bytes);
  MIRA_CHECK_MSG(inserted, "double free of remote range");
  // Merge with next.
  auto next = std::next(it);
  if (next != free_ranges_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_ranges_.erase(next);
  }
  // Merge with prev.
  if (it != free_ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_ranges_.erase(it);
    }
  }
}

void FarMemoryNode::ScrubArena(uint8_t fill) {
  for (auto& chunk : chunks_) {
    std::memset(chunk.get(), fill, kChunkSize);
  }
}

uint8_t* FarMemoryNode::Mem(RemoteAddr addr, uint64_t len) {
  MIRA_CHECK_MSG(addr >= kBaseAddr, "remote address below arena base");
  EnsureMapped(addr, len);
  // Accesses must not straddle a chunk boundary unless chunks are
  // contiguous in the arena — they are not, so we require single-chunk
  // spans. Allocation rounding plus ≤1 MiB line sizes guarantee this for
  // all system-generated accesses; cross-chunk bulk copies go segmentwise
  // through MemCopyIn/MemCopyOut in the transport.
  const uint64_t chunk = addr >> kChunkShift;
  const uint64_t off = addr & (kChunkSize - 1);
  MIRA_CHECK_MSG(off + len <= kChunkSize, "remote access straddles a chunk boundary");
  return chunks_[chunk].get() + off;
}

const uint8_t* FarMemoryNode::Mem(RemoteAddr addr, uint64_t len) const {
  return const_cast<FarMemoryNode*>(this)->Mem(addr, len);
}

void FarMemoryNode::CopyOutSlow(RemoteAddr addr, void* dst, uint64_t len) const {
  auto* self = const_cast<FarMemoryNode*>(this);
  auto* out = static_cast<uint8_t*>(dst);
  while (len > 0) {
    const uint64_t off = addr & (kChunkSize - 1);
    const uint64_t n = std::min<uint64_t>(len, kChunkSize - off);
    std::memcpy(out, self->Mem(addr, n), n);
    addr += n;
    out += n;
    len -= n;
  }
}

void FarMemoryNode::CopyInSlow(RemoteAddr addr, const void* src, uint64_t len) {
  const auto* in = static_cast<const uint8_t*>(src);
  while (len > 0) {
    const uint64_t off = addr & (kChunkSize - 1);
    const uint64_t n = std::min<uint64_t>(len, kChunkSize - off);
    std::memcpy(Mem(addr, n), in, n);
    addr += n;
    in += n;
    len -= n;
  }
}

}  // namespace mira::farmem
