// The local allocator (paper §5.2.1, "Implementing remotable.alloc").
//
// Buffers remote address ranges obtained from the far node's low-level
// allocator so that most remotable.alloc calls are satisfied locally without
// a network round trip — the malloc-vs-mmap split the paper describes.

#ifndef MIRA_SRC_FARMEM_LOCAL_ALLOCATOR_H_
#define MIRA_SRC_FARMEM_LOCAL_ALLOCATOR_H_

#include <cstdint>
#include <map>

#include "src/farmem/far_memory_node.h"
#include "src/net/transport.h"
#include "src/sim/clock.h"
#include "src/support/status.h"

namespace mira::farmem {

class LocalAllocator {
 public:
  static constexpr uint64_t kRefillBytes = 4ULL << 20;  // 4 MiB per refill RPC

  LocalAllocator(FarMemoryNode* node, net::Transport* net) : node_(node), net_(net) {}

  // Allocates `bytes` of far memory. Served from buffered ranges when
  // possible; otherwise performs a (charged) refill RPC to the remote
  // allocator.
  support::Result<RemoteAddr> Alloc(sim::SimClock& clk, uint64_t bytes);

  // Returns a range to the local buffer (not to the far node — mirrors a
  // user-level allocator's behavior).
  void Free(RemoteAddr addr, uint64_t bytes);

  uint64_t buffered_bytes() const { return buffered_bytes_; }
  uint64_t refill_rpcs() const { return refill_rpcs_; }

 private:
  FarMemoryNode* node_;
  net::Transport* net_;
  std::map<RemoteAddr, uint64_t> buffered_;  // addr → size, coalesced
  uint64_t buffered_bytes_ = 0;
  uint64_t refill_rpcs_ = 0;
};

}  // namespace mira::farmem

#endif  // MIRA_SRC_FARMEM_LOCAL_ALLOCATOR_H_
