// The far-memory node: backing storage plus a low-level remote allocator.
//
// The node owns a chunked arena addressed by a remote virtual address space
// starting at kBaseAddr. The network transport copies bytes between local
// buffers and this arena; timing is charged separately by the cost model
// (data plane and timing plane are decoupled — see DESIGN.md §3).

#ifndef MIRA_SRC_FARMEM_FAR_MEMORY_NODE_H_
#define MIRA_SRC_FARMEM_FAR_MEMORY_NODE_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/support/status.h"

namespace mira::farmem {

// Remote virtual addresses handed out by the node. Address 0 is never used
// (null). The arena grows in fixed chunks; addresses are stable for the
// lifetime of the node.
using RemoteAddr = uint64_t;

inline constexpr RemoteAddr kNullRemoteAddr = 0;

class FarMemoryNode {
 public:
  static constexpr uint64_t kChunkShift = 20;  // 1 MiB chunks
  static constexpr uint64_t kChunkSize = 1ULL << kChunkShift;
  static constexpr RemoteAddr kBaseAddr = kChunkSize;  // skip chunk 0 → no addr 0

  // `capacity_bytes` bounds total far memory (0 = unbounded).
  explicit FarMemoryNode(uint64_t capacity_bytes = 0);

  // Low-level allocator ("remote allocator" in the paper §5.2.1): allocates
  // a contiguous remote range. Never splits a range across an unmapped hole.
  support::Result<RemoteAddr> AllocRange(uint64_t bytes);
  void FreeRange(RemoteAddr addr, uint64_t bytes);

  // Host pointer to the backing bytes at `addr`. The span [addr, addr+len)
  // must not straddle a 1 MiB chunk boundary; use CopyIn/CopyOut for
  // arbitrary spans.
  uint8_t* Mem(RemoteAddr addr, uint64_t len);
  const uint8_t* Mem(RemoteAddr addr, uint64_t len) const;

  // Data-plane copies that handle chunk-boundary crossings. The inline fast
  // path covers the interpreter's scalar accesses (small, within one
  // already-mapped chunk) without the Mem() ceremony; anything else — an
  // unmapped chunk, a boundary crossing — falls back to the slow copy.
  void CopyOut(RemoteAddr addr, void* dst, uint64_t len) const {
    const uint64_t off = addr & (kChunkSize - 1);
    const uint64_t chunk = addr >> kChunkShift;
    if (addr >= kBaseAddr && off + len <= kChunkSize && chunk < chunks_.size()) {
      std::memcpy(dst, chunks_[chunk].get() + off, len);
      return;
    }
    CopyOutSlow(addr, dst, len);
  }
  void CopyIn(RemoteAddr addr, const void* src, uint64_t len) {
    const uint64_t off = addr & (kChunkSize - 1);
    const uint64_t chunk = addr >> kChunkShift;
    if (addr >= kBaseAddr && off + len <= kChunkSize && chunk < chunks_.size()) {
      std::memcpy(chunks_[chunk].get() + off, src, len);
      return;
    }
    CopyInSlow(addr, src, len);
  }

  // Overwrites every mapped arena byte with `fill`. Models losing the node's
  // contents wholesale: the cluster scrubs a node on crash (poison fill, so a
  // read that wrongly routes to a dead node is visibly wrong) and on rejoin
  // (zero fill — a rejoined node starts empty, like a fresh one). Allocator
  // metadata is untouched: it lives client-side (paper §5.2.1) and survives.
  void ScrubArena(uint8_t fill);

  uint64_t allocated_bytes() const { return allocated_bytes_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t arena_bytes() const { return chunks_.size() * kChunkSize; }
  // Free-list view (address → coalesced size), for diagnostics and the
  // allocator property tests.
  const std::map<RemoteAddr, uint64_t>& free_ranges() const { return free_ranges_; }

 private:
  // Ensures backing chunks exist for [addr, addr+len).
  void EnsureMapped(RemoteAddr addr, uint64_t len);
  // Out-of-line copy paths: chunk-boundary crossings and unmapped chunks.
  void CopyOutSlow(RemoteAddr addr, void* dst, uint64_t len) const;
  void CopyInSlow(RemoteAddr addr, const void* src, uint64_t len);

  uint64_t capacity_bytes_;
  uint64_t allocated_bytes_ = 0;
  RemoteAddr bump_ = kBaseAddr;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  // Free ranges by address → size (coalesced on free).
  std::map<RemoteAddr, uint64_t> free_ranges_;
};

}  // namespace mira::farmem

#endif  // MIRA_SRC_FARMEM_FAR_MEMORY_NODE_H_
