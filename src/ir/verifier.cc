#include "src/ir/verifier.h"

#include <vector>

#include "src/support/str.h"

namespace mira::ir {

namespace {

using support::Status;
using support::StrFormat;

class FunctionVerifier {
 public:
  FunctionVerifier(const Module& module, const Function& func)
      : module_(module), func_(func), defined_(func.value_types.size(), false) {}

  Status Run() {
    for (const uint32_t p : func_.params) {
      if (p >= defined_.size()) {
        return Err("parameter value id out of range");
      }
      defined_[p] = true;
    }
    return CheckRegion(func_.body);
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::Internal(StrFormat("verify %s: %s", func_.name.c_str(), msg.c_str()));
  }

  Status CheckValue(uint32_t id, const Instr& instr) const {
    if (id >= defined_.size()) {
      return Err(StrFormat("%s: operand %%%u out of range", OpKindName(instr.kind), id));
    }
    if (!defined_[id]) {
      return Err(StrFormat("%s: operand %%%u used before definition", OpKindName(instr.kind), id));
    }
    return Status::Ok();
  }

  Status ExpectOperands(const Instr& instr, size_t n) const {
    if (instr.operands.size() != n) {
      return Err(StrFormat("%s: expected %zu operands, got %zu", OpKindName(instr.kind), n,
                           instr.operands.size()));
    }
    return Status::Ok();
  }

  Status CheckRegion(const Region& region) {
    // Region args become defined inside (and remain defined after — our
    // value namespace is function-wide, which is fine for verification as
    // long as uses are dominated; region args are only referenced inside by
    // construction of the builder, and dominance still holds).
    for (const uint32_t a : region.args) {
      if (a >= defined_.size()) {
        return Err("region arg out of range");
      }
      defined_[a] = true;
    }
    for (const Instr& instr : region.body) {
      for (const uint32_t op : instr.operands) {
        if (auto s = CheckValue(op, instr); !s.ok()) {
          return s;
        }
      }
      if (auto s = CheckInstr(instr); !s.ok()) {
        return s;
      }
      for (const Region& sub : instr.regions) {
        if (auto s = CheckRegion(sub); !s.ok()) {
          return s;
        }
      }
      if (instr.has_result()) {
        if (instr.result >= defined_.size()) {
          return Err("result id out of range");
        }
        defined_[instr.result] = true;
        if (func_.ValueType(instr.result) != instr.type) {
          return Err(StrFormat("%s: result type mismatch", OpKindName(instr.kind)));
        }
      }
    }
    return Status::Ok();
  }

  Type OperandType(const Instr& instr, size_t i) const {
    return func_.ValueType(instr.operands[i]);
  }

  Status CheckInstr(const Instr& instr) {
    switch (instr.kind) {
      case OpKind::kConstI:
      case OpKind::kConstF:
        return ExpectOperands(instr, 0);
      case OpKind::kAdd:
      case OpKind::kSub:
      case OpKind::kMul:
      case OpKind::kDiv:
      case OpKind::kRem:
      case OpKind::kMin:
      case OpKind::kMax:
      case OpKind::kAnd:
      case OpKind::kOr:
      case OpKind::kXor:
      case OpKind::kShl:
      case OpKind::kShr:
        return ExpectOperands(instr, 2);
      case OpKind::kCmpEq:
      case OpKind::kCmpNe:
      case OpKind::kCmpLt:
      case OpKind::kCmpLe:
      case OpKind::kCmpGt:
      case OpKind::kCmpGe: {
        if (auto s = ExpectOperands(instr, 2); !s.ok()) {
          return s;
        }
        if (instr.type != Type::kI64) {
          return Err("cmp result must be i64");
        }
        return Status::Ok();
      }
      case OpKind::kSelect:
        return ExpectOperands(instr, 3);
      case OpKind::kI2F:
      case OpKind::kF2I:
      case OpKind::kSqrt:
      case OpKind::kExp:
      case OpKind::kTanh:
      case OpKind::kRand:
        return ExpectOperands(instr, 1);
      case OpKind::kLocalAlloc:
        if (static_cast<uint32_t>(instr.i_attr) >= func_.local_slots) {
          return Err("local slot out of range");
        }
        return Status::Ok();
      case OpKind::kLocalLoad:
      case OpKind::kLocalStore:
        if (static_cast<uint32_t>(instr.i_attr) >= func_.local_slots) {
          return Err("local slot out of range");
        }
        return Status::Ok();
      case OpKind::kAlloc: {
        if (auto s = ExpectOperands(instr, 1); !s.ok()) {
          return s;
        }
        if (instr.s_attr.empty()) {
          return Err("alloc without a label");
        }
        if (instr.type != Type::kPtr) {
          return Err("alloc must produce ptr");
        }
        return Status::Ok();
      }
      case OpKind::kFree:
      case OpKind::kLifetimeEnd:
        return ExpectOperands(instr, 1);
      case OpKind::kIndex: {
        if (auto s = ExpectOperands(instr, 2); !s.ok()) {
          return s;
        }
        if (OperandType(instr, 0) != Type::kPtr || OperandType(instr, 1) != Type::kI64) {
          return Err("index expects (ptr, i64)");
        }
        return Status::Ok();
      }
      case OpKind::kLoad:
      case OpKind::kRmemLoad: {
        if (auto s = ExpectOperands(instr, 1); !s.ok()) {
          return s;
        }
        if (OperandType(instr, 0) != Type::kPtr) {
          return Err("load address must be ptr");
        }
        if (instr.mem.bytes == 0) {
          return Err("load of zero bytes");
        }
        return Status::Ok();
      }
      case OpKind::kStore:
      case OpKind::kRmemStore: {
        if (auto s = ExpectOperands(instr, 2); !s.ok()) {
          return s;
        }
        if (OperandType(instr, 0) != Type::kPtr) {
          return Err("store address must be ptr");
        }
        return Status::Ok();
      }
      case OpKind::kPrefetch:
      case OpKind::kEvictHint: {
        if (auto s = ExpectOperands(instr, 1); !s.ok()) {
          return s;
        }
        if (OperandType(instr, 0) != Type::kPtr) {
          return Err("hint address must be ptr");
        }
        return Status::Ok();
      }
      case OpKind::kFor: {
        if (auto s = ExpectOperands(instr, 3); !s.ok()) {
          return s;
        }
        if (instr.regions.size() != 1 || instr.regions[0].args.size() != 1) {
          return Err("for needs one body region with one iv arg");
        }
        return Status::Ok();
      }
      case OpKind::kWhile: {
        if (instr.regions.size() != 2) {
          return Err("while needs cond+body regions");
        }
        const Region& cond = instr.regions[0];
        if (cond.body.empty() || cond.body.back().kind != OpKind::kYield ||
            cond.body.back().operands.size() != 1) {
          return Err("while cond must end with yield(i64)");
        }
        return Status::Ok();
      }
      case OpKind::kIf: {
        if (auto s = ExpectOperands(instr, 1); !s.ok()) {
          return s;
        }
        if (instr.regions.size() != 2) {
          return Err("if needs then+else regions");
        }
        return Status::Ok();
      }
      case OpKind::kYield:
        return Status::Ok();
      case OpKind::kCall:
      case OpKind::kOffloadCall: {
        if (instr.callee >= module_.functions.size()) {
          return Err("call to out-of-range function");
        }
        const Function& target = *module_.functions[instr.callee];
        if (instr.operands.size() != target.param_types.size()) {
          return Err(StrFormat("call to @%s with %zu args, expected %zu", target.name.c_str(),
                               instr.operands.size(), target.param_types.size()));
        }
        return Status::Ok();
      }
      case OpKind::kReturn:
        if (func_.return_type == Type::kVoid && !instr.operands.empty()) {
          return Err("return with value in void function");
        }
        return Status::Ok();
    }
    return Err("unknown op kind");
  }

  const Module& module_;
  const Function& func_;
  std::vector<bool> defined_;
};

}  // namespace

support::Status VerifyFunction(const Module& module, const Function& func) {
  return FunctionVerifier(module, func).Run();
}

support::Status VerifyModule(const Module& module) {
  for (const auto& f : module.functions) {
    if (auto s = VerifyFunction(module, *f); !s.ok()) {
      return s;
    }
  }
  return support::Status::Ok();
}

}  // namespace mira::ir
