#include "src/ir/printer.h"

#include "src/support/str.h"

namespace mira::ir {

namespace {

class Printer {
 public:
  explicit Printer(const Function& func) : func_(func) {}

  std::string Run() {
    out_ += support::StrFormat("func @%s(", func_.name.c_str());
    for (size_t i = 0; i < func_.params.size(); ++i) {
      if (i > 0) {
        out_ += ", ";
      }
      out_ += support::StrFormat("%%%u: %s", func_.params[i], TypeName(func_.param_types[i]));
    }
    out_ += support::StrFormat(") -> %s%s {\n", TypeName(func_.return_type),
                               func_.remotable ? " remotable" : "");
    PrintRegion(func_.body, 1);
    out_ += "}\n";
    return out_;
  }

 private:
  void Indent(int depth) { out_.append(static_cast<size_t>(depth) * 2, ' '); }

  void PrintRegion(const Region& region, int depth) {
    for (const Instr& instr : region.body) {
      PrintInstr(instr, depth);
    }
  }

  void PrintInstr(const Instr& instr, int depth) {
    Indent(depth);
    if (instr.has_result()) {
      out_ += support::StrFormat("%%%u = ", instr.result);
    }
    out_ += OpKindName(instr.kind);
    switch (instr.kind) {
      case OpKind::kConstI:
        out_ += support::StrFormat(" %lld", static_cast<long long>(instr.i_attr));
        break;
      case OpKind::kConstF:
        out_ += support::StrFormat(" %g", instr.f_attr);
        break;
      case OpKind::kAlloc:
        out_ += support::StrFormat("(%%%u) label=\"%s\" elem=%lld", instr.operands[0],
                                   instr.s_attr.c_str(), static_cast<long long>(instr.i_attr));
        break;
      case OpKind::kIndex:
        out_ += support::StrFormat("(%%%u, %%%u) scale=%lld off=%lld", instr.operands[0],
                                   instr.operands[1], static_cast<long long>(instr.i_attr),
                                   static_cast<long long>(instr.i_attr2));
        break;
      case OpKind::kLocalAlloc:
      case OpKind::kLocalLoad:
        out_ += support::StrFormat(" slot=%lld", static_cast<long long>(instr.i_attr));
        break;
      case OpKind::kLocalStore:
        out_ += support::StrFormat("(%%%u) slot=%lld", instr.operands[0],
                                   static_cast<long long>(instr.i_attr));
        break;
      default: {
        if (!instr.operands.empty()) {
          out_ += "(";
          for (size_t i = 0; i < instr.operands.size(); ++i) {
            if (i > 0) {
              out_ += ", ";
            }
            out_ += support::StrFormat("%%%u", instr.operands[i]);
          }
          out_ += ")";
        }
        break;
      }
    }
    if (IsMemoryAccess(instr.kind) || instr.kind == OpKind::kPrefetch ||
        instr.kind == OpKind::kEvictHint) {
      out_ += support::StrFormat(" bytes=%u", instr.mem.bytes);
      if (instr.mem.promoted) {
        out_ += " promoted";
      }
      if (instr.mem.full_line_write) {
        out_ += " full_line";
      }
      if (instr.mem.batch_group >= 0) {
        out_ += support::StrFormat(" batch=%d", instr.mem.batch_group);
      }
      if (instr.mem.pinned) {
        out_ += " pinned";
      }
    }
    if (instr.kind == OpKind::kCall || instr.kind == OpKind::kOffloadCall) {
      out_ += support::StrFormat(" @%u", instr.callee);
    }
    if (instr.kind == OpKind::kFor) {
      out_ += support::StrFormat(" iv=%%%u {\n", instr.regions[0].args[0]);
      PrintRegion(instr.regions[0], depth + 1);
      Indent(depth);
      out_ += "}";
    } else if (instr.kind == OpKind::kWhile) {
      out_ += " cond {\n";
      PrintRegion(instr.regions[0], depth + 1);
      Indent(depth);
      out_ += "} body {\n";
      PrintRegion(instr.regions[1], depth + 1);
      Indent(depth);
      out_ += "}";
    } else if (instr.kind == OpKind::kIf) {
      out_ += " {\n";
      PrintRegion(instr.regions[0], depth + 1);
      Indent(depth);
      out_ += "}";
      if (!instr.regions[1].body.empty()) {
        out_ += " else {\n";
        PrintRegion(instr.regions[1], depth + 1);
        Indent(depth);
        out_ += "}";
      }
    }
    out_ += "\n";
  }

  const Function& func_;
  std::string out_;
};

}  // namespace

std::string PrintFunction(const Function& func) { return Printer(func).Run(); }

std::string PrintModule(const Module& module) {
  std::string out = support::StrFormat("module @%s {\n", module.name.c_str());
  for (const auto& f : module.functions) {
    out += PrintFunction(*f);
  }
  out += "}\n";
  return out;
}

}  // namespace mira::ir
