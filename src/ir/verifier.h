// Structural and type checking of IR modules. The analysis and transform
// passes run only on verified modules; the pass manager re-verifies after
// every transformation.

#ifndef MIRA_SRC_IR_VERIFIER_H_
#define MIRA_SRC_IR_VERIFIER_H_

#include "src/ir/ir.h"
#include "src/support/status.h"

namespace mira::ir {

// Checks one function: SSA dominance (every operand defined before use in
// an enclosing-or-same region), result/operand types, region shapes
// (kFor body has one iv arg, kWhile cond yields i64, terminators last),
// valid callee indices and local slots.
support::Status VerifyFunction(const Module& module, const Function& func);

support::Status VerifyModule(const Module& module);

}  // namespace mira::ir

#endif  // MIRA_SRC_IR_VERIFIER_H_
