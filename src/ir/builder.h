// Ergonomic construction of IR functions. The builder keeps an insertion
// point (a stack of regions) so structured control flow nests via lambdas:
//
//   FunctionBuilder f(module, "sum", {Type::kPtr, Type::kI64}, Type::kF64);
//   Value arr = f.Arg(0), n = f.Arg(1);
//   Local acc = f.DeclLocal(Type::kF64);
//   f.For(f.ConstI(0), n, f.ConstI(1), [&](Value iv) {
//     Value v = f.Load(f.Index(arr, iv, 8), 8, Type::kF64);
//     f.StoreLocal(acc, f.Add(f.LoadLocal(acc), v));
//   });
//   f.Return(f.LoadLocal(acc));

#ifndef MIRA_SRC_IR_BUILDER_H_
#define MIRA_SRC_IR_BUILDER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace mira::ir {

// A mutable function-local scalar slot.
struct Local {
  uint32_t slot = UINT32_MAX;
  Type type = Type::kVoid;
};

class FunctionBuilder {
 public:
  FunctionBuilder(Module* module, std::string name, std::vector<Type> params,
                  Type return_type = Type::kVoid);

  Function* function() { return func_; }
  Value Arg(uint32_t i) const;

  // ---- Constants & arithmetic ----
  Value ConstI(int64_t v);
  Value ConstF(double v);
  Value Binary(OpKind kind, Value a, Value b);
  Value Add(Value a, Value b) { return Binary(OpKind::kAdd, a, b); }
  Value Sub(Value a, Value b) { return Binary(OpKind::kSub, a, b); }
  Value Mul(Value a, Value b) { return Binary(OpKind::kMul, a, b); }
  Value Div(Value a, Value b) { return Binary(OpKind::kDiv, a, b); }
  Value Rem(Value a, Value b) { return Binary(OpKind::kRem, a, b); }
  Value Min(Value a, Value b) { return Binary(OpKind::kMin, a, b); }
  Value Max(Value a, Value b) { return Binary(OpKind::kMax, a, b); }
  Value And(Value a, Value b) { return Binary(OpKind::kAnd, a, b); }
  Value Or(Value a, Value b) { return Binary(OpKind::kOr, a, b); }
  Value Xor(Value a, Value b) { return Binary(OpKind::kXor, a, b); }
  Value Shl(Value a, Value b) { return Binary(OpKind::kShl, a, b); }
  Value Shr(Value a, Value b) { return Binary(OpKind::kShr, a, b); }
  Value Cmp(OpKind kind, Value a, Value b);
  Value CmpEq(Value a, Value b) { return Cmp(OpKind::kCmpEq, a, b); }
  Value CmpNe(Value a, Value b) { return Cmp(OpKind::kCmpNe, a, b); }
  Value CmpLt(Value a, Value b) { return Cmp(OpKind::kCmpLt, a, b); }
  Value CmpLe(Value a, Value b) { return Cmp(OpKind::kCmpLe, a, b); }
  Value CmpGt(Value a, Value b) { return Cmp(OpKind::kCmpGt, a, b); }
  Value CmpGe(Value a, Value b) { return Cmp(OpKind::kCmpGe, a, b); }
  Value Select(Value cond, Value a, Value b);
  Value I2F(Value v);
  Value F2I(Value v);
  Value Unary(OpKind kind, Value v);  // sqrt/exp/tanh
  // Uniform pseudo-random i64 in [0, bound).
  Value Rand(Value bound);

  // ---- Locals ----
  Local DeclLocal(Type type);
  Value LoadLocal(Local local);
  void StoreLocal(Local local, Value v);

  // ---- Memory ----
  // Allocates `size_bytes` (i64 value) with an allocation-site label used
  // by profiling and the cache plan. `elem_bytes` is the element
  // granularity of the object.
  Value Alloc(Value size_bytes, std::string label, uint32_t elem_bytes);
  void Free(Value ptr);
  // base + idx*scale + offset — the analyzable addressing form.
  Value Index(Value base, Value idx, int64_t scale, int64_t offset = 0);
  Value Load(Value ptr, uint32_t bytes, Type as);
  void Store(Value ptr, Value v, uint32_t bytes);
  void LifetimeEnd(Value ptr);

  // ---- Control flow ----
  void For(Value lo, Value hi, Value step, const std::function<void(Value)>& body);
  void While(const std::function<Value()>& cond, const std::function<void()>& body);
  void If(Value cond, const std::function<void()>& then_fn,
          const std::function<void()>& else_fn = nullptr);

  Value Call(std::string_view callee, std::vector<Value> args);
  void Return(Value v);
  void Return();

 private:
  Instr& Append(Instr instr);
  Value MakeResult(Instr& instr, Type t);
  Region* current() { return region_stack_.back(); }

  Module* module_;
  Function* func_;
  std::vector<Region*> region_stack_;
};

}  // namespace mira::ir

#endif  // MIRA_SRC_IR_BUILDER_H_
