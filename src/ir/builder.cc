#include "src/ir/builder.h"

namespace mira::ir {

FunctionBuilder::FunctionBuilder(Module* module, std::string name, std::vector<Type> params,
                                 Type return_type)
    : module_(module) {
  func_ = module->AddFunction(std::move(name));
  func_->param_types = std::move(params);
  func_->return_type = return_type;
  for (const Type t : func_->param_types) {
    func_->params.push_back(func_->NewValue(t));
  }
  region_stack_.push_back(&func_->body);
}

Value FunctionBuilder::Arg(uint32_t i) const {
  MIRA_CHECK(i < func_->params.size());
  return Value{func_->params[i], func_->param_types[i]};
}

Instr& FunctionBuilder::Append(Instr instr) {
  current()->body.push_back(std::move(instr));
  return current()->body.back();
}

Value FunctionBuilder::MakeResult(Instr& instr, Type t) {
  instr.type = t;
  instr.result = func_->NewValue(t);
  return Value{instr.result, t};
}

Value FunctionBuilder::ConstI(int64_t v) {
  Instr instr;
  instr.kind = OpKind::kConstI;
  instr.i_attr = v;
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, Type::kI64);
}

Value FunctionBuilder::ConstF(double v) {
  Instr instr;
  instr.kind = OpKind::kConstF;
  instr.f_attr = v;
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, Type::kF64);
}

Value FunctionBuilder::Binary(OpKind kind, Value a, Value b) {
  MIRA_CHECK_MSG(a.type == b.type || a.type == Type::kPtr || b.type == Type::kPtr,
                 "binary op on mismatched types");
  Instr instr;
  instr.kind = kind;
  instr.operands = {a.id, b.id};
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, a.type);
}

Value FunctionBuilder::Cmp(OpKind kind, Value a, Value b) {
  MIRA_CHECK(a.type == b.type);
  Instr instr;
  instr.kind = kind;
  instr.operands = {a.id, b.id};
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, Type::kI64);
}

Value FunctionBuilder::Select(Value cond, Value a, Value b) {
  MIRA_CHECK(cond.type == Type::kI64 && a.type == b.type);
  Instr instr;
  instr.kind = OpKind::kSelect;
  instr.operands = {cond.id, a.id, b.id};
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, a.type);
}

Value FunctionBuilder::I2F(Value v) {
  Instr instr;
  instr.kind = OpKind::kI2F;
  instr.operands = {v.id};
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, Type::kF64);
}

Value FunctionBuilder::F2I(Value v) {
  Instr instr;
  instr.kind = OpKind::kF2I;
  instr.operands = {v.id};
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, Type::kI64);
}

Value FunctionBuilder::Unary(OpKind kind, Value v) {
  MIRA_CHECK(kind == OpKind::kSqrt || kind == OpKind::kExp || kind == OpKind::kTanh);
  Instr instr;
  instr.kind = kind;
  instr.operands = {v.id};
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, Type::kF64);
}

Value FunctionBuilder::Rand(Value bound) {
  MIRA_CHECK(bound.type == Type::kI64);
  Instr instr;
  instr.kind = OpKind::kRand;
  instr.operands = {bound.id};
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, Type::kI64);
}

Local FunctionBuilder::DeclLocal(Type type) {
  Instr instr;
  instr.kind = OpKind::kLocalAlloc;
  instr.i_attr = func_->local_slots;
  Append(std::move(instr));
  return Local{func_->local_slots++, type};
}

Value FunctionBuilder::LoadLocal(Local local) {
  Instr instr;
  instr.kind = OpKind::kLocalLoad;
  instr.i_attr = local.slot;
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, local.type);
}

void FunctionBuilder::StoreLocal(Local local, Value v) {
  MIRA_CHECK(v.type == local.type);
  Instr instr;
  instr.kind = OpKind::kLocalStore;
  instr.i_attr = local.slot;
  instr.operands = {v.id};
  Append(std::move(instr));
}

Value FunctionBuilder::Alloc(Value size_bytes, std::string label, uint32_t elem_bytes) {
  Instr instr;
  instr.kind = OpKind::kAlloc;
  instr.operands = {size_bytes.id};
  instr.s_attr = std::move(label);
  instr.i_attr = elem_bytes;
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, Type::kPtr);
}

void FunctionBuilder::Free(Value ptr) {
  Instr instr;
  instr.kind = OpKind::kFree;
  instr.operands = {ptr.id};
  Append(std::move(instr));
}

Value FunctionBuilder::Index(Value base, Value idx, int64_t scale, int64_t offset) {
  MIRA_CHECK(base.type == Type::kPtr && idx.type == Type::kI64);
  Instr instr;
  instr.kind = OpKind::kIndex;
  instr.operands = {base.id, idx.id};
  instr.i_attr = scale;
  instr.i_attr2 = offset;
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, Type::kPtr);
}

Value FunctionBuilder::Load(Value ptr, uint32_t bytes, Type as) {
  MIRA_CHECK(ptr.type == Type::kPtr);
  Instr instr;
  instr.kind = OpKind::kLoad;
  instr.operands = {ptr.id};
  instr.mem.bytes = bytes;
  Instr& ref = Append(std::move(instr));
  return MakeResult(ref, as);
}

void FunctionBuilder::Store(Value ptr, Value v, uint32_t bytes) {
  MIRA_CHECK(ptr.type == Type::kPtr);
  Instr instr;
  instr.kind = OpKind::kStore;
  instr.operands = {ptr.id, v.id};
  instr.mem.bytes = bytes;
  Append(std::move(instr));
}

void FunctionBuilder::LifetimeEnd(Value ptr) {
  Instr instr;
  instr.kind = OpKind::kLifetimeEnd;
  instr.operands = {ptr.id};
  Append(std::move(instr));
}

void FunctionBuilder::For(Value lo, Value hi, Value step,
                          const std::function<void(Value)>& body) {
  Instr instr;
  instr.kind = OpKind::kFor;
  instr.operands = {lo.id, hi.id, step.id};
  instr.regions.emplace_back();
  const uint32_t iv = func_->NewValue(Type::kI64);
  instr.regions[0].args.push_back(iv);
  Instr& ref = Append(std::move(instr));
  region_stack_.push_back(&ref.regions[0]);
  body(Value{iv, Type::kI64});
  region_stack_.pop_back();
}

void FunctionBuilder::While(const std::function<Value()>& cond,
                            const std::function<void()>& body) {
  Instr instr;
  instr.kind = OpKind::kWhile;
  instr.regions.emplace_back();  // cond
  instr.regions.emplace_back();  // body
  Instr& ref = Append(std::move(instr));
  region_stack_.push_back(&ref.regions[0]);
  const Value c = cond();
  MIRA_CHECK(c.type == Type::kI64);
  Instr yield;
  yield.kind = OpKind::kYield;
  yield.operands = {c.id};
  Append(std::move(yield));
  region_stack_.pop_back();
  region_stack_.push_back(&ref.regions[1]);
  body();
  region_stack_.pop_back();
}

void FunctionBuilder::If(Value cond, const std::function<void()>& then_fn,
                         const std::function<void()>& else_fn) {
  MIRA_CHECK(cond.type == Type::kI64);
  Instr instr;
  instr.kind = OpKind::kIf;
  instr.operands = {cond.id};
  instr.regions.emplace_back();  // then
  instr.regions.emplace_back();  // else
  Instr& ref = Append(std::move(instr));
  region_stack_.push_back(&ref.regions[0]);
  then_fn();
  region_stack_.pop_back();
  if (else_fn) {
    region_stack_.push_back(&ref.regions[1]);
    else_fn();
    region_stack_.pop_back();
  }
}

Value FunctionBuilder::Call(std::string_view callee, std::vector<Value> args) {
  Function* target = module_->FindFunction(callee);
  MIRA_CHECK_MSG(target != nullptr, "call to unknown function");
  Instr instr;
  instr.kind = OpKind::kCall;
  instr.callee = module_->FunctionIndex(callee);
  for (const Value& a : args) {
    instr.operands.push_back(a.id);
  }
  Instr& ref = Append(std::move(instr));
  if (target->return_type == Type::kVoid) {
    return Value{};
  }
  return MakeResult(ref, target->return_type);
}

void FunctionBuilder::Return(Value v) {
  Instr instr;
  instr.kind = OpKind::kReturn;
  if (v.valid()) {
    instr.operands = {v.id};
  }
  Append(std::move(instr));
}

void FunctionBuilder::Return() { Return(Value{}); }

}  // namespace mira::ir
