#include "src/ir/ir.h"

#include <functional>

namespace mira::ir {

const char* TypeName(Type t) {
  switch (t) {
    case Type::kVoid:
      return "void";
    case Type::kI64:
      return "i64";
    case Type::kF64:
      return "f64";
    case Type::kPtr:
      return "ptr";
  }
  return "?";
}

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kConstI:
      return "const.i";
    case OpKind::kConstF:
      return "const.f";
    case OpKind::kAdd:
      return "add";
    case OpKind::kSub:
      return "sub";
    case OpKind::kMul:
      return "mul";
    case OpKind::kDiv:
      return "div";
    case OpKind::kRem:
      return "rem";
    case OpKind::kMin:
      return "min";
    case OpKind::kMax:
      return "max";
    case OpKind::kCmpEq:
      return "cmp.eq";
    case OpKind::kCmpNe:
      return "cmp.ne";
    case OpKind::kCmpLt:
      return "cmp.lt";
    case OpKind::kCmpLe:
      return "cmp.le";
    case OpKind::kCmpGt:
      return "cmp.gt";
    case OpKind::kCmpGe:
      return "cmp.ge";
    case OpKind::kAnd:
      return "and";
    case OpKind::kOr:
      return "or";
    case OpKind::kXor:
      return "xor";
    case OpKind::kShl:
      return "shl";
    case OpKind::kShr:
      return "shr";
    case OpKind::kSelect:
      return "select";
    case OpKind::kI2F:
      return "i2f";
    case OpKind::kF2I:
      return "f2i";
    case OpKind::kSqrt:
      return "sqrt";
    case OpKind::kExp:
      return "exp";
    case OpKind::kTanh:
      return "tanh";
    case OpKind::kRand:
      return "rand";
    case OpKind::kLocalAlloc:
      return "local.alloc";
    case OpKind::kLocalLoad:
      return "local.load";
    case OpKind::kLocalStore:
      return "local.store";
    case OpKind::kAlloc:
      return "remotable.alloc";
    case OpKind::kFree:
      return "remotable.free";
    case OpKind::kIndex:
      return "index";
    case OpKind::kLoad:
      return "load";
    case OpKind::kStore:
      return "store";
    case OpKind::kFor:
      return "for";
    case OpKind::kWhile:
      return "while";
    case OpKind::kIf:
      return "if";
    case OpKind::kYield:
      return "yield";
    case OpKind::kCall:
      return "call";
    case OpKind::kReturn:
      return "return";
    case OpKind::kRmemLoad:
      return "rmem.load";
    case OpKind::kRmemStore:
      return "rmem.store";
    case OpKind::kPrefetch:
      return "rmem.prefetch";
    case OpKind::kEvictHint:
      return "rmem.evict_hint";
    case OpKind::kLifetimeEnd:
      return "rmem.lifetime_end";
    case OpKind::kOffloadCall:
      return "rmem.offload_call";
  }
  return "?";
}

bool IsMemoryAccess(OpKind k) {
  return k == OpKind::kLoad || k == OpKind::kStore || k == OpKind::kRmemLoad ||
         k == OpKind::kRmemStore;
}

uint32_t Module::FunctionIndex(std::string_view fname) const {
  for (uint32_t i = 0; i < functions.size(); ++i) {
    if (functions[i]->name == fname) {
      return i;
    }
  }
  MIRA_CHECK_MSG(false, "function not found");
  return UINT32_MAX;
}

Module Module::Clone() const {
  Module copy;
  copy.name = name;
  for (const auto& f : functions) {
    copy.functions.push_back(std::make_unique<Function>(*f));
  }
  return copy;
}

namespace {
uint64_t CountRegion(const Region& r) {
  uint64_t n = 0;
  for (const auto& instr : r.body) {
    ++n;
    for (const auto& sub : instr.regions) {
      n += CountRegion(sub);
    }
  }
  return n;
}
}  // namespace

uint64_t Module::InstrCount() const {
  uint64_t n = 0;
  for (const auto& f : functions) {
    n += CountRegion(f->body);
  }
  return n;
}

void WalkInstrs(Region& region, const std::function<void(Instr&)>& fn) {
  for (auto& instr : region.body) {
    fn(instr);
    for (auto& sub : instr.regions) {
      WalkInstrs(sub, fn);
    }
  }
}

void WalkInstrs(const Region& region, const std::function<void(const Instr&)>& fn) {
  for (const auto& instr : region.body) {
    fn(instr);
    for (const auto& sub : instr.regions) {
      WalkInstrs(sub, fn);
    }
  }
}

}  // namespace mira::ir
