#include "src/ir/ir.h"

#include <functional>

namespace mira::ir {

const char* TypeName(Type t) {
  switch (t) {
    case Type::kVoid:
      return "void";
    case Type::kI64:
      return "i64";
    case Type::kF64:
      return "f64";
    case Type::kPtr:
      return "ptr";
  }
  return "?";
}

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kConstI:
      return "const.i";
    case OpKind::kConstF:
      return "const.f";
    case OpKind::kAdd:
      return "add";
    case OpKind::kSub:
      return "sub";
    case OpKind::kMul:
      return "mul";
    case OpKind::kDiv:
      return "div";
    case OpKind::kRem:
      return "rem";
    case OpKind::kMin:
      return "min";
    case OpKind::kMax:
      return "max";
    case OpKind::kCmpEq:
      return "cmp.eq";
    case OpKind::kCmpNe:
      return "cmp.ne";
    case OpKind::kCmpLt:
      return "cmp.lt";
    case OpKind::kCmpLe:
      return "cmp.le";
    case OpKind::kCmpGt:
      return "cmp.gt";
    case OpKind::kCmpGe:
      return "cmp.ge";
    case OpKind::kAnd:
      return "and";
    case OpKind::kOr:
      return "or";
    case OpKind::kXor:
      return "xor";
    case OpKind::kShl:
      return "shl";
    case OpKind::kShr:
      return "shr";
    case OpKind::kSelect:
      return "select";
    case OpKind::kI2F:
      return "i2f";
    case OpKind::kF2I:
      return "f2i";
    case OpKind::kSqrt:
      return "sqrt";
    case OpKind::kExp:
      return "exp";
    case OpKind::kTanh:
      return "tanh";
    case OpKind::kRand:
      return "rand";
    case OpKind::kLocalAlloc:
      return "local.alloc";
    case OpKind::kLocalLoad:
      return "local.load";
    case OpKind::kLocalStore:
      return "local.store";
    case OpKind::kAlloc:
      return "remotable.alloc";
    case OpKind::kFree:
      return "remotable.free";
    case OpKind::kIndex:
      return "index";
    case OpKind::kLoad:
      return "load";
    case OpKind::kStore:
      return "store";
    case OpKind::kFor:
      return "for";
    case OpKind::kWhile:
      return "while";
    case OpKind::kIf:
      return "if";
    case OpKind::kYield:
      return "yield";
    case OpKind::kCall:
      return "call";
    case OpKind::kReturn:
      return "return";
    case OpKind::kRmemLoad:
      return "rmem.load";
    case OpKind::kRmemStore:
      return "rmem.store";
    case OpKind::kPrefetch:
      return "rmem.prefetch";
    case OpKind::kEvictHint:
      return "rmem.evict_hint";
    case OpKind::kLifetimeEnd:
      return "rmem.lifetime_end";
    case OpKind::kOffloadCall:
      return "rmem.offload_call";
  }
  return "?";
}

bool IsMemoryAccess(OpKind k) {
  return k == OpKind::kLoad || k == OpKind::kStore || k == OpKind::kRmemLoad ||
         k == OpKind::kRmemStore;
}

uint32_t Module::FunctionIndex(std::string_view fname) const {
  for (uint32_t i = 0; i < functions.size(); ++i) {
    if (functions[i]->name == fname) {
      return i;
    }
  }
  MIRA_CHECK_MSG(false, "function not found");
  return UINT32_MAX;
}

Module Module::Clone() const {
  Module copy;
  copy.name = name;
  for (const auto& f : functions) {
    copy.functions.push_back(std::make_unique<Function>(*f));
  }
  return copy;
}

namespace {
uint64_t CountRegion(const Region& r) {
  uint64_t n = 0;
  for (const auto& instr : r.body) {
    ++n;
    for (const auto& sub : instr.regions) {
      n += CountRegion(sub);
    }
  }
  return n;
}
}  // namespace

uint64_t Module::InstrCount() const {
  uint64_t n = 0;
  for (const auto& f : functions) {
    n += CountRegion(f->body);
  }
  return n;
}

namespace {

// FNV-1a, folded field by field. Structure boundaries (instruction starts,
// region starts/ends) mix in tags so concatenation ambiguities cannot
// collide (e.g. an instr with 2 operands vs. 2 instrs with 1 each).
struct Fnv {
  uint64_t h = 1469598103934665603ULL;

  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
};

void HashRegion(Fnv& f, const Region& r) {
  f.U64(0x5245u);  // region tag
  f.U64(r.args.size());
  for (const uint32_t a : r.args) {
    f.U64(a);
  }
  f.U64(r.body.size());
  for (const Instr& instr : r.body) {
    f.U64(0x494Eu);  // instr tag
    f.U64(static_cast<uint64_t>(instr.kind));
    f.U64(static_cast<uint64_t>(instr.type));
    f.U64(instr.result);
    f.U64(instr.operands.size());
    for (const uint32_t op : instr.operands) {
      f.U64(op);
    }
    f.U64(static_cast<uint64_t>(instr.i_attr));
    f.U64(static_cast<uint64_t>(instr.i_attr2));
    uint64_t fbits = 0;
    static_assert(sizeof(fbits) == sizeof(instr.f_attr));
    __builtin_memcpy(&fbits, &instr.f_attr, sizeof(fbits));
    f.U64(fbits);
    f.Str(instr.s_attr);
    f.U64(instr.callee);
    f.U64(instr.mem.bytes);
    f.U64(static_cast<uint64_t>(instr.mem.batch_group));
    f.U64((instr.mem.promoted ? 1u : 0u) | (instr.mem.full_line_write ? 2u : 0u) |
          (instr.mem.pinned ? 4u : 0u));
    f.U64(instr.regions.size());
    for (const Region& sub : instr.regions) {
      HashRegion(f, sub);
    }
  }
}

}  // namespace

uint64_t ModuleFingerprint(const Module& module) {
  Fnv f;
  f.Str(module.name);
  f.U64(module.functions.size());
  for (const auto& fn : module.functions) {
    f.U64(0x464Eu);  // function tag
    f.Str(fn->name);
    f.U64(fn->param_types.size());
    for (const Type t : fn->param_types) {
      f.U64(static_cast<uint64_t>(t));
    }
    f.U64(static_cast<uint64_t>(fn->return_type));
    f.U64(fn->value_types.size());
    for (const Type t : fn->value_types) {
      f.U64(static_cast<uint64_t>(t));
    }
    f.U64(fn->params.size());
    for (const uint32_t p : fn->params) {
      f.U64(p);
    }
    f.U64(fn->local_slots);
    f.U64(fn->remotable ? 1 : 0);
    HashRegion(f, fn->body);
  }
  return f.h;
}

void WalkInstrs(Region& region, const std::function<void(Instr&)>& fn) {
  for (auto& instr : region.body) {
    fn(instr);
    for (auto& sub : instr.regions) {
      WalkInstrs(sub, fn);
    }
  }
}

void WalkInstrs(const Region& region, const std::function<void(const Instr&)>& fn) {
  for (const auto& instr : region.body) {
    fn(instr);
    for (const auto& sub : instr.regions) {
      WalkInstrs(sub, fn);
    }
  }
}

}  // namespace mira::ir
