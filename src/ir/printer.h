// Textual dump of IR modules/functions, MLIR-flavored. Used by tests, the
// examples, and documentation of compiled output (paper Figs 13/14).

#ifndef MIRA_SRC_IR_PRINTER_H_
#define MIRA_SRC_IR_PRINTER_H_

#include <string>

#include "src/ir/ir.h"

namespace mira::ir {

std::string PrintFunction(const Function& func);
std::string PrintModule(const Module& module);

}  // namespace mira::ir

#endif  // MIRA_SRC_IR_PRINTER_H_
