// Mira's multi-level intermediate representation.
//
// The paper implements its analyses and transforms as MLIR dialects
// (remotable + rmem layered over scf/memref/arith). This repository
// reproduces that stack with a compact structured IR of the same shape:
//
//   - SSA values inside structured regions (like MLIR's scf): kFor with an
//     induction variable, kWhile with a condition region, kIf;
//   - mutable scalars live in function-local slots (kLocalAlloc /
//     kLocalLoad / kLocalStore), which keeps loops single-argument and the
//     address analyses simple while losing nothing the paper's passes need;
//   - memory ops in the "memref layer": kAlloc/kFree/kLoad/kStore plus
//     kIndex, the analyzable addressing form base + idx*scale + offset;
//   - the rmem dialect, produced by RemotableConversion and the optimizers:
//     kRmemLoad/kRmemStore (with compiler hints: promotion, full-line
//     write, batch group), kPrefetch, kEvictHint, kLifetimeEnd,
//     kOffloadCall.
//
// Programs are built with IrBuilder (builder.h), checked by the Verifier
// (verifier.h), transformed by passes (src/passes/) and executed by the
// Interpreter (src/interp/) against a far-memory Backend.

#ifndef MIRA_SRC_IR_IR_H_
#define MIRA_SRC_IR_IR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/check.h"

namespace mira::ir {

enum class Type : uint8_t { kVoid, kI64, kF64, kPtr };

const char* TypeName(Type t);

// An SSA value handle: id indexes the owning Function's value table.
struct Value {
  uint32_t id = UINT32_MAX;
  Type type = Type::kVoid;

  bool valid() const { return id != UINT32_MAX; }
};

enum class OpKind : uint8_t {
  // Constants.
  kConstI,
  kConstF,
  // Integer/float arithmetic — dispatched on result type.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,
  kMin,
  kMax,
  // Comparisons (i64 result 0/1).
  kCmpEq,
  kCmpNe,
  kCmpLt,
  kCmpLe,
  kCmpGt,
  kCmpGe,
  // Bitwise / logic on i64.
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kSelect,
  // Conversions and math (for the ML workloads).
  kI2F,
  kF2I,
  kSqrt,
  kExp,
  kTanh,
  // Deterministic pseudo-random i64 in [0, operand) — workload synthesis
  // (seeded per interpreter run, so execution is reproducible).
  kRand,
  // Function-local mutable scalar slots (native memory: stack variables).
  kLocalAlloc,
  kLocalLoad,
  kLocalStore,
  // Heap / far-memory layer.
  kAlloc,   // attrs: label (s_attr), elem bytes (i_attr); operand: byte size
  kFree,    // operand: ptr
  kIndex,   // operands: base ptr, index; attrs: scale (i_attr), offset (i_attr2) → ptr
  kLoad,    // operand: ptr; attr bytes (mem.bytes); result i64/f64/ptr
  kStore,   // operands: ptr, value; attr bytes
  // Control flow.
  kFor,     // operands: lo, hi, step; regions[0] = body (arg0 = iv)
  kWhile,   // regions[0] = cond (terminated by kYield of i64), regions[1] = body
  kIf,      // operand: cond; regions[0] = then, regions[1] = else (may be empty)
  kYield,   // region terminator; operand optional (kWhile cond)
  kCall,    // attr callee (callee_attr); operands: args; result per callee
  kReturn,  // operand optional
  // rmem dialect (inserted by compilation passes).
  kRmemLoad,
  kRmemStore,
  kPrefetch,      // operand: ptr; attr bytes
  kEvictHint,     // operand: ptr; attr bytes
  kLifetimeEnd,   // operand: ptr (object base)
  kOffloadCall,   // like kCall, executed on the far node via RPC
};

const char* OpKindName(OpKind k);
bool IsMemoryAccess(OpKind k);  // kLoad/kStore/kRmemLoad/kRmemStore

// Compiler-attached facts for rmem memory ops.
struct MemAttrs {
  uint32_t bytes = 8;       // access granularity
  bool promoted = false;    // native-load promotion (§4.4)
  bool full_line_write = false;
  int32_t batch_group = -1;  // ≥0: fused-loop batch group (§4.5)
  bool pinned = false;       // shared-section access pins its line (§4.6)
};

struct Region;

struct Instr {
  OpKind kind = OpKind::kConstI;
  Type type = Type::kVoid;       // result type
  uint32_t result = UINT32_MAX;  // result value id
  std::vector<uint32_t> operands;

  // Attributes (meaning depends on kind).
  int64_t i_attr = 0;    // const value / alloc elem bytes / index scale / access bytes
  int64_t i_attr2 = 0;   // index byte offset
  double f_attr = 0.0;   // const float
  std::string s_attr;    // alloc label
  uint32_t callee = UINT32_MAX;  // kCall / kOffloadCall target function index
  MemAttrs mem;

  std::vector<Region> regions;

  bool has_result() const { return result != UINT32_MAX; }
};

// A structured region: a list of instructions plus region arguments (the
// for-loop induction variable).
struct Region {
  std::vector<uint32_t> args;  // value ids (e.g. [iv])
  std::vector<Instr> body;
};

struct Function {
  std::string name;
  std::vector<Type> param_types;
  Type return_type = Type::kVoid;
  // Value table: type of each SSA value (params first).
  std::vector<Type> value_types;
  std::vector<uint32_t> params;  // value ids of the parameters
  Region body;
  // Number of local scalar slots (kLocalAlloc results index these).
  uint32_t local_slots = 0;
  // Marked remotable by OffloadExtraction (§5.2.1): may run on the far node.
  bool remotable = false;

  uint32_t NewValue(Type t) {
    value_types.push_back(t);
    return static_cast<uint32_t>(value_types.size() - 1);
  }
  Type ValueType(uint32_t id) const {
    MIRA_CHECK(id < value_types.size());
    return value_types[id];
  }
};

struct Module {
  std::string name;
  std::vector<std::unique_ptr<Function>> functions;

  Function* AddFunction(std::string fname) {
    functions.push_back(std::make_unique<Function>());
    functions.back()->name = std::move(fname);
    return functions.back().get();
  }
  Function* FindFunction(std::string_view fname) const {
    for (const auto& f : functions) {
      if (f->name == fname) {
        return f.get();
      }
    }
    return nullptr;
  }
  uint32_t FunctionIndex(std::string_view fname) const;

  // Deep copy (passes transform copies so the pipeline can roll back).
  Module Clone() const;

  // Total instruction count — the "lines of code" metric for the
  // analysis-scope-reduction table.
  uint64_t InstrCount() const;
};

// Walks every instruction in a region tree (pre-order).
void WalkInstrs(Region& region, const std::function<void(Instr&)>& fn);
void WalkInstrs(const Region& region, const std::function<void(const Instr&)>& fn);

// Content-addressed structural hash of a module: every function signature,
// instruction, operand, attribute and region shape folds into one 64-bit
// FNV-1a digest. Two modules with identical compiled form (including every
// plan-derived rmem attribute) hash equal, so the digest doubles as the
// (module, plan) fingerprint keying the bytecode code cache — candidate
// plans that lower to the same instructions share one compilation.
uint64_t ModuleFingerprint(const Module& module);

}  // namespace mira::ir

#endif  // MIRA_SRC_IR_IR_H_
