#include "src/pipeline/adaptive.h"

#include "src/interp/interpreter.h"
#include "src/telemetry/telemetry.h"

namespace mira::pipeline {

AdaptiveRuntime::Invocation AdaptiveRuntime::Execute(const CompiledProgram& program,
                                                     uint64_t seed) const {
  World world = MakeWorld(SystemKind::kMira, options_.local_bytes, program.plan);
  interp::InterpOptions iopts;
  iopts.seed = seed;
  iopts.profiling = true;  // sampled profiling invocation
  interp::Interpreter interp(&program.module, world.backend.get(), iopts);
  auto result = interp.Run(options_.entry);
  MIRA_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  world.backend->Drain(interp.clock());
  Invocation out;
  out.result = result.value();
  out.sim_ns = interp.clock().now_ns();
  out.overhead_ratio = interp.profile().OverheadRatio();
  return out;
}

void AdaptiveRuntime::Reoptimize(uint64_t seed) {
  OptimizeOptions opts = options_;
  opts.train_seed = seed;
  IterativeOptimizer optimizer(source_, opts);
  CompiledProgram candidate = optimizer.Optimize();
  bool adopted = true;
  uint64_t old_ns = 0;
  uint64_t new_ns = 0;
  if (!compiled_) {
    current_ = std::move(candidate);
    compiled_ = true;
  } else {
    // Adopt only if the candidate actually beats the current compilation on
    // this input (rollback discipline).
    const Invocation old_run = Execute(current_, seed);
    const Invocation new_run = Execute(candidate, seed);
    old_ns = old_run.sim_ns;
    new_ns = new_run.sim_ns;
    adopted = new_run.sim_ns < old_run.sim_ns;
    if (adopted) {
      current_ = std::move(candidate);
    }
  }
  ++rounds_;
  reference_overhead_ = Execute(current_, seed).overhead_ratio;
  auto& trace = telemetry::Trace();
  if (trace.enabled()) {
    std::string args = "{\"round\":" + std::to_string(rounds_);
    args += ",\"seed\":" + std::to_string(seed);
    if (old_ns != 0) {
      args += ",\"current_ns\":" + std::to_string(old_ns);
      args += ",\"candidate_ns\":" + std::to_string(new_ns);
    }
    args += ",\"reference_overhead\":" + std::to_string(reference_overhead_);
    args += adopted ? ",\"adopted\":true}" : ",\"adopted\":false}";
    trace.Instant(trace_clock_, "adaptive.reoptimize", "pipeline", args);
  }
}

AdaptiveRuntime::Invocation AdaptiveRuntime::Invoke(uint64_t seed) {
  Invocation out;
  if (!compiled_) {
    Reoptimize(seed);
    out = Execute(current_, seed);
    out.reoptimized = true;
  } else {
    out = Execute(current_, seed);
    if (reference_overhead_ > 0.0 &&
        out.overhead_ratio > degrade_factor_ * reference_overhead_) {
      Reoptimize(seed);
      out = Execute(current_, seed);
      out.reoptimized = true;
    }
  }
  ++invocations_;
  trace_clock_.Advance(out.sim_ns);
  auto& trace = telemetry::Trace();
  if (trace.enabled()) {
    std::string args = "{\"seed\":" + std::to_string(seed);
    args += ",\"sim_ns\":" + std::to_string(out.sim_ns);
    args += ",\"overhead_ratio\":" + std::to_string(out.overhead_ratio);
    args += ",\"reference_overhead\":" + std::to_string(reference_overhead_);
    args += out.reoptimized ? ",\"reoptimized\":true}" : ",\"reoptimized\":false}";
    trace.Instant(trace_clock_, "adaptive.invoke", "pipeline", args);
  }
  auto& metrics = telemetry::Metrics();
  metrics.SetCounter("adaptive.invocations", invocations_);
  metrics.SetCounter("adaptive.reoptimizations", static_cast<uint64_t>(rounds_));
  metrics.SetGauge("adaptive.reference_overhead", reference_overhead_);
  return out;
}

}  // namespace mira::pipeline
