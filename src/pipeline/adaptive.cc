#include "src/pipeline/adaptive.h"

#include "src/interp/interpreter.h"
#include "src/telemetry/telemetry.h"

namespace mira::pipeline {

AdaptiveRuntime::Invocation AdaptiveRuntime::Execute(const CompiledProgram& program,
                                                     uint64_t seed) const {
  World world = MakeWorld(SystemKind::kMira, options_.local_bytes, program.plan);
  if (fault_plan_ != nullptr) {
    // Fresh injector per execution: every run (user invocation or candidate
    // comparison) sees the same deterministic fault schedule.
    AttachFaults(world, *fault_plan_);
  }
  if (cluster_config_ != nullptr) {
    // Before the interpreter is built: it caches the cluster pointer.
    AttachCluster(world, *cluster_config_);
  }
  if (integrity_config_ != nullptr) {
    AttachIntegrity(world, *integrity_config_);
  }
  interp::InterpOptions iopts;
  iopts.seed = seed;
  iopts.profiling = true;  // sampled profiling invocation
  iopts.engine = options_.engine;
  interp::Interpreter interp(&program.module, world.backend.get(), iopts);
  auto result = interp.Run(options_.entry);
  MIRA_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  world.backend->Drain(interp.clock());
  Invocation out;
  out.result = result.value();
  out.sim_ns = interp.clock().now_ns();
  out.overhead_ratio = interp.profile().OverheadRatio();
  const uint64_t fault_ns =
      world.net->fault_stats().wasted_ns() + world.backend->DegradedNs();
  out.fault_ratio =
      out.sim_ns > 0 ? static_cast<double>(fault_ns) / static_cast<double>(out.sim_ns) : 0.0;
  if (world.integrity != nullptr) {
    out.corruption_detected = world.integrity->stats().detected;
    out.corruption_healed = world.integrity->stats().healed;
  }
  if (world.cluster != nullptr) {
    out.failovers = world.cluster->stats().failovers;
  }
  return out;
}

void AdaptiveRuntime::Reoptimize(uint64_t seed) {
  OptimizeOptions opts = options_;
  opts.train_seed = seed;
  IterativeOptimizer optimizer(source_, opts);
  CompiledProgram candidate = optimizer.Optimize();
  bool adopted = true;
  uint64_t old_ns = 0;
  uint64_t new_ns = 0;
  if (!compiled_) {
    current_ = std::move(candidate);
    compiled_ = true;
  } else {
    // Adopt only if the candidate actually beats the current compilation on
    // this input (rollback discipline).
    const Invocation old_run = Execute(current_, seed);
    const Invocation new_run = Execute(candidate, seed);
    old_ns = old_run.sim_ns;
    new_ns = new_run.sim_ns;
    adopted = new_run.sim_ns < old_run.sim_ns;
    if (adopted) {
      current_ = std::move(candidate);
    }
  }
  ++rounds_;
  reference_overhead_ = Execute(current_, seed).overhead_ratio;
  auto& trace = telemetry::Trace();
  if (trace.enabled()) {
    std::string args = "{\"round\":" + std::to_string(rounds_);
    args += ",\"seed\":" + std::to_string(seed);
    if (old_ns != 0) {
      args += ",\"current_ns\":" + std::to_string(old_ns);
      args += ",\"candidate_ns\":" + std::to_string(new_ns);
    }
    args += ",\"reference_overhead\":" + std::to_string(reference_overhead_);
    args += adopted ? ",\"adopted\":true}" : ",\"adopted\":false}";
    trace.Instant(trace_clock_, "adaptive.reoptimize", "pipeline", args);
  }
}

AdaptiveRuntime::Invocation AdaptiveRuntime::Invoke(uint64_t seed) {
  Invocation out;
  if (!compiled_) {
    Reoptimize(seed);
    out = Execute(current_, seed);
    out.reoptimized = true;
  } else {
    out = Execute(current_, seed);
    const bool overhead_degraded =
        reference_overhead_ > 0.0 &&
        out.overhead_ratio > degrade_factor_ * reference_overhead_;
    // Sustained fault-inflated overhead is a degradation signal too: a
    // single faulty invocation may be a blip, but a streak means the
    // deployment environment changed and the compilation should re-compete
    // under it (same rollback discipline as the overhead trigger).
    if (out.fault_ratio > fault_ratio_threshold_) {
      ++faulty_streak_;
    } else {
      faulty_streak_ = 0;
    }
    const bool fault_degraded = faulty_streak_ >= fault_streak_limit_;
    // A corruption streak is the same class of signal: sustained silent
    // damage means retried fetches (healing) are inflating runtime and the
    // compilation should re-compete under the corrupted environment.
    if (corruption_min_detected_ > 0 && out.corruption_detected >= corruption_min_detected_) {
      ++corruption_streak_;
    } else {
      corruption_streak_ = 0;
    }
    const bool corruption_degraded = corruption_streak_ >= corruption_streak_limit_;
    // A crash streak means node churn is steady-state, not a one-off: every
    // invocation is paying lease-detection waits and re-replication traffic,
    // so let a fresh compilation compete under the churn.
    if (crash_min_failovers_ > 0 && out.failovers >= crash_min_failovers_) {
      ++crash_streak_;
    } else {
      crash_streak_ = 0;
    }
    const bool crash_degraded = crash_streak_ >= crash_streak_limit_;
    if (overhead_degraded || fault_degraded || corruption_degraded || crash_degraded) {
      if (fault_degraded) {
        ++fault_rounds_;
        faulty_streak_ = 0;
      }
      if (corruption_degraded) {
        ++corruption_rounds_;
        corruption_streak_ = 0;
      }
      if (crash_degraded) {
        ++crash_rounds_;
        crash_streak_ = 0;
      }
      Reoptimize(seed);
      out = Execute(current_, seed);
      out.reoptimized = true;
    }
  }
  ++invocations_;
  trace_clock_.Advance(out.sim_ns);
  auto& trace = telemetry::Trace();
  if (trace.enabled()) {
    std::string args = "{\"seed\":" + std::to_string(seed);
    args += ",\"sim_ns\":" + std::to_string(out.sim_ns);
    args += ",\"overhead_ratio\":" + std::to_string(out.overhead_ratio);
    args += ",\"fault_ratio\":" + std::to_string(out.fault_ratio);
    args += ",\"reference_overhead\":" + std::to_string(reference_overhead_);
    args += out.reoptimized ? ",\"reoptimized\":true}" : ",\"reoptimized\":false}";
    trace.Instant(trace_clock_, "adaptive.invoke", "pipeline", args);
  }
  auto& metrics = telemetry::Metrics();
  metrics.SetCounter("adaptive.invocations", invocations_);
  metrics.SetCounter("adaptive.reoptimizations", static_cast<uint64_t>(rounds_));
  metrics.SetCounter("adaptive.fault_reoptimizations", static_cast<uint64_t>(fault_rounds_));
  metrics.SetCounter("adaptive.corruption_reoptimizations",
                     static_cast<uint64_t>(corruption_rounds_));
  metrics.SetCounter("adaptive.crash_reoptimizations", static_cast<uint64_t>(crash_rounds_));
  metrics.SetCounter("adaptive.corruption_detected", out.corruption_detected);
  metrics.SetCounter("adaptive.corruption_healed", out.corruption_healed);
  metrics.SetCounter("adaptive.failovers", out.failovers);
  metrics.SetGauge("adaptive.reference_overhead", reference_overhead_);
  metrics.SetGauge("adaptive.fault_ratio", out.fault_ratio);
  return out;
}

}  // namespace mira::pipeline
