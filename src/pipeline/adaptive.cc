#include "src/pipeline/adaptive.h"

#include "src/interp/interpreter.h"

namespace mira::pipeline {

AdaptiveRuntime::Invocation AdaptiveRuntime::Execute(const CompiledProgram& program,
                                                     uint64_t seed) const {
  World world = MakeWorld(SystemKind::kMira, options_.local_bytes, program.plan);
  interp::InterpOptions iopts;
  iopts.seed = seed;
  iopts.profiling = true;  // sampled profiling invocation
  interp::Interpreter interp(&program.module, world.backend.get(), iopts);
  auto result = interp.Run(options_.entry);
  MIRA_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  world.backend->Drain(interp.clock());
  Invocation out;
  out.result = result.value();
  out.sim_ns = interp.clock().now_ns();
  out.overhead_ratio = interp.profile().OverheadRatio();
  return out;
}

void AdaptiveRuntime::Reoptimize(uint64_t seed) {
  OptimizeOptions opts = options_;
  opts.train_seed = seed;
  IterativeOptimizer optimizer(source_, opts);
  CompiledProgram candidate = optimizer.Optimize();
  if (!compiled_) {
    current_ = std::move(candidate);
    compiled_ = true;
  } else {
    // Adopt only if the candidate actually beats the current compilation on
    // this input (rollback discipline).
    const Invocation old_run = Execute(current_, seed);
    const Invocation new_run = Execute(candidate, seed);
    if (new_run.sim_ns < old_run.sim_ns) {
      current_ = std::move(candidate);
    }
  }
  ++rounds_;
  reference_overhead_ = Execute(current_, seed).overhead_ratio;
}

AdaptiveRuntime::Invocation AdaptiveRuntime::Invoke(uint64_t seed) {
  if (!compiled_) {
    Reoptimize(seed);
    Invocation out = Execute(current_, seed);
    out.reoptimized = true;
    return out;
  }
  Invocation out = Execute(current_, seed);
  if (reference_overhead_ > 0.0 &&
      out.overhead_ratio > degrade_factor_ * reference_overhead_) {
    Reoptimize(seed);
    out = Execute(current_, seed);
    out.reoptimized = true;
  }
  return out;
}

}  // namespace mira::pipeline
